/**
 * @file
 * Heuristic explorer: sweep the profile-guided selection heuristics
 * (MAX/AVG/MIN) over a chosen suite workload and print the
 * aggressiveness/misspeculation/energy trade-off — the RQ5 experiment
 * as an interactive tool. Pass a workload name (default: CRC32).
 */

#include <cstdio>
#include <string>

#include "core/system.h"
#include "workloads/workload.h"

using namespace bitspec;

int
main(int argc, char **argv)
{
    std::string name = argc > 1 ? argv[1] : "CRC32";
    const Workload &w = getWorkload(name);

    std::printf("Heuristic exploration on %s\n", name.c_str());
    std::printf("=========================%s\n\n",
                std::string(name.size(), '=').c_str());

    System base(w.source, SystemConfig::baseline(),
                [&](Module &m) { w.setInput(m, 0); });
    RunResult rb = base.run([&](Module &m) { w.setInput(m, 0); });
    std::printf("baseline: %llu instructions, %.0f pJ\n\n",
                (unsigned long long)rb.counters.instructions,
                rb.totalEnergy);

    std::printf("%-6s %10s %10s %10s %10s %10s\n", "T", "narrowed",
                "regions", "misspecs", "energy", "vs base");
    for (Heuristic h :
         {Heuristic::Max, Heuristic::Avg, Heuristic::Min}) {
        System sys(w.source, SystemConfig::bitspec(h),
                   [&](Module &m) { w.setInput(m, 0); });
        RunResult r = sys.run([&](Module &m) { w.setInput(m, 0); });
        bool correct = r.returnValue == rb.returnValue &&
                       r.outputChecksum == rb.outputChecksum;
        std::printf("%-6s %10u %10u %10llu %10.0f %9.3f%s\n",
                    heuristicName(h), r.squeezeStats.narrowed,
                    r.squeezeStats.regions,
                    (unsigned long long)r.counters.misspeculations,
                    r.totalEnergy, r.totalEnergy / rb.totalEnergy,
                    correct ? "" : "  WRONG OUTPUT");
    }

    std::printf("\nMore aggressive selections narrow more variables "
                "but misspeculate more;\nthe paper (RQ5) finds MAX "
                "wins except on FFT (AVG) and patricia (MIN).\n");
    return 0;
}
