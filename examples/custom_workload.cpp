/**
 * @file
 * Bringing your own workload: a run-length encoder written in the
 * C subset, with a host-side input generator, evaluated across every
 * system configuration of the paper (baseline / no-speculation /
 * BitSpec / DTS / DTS+BitSpec).
 */

#include <cstdio>

#include "core/system.h"
#include "support/rng.h"

using namespace bitspec;

namespace
{

const char *kRleSource = R"(
    u8 input[4096];
    u8 output[8192];
    u32 insize;

    u32 main() {
        u32 o = 0;
        u32 i = 0;
        while (i < insize) {
            u8 c = input[i];
            u32 run = 1;
            while (i + run < insize && input[i + run] == c
                   && run < 255) {
                run++;
            }
            output[o] = (u8)run;
            output[o + 1] = c;
            o += 2;
            i += run;
        }
        u32 h = 0;
        for (u32 k = 0; k < o; k++) h = h * 131 + output[k];
        out(h);
        out(o);
        return h;
    }
)";

/** Bursty byte stream: long runs with occasional noise — byte-wide
 *  values everywhere, ideal narrowing territory. */
void
setInput(Module &m, uint64_t seed)
{
    Rng rng(seed + 0x41e);
    Global *in = m.getGlobal("input");
    size_t pos = 0;
    while (pos < in->elemCount()) {
        uint8_t byte = static_cast<uint8_t>(rng.nextBelow(7));
        uint64_t run = rng.nextRange(1, 60);
        for (uint64_t k = 0; k < run && pos < in->elemCount(); ++k)
            in->setElem(pos++, byte);
    }
    m.getGlobal("insize")->setElem(0, in->elemCount());
}

} // namespace

int
main()
{
    std::printf("Custom workload: run-length encoder\n"
                "===================================\n\n");

    struct Config
    {
        const char *name;
        SystemConfig cfg;
    };
    const Config configs[] = {
        {"baseline", SystemConfig::baseline()},
        {"no-speculation", SystemConfig::noSpeculation()},
        {"bitspec (MAX)", SystemConfig::bitspec(Heuristic::Max)},
        {"bitspec (AVG)", SystemConfig::bitspec(Heuristic::Avg)},
        {"dts", SystemConfig::dtsOnly()},
        {"dts + bitspec", SystemConfig::dtsPlusBitspec()},
    };

    double base_energy = 0;
    uint64_t want = 0;
    std::printf("%-18s %12s %10s %10s %9s\n", "config", "energy(pJ)",
                "vs base", "dyninst", "misspec");
    for (const Config &c : configs) {
        System sys(kRleSource, c.cfg,
                   [](Module &m) { setInput(m, 0); });
        RunResult r = sys.run([](Module &m) { setInput(m, 0); });
        if (base_energy == 0) {
            base_energy = r.totalEnergy;
            want = r.outputChecksum;
        }
        std::printf("%-18s %12.0f %9.3f %10llu %9llu  %s\n", c.name,
                    r.totalEnergy, r.totalEnergy / base_energy,
                    (unsigned long long)r.counters.instructions,
                    (unsigned long long)r.counters.misspeculations,
                    r.outputChecksum == want ? "ok" : "WRONG OUTPUT");
    }
    return 0;
}
