/**
 * @file
 * Quickstart: compile a tiny program for the baseline and BitSpec
 * systems, simulate both, and print the energy saving.
 *
 * This walks the whole public pipeline:
 *   C-subset source -> expander -> bitwidth profiler -> squeezer ->
 *   EMB32 backend (slice register allocation + skeleton layout) ->
 *   in-order core model -> energy model.
 */

#include <cstdio>

#include "core/system.h"

using namespace bitspec;

int
main()
{
    // A byte-crunching kernel: a rolling hash over character data —
    // exactly the kind of code whose variables rarely need more than
    // 8 bits even though the source says u32.
    const char *source = R"(
        u8 text[256] = "the quick brown fox jumps over the lazy dog";
        u32 main() {
            u32 h = 0;
            for (u32 round = 0; round < 50; round++) {
                for (u32 i = 0; i < 44; i++) {
                    u32 c = text[i];
                    h = (h * 31 + c) % 251;
                }
            }
            out(h);
            return h;
        }
    )";

    std::printf("BitSpec quickstart\n==================\n\n");

    System baseline(source, SystemConfig::baseline());
    RunResult rb = baseline.run();

    System bitspec(source, SystemConfig::bitspec());
    RunResult rs = bitspec.run();

    std::printf("result check: baseline=%u bitspec=%u (%s)\n\n",
                rb.returnValue, rs.returnValue,
                rb.returnValue == rs.returnValue ? "match" : "BUG");

    std::printf("%-28s %14s %14s\n", "", "baseline", "bitspec");
    std::printf("%-28s %14llu %14llu\n", "dynamic instructions",
                (unsigned long long)rb.counters.instructions,
                (unsigned long long)rs.counters.instructions);
    std::printf("%-28s %14llu %14llu\n", "cycles",
                (unsigned long long)rb.counters.cycles,
                (unsigned long long)rs.counters.cycles);
    std::printf("%-28s %14llu %14llu\n", "8-bit register accesses",
                (unsigned long long)(rb.counters.rfRead8 +
                                     rb.counters.rfWrite8),
                (unsigned long long)(rs.counters.rfRead8 +
                                     rs.counters.rfWrite8));
    std::printf("%-28s %14.0f %14.0f\n", "energy (pJ)",
                rb.totalEnergy, rs.totalEnergy);
    std::printf("%-28s %14s %13.1f%%\n", "energy saving", "-",
                100.0 * (1.0 - rs.totalEnergy / rb.totalEnergy));
    std::printf("%-28s %14s %14llu\n", "misspeculations", "-",
                (unsigned long long)rs.counters.misspeculations);
    std::printf("\nnarrowed %u instructions into %u speculative "
                "regions.\n",
                rs.squeezeStats.narrowed, rs.squeezeStats.regions);
    return 0;
}
