file(REMOVE_RECURSE
  "CMakeFiles/bitspec_energy.dir/dts.cc.o"
  "CMakeFiles/bitspec_energy.dir/dts.cc.o.d"
  "CMakeFiles/bitspec_energy.dir/model.cc.o"
  "CMakeFiles/bitspec_energy.dir/model.cc.o.d"
  "libbitspec_energy.a"
  "libbitspec_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bitspec_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
