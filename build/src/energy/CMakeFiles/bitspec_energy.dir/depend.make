# Empty dependencies file for bitspec_energy.
# This may be replaced when dependencies are built.
