file(REMOVE_RECURSE
  "libbitspec_energy.a"
)
