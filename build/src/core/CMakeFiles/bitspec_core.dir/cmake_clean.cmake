file(REMOVE_RECURSE
  "CMakeFiles/bitspec_core.dir/system.cc.o"
  "CMakeFiles/bitspec_core.dir/system.cc.o.d"
  "libbitspec_core.a"
  "libbitspec_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bitspec_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
