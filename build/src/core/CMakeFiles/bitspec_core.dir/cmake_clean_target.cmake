file(REMOVE_RECURSE
  "libbitspec_core.a"
)
