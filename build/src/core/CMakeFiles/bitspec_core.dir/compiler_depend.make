# Empty compiler generated dependencies file for bitspec_core.
# This may be replaced when dependencies are built.
