# Empty dependencies file for bitspec_interp.
# This may be replaced when dependencies are built.
