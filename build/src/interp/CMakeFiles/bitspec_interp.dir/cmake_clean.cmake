file(REMOVE_RECURSE
  "CMakeFiles/bitspec_interp.dir/interpreter.cc.o"
  "CMakeFiles/bitspec_interp.dir/interpreter.cc.o.d"
  "libbitspec_interp.a"
  "libbitspec_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bitspec_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
