file(REMOVE_RECURSE
  "libbitspec_interp.a"
)
