file(REMOVE_RECURSE
  "libbitspec_transform.a"
)
