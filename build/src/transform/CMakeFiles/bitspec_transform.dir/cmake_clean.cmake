file(REMOVE_RECURSE
  "CMakeFiles/bitspec_transform.dir/cfg_prep.cc.o"
  "CMakeFiles/bitspec_transform.dir/cfg_prep.cc.o.d"
  "CMakeFiles/bitspec_transform.dir/expander.cc.o"
  "CMakeFiles/bitspec_transform.dir/expander.cc.o.d"
  "CMakeFiles/bitspec_transform.dir/simplify.cc.o"
  "CMakeFiles/bitspec_transform.dir/simplify.cc.o.d"
  "CMakeFiles/bitspec_transform.dir/squeezer.cc.o"
  "CMakeFiles/bitspec_transform.dir/squeezer.cc.o.d"
  "CMakeFiles/bitspec_transform.dir/ssa_repair.cc.o"
  "CMakeFiles/bitspec_transform.dir/ssa_repair.cc.o.d"
  "libbitspec_transform.a"
  "libbitspec_transform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bitspec_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
