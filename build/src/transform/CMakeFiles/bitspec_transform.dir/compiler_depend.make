# Empty compiler generated dependencies file for bitspec_transform.
# This may be replaced when dependencies are built.
