
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transform/cfg_prep.cc" "src/transform/CMakeFiles/bitspec_transform.dir/cfg_prep.cc.o" "gcc" "src/transform/CMakeFiles/bitspec_transform.dir/cfg_prep.cc.o.d"
  "/root/repo/src/transform/expander.cc" "src/transform/CMakeFiles/bitspec_transform.dir/expander.cc.o" "gcc" "src/transform/CMakeFiles/bitspec_transform.dir/expander.cc.o.d"
  "/root/repo/src/transform/simplify.cc" "src/transform/CMakeFiles/bitspec_transform.dir/simplify.cc.o" "gcc" "src/transform/CMakeFiles/bitspec_transform.dir/simplify.cc.o.d"
  "/root/repo/src/transform/squeezer.cc" "src/transform/CMakeFiles/bitspec_transform.dir/squeezer.cc.o" "gcc" "src/transform/CMakeFiles/bitspec_transform.dir/squeezer.cc.o.d"
  "/root/repo/src/transform/ssa_repair.cc" "src/transform/CMakeFiles/bitspec_transform.dir/ssa_repair.cc.o" "gcc" "src/transform/CMakeFiles/bitspec_transform.dir/ssa_repair.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/bitspec_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/bitspec_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/bitspec_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/bitspec_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/bitspec_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
