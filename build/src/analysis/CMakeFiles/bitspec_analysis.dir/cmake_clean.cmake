file(REMOVE_RECURSE
  "CMakeFiles/bitspec_analysis.dir/cfg.cc.o"
  "CMakeFiles/bitspec_analysis.dir/cfg.cc.o.d"
  "CMakeFiles/bitspec_analysis.dir/demanded_bits.cc.o"
  "CMakeFiles/bitspec_analysis.dir/demanded_bits.cc.o.d"
  "CMakeFiles/bitspec_analysis.dir/dominators.cc.o"
  "CMakeFiles/bitspec_analysis.dir/dominators.cc.o.d"
  "CMakeFiles/bitspec_analysis.dir/liveness.cc.o"
  "CMakeFiles/bitspec_analysis.dir/liveness.cc.o.d"
  "CMakeFiles/bitspec_analysis.dir/loops.cc.o"
  "CMakeFiles/bitspec_analysis.dir/loops.cc.o.d"
  "CMakeFiles/bitspec_analysis.dir/verifier.cc.o"
  "CMakeFiles/bitspec_analysis.dir/verifier.cc.o.d"
  "libbitspec_analysis.a"
  "libbitspec_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bitspec_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
