# Empty dependencies file for bitspec_analysis.
# This may be replaced when dependencies are built.
