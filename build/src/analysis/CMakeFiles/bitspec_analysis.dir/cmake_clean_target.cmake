file(REMOVE_RECURSE
  "libbitspec_analysis.a"
)
