file(REMOVE_RECURSE
  "libbitspec_isa.a"
)
