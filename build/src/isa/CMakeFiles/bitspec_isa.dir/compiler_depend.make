# Empty compiler generated dependencies file for bitspec_isa.
# This may be replaced when dependencies are built.
