file(REMOVE_RECURSE
  "CMakeFiles/bitspec_isa.dir/encoding.cc.o"
  "CMakeFiles/bitspec_isa.dir/encoding.cc.o.d"
  "CMakeFiles/bitspec_isa.dir/isa.cc.o"
  "CMakeFiles/bitspec_isa.dir/isa.cc.o.d"
  "libbitspec_isa.a"
  "libbitspec_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bitspec_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
