file(REMOVE_RECURSE
  "libbitspec_backend.a"
)
