file(REMOVE_RECURSE
  "CMakeFiles/bitspec_backend.dir/compiler.cc.o"
  "CMakeFiles/bitspec_backend.dir/compiler.cc.o.d"
  "CMakeFiles/bitspec_backend.dir/isel.cc.o"
  "CMakeFiles/bitspec_backend.dir/isel.cc.o.d"
  "CMakeFiles/bitspec_backend.dir/layout.cc.o"
  "CMakeFiles/bitspec_backend.dir/layout.cc.o.d"
  "CMakeFiles/bitspec_backend.dir/regalloc.cc.o"
  "CMakeFiles/bitspec_backend.dir/regalloc.cc.o.d"
  "libbitspec_backend.a"
  "libbitspec_backend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bitspec_backend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
