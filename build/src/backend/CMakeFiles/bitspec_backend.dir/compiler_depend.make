# Empty compiler generated dependencies file for bitspec_backend.
# This may be replaced when dependencies are built.
