# Empty dependencies file for bitspec_backend.
# This may be replaced when dependencies are built.
