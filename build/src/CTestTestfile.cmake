# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("ir")
subdirs("analysis")
subdirs("interp")
subdirs("frontend")
subdirs("profile")
subdirs("transform")
subdirs("isa")
subdirs("backend")
subdirs("uarch")
subdirs("energy")
subdirs("workloads")
subdirs("core")
