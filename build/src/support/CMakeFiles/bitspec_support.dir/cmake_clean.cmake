file(REMOVE_RECURSE
  "CMakeFiles/bitspec_support.dir/bits.cc.o"
  "CMakeFiles/bitspec_support.dir/bits.cc.o.d"
  "CMakeFiles/bitspec_support.dir/rng.cc.o"
  "CMakeFiles/bitspec_support.dir/rng.cc.o.d"
  "CMakeFiles/bitspec_support.dir/stats.cc.o"
  "CMakeFiles/bitspec_support.dir/stats.cc.o.d"
  "CMakeFiles/bitspec_support.dir/str.cc.o"
  "CMakeFiles/bitspec_support.dir/str.cc.o.d"
  "libbitspec_support.a"
  "libbitspec_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bitspec_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
