file(REMOVE_RECURSE
  "libbitspec_support.a"
)
