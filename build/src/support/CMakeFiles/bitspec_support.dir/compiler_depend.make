# Empty compiler generated dependencies file for bitspec_support.
# This may be replaced when dependencies are built.
