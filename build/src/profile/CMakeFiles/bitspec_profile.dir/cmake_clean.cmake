file(REMOVE_RECURSE
  "CMakeFiles/bitspec_profile.dir/bitwidth_profile.cc.o"
  "CMakeFiles/bitspec_profile.dir/bitwidth_profile.cc.o.d"
  "libbitspec_profile.a"
  "libbitspec_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bitspec_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
