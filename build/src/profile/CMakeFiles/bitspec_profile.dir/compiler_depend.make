# Empty compiler generated dependencies file for bitspec_profile.
# This may be replaced when dependencies are built.
