file(REMOVE_RECURSE
  "libbitspec_profile.a"
)
