# Empty compiler generated dependencies file for bitspec_uarch.
# This may be replaced when dependencies are built.
