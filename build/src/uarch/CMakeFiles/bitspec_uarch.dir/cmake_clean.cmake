file(REMOVE_RECURSE
  "CMakeFiles/bitspec_uarch.dir/cache.cc.o"
  "CMakeFiles/bitspec_uarch.dir/cache.cc.o.d"
  "CMakeFiles/bitspec_uarch.dir/core.cc.o"
  "CMakeFiles/bitspec_uarch.dir/core.cc.o.d"
  "libbitspec_uarch.a"
  "libbitspec_uarch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bitspec_uarch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
