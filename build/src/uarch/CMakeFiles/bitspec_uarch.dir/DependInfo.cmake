
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/uarch/cache.cc" "src/uarch/CMakeFiles/bitspec_uarch.dir/cache.cc.o" "gcc" "src/uarch/CMakeFiles/bitspec_uarch.dir/cache.cc.o.d"
  "/root/repo/src/uarch/core.cc" "src/uarch/CMakeFiles/bitspec_uarch.dir/core.cc.o" "gcc" "src/uarch/CMakeFiles/bitspec_uarch.dir/core.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/backend/CMakeFiles/bitspec_backend.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/bitspec_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/bitspec_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/bitspec_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/bitspec_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
