file(REMOVE_RECURSE
  "libbitspec_uarch.a"
)
