# Empty dependencies file for bitspec_frontend.
# This may be replaced when dependencies are built.
