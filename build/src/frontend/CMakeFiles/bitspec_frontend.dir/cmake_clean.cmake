file(REMOVE_RECURSE
  "CMakeFiles/bitspec_frontend.dir/irgen.cc.o"
  "CMakeFiles/bitspec_frontend.dir/irgen.cc.o.d"
  "CMakeFiles/bitspec_frontend.dir/lexer.cc.o"
  "CMakeFiles/bitspec_frontend.dir/lexer.cc.o.d"
  "CMakeFiles/bitspec_frontend.dir/parser.cc.o"
  "CMakeFiles/bitspec_frontend.dir/parser.cc.o.d"
  "libbitspec_frontend.a"
  "libbitspec_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bitspec_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
