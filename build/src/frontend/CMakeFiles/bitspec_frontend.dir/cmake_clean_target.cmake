file(REMOVE_RECURSE
  "libbitspec_frontend.a"
)
