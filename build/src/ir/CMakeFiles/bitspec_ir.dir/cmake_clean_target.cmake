file(REMOVE_RECURSE
  "libbitspec_ir.a"
)
