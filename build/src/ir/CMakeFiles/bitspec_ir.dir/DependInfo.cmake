
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/clone.cc" "src/ir/CMakeFiles/bitspec_ir.dir/clone.cc.o" "gcc" "src/ir/CMakeFiles/bitspec_ir.dir/clone.cc.o.d"
  "/root/repo/src/ir/instruction.cc" "src/ir/CMakeFiles/bitspec_ir.dir/instruction.cc.o" "gcc" "src/ir/CMakeFiles/bitspec_ir.dir/instruction.cc.o.d"
  "/root/repo/src/ir/printer.cc" "src/ir/CMakeFiles/bitspec_ir.dir/printer.cc.o" "gcc" "src/ir/CMakeFiles/bitspec_ir.dir/printer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/bitspec_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
