# Empty dependencies file for bitspec_ir.
# This may be replaced when dependencies are built.
