file(REMOVE_RECURSE
  "CMakeFiles/bitspec_ir.dir/clone.cc.o"
  "CMakeFiles/bitspec_ir.dir/clone.cc.o.d"
  "CMakeFiles/bitspec_ir.dir/instruction.cc.o"
  "CMakeFiles/bitspec_ir.dir/instruction.cc.o.d"
  "CMakeFiles/bitspec_ir.dir/printer.cc.o"
  "CMakeFiles/bitspec_ir.dir/printer.cc.o.d"
  "libbitspec_ir.a"
  "libbitspec_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bitspec_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
