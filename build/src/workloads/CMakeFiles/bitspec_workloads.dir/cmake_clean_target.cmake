file(REMOVE_RECURSE
  "libbitspec_workloads.a"
)
