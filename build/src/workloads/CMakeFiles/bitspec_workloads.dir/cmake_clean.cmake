file(REMOVE_RECURSE
  "CMakeFiles/bitspec_workloads.dir/images.cc.o"
  "CMakeFiles/bitspec_workloads.dir/images.cc.o.d"
  "CMakeFiles/bitspec_workloads.dir/mibench.cc.o"
  "CMakeFiles/bitspec_workloads.dir/mibench.cc.o.d"
  "CMakeFiles/bitspec_workloads.dir/workload.cc.o"
  "CMakeFiles/bitspec_workloads.dir/workload.cc.o.d"
  "libbitspec_workloads.a"
  "libbitspec_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bitspec_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
