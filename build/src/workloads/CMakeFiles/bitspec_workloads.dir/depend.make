# Empty dependencies file for bitspec_workloads.
# This may be replaced when dependencies are built.
