file(REMOVE_RECURSE
  "CMakeFiles/fig05_heuristics.dir/fig05_heuristics.cc.o"
  "CMakeFiles/fig05_heuristics.dir/fig05_heuristics.cc.o.d"
  "fig05_heuristics"
  "fig05_heuristics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_heuristics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
