# Empty dependencies file for fig05_heuristics.
# This may be replaced when dependencies are built.
