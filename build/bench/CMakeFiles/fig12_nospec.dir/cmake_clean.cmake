file(REMOVE_RECURSE
  "CMakeFiles/fig12_nospec.dir/fig12_nospec.cc.o"
  "CMakeFiles/fig12_nospec.dir/fig12_nospec.cc.o.d"
  "fig12_nospec"
  "fig12_nospec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_nospec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
