# Empty compiler generated dependencies file for fig12_nospec.
# This may be replaced when dependencies are built.
