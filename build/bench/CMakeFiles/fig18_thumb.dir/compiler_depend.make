# Empty compiler generated dependencies file for fig18_thumb.
# This may be replaced when dependencies are built.
