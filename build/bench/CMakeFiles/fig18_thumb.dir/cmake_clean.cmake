file(REMOVE_RECURSE
  "CMakeFiles/fig18_thumb.dir/fig18_thumb.cc.o"
  "CMakeFiles/fig18_thumb.dir/fig18_thumb.cc.o.d"
  "fig18_thumb"
  "fig18_thumb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_thumb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
