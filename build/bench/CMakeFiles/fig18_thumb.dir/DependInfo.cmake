
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig18_thumb.cc" "bench/CMakeFiles/fig18_thumb.dir/fig18_thumb.cc.o" "gcc" "bench/CMakeFiles/fig18_thumb.dir/fig18_thumb.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/bitspec_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/bitspec_core.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/bitspec_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/transform/CMakeFiles/bitspec_transform.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/bitspec_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/bitspec_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/bitspec_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/uarch/CMakeFiles/bitspec_uarch.dir/DependInfo.cmake"
  "/root/repo/build/src/backend/CMakeFiles/bitspec_backend.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/bitspec_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/bitspec_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/bitspec_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/bitspec_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
