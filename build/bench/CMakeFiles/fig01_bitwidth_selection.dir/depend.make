# Empty dependencies file for fig01_bitwidth_selection.
# This may be replaced when dependencies are built.
