file(REMOVE_RECURSE
  "CMakeFiles/fig01_bitwidth_selection.dir/fig01_bitwidth_selection.cc.o"
  "CMakeFiles/fig01_bitwidth_selection.dir/fig01_bitwidth_selection.cc.o.d"
  "fig01_bitwidth_selection"
  "fig01_bitwidth_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_bitwidth_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
