# Empty dependencies file for fig14_aggressiveness.
# This may be replaced when dependencies are built.
