file(REMOVE_RECURSE
  "CMakeFiles/fig14_aggressiveness.dir/fig14_aggressiveness.cc.o"
  "CMakeFiles/fig14_aggressiveness.dir/fig14_aggressiveness.cc.o.d"
  "fig14_aggressiveness"
  "fig14_aggressiveness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_aggressiveness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
