file(REMOVE_RECURSE
  "CMakeFiles/fig08_energy.dir/fig08_energy.cc.o"
  "CMakeFiles/fig08_energy.dir/fig08_energy.cc.o.d"
  "fig08_energy"
  "fig08_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
