# Empty dependencies file for fig08_energy.
# This may be replaced when dependencies are built.
