# Empty dependencies file for fig17_dts.
# This may be replaced when dependencies are built.
