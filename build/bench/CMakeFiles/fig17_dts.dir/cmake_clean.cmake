file(REMOVE_RECURSE
  "CMakeFiles/fig17_dts.dir/fig17_dts.cc.o"
  "CMakeFiles/fig17_dts.dir/fig17_dts.cc.o.d"
  "fig17_dts"
  "fig17_dts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_dts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
