# Empty compiler generated dependencies file for fig13_expander.
# This may be replaced when dependencies are built.
