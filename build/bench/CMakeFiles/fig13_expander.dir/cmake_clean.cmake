file(REMOVE_RECURSE
  "CMakeFiles/fig13_expander.dir/fig13_expander.cc.o"
  "CMakeFiles/fig13_expander.dir/fig13_expander.cc.o.d"
  "fig13_expander"
  "fig13_expander.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_expander.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
