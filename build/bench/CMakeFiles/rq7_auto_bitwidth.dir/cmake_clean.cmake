file(REMOVE_RECURSE
  "CMakeFiles/rq7_auto_bitwidth.dir/rq7_auto_bitwidth.cc.o"
  "CMakeFiles/rq7_auto_bitwidth.dir/rq7_auto_bitwidth.cc.o.d"
  "rq7_auto_bitwidth"
  "rq7_auto_bitwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rq7_auto_bitwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
