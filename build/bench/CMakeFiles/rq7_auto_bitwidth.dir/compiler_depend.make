# Empty compiler generated dependencies file for rq7_auto_bitwidth.
# This may be replaced when dependencies are built.
