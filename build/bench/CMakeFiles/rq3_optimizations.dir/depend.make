# Empty dependencies file for rq3_optimizations.
# This may be replaced when dependencies are built.
