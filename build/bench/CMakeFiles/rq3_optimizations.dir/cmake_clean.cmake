file(REMOVE_RECURSE
  "CMakeFiles/rq3_optimizations.dir/rq3_optimizations.cc.o"
  "CMakeFiles/rq3_optimizations.dir/rq3_optimizations.cc.o.d"
  "rq3_optimizations"
  "rq3_optimizations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rq3_optimizations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
