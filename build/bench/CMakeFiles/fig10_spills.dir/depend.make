# Empty dependencies file for fig10_spills.
# This may be replaced when dependencies are built.
