file(REMOVE_RECURSE
  "CMakeFiles/fig10_spills.dir/fig10_spills.cc.o"
  "CMakeFiles/fig10_spills.dir/fig10_spills.cc.o.d"
  "fig10_spills"
  "fig10_spills.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_spills.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
