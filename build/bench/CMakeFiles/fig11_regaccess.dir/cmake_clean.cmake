file(REMOVE_RECURSE
  "CMakeFiles/fig11_regaccess.dir/fig11_regaccess.cc.o"
  "CMakeFiles/fig11_regaccess.dir/fig11_regaccess.cc.o.d"
  "fig11_regaccess"
  "fig11_regaccess.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_regaccess.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
