# Empty dependencies file for fig11_regaccess.
# This may be replaced when dependencies are built.
