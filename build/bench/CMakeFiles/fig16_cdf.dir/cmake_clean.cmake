file(REMOVE_RECURSE
  "CMakeFiles/fig16_cdf.dir/fig16_cdf.cc.o"
  "CMakeFiles/fig16_cdf.dir/fig16_cdf.cc.o.d"
  "fig16_cdf"
  "fig16_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
