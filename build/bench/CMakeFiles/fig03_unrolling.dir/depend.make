# Empty dependencies file for fig03_unrolling.
# This may be replaced when dependencies are built.
