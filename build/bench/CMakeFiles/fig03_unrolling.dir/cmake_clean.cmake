file(REMOVE_RECURSE
  "CMakeFiles/fig03_unrolling.dir/fig03_unrolling.cc.o"
  "CMakeFiles/fig03_unrolling.dir/fig03_unrolling.cc.o.d"
  "fig03_unrolling"
  "fig03_unrolling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_unrolling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
