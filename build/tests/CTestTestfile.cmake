# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_ir[1]_include.cmake")
include("/root/repo/build/tests/test_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_interp[1]_include.cmake")
include("/root/repo/build/tests/test_frontend[1]_include.cmake")
include("/root/repo/build/tests/test_transform[1]_include.cmake")
include("/root/repo/build/tests/test_profile[1]_include.cmake")
include("/root/repo/build/tests/test_isa[1]_include.cmake")
include("/root/repo/build/tests/test_backend[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_uarch[1]_include.cmake")
include("/root/repo/build/tests/test_energy[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz[1]_include.cmake")
