file(REMOVE_RECURSE
  "CMakeFiles/test_analysis.dir/analysis/cfg_test.cc.o"
  "CMakeFiles/test_analysis.dir/analysis/cfg_test.cc.o.d"
  "CMakeFiles/test_analysis.dir/analysis/demanded_bits_test.cc.o"
  "CMakeFiles/test_analysis.dir/analysis/demanded_bits_test.cc.o.d"
  "CMakeFiles/test_analysis.dir/analysis/dominators_test.cc.o"
  "CMakeFiles/test_analysis.dir/analysis/dominators_test.cc.o.d"
  "CMakeFiles/test_analysis.dir/analysis/liveness_test.cc.o"
  "CMakeFiles/test_analysis.dir/analysis/liveness_test.cc.o.d"
  "CMakeFiles/test_analysis.dir/analysis/loops_test.cc.o"
  "CMakeFiles/test_analysis.dir/analysis/loops_test.cc.o.d"
  "CMakeFiles/test_analysis.dir/analysis/verifier_test.cc.o"
  "CMakeFiles/test_analysis.dir/analysis/verifier_test.cc.o.d"
  "test_analysis"
  "test_analysis.pdb"
  "test_analysis[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
