file(REMOVE_RECURSE
  "CMakeFiles/explore_heuristics.dir/explore_heuristics.cpp.o"
  "CMakeFiles/explore_heuristics.dir/explore_heuristics.cpp.o.d"
  "explore_heuristics"
  "explore_heuristics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/explore_heuristics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
