/**
 * @file
 * Fig. 3: loop unrolling monotonically reduces dynamic IR
 * instructions while assembly instructions eventually rise again
 * (register pressure) — the expander motivation (§2.5).
 */

#include <future>

#include "../bench/common.h"
#include "backend/compiler.h"
#include "frontend/irgen.h"
#include "interp/interpreter.h"
#include "support/threadpool.h"
#include "transform/expander.h"
#include "uarch/core.h"

using namespace bitspec;

int
main()
{
    bench::printHeader(
        "Figure 3: loop unrolling vs dynamic instructions",
        "Accumulation kernel; unroll factor sweep on the baseline "
        "architecture.\nIR = dynamic IR instructions, ASM = dynamic "
        "machine instructions.");

    const char *src = R"(
        u32 data[1024];
        u32 main() {
            u32 h = 0;
            for (u32 i = 0; i < 1024; i++)
                h = h * 31 + (data[i] ^ (h >> 7)) + (data[i] >> 3);
            return h;
        }
    )";

    std::printf("%-8s %12s %12s\n", "factor", "IR", "ASM");
    // Each unroll factor is an independent compile+run; fan them out
    // across the pool and print rows in factor order.
    ThreadPool pool;
    std::vector<std::future<std::string>> rows;
    for (unsigned factor : {1u, 2u, 4u, 8u, 16u}) {
        rows.push_back(pool.submit([src, factor]() -> std::string {
            auto mod = compileSource(src);
            Global *g = mod->getGlobal("data");
            for (size_t i = 0; i < g->elemCount(); ++i)
                g->setElem(i, (i * 2654435761u) & 0xffff);

            ExpanderOptions opts;
            opts.unrollFactor = factor;
            opts.maxLoopSize = 400;
            opts.maxFunctionSize = 8000;
            expandModule(*mod, opts);

            Interpreter in(*mod);
            in.run("main");

            CompiledProgram cp =
                compileModule(*mod, TargetISA::Baseline);
            Core core(cp.program, *mod);
            core.run();

            return strFormat(
                "%-8u %12llu %12llu\n", factor,
                static_cast<unsigned long long>(in.stats().steps),
                static_cast<unsigned long long>(
                    core.counters().instructions));
        }));
    }
    for (auto &row : rows)
        std::fputs(row.get().c_str(), stdout);
    return 0;
}
