/**
 * @file
 * Experiment-engine smoke harness: runs the Fig. 8 matrix and a
 * trimmed Fig. 16 profile/run grid twice — once serially with
 * fresh (uncached) Systems, once through the ExperimentRunner — and
 * records wall times, cell counts and System-cache hit rates.
 *
 * Results are verified bit-identical between the two paths, then
 * appended as an "experiment_engine" section to the BENCH_micro.json
 * written by micro_throughput (path passed as argv[1]; prints to
 * stdout only when omitted). An "observability" section records the
 * telemetry overhead gate: interpreter throughput with tracing
 * compiled in but disabled must stay within 1% of the previous run's
 * record (bench_smoke stashes it as BENCH_micro.prev.json).
 *
 * `experiment_smoke bitspec-report` instead prints the per-region
 * misspeculation attribution report for every suite workload and
 * self-checks that the per-region counts sum to the core's aggregate
 * misspeculation counter.
 *
 * `experiment_smoke bitspec-heat [folded-dir]` prints the per-block
 * heat listing (top blocks by cycles with source provenance) for
 * every suite workload, self-checks the per-block sums against
 * ActivityCounters, and — when a directory is given — writes one
 * folded-stack file per workload for flamegraph.pl / speedscope.
 *
 * `experiment_smoke bitspec-diff <A.jsonl> <B.jsonl>` joins two run
 * ledgers (BITSPEC_LEDGER output) on the canonical cell key and
 * reports per-field drift with stage/region/block localization
 * (obs/diff.h). Options: --abs-tol X, --rel-tol-pct X, --verbose,
 * --json <path> (machine verdict). Exit 0 = no regression, 1 = a
 * cell regressed or diverged, 2 = bad usage / unreadable ledger.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <tuple>
#include <utility>
#include <sstream>
#include <string>
#include <vector>

#include "../bench/common.h"
#include "artifact/store.h"
#include "frontend/irgen.h"
#include "interp/interpreter.h"
#include "obs/attribution.h"
#include "obs/diff.h"
#include "obs/ledger.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "support/stats.h"

using namespace bitspec;
using namespace bitspec::bench;

namespace
{

using Clock = std::chrono::steady_clock;

double
seconds(Clock::time_point a, Clock::time_point b)
{
    return std::chrono::duration<double>(b - a).count();
}

/** The fields the figures consume; any divergence between the serial
 *  and runner paths fails the smoke test. */
bool
sameResult(const RunResult &a, const RunResult &b)
{
    return a.returnValue == b.returnValue &&
           a.outputChecksum == b.outputChecksum &&
           a.counters.instructions == b.counters.instructions &&
           a.counters.cycles == b.counters.cycles &&
           a.totalEnergy == b.totalEnergy && a.epi == b.epi;
}

struct GridTiming
{
    std::string name;
    size_t cells = 0;
    uint64_t systemsBuilt = 0;
    uint64_t cacheHits = 0;
    uint64_t inflightWaits = 0;
    double serialSec = 0;
    double parallelSec = 0;
    /** Per-cell wall-time distribution of the serial pass (compile +
     *  run per fresh System) — the tail is what a figure bench's
     *  latency budget actually feels. */
    double wallP50 = 0, wallP95 = 0, wallP99 = 0;
    bool identical = true;
};

/** Run @p cells serially with fresh Systems, then through a fresh
 *  runner, and compare. */
GridTiming
measure(const std::string &name,
        const std::vector<ExperimentCell> &cells)
{
    GridTiming t;
    t.name = name;
    t.cells = cells.size();

    Histogram cell_walls;
    auto s0 = Clock::now();
    std::vector<RunResult> serial;
    serial.reserve(cells.size());
    for (const ExperimentCell &c : cells) {
        auto c0 = Clock::now();
        System sys = makeSystem(*c.workload, c.config, c.profileSeed);
        serial.push_back(runSeed(sys, *c.workload, c.runSeed));
        cell_walls.add(seconds(c0, Clock::now()));
    }
    auto s1 = Clock::now();
    t.serialSec = seconds(s0, s1);
    t.wallP50 = cell_walls.p50();
    t.wallP95 = cell_walls.p95();
    t.wallP99 = cell_walls.p99();

    ExperimentRunner runner;
    auto p0 = Clock::now();
    std::vector<RunResult> par = runner.run(cells);
    auto p1 = Clock::now();
    t.parallelSec = seconds(p0, p1);
    t.systemsBuilt = runner.stats().systemsBuilt;
    t.cacheHits = runner.stats().cacheHits;
    t.inflightWaits = runner.stats().inflightWaits;

    for (size_t i = 0; i < cells.size(); ++i)
        if (!sameResult(serial[i], par[i]))
            t.identical = false;
    return t;
}

std::vector<ExperimentCell>
fig08Cells()
{
    std::vector<ExperimentCell> cells;
    for (const Workload &w : mibenchSuite()) {
        cells.push_back(cell(w, SystemConfig::baseline()));
        cells.push_back(cell(w, SystemConfig::bitspec()));
    }
    return cells;
}

std::vector<ExperimentCell>
fig16Cells(unsigned images)
{
    const Workload &w = getWorkload("susan-edges");
    const SystemConfig cfg = SystemConfig::bitspec(Heuristic::Max);
    std::vector<ExperimentCell> cells;
    for (unsigned i = 0; i < images; ++i)
        for (unsigned j = 0; j < images; ++j)
            cells.push_back(cell(w, cfg, 100 + i, 100 + j));
    return cells;
}

std::string
jsonSection(const std::vector<GridTiming> &grids, unsigned threads)
{
    std::ostringstream os;
    os << "  \"experiment_engine\": {\n";
    os << "    \"threads\": " << threads << ",\n";
    os << "    \"grids\": [\n";
    for (size_t i = 0; i < grids.size(); ++i) {
        const GridTiming &g = grids[i];
        os << "      {\n";
        os << "        \"name\": \"" << g.name << "\",\n";
        os << "        \"cells\": " << g.cells << ",\n";
        os << "        \"systems_built\": " << g.systemsBuilt << ",\n";
        os << "        \"cache_hits\": " << g.cacheHits << ",\n";
        os << "        \"inflight_waits\": " << g.inflightWaits
           << ",\n";
        os << "        \"serial_sec\": " << g.serialSec << ",\n";
        os << "        \"parallel_sec\": " << g.parallelSec << ",\n";
        os << "        \"cell_wall_p50_sec\": " << g.wallP50 << ",\n";
        os << "        \"cell_wall_p95_sec\": " << g.wallP95 << ",\n";
        os << "        \"cell_wall_p99_sec\": " << g.wallP99 << ",\n";
        os << "        \"speedup\": "
           << (g.parallelSec > 0 ? g.serialSec / g.parallelSec : 0)
           << ",\n";
        os << "        \"bit_identical\": "
           << (g.identical ? "true" : "false") << "\n";
        os << "      }" << (i + 1 < grids.size() ? "," : "") << "\n";
    }
    os << "    ]\n";
    os << "  }\n";
    return os.str();
}

/**
 * Artifact-store cold/warm A/B over the Fig. 8 system population
 * (every suite workload under the baseline and bitspec configs).
 * Cold acquires each System the expensive way — full compile plus a
 * store publish; warm acquires the same System from the store — disk
 * load, decode, restore. Both populations then run seed 0 and must be
 * bit-identical; the speedup is the whole point of the disk tier and
 * is gated at >= 5x (and tracked as speedup.artifact_warm_vs_cold in
 * the perf trajectory).
 */
struct ArtifactTiming
{
    size_t systems = 0;
    double coldSec = 0;      ///< Sum of compile + publish times.
    double warmSec = 0;      ///< Sum of load + restore times.
    uint64_t diskWrites = 0;
    uint64_t diskHits = 0;
    uint64_t runnerDiskHits = 0; ///< Runner-integration spot check.
    bool identical = true;
    bool gate = true;        ///< speedup >= 5x.

    double
    speedup() const
    {
        return warmSec > 0 ? coldSec / warmSec : 0;
    }
};

ArtifactTiming
measureArtifactStore()
{
    namespace fs = std::filesystem;
    ArtifactTiming t;
    const std::string dir =
        (fs::temp_directory_path() /
         ("bitspec_bench_store_" +
          std::to_string(static_cast<unsigned long long>(
              Clock::now().time_since_epoch().count()))))
            .string();
    fs::remove_all(dir);

    std::vector<std::pair<const Workload *, SystemConfig>> specs;
    for (const Workload &w : mibenchSuite()) {
        specs.emplace_back(&w, SystemConfig::baseline());
        specs.emplace_back(&w, SystemConfig::bitspec());
    }
    t.systems = specs.size();

    std::vector<RunResult> cold_results, warm_results;
    cold_results.reserve(specs.size());
    warm_results.reserve(specs.size());

    {
        artifact::ArtifactStore store(dir, 512ull << 20);
        for (const auto &[wp, cfg] : specs) {
            const Workload &w = *wp;
            auto c0 = Clock::now();
            System sys = makeSystem(w, cfg);
            store.publish(
                ExperimentRunner::systemKeyHash(w, cfg, 0),
                sys.makeSnapshot(
                    ExperimentRunner::systemKey(w, cfg, 0)));
            auto c1 = Clock::now();
            t.coldSec += seconds(c0, c1);
            cold_results.push_back(runSeed(sys, w, 0));
        }
        t.diskWrites = store.stats().writes;
    }

    {
        // A fresh store object: the warm path shares only the files
        // on disk with the cold one, like a second process would.
        artifact::ArtifactStore store(dir, 512ull << 20);
        for (const auto &[wp, cfg] : specs) {
            const Workload &w = *wp;
            auto w0 = Clock::now();
            auto snap = store.load(
                ExperimentRunner::systemKeyHash(w, cfg, 0),
                ExperimentRunner::systemKey(w, cfg, 0));
            if (!snap) {
                t.identical = false;
                continue;
            }
            System sys(*snap, cfg);
            auto w1 = Clock::now();
            t.warmSec += seconds(w0, w1);
            warm_results.push_back(runSeed(sys, w, 0));
        }
        t.diskHits = store.stats().hits;
    }

    if (warm_results.size() != cold_results.size())
        t.identical = false;
    else
        for (size_t i = 0; i < cold_results.size(); ++i)
            if (!sameResult(cold_results[i], warm_results[i]))
                t.identical = false;

    // Runner integration: a fresh runner with the store attached must
    // serve every spec from disk and agree with the cold population.
    {
        ExperimentRunner warm_runner;
        warm_runner.enableArtifactStore(dir, 512ull << 20);
        for (size_t i = 0; i < specs.size(); ++i) {
            RunResult r = warm_runner.evaluate(*specs[i].first,
                                               specs[i].second, 0, 0);
            if (!sameResult(cold_results[i], r))
                t.identical = false;
        }
        t.runnerDiskHits = warm_runner.stats().diskHits;
        if (t.runnerDiskHits != specs.size())
            t.identical = false;
    }

    fs::remove_all(dir);
    t.gate = t.speedup() >= 5.0;
    return t;
}

std::string
artifactSection(const ArtifactTiming &t)
{
    std::ostringstream os;
    os << "  \"artifact_store\": {\n";
    os << "    \"systems\": " << t.systems << ",\n";
    os << "    \"compile_cold_sec\": " << t.coldSec << ",\n";
    os << "    \"compile_warm_sec\": " << t.warmSec << ",\n";
    os << "    \"speedup_warm_vs_cold\": " << t.speedup() << ",\n";
    os << "    \"disk_writes\": " << t.diskWrites << ",\n";
    os << "    \"disk_hits\": " << t.diskHits << ",\n";
    os << "    \"runner_disk_hits\": " << t.runnerDiskHits << ",\n";
    os << "    \"bit_identical\": "
       << (t.identical ? "true" : "false") << ",\n";
    os << "    \"gate_speedup_5x\": " << (t.gate ? "true" : "false")
       << "\n";
    os << "  }\n";
    return os.str();
}

/** One static-analysis A/B row: the same workload squeezed with and
 *  without the known-bits candidates + lint elision. */
struct StaticLintRow
{
    std::string name;
    SqueezeStats stats; ///< With static analysis on.
    uint64_t instsOn = 0, instsOff = 0;
    double energyOn = 0, energyOff = 0;
    bool sameChecksum = true;
};

StaticLintRow
measureStaticLint(const std::string &name)
{
    const Workload &w = getWorkload(name);
    SystemConfig on = SystemConfig::bitspec();
    SystemConfig off = on;
    off.squeezeOpts.staticAnalysis = false;

    StaticLintRow row;
    row.name = name;
    System sys_on = makeSystem(w, on);
    RunResult r_on = runSeed(sys_on, w);
    System sys_off = makeSystem(w, off);
    RunResult r_off = runSeed(sys_off, w);

    row.stats = r_on.squeezeStats;
    row.instsOn = r_on.counters.instructions;
    row.instsOff = r_off.counters.instructions;
    row.energyOn = r_on.totalEnergy;
    row.energyOff = r_off.totalEnergy;
    row.sameChecksum = r_on.outputChecksum == r_off.outputChecksum;
    return row;
}

std::string
staticLintSection(const std::vector<StaticLintRow> &rows)
{
    std::ostringstream os;
    os << "  \"static_lint\": [\n";
    for (size_t i = 0; i < rows.size(); ++i) {
        const StaticLintRow &r = rows[i];
        os << "    {\n";
        os << "      \"name\": \"" << r.name << "\",\n";
        os << "      \"lint_proven_safe\": " << r.stats.lintProvenSafe
           << ",\n";
        os << "      \"lint_proven_unsafe\": "
           << r.stats.lintProvenUnsafe << ",\n";
        os << "      \"lint_speculative\": " << r.stats.lintSpeculative
           << ",\n";
        os << "      \"lint_spec_leaks\": " << r.stats.lintSpecLeaks
           << ",\n";
        os << "      \"lint_leaks_discharged\": "
           << r.stats.lintLeaksDischarged << ",\n";
        os << "      \"static_narrowed\": " << r.stats.staticNarrowed
           << ",\n";
        os << "      \"checks_dropped\": " << r.stats.checksDropped
           << ",\n";
        os << "      \"regions_elided\": " << r.stats.regionsElided
           << ",\n";
        os << "      \"instructions_on\": " << r.instsOn << ",\n";
        os << "      \"instructions_off\": " << r.instsOff << ",\n";
        os << "      \"energy_on\": " << r.energyOn << ",\n";
        os << "      \"energy_off\": " << r.energyOff << ",\n";
        os << "      \"energy_delta_pct\": "
           << (r.energyOff > 0
                   ? 100.0 * (r.energyOff - r.energyOn) / r.energyOff
                   : 0)
           << ",\n";
        os << "      \"same_checksum\": "
           << (r.sameChecksum ? "true" : "false") << "\n";
        os << "    }" << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    os << "  ]\n";
    return os.str();
}

/**
 * bitspec-report mode: per-workload, per-region misspeculation
 * attribution with file:line provenance and the energy split vs an
 * unsqueezed baseline. Returns false when any workload's per-region
 * sum diverges from the core's aggregate counter.
 */
bool
printBitspecReport()
{
    printHeader("bitspec-report: per-region misspeculation "
                "attribution",
                "region = function#id at its source line; overhead = "
                "recovery + handler energy; saved = share of the "
                "squeeze savings vs the unsqueezed baseline. "
                "Profiled on seed 0, run on held-out seed 1 so "
                "speculation can actually miss.");
    // Run on an input the profiler never saw — on the training seed
    // every speculation holds and all misspec columns would be zero.
    // The aggressive heuristic maximises speculative coverage, which
    // is what makes the misspec/overhead columns interesting.
    constexpr uint64_t kRunSeed = 1;
    bool ok = true;
    for (const Workload &w : mibenchSuite()) {
        System squeezed =
            makeSystem(w, SystemConfig::bitspec(Heuristic::Max));
        AttributionMap map(squeezed.program());
        AttributionSink sink(map);
        RunResult r = squeezed.run(
            [&w](Module &m) { w.setInput(m, kRunSeed); }, {}, &sink);

        System base = makeSystem(w, SystemConfig::baseline());
        RunResult br = runSeed(base, w, kRunSeed);

        RegionReportInputs inputs;
        inputs.energy = squeezed.config().energy;
        inputs.totalInstructions = r.counters.instructions;
        inputs.totalEnergyPj = r.totalEnergy;
        inputs.baselineEnergyPj = br.totalEnergy;
        auto rows = buildRegionReport(map, sink, inputs);

        const bool sums_match =
            sink.totalMisspecs() == r.counters.misspeculations &&
            sink.unattributedMisspecs() == 0;
        ok = ok && sums_match;
        std::printf("--- %s: %zu regions, %llu misspeculations "
                    "(attribution %s)\n",
                    w.name.c_str(), rows.size(),
                    static_cast<unsigned long long>(
                        r.counters.misspeculations),
                    sums_match ? "exact" : "MISMATCH");
        if (!rows.empty())
            std::printf("%s",
                        formatRegionReport(rows, w.name + ".c")
                            .c_str());
        std::printf("\n");
    }
    return ok;
}

/**
 * bitspec-heat mode: per-block heat listing for every suite workload,
 * with the per-block sums self-checked against the core's aggregate
 * ActivityCounters (the BlockMap is a total partition, so the match
 * must be exact). When @p folded_dir is non-empty, also writes
 * <folded_dir>/<workload>.folded for flamegraph.pl / speedscope.
 */
bool
printBitspecHeat(const std::string &folded_dir)
{
    printHeader("bitspec-heat: per-block cycle attribution",
                "block = MachBlock with file:line provenance via its "
                "SpecRegion; energy = model split (pipeline ~ cycles, "
                "recovery ~ misspecs, rest ~ insts). Profiled on seed "
                "0, run on held-out seed 1 so speculation can "
                "actually miss.");
    constexpr uint64_t kRunSeed = 1;
    constexpr size_t kTopN = 10;
    bool ok = true;
    if (!folded_dir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(folded_dir, ec);
    }
    for (const Workload &w : mibenchSuite()) {
        System sys =
            makeSystem(w, SystemConfig::bitspec(Heuristic::Max));
        BlockMap map(sys.program());
        BlockProfilerSink sink(map);
        RunObservers obs;
        obs.blocks = &sink;
        RunResult r = sys.run(
            [&w](Module &m) { w.setInput(m, kRunSeed); }, {}, obs);

        const bool sums_match =
            sink.totalInsts() == r.counters.instructions &&
            sink.totalCycles() == r.counters.cycles &&
            sink.totalMisspecs() == r.counters.misspeculations &&
            sink.unattributed() == 0;
        ok = ok && sums_match;

        HeatReportInputs inputs;
        inputs.energy = sys.config().energy;
        inputs.totalEnergyPj = r.totalEnergy;
        auto rows = buildHeatReport(map, sink, inputs);
        std::printf("--- %s: %zu block sites, %llu cycles "
                    "(reconciliation %s)\n",
                    w.name.c_str(), map.sites().size(),
                    static_cast<unsigned long long>(r.counters.cycles),
                    sums_match ? "exact" : "MISMATCH");
        std::printf("%s",
                    formatHeatListing(rows, w.name + ".c", kTopN)
                        .c_str());

        if (!folded_dir.empty()) {
            const std::string path =
                folded_dir + "/" + w.name + ".folded";
            std::ofstream of(path);
            if (of) {
                of << foldedStacks(rows, w.name + ".c");
                std::printf("folded stacks -> %s\n", path.c_str());
            } else {
                std::printf("cannot write %s\n", path.c_str());
                ok = false;
            }
        }
        std::printf("\n");
    }
    return ok;
}

/** One timed decoded-interpreter run of the micro_throughput kernel;
 *  returns IR instructions/second. */
double
interpRateOnce(Interpreter &in)
{
    const uint64_t steps0 = in.stats().steps; // Cumulative counter.
    auto t0 = Clock::now();
    in.run("main", {64});
    auto t1 = Clock::now();
    double sec = seconds(t0, t1);
    return sec > 0
               ? static_cast<double>(in.stats().steps - steps0) / sec
               : 0;
}

/** Best-rep interpreter rates for the four observability states. */
struct InterpRates
{
    double off = 0;     ///< All telemetry off (the baseline).
    double traceOn = 0; ///< Tracing on (buffers, no export).
    double profOff = 0; ///< Block profile off (second A-series).
    double profOn = 0;  ///< Block profile recording.
};

/**
 * Best-rep interpreter rates with telemetry off, tracing on, block
 * profile off and block profile on, measured interleaved (one rep of
 * each per iteration) so clock-speed drift hits every series equally
 * instead of biasing whichever batch ran second. The fastest rep per
 * series is the classic low-noise estimator: it is the run least
 * perturbed by scheduler/cache interference.
 *
 * `off` and `profOff` execute the identical template instantiation —
 * the block profile is compiled out when disabled — so their delta is
 * a same-binary A/A measurement of the profiler-off contract.
 */
InterpRates
interpRates(unsigned reps)
{
    const char *kKernel = R"(
        u32 data[256];
        u32 main(u32 n) {
            u32 h = 0;
            for (u32 r = 0; r < n; r++)
                for (u32 i = 0; i < 256; i++)
                    h = h * 31 + (data[i] ^ (h >> 5));
            return h;
        }
    )";
    auto mod = compileSource(kKernel);
    Interpreter in(*mod);
    in.run("main", {64}); // Warm the decode cache.
    std::vector<double> off, trace_on, prof_off, prof_on;
    for (unsigned i = 0; i < reps; ++i) {
        trace::setEnabled(false);
        in.setBlockProfile(false);
        off.push_back(interpRateOnce(in));
        trace::setEnabled(true);
        trace_on.push_back(interpRateOnce(in));
        trace::setEnabled(false);
        prof_off.push_back(interpRateOnce(in));
        in.setBlockProfile(true);
        prof_on.push_back(interpRateOnce(in));
    }
    trace::setEnabled(false);
    trace::reset();
    InterpRates r;
    r.off = *std::max_element(off.begin(), off.end());
    r.traceOn = *std::max_element(trace_on.begin(), trace_on.end());
    r.profOff = *std::max_element(prof_off.begin(), prof_off.end());
    r.profOn = *std::max_element(prof_on.begin(), prof_on.end());
    return r;
}

/** Pull "<counter>": <num> that follows benchmark "name": @p bench
 *  out of a google-benchmark JSON file; 0 when absent. */
double
extractBenchCounter(const std::string &path, const std::string &bench,
                    const std::string &counter)
{
    std::ifstream in(path);
    if (!in)
        return 0;
    std::stringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();
    size_t at = text.find("\"name\": \"" + bench + "\"");
    if (at == std::string::npos)
        return 0;
    size_t key = text.find("\"" + counter + "\":", at);
    if (key == std::string::npos)
        return 0;
    return std::strtod(
        text.c_str() + key + counter.size() + 3, nullptr);
}

struct ObservabilityGate
{
    double disabledRate = 0;  ///< Telemetry compiled in, tracing off.
    double enabledRate = 0;   ///< Tracing on (buffers, no export).
    double enabledOverheadPct = 0;
    double profOffRate = 0;   ///< Block profile off (A/A vs disabled).
    double profOnRate = 0;    ///< Block profile recording.
    double profOffOverheadPct = 0; ///< Gated: must stay within 1%.
    double profOnOverheadPct = 0;  ///< Informational.
    double prevDecodedRate = 0; ///< From BENCH_micro.prev.json.
    double currDecodedRate = 0; ///< From this run's BENCH_micro.json.
    double vsPrevPct = 0;       ///< Informational: cross-run drift.
    bool withinGate = true;     ///< trace + prof-off overhead <= 1%.
};

/**
 * Measure the overhead contract. The hard gates are the controlled
 * in-process experiments: interleaved same-binary runs where only the
 * tracing flag (resp. the block-profile flag) differs must agree
 * within 1%. Profile-on cost is recorded but informational — it
 * buys per-block data and is expected to cost a few percent. The
 * cross-run decoded record vs the stashed BENCH_micro.prev.json is
 * recorded for the PR-to-PR trajectory but not gated — separate
 * google-benchmark invocations on a shared machine swing by a few
 * percent.
 */
ObservabilityGate
measureObservability(const std::string &json_path)
{
    ObservabilityGate g;
    constexpr unsigned kReps = 61; // ~0.5ms/rep; best-of wants depth.
    // Interference (another process stealing the core mid-series) can
    // only *inflate* a best-of interleaved delta, never hide a real
    // overhead, so re-measure a few times and keep the quietest
    // attempt; stop early once the contract is met.
    constexpr unsigned kAttempts = 8;
    for (unsigned attempt = 0; attempt < kAttempts; ++attempt) {
        InterpRates r = interpRates(kReps);
        auto pct = [&r](double rate) {
            return r.off > 0 ? 100.0 * (r.off - rate) / r.off : 0;
        };
        double worst = std::max(pct(r.traceOn), pct(r.profOff));
        double prev_worst = std::max(g.enabledOverheadPct,
                                     g.profOffOverheadPct);
        if (attempt == 0 || worst < prev_worst) {
            g.disabledRate = r.off;
            g.enabledRate = r.traceOn;
            g.profOffRate = r.profOff;
            g.profOnRate = r.profOn;
            g.enabledOverheadPct = pct(r.traceOn);
            g.profOffOverheadPct = pct(r.profOff);
            g.profOnOverheadPct = pct(r.profOn);
        }
        if (std::max(g.enabledOverheadPct, g.profOffOverheadPct) <=
            1.0)
            break;
    }
    g.withinGate = g.enabledOverheadPct <= 1.0 &&
                   g.profOffOverheadPct <= 1.0;

    if (!json_path.empty()) {
        const std::string bench = "BM_InterpreterThroughput/decoded";
        g.currDecodedRate = extractBenchCounter(json_path, bench,
                                                "ir_instrs_per_s");
        g.prevDecodedRate = extractBenchCounter(
            json_path.substr(0, json_path.rfind(".json")) +
                ".prev.json",
            bench, "ir_instrs_per_s");
        if (g.prevDecodedRate > 0 && g.currDecodedRate > 0)
            g.vsPrevPct = 100.0 *
                          (g.currDecodedRate - g.prevDecodedRate) /
                          g.prevDecodedRate;
    }
    return g;
}

std::string
observabilitySection(const ObservabilityGate &g)
{
    std::ostringstream os;
    os << "  \"observability\": {\n";
    os << "    \"disabled_rate\": " << g.disabledRate << ",\n";
    os << "    \"enabled_rate\": " << g.enabledRate << ",\n";
    os << "    \"enabled_overhead_pct\": " << g.enabledOverheadPct
       << ",\n";
    os << "    \"prof_off_rate\": " << g.profOffRate << ",\n";
    os << "    \"prof_on_rate\": " << g.profOnRate << ",\n";
    os << "    \"prof_off_overhead_pct\": " << g.profOffOverheadPct
       << ",\n";
    os << "    \"prof_on_overhead_pct\": " << g.profOnOverheadPct
       << ",\n";
    os << "    \"decoded_rate\": " << g.currDecodedRate << ",\n";
    os << "    \"prev_decoded_rate\": " << g.prevDecodedRate << ",\n";
    os << "    \"vs_prev_pct\": " << g.vsPrevPct << ",\n";
    os << "    \"gate_within_1pct\": "
       << (g.withinGate ? "true" : "false") << "\n";
    os << "  }\n";
    return os.str();
}

/** Ledger-write overhead gate plus live schema validation. */
struct LedgerGate
{
    double offSec = 0; ///< Best ledger-off matrix wall.
    double onSec = 0;  ///< Best ledger-on matrix wall.
    double overheadPct = 0;
    size_t pairs = 0;       ///< Interleaved off/on reps measured.
    size_t records = 0;     ///< Records the on-reps wrote.
    size_t matrixRecords = 0;
    std::string firstInvalid; ///< "" = every record schema-valid.
    bool withinGate = true; ///< Overhead <= 1% and all records valid.
};

/**
 * Measure what BITSPEC_LEDGER costs: the same all-cache-hit matrix is
 * run with the global writer detached and attached, interleaved
 * (interference can only inflate a best-of delta, never hide a real
 * overhead — same reasoning as measureObservability), and the best
 * rep of each series is compared. Detail mode stays off, exactly like
 * the production default the 1% contract covers. Every record the
 * on-reps wrote is then schema-validated (validateLedgerRecord checks
 * provenance completeness and that the energy breakdown sums
 * exactly), so this doubles as a live end-to-end selfcheck.
 */
LedgerGate
measureLedgerGate()
{
    namespace fs = std::filesystem;
    LedgerGate g;
    const std::string path =
        (fs::temp_directory_path() /
         ("bitspec_ledger_gate_" +
          std::to_string(static_cast<unsigned long long>(
              Clock::now().time_since_epoch().count())) +
          ".jsonl"))
            .string();

    std::vector<ExperimentCell> cells = fig16Cells(4);
    // Single-threaded reps: pool scheduling jitter on a loaded
    // machine is several percent of a 16-cell matrix wall, which
    // would drown the sub-1% signal this gate exists to bound.
    ExperimentRunner runner(1);
    LedgerWriter::setGlobal(nullptr); // Warm run stays unledgered.
    runner.run(cells); // Pay the compiles once; reps are run-only.

    auto rep = [&] {
        auto t0 = Clock::now();
        runner.run(cells);
        return seconds(t0, Clock::now());
    };
    auto rep_on = [&] {
        LedgerWriter::setGlobal(std::make_unique<LedgerWriter>(path));
        double s = rep();
        LedgerWriter::setGlobal(nullptr);
        return s;
    };
    constexpr unsigned kMaxPairs = 12;
    for (unsigned pair = 0; pair < kMaxPairs; ++pair) {
        // Alternate order across pairs so slow machine drift
        // (thermal, background load) cancels out of both minima.
        double off, on;
        if (pair % 2 == 0) {
            off = rep();
            on = rep_on();
        } else {
            on = rep_on();
            off = rep();
        }
        if (pair == 0 || off < g.offSec)
            g.offSec = off;
        if (pair == 0 || on < g.onSec)
            g.onSec = on;
        g.pairs = pair + 1;
        g.overheadPct = g.offSec > 0
                            ? 100.0 * (g.onSec - g.offSec) / g.offSec
                            : 0;
        if (pair >= 3 && g.overheadPct <= 1.0)
            break;
    }
    LedgerWriter::setGlobal(nullptr);

    for (const LedgerRecord &r : loadLedger(path)) {
        ++g.records;
        if (r.kind == "matrix")
            ++g.matrixRecords;
        const std::string err = validateLedgerRecord(r);
        if (!err.empty() && g.firstInvalid.empty())
            g.firstInvalid = r.kind + " record: " + err;
    }
    fs::remove(path);

    g.withinGate = g.overheadPct <= 1.0 && g.records > 0 &&
                   g.matrixRecords > 0 && g.firstInvalid.empty();
    return g;
}

std::string
ledgerSection(const LedgerGate &g)
{
    std::ostringstream os;
    os << "  \"run_ledger\": {\n";
    os << "    \"off_sec\": " << g.offSec << ",\n";
    os << "    \"on_sec\": " << g.onSec << ",\n";
    os << "    \"overhead_pct\": " << g.overheadPct << ",\n";
    os << "    \"pairs\": " << g.pairs << ",\n";
    os << "    \"records\": " << g.records << ",\n";
    os << "    \"matrix_records\": " << g.matrixRecords << ",\n";
    os << "    \"schema_valid\": "
       << (g.firstInvalid.empty() ? "true" : "false") << ",\n";
    os << "    \"gate_within_1pct\": "
       << (g.withinGate ? "true" : "false") << "\n";
    os << "  }\n";
    return os.str();
}

/**
 * bitspec-diff mode: regression forensics between two run ledgers.
 * See obs/diff.h for the classification and localization rules.
 */
int
runBitspecDiff(int argc, char **argv)
{
    auto diff_usage = [&] {
        std::fprintf(stderr,
                     "usage: %s bitspec-diff <A.jsonl> <B.jsonl> "
                     "[--abs-tol X] [--rel-tol-pct X] [--verbose] "
                     "[--json <path>]\n",
                     argv[0]);
        return 2;
    };
    std::string path_a, path_b, json_out;
    DiffOptions opts;
    bool verbose = false;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--abs-tol" && i + 1 < argc)
            opts.absTol = std::strtod(argv[++i], nullptr);
        else if (arg == "--rel-tol-pct" && i + 1 < argc)
            opts.relTolPct = std::strtod(argv[++i], nullptr);
        else if (arg == "--verbose")
            verbose = true;
        else if (arg == "--json" && i + 1 < argc)
            json_out = argv[++i];
        else if (path_a.empty())
            path_a = arg;
        else if (path_b.empty())
            path_b = arg;
        else
            return diff_usage();
    }
    if (path_a.empty() || path_b.empty())
        return diff_usage();

    std::vector<LedgerRecord> a = loadLedger(path_a);
    std::vector<LedgerRecord> b = loadLedger(path_b);
    if (a.empty() || b.empty()) {
        std::fprintf(stderr,
                     "bitspec-diff: no ledger records in %s\n",
                     a.empty() ? path_a.c_str() : path_b.c_str());
        return 2;
    }

    LedgerDiff diff = diffLedgers(a, b, opts);
    std::printf("bitspec-diff: %s (%zu records) vs %s (%zu records)\n",
                path_a.c_str(), a.size(), path_b.c_str(), b.size());
    std::printf("%s", formatLedgerDiff(diff, verbose).c_str());
    if (!json_out.empty()) {
        std::ofstream of(json_out);
        if (!of) {
            std::fprintf(stderr, "bitspec-diff: cannot write %s\n",
                         json_out.c_str());
            return 2;
        }
        of << ledgerDiffToJson(diff) << "\n";
        std::printf("verdict -> %s\n", json_out.c_str());
    }
    return diff.clean() ? 0 : 1;
}

/** Splice the section into the google-benchmark JSON by inserting it
 *  before the final closing brace. */
bool
appendToJson(const std::string &path, const std::string &section)
{
    std::ifstream in(path);
    if (!in)
        return false;
    std::stringstream buf;
    buf << in.rdbuf();
    std::string text = buf.str();
    size_t brace = text.find_last_of('}');
    if (brace == std::string::npos)
        return false;
    // Trim trailing whitespace before the brace, then join with ",".
    size_t end = text.find_last_not_of(" \t\n\r", brace - 1);
    if (end == std::string::npos)
        return false;
    std::string out = text.substr(0, end + 1) + ",\n" + section + "}\n";
    std::ofstream of(path, std::ios::trunc);
    if (!of)
        return false;
    of << out;
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc > 1 && std::string(argv[1]) == "bitspec-report")
        return printBitspecReport() ? 0 : 1;
    if (argc > 1 && std::string(argv[1]) == "bitspec-heat")
        return printBitspecHeat(argc > 2 ? argv[2] : "") ? 0 : 1;
    if (argc > 1 && std::string(argv[1]) == "bitspec-diff")
        return runBitspecDiff(argc, argv);

    printHeader("Experiment-engine smoke",
                "Serial (fresh System per cell) vs ExperimentRunner "
                "(pooled + memoized System cache); results verified "
                "bit-identical.");

    std::vector<GridTiming> grids;
    grids.push_back(measure("fig08_matrix", fig08Cells()));
    grids.push_back(measure("fig16_grid_8x8", fig16Cells(8)));

    unsigned threads = ThreadPool::defaultThreadCount();
    bool all_identical = true;
    for (const GridTiming &g : grids) {
        all_identical = all_identical && g.identical;
        std::printf("%-16s cells=%-4zu builds=%-3llu hits=%-4llu "
                    "inflight=%-3llu serial=%.3fs parallel=%.3fs "
                    "speedup=%.2fx identical=%s\n",
                    g.name.c_str(), g.cells,
                    static_cast<unsigned long long>(g.systemsBuilt),
                    static_cast<unsigned long long>(g.cacheHits),
                    static_cast<unsigned long long>(g.inflightWaits),
                    g.serialSec, g.parallelSec,
                    g.parallelSec > 0 ? g.serialSec / g.parallelSec
                                      : 0.0,
                    g.identical ? "yes" : "NO");
        std::printf("%-16s cell wall p50=%.4fs p95=%.4fs p99=%.4fs\n",
                    "", g.wallP50, g.wallP95, g.wallP99);
    }
    std::printf("threads=%u\n", threads);

    // Static-analysis A/B: same workload squeezed with and without
    // the known-bits candidates + lint check elision.
    std::printf("\nstatic lint A/B (on vs off):\n");
    std::vector<StaticLintRow> lint_rows;
    for (const char *name :
         {"CRC32", "bitcount", "dijkstra", "rijndael"}) {
        lint_rows.push_back(measureStaticLint(name));
        const StaticLintRow &r = lint_rows.back();
        all_identical = all_identical && r.sameChecksum;
        std::printf("%-12s safe=%-3u dropped=%-3u elided=%-3u "
                    "insts %llu -> %llu  energy %.4g -> %.4g "
                    "(%+.2f%%)  checksum=%s\n",
                    r.name.c_str(), r.stats.lintProvenSafe,
                    r.stats.checksDropped, r.stats.regionsElided,
                    static_cast<unsigned long long>(r.instsOff),
                    static_cast<unsigned long long>(r.instsOn),
                    r.energyOff, r.energyOn,
                    r.energyOff > 0 ? 100.0 * (r.energyOn - r.energyOff)
                                          / r.energyOff
                                    : 0.0,
                    r.sameChecksum ? "same" : "DIFFERENT");
    }

    // Artifact-store cold/warm A/B: compile-once/serve-many across
    // processes must beat recompiling by a wide margin.
    ArtifactTiming art = measureArtifactStore();
    all_identical = all_identical && art.identical && art.gate;
    std::printf("\nartifact store A/B: %zu systems  cold=%.3fs "
                "warm=%.3fs  speedup=%.1fx (gate >=5x %s)  "
                "writes=%llu hits=%llu runner_hits=%llu  "
                "identical=%s\n",
                art.systems, art.coldSec, art.warmSec, art.speedup(),
                art.gate ? "met" : "MISSED",
                static_cast<unsigned long long>(art.diskWrites),
                static_cast<unsigned long long>(art.diskHits),
                static_cast<unsigned long long>(art.runnerDiskHits),
                art.identical ? "yes" : "NO");

    // Registry view of the same activity: cache + run counters
    // recorded by the ExperimentRunner through obs/metrics.
    std::printf("\nmetrics registry (experiment.* and run.* recorded "
                "by the engine):\n");
    {
        std::ostringstream table;
        MetricsRegistry::global().writeTable(table);
        std::fputs(table.str().c_str(), stdout);
    }

    // Telemetry overhead gate: compiled-in-but-disabled tracing must
    // not move the decoded-interpreter throughput.
    ObservabilityGate gate =
        measureObservability(argc > 1 ? argv[1] : "");
    std::printf("\nobservability gate: disabled=%.3g ir-instrs/s "
                "enabled=%.3g (tracing on costs %+.2f%%)\n",
                gate.disabledRate, gate.enabledRate,
                gate.enabledOverheadPct);
    std::printf("block profile: off=%.3g on=%.3g ir-instrs/s "
                "(off costs %+.2f%%, on costs %+.2f%% informational; "
                "gate %s)\n",
                gate.profOffRate, gate.profOnRate,
                gate.profOffOverheadPct, gate.profOnOverheadPct,
                gate.withinGate ? "within 1%" : "EXCEEDED");
    if (gate.prevDecodedRate > 0)
        std::printf("decoded record vs previous run: %.3g -> %.3g "
                    "(%+.2f%%, informational)\n",
                    gate.prevDecodedRate, gate.currDecodedRate,
                    gate.vsPrevPct);
    else
        std::printf("no BENCH_micro.prev.json record; cross-run "
                    "trajectory skipped\n");

    // Run-ledger overhead gate: BITSPEC_LEDGER alone (no detail mode)
    // must cost at most 1% of matrix wall time, and every record it
    // writes must schema-validate.
    LedgerGate ledger_gate = measureLedgerGate();
    std::printf("\nrun-ledger gate: off=%.3fs on=%.3fs "
                "(%+.2f%% over %zu pairs; gate %s)\n",
                ledger_gate.offSec, ledger_gate.onSec,
                ledger_gate.overheadPct, ledger_gate.pairs,
                ledger_gate.withinGate ? "within 1%" : "EXCEEDED");
    std::printf("run-ledger records: %zu (%zu matrix) schema %s\n",
                ledger_gate.records, ledger_gate.matrixRecords,
                ledger_gate.firstInvalid.empty()
                    ? "valid"
                    : ledger_gate.firstInvalid.c_str());

    if (argc > 1) {
        bool ok = appendToJson(argv[1], jsonSection(grids, threads)) &&
                  appendToJson(argv[1], staticLintSection(lint_rows)) &&
                  appendToJson(argv[1], artifactSection(art)) &&
                  appendToJson(argv[1], observabilitySection(gate)) &&
                  appendToJson(argv[1], ledgerSection(ledger_gate));
        if (ok)
            std::printf("appended experiment_engine + static_lint + "
                        "artifact_store + observability + run_ledger "
                        "sections to %s\n",
                        argv[1]);
        else
            std::printf(
                "could not update %s; sections follow:\n%s%s%s%s%s",
                argv[1], jsonSection(grids, threads).c_str(),
                staticLintSection(lint_rows).c_str(),
                artifactSection(art).c_str(),
                observabilitySection(gate).c_str(),
                ledgerSection(ledger_gate).c_str());
    }
    return all_identical && gate.withinGate && ledger_gate.withinGate
               ? 0
               : 1;
}
