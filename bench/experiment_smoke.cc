/**
 * @file
 * Experiment-engine smoke harness: runs the Fig. 8 matrix and a
 * trimmed Fig. 16 profile/run grid twice — once serially with
 * fresh (uncached) Systems, once through the ExperimentRunner — and
 * records wall times, cell counts and System-cache hit rates.
 *
 * Results are verified bit-identical between the two paths, then
 * appended as an "experiment_engine" section to the BENCH_micro.json
 * written by micro_throughput (path passed as argv[1]; prints to
 * stdout only when omitted).
 */

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "../bench/common.h"

using namespace bitspec;
using namespace bitspec::bench;

namespace
{

using Clock = std::chrono::steady_clock;

double
seconds(Clock::time_point a, Clock::time_point b)
{
    return std::chrono::duration<double>(b - a).count();
}

/** The fields the figures consume; any divergence between the serial
 *  and runner paths fails the smoke test. */
bool
sameResult(const RunResult &a, const RunResult &b)
{
    return a.returnValue == b.returnValue &&
           a.outputChecksum == b.outputChecksum &&
           a.counters.instructions == b.counters.instructions &&
           a.counters.cycles == b.counters.cycles &&
           a.totalEnergy == b.totalEnergy && a.epi == b.epi;
}

struct GridTiming
{
    std::string name;
    size_t cells = 0;
    uint64_t systemsBuilt = 0;
    uint64_t cacheHits = 0;
    double serialSec = 0;
    double parallelSec = 0;
    bool identical = true;
};

/** Run @p cells serially with fresh Systems, then through a fresh
 *  runner, and compare. */
GridTiming
measure(const std::string &name,
        const std::vector<ExperimentCell> &cells)
{
    GridTiming t;
    t.name = name;
    t.cells = cells.size();

    auto s0 = Clock::now();
    std::vector<RunResult> serial;
    serial.reserve(cells.size());
    for (const ExperimentCell &c : cells) {
        System sys = makeSystem(*c.workload, c.config, c.profileSeed);
        serial.push_back(runSeed(sys, *c.workload, c.runSeed));
    }
    auto s1 = Clock::now();
    t.serialSec = seconds(s0, s1);

    ExperimentRunner runner;
    auto p0 = Clock::now();
    std::vector<RunResult> par = runner.run(cells);
    auto p1 = Clock::now();
    t.parallelSec = seconds(p0, p1);
    t.systemsBuilt = runner.stats().systemsBuilt;
    t.cacheHits = runner.stats().cacheHits;

    for (size_t i = 0; i < cells.size(); ++i)
        if (!sameResult(serial[i], par[i]))
            t.identical = false;
    return t;
}

std::vector<ExperimentCell>
fig08Cells()
{
    std::vector<ExperimentCell> cells;
    for (const Workload &w : mibenchSuite()) {
        cells.push_back(cell(w, SystemConfig::baseline()));
        cells.push_back(cell(w, SystemConfig::bitspec()));
    }
    return cells;
}

std::vector<ExperimentCell>
fig16Cells(unsigned images)
{
    const Workload &w = getWorkload("susan-edges");
    const SystemConfig cfg = SystemConfig::bitspec(Heuristic::Max);
    std::vector<ExperimentCell> cells;
    for (unsigned i = 0; i < images; ++i)
        for (unsigned j = 0; j < images; ++j)
            cells.push_back(cell(w, cfg, 100 + i, 100 + j));
    return cells;
}

std::string
jsonSection(const std::vector<GridTiming> &grids, unsigned threads)
{
    std::ostringstream os;
    os << "  \"experiment_engine\": {\n";
    os << "    \"threads\": " << threads << ",\n";
    os << "    \"grids\": [\n";
    for (size_t i = 0; i < grids.size(); ++i) {
        const GridTiming &g = grids[i];
        os << "      {\n";
        os << "        \"name\": \"" << g.name << "\",\n";
        os << "        \"cells\": " << g.cells << ",\n";
        os << "        \"systems_built\": " << g.systemsBuilt << ",\n";
        os << "        \"cache_hits\": " << g.cacheHits << ",\n";
        os << "        \"serial_sec\": " << g.serialSec << ",\n";
        os << "        \"parallel_sec\": " << g.parallelSec << ",\n";
        os << "        \"speedup\": "
           << (g.parallelSec > 0 ? g.serialSec / g.parallelSec : 0)
           << ",\n";
        os << "        \"bit_identical\": "
           << (g.identical ? "true" : "false") << "\n";
        os << "      }" << (i + 1 < grids.size() ? "," : "") << "\n";
    }
    os << "    ]\n";
    os << "  }\n";
    return os.str();
}

/** One static-analysis A/B row: the same workload squeezed with and
 *  without the known-bits candidates + lint elision. */
struct StaticLintRow
{
    std::string name;
    SqueezeStats stats; ///< With static analysis on.
    uint64_t instsOn = 0, instsOff = 0;
    double energyOn = 0, energyOff = 0;
    bool sameChecksum = true;
};

StaticLintRow
measureStaticLint(const std::string &name)
{
    const Workload &w = getWorkload(name);
    SystemConfig on = SystemConfig::bitspec();
    SystemConfig off = on;
    off.squeezeOpts.staticAnalysis = false;

    StaticLintRow row;
    row.name = name;
    System sys_on = makeSystem(w, on);
    RunResult r_on = runSeed(sys_on, w);
    System sys_off = makeSystem(w, off);
    RunResult r_off = runSeed(sys_off, w);

    row.stats = r_on.squeezeStats;
    row.instsOn = r_on.counters.instructions;
    row.instsOff = r_off.counters.instructions;
    row.energyOn = r_on.totalEnergy;
    row.energyOff = r_off.totalEnergy;
    row.sameChecksum = r_on.outputChecksum == r_off.outputChecksum;
    return row;
}

std::string
staticLintSection(const std::vector<StaticLintRow> &rows)
{
    std::ostringstream os;
    os << "  \"static_lint\": [\n";
    for (size_t i = 0; i < rows.size(); ++i) {
        const StaticLintRow &r = rows[i];
        os << "    {\n";
        os << "      \"name\": \"" << r.name << "\",\n";
        os << "      \"lint_proven_safe\": " << r.stats.lintProvenSafe
           << ",\n";
        os << "      \"lint_proven_unsafe\": "
           << r.stats.lintProvenUnsafe << ",\n";
        os << "      \"lint_speculative\": " << r.stats.lintSpeculative
           << ",\n";
        os << "      \"static_narrowed\": " << r.stats.staticNarrowed
           << ",\n";
        os << "      \"checks_dropped\": " << r.stats.checksDropped
           << ",\n";
        os << "      \"regions_elided\": " << r.stats.regionsElided
           << ",\n";
        os << "      \"instructions_on\": " << r.instsOn << ",\n";
        os << "      \"instructions_off\": " << r.instsOff << ",\n";
        os << "      \"energy_on\": " << r.energyOn << ",\n";
        os << "      \"energy_off\": " << r.energyOff << ",\n";
        os << "      \"energy_delta_pct\": "
           << (r.energyOff > 0
                   ? 100.0 * (r.energyOff - r.energyOn) / r.energyOff
                   : 0)
           << ",\n";
        os << "      \"same_checksum\": "
           << (r.sameChecksum ? "true" : "false") << "\n";
        os << "    }" << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    os << "  ]\n";
    return os.str();
}

/** Splice the section into the google-benchmark JSON by inserting it
 *  before the final closing brace. */
bool
appendToJson(const std::string &path, const std::string &section)
{
    std::ifstream in(path);
    if (!in)
        return false;
    std::stringstream buf;
    buf << in.rdbuf();
    std::string text = buf.str();
    size_t brace = text.find_last_of('}');
    if (brace == std::string::npos)
        return false;
    // Trim trailing whitespace before the brace, then join with ",".
    size_t end = text.find_last_not_of(" \t\n\r", brace - 1);
    if (end == std::string::npos)
        return false;
    std::string out = text.substr(0, end + 1) + ",\n" + section + "}\n";
    std::ofstream of(path, std::ios::trunc);
    if (!of)
        return false;
    of << out;
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    printHeader("Experiment-engine smoke",
                "Serial (fresh System per cell) vs ExperimentRunner "
                "(pooled + memoized System cache); results verified "
                "bit-identical.");

    std::vector<GridTiming> grids;
    grids.push_back(measure("fig08_matrix", fig08Cells()));
    grids.push_back(measure("fig16_grid_8x8", fig16Cells(8)));

    unsigned threads = ThreadPool::defaultThreadCount();
    bool all_identical = true;
    for (const GridTiming &g : grids) {
        all_identical = all_identical && g.identical;
        std::printf("%-16s cells=%-4zu builds=%-3llu hits=%-4llu "
                    "serial=%.3fs parallel=%.3fs speedup=%.2fx "
                    "identical=%s\n",
                    g.name.c_str(), g.cells,
                    static_cast<unsigned long long>(g.systemsBuilt),
                    static_cast<unsigned long long>(g.cacheHits),
                    g.serialSec, g.parallelSec,
                    g.parallelSec > 0 ? g.serialSec / g.parallelSec
                                      : 0.0,
                    g.identical ? "yes" : "NO");
    }
    std::printf("threads=%u\n", threads);

    // Static-analysis A/B: same workload squeezed with and without
    // the known-bits candidates + lint check elision.
    std::printf("\nstatic lint A/B (on vs off):\n");
    std::vector<StaticLintRow> lint_rows;
    for (const char *name :
         {"CRC32", "bitcount", "dijkstra", "rijndael"}) {
        lint_rows.push_back(measureStaticLint(name));
        const StaticLintRow &r = lint_rows.back();
        all_identical = all_identical && r.sameChecksum;
        std::printf("%-12s safe=%-3u dropped=%-3u elided=%-3u "
                    "insts %llu -> %llu  energy %.4g -> %.4g "
                    "(%+.2f%%)  checksum=%s\n",
                    r.name.c_str(), r.stats.lintProvenSafe,
                    r.stats.checksDropped, r.stats.regionsElided,
                    static_cast<unsigned long long>(r.instsOff),
                    static_cast<unsigned long long>(r.instsOn),
                    r.energyOff, r.energyOn,
                    r.energyOff > 0 ? 100.0 * (r.energyOn - r.energyOff)
                                          / r.energyOff
                                    : 0.0,
                    r.sameChecksum ? "same" : "DIFFERENT");
    }

    if (argc > 1) {
        bool ok = appendToJson(argv[1], jsonSection(grids, threads)) &&
                  appendToJson(argv[1], staticLintSection(lint_rows));
        if (ok)
            std::printf("appended experiment_engine + static_lint "
                        "sections to %s\n",
                        argv[1]);
        else
            std::printf("could not update %s; sections follow:\n%s%s",
                        argv[1], jsonSection(grids, threads).c_str(),
                        staticLintSection(lint_rows).c_str());
    }
    return all_identical ? 0 : 1;
}
