/**
 * @file
 * Fig. 14 + Table 2 (RQ5): energy per bitwidth-selection heuristic
 * and the misspeculation counts. Paper: more aggressive heuristics
 * misspeculate more, always correlating with higher energy.
 */

#include "../bench/common.h"

using namespace bitspec;
using namespace bitspec::bench;

int
main()
{
    printHeader("Figure 14 + Table 2: heuristic aggressiveness (RQ5)",
                "Energy relative to BASELINE and misspeculation "
                "counts for MAX / AVG / MIN.");

    std::vector<ExperimentCell> cells;
    for (const Workload &w : mibenchSuite()) {
        cells.push_back(cell(w, SystemConfig::baseline()));
        for (Heuristic h :
             {Heuristic::Max, Heuristic::Avg, Heuristic::Min})
            cells.push_back(cell(w, SystemConfig::bitspec(h)));
    }
    std::vector<RunResult> res = runMatrix(cells);

    std::printf("%-16s | %8s %8s %8s | %8s %8s %8s\n", "benchmark",
                "MAX", "AVG", "MIN", "mis-MAX", "mis-AVG", "mis-MIN");
    size_t i = 0;
    for (const Workload &w : mibenchSuite()) {
        const RunResult &base = res[i++];
        double rel[3];
        unsigned long long mis[3];
        for (int k = 0; k < 3; ++k) {
            const RunResult &r = res[i++];
            rel[k] = r.totalEnergy / base.totalEnergy;
            mis[k] = r.counters.misspeculations;
        }
        std::printf("%-16s | %8.3f %8.3f %8.3f | %8llu %8llu %8llu\n",
                    w.name.c_str(), rel[0], rel[1], rel[2], mis[0],
                    mis[1], mis[2]);
    }
    return 0;
}
