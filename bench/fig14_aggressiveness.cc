/**
 * @file
 * Fig. 14 + Table 2 (RQ5): energy per bitwidth-selection heuristic
 * and the misspeculation counts. Paper: more aggressive heuristics
 * misspeculate more, always correlating with higher energy.
 */

#include "../bench/common.h"

using namespace bitspec;
using namespace bitspec::bench;

int
main()
{
    printHeader("Figure 14 + Table 2: heuristic aggressiveness (RQ5)",
                "Energy relative to BASELINE and misspeculation "
                "counts for MAX / AVG / MIN.");

    std::printf("%-16s | %8s %8s %8s | %8s %8s %8s\n", "benchmark",
                "MAX", "AVG", "MIN", "mis-MAX", "mis-AVG", "mis-MIN");
    for (const Workload &w : mibenchSuite()) {
        RunResult base = evaluate(w, SystemConfig::baseline());
        double rel[3];
        unsigned long long mis[3];
        int k = 0;
        for (Heuristic h :
             {Heuristic::Max, Heuristic::Avg, Heuristic::Min}) {
            RunResult r = evaluate(w, SystemConfig::bitspec(h));
            rel[k] = r.totalEnergy / base.totalEnergy;
            mis[k] = r.counters.misspeculations;
            ++k;
        }
        std::printf("%-16s | %8.3f %8.3f %8.3f | %8llu %8llu %8llu\n",
                    w.name.c_str(), rel[0], rel[1], rel[2], mis[0],
                    mis[1], mis[2]);
    }
    return 0;
}
