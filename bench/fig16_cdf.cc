/**
 * @file
 * Fig. 16 (RQ6 deep dive): susan-edges cross-product over synthetic
 * images — compile with image i as the profile input, run on image j,
 * report dynamic instructions relative to the self-profiled binary,
 * as a cumulative distribution per heuristic. Paper: MAX is robust,
 * AVG and MIN are input-sensitive.
 *
 * The grid is one experiment matrix per heuristic: the runner's
 * System cache compiles each profile image once and reuses it for all
 * run images (kImages builds serving kImages^2 cells). Grid size
 * defaults to 6 (paper: 50); set BITSPEC_FIG16_IMAGES to widen.
 */

#include <algorithm>

#include "../bench/common.h"
#include "support/env.h"

using namespace bitspec;
using namespace bitspec::bench;

namespace
{

unsigned
gridSize()
{
    // Paper uses 50; scaled down by default.
    return env::getUnsigned("BITSPEC_FIG16_IMAGES", 6, 2, 50);
}

} // namespace

int
main()
{
    const unsigned kImages = gridSize();
    printHeader("Figure 16: susan-edges profile/run image "
                "cross-product CDF",
                strFormat("%ux%u image pairs; value = dyn. "
                          "instructions of cross-profiled binary / "
                          "self-profiled binary.",
                          kImages, kImages));

    const Workload &w = getWorkload("susan-edges");

    for (Heuristic h :
         {Heuristic::Max, Heuristic::Avg, Heuristic::Min}) {
        const SystemConfig cfg = SystemConfig::bitspec(h);

        // Self-profiled reference cells (profile j, run j), then the
        // full profile x run cross product; one matrix, cached
        // Systems shared between both halves.
        std::vector<ExperimentCell> cells;
        for (unsigned j = 0; j < kImages; ++j)
            cells.push_back(cell(w, cfg, 100 + j, 100 + j));
        for (unsigned i = 0; i < kImages; ++i)
            for (unsigned j = 0; j < kImages; ++j)
                cells.push_back(cell(w, cfg, 100 + i, 100 + j));
        std::vector<RunResult> res = runMatrix(cells);

        std::vector<double> self_insts(kImages);
        for (unsigned j = 0; j < kImages; ++j)
            self_insts[j] =
                static_cast<double>(res[j].counters.instructions);

        std::vector<double> ratios;
        size_t k = kImages;
        for (unsigned i = 0; i < kImages; ++i) {
            for (unsigned j = 0; j < kImages; ++j) {
                const RunResult &r = res[k++];
                ratios.push_back(
                    static_cast<double>(r.counters.instructions) /
                    self_insts[j]);
            }
        }
        std::sort(ratios.begin(), ratios.end());
        std::printf("%s CDF:  p10=%.4f  p50=%.4f  p90=%.4f  "
                    "p100=%.4f\n",
                    heuristicName(h), percentile(ratios, 10),
                    percentile(ratios, 50), percentile(ratios, 90),
                    percentile(ratios, 100));
    }
    std::printf("\npaper: MAX stabilises at a shared worst case; AVG "
                "and MIN spread wider.\n");
    return 0;
}
