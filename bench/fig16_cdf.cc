/**
 * @file
 * Fig. 16 (RQ6 deep dive): susan-edges cross-product over synthetic
 * images — compile with image i as the profile input, run on image j,
 * report dynamic instructions relative to the self-profiled binary,
 * as a cumulative distribution per heuristic. Paper: MAX is robust,
 * AVG and MIN are input-sensitive.
 */

#include <algorithm>

#include "../bench/common.h"

using namespace bitspec;
using namespace bitspec::bench;

int
main()
{
    constexpr unsigned kImages = 6; // Paper uses 50; scaled down.
    printHeader("Figure 16: susan-edges profile/run image "
                "cross-product CDF",
                strFormat("%ux%u image pairs; value = dyn. "
                          "instructions of cross-profiled binary / "
                          "self-profiled binary.",
                          kImages, kImages));

    const Workload &w = getWorkload("susan-edges");

    for (Heuristic h :
         {Heuristic::Max, Heuristic::Avg, Heuristic::Min}) {
        // Self-profiled reference instruction counts per run image.
        std::vector<double> self_insts(kImages);
        std::vector<System> systems;
        systems.reserve(kImages);
        for (unsigned i = 0; i < kImages; ++i)
            systems.push_back(makeSystem(w, SystemConfig::bitspec(h),
                                         /*profile_seed=*/100 + i));
        for (unsigned j = 0; j < kImages; ++j) {
            RunResult r = runSeed(systems[j], w, 100 + j);
            self_insts[j] =
                static_cast<double>(r.counters.instructions);
        }

        std::vector<double> ratios;
        for (unsigned i = 0; i < kImages; ++i) {
            for (unsigned j = 0; j < kImages; ++j) {
                RunResult r = runSeed(systems[i], w, 100 + j);
                ratios.push_back(
                    static_cast<double>(r.counters.instructions) /
                    self_insts[j]);
            }
        }
        std::sort(ratios.begin(), ratios.end());
        std::printf("%s CDF:  p10=%.4f  p50=%.4f  p90=%.4f  "
                    "p100=%.4f\n",
                    heuristicName(h), percentile(ratios, 10),
                    percentile(ratios, 50), percentile(ratios, 90),
                    percentile(ratios, 100));
    }
    std::printf("\npaper: MAX stabilises at a shared worst case; AVG "
                "and MIN spread wider.\n");
    return 0;
}
