/**
 * @file
 * Fig. 13 (RQ4): disabling the expander. Paper: BASELINE loses ~10%
 * energy without it; BITSPEC's EPI advantage shrinks from 10.36% to
 * 6.41% — expansion and BitSpec compound.
 */

#include "../bench/common.h"

using namespace bitspec;
using namespace bitspec::bench;

int
main()
{
    printHeader("Figure 13: expander ablation (RQ4)",
                "Energy/EPI relative to BASELINE-with-expander.");

    SystemConfig base_noexp = SystemConfig::baseline();
    base_noexp.expander.enabled = false;
    SystemConfig sp_noexp = SystemConfig::bitspec();
    sp_noexp.expander.enabled = false;

    std::vector<ExperimentCell> cells;
    for (const Workload &w : mibenchSuite()) {
        cells.push_back(cell(w, SystemConfig::baseline()));
        cells.push_back(cell(w, base_noexp));
        cells.push_back(cell(w, SystemConfig::bitspec()));
        cells.push_back(cell(w, sp_noexp));
    }
    std::vector<RunResult> res = runMatrix(cells);

    std::vector<double> epi_on, epi_off;
    std::printf("%-16s %14s %14s %14s\n", "benchmark",
                "base(-exp)", "bitspec", "bitspec(-exp)");
    size_t k = 0;
    for (const Workload &w : mibenchSuite()) {
        const RunResult &base = res[k++];
        const RunResult &bn = res[k++];
        const RunResult &sp = res[k++];
        const RunResult &sn = res[k++];

        epi_on.push_back(sp.epi / base.epi);
        epi_off.push_back(sn.epi / bn.epi);
        std::printf("%-16s %14.3f %14.3f %14.3f\n", w.name.c_str(),
                    bn.totalEnergy / base.totalEnergy,
                    sp.totalEnergy / base.totalEnergy,
                    sn.totalEnergy / base.totalEnergy);
    }
    std::printf("\nmean EPI ratio with expander: %.4f, without: %.4f "
                "(paper: 0.8964 vs 0.9359)\n",
                mean(epi_on), mean(epi_off));
    return 0;
}
