/**
 * @file
 * Differential misspeculation fuzzer driver (ISSUE 9, RQ: do the
 * squeeze/misspeculation theorems hold off the beaten path?).
 *
 * Generates boundary-biased random programs (fuzz/gen.h) and runs
 * each through every engine x policy combination (fuzz/differential.h):
 * the decoded interpreter on the squeezed IR plus legacy Core and
 * FastCore on compiled EMB32, under hardware, force-first and random
 * misspeculation. Any observational mismatch against the unsqueezed
 * reference interpreter is a divergence; with --shrink it is reduced
 * to a minimal re-runnable repro (fuzz/shrink.h) whose source is
 * printed ready to paste into a regression test.
 *
 *   fuzz_spec --runs 500 --seed 1          # the ctest smoke budget
 *   fuzz_spec --runs 100000 --seed 42      # overnight soak
 *   fuzz_spec --runs 500 --shrink          # auto-shrink divergences
 *   fuzz_spec --inject-divergence --shrink # shrinker self-test
 *
 * --inject-divergence treats "the compiled BitSpec machine run
 * misspeculates at least once" as the failure predicate instead of a
 * real mismatch. Divergences are not expected from a correct build
 * (that is the point), so this exercises the full find -> shrink ->
 * minimal-repro path against live engine runs; the run fails if the
 * shrinker cannot reduce the witness.
 *
 * Exit status: 0 = no unexplained divergence, 1 = divergence found,
 * 2 = bad usage / self-test failure.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "../bench/common.h"
#include "fuzz/differential.h"
#include "fuzz/gen.h"
#include "fuzz/shrink.h"
#include "obs/flightrec.h"

namespace
{

using namespace bitspec;

struct Options
{
    uint64_t runs = 500;
    uint64_t seed = 1;
    bool shrink = false;
    bool injectDivergence = false;
};

void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--runs N] [--seed S] [--shrink] "
                 "[--inject-divergence]\n",
                 argv0);
}

/** Shrink @p p under @p pred and print the minimal repro. */
void
printShrunk(const FuzzProgram &p,
            const std::function<bool(const FuzzProgram &)> &pred,
            FuzzShrinkResult *out = nullptr)
{
    FuzzShrinkResult r = shrinkProgram(p, pred);
    std::printf("shrink: %u -> %u statements (%u probes, %u edits "
                "kept)\n",
                p.stmtCount(), r.program.stmtCount(), r.probes,
                r.accepted);
    std::printf("---- minimal repro (seed %llu) ----\n%s"
                "-----------------------------------\n",
                static_cast<unsigned long long>(p.seed),
                r.program.render().c_str());
    if (out)
        *out = std::move(r);
}

/** --inject-divergence: prove the find->shrink path on a synthetic
 *  predicate ("the BitSpec machine run misspeculates") evaluated with
 *  real engine runs through the memoized runner. */
int
runInjected(const Options &opt)
{
    ExperimentRunner &runner = bench::runner();
    const SystemConfig cfg = SystemConfig::bitspec();

    auto misspeculates = [&](const FuzzProgram &p) {
        try {
            Workload w = makeFuzzWorkload(p);
            RunResult r = runner.evaluate(w, cfg, /*profile_seed=*/0,
                                          /*run_seed=*/1);
            return r.counters.misspeculations > 0;
        } catch (const FatalError &) {
            return false; // Broken candidate, not a witness.
        }
    };

    for (uint64_t i = 0; i < opt.runs; ++i) {
        FuzzProgram p = generateProgram(opt.seed + i);
        if (!misspeculates(p))
            continue;
        std::printf("injected divergence: seed %llu misspeculates\n",
                    static_cast<unsigned long long>(p.seed));
        FuzzShrinkResult r;
        printShrunk(p, misspeculates, &r);
        if (!misspeculates(r.program)) {
            std::printf("FAIL: shrunk program lost the property\n");
            return 2;
        }
        if (r.program.stmtCount() >= p.stmtCount() &&
            r.accepted == 0) {
            std::printf("FAIL: shrinker made no progress\n");
            return 2;
        }
        return 0;
    }
    std::printf("FAIL: no misspeculating program in %llu seeds\n",
                static_cast<unsigned long long>(opt.runs));
    return 2;
}

int
runFuzz(const Options &opt)
{
    ExperimentRunner &runner = bench::runner();
    uint64_t agreed = 0, skipped = 0, diverged = 0, runs = 0;

    // Whole differentials fan out across a driver pool (the runner's
    // own pool handles the machine cells inside each); results are
    // drained in seed order so output stays deterministic. On a
    // single-core host the pool is pure context-switch overhead, so
    // run inline instead.
    const bool serial = ThreadPool::defaultThreadCount() <= 1;
    std::unique_ptr<ThreadPool> pool =
        serial ? nullptr : std::make_unique<ThreadPool>();
    std::vector<std::future<FuzzDiffResult>> futs;
    futs.reserve(serial ? 0 : opt.runs);
    if (!serial)
        for (uint64_t i = 0; i < opt.runs; ++i)
            futs.push_back(pool->submit([&opt, &runner, i] {
                return runFuzzDifferential(
                    generateProgram(opt.seed + i), runner);
            }));

    for (uint64_t i = 0; i < opt.runs; ++i) {
        FuzzDiffResult r =
            serial ? runFuzzDifferential(generateProgram(opt.seed + i),
                                         runner)
                   : futs[i].get();
        runs += r.runsExecuted;
        switch (r.status) {
          case FuzzDiffStatus::Agree:
            ++agreed;
            break;
          case FuzzDiffStatus::Skipped:
            ++skipped;
            break;
          case FuzzDiffStatus::Diverged: {
            ++diverged;
            FuzzProgram p = generateProgram(opt.seed + i);
            std::printf("DIVERGENCE seed %llu: %s\n",
                        static_cast<unsigned long long>(p.seed),
                        r.detail.c_str());
            // A divergence is exactly the moment the recent-event
            // rings were built for: snapshot them before the shrink
            // loop floods the buffers with reduction probes.
            if (flightrec::active()) {
                const std::string dump =
                    flightrec::dumpNow("divergence");
                if (!dump.empty())
                    std::printf("flight record -> %s\n",
                                dump.c_str());
            }
            if (opt.shrink) {
                printShrunk(p, [&](const FuzzProgram &c) {
                    return runFuzzDifferential(c, runner).status ==
                           FuzzDiffStatus::Diverged;
                });
            } else {
                std::printf("---- source (rerun: fuzz_spec --runs 1 "
                            "--seed %llu --shrink) ----\n%s\n",
                            static_cast<unsigned long long>(p.seed),
                            p.render().c_str());
            }
            break;
          }
        }
    }

    ExperimentStats st = runner.stats();
    std::printf("fuzz_spec: %llu programs (%llu agreed, %llu "
                "skipped, %llu diverged), %llu engine-x-policy "
                "runs, %llu systems built, %llu cache hits\n",
                static_cast<unsigned long long>(opt.runs),
                static_cast<unsigned long long>(agreed),
                static_cast<unsigned long long>(skipped),
                static_cast<unsigned long long>(diverged),
                static_cast<unsigned long long>(runs),
                static_cast<unsigned long long>(st.systemsBuilt),
                static_cast<unsigned long long>(st.cacheHits));
    return diverged ? 1 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--runs") && i + 1 < argc)
            opt.runs = std::strtoull(argv[++i], nullptr, 0);
        else if (!std::strcmp(argv[i], "--seed") && i + 1 < argc)
            opt.seed = std::strtoull(argv[++i], nullptr, 0);
        else if (!std::strcmp(argv[i], "--shrink"))
            opt.shrink = true;
        else if (!std::strcmp(argv[i], "--inject-divergence"))
            opt.injectDivergence = true;
        else {
            usage(argv[0]);
            return 2;
        }
    }
    return opt.injectDivergence ? runInjected(opt) : runFuzz(opt);
}
