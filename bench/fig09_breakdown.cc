/**
 * @file
 * Fig. 9: per-component energy breakdown (ALU, register file, D$, I$,
 * pipeline), BITSPEC relative to the same component on BASELINE.
 */

#include "../bench/common.h"

using namespace bitspec;
using namespace bitspec::bench;

int
main()
{
    printHeader("Figure 9: component energy breakdown",
                "Each column: BITSPEC component energy / BASELINE "
                "component energy.");

    std::vector<ExperimentCell> cells;
    for (const Workload &w : mibenchSuite()) {
        cells.push_back(cell(w, SystemConfig::baseline()));
        cells.push_back(cell(w, SystemConfig::bitspec()));
    }
    std::vector<RunResult> res = runMatrix(cells);

    std::printf("%-16s %8s %8s %8s %8s %8s | %s\n", "benchmark", "ALU",
                "RF", "D$", "I$", "pipe", "baseline shares");
    size_t k = 0;
    for (const Workload &w : mibenchSuite()) {
        const RunResult &b = res[k++];
        const RunResult &s = res[k++];
        double bt = b.energy.total();
        std::printf(
            "%-16s %8.3f %8.3f %8.3f %8.3f %8.3f | "
            "alu %.0f%% rf %.0f%% d$ %.0f%% i$ %.0f%% pipe %.0f%%\n",
            w.name.c_str(), s.energy.alu / b.energy.alu,
            s.energy.regfile / b.energy.regfile,
            s.energy.dcache / b.energy.dcache,
            s.energy.icache / b.energy.icache,
            s.energy.pipeline / b.energy.pipeline,
            100 * b.energy.alu / bt, 100 * b.energy.regfile / bt,
            100 * b.energy.dcache / bt, 100 * b.energy.icache / bt,
            100 * b.energy.pipeline / bt);
    }
    return 0;
}
