/**
 * @file
 * Fig. 18 (RQ9): the compact Thumb-like ISA executes more dynamic
 * instructions than BASELINE (two-address ops, fewer registers).
 * Paper: +25.76% on average, up to +73.59%.
 */

#include "../bench/common.h"

using namespace bitspec;
using namespace bitspec::bench;

int
main()
{
    printHeader("Figure 18: Thumb-like compact ISA (RQ9)",
                "Dynamic instructions relative to BASELINE.");

    SystemConfig tc = SystemConfig::baseline();
    tc.isa = TargetISA::Thumb;

    std::vector<ExperimentCell> cells;
    for (const Workload &w : mibenchSuite()) {
        cells.push_back(cell(w, SystemConfig::baseline()));
        cells.push_back(cell(w, tc));
    }
    std::vector<RunResult> res = runMatrix(cells);

    std::vector<double> ratios;
    std::printf("%-16s %12s\n", "benchmark", "thumb/base");
    size_t k = 0;
    for (const Workload &w : mibenchSuite()) {
        const RunResult &base = res[k++];
        const RunResult &th = res[k++];
        double r = static_cast<double>(th.counters.instructions) /
                   static_cast<double>(base.counters.instructions);
        ratios.push_back(r);
        std::printf("%-16s %12.3f\n", w.name.c_str(), r);
    }
    std::printf("%-16s %12.3f  (paper: mean 1.258, max 1.736)\n",
                "mean", mean(ratios));
    return 0;
}
