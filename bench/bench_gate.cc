/**
 * @file
 * Perf-trajectory gate: distils a BENCH_micro.json into one
 * TrajectoryRecord, compares it against the rolling baseline in the
 * history file, appends the record, and exits non-zero on regression.
 *
 * Usage:
 *   bench_gate <BENCH_micro.json> <history.jsonl>
 *              [--check-only] [--window N] [--drop-pct X]
 *              [--ledger <run.jsonl>] [--ledger-baseline <prev.jsonl>]
 *
 * The record is appended even when the gate fails — a regression is
 * exactly the run the history must remember — unless --check-only is
 * given. Runs from debug builds are tagged and only ever compared
 * against other debug runs (see obs/trajectory.h).
 *
 * When the gate trips and both ledger paths are given, the failure is
 * auto-forensicated: the run ledger is diffed against the baseline
 * ledger (obs/diff.h) and the drift table — localized to stage,
 * region and block — is printed below the gate verdict. The diff
 * never changes the exit status; it explains it.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/diff.h"
#include "obs/trajectory.h"
#include "support/log.h"

using namespace bitspec;

namespace
{

/** `git rev-parse --short HEAD`, or "unknown" outside a checkout. */
std::string
gitShortSha()
{
    FILE *p = popen("git rev-parse --short HEAD 2>/dev/null", "r");
    if (!p)
        return "unknown";
    char buf[64] = {};
    size_t n = fread(buf, 1, sizeof buf - 1, p);
    pclose(p);
    std::string sha(buf, n);
    while (!sha.empty() &&
           (sha.back() == '\n' || sha.back() == '\r'))
        sha.pop_back();
    return sha.empty() ? "unknown" : sha;
}

std::string
utcTimestamp()
{
    std::time_t now = std::chrono::system_clock::to_time_t(
        std::chrono::system_clock::now());
    std::tm tm{};
    gmtime_r(&now, &tm);
    char buf[32];
    std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", &tm);
    return buf;
}

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s <BENCH_micro.json> <history.jsonl> "
                 "[--check-only] [--window N] [--drop-pct X] "
                 "[--ledger <run.jsonl>] "
                 "[--ledger-baseline <prev.jsonl>]\n",
                 argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string bench_path, history_path;
    std::string ledger_path, ledger_baseline_path;
    bool check_only = false;
    GateOptions opts;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--check-only") {
            check_only = true;
        } else if (arg == "--window" && i + 1 < argc) {
            opts.window =
                static_cast<size_t>(std::strtoul(argv[++i], nullptr, 10));
        } else if (arg == "--drop-pct" && i + 1 < argc) {
            opts.defaultDropPct = std::strtod(argv[++i], nullptr);
        } else if (arg == "--ledger" && i + 1 < argc) {
            ledger_path = argv[++i];
        } else if (arg == "--ledger-baseline" && i + 1 < argc) {
            ledger_baseline_path = argv[++i];
        } else if (bench_path.empty()) {
            bench_path = arg;
        } else if (history_path.empty()) {
            history_path = arg;
        } else {
            return usage(argv[0]);
        }
    }
    if (bench_path.empty() || history_path.empty())
        return usage(argv[0]);

    std::ifstream in(bench_path);
    if (!in) {
        log::error("bench_gate: cannot read %s", bench_path.c_str());
        return 2;
    }
    std::stringstream buf;
    buf << in.rdbuf();

    TrajectoryRecord rec = recordFromBenchJson(buf.str());
    rec.gitSha = gitShortSha();
    rec.timestamp = utcTimestamp();
#ifndef NDEBUG
    // The gate binary itself being a debug build means the whole
    // build tree is; tag the record even if the bench JSON context
    // failed to say so.
    rec.debugBuild = true;
#endif
    if (rec.debugBuild)
        log::warn("bench_gate: DEBUG-BUILD record (build_type=%s); "
                  "gating only against other debug runs",
                  rec.buildType.c_str());
    if (rec.series.empty()) {
        log::error("bench_gate: no recognisable series in %s",
                   bench_path.c_str());
        return 2;
    }

    std::vector<TrajectoryRecord> history = loadHistory(history_path);
    GateResult result = checkAgainstHistory(rec, history, opts);
    std::printf("bench_gate: %s @ %s vs %zu comparable run(s) in %s\n",
                rec.gitSha.c_str(), rec.timestamp.c_str(),
                result.baselineRuns, history_path.c_str());
    std::printf("%s", formatGateResult(result).c_str());

    // Gate tripped: explain it with the ledger forensics when both
    // the run's ledger and a baseline ledger are at hand.
    if (!result.pass && !ledger_path.empty() &&
        !ledger_baseline_path.empty()) {
        std::vector<LedgerRecord> base =
            loadLedger(ledger_baseline_path);
        std::vector<LedgerRecord> cur = loadLedger(ledger_path);
        if (base.empty() || cur.empty()) {
            log::warn("bench_gate: cannot diff ledgers (%s: %zu "
                      "records, %s: %zu records)",
                      ledger_baseline_path.c_str(), base.size(),
                      ledger_path.c_str(), cur.size());
        } else {
            std::printf("\nledger forensics: %s (baseline) vs %s\n",
                        ledger_baseline_path.c_str(),
                        ledger_path.c_str());
            std::printf("%s",
                        formatLedgerDiff(diffLedgers(base, cur))
                            .c_str());
        }
    }

    if (!check_only) {
        if (!appendHistory(history_path, rec)) {
            log::error("bench_gate: cannot append to %s",
                       history_path.c_str());
            return 2;
        }
        std::printf("recorded -> %s (%zu run(s) total)\n",
                    history_path.c_str(), history.size() + 1);
    }
    return result.pass ? 0 : 1;
}
