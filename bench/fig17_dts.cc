/**
 * @file
 * Fig. 17 (RQ8): composition with dynamic timing slack. Paper: DTS
 * alone -28.4%, DTS+BITSPEC -35.0% mean (-38.8% including the larger
 * benchmarks), roughly the product of the individual savings. The
 * width-aware DTS estimator (the paper's future work) is included as
 * an extension row.
 */

#include "../bench/common.h"

using namespace bitspec;
using namespace bitspec::bench;

int
main()
{
    printHeader("Figure 17: DTS and DTS+BitSpec (RQ8)",
                "Energy relative to BASELINE. product = dts * "
                "bitspec (the paper's composition observation).");

    SystemConfig oracle = SystemConfig::dtsPlusBitspec();
    oracle.dtsParams.widthAware = true;

    std::vector<ExperimentCell> cells;
    for (const Workload &w : mibenchSuite()) {
        cells.push_back(cell(w, SystemConfig::baseline()));
        cells.push_back(cell(w, SystemConfig::bitspec()));
        cells.push_back(cell(w, SystemConfig::dtsOnly()));
        cells.push_back(cell(w, SystemConfig::dtsPlusBitspec()));
        cells.push_back(cell(w, oracle));
    }
    std::vector<RunResult> res = runMatrix(cells);

    std::vector<double> d_r, db_r, prod_r, oracle_r;
    std::printf("%-16s %8s %8s %10s %10s %12s\n", "benchmark",
                "bitspec", "dts", "dts+bspec", "product",
                "width-aware");
    size_t k = 0;
    for (const Workload &w : mibenchSuite()) {
        const RunResult &base = res[k++];
        const RunResult &sp = res[k++];
        const RunResult &dts = res[k++];
        const RunResult &both = res[k++];
        const RunResult &ow = res[k++];

        double rs = sp.totalEnergy / base.totalEnergy;
        double rd = dts.totalEnergy / base.totalEnergy;
        double rb = both.totalEnergy / base.totalEnergy;
        double ro = ow.totalEnergy / base.totalEnergy;
        d_r.push_back(rd);
        db_r.push_back(rb);
        prod_r.push_back(rs * rd);
        oracle_r.push_back(ro);
        std::printf("%-16s %8.3f %8.3f %10.3f %10.3f %12.3f\n",
                    w.name.c_str(), rs, rd, rb, rs * rd, ro);
    }
    std::printf("%-16s %8s %8.3f %10.3f %10.3f %12.3f\n", "mean", "",
                mean(d_r), mean(db_r), mean(prod_r), mean(oracle_r));
    return 0;
}
