/**
 * @file
 * Fig. 1 (a-d): percentage of dynamic IR integer instructions at each
 * bitwidth under four selection techniques — (a) required bits,
 * (b) programmer-selected, (c) demanded-bits static analysis,
 * (d) basic-block-granularity coercion [Pokam et al.].
 */

#include <future>
#include <map>

#include "../bench/common.h"
#include "analysis/demanded_bits.h"
#include "frontend/irgen.h"
#include "interp/interpreter.h"
#include "support/bits.h"
#include "support/threadpool.h"

using namespace bitspec;

namespace
{

struct Hist
{
    uint64_t c[4] = {0, 0, 0, 0}; // 8/16/32/64.

    void
    add(unsigned bits, uint64_t n = 1)
    {
        unsigned cls = bitwidthClass(bits);
        c[cls == 8 ? 0 : cls == 16 ? 1 : cls == 32 ? 2 : 3] += n;
    }

    std::string
    str() const
    {
        uint64_t total = c[0] + c[1] + c[2] + c[3];
        if (total == 0)
            return "-";
        return strFormat("8b:%5.1f%%  16b:%5.1f%%  32b:%5.1f%%",
                         100.0 * c[0] / total, 100.0 * c[1] / total,
                         100.0 * (c[2] + c[3]) / total);
    }
};

} // namespace

int
main()
{
    bench::printHeader(
        "Figure 1: bitwidth selection techniques",
        "Share of dynamic integer IR instructions per bitwidth class.\n"
        "(a) required  (b) programmer-selected  (c) demanded-bits  "
        "(d) basic-block max");

    // One self-contained task per workload; results are strings
    // printed in submission order so the table is identical to the
    // serial version regardless of thread count.
    ThreadPool pool;
    std::vector<std::future<std::string>> rows;
    for (const Workload &w : mibenchSuite()) {
        rows.push_back(pool.submit([&w]() -> std::string {
        auto mod = compileSource(w.source);
        w.setInput(*mod, 0);

        // Static analyses.
        std::map<const Instruction *, unsigned> demanded;
        for (const auto &f : mod->functions()) {
            DemandedBits db(*f);
            for (const auto &bb : f->blocks())
                for (const auto &inst : bb->insts())
                    if (inst->type().isInt())
                        demanded[inst.get()] = std::min(
                            inst->type().bits,
                            db.demandedWidth(inst.get()));
        }

        // Dynamic profiling run: collect required bits per
        // instruction (for the block max) and the histograms.
        Hist required, programmer, demand_hist;
        std::map<const Instruction *, unsigned> max_bits;
        std::map<const Instruction *, uint64_t> exec_count;
        {
            Interpreter in(*mod);
            in.onAssign = [&](const Instruction *inst, uint64_t v) {
                unsigned rb = requiredBits(v);
                required.add(rb);
                programmer.add(inst->type().bits);
                demand_hist.add(demanded.count(inst)
                                    ? demanded[inst]
                                    : inst->type().bits);
                unsigned &m = max_bits[inst];
                m = std::max(m, rb);
                ++exec_count[inst];
            };
            in.run("main");
        }

        // (d) coerce every variable to the max required bits seen in
        // its basic block.
        std::map<const BasicBlock *, unsigned> block_max;
        for (const auto &[inst, bits] : max_bits) {
            unsigned &m = block_max[inst->parent()];
            m = std::max(m, bits);
        }
        Hist block_hist;
        for (const auto &[inst, n] : exec_count)
            block_hist.add(block_max[inst->parent()], n);

        return strFormat("%-16s\n"
                         "  (a) required    %s\n"
                         "  (b) programmer  %s\n"
                         "  (c) demanded    %s\n"
                         "  (d) block max   %s\n",
                         w.name.c_str(), required.str().c_str(),
                         programmer.str().c_str(),
                         demand_hist.str().c_str(),
                         block_hist.str().c_str());
        }));
    }
    for (auto &row : rows)
        std::fputs(row.get().c_str(), stdout);
    return 0;
}
