/**
 * @file
 * Fig. 15 (RQ6): profile-input sensitivity. Profile on an alternate
 * input, run on the provided one. Paper: BitSpec stays robust, only
 * +1.14% energy on average.
 */

#include "../bench/common.h"

using namespace bitspec;
using namespace bitspec::bench;

int
main()
{
    printHeader("Figure 15: profiler input sensitivity (RQ6)",
                "Energy relative to BASELINE when profiling on the "
                "provided input (self) vs an alternate input (alt).");

    std::vector<ExperimentCell> cells;
    for (const Workload &w : mibenchSuite()) {
        cells.push_back(cell(w, SystemConfig::baseline()));
        cells.push_back(cell(w, SystemConfig::bitspec(), 0, 0));
        cells.push_back(cell(w, SystemConfig::bitspec(), 3, 0));
    }
    std::vector<RunResult> res = runMatrix(cells);

    std::vector<double> selfs, alts;
    std::printf("%-16s %10s %10s %10s\n", "benchmark", "self", "alt",
                "alt/self");
    size_t k = 0;
    for (const Workload &w : mibenchSuite()) {
        const RunResult &base = res[k++];
        const RunResult &self = res[k++];
        const RunResult &alt = res[k++];
        double rs = self.totalEnergy / base.totalEnergy;
        double ra = alt.totalEnergy / base.totalEnergy;
        selfs.push_back(rs);
        alts.push_back(ra);
        std::printf("%-16s %10.3f %10.3f %10.3f\n", w.name.c_str(),
                    rs, ra, ra / rs);
    }
    std::printf("%-16s %10.3f %10.3f %10.4f  (paper: +1.14%%)\n",
                "mean", mean(selfs), mean(alts),
                mean(alts) / mean(selfs));
    return 0;
}
