/**
 * @file
 * Fig. 12 (RQ2): register packing WITHOUT speculation (exact
 * demanded-bits narrowing only) vs full BITSPEC, both relative to
 * BASELINE. The paper: no-speculation loses ~3.2% additional energy
 * on average and recovers nothing on CRC32.
 */

#include "../bench/common.h"

using namespace bitspec;
using namespace bitspec::bench;

int
main()
{
    printHeader("Figure 12: is speculation necessary? (RQ2)",
                "Energy relative to BASELINE: exact (no-speculation) "
                "narrowing vs speculative BITSPEC.");

    std::vector<ExperimentCell> cells;
    for (const Workload &w : mibenchSuite()) {
        cells.push_back(cell(w, SystemConfig::baseline()));
        cells.push_back(cell(w, SystemConfig::noSpeculation()));
        cells.push_back(cell(w, SystemConfig::bitspec()));
    }
    std::vector<RunResult> res = runMatrix(cells);

    std::vector<double> nospec_r, spec_r;
    std::printf("%-16s %12s %12s\n", "benchmark", "no-spec",
                "bitspec");
    size_t k = 0;
    for (const Workload &w : mibenchSuite()) {
        const RunResult &base = res[k++];
        const RunResult &ns = res[k++];
        const RunResult &sp = res[k++];
        double rn = ns.totalEnergy / base.totalEnergy;
        double rs = sp.totalEnergy / base.totalEnergy;
        nospec_r.push_back(rn);
        spec_r.push_back(rs);
        std::printf("%-16s %12.3f %12.3f\n", w.name.c_str(), rn, rs);
    }
    std::printf("%-16s %12.3f %12.3f\n", "mean", mean(nospec_r),
                mean(spec_r));
    return 0;
}
