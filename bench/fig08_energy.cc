/**
 * @file
 * Fig. 8 (RQ0): energy consumption, dynamic instructions and EPI of
 * BITSPEC relative to BASELINE. The paper reports a 9.9% mean energy
 * reduction, up to 28.2% (rijndael).
 */

#include "../bench/common.h"

using namespace bitspec;
using namespace bitspec::bench;

int
main()
{
    printHeader("Figure 8: energy / dynamic instructions / EPI",
                "All metrics are BITSPEC relative to BASELINE "
                "(lower is better).");

    std::vector<ExperimentCell> cells;
    for (const Workload &w : mibenchSuite()) {
        cells.push_back(cell(w, SystemConfig::baseline()));
        cells.push_back(cell(w, SystemConfig::bitspec()));
    }
    std::vector<RunResult> res = runMatrix(cells);

    std::vector<double> e_ratios, i_ratios, epi_ratios;
    std::printf("%-16s %10s %10s %10s %10s\n", "benchmark", "energy",
                "dyninst", "EPI", "misspecs");
    size_t k = 0;
    for (const Workload &w : mibenchSuite()) {
        const RunResult &base = res[k++];
        const RunResult &spec = res[k++];

        double e = spec.totalEnergy / base.totalEnergy;
        double i = static_cast<double>(spec.counters.instructions) /
                   static_cast<double>(base.counters.instructions);
        double epi = spec.epi / base.epi;
        e_ratios.push_back(e);
        i_ratios.push_back(i);
        epi_ratios.push_back(epi);
        std::printf("%-16s %9.3f %10.3f %10.3f %10llu\n",
                    w.name.c_str(), e, i, epi,
                    static_cast<unsigned long long>(
                        spec.counters.misspeculations));
    }
    std::printf("%-16s %9.3f %10.3f %10.3f\n", "mean",
                mean(e_ratios), mean(i_ratios), mean(epi_ratios));
    std::printf("\npaper: mean energy 0.901 (-9.9%%), best 0.718 "
                "(rijndael -28.2%%); EPI reduced on all but qsort.\n");
    return 0;
}
