/**
 * @file
 * google-benchmark microbenchmarks of the infrastructure itself:
 * interpreter throughput, core-model throughput, compilation and
 * squeezing latency. Not a paper artefact — an engineering health
 * check for this reproduction.
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "backend/compiler.h"
#include "core/system.h"
#include "support/log.h"
#include "frontend/irgen.h"
#include "interp/interpreter.h"
#include "profile/bitwidth_profile.h"
#include "transform/squeezer.h"
#include "uarch/core.h"
#include "workloads/workload.h"

using namespace bitspec;

namespace
{

const char *kKernel = R"(
    u32 data[256];
    u32 main(u32 n) {
        u32 h = 0;
        for (u32 r = 0; r < n; r++)
            for (u32 i = 0; i < 256; i++)
                h = h * 31 + (data[i] ^ (h >> 5));
        return h;
    }
)";

void
BM_InterpreterThroughput(benchmark::State &state, ExecEngine engine)
{
    auto mod = compileSource(kKernel);
    Interpreter in(*mod);
    in.setEngine(engine);
    uint64_t steps = 0;
    for (auto _ : state) {
        in.run("main", {64});
        steps = in.stats().steps;
    }
    state.counters["ir_instrs_per_s"] = benchmark::Counter(
        static_cast<double>(steps), benchmark::Counter::kIsRate);
}

void
BM_InterpreterProfiledThroughput(benchmark::State &state,
                                 ExecEngine engine)
{
    // The profiler's hot path: decoded uses the built-in value
    // profile, legacy the per-assignment std::function hook.
    auto mod = compileSource(kKernel);
    uint64_t steps = 0;
    for (auto _ : state) {
        BitwidthProfile profile;
        Interpreter in(*mod);
        in.setEngine(engine);
        profile.profileRun(in, "main", {8});
        steps += in.stats().steps; // Fresh interpreter per iteration.
        benchmark::DoNotOptimize(profile.totalAssignments());
    }
    state.counters["ir_instrs_per_s"] = benchmark::Counter(
        static_cast<double>(steps), benchmark::Counter::kIsRate);
}

void
BM_CoreThroughput(benchmark::State &state, CoreEngine engine)
{
    auto mod = compileSource(kKernel);
    CompiledProgram cp = compileModule(*mod, TargetISA::Baseline);
    // kIsRate divides the counter by the TOTAL elapsed time of every
    // iteration, so the retire count must accumulate across
    // iterations (core counters restart per run, unlike the
    // interpreter's cumulative stats().steps above).
    uint64_t instrs = 0;
    if (engine == CoreEngine::Fast) {
        // Pre-decode is per-program, outside the timed loop (System
        // builds it once); the persistent core reuses its block memos
        // across iterations, like System's compile-once/run-many.
        PredecodedProgram pre(cp.program);
        FastCore core(pre, *mod);
        for (auto _ : state) {
            core.reset();
            core.run({64});
            instrs += core.counters().instructions;
        }
    } else {
        for (auto _ : state) {
            Core core(cp.program, *mod);
            core.run({64});
            instrs += core.counters().instructions;
        }
    }
    state.counters["machine_instrs_per_s"] = benchmark::Counter(
        static_cast<double>(instrs), benchmark::Counter::kIsRate);
}

void
BM_CompileBaseline(benchmark::State &state)
{
    for (auto _ : state) {
        auto mod = compileSource(kKernel);
        CompiledProgram cp = compileModule(*mod, TargetISA::Baseline);
        benchmark::DoNotOptimize(cp.program.flat.size());
    }
}

void
BM_SqueezePipeline(benchmark::State &state)
{
    for (auto _ : state) {
        auto mod = compileSource(kKernel);
        BitwidthProfile profile;
        profile.profileRun(*mod, "main", {4});
        SqueezeOptions opts;
        squeezeModule(*mod, profile, opts);
        CompiledProgram cp = compileModule(*mod, TargetISA::BitSpec);
        benchmark::DoNotOptimize(cp.program.flat.size());
    }
}

void
BM_FullSystemBuild(benchmark::State &state)
{
    const Workload &w = getWorkload("CRC32");
    for (auto _ : state) {
        System sys(w.source, SystemConfig::bitspec(),
                   [&](Module &m) { w.setInput(m, 0); });
        benchmark::DoNotOptimize(&sys);
    }
}

BENCHMARK_CAPTURE(BM_InterpreterThroughput, decoded,
                  ExecEngine::Decoded);
BENCHMARK_CAPTURE(BM_InterpreterThroughput, legacy, ExecEngine::Legacy);
BENCHMARK_CAPTURE(BM_InterpreterProfiledThroughput, decoded,
                  ExecEngine::Decoded);
BENCHMARK_CAPTURE(BM_InterpreterProfiledThroughput, legacy,
                  ExecEngine::Legacy);
BENCHMARK_CAPTURE(BM_CoreThroughput, legacy, CoreEngine::Legacy);
BENCHMARK_CAPTURE(BM_CoreThroughput, fast, CoreEngine::Fast);
BENCHMARK(BM_CompileBaseline);
BENCHMARK(BM_SqueezePipeline);
BENCHMARK(BM_FullSystemBuild);

#ifndef NDEBUG
/** Loud tripwire: debug-built rates must never enter the perf
 *  trajectory unflagged. bench_gate additionally tags the history
 *  record debug_build=true (from the benchmark JSON context), so a
 *  debug run can never become the rolling baseline for release
 *  runs. */
struct DebugBuildWarning
{
    DebugBuildWarning()
    {
        log::warn("micro_throughput built without NDEBUG: throughput "
                  "numbers are NOT comparable to release records");
    }
} g_debugBuildWarning;
#endif

} // namespace

BENCHMARK_MAIN();
