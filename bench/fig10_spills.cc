/**
 * @file
 * Fig. 10 (RQ1): dynamic loads, stores and copies injected by the
 * register allocator, normalised to their sum on BASELINE.
 */

#include "../bench/common.h"

using namespace bitspec;
using namespace bitspec::bench;

int
main()
{
    printHeader("Figure 10: register-allocator traffic",
                "Dynamic spill loads / spill stores / copies, each "
                "normalised to the BASELINE total.");

    std::vector<ExperimentCell> cells;
    for (const Workload &w : mibenchSuite()) {
        cells.push_back(cell(w, SystemConfig::baseline()));
        cells.push_back(cell(w, SystemConfig::bitspec()));
    }
    std::vector<RunResult> res = runMatrix(cells);

    std::printf("%-16s %10s %10s %10s %12s\n", "benchmark", "loads",
                "stores", "copies", "(base total)");
    size_t k = 0;
    for (const Workload &w : mibenchSuite()) {
        const RunResult &b = res[k++];
        const RunResult &s = res[k++];
        double base_total = static_cast<double>(
            b.counters.dynSpillLoads + b.counters.dynSpillStores +
            b.counters.dynCopies);
        if (base_total == 0)
            base_total = 1;
        std::printf("%-16s %10.3f %10.3f %10.3f %12.0f\n",
                    w.name.c_str(),
                    s.counters.dynSpillLoads / base_total,
                    s.counters.dynSpillStores / base_total,
                    s.counters.dynCopies / base_total, base_total);
    }
    std::printf("\npaper: spill loads shrink or vanish (CRC32, "
                "dijkstra); copies sometimes grow in trade.\n");
    return 0;
}
