/**
 * @file
 * Fig. 11 (RQ1): dynamic register-file accesses at 8 and 32 bits,
 * normalised to BASELINE's all-32-bit access count.
 */

#include "../bench/common.h"

using namespace bitspec;
using namespace bitspec::bench;

int
main()
{
    printHeader("Figure 11: register accesses by width",
                "BITSPEC register accesses (32-bit and 8-bit slice) "
                "normalised to BASELINE accesses.");

    std::vector<ExperimentCell> cells;
    for (const Workload &w : mibenchSuite()) {
        cells.push_back(cell(w, SystemConfig::baseline()));
        cells.push_back(cell(w, SystemConfig::bitspec()));
    }
    std::vector<RunResult> res = runMatrix(cells);

    std::printf("%-16s %10s %10s %10s\n", "benchmark", "32-bit",
                "8-bit", "total");
    size_t k = 0;
    for (const Workload &w : mibenchSuite()) {
        const RunResult &b = res[k++];
        const RunResult &s = res[k++];
        double base = static_cast<double>(
            b.counters.rfRead32 + b.counters.rfWrite32);
        double s32 = (s.counters.rfRead32 + s.counters.rfWrite32) /
                     base;
        double s8 = (s.counters.rfRead8 + s.counters.rfWrite8) / base;
        std::printf("%-16s %10.3f %10.3f %10.3f\n", w.name.c_str(),
                    s32, s8, s32 + s8);
    }
    std::printf("\npaper: total accesses drop for most benchmarks; a "
                "slice access costs 1/4 of a 32-bit access.\n");
    return 0;
}
