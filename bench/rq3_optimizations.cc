/**
 * @file
 * RQ3 ablations: compare elimination (§3.2.4) and bitmask elision.
 * Paper: without compare elimination dijkstra consumes +9.5% energy
 * (+13.1% instructions); without bitmask elision blowfish +6.3% and
 * rijndael +33.4% relative to BASELINE.
 */

#include "../bench/common.h"

using namespace bitspec;
using namespace bitspec::bench;

int
main()
{
    printHeader("RQ3: BitSpec-specific optimisation ablations",
                "Energy and dynamic instructions relative to "
                "BASELINE, with one optimisation removed at a time.");

    std::printf("%-16s %10s | %12s %10s | %12s %10s\n", "benchmark",
                "full", "-cmp-elim", "dyninst", "-bitmask", "dyninst");
    for (const Workload &w : mibenchSuite()) {
        RunResult base = evaluate(w, SystemConfig::baseline());

        RunResult full = evaluate(w, SystemConfig::bitspec());

        SystemConfig no_ce = SystemConfig::bitspec();
        no_ce.squeezeOpts.compareElimination = false;
        RunResult nce = evaluate(w, no_ce);

        SystemConfig no_be = SystemConfig::bitspec();
        no_be.squeezeOpts.bitmaskElision = false;
        RunResult nbe = evaluate(w, no_be);

        auto rel = [&](const RunResult &r) {
            return r.totalEnergy / base.totalEnergy;
        };
        auto reli = [&](const RunResult &r) {
            return static_cast<double>(r.counters.instructions) /
                   static_cast<double>(base.counters.instructions);
        };
        std::printf("%-16s %10.3f | %12.3f %10.3f | %12.3f %10.3f\n",
                    w.name.c_str(), rel(full), rel(nce), reli(nce),
                    rel(nbe), reli(nbe));
    }
    return 0;
}
