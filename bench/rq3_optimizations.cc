/**
 * @file
 * RQ3 ablations: compare elimination (§3.2.4) and bitmask elision.
 * Paper: without compare elimination dijkstra consumes +9.5% energy
 * (+13.1% instructions); without bitmask elision blowfish +6.3% and
 * rijndael +33.4% relative to BASELINE.
 */

#include "../bench/common.h"

using namespace bitspec;
using namespace bitspec::bench;

int
main()
{
    printHeader("RQ3: BitSpec-specific optimisation ablations",
                "Energy and dynamic instructions relative to "
                "BASELINE, with one optimisation removed at a time.");

    SystemConfig no_ce = SystemConfig::bitspec();
    no_ce.squeezeOpts.compareElimination = false;
    SystemConfig no_be = SystemConfig::bitspec();
    no_be.squeezeOpts.bitmaskElision = false;

    std::vector<ExperimentCell> cells;
    for (const Workload &w : mibenchSuite()) {
        cells.push_back(cell(w, SystemConfig::baseline()));
        cells.push_back(cell(w, SystemConfig::bitspec()));
        cells.push_back(cell(w, no_ce));
        cells.push_back(cell(w, no_be));
    }
    std::vector<RunResult> res = runMatrix(cells);

    std::printf("%-16s %10s | %12s %10s | %12s %10s\n", "benchmark",
                "full", "-cmp-elim", "dyninst", "-bitmask", "dyninst");
    size_t k = 0;
    for (const Workload &w : mibenchSuite()) {
        const RunResult &base = res[k++];
        const RunResult &full = res[k++];
        const RunResult &nce = res[k++];
        const RunResult &nbe = res[k++];

        auto rel = [&](const RunResult &r) {
            return r.totalEnergy / base.totalEnergy;
        };
        auto reli = [&](const RunResult &r) {
            return static_cast<double>(r.counters.instructions) /
                   static_cast<double>(base.counters.instructions);
        };
        std::printf("%-16s %10.3f | %12.3f %10.3f | %12.3f %10.3f\n",
                    w.name.c_str(), rel(full), rel(nce), reli(nce),
                    rel(nbe), reli(nbe));
    }
    return 0;
}
