/**
 * @file
 * Shared helpers for the figure/table regeneration benches.
 *
 * Each bench binary rebuilds one artefact of the paper's evaluation
 * (§4) and prints the same rows/series the paper reports. Absolute
 * numbers come from this repo's simulator + energy model; the shapes
 * (who wins, by roughly what factor) are the reproduction target.
 */

#ifndef BITSPEC_BENCH_COMMON_H_
#define BITSPEC_BENCH_COMMON_H_

#include <cstdio>
#include <string>
#include <vector>

#include "core/system.h"
#include "support/stats.h"
#include "support/str.h"
#include "workloads/workload.h"

namespace bitspec::bench
{

/** Build a System for @p w profiled on @p profile_seed. */
inline System
makeSystem(const Workload &w, const SystemConfig &cfg,
           uint64_t profile_seed = 0)
{
    return System(w.source, cfg,
                  [&](Module &m) { w.setInput(m, profile_seed); });
}

/** Run @p sys on input @p run_seed. */
inline RunResult
runSeed(System &sys, const Workload &w, uint64_t run_seed = 0)
{
    return sys.run([&](Module &m) { w.setInput(m, run_seed); });
}

/** Compile + run in one step. */
inline RunResult
evaluate(const Workload &w, const SystemConfig &cfg,
         uint64_t profile_seed = 0, uint64_t run_seed = 0)
{
    System sys = makeSystem(w, cfg, profile_seed);
    return runSeed(sys, w, run_seed);
}

inline void
printHeader(const std::string &title, const std::string &caption)
{
    std::printf("\n==== %s ====\n%s\n\n", title.c_str(),
                caption.c_str());
}

inline void
printRow(const std::string &name,
         const std::vector<std::pair<std::string, double>> &cols)
{
    std::printf("%-16s", name.c_str());
    for (const auto &[label, v] : cols)
        std::printf("  %s=%-10.4g", label.c_str(), v);
    std::printf("\n");
}

} // namespace bitspec::bench

#endif // BITSPEC_BENCH_COMMON_H_
