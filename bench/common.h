/**
 * @file
 * Shared helpers for the figure/table regeneration benches.
 *
 * Each bench binary rebuilds one artefact of the paper's evaluation
 * (§4) and prints the same rows/series the paper reports. Absolute
 * numbers come from this repo's simulator + energy model; the shapes
 * (who wins, by roughly what factor) are the reproduction target.
 *
 * All benches evaluate their (workload x config x seed) matrices
 * through the process-wide ExperimentRunner: cells run across a
 * thread pool (BITSPEC_JOBS workers, default hardware concurrency),
 * results come back in submission order, and compiled Systems are
 * memoized so a BASELINE build shared by several series compiles
 * once. Output is byte-identical to the old serial loops.
 */

#ifndef BITSPEC_BENCH_COMMON_H_
#define BITSPEC_BENCH_COMMON_H_

#include <cstdio>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "core/system.h"
#include "support/stats.h"
#include "support/str.h"
#include "support/threadpool.h"
#include "workloads/workload.h"

namespace bitspec::bench
{

/** The binary-wide experiment runner (cache persists across
 *  matrices, so e.g. every series' BASELINE builds are shared). */
inline ExperimentRunner &
runner()
{
    static ExperimentRunner r;
    return r;
}

/** Shorthand for one matrix cell. */
inline ExperimentCell
cell(const Workload &w, const SystemConfig &cfg,
     uint64_t profile_seed = 0, uint64_t run_seed = 0)
{
    ExperimentCell c;
    c.workload = &w;
    c.config = cfg;
    c.profileSeed = profile_seed;
    c.runSeed = run_seed;
    return c;
}

/** Run a whole matrix; results in submission order. */
inline std::vector<RunResult>
runMatrix(const std::vector<ExperimentCell> &cells)
{
    return runner().run(cells);
}

/** Compile + run one cell through the runner (and its cache). */
inline RunResult
evaluate(const Workload &w, const SystemConfig &cfg,
         uint64_t profile_seed = 0, uint64_t run_seed = 0)
{
    return runner().evaluate(w, cfg, profile_seed, run_seed);
}

/** Build a System for @p w profiled on @p profile_seed, bypassing
 *  the runner's cache (used by tests and the smoke harness to get an
 *  uncached serial reference). */
inline System
makeSystem(const Workload &w, const SystemConfig &cfg,
           uint64_t profile_seed = 0)
{
    return System(w.source, cfg,
                  [&](Module &m) { w.setInput(m, profile_seed); });
}

/** Run @p sys on input @p run_seed. */
inline RunResult
runSeed(System &sys, const Workload &w, uint64_t run_seed = 0)
{
    return sys.run([&](Module &m) { w.setInput(m, run_seed); });
}

inline void
printHeader(const std::string &title, const std::string &caption)
{
    std::printf("\n==== %s ====\n%s\n\n", title.c_str(),
                caption.c_str());
}

inline void
printRow(const std::string &name,
         const std::vector<std::pair<std::string, double>> &cols)
{
    std::printf("%-16s", name.c_str());
    for (const auto &[label, v] : cols)
        std::printf("  %s=%-10.4g", label.c_str(), v);
    std::printf("\n");
}

} // namespace bitspec::bench

#endif // BITSPEC_BENCH_COMMON_H_
