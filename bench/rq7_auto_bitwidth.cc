/**
 * @file
 * RQ7: does BitSpec eliminate the need for programmer-selected
 * bitwidths? The paper widens every integer in dijkstra and
 * stringsearch to the machine's widest type and compares. Here the
 * widest type is u32 (32-bit target); the narrow u8 declarations of
 * the original sources are replaced wholesale.
 */

#include "../bench/common.h"

using namespace bitspec;
using namespace bitspec::bench;

namespace
{

/** Widen every u8/u16 declaration in the source to u32. */
std::string
widenTypes(std::string src)
{
    auto replace_all = [&](const std::string &from,
                           const std::string &to) {
        size_t pos = 0;
        while ((pos = src.find(from, pos)) != std::string::npos) {
            src.replace(pos, from.size(), to);
            pos += to.size();
        }
    };
    replace_all("u8 ", "u32 ");
    replace_all("u16 ", "u32 ");
    replace_all("(u8)", "(u32)");
    replace_all("(u16)", "(u32)");
    return src;
}

} // namespace

int
main()
{
    printHeader("RQ7: fully automatic bitwidth selection",
                "Widen every integer declaration to u32; can BitSpec "
                "recover the narrow-typed program's energy?");

    const std::vector<const char *> names = {"dijkstra",
                                             "stringsearch"};
    // Widened workload copies must outlive the matrix run: cells
    // hold Workload pointers.
    std::vector<Workload> wides;
    for (const char *name : names) {
        Workload wide = getWorkload(name);
        wide.source = widenTypes(wide.source);
        wides.push_back(std::move(wide));
    }

    std::vector<ExperimentCell> cells;
    for (size_t i = 0; i < names.size(); ++i) {
        const Workload &w = getWorkload(names[i]);
        cells.push_back(cell(w, SystemConfig::baseline()));
        cells.push_back(cell(wides[i], SystemConfig::baseline()));
        cells.push_back(cell(w, SystemConfig::bitspec()));
        cells.push_back(cell(wides[i], SystemConfig::bitspec()));
    }
    std::vector<RunResult> res = runMatrix(cells);

    size_t k = 0;
    for (const char *name : names) {
        const RunResult &base_orig = res[k++];
        const RunResult &base_wide = res[k++];
        const RunResult &spec_orig = res[k++];
        const RunResult &spec_wide = res[k++];

        double b = base_orig.totalEnergy;
        std::printf("%-16s baseline(orig)=1.000  baseline(wide)=%.3f\n"
                    "%-16s bitspec(orig)=%.3f   bitspec(wide)=%.3f\n",
                    name, base_wide.totalEnergy / b, "",
                    spec_orig.totalEnergy / b,
                    spec_wide.totalEnergy / b);
    }
    std::printf("\npaper: stringsearch reaches parity (yes); dijkstra "
                "improves but falls short.\n");
    return 0;
}
