/**
 * @file
 * Fig. 5: percent of dynamic integer instructions the profiler
 * classifies as 8/16/32 bits under T = MAX, AVG, MIN.
 */

#include <future>

#include "../bench/common.h"
#include "frontend/irgen.h"
#include "profile/bitwidth_profile.h"
#include "support/threadpool.h"

using namespace bitspec;

int
main()
{
    bench::printHeader(
        "Figure 5: profiler bitwidth selections per heuristic",
        "Share of dynamic assignments classified 8/16/32+ bits when "
        "T = MAX / AVG / MIN.");

    // One profiling run per workload, fanned out across the pool;
    // rows print in suite order.
    ThreadPool pool;
    std::vector<std::future<std::string>> rows;
    for (const Workload &w : mibenchSuite()) {
        rows.push_back(pool.submit([&w]() -> std::string {
            auto mod = compileSource(w.source);
            w.setInput(*mod, 0);
            BitwidthProfile p;
            p.profileRun(*mod);

            std::string line = strFormat("%-16s", w.name.c_str());
            for (Heuristic h :
                 {Heuristic::Max, Heuristic::Avg, Heuristic::Min}) {
                auto hist = p.classHistogram(h);
                double total = static_cast<double>(hist[0] + hist[1] +
                                                   hist[2] + hist[3]);
                line += strFormat(
                    "  %s[8b:%5.1f%% 16b:%5.1f%% 32b:%5.1f%%]",
                    heuristicName(h), 100.0 * hist[0] / total,
                    100.0 * hist[1] / total,
                    100.0 * (hist[2] + hist[3]) / total);
            }
            line += "\n";
            return line;
        }));
    }
    for (auto &row : rows)
        std::fputs(row.get().c_str(), stdout);
    return 0;
}
