/**
 * @file
 * Shared helpers for BitSpec unit tests: tiny hand-built IR programs.
 */

#ifndef BITSPEC_TESTS_TESTUTIL_H_
#define BITSPEC_TESTS_TESTUTIL_H_

#include <memory>

#include "ir/builder.h"
#include "ir/module.h"

namespace bitspec::test
{

/**
 * Build: i32 sumto(i32 n) { s=0; for(i=0;i<n;++i) s+=i; return s; }
 * A single-loop function exercising phis, compares and branches.
 */
inline Function *
buildSumTo(Module &m)
{
    Function *f = m.addFunction("sumto", Type::i32(), {Type::i32()});
    IRBuilder b(&m);
    BasicBlock *entry = f->addBlock("entry");
    BasicBlock *body = f->addBlock("body");
    BasicBlock *exit = f->addBlock("exit");

    b.setInsertPoint(entry);
    b.br(body);

    b.setInsertPoint(body);
    Instruction *i = b.phi(Type::i32(), "i");
    Instruction *s = b.phi(Type::i32(), "s");
    Instruction *s2 = b.add(s, i);
    s2->setName("s2");
    Instruction *i2 = b.add(i, b.constI32(1));
    i2->setName("i2");
    Instruction *cmp = b.icmp(CmpPred::ULT, i2, f->arg(0));
    b.condBr(cmp, body, exit);
    IRBuilder::addIncoming(i, b.constI32(0), entry);
    IRBuilder::addIncoming(i, i2, body);
    IRBuilder::addIncoming(s, b.constI32(0), entry);
    IRBuilder::addIncoming(s, s2, body);

    b.setInsertPoint(exit);
    b.ret(s2);
    return f;
}

/**
 * Build: the do-while counter from the paper's walkthrough (§3):
 * u32 x = 0; do { x += 1; } while (x <= 255); return x;
 */
inline Function *
buildPaperCounter(Module &m)
{
    Function *f = m.addFunction("counter", Type::i32(), {});
    IRBuilder b(&m);
    BasicBlock *entry = f->addBlock("ENTRY");
    BasicBlock *body = f->addBlock("BODY");
    BasicBlock *exit = f->addBlock("EXIT");

    b.setInsertPoint(entry);
    b.br(body);

    b.setInsertPoint(body);
    Instruction *x0 = b.phi(Type::i32(), "x0");
    Instruction *x1 = b.add(x0, b.constI32(1));
    x1->setName("x1");
    Instruction *check = b.icmp(CmpPred::ULE, x1, b.constI32(255));
    b.condBr(check, body, exit);
    IRBuilder::addIncoming(x0, b.constI32(0), entry);
    IRBuilder::addIncoming(x0, x1, body);

    b.setInsertPoint(exit);
    b.ret(x1);
    return f;
}

/** Build a diamond CFG: entry -> (left|right) -> merge(ret phi). */
inline Function *
buildDiamond(Module &m)
{
    Function *f = m.addFunction("diamond", Type::i32(), {Type::i32()});
    IRBuilder b(&m);
    BasicBlock *entry = f->addBlock("entry");
    BasicBlock *left = f->addBlock("left");
    BasicBlock *right = f->addBlock("right");
    BasicBlock *merge = f->addBlock("merge");

    b.setInsertPoint(entry);
    Instruction *cmp = b.icmp(CmpPred::ULT, f->arg(0), b.constI32(10));
    b.condBr(cmp, left, right);

    b.setInsertPoint(left);
    Instruction *l = b.add(f->arg(0), b.constI32(100));
    b.br(merge);

    b.setInsertPoint(right);
    Instruction *r = b.mul(f->arg(0), b.constI32(3));
    b.br(merge);

    b.setInsertPoint(merge);
    Instruction *phi = b.phi(Type::i32(), "m");
    IRBuilder::addIncoming(phi, l, left);
    IRBuilder::addIncoming(phi, r, right);
    b.ret(phi);
    return f;
}

} // namespace bitspec::test

#endif // BITSPEC_TESTS_TESTUTIL_H_
