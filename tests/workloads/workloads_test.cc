#include <gtest/gtest.h>

#include "core/system.h"
#include "frontend/irgen.h"
#include "interp/interpreter.h"
#include "workloads/workload.h"

namespace bitspec
{
namespace
{

/** Golden interpreter result for a workload at a given seed. */
struct Golden
{
    uint64_t ret;
    uint64_t checksum;
    uint64_t steps;
};

Golden
goldenRun(const Workload &w, uint64_t seed)
{
    auto mod = compileSource(w.source);
    w.setInput(*mod, seed);
    Interpreter in(*mod);
    Golden g;
    g.ret = truncTo(in.run("main"), 32);
    g.checksum = in.outputChecksum();
    g.steps = in.stats().steps;
    return g;
}

class WorkloadSuite : public ::testing::TestWithParam<std::string>
{};

TEST_P(WorkloadSuite, CompilesAndInterprets)
{
    const Workload &w = getWorkload(GetParam());
    Golden g = goldenRun(w, 0);
    EXPECT_GT(g.steps, 1000u) << "workload too trivial";
    // Deterministic across repeat runs.
    Golden g2 = goldenRun(w, 0);
    EXPECT_EQ(g.ret, g2.ret);
    EXPECT_EQ(g.checksum, g2.checksum);
    // Different seeds give different inputs (checksum differs).
    Golden alt = goldenRun(w, 1);
    EXPECT_NE(g.checksum, alt.checksum)
        << "input generator ignores seed";
}

TEST_P(WorkloadSuite, BaselineMachineMatchesInterpreter)
{
    const Workload &w = getWorkload(GetParam());
    Golden g = goldenRun(w, 0);

    System sys(w.source, SystemConfig::baseline(),
               [&](Module &m) { w.setInput(m, 0); });
    RunResult r = sys.run([&](Module &m) { w.setInput(m, 0); });
    EXPECT_EQ(r.returnValue, g.ret);
    EXPECT_EQ(r.outputChecksum, g.checksum);
    EXPECT_GT(r.counters.instructions, 0u);
    EXPECT_GE(r.counters.cycles, r.counters.instructions);
}

TEST_P(WorkloadSuite, BitspecMachineMatchesInterpreter)
{
    const Workload &w = getWorkload(GetParam());
    Golden g = goldenRun(w, 0);

    System sys(w.source, SystemConfig::bitspec(Heuristic::Max),
               [&](Module &m) { w.setInput(m, 0); });
    RunResult r = sys.run([&](Module &m) { w.setInput(m, 0); });
    EXPECT_EQ(r.returnValue, g.ret);
    EXPECT_EQ(r.outputChecksum, g.checksum);
}

TEST_P(WorkloadSuite, BitspecRobustToAlternateInput)
{
    // Profile on seed 7, run on seed 0 (the RQ6 situation).
    const Workload &w = getWorkload(GetParam());
    Golden g = goldenRun(w, 0);

    System sys(w.source, SystemConfig::bitspec(Heuristic::Avg),
               [&](Module &m) { w.setInput(m, 7); });
    RunResult r = sys.run([&](Module &m) { w.setInput(m, 0); });
    EXPECT_EQ(r.returnValue, g.ret);
    EXPECT_EQ(r.outputChecksum, g.checksum);
}

INSTANTIATE_TEST_SUITE_P(
    Mibench, WorkloadSuite,
    ::testing::Values("CRC32", "FFT", "basicmath", "bitcount",
                      "blowfish", "dijkstra", "patricia", "qsort",
                      "rijndael", "sha", "stringsearch", "susan-edges",
                      "susan-corners", "susan-smoothing"),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string name = info.param;
        for (char &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

TEST(Workloads, SuiteHasFourteenKernels)
{
    EXPECT_EQ(mibenchSuite().size(), 14u);
    EXPECT_THROW(getWorkload("nonexistent"), FatalError);
}

} // namespace
} // namespace bitspec
