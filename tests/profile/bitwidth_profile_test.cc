#include <gtest/gtest.h>

#include "frontend/irgen.h"
#include "profile/bitwidth_profile.h"

namespace bitspec
{
namespace
{

TEST(Profile, TargetsOrderedByAggressiveness)
{
    auto m = compileSource(R"(
        u32 main() {
            u32 s = 0;
            for (u32 i = 0; i < 1000; i++) s += 1;
            return s;
        }
    )");
    BitwidthProfile p;
    p.profileRun(*m);

    // Find the accumulating add: values 1..1000.
    Function *f = m->getFunction("main");
    const Instruction *acc = nullptr;
    for (auto &bb : f->blocks())
        for (auto &inst : bb->insts())
            if (inst->op() == Opcode::Add && p.hasData(inst.get())) {
                const VarBitStats *s = p.statsFor(inst.get());
                if (s && s->maxBits == 10)
                    acc = inst.get();
            }
    ASSERT_NE(acc, nullptr);
    EXPECT_EQ(p.target(acc, Heuristic::Min), 1u);
    EXPECT_EQ(p.target(acc, Heuristic::Max), 10u);
    unsigned avg = p.target(acc, Heuristic::Avg);
    EXPECT_GT(avg, 1u);
    EXPECT_LT(avg, 10u);
}

TEST(Profile, UnexecutedCodeKeepsDeclaredWidth)
{
    auto m = compileSource(R"(
        u32 main(u32 n) {
            if (n > 100) { u32 big = n * n; return big; }
            return 1;
        }
    )");
    BitwidthProfile p;
    p.profileRun(*m, "main", {5}); // Cold branch not taken.
    Function *f = m->getFunction("main");
    for (auto &bb : f->blocks())
        for (auto &inst : bb->insts())
            if (inst->op() == Opcode::Mul) {
                EXPECT_FALSE(p.hasData(inst.get()));
                EXPECT_EQ(p.target(inst.get(), Heuristic::Min), 32u);
            }
}

TEST(Profile, AccumulatesAcrossRuns)
{
    auto m = compileSource("u32 main(u32 n) { return n + 0; }");
    BitwidthProfile p;
    p.profileRun(*m, "main", {3});
    p.profileRun(*m, "main", {300});
    Function *f = m->getFunction("main");
    const Instruction *add = nullptr;
    for (auto &bb : f->blocks())
        for (auto &inst : bb->insts())
            if (inst->op() == Opcode::Add)
                add = inst.get();
    ASSERT_NE(add, nullptr);
    EXPECT_EQ(p.target(add, Heuristic::Min), 2u);
    EXPECT_EQ(p.target(add, Heuristic::Max), 9u);
    EXPECT_EQ(p.statsFor(add)->count, 2u);
}

TEST(Profile, HistogramCoversAllAssignments)
{
    auto m = compileSource(R"(
        u32 main() {
            u32 s = 0;
            for (u32 i = 0; i < 10; i++) s += i;
            return s;
        }
    )");
    BitwidthProfile p;
    p.profileRun(*m);
    auto hist = p.classHistogram(Heuristic::Max);
    uint64_t total = hist[0] + hist[1] + hist[2] + hist[3];
    EXPECT_EQ(total, p.totalAssignments());
    EXPECT_GT(total, 0u);
    // Everything in this loop fits 8 bits under MAX.
    EXPECT_EQ(hist[0], total);
}

TEST(Profile, NegativeValuesNeedFullWidth)
{
    auto m = compileSource("i32 main() { i32 a = 0 - 5; return a; }");
    BitwidthProfile p;
    p.profileRun(*m);
    // -5 as u32 = 0xfffffffb: requires 32 bits (unsigned view).
    auto hist = p.classHistogram(Heuristic::Max);
    EXPECT_GT(hist[2], 0u);
}

} // namespace
} // namespace bitspec
