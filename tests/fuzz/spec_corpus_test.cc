/**
 * @file
 * Hand-written known-leak and known-clean programs pinning the
 * SpecLeak lint's end-to-end verdicts (the static counterpart of the
 * differential fuzzer; `ctest -L spec-fuzz` runs both families).
 *
 * The leak programs all build the classic two-access gadget the lint
 * exists to find — a load at a transiently-wrapped index whose result
 * feeds a second table lookup (rijndael's MixColumns shape) — and
 * must be flagged. The clean programs exercise the same squeeze
 * machinery (statically unbounded, profiled-narrow indices) in shapes
 * the obligations discharge: a table covering the whole wrapped range
 * (D4), a Feistel-style read/write round, and arithmetic-only
 * transients. A false positive on any of them is a lint regression.
 */

#include <gtest/gtest.h>

#include "analysis/lint.h"
#include "frontend/irgen.h"
#include "interp/interpreter.h"
#include "profile/bitwidth_profile.h"
#include "support/bits.h"
#include "transform/expander.h"
#include "transform/squeezer.h"

namespace bitspec
{
namespace
{

/**
 * The in-loop gadget: st is 16 bytes, so the wrapped 8-bit index b
 * can escape it, making a0/a1 memory the committed path never reads;
 * xt[a0 ^ a1] then encodes them in the cache set touched.
 */
const char *kLeakGadget = R"(
u8 st[16];
u8 xt[256];
u32 main() {
    for (u32 i = 0; i < 256; i++) xt[i] = i * 7;
    for (u32 i = 0; i < 16; i++) st[i] = i * 11;
    u32 sum = 0;
    for (u32 c = 0; c < 4; c++) {
        u32 b = c * 4;
        u8 a0 = st[b];
        u8 a1 = st[b + 1];
        sum = sum + xt[a0 ^ a1];
    }
    out(sum);
    return sum;
}
)";

/** Masking the secret-derived index does not help unless it pins the
 *  address to one cache line: [0, 0xfe] still spans four lines. */
const char *kLeakMasked = R"(
u8 st[16];
u8 xt[256];
u32 main() {
    for (u32 i = 0; i < 256; i++) xt[i] = i * 7;
    for (u32 i = 0; i < 16; i++) st[i] = i * 11;
    u32 sum = 0;
    for (u32 c = 0; c < 4; c++) {
        u32 b = c * 4;
        u8 a0 = st[b + 1];
        sum = sum + xt[(a0 + 7) & 0xfe];
    }
    out(sum);
    return sum;
}
)";

/** The gadget behind a call boundary (rijndael's actual MixColumns
 *  structure): the narrow index is an argument-derived local. */
const char *kLeakHelper = R"(
u8 st[16];
u8 xt[256];
u32 acc;
void mix(u32 c) {
    u32 b = c * 4;
    u8 a0 = st[b];
    u8 a1 = st[b + 1];
    acc = acc + xt[a0 ^ a1];
}
u32 main() {
    for (u32 i = 0; i < 256; i++) xt[i] = i * 7;
    for (u32 i = 0; i < 16; i++) st[i] = i * 11;
    acc = 0;
    for (u32 c = 0; c < 4; c++) mix(c);
    out(acc);
    return acc;
}
)";

/** D4: tab covers the entire wrapped range, so the transient read
 *  stays inside data the program owns and traverses (CRC32's shape —
 *  accepted-by-design first-order wrapped lookup). */
const char *kCleanTable = R"(
u8 tab[256];
u32 idx[64];
u32 main() {
    for (u32 i = 0; i < 256; i++) tab[i] = i ^ 42;
    for (u32 i = 0; i < 64; i++) idx[i] = (i * 5) % 48;
    u32 s = 0;
    for (u32 i = 0; i < 64; i++) {
        u32 j = idx[i];
        s = s + tab[j];
    }
    out(s);
    return s;
}
)";

/** Feistel-style round over a block array (blowfish's shape): wrapped
 *  indices feed loads and stores of data the program owns. */
const char *kCleanFeistel = R"(
u32 buf[128];
u32 main() {
    u32 s = 0;
    for (u32 blk = 0; blk < 64; blk++) {
        u32 v = buf[blk * 2] + blk;
        buf[blk * 2 + 1] = v;
        s = s ^ v;
    }
    out(s);
    return s;
}
)";

/** Transient values feeding only arithmetic: no sinks at all. */
const char *kCleanArith = R"(
u32 idx[64];
u32 main() {
    for (u32 i = 0; i < 64; i++) idx[i] = (i * 3) % 100;
    u32 s = 0;
    for (u32 i = 0; i < 64; i++) {
        u32 j = idx[i];
        s = s ^ (j * 5);
    }
    out(s);
    return s;
}
)";

struct Verdicts
{
    LintReport post;
    uint64_t refReturn = 0;
    uint64_t squeezedReturn = 0;
};

/** Squeeze-pipeline + lint, plus squeezed-vs-reference execution. */
Verdicts
lintProgram(const char *src)
{
    Verdicts v;
    {
        auto ref = compileSource(src);
        Interpreter it(*ref);
        v.refReturn = truncTo(it.run("main"), 32);
    }
    auto mod = compileSource(src);
    expandModule(*mod, ExpanderOptions{});
    BitwidthProfile profile;
    profile.profileRun(*mod);
    squeezeModule(*mod, profile, SqueezeOptions{});
    v.post = lintModule(*mod);

    Interpreter it(*mod);
    v.squeezedReturn = truncTo(it.run("main"), 32);
    return v;
}

class SpecCorpusLeak : public ::testing::TestWithParam<const char *>
{};

TEST_P(SpecCorpusLeak, GadgetIsFlagged)
{
    Verdicts v = lintProgram(GetParam());

    // The expander unrolls the c < 4 gadget loop into four region
    // copies; every copy must be flagged.
    EXPECT_EQ(v.post.specLeaks, 4u);
    unsigned leaks = 0;
    int last_region = -1;
    for (const LintFinding &f : v.post.findings) {
        if (f.verdict != LintVerdict::SpecLeak)
            continue;
        ++leaks;
        EXPECT_GT(f.srcLine, 0); // Anchored at the source sink.
        EXPECT_GE(f.regionId, 0);
        EXPECT_GT(f.regionId, last_region) // Sorted report order.
            << "findings not sorted by region";
        last_region = f.regionId;
        EXPECT_NE(f.message.find("secret"), std::string::npos);
    }
    EXPECT_EQ(leaks, v.post.specLeaks);

    // The leak is a side channel, not a miscompile: the squeezed
    // program still computes the reference answer.
    EXPECT_EQ(v.squeezedReturn, v.refReturn);
}

INSTANTIATE_TEST_SUITE_P(Corpus, SpecCorpusLeak,
                         ::testing::Values(kLeakGadget, kLeakMasked,
                                           kLeakHelper));

class SpecCorpusClean : public ::testing::TestWithParam<const char *>
{};

TEST_P(SpecCorpusClean, NoFalsePositives)
{
    Verdicts v = lintProgram(GetParam());

    // Really speculative (not vacuously clean) and leak-free.
    EXPECT_GT(v.post.speculative, 0u);
    EXPECT_EQ(v.post.specLeaks, 0u);
    for (const LintFinding &f : v.post.findings)
        EXPECT_NE(f.verdict, LintVerdict::SpecLeak) << f.message;

    EXPECT_EQ(v.squeezedReturn, v.refReturn);
}

INSTANTIATE_TEST_SUITE_P(Corpus, SpecCorpusClean,
                         ::testing::Values(kCleanTable, kCleanFeistel,
                                           kCleanArith));

} // namespace
} // namespace bitspec
