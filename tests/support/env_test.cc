#include <gtest/gtest.h>

#include <cstdlib>

#include "support/env.h"
#include "support/error.h"

namespace bitspec
{
namespace
{

/** Scoped setenv/unsetenv so cases cannot leak into each other. */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name_(name)
    {
        if (value)
            ::setenv(name, value, 1);
        else
            ::unsetenv(name);
    }
    ~ScopedEnv() { ::unsetenv(name_); }

  private:
    const char *name_;
};

constexpr const char *kVar = "BITSPEC_ENV_TEST_VAR";

TEST(Env, RawDistinguishesUnsetFromEmpty)
{
    {
        ScopedEnv e(kVar, nullptr);
        EXPECT_FALSE(env::raw(kVar).has_value());
    }
    {
        ScopedEnv e(kVar, "");
        ASSERT_TRUE(env::raw(kVar).has_value());
        EXPECT_EQ(*env::raw(kVar), "");
    }
    {
        ScopedEnv e(kVar, "abc");
        EXPECT_EQ(*env::raw(kVar), "abc");
    }
}

TEST(Env, GetStringDefaultsWhenUnset)
{
    ScopedEnv e(kVar, nullptr);
    EXPECT_EQ(env::getString(kVar, "fallback"), "fallback");
    EXPECT_EQ(env::getString(kVar), "");
}

TEST(Env, GetStringReturnsValue)
{
    ScopedEnv e(kVar, "trace.json");
    EXPECT_EQ(env::getString(kVar, "fallback"), "trace.json");
}

TEST(Env, GetBoolAcceptedSpellings)
{
    for (const char *v : {"1", "true", "on"}) {
        ScopedEnv e(kVar, v);
        EXPECT_TRUE(env::getBool(kVar, false)) << v;
    }
    for (const char *v : {"0", "false", "off", ""}) {
        ScopedEnv e(kVar, v);
        EXPECT_FALSE(env::getBool(kVar, true)) << v;
    }
}

TEST(Env, GetBoolDefaultsWhenUnset)
{
    ScopedEnv e(kVar, nullptr);
    EXPECT_TRUE(env::getBool(kVar, true));
    EXPECT_FALSE(env::getBool(kVar, false));
}

TEST(Env, GetBoolRejectsGarbage)
{
    for (const char *v : {"yes", "2", "TRUE", "On", " 1"}) {
        ScopedEnv e(kVar, v);
        EXPECT_THROW(env::getBool(kVar, false), FatalError) << v;
    }
}

TEST(Env, GetUnsignedParsesAndDefaults)
{
    {
        ScopedEnv e(kVar, "42");
        EXPECT_EQ(env::getUnsigned(kVar, 7, 1, 100), 42u);
    }
    {
        ScopedEnv e(kVar, nullptr);
        EXPECT_EQ(env::getUnsigned(kVar, 7, 1, 100), 7u);
    }
    {
        // Boundary values are in range.
        ScopedEnv e(kVar, "1");
        EXPECT_EQ(env::getUnsigned(kVar, 7, 1, 100), 1u);
    }
    {
        ScopedEnv e(kVar, "100");
        EXPECT_EQ(env::getUnsigned(kVar, 7, 1, 100), 100u);
    }
}

TEST(Env, GetUnsignedRejectsMalformedAndOutOfRange)
{
    for (const char *v : {"", "8x", "not-a-number", "-3", "1e3", " 8"}) {
        ScopedEnv e(kVar, v);
        EXPECT_THROW(env::getUnsigned(kVar, 7, 1, 100), FatalError)
            << v;
    }
    for (const char *v : {"0", "101", "99999999999999999999"}) {
        ScopedEnv e(kVar, v);
        EXPECT_THROW(env::getUnsigned(kVar, 7, 1, 100), FatalError)
            << v;
    }
}

} // namespace
} // namespace bitspec
