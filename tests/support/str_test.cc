#include <gtest/gtest.h>

#include "support/str.h"

namespace bitspec
{
namespace
{

TEST(Str, Format)
{
    EXPECT_EQ(strFormat("x=%d y=%s", 7, "hi"), "x=7 y=hi");
    EXPECT_EQ(strFormat("%05.1f", 2.25), "002.2");
}

TEST(Str, Split)
{
    auto parts = strSplit("a,b,,c", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[2], "");
    EXPECT_EQ(parts[3], "c");
}

TEST(Str, Pad)
{
    EXPECT_EQ(padLeft("ab", 4), "  ab");
    EXPECT_EQ(padRight("ab", 4), "ab  ");
    EXPECT_EQ(padLeft("abcdef", 4), "abcdef");
}

} // namespace
} // namespace bitspec
