#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <vector>

#include "support/error.h"
#include "support/threadpool.h"

namespace bitspec
{
namespace
{

TEST(ThreadPool, ExecutesAllTasksAndReturnsResults)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.threadCount(), 4u);

    std::vector<std::future<int>> futs;
    for (int i = 0; i < 100; ++i)
        futs.push_back(pool.submit([i] { return i * i; }));
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(futs[i].get(), i * i);
}

TEST(ThreadPool, ResultsInSubmissionOrderRegardlessOfThreadCount)
{
    // The futures vector itself carries the ordering; with both a
    // serial and a parallel pool the i-th future holds task i's
    // result.
    for (unsigned threads : {1u, 4u}) {
        ThreadPool pool(threads);
        std::vector<std::future<int>> futs;
        for (int i = 0; i < 64; ++i)
            futs.push_back(pool.submit([i] { return i; }));
        for (int i = 0; i < 64; ++i)
            EXPECT_EQ(futs[i].get(), i);
    }
}

TEST(ThreadPool, FatalErrorPropagatesThroughFuture)
{
    ThreadPool pool(2);
    auto bad = pool.submit(
        []() -> int { fatal("worker fatal"); });
    EXPECT_THROW(bad.get(), FatalError);

    // bsAssert failures (PanicError) propagate the same way.
    auto panicky = pool.submit(
        []() -> int { bsAssert(false, "worker assert"); return 0; });
    EXPECT_THROW(panicky.get(), PanicError);

    // The pool survives worker exceptions: later tasks still run.
    auto ok = pool.submit([] { return 7; });
    EXPECT_EQ(ok.get(), 7);
}

TEST(ThreadPool, DestructorDrainsPendingTasks)
{
    std::atomic<int> done{0};
    {
        ThreadPool pool(1);
        for (int i = 0; i < 32; ++i)
            pool.submit([&done] { ++done; });
        // No get(): the destructor must finish the queue, not drop it.
    }
    EXPECT_EQ(done.load(), 32);
}

TEST(ThreadPool, DefaultThreadCountHonorsEnv)
{
    ::setenv("BITSPEC_JOBS", "3", 1);
    EXPECT_EQ(ThreadPool::defaultThreadCount(), 3u);

    // Out-of-range and malformed values are a hard configuration
    // error (support/env contract), not a silent fallback.
    ::setenv("BITSPEC_JOBS", "0", 1);
    EXPECT_THROW(ThreadPool::defaultThreadCount(), FatalError);
    ::setenv("BITSPEC_JOBS", "not-a-number", 1);
    EXPECT_THROW(ThreadPool::defaultThreadCount(), FatalError);

    ::unsetenv("BITSPEC_JOBS");
    EXPECT_GE(ThreadPool::defaultThreadCount(), 1u);

    ThreadPool pool(0);
    EXPECT_GE(pool.threadCount(), 1u);
}

TEST(ThreadPool, ParallelSumMatchesSerial)
{
    ThreadPool pool(4);
    std::vector<std::future<long>> futs;
    for (long chunk = 0; chunk < 16; ++chunk)
        futs.push_back(pool.submit([chunk] {
            long s = 0;
            for (long i = chunk * 1000; i < (chunk + 1) * 1000; ++i)
                s += i;
            return s;
        }));
    long total = 0;
    for (auto &f : futs)
        total += f.get();
    EXPECT_EQ(total, 16000L * (16000L - 1) / 2);
}

} // namespace
} // namespace bitspec
