#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "support/log.h"

namespace bitspec
{
namespace
{

/** Captured (level, message) pairs from the sink hook. The sink is a
 *  plain function pointer, so the capture buffer is a static. */
std::vector<std::pair<log::Level, std::string>> g_captured;

void
captureSink(log::Level l, const char *msg)
{
    g_captured.emplace_back(l, msg);
}

/** Restores the default threshold and detaches the sink on exit, so
 *  tests cannot leak logging state into each other. */
struct LogGuard
{
    LogGuard()
    {
        log::resetCounts();
        g_captured.clear();
    }
    ~LogGuard()
    {
        log::setThreshold(log::Level::Warn);
        log::setSink(nullptr);
    }
};

TEST(Log, LevelNames)
{
    EXPECT_STREQ(log::levelName(log::Level::Error), "error");
    EXPECT_STREQ(log::levelName(log::Level::Warn), "warn");
    EXPECT_STREQ(log::levelName(log::Level::Info), "info");
    EXPECT_STREQ(log::levelName(log::Level::Debug), "debug");
}

TEST(Log, ThresholdFilters)
{
    LogGuard guard;
    log::setThreshold(log::Level::Warn);
    EXPECT_TRUE(log::enabled(log::Level::Error));
    EXPECT_TRUE(log::enabled(log::Level::Warn));
    EXPECT_FALSE(log::enabled(log::Level::Info));
    EXPECT_FALSE(log::enabled(log::Level::Debug));

    log::setThreshold(log::Level::Debug);
    EXPECT_TRUE(log::enabled(log::Level::Debug));
}

TEST(Log, CountersBumpEvenWhenFiltered)
{
    LogGuard guard;
    log::setThreshold(log::Level::Error); // Filter warn and below.
    const uint64_t warns0 = log::count(log::Level::Warn);
    const uint64_t debugs0 = log::count(log::Level::Debug);
    log::warn("suppressed warning %d", 1);
    log::debug("suppressed debug");
    EXPECT_EQ(log::count(log::Level::Warn), warns0 + 1);
    EXPECT_EQ(log::count(log::Level::Debug), debugs0 + 1);
}

TEST(Log, SinkSeesFilteredMessages)
{
    LogGuard guard;
    log::setThreshold(log::Level::Error);
    log::setSink(captureSink);
    log::info("hidden from stderr, visible to the sink: %s", "x");
    log::error("loud");
    log::setSink(nullptr);
    ASSERT_EQ(g_captured.size(), 2u);
    EXPECT_EQ(g_captured[0].first, log::Level::Info);
    EXPECT_EQ(g_captured[0].second,
              "hidden from stderr, visible to the sink: x");
    EXPECT_EQ(g_captured[1].first, log::Level::Error);
    EXPECT_EQ(g_captured[1].second, "loud");
}

TEST(Log, ResetCountsClearsEveryLevel)
{
    LogGuard guard;
    log::setThreshold(log::Level::Error);
    log::warn("w");
    log::error("e");
    log::resetCounts();
    EXPECT_EQ(log::count(log::Level::Error), 0u);
    EXPECT_EQ(log::count(log::Level::Warn), 0u);
    EXPECT_EQ(log::count(log::Level::Info), 0u);
    EXPECT_EQ(log::count(log::Level::Debug), 0u);
}

} // namespace
} // namespace bitspec
