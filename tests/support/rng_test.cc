#include <gtest/gtest.h>

#include "support/rng.h"

namespace bitspec
{
namespace
{

TEST(Rng, DeterministicForSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 4);
}

TEST(Rng, NextBelowInRange)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.nextBelow(17), 17u);
}

TEST(Rng, NextRangeInclusive)
{
    Rng r(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        uint64_t v = r.nextRange(3, 6);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 6u);
        saw_lo |= (v == 3);
        saw_hi |= (v == 6);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng r(11);
    for (int i = 0; i < 1000; ++i) {
        double d = r.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, RoughlyUniform)
{
    Rng r(13);
    int buckets[8] = {};
    const int n = 80000;
    for (int i = 0; i < n; ++i)
        buckets[r.nextBelow(8)]++;
    for (int b = 0; b < 8; ++b) {
        EXPECT_GT(buckets[b], n / 8 - n / 40);
        EXPECT_LT(buckets[b], n / 8 + n / 40);
    }
}

} // namespace
} // namespace bitspec
