#include <gtest/gtest.h>

#include "support/stats.h"

namespace bitspec
{
namespace
{

TEST(Stats, Mean)
{
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(mean({2.0}), 2.0);
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
}

TEST(Stats, Geomean)
{
    EXPECT_DOUBLE_EQ(geomean({4.0}), 4.0);
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

TEST(Stats, PercentileEndpoints)
{
    std::vector<double> xs{5.0, 1.0, 3.0};
    EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 5.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 3.0);
}

TEST(Stats, PercentileInterpolates)
{
    std::vector<double> xs{0.0, 10.0};
    EXPECT_DOUBLE_EQ(percentile(xs, 25.0), 2.5);
    EXPECT_DOUBLE_EQ(percentile(xs, 75.0), 7.5);
}

TEST(Histogram, EmptyIsAllZero)
{
    Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.sum(), 0.0);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(50.0), 0.0);
    EXPECT_DOUBLE_EQ(h.p99(), 0.0);
}

TEST(Histogram, SingleSample)
{
    Histogram h;
    h.add(7.5);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_DOUBLE_EQ(h.sum(), 7.5);
    EXPECT_DOUBLE_EQ(h.min(), 7.5);
    EXPECT_DOUBLE_EQ(h.max(), 7.5);
    EXPECT_DOUBLE_EQ(h.mean(), 7.5);
    EXPECT_DOUBLE_EQ(h.p50(), 7.5);
    EXPECT_DOUBLE_EQ(h.p95(), 7.5);
    EXPECT_DOUBLE_EQ(h.p99(), 7.5);
}

TEST(Histogram, PercentilesMatchFreeFunction)
{
    Histogram h;
    std::vector<double> xs{5.0, 1.0, 3.0, 9.0, 7.0};
    for (double x : xs)
        h.add(x);
    for (double p : {0.0, 25.0, 50.0, 75.0, 95.0, 100.0})
        EXPECT_DOUBLE_EQ(h.percentile(p), percentile(xs, p)) << p;
}

TEST(Histogram, AddAfterPercentileResorts)
{
    Histogram h;
    h.add(10.0);
    h.add(20.0);
    EXPECT_DOUBLE_EQ(h.p50(), 15.0);
    h.add(0.0); // Arrives out of order after a lazy sort.
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 0.0);
    EXPECT_DOUBLE_EQ(h.p50(), 10.0);
}

TEST(Histogram, MergeFoldsSamples)
{
    Histogram a, b;
    a.add(1.0);
    a.add(2.0);
    b.add(3.0);
    b.add(4.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 4u);
    EXPECT_DOUBLE_EQ(a.sum(), 10.0);
    EXPECT_DOUBLE_EQ(a.min(), 1.0);
    EXPECT_DOUBLE_EQ(a.max(), 4.0);
    EXPECT_DOUBLE_EQ(a.p50(), 2.5);
    // The source histogram is unchanged.
    EXPECT_EQ(b.count(), 2u);
}

TEST(Histogram, MergeEmptyIsNoop)
{
    Histogram a, empty;
    a.add(5.0);
    a.merge(empty);
    EXPECT_EQ(a.count(), 1u);
    empty.merge(a);
    EXPECT_EQ(empty.count(), 1u);
    EXPECT_DOUBLE_EQ(empty.p50(), 5.0);
}

} // namespace
} // namespace bitspec
