#include <gtest/gtest.h>

#include "support/stats.h"

namespace bitspec
{
namespace
{

TEST(Stats, Mean)
{
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(mean({2.0}), 2.0);
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
}

TEST(Stats, Geomean)
{
    EXPECT_DOUBLE_EQ(geomean({4.0}), 4.0);
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

TEST(Stats, PercentileEndpoints)
{
    std::vector<double> xs{5.0, 1.0, 3.0};
    EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 5.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 3.0);
}

TEST(Stats, PercentileInterpolates)
{
    std::vector<double> xs{0.0, 10.0};
    EXPECT_DOUBLE_EQ(percentile(xs, 25.0), 2.5);
    EXPECT_DOUBLE_EQ(percentile(xs, 75.0), 7.5);
}

} // namespace
} // namespace bitspec
