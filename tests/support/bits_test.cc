#include <gtest/gtest.h>

#include "support/bits.h"

namespace bitspec
{
namespace
{

TEST(RequiredBits, MatchesPaperDefinition)
{
    // floor(lg a + 1), pinned to 1 at zero.
    EXPECT_EQ(requiredBits(0), 1u);
    EXPECT_EQ(requiredBits(1), 1u);
    EXPECT_EQ(requiredBits(2), 2u);
    EXPECT_EQ(requiredBits(3), 2u);
    EXPECT_EQ(requiredBits(4), 3u);
    EXPECT_EQ(requiredBits(255), 8u);
    EXPECT_EQ(requiredBits(256), 9u);
    EXPECT_EQ(requiredBits(~0ULL), 64u);
}

TEST(RequiredBits, PowerOfTwoBoundaries)
{
    for (unsigned n = 1; n < 64; ++n) {
        uint64_t p = 1ULL << n;
        EXPECT_EQ(requiredBits(p - 1), n) << "below 2^" << n;
        EXPECT_EQ(requiredBits(p), n + 1) << "at 2^" << n;
    }
}

TEST(RequiredBitsSigned, RoundTripsThroughSext)
{
    for (int64_t v : {0L, 1L, -1L, 127L, -128L, 128L, -129L, 255L,
                      65535L, -65536L}) {
        unsigned n = requiredBitsSigned(v);
        EXPECT_EQ(static_cast<int64_t>(
                      sextFrom(static_cast<uint64_t>(v), n)), v)
            << "v=" << v;
        if (n > 1) {
            // Minimality: one fewer bit must not round-trip.
            EXPECT_NE(static_cast<int64_t>(
                          sextFrom(static_cast<uint64_t>(v), n - 1)), v)
                << "v=" << v;
        }
    }
}

TEST(BitwidthClass, RoundsUpToStorageClasses)
{
    EXPECT_EQ(bitwidthClass(1), 8u);
    EXPECT_EQ(bitwidthClass(8), 8u);
    EXPECT_EQ(bitwidthClass(9), 16u);
    EXPECT_EQ(bitwidthClass(16), 16u);
    EXPECT_EQ(bitwidthClass(17), 32u);
    EXPECT_EQ(bitwidthClass(32), 32u);
    EXPECT_EQ(bitwidthClass(33), 64u);
    EXPECT_EQ(bitwidthClass(64), 64u);
}

TEST(Masks, LowMaskAndTrunc)
{
    EXPECT_EQ(lowMask(1), 1ULL);
    EXPECT_EQ(lowMask(8), 0xffULL);
    EXPECT_EQ(lowMask(32), 0xffffffffULL);
    EXPECT_EQ(lowMask(64), ~0ULL);
    EXPECT_EQ(truncTo(0x1234, 8), 0x34ULL);
    EXPECT_EQ(truncTo(0xffffffffffffffffULL, 32), 0xffffffffULL);
}

TEST(Extension, SextZext)
{
    EXPECT_EQ(sextFrom(0x80, 8), 0xffffffffffffff80ULL);
    EXPECT_EQ(sextFrom(0x7f, 8), 0x7fULL);
    EXPECT_EQ(zextFrom(0x80, 8), 0x80ULL);
    EXPECT_EQ(sextFrom(0xffff, 16), ~0ULL);
    EXPECT_EQ(sextFrom(0x1234, 64), 0x1234ULL);
}

TEST(Fits, FitsUnsigned)
{
    EXPECT_TRUE(fitsUnsigned(255, 8));
    EXPECT_FALSE(fitsUnsigned(256, 8));
    EXPECT_TRUE(fitsUnsigned(0, 1));
}

} // namespace
} // namespace bitspec
