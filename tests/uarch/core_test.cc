#include <gtest/gtest.h>

#include "backend/compiler.h"
#include "frontend/irgen.h"
#include "interp/interpreter.h"
#include "profile/bitwidth_profile.h"
#include "support/error.h"
#include "transform/squeezer.h"
#include "uarch/core.h"

namespace bitspec
{
namespace
{

/** The skeleton-layout invariant (paper §3.3.4): for every
 *  instruction in a function's speculative area at flat index p, the
 *  slot at p + Δ/4 holds a skeleton branch; and for instructions that
 *  can actually misspeculate, that branch targets a handler block of
 *  the right region. */
TEST(Layout, SkeletonInvariantHolds)
{
    const char *src = R"(
        u8 data[64] = "skeletons for every speculative instruction";
        u32 main(u32 n) {
            u32 h = 0;
            for (u32 i = 0; i < n; i++)
                h = (h + data[i % 44]) % 199;
            return h;
        }
    )";
    auto mod = compileSource(src);
    BitwidthProfile profile;
    profile.profileRun(*mod, "main", {44});
    SqueezeOptions opts;
    squeezeModule(*mod, profile, opts);
    CompiledProgram cp = compileModule(*mod, TargetISA::BitSpec);

    const auto &flat = cp.program.flat;
    unsigned checked = 0;
    for (uint32_t i = 0; i < flat.size(); ++i) {
        if (!mayMisspeculate(flat[i]))
            continue;
        // Find this function's delta.
        uint32_t func = cp.program.funcOfIndex[i];
        uint32_t delta = 0;
        for (const auto &mf : cp.program.funcs)
            if (static_cast<uint32_t>(mf.id) == func)
                delta = mf.delta;
        ASSERT_GT(delta, 0u) << "speculative op with no delta";
        uint32_t slot = i + delta / kInstBytes;
        ASSERT_LT(slot, flat.size());
        EXPECT_EQ(flat[slot].op, MOp::B) << "index " << i;
        EXPECT_EQ(flat[slot].tag, InstTag::Skeleton) << "index " << i;
        EXPECT_EQ(flat[slot].cond, Cond::AL);
        ++checked;
    }
    EXPECT_GT(checked, 0u) << "no speculative instructions emitted";
}

TEST(Core, SliceWritesAliasFullRegister)
{
    // Squeezed code interleaves slice and word accesses to the same
    // architectural registers; this kernel fails unless slice writes
    // land in the right byte of the full register and vice versa.
    const char *src = R"(
        u8 bytes[16] = "aliasing check!";
        u32 main() {
            u32 acc = 0;
            for (u32 i = 0; i < 15; i++) {
                u32 lo = bytes[i];           // Slice-held value.
                u32 wide = lo * 0x01010101;  // Word compute from it.
                acc ^= wide;
                acc = (acc >> 8) | ((acc & 0xff) << 24);
            }
            return acc;
        }
    )";
    auto ref = compileSource(src);
    Interpreter in(*ref);
    uint64_t want = truncTo(in.run("main"), 32);

    auto mod = compileSource(src);
    BitwidthProfile profile;
    profile.profileRun(*mod);
    SqueezeOptions opts;
    squeezeModule(*mod, profile, opts);
    CompiledProgram cp = compileModule(*mod, TargetISA::BitSpec);
    Core core(cp.program, *mod);
    EXPECT_EQ(core.run(), want);
    EXPECT_GT(core.counters().rfWrite8, 0u);
}

TEST(Core, FuelGuardsAgainstRunaway)
{
    const char *src = "u32 main() { u32 x = 1; while (x) { x = 1; } "
                      "return x; }";
    auto mod = compileSource(src);
    CompiledProgram cp = compileModule(*mod, TargetISA::Baseline);
    Core core(cp.program, *mod);
    core.setFuel(5000);
    EXPECT_THROW(core.run(), FatalError);
}

TEST(Core, ResetRestoresGlobalsAndCounters)
{
    const char *src = R"(
        u32 state;
        u32 main() { state = state + 7; return state; }
    )";
    auto mod = compileSource(src);
    CompiledProgram cp = compileModule(*mod, TargetISA::Baseline);
    Core core(cp.program, *mod);
    EXPECT_EQ(core.run(), 7u);
    core.reset();
    EXPECT_EQ(core.run(), 7u); // Not 14: memory reloaded.
    EXPECT_GT(core.counters().instructions, 0u);
}

TEST(Core, CyclesExceedInstructionsWithMemoryTraffic)
{
    const char *src = R"(
        u32 buf[512];
        u32 main() {
            u32 s = 0;
            for (u32 i = 0; i < 512; i++) buf[i] = i;
            for (u32 i = 0; i < 512; i++) s += buf[i] * 3;
            return s;
        }
    )";
    auto mod = compileSource(src);
    CompiledProgram cp = compileModule(*mod, TargetISA::Baseline);
    Core core(cp.program, *mod);
    core.run();
    const ActivityCounters &c = core.counters();
    EXPECT_GT(c.cycles, c.instructions); // Stalls exist.
    EXPECT_GT(c.loads, 500u);
    EXPECT_GT(c.stores, 500u);
    EXPECT_GT(core.memory().l1d().misses, 0u);
}

TEST(Core, ThumbExecutesMoreInstructions)
{
    const char *src = R"(
        u32 main(u32 n) {
            u32 a = 1; u32 b = 2; u32 c = 3;
            for (u32 i = 0; i < n; i++) {
                u32 t = a + b;
                a = b ^ c;
                b = c + t;
                c = t;
            }
            return a + b + c;
        }
    )";
    auto m1 = compileSource(src);
    CompiledProgram base = compileModule(*m1, TargetISA::Baseline);
    auto m2 = compileSource(src);
    CompiledProgram thumb = compileModule(*m2, TargetISA::Thumb);

    Core cb(base.program, *m1);
    Core ct(thumb.program, *m2);
    EXPECT_EQ(cb.run({100}), ct.run({100}));
    EXPECT_GT(ct.counters().instructions,
              cb.counters().instructions);
}

/** Hand-build a program running one memory op against @p addr, then
 *  HALT. Address arrives via an immediate base operand. */
MachProgram
memProbeProgram(MOp op, uint32_t addr)
{
    MachProgram prog;
    MachInst m;
    m.op = op;
    m.dst = MOpnd::makeReg(1);
    m.a = MOpnd::makeImm(static_cast<int64_t>(addr));
    m.b = MOpnd::makeImm(0);
    prog.flat.push_back(m);
    MachInst halt;
    halt.op = MOp::HALT;
    prog.flat.push_back(halt);
    return prog;
}

TEST(Core, LoadBoundsCheckDoesNotWrapNearAddressMax)
{
    // addr + bytes overflows uint32_t (0xFFFFFFFD + 4 == 1), so a
    // 32-bit comparison would accept the access and read far out of
    // bounds. The check must be performed in 64 bits.
    auto mod = compileSource("u32 main() { return 0; }");
    MachProgram prog = memProbeProgram(MOp::LDR, 0xFFFFFFFDu);
    Core core(prog, *mod);
    EXPECT_THROW(core.run(), FatalError);
}

TEST(Core, StoreBoundsCheckDoesNotWrapNearAddressMax)
{
    auto mod = compileSource("u32 main() { return 0; }");
    MachProgram prog = memProbeProgram(MOp::STR, 0xFFFFFFFEu);
    Core core(prog, *mod);
    EXPECT_THROW(core.run(), FatalError);
}

TEST(Core, StraddlingAccessAtMemoryEndIsRejected)
{
    // Non-wrapping case: a 4-byte access whose last byte falls one
    // past the data memory must also fault.
    auto mod = compileSource("u32 main() { return 0; }");
    uint32_t end = static_cast<uint32_t>(Core::kMemBytes);
    MachProgram prog = memProbeProgram(MOp::LDR, end - 3);
    Core core(prog, *mod);
    EXPECT_THROW(core.run(), FatalError);

    // The last fully in-bounds word is fine.
    MachProgram ok = memProbeProgram(MOp::LDR, end - 4);
    Core core2(ok, *mod);
    EXPECT_EQ(core2.run(), 0u);
}

} // namespace
} // namespace bitspec
