/**
 * @file
 * Targeted unit tests of the fast core engine: memo-guard divergence
 * (hot block -> cache miss or misspeculation -> hot again), memo
 * invalidation, persistence across reset(), fuel accounting under
 * replay, and the BITSPEC_CORE_ENGINE knob on System.
 *
 * Whole-workload equivalence lives in core_engine_diff_test.cc; these
 * tests construct small kernels where the divergence paths are
 * guaranteed to fire and assert them via replayedRuns()/slowInsts().
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "backend/compiler.h"
#include "core/system.h"
#include "frontend/irgen.h"
#include "profile/bitwidth_profile.h"
#include "support/error.h"
#include "transform/squeezer.h"
#include "uarch/core.h"
#include "uarch/fast_core.h"
#include "uarch/predecode.h"

namespace bitspec
{
namespace
{

void
expectSameObservables(const Core &legacy, const FastCore &fast)
{
    const ActivityCounters &a = legacy.counters();
    const ActivityCounters &b = fast.counters();
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.alu32, b.alu32);
    EXPECT_EQ(a.alu8, b.alu8);
    EXPECT_EQ(a.mulDiv, b.mulDiv);
    EXPECT_EQ(a.rfRead32, b.rfRead32);
    EXPECT_EQ(a.rfWrite32, b.rfWrite32);
    EXPECT_EQ(a.rfRead8, b.rfRead8);
    EXPECT_EQ(a.rfWrite8, b.rfWrite8);
    EXPECT_EQ(a.loads, b.loads);
    EXPECT_EQ(a.stores, b.stores);
    EXPECT_EQ(a.branches, b.branches);
    EXPECT_EQ(a.takenBranches, b.takenBranches);
    EXPECT_EQ(a.calls, b.calls);
    EXPECT_EQ(a.misspeculations, b.misspeculations);
    EXPECT_EQ(a.dynSpillLoads, b.dynSpillLoads);
    EXPECT_EQ(a.dynSpillStores, b.dynSpillStores);
    EXPECT_EQ(a.dynCopies, b.dynCopies);
    EXPECT_EQ(a.outputs, b.outputs);
    EXPECT_EQ(legacy.outputChecksum(), fast.outputChecksum());

    const MemoryHierarchy &ma = legacy.memory();
    const MemoryHierarchy &mb = fast.memory();
    EXPECT_EQ(ma.l1i().accesses, mb.l1i().accesses);
    EXPECT_EQ(ma.l1i().misses, mb.l1i().misses);
    EXPECT_EQ(ma.l1d().accesses, mb.l1d().accesses);
    EXPECT_EQ(ma.l1d().misses, mb.l1d().misses);
    EXPECT_EQ(ma.l1d().writebacks, mb.l1d().writebacks);
    EXPECT_EQ(ma.l2().accesses, mb.l2().accesses);
    EXPECT_EQ(ma.l2().misses, mb.l2().misses);
    EXPECT_EQ(ma.l2().writebacks, mb.l2().writebacks);
    EXPECT_EQ(ma.dram().reads, mb.dram().reads);
    EXPECT_EQ(ma.dram().writes, mb.dram().writes);
}

TEST(FastCore, HotMissHotStreamingLoadsStayExact)
{
    // 16 KiB array vs the 8 KiB L1D: every pass re-misses each line,
    // so the inner-loop block cycles hot -> D-miss divergence -> hot
    // again continuously. The memo must replay the hit iterations and
    // fall out exactly at each miss.
    const char *src = R"(
        u32 data[4096];
        u32 main(u32 passes) {
            u32 h = 0;
            for (u32 p = 0; p < passes; p++)
                for (u32 i = 0; i < 4096; i++)
                    h = h * 31 + data[i];
            return h;
        }
    )";
    auto mod = compileSource(src);
    CompiledProgram cp = compileModule(*mod, TargetISA::Baseline);

    Core legacy(cp.program, *mod);
    uint32_t want = legacy.run({3});

    PredecodedProgram pre(cp.program);
    FastCore fast(pre, *mod);
    EXPECT_EQ(fast.run({3}), want);
    expectSameObservables(legacy, fast);

    // Both engine paths must actually have fired.
    EXPECT_GT(fast.replayedRuns(), 0u);
    EXPECT_GT(fast.slowInsts(), 0u);
    // Streaming re-misses across passes: well beyond one pass' worth
    // of cold misses (4096 u32 / 8 per line = 512).
    EXPECT_GT(fast.memory().l1d().misses, 1000u);
}

TEST(FastCore, HotMisspecHotStaysExact)
{
    // Trained on a short run, the accumulator squeezes to 8 bits;
    // the long run overflows it repeatedly, so the hot loop block
    // cycles replay -> misspeculation divergence -> replay.
    const char *src = R"(
        u8 data[64] = "skeletons for every speculative instruction";
        u32 main(u32 n) {
            u32 h = 0;
            for (u32 i = 0; i < n; i++)
                h = (h + data[i % 44]) % 199;
            return h;
        }
    )";
    auto mod = compileSource(src);
    BitwidthProfile profile;
    profile.profileRun(*mod, "main", {4});
    SqueezeOptions opts;
    squeezeModule(*mod, profile, opts);
    CompiledProgram cp = compileModule(*mod, TargetISA::BitSpec);

    Core legacy(cp.program, *mod);
    uint32_t want = legacy.run({44});

    PredecodedProgram pre(cp.program);
    FastCore fast(pre, *mod);
    EXPECT_EQ(fast.run({44}), want);
    expectSameObservables(legacy, fast);

    EXPECT_GT(fast.counters().misspeculations, 0u);
    EXPECT_GT(fast.replayedRuns(), 0u);
}

TEST(FastCore, ResetPreservesMemosAndStaysDeterministic)
{
    const char *src = R"(
        u32 data[256];
        u32 main(u32 n) {
            u32 h = 0;
            for (u32 r = 0; r < n; r++)
                for (u32 i = 0; i < 256; i++)
                    h = h * 31 + (data[i] ^ (h >> 5));
            return h;
        }
    )";
    auto mod = compileSource(src);
    CompiledProgram cp = compileModule(*mod, TargetISA::Baseline);
    PredecodedProgram pre(cp.program);
    FastCore fast(pre, *mod);

    uint32_t first = fast.run({8});
    ActivityCounters cold = fast.counters();
    size_t memos = fast.memoCount();
    uint64_t replays = fast.replayedRuns();
    EXPECT_GT(memos, 0u);
    EXPECT_GT(replays, 0u);

    // reset() reloads globals/counters but keeps the memo table
    // (geometry-only); the warm run must be bit-identical.
    fast.reset();
    EXPECT_EQ(fast.run({8}), first);
    EXPECT_EQ(fast.counters().instructions, cold.instructions);
    EXPECT_EQ(fast.counters().cycles, cold.cycles);
    EXPECT_EQ(fast.memoCount(), memos);
    EXPECT_GT(fast.replayedRuns(), replays);
}

TEST(FastCore, InvalidateMemosDropsAndRebuilds)
{
    const char *src = R"(
        u32 state;
        u32 main(u32 n) {
            for (u32 i = 0; i < n; i++)
                state = state * 3 + 1;
            return state;
        }
    )";
    auto mod = compileSource(src);
    CompiledProgram cp = compileModule(*mod, TargetISA::Baseline);
    PredecodedProgram pre(cp.program);
    FastCore fast(pre, *mod);

    uint32_t first = fast.run({32});
    uint64_t cycles = fast.counters().cycles;
    EXPECT_GT(fast.memoCount(), 0u);

    // The analogue of Interpreter::invalidate(): stale memos must be
    // droppable, and rebuilding them must not change any observable.
    fast.invalidateMemos();
    EXPECT_EQ(fast.memoCount(), 0u);
    fast.reset();
    EXPECT_EQ(fast.run({32}), first);
    EXPECT_EQ(fast.counters().cycles, cycles);
    EXPECT_GT(fast.memoCount(), 0u);
}

TEST(FastCore, FuelGuardsAgainstRunawayUnderReplay)
{
    const char *src = "u32 main() { u32 x = 1; while (x) { x = 1; } "
                      "return x; }";
    auto mod = compileSource(src);
    CompiledProgram cp = compileModule(*mod, TargetISA::Baseline);
    PredecodedProgram pre(cp.program);
    FastCore fast(pre, *mod);
    fast.setFuel(5000);
    EXPECT_THROW(fast.run(), FatalError);
}

/** Restores BITSPEC_CORE_ENGINE around each knob test. */
class CoreEngineKnob : public ::testing::Test
{
  protected:
    void TearDown() override { ::unsetenv("BITSPEC_CORE_ENGINE"); }

    static System makeSystem()
    {
        return System("u32 main() { return 7; }",
                      SystemConfig::baseline());
    }
};

TEST_F(CoreEngineKnob, DefaultsToFast)
{
    ::unsetenv("BITSPEC_CORE_ENGINE");
    EXPECT_EQ(makeSystem().coreEngine(), CoreEngine::Fast);
}

TEST_F(CoreEngineKnob, SelectsLegacy)
{
    ::setenv("BITSPEC_CORE_ENGINE", "legacy", 1);
    EXPECT_EQ(makeSystem().coreEngine(), CoreEngine::Legacy);
}

TEST_F(CoreEngineKnob, SelectsFastExplicitly)
{
    ::setenv("BITSPEC_CORE_ENGINE", "fast", 1);
    EXPECT_EQ(makeSystem().coreEngine(), CoreEngine::Fast);
}

TEST_F(CoreEngineKnob, RejectsUnknownValue)
{
    ::setenv("BITSPEC_CORE_ENGINE", "warp9", 1);
    EXPECT_THROW(makeSystem(), FatalError);
}

TEST_F(CoreEngineKnob, SwitchingEnginesDropsFastState)
{
    ::unsetenv("BITSPEC_CORE_ENGINE");
    System sys = makeSystem();
    sys.run();
    ASSERT_NE(sys.fastCore(), nullptr);
    sys.setCoreEngine(CoreEngine::Legacy);
    EXPECT_EQ(sys.fastCore(), nullptr);
    RunResult r = sys.run();
    EXPECT_EQ(r.returnValue, 7u);
    EXPECT_EQ(sys.fastCore(), nullptr); // Legacy runs never build it.
}

} // namespace
} // namespace bitspec
