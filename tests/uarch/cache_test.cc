#include <gtest/gtest.h>

#include "support/error.h"
#include "uarch/cache.h"

namespace bitspec
{
namespace
{

TEST(Cache, HitAfterMiss)
{
    Cache c(8 * 1024, 4, 32);
    EXPECT_FALSE(c.access(0x1000, false));
    EXPECT_TRUE(c.access(0x1000, false));
    EXPECT_TRUE(c.access(0x101f, false)); // Same 32B line.
    EXPECT_FALSE(c.access(0x1020, false)); // Next line.
    EXPECT_EQ(c.stats().accesses, 4u);
    EXPECT_EQ(c.stats().misses, 2u);
}

TEST(Cache, AssociativityHoldsConflictingLines)
{
    Cache c(8 * 1024, 4, 32);
    // 4-way, 64 sets: addresses 2 KiB apart map to the same set.
    for (int w = 0; w < 4; ++w)
        EXPECT_FALSE(c.access(0x1000 + w * 2048, false));
    for (int w = 0; w < 4; ++w)
        EXPECT_TRUE(c.access(0x1000 + w * 2048, false));
}

TEST(Cache, LruEvictsOldest)
{
    Cache c(8 * 1024, 4, 32);
    for (int w = 0; w < 4; ++w)
        c.access(0x1000 + w * 2048, false);
    // Touch way 0 again, then insert a 5th conflicting line.
    c.access(0x1000, false);
    c.access(0x1000 + 4 * 2048, false);
    // Way 0 (recently used) must survive; way 1 was evicted.
    EXPECT_TRUE(c.access(0x1000, false));
    EXPECT_FALSE(c.access(0x1000 + 1 * 2048, false));
}

TEST(Cache, DirtyEvictionCountsWriteback)
{
    Cache c(8 * 1024, 4, 32);
    c.access(0x1000, true); // Dirty.
    for (int w = 1; w <= 4; ++w)
        c.access(0x1000 + w * 2048, false); // Evicts the dirty line.
    EXPECT_EQ(c.stats().writebacks, 1u);
}

TEST(Hierarchy, LatenciesEscalate)
{
    MemoryHierarchy m;
    // Cold: L1 miss -> L2 miss -> DRAM.
    EXPECT_EQ(m.data(0x2000, false),
              MemoryHierarchy::kL2HitCycles +
                  MemoryHierarchy::kDramCycles);
    // Warm: L1 hit.
    EXPECT_EQ(m.data(0x2000, false), 0u);
    EXPECT_EQ(m.dram().reads, 1u);
}

TEST(Hierarchy, L2CatchesL1Evictions)
{
    MemoryHierarchy m;
    m.data(0x3000, false);
    // Blow the line out of 8 KiB L1 (touch 8 conflicting lines)...
    for (int w = 1; w <= 8; ++w)
        m.data(0x3000 + w * 2048, false);
    // ...but 256 KiB L2 still holds it: only the L2 latency is paid.
    EXPECT_EQ(m.data(0x3000, false), MemoryHierarchy::kL2HitCycles);
}

TEST(Hierarchy, SeparateInstructionAndDataPaths)
{
    MemoryHierarchy m;
    m.fetch(0x5000);
    EXPECT_EQ(m.l1i().misses, 1u);
    EXPECT_EQ(m.l1d().accesses, 0u);
    // Data access to the same address misses L1D (separate cache)
    // but hits in the shared L2.
    EXPECT_EQ(m.data(0x5000, false), MemoryHierarchy::kL2HitCycles);
}

TEST(Cache, PeekIsAPureProbe)
{
    Cache c(8 * 1024, 4, 32);
    EXPECT_FALSE(c.peek(0x1000));
    EXPECT_EQ(c.stats().accesses, 0u); // No stats from probing.
    c.access(0x1000, false);
    EXPECT_TRUE(c.peek(0x1000));
    EXPECT_TRUE(c.peek(0x101f)); // Same line.
    EXPECT_FALSE(c.peek(0x1020));
    EXPECT_EQ(c.stats().accesses, 1u);
    EXPECT_EQ(c.stats().misses, 1u);
}

TEST(Cache, CommitHitsMatchesAccessLoop)
{
    // commitHits(addr, n) must be statistically and LRU-wise
    // indistinguishable from n access() hits on the same line.
    Cache bulk(8 * 1024, 4, 32);
    Cache loop(8 * 1024, 4, 32);
    bulk.access(0x1000, false);
    loop.access(0x1000, false);

    bulk.commitHits(0x1000, 7);
    for (int i = 0; i < 7; ++i)
        EXPECT_TRUE(loop.access(0x1000, false));

    EXPECT_EQ(bulk.stats().accesses, loop.stats().accesses);
    EXPECT_EQ(bulk.stats().misses, loop.stats().misses);
    EXPECT_EQ(bulk.stats().writebacks, loop.stats().writebacks);

    // The commit must also freshen the line's LRU stamp: make an
    // older conflicting line the victim. 0x1800 enters after 0x1000,
    // but the bulk hits leave 0x1000 more recently used, so filling
    // the set evicts 0x1800 — unless commitHits forgot the clock.
    bulk.access(0x1800, false);
    loop.access(0x1800, false);
    bulk.commitHits(0x1000, 3);
    for (int i = 0; i < 3; ++i)
        loop.access(0x1000, false);
    for (uint32_t line : {0x2000u, 0x2800u, 0x3000u}) {
        bulk.access(line, false);
        loop.access(line, false);
    }
    EXPECT_TRUE(bulk.peek(0x1000));
    EXPECT_FALSE(bulk.peek(0x1800));
    EXPECT_EQ(bulk.peek(0x1000), loop.peek(0x1000));
    EXPECT_EQ(bulk.peek(0x1800), loop.peek(0x1800));
}

TEST(Cache, CommitHitsPanicsWhenNotResident)
{
    Cache c(8 * 1024, 4, 32);
    EXPECT_THROW(c.commitHits(0x1000, 1), PanicError);
}

TEST(Hierarchy, FetchRangeCommitMatchesFetchLoop)
{
    // A 9-instruction straight-line run crossing a 32 B line boundary:
    // the bulk commit must leave identical stats to per-PC fetches.
    const uint32_t first = 0x400010, last = first + 8 * 4;
    MemoryHierarchy bulk, loop;
    EXPECT_FALSE(bulk.fetchRangeResident(first, last));
    for (uint32_t pc = first; pc <= last; pc += 4) {
        bulk.fetch(pc);
        loop.fetch(pc);
    }
    ASSERT_TRUE(bulk.fetchRangeResident(first, last));

    bulk.fetchRangeCommit(first, last);
    for (uint32_t pc = first; pc <= last; pc += 4)
        loop.fetch(pc);

    EXPECT_EQ(bulk.l1i().accesses, loop.l1i().accesses);
    EXPECT_EQ(bulk.l1i().misses, loop.l1i().misses);
    EXPECT_EQ(bulk.l2().accesses, loop.l2().accesses);
    EXPECT_EQ(bulk.dram().reads, loop.dram().reads);
}

TEST(Hierarchy, FetchRangeResidentNeedsEveryLine)
{
    MemoryHierarchy m;
    m.fetch(0x400000); // First line only.
    EXPECT_TRUE(m.fetchRangeResident(0x400000, 0x40001c));
    // Range extends into the next, unfetched line.
    EXPECT_FALSE(m.fetchRangeResident(0x400000, 0x400020));
}

} // namespace
} // namespace bitspec
