#include <gtest/gtest.h>

#include "uarch/cache.h"

namespace bitspec
{
namespace
{

TEST(Cache, HitAfterMiss)
{
    Cache c(8 * 1024, 4, 32);
    EXPECT_FALSE(c.access(0x1000, false));
    EXPECT_TRUE(c.access(0x1000, false));
    EXPECT_TRUE(c.access(0x101f, false)); // Same 32B line.
    EXPECT_FALSE(c.access(0x1020, false)); // Next line.
    EXPECT_EQ(c.stats().accesses, 4u);
    EXPECT_EQ(c.stats().misses, 2u);
}

TEST(Cache, AssociativityHoldsConflictingLines)
{
    Cache c(8 * 1024, 4, 32);
    // 4-way, 64 sets: addresses 2 KiB apart map to the same set.
    for (int w = 0; w < 4; ++w)
        EXPECT_FALSE(c.access(0x1000 + w * 2048, false));
    for (int w = 0; w < 4; ++w)
        EXPECT_TRUE(c.access(0x1000 + w * 2048, false));
}

TEST(Cache, LruEvictsOldest)
{
    Cache c(8 * 1024, 4, 32);
    for (int w = 0; w < 4; ++w)
        c.access(0x1000 + w * 2048, false);
    // Touch way 0 again, then insert a 5th conflicting line.
    c.access(0x1000, false);
    c.access(0x1000 + 4 * 2048, false);
    // Way 0 (recently used) must survive; way 1 was evicted.
    EXPECT_TRUE(c.access(0x1000, false));
    EXPECT_FALSE(c.access(0x1000 + 1 * 2048, false));
}

TEST(Cache, DirtyEvictionCountsWriteback)
{
    Cache c(8 * 1024, 4, 32);
    c.access(0x1000, true); // Dirty.
    for (int w = 1; w <= 4; ++w)
        c.access(0x1000 + w * 2048, false); // Evicts the dirty line.
    EXPECT_EQ(c.stats().writebacks, 1u);
}

TEST(Hierarchy, LatenciesEscalate)
{
    MemoryHierarchy m;
    // Cold: L1 miss -> L2 miss -> DRAM.
    EXPECT_EQ(m.data(0x2000, false),
              MemoryHierarchy::kL2HitCycles +
                  MemoryHierarchy::kDramCycles);
    // Warm: L1 hit.
    EXPECT_EQ(m.data(0x2000, false), 0u);
    EXPECT_EQ(m.dram().reads, 1u);
}

TEST(Hierarchy, L2CatchesL1Evictions)
{
    MemoryHierarchy m;
    m.data(0x3000, false);
    // Blow the line out of 8 KiB L1 (touch 8 conflicting lines)...
    for (int w = 1; w <= 8; ++w)
        m.data(0x3000 + w * 2048, false);
    // ...but 256 KiB L2 still holds it: only the L2 latency is paid.
    EXPECT_EQ(m.data(0x3000, false), MemoryHierarchy::kL2HitCycles);
}

TEST(Hierarchy, SeparateInstructionAndDataPaths)
{
    MemoryHierarchy m;
    m.fetch(0x5000);
    EXPECT_EQ(m.l1i().misses, 1u);
    EXPECT_EQ(m.l1d().accesses, 0u);
    // Data access to the same address misses L1D (separate cache)
    // but hits in the shared L2.
    EXPECT_EQ(m.data(0x5000, false), MemoryHierarchy::kL2HitCycles);
}

} // namespace
} // namespace bitspec
