/**
 * @file
 * Differential test between the two uarch core engines (the Core
 * analogue of interp/engine_diff_test.cc).
 *
 * For every registered workload under three system configurations
 * (baseline compiler, full bitwidth speculation, squeeze without
 * speculation — the three misspeculation regimes the core model
 * sees), the fast pre-decoded engine must be observationally
 * identical to the legacy cycle-accurate Core: same return value and
 * output checksum, same ActivityCounters field by field, same cache
 * hierarchy statistics down to per-level access/miss/writeback counts
 * and DRAM traffic, and the same attribution and per-block profiler
 * activity vectors. The fast engine runs twice — once with cold block
 * memos and once warm — so memo replay itself is covered, not just
 * the slow path.
 */

#include <gtest/gtest.h>

#include "core/system.h"
#include "obs/attribution.h"
#include "obs/profiler.h"
#include "workloads/workload.h"

namespace bitspec
{
namespace
{

struct CoreRun
{
    uint32_t ret = 0;
    uint64_t checksum = 0;
    ActivityCounters c;
    CacheStats l1i, l1d, l2;
    DramStats dram;
    std::vector<RegionActivity> attr;
    uint64_t unattributedMisspecs = 0;
    std::vector<BlockActivity> blocks;
    uint64_t blocksUnattributed = 0;
};

CoreRun
runOnce(System &sys, const AttributionMap &amap, const BlockMap &bmap)
{
    AttributionSink attr(amap);
    BlockProfilerSink blocks(bmap);
    RunObservers obs;
    obs.attribution = &attr;
    obs.blocks = &blocks;
    RunResult r = sys.run({}, {}, obs);

    CoreRun out;
    out.ret = r.returnValue;
    out.checksum = r.outputChecksum;
    out.c = r.counters;
    out.l1i = r.l1i;
    out.l1d = r.l1d;
    out.l2 = r.l2;
    out.dram = r.dram;
    out.attr = attr.activity();
    out.unattributedMisspecs = attr.unattributedMisspecs();
    out.blocks = blocks.activity();
    out.blocksUnattributed = blocks.unattributed();
    return out;
}

void
expectSameCaches(const CacheStats &a, const CacheStats &b,
                 const std::string &what)
{
    EXPECT_EQ(a.accesses, b.accesses) << what;
    EXPECT_EQ(a.misses, b.misses) << what;
    EXPECT_EQ(a.writebacks, b.writebacks) << what;
}

void
expectSameRun(const CoreRun &legacy, const CoreRun &fast,
              const std::string &what)
{
    EXPECT_EQ(legacy.ret, fast.ret) << what;
    EXPECT_EQ(legacy.checksum, fast.checksum) << what;

    const ActivityCounters &a = legacy.c;
    const ActivityCounters &b = fast.c;
    EXPECT_EQ(a.instructions, b.instructions) << what;
    EXPECT_EQ(a.cycles, b.cycles) << what;
    EXPECT_EQ(a.alu32, b.alu32) << what;
    EXPECT_EQ(a.alu8, b.alu8) << what;
    EXPECT_EQ(a.mulDiv, b.mulDiv) << what;
    EXPECT_EQ(a.rfRead32, b.rfRead32) << what;
    EXPECT_EQ(a.rfWrite32, b.rfWrite32) << what;
    EXPECT_EQ(a.rfRead8, b.rfRead8) << what;
    EXPECT_EQ(a.rfWrite8, b.rfWrite8) << what;
    EXPECT_EQ(a.loads, b.loads) << what;
    EXPECT_EQ(a.stores, b.stores) << what;
    EXPECT_EQ(a.branches, b.branches) << what;
    EXPECT_EQ(a.takenBranches, b.takenBranches) << what;
    EXPECT_EQ(a.calls, b.calls) << what;
    EXPECT_EQ(a.misspeculations, b.misspeculations) << what;
    EXPECT_EQ(a.dynSpillLoads, b.dynSpillLoads) << what;
    EXPECT_EQ(a.dynSpillStores, b.dynSpillStores) << what;
    EXPECT_EQ(a.dynCopies, b.dynCopies) << what;
    EXPECT_EQ(a.outputs, b.outputs) << what;

    expectSameCaches(legacy.l1i, fast.l1i, what + "/l1i");
    expectSameCaches(legacy.l1d, fast.l1d, what + "/l1d");
    expectSameCaches(legacy.l2, fast.l2, what + "/l2");
    EXPECT_EQ(legacy.dram.reads, fast.dram.reads) << what;
    EXPECT_EQ(legacy.dram.writes, fast.dram.writes) << what;

    ASSERT_EQ(legacy.attr.size(), fast.attr.size()) << what;
    for (size_t i = 0; i < legacy.attr.size(); ++i) {
        const RegionActivity &ra = legacy.attr[i];
        const RegionActivity &rb = fast.attr[i];
        const std::string where =
            what + "/region" + std::to_string(i);
        EXPECT_EQ(ra.entries, rb.entries) << where;
        EXPECT_EQ(ra.misspecs, rb.misspecs) << where;
        EXPECT_EQ(ra.specInsts, rb.specInsts) << where;
        EXPECT_EQ(ra.specCycles, rb.specCycles) << where;
        EXPECT_EQ(ra.skeletonInsts, rb.skeletonInsts) << where;
        EXPECT_EQ(ra.handlerInsts, rb.handlerInsts) << where;
        EXPECT_EQ(ra.handlerCycles, rb.handlerCycles) << where;
    }
    EXPECT_EQ(legacy.unattributedMisspecs, fast.unattributedMisspecs)
        << what;

    ASSERT_EQ(legacy.blocks.size(), fast.blocks.size()) << what;
    for (size_t i = 0; i < legacy.blocks.size(); ++i) {
        const BlockActivity &ba = legacy.blocks[i];
        const BlockActivity &bb = fast.blocks[i];
        const std::string where =
            what + "/block" + std::to_string(i);
        EXPECT_EQ(ba.entries, bb.entries) << where;
        EXPECT_EQ(ba.insts, bb.insts) << where;
        EXPECT_EQ(ba.cycles, bb.cycles) << where;
        EXPECT_EQ(ba.misspecs, bb.misspecs) << where;
    }
    EXPECT_EQ(legacy.blocksUnattributed, fast.blocksUnattributed)
        << what;
}

class CoreEngineDiff : public ::testing::TestWithParam<std::string>
{};

void
diffUnderConfig(const Workload &w, const SystemConfig &cfg,
                const std::string &what)
{
    System sys(w.source, cfg,
               [&](Module &m) { w.setInput(m, 0); });
    AttributionMap amap(sys.program());
    BlockMap bmap(sys.program());

    sys.setCoreEngine(CoreEngine::Legacy);
    CoreRun legacy = runOnce(sys, amap, bmap);

    sys.setCoreEngine(CoreEngine::Fast);
    CoreRun fast_cold = runOnce(sys, amap, bmap);
    expectSameRun(legacy, fast_cold, what + "/cold");

    // Second fast run reuses the block memos built by the first.
    CoreRun fast_warm = runOnce(sys, amap, bmap);
    expectSameRun(legacy, fast_warm, what + "/warm");

    ASSERT_NE(sys.fastCore(), nullptr);
    EXPECT_GT(sys.fastCore()->memoCount(), 0u) << what;
    // Every workload loops, so the fast engine must actually have
    // replayed blocks — this diff is meaningless if the guards always
    // fell back to the slow path.
    EXPECT_GT(sys.fastCore()->replayedRuns(), 0u) << what;
}

TEST_P(CoreEngineDiff, BaselineConfigMatches)
{
    const Workload &w = getWorkload(GetParam());
    diffUnderConfig(w, SystemConfig::baseline(), w.name + "/baseline");
}

TEST_P(CoreEngineDiff, BitspecConfigMatches)
{
    const Workload &w = getWorkload(GetParam());
    diffUnderConfig(w, SystemConfig::bitspec(), w.name + "/bitspec");
}

TEST_P(CoreEngineDiff, NoSpeculationConfigMatches)
{
    const Workload &w = getWorkload(GetParam());
    diffUnderConfig(w, SystemConfig::noSpeculation(),
                    w.name + "/nospec");
}

/**
 * The same legacy-vs-fast equivalence under the non-Hardware
 * misspeculation policies (forced and seeded-random redirects). The
 * fast engine bypasses memo replay under these policies, so its
 * slow path must keep the RNG draw order aligned with legacy Core —
 * any drift shows up as a counter or attribution diff here. Theorems
 * 3.1/3.2 additionally make every policy's committed outputs equal
 * to Hardware's, which pins the checksum across all six runs.
 */
class CorePolicyDiff : public ::testing::TestWithParam<std::string>
{};

TEST_P(CorePolicyDiff, PoliciesMatchAcrossEngines)
{
    const Workload &w = getWorkload(GetParam());
    SystemConfig cfg = SystemConfig::bitspec();
    System sys(w.source, cfg, [&](Module &m) { w.setInput(m, 0); });
    AttributionMap amap(sys.program());
    BlockMap bmap(sys.program());

    sys.setCoreEngine(CoreEngine::Legacy);
    CoreRun hw = runOnce(sys, amap, bmap);

    for (MisspecPolicy p :
         {MisspecPolicy::ForceFirst, MisspecPolicy::Random}) {
        const std::string what =
            w.name + "/" + misspecPolicyName(p);
        sys.setMisspecPolicy(p, 0xfeed);

        sys.setCoreEngine(CoreEngine::Legacy);
        CoreRun legacy = runOnce(sys, amap, bmap);

        sys.setCoreEngine(CoreEngine::Fast);
        CoreRun fast = runOnce(sys, amap, bmap);
        expectSameRun(legacy, fast, what);

        // Semantics preservation: committed outputs are
        // policy-independent even though the paths differ.
        EXPECT_EQ(legacy.ret, hw.ret) << what;
        EXPECT_EQ(legacy.checksum, hw.checksum) << what;
        if (p == MisspecPolicy::ForceFirst) {
            EXPECT_GE(legacy.c.misspeculations,
                      hw.c.misspeculations)
                << what;
        }
        sys.setMisspecPolicy(MisspecPolicy::Hardware);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Mibench, CorePolicyDiff,
    ::testing::Values("CRC32", "blowfish", "qsort", "rijndael", "sha"),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

INSTANTIATE_TEST_SUITE_P(
    Mibench, CoreEngineDiff,
    ::testing::Values("CRC32", "FFT", "basicmath", "bitcount",
                      "blowfish", "dijkstra", "patricia", "qsort",
                      "rijndael", "sha", "stringsearch", "susan-edges",
                      "susan-corners", "susan-smoothing"),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string name = info.param;
        for (char &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

} // namespace
} // namespace bitspec
