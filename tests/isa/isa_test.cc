#include <gtest/gtest.h>

#include "isa/encoding.h"
#include "isa/isa.h"

namespace bitspec
{
namespace
{

MachInst
inst(MOp op, MOpnd d = {}, MOpnd a = {}, MOpnd b = {})
{
    MachInst i;
    i.op = op;
    i.dst = d;
    i.a = a;
    i.b = b;
    return i;
}

void
expectRoundTrip(const MachInst &in, uint32_t self = 100)
{
    uint32_t word = encodeInst(in, self);
    MachInst out = decodeInst(word, self);
    EXPECT_EQ(out.op, in.op) << in.str();
    EXPECT_EQ(out.cond, in.cond) << in.str();
    EXPECT_EQ(out.speculative, in.speculative) << in.str();
    EXPECT_EQ(static_cast<int>(out.dst.kind),
              static_cast<int>(in.dst.kind)) << in.str();
    if (in.dst.isReg() || in.dst.isSlice()) {
        EXPECT_EQ(out.dst.reg, in.dst.reg) << in.str();
        EXPECT_EQ(out.dst.slice, in.dst.slice) << in.str();
    }
    if (in.a.isImm())
        EXPECT_EQ(out.a.imm, in.a.imm) << in.str();
    if (in.b.isImm())
        EXPECT_EQ(out.b.imm, in.b.imm) << in.str();
    if (in.b.isReg() || in.b.isSlice()) {
        EXPECT_EQ(out.b.reg, in.b.reg) << in.str();
        EXPECT_EQ(out.b.slice, in.b.slice) << in.str();
    }
    if (in.op == MOp::B || in.op == MOp::BL)
        EXPECT_EQ(out.target, in.target) << in.str();
    if (in.op == MOp::LDRS8)
        EXPECT_EQ(out.origBits, in.origBits) << in.str();
}

TEST(Encoding, AluRegisterForms)
{
    expectRoundTrip(inst(MOp::ADD, MOpnd::makeReg(4), MOpnd::makeReg(5),
                         MOpnd::makeReg(6)));
    expectRoundTrip(inst(MOp::EOR, MOpnd::makeReg(11),
                         MOpnd::makeReg(4), MOpnd::makeReg(11)));
    expectRoundTrip(inst(MOp::MUL, MOpnd::makeReg(7), MOpnd::makeReg(8),
                         MOpnd::makeReg(9)));
}

TEST(Encoding, AluImmediateForms)
{
    expectRoundTrip(inst(MOp::ADD, MOpnd::makeReg(4), MOpnd::makeReg(5),
                         MOpnd::makeImm(511)));
    expectRoundTrip(inst(MOp::LSR, MOpnd::makeReg(4), MOpnd::makeReg(5),
                         MOpnd::makeImm(31)));
    expectRoundTrip(inst(MOp::CMP, MOpnd{}, MOpnd::makeReg(5),
                         MOpnd::makeImm(0)));
}

TEST(Encoding, SliceOperands)
{
    MachInst add8 = inst(MOp::ADD8, MOpnd::makeSlice(4, 2),
                         MOpnd::makeSlice(4, 3), MOpnd::makeImm(15));
    add8.speculative = true;
    expectRoundTrip(add8);

    expectRoundTrip(inst(MOp::EOR8, MOpnd::makeSlice(10, 0),
                         MOpnd::makeSlice(9, 1),
                         MOpnd::makeSlice(8, 2)));
    expectRoundTrip(inst(MOp::UXT8, MOpnd::makeReg(5),
                         MOpnd::makeSlice(6, 3)));
}

TEST(Encoding, SpeculativeMemory)
{
    MachInst ld = inst(MOp::LDRS8, MOpnd::makeSlice(4, 1),
                       MOpnd::makeReg(6), MOpnd::makeImm(0));
    ld.speculative = true;
    ld.origBits = 32;
    expectRoundTrip(ld);
    ld.origBits = 16;
    expectRoundTrip(ld);

    MachInst tr = inst(MOp::TRN8, MOpnd::makeSlice(4, 0),
                       MOpnd::makeReg(7));
    tr.speculative = true;
    expectRoundTrip(tr);
    tr.speculative = false;
    expectRoundTrip(tr);
}

TEST(Encoding, Branches)
{
    MachInst b = inst(MOp::B);
    b.target = 500;
    expectRoundTrip(b, 100);
    b.cond = Cond::LS;
    b.target = 3;
    expectRoundTrip(b, 100); // Backwards.
    MachInst bl = inst(MOp::BL);
    bl.target = 0;
    expectRoundTrip(bl, 2000);
}

TEST(Encoding, MovFamily)
{
    expectRoundTrip(inst(MOp::MOV, MOpnd::makeReg(4),
                         MOpnd::makeReg(5)));
    MachInst cmov = inst(MOp::MOV, MOpnd::makeReg(4),
                         MOpnd::makeReg(5));
    cmov.cond = Cond::NE;
    expectRoundTrip(cmov);
    expectRoundTrip(inst(MOp::MOV8, MOpnd::makeSlice(4, 1),
                         MOpnd::makeImm(255)));
    expectRoundTrip(inst(MOp::MOVW, MOpnd::makeReg(12),
                         MOpnd::makeImm(0xbeef)));
    expectRoundTrip(inst(MOp::MOVT, MOpnd::makeReg(12),
                         MOpnd::makeImm(0xdead)));
    MachInst scc = inst(MOp::SETCC, MOpnd::makeReg(6));
    scc.cond = Cond::GT;
    expectRoundTrip(scc);
}

TEST(Encoding, System)
{
    MachInst sd = inst(MOp::SETDELTA, MOpnd{}, MOpnd::makeImm(4096));
    expectRoundTrip(sd);
    MachInst mode = inst(MOp::MODE, MOpnd{}, MOpnd::makeImm(1));
    expectRoundTrip(mode);
    expectRoundTrip(inst(MOp::BXLR));
    expectRoundTrip(inst(MOp::HALT));
    expectRoundTrip(inst(MOp::OUT, MOpnd{}, MOpnd::makeReg(3)));
}

TEST(Encoding, WholeProgramRoundTrip)
{
    std::vector<MachInst> prog;
    prog.push_back(inst(MOp::MOVW, MOpnd::makeReg(13),
                        MOpnd::makeImm(0xfff0)));
    prog.push_back(inst(MOp::ADD, MOpnd::makeReg(4),
                        MOpnd::makeReg(5), MOpnd::makeImm(1)));
    MachInst b = inst(MOp::B);
    b.target = 0;
    prog.push_back(b);
    auto words = encodeProgram(prog);
    auto back = decodeProgram(words);
    ASSERT_EQ(back.size(), prog.size());
    EXPECT_EQ(back[2].target, 0);
}

TEST(Isa, MisspeculationTable)
{
    // Table 1: add/sub misspeculate (speculative forms), logic and
    // compares never do, spec loads/truncs by flag.
    MachInst add8 = inst(MOp::ADD8);
    add8.speculative = true;
    EXPECT_TRUE(mayMisspeculate(add8));
    add8.speculative = false;
    EXPECT_FALSE(mayMisspeculate(add8));
    EXPECT_FALSE(mayMisspeculate(inst(MOp::AND8)));
    EXPECT_FALSE(mayMisspeculate(inst(MOp::CMP8)));
    EXPECT_TRUE(mayMisspeculate(inst(MOp::LDRS8)));
    MachInst tr = inst(MOp::TRN8);
    tr.speculative = true;
    EXPECT_TRUE(mayMisspeculate(tr));
}

TEST(Isa, Disassembly)
{
    MachInst i = inst(MOp::ADD8, MOpnd::makeSlice(4, 2),
                      MOpnd::makeSlice(5, 0), MOpnd::makeImm(3));
    i.speculative = true;
    EXPECT_EQ(i.str(), "add8.s r4b2, r5b0, #3");
    MachInst b = inst(MOp::B);
    b.cond = Cond::LO;
    b.target = 12;
    EXPECT_EQ(b.str(), "blo ->12");
}

} // namespace
} // namespace bitspec
