/**
 * @file
 * Differential test between the two interpreter execution engines.
 *
 * For every registered workload, the pre-decoded engine must be
 * observationally identical to the legacy tree-walking engine: same
 * return value, same output checksum, same InterpStats (steps,
 * assignments, misspeculations, calls, outputs) and same
 * per-instruction bitwidth-profile statistics — on the plain module
 * and on the squeezed module under all three MisspecPolicy values
 * (Random with a shared seed, which also checks that both engines
 * consume the RNG in the same sequence).
 */

#include <gtest/gtest.h>

#include "frontend/irgen.h"
#include "interp/interpreter.h"
#include "profile/bitwidth_profile.h"
#include "transform/squeezer.h"
#include "workloads/workload.h"

namespace bitspec
{
namespace
{

struct EngineRun
{
    uint64_t ret;
    uint64_t checksum;
    InterpStats stats;
};

EngineRun
runEngine(Module &m, ExecEngine engine, MisspecPolicy policy,
          uint64_t seed)
{
    Interpreter in(m);
    in.setEngine(engine);
    in.setMisspecPolicy(policy);
    in.setRandomSeed(seed);
    EngineRun r;
    r.ret = in.run("main");
    r.checksum = in.outputChecksum();
    r.stats = in.stats();
    return r;
}

void
expectSameRun(const EngineRun &legacy, const EngineRun &decoded,
              const std::string &what)
{
    EXPECT_EQ(legacy.ret, decoded.ret) << what;
    EXPECT_EQ(legacy.checksum, decoded.checksum) << what;
    EXPECT_EQ(legacy.stats.steps, decoded.stats.steps) << what;
    EXPECT_EQ(legacy.stats.intAssignments, decoded.stats.intAssignments)
        << what;
    EXPECT_EQ(legacy.stats.misspeculations,
              decoded.stats.misspeculations)
        << what;
    EXPECT_EQ(legacy.stats.calls, decoded.stats.calls) << what;
    EXPECT_EQ(legacy.stats.outputs, decoded.stats.outputs) << what;
    EXPECT_TRUE(legacy.stats == decoded.stats) << what;
}

/** Per-instruction profile equality across every instruction of @p m. */
void
expectSameProfile(Module &m, const BitwidthProfile &legacy,
                  const BitwidthProfile &decoded, const std::string &what)
{
    for (const auto &f : m.functions()) {
        for (const auto &bb : f->blocks()) {
            for (const auto &inst : bb->insts()) {
                const Instruction *i = inst.get();
                const VarBitStats *a = legacy.statsFor(i);
                const VarBitStats *b = decoded.statsFor(i);
                ASSERT_EQ(a == nullptr, b == nullptr)
                    << what << ": profiled-instruction sets differ in "
                    << f->name();
                if (!a)
                    continue;
                EXPECT_EQ(a->count, b->count) << what;
                EXPECT_EQ(a->minBits, b->minBits) << what;
                EXPECT_EQ(a->maxBits, b->maxBits) << what;
                EXPECT_EQ(a->sumBits, b->sumBits) << what;
            }
        }
    }
    EXPECT_EQ(legacy.totalAssignments(), decoded.totalAssignments())
        << what;
}

class EngineDiff : public ::testing::TestWithParam<std::string>
{};

TEST_P(EngineDiff, PlainModuleMatches)
{
    const Workload &w = getWorkload(GetParam());
    auto mod = compileSource(w.source);
    w.setInput(*mod, 0);

    EngineRun legacy = runEngine(*mod, ExecEngine::Legacy,
                                 MisspecPolicy::Hardware, 42);
    EngineRun decoded = runEngine(*mod, ExecEngine::Decoded,
                                  MisspecPolicy::Hardware, 42);
    expectSameRun(legacy, decoded, w.name + "/plain");
}

TEST_P(EngineDiff, ProfileCountsMatch)
{
    const Workload &w = getWorkload(GetParam());
    auto mod = compileSource(w.source);
    w.setInput(*mod, 0);

    BitwidthProfile p_legacy, p_decoded;
    {
        Interpreter in(*mod);
        in.setEngine(ExecEngine::Legacy);
        p_legacy.profileRun(in, "main");
    }
    {
        Interpreter in(*mod);
        in.setEngine(ExecEngine::Decoded);
        p_decoded.profileRun(in, "main");
    }
    expectSameProfile(*mod, p_legacy, p_decoded, w.name + "/profile");
}

TEST_P(EngineDiff, SqueezedModuleMatchesUnderAllPolicies)
{
    const Workload &w = getWorkload(GetParam());
    auto mod = compileSource(w.source);
    w.setInput(*mod, 0);

    BitwidthProfile profile;
    profile.profileRun(*mod, "main");
    SqueezeOptions opts;
    squeezeModule(*mod, profile, opts);

    for (MisspecPolicy policy :
         {MisspecPolicy::Hardware, MisspecPolicy::ForceFirst,
          MisspecPolicy::Random}) {
        EngineRun legacy =
            runEngine(*mod, ExecEngine::Legacy, policy, 42);
        EngineRun decoded =
            runEngine(*mod, ExecEngine::Decoded, policy, 42);
        expectSameRun(legacy, decoded,
                      w.name + "/squeezed/policy" +
                          std::to_string(static_cast<int>(policy)));
    }
}

INSTANTIATE_TEST_SUITE_P(
    Mibench, EngineDiff,
    ::testing::Values("CRC32", "FFT", "basicmath", "bitcount",
                      "blowfish", "dijkstra", "patricia", "qsort",
                      "rijndael", "sha", "stringsearch", "susan-edges",
                      "susan-corners", "susan-smoothing"),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string name = info.param;
        for (char &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

} // namespace
} // namespace bitspec
