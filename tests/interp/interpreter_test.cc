#include <gtest/gtest.h>

#include "../testutil.h"
#include "interp/interpreter.h"

namespace bitspec
{
namespace
{

TEST(Interp, SumToLoop)
{
    Module m;
    test::buildSumTo(m);
    Interpreter in(m);
    EXPECT_EQ(in.run("sumto", {10}), 45u);
    EXPECT_GT(in.stats().steps, 10u);
}

TEST(Interp, PaperCounterRuns256Iterations)
{
    Module m;
    test::buildPaperCounter(m);
    Interpreter in(m);
    EXPECT_EQ(in.run("counter", {}), 256u);
}

TEST(Interp, DiamondBothPaths)
{
    Module m;
    test::buildDiamond(m);
    Interpreter in(m);
    EXPECT_EQ(in.run("diamond", {5}), 105u);  // left: +100
    EXPECT_EQ(in.run("diamond", {20}), 60u);  // right: *3
}

TEST(Interp, WidthWrapping)
{
    // i8 add wraps at 256.
    Module m;
    Function *f = m.addFunction("wrap", Type::i8(), {Type::i8()});
    IRBuilder b(&m);
    BasicBlock *bb = f->addBlock("entry");
    b.setInsertPoint(bb);
    Instruction *v = b.add(f->arg(0), m.getConst(Type::i8(), 200));
    b.ret(v);
    Interpreter in(m);
    EXPECT_EQ(in.run("wrap", {100}), (100u + 200u) & 0xff);
}

TEST(Interp, SignedOps)
{
    Module m;
    Function *f = m.addFunction("sdiv7", Type::i32(), {Type::i32()});
    IRBuilder b(&m);
    BasicBlock *bb = f->addBlock("entry");
    b.setInsertPoint(bb);
    Instruction *v = b.sdiv(f->arg(0), b.constI32(7));
    b.ret(v);
    Interpreter in(m);
    // -21 / 7 == -3 (trunc toward zero).
    uint64_t neg21 = truncTo(static_cast<uint64_t>(-21), 32);
    EXPECT_EQ(in.run("sdiv7", {neg21}),
              truncTo(static_cast<uint64_t>(-3), 32));
}

TEST(Interp, ShiftEdgeCases)
{
    Module m;
    Function *f = m.addFunction("sh", Type::i32(),
                                {Type::i32(), Type::i32()});
    IRBuilder b(&m);
    BasicBlock *bb = f->addBlock("entry");
    b.setInsertPoint(bb);
    Instruction *v = b.ashr(f->arg(0), f->arg(1));
    b.ret(v);
    Interpreter in(m);
    uint64_t neg = truncTo(static_cast<uint64_t>(-16), 32);
    EXPECT_EQ(in.run("sh", {neg, 2}),
              truncTo(static_cast<uint64_t>(-4), 32));
    // Shift by >= width: arithmetic fills with sign.
    EXPECT_EQ(in.run("sh", {neg, 40}), 0xffffffffu);
    EXPECT_EQ(in.run("sh", {16, 40}), 0u);
}

TEST(Interp, MemoryAndGlobals)
{
    Module m;
    Global *g = m.addGlobal("buf", 32, 8);
    g->setElem(3, 777);
    Function *f = m.addFunction("rd", Type::i32(), {Type::i32()});
    IRBuilder b(&m);
    BasicBlock *bb = f->addBlock("entry");
    b.setInsertPoint(bb);
    Instruction *off = b.mul(f->arg(0), b.constI32(4));
    Instruction *addr = b.add(b.globalAddr(g), off);
    Instruction *v = b.load(Type::i32(), addr);
    b.ret(v);
    Interpreter in(m);
    EXPECT_EQ(in.run("rd", {3}), 777u);
    EXPECT_EQ(in.run("rd", {0}), 0u);
}

TEST(Interp, StoreThenLoadRoundTrip)
{
    Module m;
    Global *g = m.addGlobal("buf", 16, 4);
    Function *f = m.addFunction("wr", Type::i16(), {Type::i16()});
    IRBuilder b(&m);
    BasicBlock *bb = f->addBlock("entry");
    b.setInsertPoint(bb);
    b.store(b.globalAddr(g), f->arg(0));
    Instruction *v = b.load(Type::i16(), b.globalAddr(g));
    b.ret(v);
    Interpreter in(m);
    EXPECT_EQ(in.run("wr", {0xbeef}), 0xbeefu);
}

TEST(Interp, MemBoundsGuardDoesNotWrapAt32Bits)
{
    // Regression: `addr + bytes` was computed in 32 bits, so an access
    // near UINT32_MAX wrapped past the guard and read out of bounds.
    Module m;
    Interpreter in(m);
    EXPECT_THROW(in.loadMem(0xfffffffcu, 64), FatalError);
    EXPECT_THROW(in.storeMem(0xfffffffcu, 0, 64), FatalError);
    EXPECT_THROW(in.loadMem(0xffffffffu, 8), FatalError);
    EXPECT_THROW(in.storeMem(0xffffffffu, 0, 8), FatalError);
}

TEST(Interp, PhiParallelCopySwapCycle)
{
    // Two phis that exchange values each iteration form a parallel-copy
    // cycle; the decoded engine must break it through its scratch slot.
    Module m;
    Function *f = m.addFunction("swap", Type::i32(), {Type::i32()});
    IRBuilder b(&m);
    BasicBlock *entry = f->addBlock("entry");
    BasicBlock *loop = f->addBlock("loop");
    BasicBlock *exit = f->addBlock("exit");
    b.setInsertPoint(entry);
    b.br(loop);
    b.setInsertPoint(loop);
    Instruction *x = b.phi(Type::i32(), "x");
    Instruction *y = b.phi(Type::i32(), "y");
    Instruction *i = b.phi(Type::i32(), "i");
    Instruction *inext = b.add(i, b.constI32(1));
    Instruction *done = b.icmp(CmpPred::UGE, inext, f->arg(0));
    b.condBr(done, exit, loop);
    IRBuilder::addIncoming(x, b.constI32(1), entry);
    IRBuilder::addIncoming(x, y, loop);
    IRBuilder::addIncoming(y, b.constI32(2), entry);
    IRBuilder::addIncoming(y, x, loop);
    IRBuilder::addIncoming(i, b.constI32(0), entry);
    IRBuilder::addIncoming(i, inext, loop);
    b.setInsertPoint(exit);
    b.ret(b.add(b.mul(x, b.constI32(100)), y));

    for (ExecEngine engine : {ExecEngine::Decoded, ExecEngine::Legacy}) {
        Interpreter in(m);
        in.setEngine(engine);
        // n=3: two swaps, back to (1, 2); n=4: three swaps, (2, 1).
        EXPECT_EQ(in.run("swap", {3}), 102u);
        EXPECT_EQ(in.run("swap", {4}), 201u);
    }
}

TEST(Interp, InvalidateRefreshesDecodedCache)
{
    Module m;
    Function *f = m.addFunction("f", Type::i32(), {Type::i32()});
    IRBuilder b(&m);
    BasicBlock *bb = f->addBlock("entry");
    b.setInsertPoint(bb);
    Instruction *v = b.add(f->arg(0), b.constI32(1));
    b.ret(v);
    Interpreter in(m);
    EXPECT_EQ(in.run("f", {41}), 42u);
    // Mutating the module leaves the decoded cache stale until
    // invalidate() — the documented contract with transform/.
    v->setOperand(1, m.getConst(Type::i32(), 2));
    EXPECT_EQ(in.run("f", {41}), 42u);
    in.invalidate();
    EXPECT_EQ(in.run("f", {41}), 43u);
}

TEST(Interp, CallsAndRecursion)
{
    // fib(n) via naive recursion.
    Module m;
    Function *fib = m.addFunction("fib", Type::i32(), {Type::i32()});
    IRBuilder b(&m);
    BasicBlock *entry = fib->addBlock("entry");
    BasicBlock *base = fib->addBlock("base");
    BasicBlock *rec = fib->addBlock("rec");
    b.setInsertPoint(entry);
    Instruction *small = b.icmp(CmpPred::ULT, fib->arg(0), b.constI32(2));
    b.condBr(small, base, rec);
    b.setInsertPoint(base);
    b.ret(fib->arg(0));
    b.setInsertPoint(rec);
    Instruction *n1 = b.sub(fib->arg(0), b.constI32(1));
    Instruction *n2 = b.sub(fib->arg(0), b.constI32(2));
    Instruction *f1 = b.call(fib, {n1});
    Instruction *f2 = b.call(fib, {n2});
    b.ret(b.add(f1, f2));

    Interpreter in(m);
    EXPECT_EQ(in.run("fib", {10}), 55u);
    EXPECT_GT(in.stats().calls, 100u);
}

TEST(Interp, OutputStreamAndChecksum)
{
    Module m;
    Function *f = m.addFunction("emit", Type::voidTy(), {});
    IRBuilder b(&m);
    BasicBlock *bb = f->addBlock("entry");
    b.setInsertPoint(bb);
    b.output(b.constI32(1));
    b.output(b.constI32(2));
    b.ret();
    Interpreter in(m);
    in.run("emit");
    ASSERT_EQ(in.output().size(), 2u);
    EXPECT_EQ(in.output()[0], 1u);
    uint64_t sum1 = in.outputChecksum();
    in.reset();
    EXPECT_TRUE(in.output().empty());
    in.run("emit");
    EXPECT_EQ(in.outputChecksum(), sum1);
}

TEST(Interp, FuelLimitStopsRunaway)
{
    Module m;
    Function *f = m.addFunction("spin", Type::voidTy(), {});
    IRBuilder b(&m);
    BasicBlock *bb = f->addBlock("entry");
    b.setInsertPoint(bb);
    b.br(bb);
    Interpreter in(m);
    in.setFuel(1000);
    EXPECT_THROW(in.run("spin"), FatalError);
}

TEST(Interp, OnAssignHookSeesValues)
{
    Module m;
    test::buildSumTo(m);
    Interpreter in(m);
    uint64_t max_seen = 0;
    uint64_t count = 0;
    in.onAssign = [&](const Instruction *, uint64_t v) {
        max_seen = std::max(max_seen, v);
        ++count;
    };
    in.run("sumto", {10});
    EXPECT_EQ(max_seen, 45u);
    EXPECT_GT(count, 20u);
}

// --- Speculative execution semantics (Table 1) ---

/** Build the squeezed version of the paper's counter by hand (the §3
 *  walkthrough): spec i8 loop + handler + original-width loop. */
Function *
buildSqueezedCounter(Module &m)
{
    Function *f = m.addFunction("squeezed", Type::i32(), {});
    IRBuilder b(&m);
    BasicBlock *entry = f->addBlock("ENTRY");
    BasicBlock *body = f->addBlock("BODY");
    BasicBlock *exit = f->addBlock("EXIT");
    BasicBlock *handler = f->addBlock("HANDLER");
    BasicBlock *body2 = f->addBlock("BODY2");
    BasicBlock *exit2 = f->addBlock("EXIT2");

    b.setInsertPoint(entry);
    b.br(body);

    // Speculative 8-bit loop.
    b.setInsertPoint(body);
    Instruction *x0 = b.phi(Type::i8(), "x0");
    Instruction *x1 = b.add(x0, m.getConst(Type::i8(), 1));
    x1->setName("x1");
    x1->setSpeculative(true);
    x1->setSpecOrigBits(32);
    // Compare vs 255 folds away at 8 bits (paper §3.2.4); the loop
    // repeats until the add misspeculates.
    b.br(body);
    IRBuilder::addIncoming(x0, m.getConst(Type::i8(), 0), entry);
    IRBuilder::addIncoming(x0, x1, body);

    b.setInsertPoint(exit);
    Instruction *xw = b.zext(x1, Type::i32());
    b.ret(xw);

    // Handler: extend live-ins (x0) and jump to original-width loop.
    b.setInsertPoint(handler);
    Instruction *x2 = b.zext(x0, Type::i32());
    x2->setName("x2");
    b.br(body2);

    b.setInsertPoint(body2);
    Instruction *x3 = b.phi(Type::i32(), "x3");
    Instruction *x4 = b.add(x3, b.constI32(1));
    x4->setName("x4");
    Instruction *chk = b.icmp(CmpPred::ULE, x4, b.constI32(255));
    b.condBr(chk, body2, exit2);
    IRBuilder::addIncoming(x3, x2, handler);
    IRBuilder::addIncoming(x3, x4, body2);

    b.setInsertPoint(exit2);
    b.ret(x4);

    SpecRegion *sr = f->addSpecRegion();
    sr->blocks.push_back(body);
    sr->handler = handler;
    return f;
}

TEST(InterpSpec, MisspeculationRedirectsToHandler)
{
    Module m;
    buildSqueezedCounter(m);
    Interpreter in(m);
    // Exactly the paper's table: x0 reaches 255, the add misspeculates,
    // the handler extends, BODY2 computes 256 and exits.
    EXPECT_EQ(in.run("squeezed", {}), 256u);
    EXPECT_EQ(in.stats().misspeculations, 1u);
}

TEST(InterpSpec, SpecLoadChecksOriginalWidth)
{
    Module m;
    Global *g = m.addGlobal("buf", 32, 2);
    g->setElem(0, 200);   // Fits in 8 bits.
    g->setElem(1, 1000);  // Does not fit.

    Function *f = m.addFunction("ld", Type::i32(), {Type::i32()});
    IRBuilder b(&m);
    BasicBlock *entry = f->addBlock("entry");
    BasicBlock *spec = f->addBlock("spec");
    BasicBlock *done = f->addBlock("done");
    BasicBlock *handler = f->addBlock("handler");
    BasicBlock *orig = f->addBlock("orig");

    b.setInsertPoint(entry);
    Instruction *off = b.mul(f->arg(0), b.constI32(4));
    Instruction *addr = b.add(b.globalAddr(g), off);
    b.br(spec);

    b.setInsertPoint(spec);
    Instruction *v8 = b.load(Type::i8(), addr);
    v8->setSpeculative(true);
    v8->setSpecOrigBits(32);
    b.br(done);

    b.setInsertPoint(done);
    Instruction *vw = b.zext(v8, Type::i32());
    b.ret(vw);

    b.setInsertPoint(handler);
    b.br(orig);
    b.setInsertPoint(orig);
    Instruction *v32 = b.load(Type::i32(), addr);
    Instruction *plus = b.add(v32, b.constI32(0));
    b.ret(plus);

    SpecRegion *sr = f->addSpecRegion();
    sr->blocks.push_back(spec);
    sr->handler = handler;

    Interpreter in(m);
    EXPECT_EQ(in.run("ld", {0}), 200u);
    EXPECT_EQ(in.stats().misspeculations, 0u);
    EXPECT_EQ(in.run("ld", {1}), 1000u);
    EXPECT_EQ(in.stats().misspeculations, 1u);
}

TEST(InterpSpec, SpecSubUnderflowMisspeculates)
{
    Module m;
    Function *f = m.addFunction("ss", Type::i32(),
                                {Type::i8(), Type::i8()});
    IRBuilder b(&m);
    BasicBlock *entry = f->addBlock("entry");
    BasicBlock *spec = f->addBlock("spec");
    BasicBlock *done = f->addBlock("done");
    BasicBlock *handler = f->addBlock("handler");
    BasicBlock *orig = f->addBlock("orig");

    b.setInsertPoint(entry);
    b.br(spec);

    b.setInsertPoint(spec);
    Instruction *d = b.sub(f->arg(0), f->arg(1));
    d->setSpeculative(true);
    d->setSpecOrigBits(32);
    b.br(done);

    b.setInsertPoint(done);
    b.ret(b.zext(d, Type::i32()));

    b.setInsertPoint(handler);
    b.br(orig);
    b.setInsertPoint(orig);
    Instruction *a32 = b.zext(f->arg(0), Type::i32());
    Instruction *b32 = b.zext(f->arg(1), Type::i32());
    b.ret(b.sub(a32, b32));

    SpecRegion *sr = f->addSpecRegion();
    sr->blocks.push_back(spec);
    sr->handler = handler;

    Interpreter in(m);
    EXPECT_EQ(in.run("ss", {9, 5}), 4u);
    EXPECT_EQ(in.stats().misspeculations, 0u);
    // 5 - 9 underflows the slice: handler computes the 32-bit result.
    EXPECT_EQ(in.run("ss", {5, 9}), truncTo(static_cast<uint64_t>(-4), 32));
    EXPECT_EQ(in.stats().misspeculations, 1u);
}

TEST(InterpSpec, ForceFirstPolicyStillProducesCorrectResult)
{
    // Theorem 3.2 exercised: forcing a misspeculation even when the
    // value fits must not change the program result.
    Module m;
    buildSqueezedCounter(m);
    Interpreter in(m);
    in.setMisspecPolicy(MisspecPolicy::ForceFirst);
    EXPECT_EQ(in.run("squeezed", {}), 256u);
    EXPECT_GE(in.stats().misspeculations, 1u);
}

} // namespace
} // namespace bitspec
