#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "backend/mir.h"
#include "backend/mir_verifier.h"

namespace bitspec
{
namespace
{

MachInst
inst(MOp op, MOpnd dst = {}, MOpnd a = {}, MOpnd b = {})
{
    MachInst mi;
    mi.op = op;
    mi.dst = dst;
    mi.a = a;
    mi.b = b;
    return mi;
}

MachInst
branch(int target, InstTag tag = InstTag::Normal)
{
    MachInst mi;
    mi.op = MOp::B;
    mi.target = target;
    mi.tag = tag;
    return mi;
}

/** Smallest well-formed function: entry computes and returns. */
MachFunction
makePlain()
{
    MachFunction mf;
    mf.name = "plain";
    mf.blocks.push_back({"entry", 0, {}, -1, false});
    mf.code.push_back(
        inst(MOp::MOVW, MOpnd::makeReg(0), MOpnd::makeImm(7)));
    mf.code.push_back(inst(MOp::BXLR));
    mf.blockIndex[0] = 0;
    mf.entryIndex = 0;
    return mf;
}

/**
 * Well-formed speculative layout (Eq. 1/2, delta = 8):
 *
 *   code[0] ADD8!spec  \ speculative area = region block 0
 *   code[1] B -> 5     /
 *   code[2] B -> 4 (skeleton slot 0)
 *   code[3] B -> 4 (skeleton slot 1)
 *   code[4] B -> 5          handler (block 1)
 *   code[5] BXLR            exit (block 2)
 */
MachFunction
makeSpec()
{
    MachFunction mf;
    mf.name = "spec";
    mf.blocks.push_back({"entry", 0, {}, /*handlerBlock=*/1, false});
    mf.blocks.push_back({"hand", 1, {}, -1, /*isHandler=*/true});
    mf.blocks.push_back({"exit", 2, {}, -1, false});

    MachInst add8 = inst(MOp::ADD8, MOpnd::makeSlice(4, 0),
                         MOpnd::makeSlice(4, 0), MOpnd::makeImm(1));
    add8.speculative = true;
    mf.code.push_back(add8);
    mf.code.push_back(branch(5));
    mf.code.push_back(branch(4, InstTag::Skeleton));
    mf.code.push_back(branch(4, InstTag::Skeleton));
    mf.code.push_back(branch(5));
    mf.code.push_back(inst(MOp::BXLR));

    mf.blockIndex = {{0, 0}, {1, 4}, {2, 5}};
    mf.entryIndex = 0;
    mf.delta = 8;
    return mf;
}

bool
mentions(const std::vector<std::string> &problems,
         const std::string &needle)
{
    for (const std::string &p : problems)
        if (p.find(needle) != std::string::npos)
            return true;
    return false;
}

TEST(MirVerifier, AcceptsPlainFunction)
{
    EXPECT_TRUE(verifyMachFunction(makePlain()).empty());
}

TEST(MirVerifier, AcceptsSpeculativeGeometry)
{
    MachFunction mf = makeSpec();
    EXPECT_TRUE(verifyMachFunction(mf).empty())
        << verifyMachFunction(mf)[0];
}

TEST(MirVerifier, RejectsHandlerReachableByFallthrough)
{
    // A block of straight-line code placed directly before the
    // handler: control would fall off its end into recovery code that
    // only misspeculation may enter.
    MachFunction mf;
    mf.name = "fallthrough";
    mf.blocks.push_back({"entry", 0, {}, 1, false});
    mf.blocks.push_back({"hand", 1, {}, -1, true});
    mf.blocks.push_back({"mid", 2, {}, -1, false});
    mf.blocks.push_back({"exit", 3, {}, -1, false});

    MachInst add8 = inst(MOp::ADD8, MOpnd::makeSlice(4, 0),
                         MOpnd::makeSlice(4, 0), MOpnd::makeImm(1));
    add8.speculative = true;
    mf.code.push_back(add8);                            // 0: entry
    mf.code.push_back(branch(4));                       // 1
    mf.code.push_back(branch(5, InstTag::Skeleton));    // 2
    mf.code.push_back(branch(5, InstTag::Skeleton));    // 3
    mf.code.push_back(inst(MOp::MOVW, MOpnd::makeReg(0),
                           MOpnd::makeImm(0)));         // 4: mid
    mf.code.push_back(branch(6));                       // 5: handler
    mf.code.push_back(inst(MOp::BXLR));                 // 6: exit

    mf.blockIndex = {{0, 0}, {1, 5}, {2, 4}, {3, 6}};
    mf.entryIndex = 0;
    mf.delta = 8;

    auto problems = verifyMachFunction(mf);
    ASSERT_FALSE(problems.empty());
    EXPECT_TRUE(mentions(problems, "fall-through")) << problems[0];
}

TEST(MirVerifier, RejectsNonSkeletonBranchToHandler)
{
    MachFunction mf = makeSpec();
    mf.code[1].target = 4; // Entry branches straight to the handler.
    auto problems = verifyMachFunction(mf);
    ASSERT_FALSE(problems.empty());
    EXPECT_TRUE(mentions(problems, "targets a handler"))
        << problems[0];
}

TEST(MirVerifier, RejectsSurvivingVReg)
{
    MachFunction mf = makePlain();
    mf.code[0].dst = MOpnd::makeVReg(3, false);
    EXPECT_TRUE(mentions(verifyMachFunction(mf), "virtual register"));
}

TEST(MirVerifier, RejectsOperandClassViolation)
{
    MachFunction mf = makePlain();
    mf.code[0].a = MOpnd::makeSlice(4, 0); // MOVW needs an immediate.
    EXPECT_TRUE(
        mentions(verifyMachFunction(mf), "a operand has kind slice"));
}

TEST(MirVerifier, RejectsSpecFlagOnNonSpecOp)
{
    MachFunction mf = makePlain();
    mf.code[0].speculative = true;
    EXPECT_TRUE(mentions(verifyMachFunction(mf),
                         "speculative flag on an op without"));
}

TEST(MirVerifier, RejectsBranchOutsideBlockStarts)
{
    MachFunction mf = makePlain();
    mf.code.insert(mf.code.begin() + 1, branch(1));
    // Target 1 is mid-block (only index 0 is a block start).
    auto problems = verifyMachFunction(mf);
    EXPECT_TRUE(mentions(problems, "not a block start"));
}

TEST(MirVerifier, RejectsBrokenSkeletonSlotMapping)
{
    MachFunction mf = makeSpec();
    mf.code[3].target = 5; // Slot 1 must redirect to the handler.
    EXPECT_TRUE(
        mentions(verifyMachFunction(mf), "slot mapping"));
}

TEST(MirVerifier, RejectsMisspeculatorOutsideSpecArea)
{
    MachFunction mf = makeSpec();
    MachInst ld = inst(MOp::LDRS8, MOpnd::makeSlice(4, 0),
                       MOpnd::makeReg(0), MOpnd::makeImm(0));
    ld.origBits = 32;
    mf.code.insert(mf.code.begin() + 5, ld); // Into the exit block.
    mf.blockIndex[2] = 5;
    // Exit grew: branches to it keep pointing at its (unmoved) start.
    EXPECT_TRUE(mentions(verifyMachFunction(mf),
                         "outside the speculative area"));
}

TEST(MirVerifier, RejectsUnpatchedSetDelta)
{
    MachFunction mf = makeSpec();
    MachInst sd = inst(MOp::SETDELTA, {}, MOpnd::makeImm(4));
    mf.code.insert(mf.code.begin() + 5, sd); // imm 4 != delta 8.
    mf.blockIndex[2] = 5;
    EXPECT_TRUE(mentions(verifyMachFunction(mf), "SETDELTA"));
}

} // namespace
} // namespace bitspec
