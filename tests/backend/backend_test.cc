#include <gtest/gtest.h>

#include "backend/compiler.h"
#include "core/system.h"
#include "frontend/irgen.h"
#include "interp/interpreter.h"
#include "profile/bitwidth_profile.h"
#include "transform/squeezer.h"
#include "uarch/core.h"

namespace bitspec
{
namespace
{

/** Compile @p src for @p isa (optionally squeezing) and check machine
 *  execution against the interpreter for every input. */
void
checkMachine(const std::string &src, TargetISA isa, bool squeeze,
             const std::vector<std::vector<uint32_t>> &inputs,
             Heuristic h = Heuristic::Max,
             const std::vector<uint64_t> &train = {})
{
    auto ref_mod = compileSource(src);
    auto mod = compileSource(src);
    if (squeeze) {
        BitwidthProfile profile;
        profile.profileRun(*mod, "main", train);
        SqueezeOptions opts;
        opts.heuristic = h;
        squeezeModule(*mod, profile, opts);
    }
    CompiledProgram cp = compileModule(*mod, isa);

    for (const auto &args : inputs) {
        Interpreter ref(*ref_mod);
        std::vector<uint64_t> iargs(args.begin(), args.end());
        uint64_t want = truncTo(ref.run("main", iargs), 32);

        Core core(cp.program, *mod);
        uint32_t got = core.run(args);
        EXPECT_EQ(got, want) << "isa=" << (int)isa
                             << " squeeze=" << squeeze;
        EXPECT_EQ(core.outputChecksum(), ref.outputChecksum());
    }
}

TEST(Backend, StraightLineArithmetic)
{
    const char *src =
        "u32 main(u32 a, u32 b) { return (a + b) * 3 - (a ^ b); }";
    checkMachine(src, TargetISA::Baseline, false, {{5, 9}, {0, 0},
                                                   {1000000, 77}});
    checkMachine(src, TargetISA::BitSpec, false, {{5, 9}});
}

TEST(Backend, DivisionAndRemainder)
{
    const char *src = R"(
        u32 main(u32 a, u32 b) {
            i32 sa = (i32)a - 1000;
            return a / b + a % b + (u32)(sa / 7) + (u32)(sa % 7);
        }
    )";
    checkMachine(src, TargetISA::Baseline, false,
                 {{100, 7}, {5, 100}, {12345, 13}});
}

TEST(Backend, ControlFlowAndLoops)
{
    const char *src = R"(
        u32 main(u32 n) {
            u32 s = 0;
            for (u32 i = 0; i < n; i++) {
                if (i % 3 == 0) s += i * 2;
                else if (i % 5 == 0) s ^= i;
                else s += 1;
            }
            return s;
        }
    )";
    checkMachine(src, TargetISA::Baseline, false, {{0}, {1}, {100}});
    checkMachine(src, TargetISA::BitSpec, false, {{100}});
}

TEST(Backend, MemoryAndGlobals)
{
    const char *src = R"(
        u32 tab[64];
        u8 bytes[64];
        u16 halves[64];
        u32 main(u32 n) {
            for (u32 i = 0; i < n; i++) {
                tab[i] = i * i;
                bytes[i] = (u8)(i * 7);
                halves[i] = (u16)(i * 300);
            }
            u32 s = 0;
            for (u32 i = 0; i < n; i++)
                s += tab[i] + bytes[i] + halves[i];
            return s;
        }
    )";
    checkMachine(src, TargetISA::Baseline, false, {{0}, {5}, {64}});
    checkMachine(src, TargetISA::BitSpec, false, {{64}});
}

TEST(Backend, CallsAndRecursion)
{
    const char *src = R"(
        u32 fib(u32 n) {
            if (n < 2) return n;
            return fib(n - 1) + fib(n - 2);
        }
        u32 main(u32 n) { return fib(n); }
    )";
    checkMachine(src, TargetISA::Baseline, false, {{0}, {1}, {12}});
    checkMachine(src, TargetISA::BitSpec, false, {{12}});
}

TEST(Backend, SignedOperations)
{
    const char *src = R"(
        i32 main(i32 a, i32 b) {
            i32 q = a / b;
            i32 r = a % b;
            i32 sh = a >> 3;
            u32 cmp = a < b;
            return q * 1000 + r * 10 + sh + (i32)cmp;
        }
    )";
    checkMachine(src, TargetISA::Baseline, false,
                 {{static_cast<uint32_t>(-100), 7},
                  {100, 7},
                  {static_cast<uint32_t>(-100),
                   static_cast<uint32_t>(-7)}});
}

TEST(Backend, TernaryAndShortCircuit)
{
    const char *src = R"(
        u32 main(u32 a, u32 b) {
            u32 m = a > b ? a : b;
            u32 both = (a > 2 && b > 2) ? 10 : 20;
            u32 any = (a > 100 || b > 100) ? 5 : 6;
            return m + both + any;
        }
    )";
    checkMachine(src, TargetISA::Baseline, false,
                 {{1, 2}, {5, 3}, {200, 1}});
}

TEST(Backend, OutputsMatchInterpreter)
{
    const char *src = R"(
        u8 data[16] = "bitspec";
        void main() {
            for (u32 i = 0; i < 7; i++) out(data[i] * 3);
        }
    )";
    checkMachine(src, TargetISA::Baseline, false, {{}});
    checkMachine(src, TargetISA::BitSpec, false, {{}});
}

TEST(Backend, RegisterPressureSpills)
{
    // Many simultaneously-live values force spilling.
    const char *src = R"(
        u32 main(u32 n) {
            u32 a = n + 1; u32 b = n + 2; u32 c = n + 3; u32 d = n + 4;
            u32 e = n + 5; u32 f = n + 6; u32 g = n + 7; u32 h = n + 8;
            u32 i = n + 9; u32 j = n + 10; u32 k = n + 11;
            u32 l = n + 12; u32 m = n * 2; u32 o = n * 3; u32 p = n * 5;
            u32 s = 0;
            for (u32 t = 0; t < n; t++)
                s += a + b + c + d + e + f + g + h + i + j + k + l
                     + m + o + p;
            return s;
        }
    )";
    auto mod = compileSource(src);
    CompiledProgram cp = compileModule(*mod, TargetISA::Baseline);
    EXPECT_GT(cp.stats.spilledVRegs, 0u);
    checkMachine(src, TargetISA::Baseline, false, {{0}, {3}, {50}});
}

// --- Speculative machine execution ---

TEST(Machine, SqueezedPaperCounterMisspeculates)
{
    const char *src =
        "u32 main() { u32 x = 0; do { x += 1; } while (x <= 255); "
        "return x; }";
    auto mod = compileSource(src);
    BitwidthProfile profile;
    profile.profileRun(*mod);
    SqueezeOptions opts;
    opts.heuristic = Heuristic::Avg;
    squeezeModule(*mod, profile, opts);
    CompiledProgram cp = compileModule(*mod, TargetISA::BitSpec);
    EXPECT_GT(cp.stats.skeletonInsts, 0u);

    Core core(cp.program, *mod);
    EXPECT_EQ(core.run(), 256u);
    EXPECT_EQ(core.counters().misspeculations, 1u);
    EXPECT_GT(core.counters().alu8, 0u);
    EXPECT_GT(core.counters().rfWrite8, 0u);
}

TEST(Machine, SqueezedKernelsMatchUnderAllHeuristics)
{
    const char *src = R"(
        u8 buf[64] = "differential testing of machine speculation!";
        u32 main(u32 n) {
            u32 h = 0;
            for (u32 i = 0; i < n; i++) {
                u32 c = buf[i % 44];
                h = (h * 31 + c) % 65521;
            }
            return h;
        }
    )";
    for (Heuristic h : {Heuristic::Max, Heuristic::Avg, Heuristic::Min}) {
        checkMachine(src, TargetISA::BitSpec, true,
                     {{0}, {10}, {44}, {500}}, h, {44});
    }
}

TEST(Machine, MisspeculationOnLargerRunInput)
{
    // Train small, run big: handlers must recover on real hardware
    // semantics (PC += delta into skeletons).
    const char *src = R"(
        u32 main(u32 n) {
            u32 sum = 0;
            u32 i = 0;
            while (i < n) { sum += i; i += 1; }
            return sum;
        }
    )";
    auto mod = compileSource(src);
    BitwidthProfile profile;
    profile.profileRun(*mod, "main", {10});
    SqueezeOptions opts;
    opts.heuristic = Heuristic::Avg;
    squeezeModule(*mod, profile, opts);
    CompiledProgram cp = compileModule(*mod, TargetISA::BitSpec);

    Core core(cp.program, *mod);
    EXPECT_EQ(core.run({1000}), (999u * 1000u) / 2);
    EXPECT_GE(core.counters().misspeculations, 1u);
}

TEST(Machine, SlicePackingReducesSpills)
{
    // Many live byte values: with slices they pack 4-per-register.
    // XOR chains keep every intermediate within a byte, so the
    // squeezer keeps all 14 values live as slices.
    const char *src = R"(
        u8 data[16] = "0123456789abcde";
        u32 main(u32 n) {
            u32 a0 = data[0]; u32 a1 = data[1]; u32 a2 = data[2];
            u32 a3 = data[3]; u32 a4 = data[4]; u32 a5 = data[5];
            u32 a6 = data[6]; u32 a7 = data[7]; u32 a8 = data[8];
            u32 a9 = data[9]; u32 aa = data[10]; u32 ab = data[11];
            u32 ac = data[12]; u32 ad = data[13];
            u32 s = 0;
            for (u32 i = 0; i < n; i++) {
                s = s ^ a0 ^ a1 ^ a2 ^ a3 ^ a4 ^ a5 ^ a6;
                s = s ^ a7 ^ a8 ^ a9 ^ aa ^ ab ^ ac ^ ad;
                s = s ^ (i & 0xff);
            }
            return s;
        }
    )";
    auto baseline_mod = compileSource(src);
    CompiledProgram base = compileModule(*baseline_mod,
                                         TargetISA::Baseline);

    auto bs_mod = compileSource(src);
    BitwidthProfile profile;
    profile.profileRun(*bs_mod, "main", {4});
    SqueezeOptions opts;
    squeezeModule(*bs_mod, profile, opts);
    CompiledProgram bs = compileModule(*bs_mod, TargetISA::BitSpec);

    Core cb(base.program, *baseline_mod);
    Core cs(bs.program, *bs_mod);
    EXPECT_EQ(cb.run({10}), cs.run({10}));
    EXPECT_GT(cs.counters().rfRead8, 0u);

    // The paper's Fig. 10 metric is dynamic spill traffic: slices pack
    // 4-per-register on the hot path, so BitSpec reloads far less.
    // (Static spill counts include the cold CFG_orig clone.)
    uint64_t base_spills = cb.counters().dynSpillLoads +
                           cb.counters().dynSpillStores;
    uint64_t bs_spills = cs.counters().dynSpillLoads +
                         cs.counters().dynSpillStores;
    EXPECT_LT(bs_spills, base_spills);
}

TEST(System, FacadeEndToEnd)
{
    const char *src = R"(
        u8 text[32] = "energy with slices";
        u32 main() {
            u32 h = 0;
            for (u32 i = 0; i < 18; i++) h += text[i];
            out(h);
            return h;
        }
    )";
    System base(src, SystemConfig::baseline());
    System spec(src, SystemConfig::bitspec());
    RunResult rb = base.run();
    RunResult rs = spec.run();
    EXPECT_EQ(rb.returnValue, rs.returnValue);
    EXPECT_EQ(rb.outputChecksum, rs.outputChecksum);
    EXPECT_GT(rb.totalEnergy, 0.0);
    EXPECT_GT(rs.totalEnergy, 0.0);
    EXPECT_GT(rs.counters.rfRead8 + rs.counters.rfWrite8, 0u);
    // Baseline never touches slices.
    EXPECT_EQ(rb.counters.rfRead8 + rb.counters.rfWrite8, 0u);
}

TEST(System, DtsScalesEnergyDown)
{
    const char *src = R"(
        u32 main() {
            u32 s = 1;
            for (u32 i = 0; i < 500; i++) s = s * 3 + (s >> 2);
            return s;
        }
    )";
    System plain(src, SystemConfig::baseline());
    System dts(src, SystemConfig::dtsOnly());
    RunResult rp = plain.run();
    RunResult rd = dts.run();
    EXPECT_EQ(rp.returnValue, rd.returnValue);
    EXPECT_LT(rd.totalEnergy, rp.totalEnergy);
    EXPECT_LT(rd.meanVoltage, 1.2);
    // The paper's DTS saves roughly 20-35% on these mixes.
    double saving = 1.0 - rd.totalEnergy / rp.totalEnergy;
    EXPECT_GT(saving, 0.10);
    EXPECT_LT(saving, 0.50);
}

} // namespace
} // namespace bitspec
