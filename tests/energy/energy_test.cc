#include <gtest/gtest.h>

#include "core/system.h"
#include "energy/dts.h"
#include "energy/model.h"

namespace bitspec
{
namespace
{

TEST(Energy, SliceAccessesCostOneQuarter)
{
    EnergyParams p;
    EXPECT_DOUBLE_EQ(p.rfRead8 * 4, p.rfRead32);
    EXPECT_DOUBLE_EQ(p.rfWrite8 * 4, p.rfWrite32);
    EXPECT_DOUBLE_EQ(p.alu8 * 4, p.alu32);
}

TEST(Energy, BreakdownSumsToTotal)
{
    EnergyBreakdown e;
    e.alu = 1;
    e.regfile = 2;
    e.dcache = 3;
    e.icache = 4;
    e.pipeline = 5;
    EXPECT_DOUBLE_EQ(e.total(), 15.0);
}

TEST(Energy, EndToEndComponentsArePositive)
{
    const char *src = R"(
        u32 buf[64];
        u32 main() {
            u32 s = 0;
            for (u32 i = 0; i < 64; i++) { buf[i] = i; s += buf[i]; }
            return s;
        }
    )";
    System sys(src, SystemConfig::baseline());
    RunResult r = sys.run();
    EXPECT_GT(r.energy.alu, 0.0);
    EXPECT_GT(r.energy.regfile, 0.0);
    EXPECT_GT(r.energy.dcache, 0.0);
    EXPECT_GT(r.energy.icache, 0.0);
    EXPECT_GT(r.energy.pipeline, 0.0);
    EXPECT_NEAR(r.totalEnergy, r.energy.total(), 1e-6);
    EXPECT_GT(r.epi, 0.0);
}

TEST(Dts, VoltageSolvesAlphaPowerLaw)
{
    DtsParams p;
    // No slack: nominal voltage.
    EXPECT_NEAR(voltageForSlack(1.0, p), p.vNominal, 1e-6);
    // More slack -> lower voltage, monotonically.
    double prev = p.vNominal;
    for (double frac : {0.95, 0.85, 0.75, 0.65, 0.55}) {
        double v = voltageForSlack(frac, p);
        EXPECT_LT(v, prev) << frac;
        EXPECT_GE(v, p.vMin);
        prev = v;
    }
    // Extreme slack clamps at the safe rail.
    EXPECT_NEAR(voltageForSlack(0.05, p), p.vMin, 1e-9);
}

TEST(Dts, ScalingReducesEnergyAndReportsVoltage)
{
    EnergyBreakdown e;
    e.alu = 100;
    e.regfile = 100;
    e.dcache = 100;
    e.icache = 100;
    e.pipeline = 100;
    ActivityCounters c;
    c.alu32 = 1000;
    c.loads = 200;
    c.stores = 100;
    c.branches = 150;

    DtsResult r = applyDts(e, c);
    EXPECT_LT(r.scaledEnergy, e.total());
    EXPECT_LT(r.meanVoltage, 1.2);
    EXPECT_GT(r.meanVoltage, 0.6);
    EXPECT_GT(r.recoveryOverhead, 0.0);
}

TEST(Dts, WidthAwareEstimatorExploitsSlices)
{
    // With many 8-bit ALU events, the width-aware estimator (the
    // paper's future work) must beat the width-agnostic one.
    EnergyBreakdown e;
    e.alu = 500;
    e.regfile = 100;
    e.dcache = 50;
    e.icache = 100;
    e.pipeline = 150;
    ActivityCounters c;
    c.alu8 = 5000;
    c.alu32 = 500;
    c.loads = 100;
    c.branches = 100;

    DtsParams agnostic;
    DtsParams aware;
    aware.widthAware = true;
    EXPECT_LT(applyDts(e, c, aware).scaledEnergy,
              applyDts(e, c, agnostic).scaledEnergy);
}

TEST(Dts, EmptyRunIsNeutral)
{
    EnergyBreakdown e;
    ActivityCounters c;
    DtsResult r = applyDts(e, c);
    EXPECT_DOUBLE_EQ(r.scaledEnergy, 0.0);
    EXPECT_DOUBLE_EQ(r.meanVoltage, 1.2);
}

} // namespace
} // namespace bitspec
