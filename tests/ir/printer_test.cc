#include <gtest/gtest.h>

#include "../testutil.h"
#include "ir/printer.h"

namespace bitspec
{
namespace
{

TEST(Printer, FunctionContainsStructure)
{
    Module m;
    Function *f = test::buildSumTo(m);
    f->renumber();
    std::string text = printFunction(*f);
    EXPECT_NE(text.find("define i32 @sumto"), std::string::npos);
    EXPECT_NE(text.find("phi"), std::string::npos);
    EXPECT_NE(text.find("icmp ult"), std::string::npos);
    EXPECT_NE(text.find("condbr"), std::string::npos);
    EXPECT_NE(text.find("ret"), std::string::npos);
}

TEST(Printer, SpeculativeAnnotation)
{
    Module m;
    Function *f = test::buildPaperCounter(m);
    f->renumber();
    for (auto &bb : f->blocks())
        for (auto &inst : bb->insts())
            if (inst->op() == Opcode::Add)
                inst->setSpeculative(true);
    std::string text = printFunction(*f);
    EXPECT_NE(text.find("!spec"), std::string::npos);
}

TEST(Printer, ModuleListsGlobals)
{
    Module m;
    m.addGlobal("table", 32, 256);
    test::buildSumTo(m);
    std::string text = printModule(m);
    EXPECT_NE(text.find("@table = global [256 x i32]"), std::string::npos);
}

TEST(Printer, ValueRefs)
{
    Module m;
    Constant *c = m.getConst(Type::i8(), 42);
    EXPECT_EQ(printValueRef(c), "i8 42");
    Global *g = m.addGlobal("buf", 8, 4);
    EXPECT_EQ(printValueRef(m.getGlobalRef(g)), "@buf");
}

} // namespace
} // namespace bitspec
