#include <gtest/gtest.h>

#include "../testutil.h"
#include "ir/builder.h"
#include "ir/module.h"

namespace bitspec
{
namespace
{

TEST(Type, Basics)
{
    EXPECT_TRUE(Type::voidTy().isVoid());
    EXPECT_TRUE(Type::i1().isBool());
    EXPECT_EQ(Type::i32().str(), "i32");
    EXPECT_EQ(Type::voidTy().str(), "void");
    EXPECT_EQ(Type::i8(), Type(8));
    EXPECT_NE(Type::i8(), Type::i16());
}

TEST(Module, ConstantsDeduplicated)
{
    Module m;
    Constant *a = m.getConst(Type::i32(), 7);
    Constant *b = m.getConst(Type::i32(), 7);
    Constant *c = m.getConst(Type::i8(), 7);
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
    EXPECT_EQ(a->value(), 7u);
}

TEST(Module, ConstantsTruncatedToType)
{
    Module m;
    Constant *c = m.getConst(Type::i8(), 0x1ff);
    EXPECT_EQ(c->value(), 0xffu);
    // And it dedupes with the already-truncated one.
    EXPECT_EQ(c, m.getConst(Type::i8(), 0xff));
}

TEST(Module, GlobalLayout)
{
    Module m;
    Global *a = m.addGlobal("a", 8, 10);    // 10 bytes -> padded to 16.
    Global *b = m.addGlobal("b", 32, 4);    // 16 bytes.
    m.layoutGlobals();
    EXPECT_EQ(a->address(), Module::kGlobalBase);
    EXPECT_EQ(b->address(), Module::kGlobalBase + 16);
}

TEST(Global, ElementAccessLittleEndian)
{
    Module m;
    Global *g = m.addGlobal("g", 32, 4);
    g->setElem(1, 0xdeadbeef);
    EXPECT_EQ(g->elem(1), 0xdeadbeefu);
    EXPECT_EQ(g->data()[4], 0xef);
    EXPECT_EQ(g->data()[7], 0xde);
    g->clear();
    EXPECT_EQ(g->elem(1), 0u);
}

TEST(Function, BuilderProducesWellFormedLoop)
{
    Module m;
    Function *f = test::buildSumTo(m);
    EXPECT_EQ(f->blocks().size(), 3u);
    EXPECT_EQ(f->entry()->name(), "entry");
    BasicBlock *body = f->blocks()[1].get();
    EXPECT_EQ(body->phis().size(), 2u);
    auto succs = body->successors();
    ASSERT_EQ(succs.size(), 2u);
    EXPECT_EQ(succs[0], body);
}

TEST(Function, ReplaceAllUses)
{
    Module m;
    Function *f = test::buildSumTo(m);
    BasicBlock *body = f->blocks()[1].get();
    Instruction *i_phi = body->phis()[0];
    Constant *c = m.getConst(Type::i32(), 99);
    f->replaceAllUses(i_phi, c);
    EXPECT_FALSE(f->hasUses(i_phi));
    EXPECT_TRUE(f->hasUses(c));
}

TEST(Function, RenumberAssignsDenseIds)
{
    Module m;
    Function *f = test::buildSumTo(m);
    unsigned n = f->renumber();
    // 1 arg + 7 instructions.
    EXPECT_EQ(n, 1u + f->instructionCount());
    EXPECT_EQ(f->valueId(f->arg(0)), 0u);
}

TEST(Function, PredecessorMap)
{
    Module m;
    Function *f = test::buildDiamond(m);
    auto preds = f->predecessors();
    BasicBlock *merge = f->blocks()[3].get();
    ASSERT_EQ(preds[merge].size(), 2u);
}

TEST(SpecRegion, RegionQueries)
{
    Module m;
    Function *f = test::buildSumTo(m);
    BasicBlock *body = f->blocks()[1].get();
    BasicBlock *handler = f->addBlock("handler");
    SpecRegion *sr = f->addSpecRegion();
    sr->blocks.push_back(body);
    sr->handler = handler;

    EXPECT_EQ(f->regionOf(body), sr);
    EXPECT_EQ(f->regionOf(f->entry()), nullptr);
    EXPECT_EQ(f->regionOfHandler(handler), sr);
    EXPECT_EQ(f->regionOfHandler(body), nullptr);
}

TEST(Instruction, PhiIncomingRemoval)
{
    Module m;
    Function *f = test::buildDiamond(m);
    BasicBlock *merge = f->blocks()[3].get();
    Instruction *phi = merge->phis()[0];
    ASSERT_EQ(phi->numOperands(), 2u);
    phi->removePhiIncoming(0);
    EXPECT_EQ(phi->numOperands(), 1u);
    EXPECT_EQ(phi->blockOperands().size(), 1u);
}

TEST(Instruction, SpeculativeFormTable)
{
    // Table 1 of the paper: add/sub/logic/cmp/load/store/trunc/ext have
    // speculative forms; mul/div/shift do not.
    EXPECT_TRUE(hasSpeculativeForm(Opcode::Add));
    EXPECT_TRUE(hasSpeculativeForm(Opcode::Sub));
    EXPECT_TRUE(hasSpeculativeForm(Opcode::And));
    EXPECT_TRUE(hasSpeculativeForm(Opcode::ICmp));
    EXPECT_TRUE(hasSpeculativeForm(Opcode::Load));
    EXPECT_TRUE(hasSpeculativeForm(Opcode::Trunc));
    EXPECT_FALSE(hasSpeculativeForm(Opcode::Mul));
    EXPECT_FALSE(hasSpeculativeForm(Opcode::UDiv));
    EXPECT_FALSE(hasSpeculativeForm(Opcode::Shl));
    EXPECT_FALSE(hasSpeculativeForm(Opcode::LShr));
}

} // namespace
} // namespace bitspec
