#include <gtest/gtest.h>

#include "../testutil.h"
#include "ir/clone.h"

namespace bitspec
{
namespace
{

TEST(Clone, ClonesInstructionFlags)
{
    Module m;
    Function *f = test::buildSumTo(m);
    BasicBlock *body = f->blocks()[1].get();
    Instruction *add = nullptr;
    for (auto &inst : body->insts())
        if (inst->op() == Opcode::Add)
            add = inst.get();
    ASSERT_NE(add, nullptr);
    add->setSpeculative(true);
    add->setSpecOrigBits(32);
    add->setGuard(true);

    auto copy = cloneInstruction(add);
    EXPECT_EQ(copy->op(), Opcode::Add);
    EXPECT_TRUE(copy->isSpeculative());
    EXPECT_TRUE(copy->isGuard());
    EXPECT_EQ(copy->specOrigBits(), 32u);
    EXPECT_EQ(copy->numOperands(), 2u);
}

TEST(Clone, BlockCloneRemapsInternalReferences)
{
    Module m;
    Function *f = test::buildSumTo(m);
    std::vector<BasicBlock *> src;
    for (auto &bb : f->blocks())
        src.push_back(bb.get());
    size_t before = f->blocks().size();

    CloneMap map = cloneBlocks(src, f, ".c");
    EXPECT_EQ(f->blocks().size(), before * 2);

    // The cloned body's branch targets the cloned body, not the original.
    BasicBlock *body = src[1];
    BasicBlock *cbody = map.get(body);
    ASSERT_NE(cbody, body);
    auto succs = cbody->successors();
    ASSERT_EQ(succs.size(), 2u);
    EXPECT_EQ(succs[0], cbody);

    // Cloned phi's incoming blocks are also remapped.
    Instruction *cphi = cbody->phis()[0];
    for (BasicBlock *in : cphi->blockOperands())
        EXPECT_TRUE(in == map.get(src[0]) || in == cbody);
}

TEST(Clone, ExternalReferencesLeftAlone)
{
    Module m;
    Function *f = test::buildSumTo(m);
    BasicBlock *body = f->blocks()[1].get();
    // Clone only the exit block; its operand (s2, defined in body)
    // should still point at the original s2.
    BasicBlock *exit = f->blocks()[2].get();
    CloneMap map = cloneBlocks({exit}, f, ".c");
    BasicBlock *cexit = map.get(exit);
    Instruction *ret = cexit->terminator();
    Instruction *orig_ret = exit->terminator();
    EXPECT_EQ(ret->operand(0), orig_ret->operand(0));
    (void)body;
}

} // namespace
} // namespace bitspec
