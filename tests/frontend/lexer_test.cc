#include <gtest/gtest.h>

#include "frontend/lexer.h"
#include "support/error.h"

namespace bitspec
{
namespace
{

TEST(Lexer, KeywordsAndIdents)
{
    auto toks = lex("u32 foo int size_t while");
    ASSERT_EQ(toks.size(), 6u); // + End.
    EXPECT_EQ(toks[0].kind, Tok::KwU32);
    EXPECT_EQ(toks[1].kind, Tok::Ident);
    EXPECT_EQ(toks[1].text, "foo");
    EXPECT_EQ(toks[2].kind, Tok::KwI32);   // int alias
    EXPECT_EQ(toks[3].kind, Tok::KwU32);   // size_t alias (32-bit target)
    EXPECT_EQ(toks[4].kind, Tok::KwWhile);
    EXPECT_EQ(toks[5].kind, Tok::End);
}

TEST(Lexer, IntLiterals)
{
    auto toks = lex("0 42 0xff 0xDEADbeef 123u 45UL");
    EXPECT_EQ(toks[0].intValue, 0u);
    EXPECT_EQ(toks[1].intValue, 42u);
    EXPECT_EQ(toks[2].intValue, 0xffu);
    EXPECT_EQ(toks[3].intValue, 0xdeadbeefu);
    EXPECT_EQ(toks[4].intValue, 123u);
    EXPECT_EQ(toks[5].intValue, 45u);
}

TEST(Lexer, CharAndStringLiterals)
{
    auto toks = lex("'a' '\\n' '\\0' \"hi\\t!\"");
    EXPECT_EQ(toks[0].intValue, 'a');
    EXPECT_EQ(toks[1].intValue, '\n');
    EXPECT_EQ(toks[2].intValue, 0u);
    EXPECT_EQ(toks[3].kind, Tok::StrLit);
    EXPECT_EQ(toks[3].text, "hi\t!");
}

TEST(Lexer, OperatorsMaximalMunch)
{
    auto toks = lex("<<= << <= < >>= >> >= > == = ++ += + && &= &");
    Tok expect[] = {Tok::ShlEq, Tok::Shl, Tok::Le, Tok::Lt,
                    Tok::ShrEq, Tok::Shr, Tok::Ge, Tok::Gt,
                    Tok::EqEq, Tok::Assign, Tok::PlusPlus, Tok::PlusEq,
                    Tok::Plus, Tok::AmpAmp, Tok::AmpEq, Tok::Amp};
    for (size_t i = 0; i < std::size(expect); ++i)
        EXPECT_EQ(toks[i].kind, expect[i]) << "i=" << i;
}

TEST(Lexer, CommentsSkipped)
{
    auto toks = lex("a // line comment\n b /* block\n comment */ c");
    ASSERT_EQ(toks.size(), 4u);
    EXPECT_EQ(toks[0].text, "a");
    EXPECT_EQ(toks[1].text, "b");
    EXPECT_EQ(toks[2].text, "c");
}

TEST(Lexer, TracksLineNumbers)
{
    auto toks = lex("a\nb\n  c");
    EXPECT_EQ(toks[0].line, 1);
    EXPECT_EQ(toks[1].line, 2);
    EXPECT_EQ(toks[2].line, 3);
    EXPECT_EQ(toks[2].col, 3);
}

TEST(Lexer, RejectsBadInput)
{
    EXPECT_THROW(lex("$"), FatalError);
    EXPECT_THROW(lex("\"unterminated"), FatalError);
    EXPECT_THROW(lex("/* unterminated"), FatalError);
    EXPECT_THROW(lex("'\\q'"), FatalError);
}

} // namespace
} // namespace bitspec
