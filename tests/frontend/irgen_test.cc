#include <gtest/gtest.h>

#include "analysis/verifier.h"
#include "frontend/irgen.h"
#include "interp/interpreter.h"
#include "support/error.h"

namespace bitspec
{
namespace
{

/** Compile and run `main`, returning its value. */
uint64_t
runMain(const std::string &src, const std::vector<uint64_t> &args = {})
{
    auto m = compileSource(src);
    Interpreter in(*m);
    return in.run("main", args);
}

TEST(IrGen, ArithmeticAndPrecedence)
{
    EXPECT_EQ(runMain("u32 main() { return 2 + 3 * 4; }"), 14u);
    EXPECT_EQ(runMain("u32 main() { return (2 + 3) * 4; }"), 20u);
    EXPECT_EQ(runMain("u32 main() { return 100 / 7; }"), 14u);
    EXPECT_EQ(runMain("u32 main() { return 100 % 7; }"), 2u);
    EXPECT_EQ(runMain("u32 main() { return 1 << 10; }"), 1024u);
    EXPECT_EQ(runMain("u32 main() { return 0xf0 ^ 0xff; }"), 0x0fu);
}

TEST(IrGen, SignedArithmetic)
{
    EXPECT_EQ(runMain("i32 main() { i32 a = -21; return a / 7; }"),
              truncTo(static_cast<uint64_t>(-3), 32));
    EXPECT_EQ(runMain("i32 main() { i32 a = -21; return a >> 1; }"),
              truncTo(static_cast<uint64_t>(-11), 32));
    EXPECT_EQ(runMain("u32 main() { u32 a = 21; return a >> 1; }"), 10u);
    EXPECT_EQ(runMain("u32 main() { i32 a = -1; return a < 0; }"), 1u);
    EXPECT_EQ(runMain("u32 main() { u32 a = 0xffffffff; return a < 1; }"),
              0u);
}

TEST(IrGen, NarrowTypesTruncateOnAssign)
{
    EXPECT_EQ(runMain("u32 main() { u8 x = 300; return x; }"), 44u);
    EXPECT_EQ(runMain("u32 main() { u16 x = 0x12345; return x; }"),
              0x2345u);
    // i8 sign-extends back into wider contexts.
    EXPECT_EQ(runMain("i32 main() { i8 x = -2; return x; }"),
              truncTo(static_cast<uint64_t>(-2), 32));
    // u8 zero-extends.
    EXPECT_EQ(runMain("i32 main() { u8 x = 0xfe; return x; }"), 0xfeu);
}

TEST(IrGen, SixtyFourBit)
{
    EXPECT_EQ(runMain("u64 main() { u64 a = 0x100000000; "
                      "return a + 0xffffffff; }"),
              0x1ffffffffULL);
    EXPECT_EQ(runMain("u32 main() { u64 a = 1; a <<= 40; "
                      "return (u32)(a >> 32); }"),
              0x100u);
}

TEST(IrGen, ControlFlow)
{
    const char *collatz = R"(
        u32 main(u32 n) {
            u32 steps = 0;
            while (n != 1) {
                if (n % 2 == 0) { n = n / 2; }
                else { n = 3 * n + 1; }
                steps++;
            }
            return steps;
        }
    )";
    EXPECT_EQ(runMain(collatz, {6}), 8u);
    EXPECT_EQ(runMain(collatz, {27}), 111u);
}

TEST(IrGen, ForLoopsAndBreakContinue)
{
    const char *src = R"(
        u32 main() {
            u32 sum = 0;
            for (u32 i = 0; i < 100; i++) {
                if (i % 3 == 0) continue;
                if (i > 20) break;
                sum += i;
            }
            return sum;
        }
    )";
    // Sum of 1..20 excluding multiples of 3: 210 - (3+6+9+12+15+18)=147.
    EXPECT_EQ(runMain(src), 147u);
}

TEST(IrGen, DoWhileRunsOnce)
{
    EXPECT_EQ(runMain("u32 main() { u32 x = 9; do { x++; } "
                      "while (x < 5); return x; }"),
              10u);
}

TEST(IrGen, ShortCircuitEvaluation)
{
    const char *src = R"(
        u32 g;
        u32 bump() { g++; return 1; }
        u32 main() {
            u32 a = 0 && bump();
            u32 b = 1 || bump();
            u32 c = 1 && bump();
            return g * 10 + a + b + c;
        }
    )";
    // bump() called exactly once (for c): g=1, a=0, b=1, c=1.
    EXPECT_EQ(runMain(src), 12u);
}

TEST(IrGen, TernarySelectsAndNests)
{
    EXPECT_EQ(runMain("u32 main(u32 a) { return a < 5 ? 10 : "
                      "a < 8 ? 20 : 30; }", {3}),
              10u);
    EXPECT_EQ(runMain("u32 main(u32 a) { return a < 5 ? 10 : "
                      "a < 8 ? 20 : 30; }", {6}),
              20u);
    EXPECT_EQ(runMain("u32 main(u32 a) { return a < 5 ? 10 : "
                      "a < 8 ? 20 : 30; }", {9}),
              30u);
}

TEST(IrGen, GlobalsArraysAndStrings)
{
    const char *src = R"(
        u32 lut[4] = { 10, 20, 30, 40 };
        u8 msg[6] = "abc";
        u32 acc;
        u32 main() {
            acc = 0;
            for (u32 i = 0; i < 4; i++) acc += lut[i];
            return acc + msg[0] + msg[2] + msg[3];
        }
    )";
    // 100 + 'a' + 'c' + 0.
    EXPECT_EQ(runMain(src), 100u + 'a' + 'c');
}

TEST(IrGen, RecursionAndCalls)
{
    const char *src = R"(
        u32 fib(u32 n) {
            if (n < 2) return n;
            return fib(n - 1) + fib(n - 2);
        }
        u32 main() { return fib(12); }
    )";
    EXPECT_EQ(runMain(src), 144u);
}

TEST(IrGen, MutualRecursion)
{
    const char *src = R"(
        u32 isOdd(u32 n);
        u32 isEven(u32 n) { if (n == 0) return 1; return isOdd(n - 1); }
        u32 isOdd(u32 n) { if (n == 0) return 0; return isEven(n - 1); }
        u32 main() { return isEven(10) * 2 + isOdd(7); }
    )";
    // Forward declarations are not supported; write it without them.
    const char *src2 = R"(
        u32 parity(u32 n, u32 want) {
            if (n == 0) return want == 0;
            return parity(n - 1, 1 - want);
        }
        u32 main() { return parity(10, 0) * 2 + parity(7, 1); }
    )";
    (void)src;
    EXPECT_EQ(runMain(src2), 3u);
}

TEST(IrGen, OutBuiltinEmitsValues)
{
    auto m = compileSource(R"(
        void main() { for (u32 i = 0; i < 3; i++) out(i * 7); }
    )");
    Interpreter in(*m);
    in.run("main");
    ASSERT_EQ(in.output().size(), 3u);
    EXPECT_EQ(in.output()[2], 14u);
}

TEST(IrGen, VerifiesAndHasNoTrivialPhis)
{
    auto m = compileSource(R"(
        u32 main(u32 n) {
            u32 x = 0;
            if (n > 3) x = 1;
            u32 y = 5;      // y never changes: must not get a phi.
            while (n) { x += y; n--; }
            return x;
        }
    )");
    EXPECT_TRUE(verifyModule(*m).empty());
    // Count phis: only x and n should need them in the loop header.
    Function *f = m->getFunction("main");
    unsigned phis = 0;
    for (auto &bb : f->blocks())
        phis += bb->phis().size();
    EXPECT_LE(phis, 3u); // x@if.end, x@while.cond, n@while.cond.
}

TEST(IrGen, ScopingAndShadowing)
{
    EXPECT_EQ(runMain(R"(
        u32 main() {
            u32 x = 1;
            { u32 x = 2; x += 1; }
            return x;
        }
    )"),
              1u);
}

TEST(IrGen, SemanticErrors)
{
    EXPECT_THROW(compileSource("u32 main() { return y; }"), FatalError);
    EXPECT_THROW(compileSource("u32 main() { return f(1); }"), FatalError);
    EXPECT_THROW(compileSource("u32 g[4]; u32 main() { return g; }"),
                 FatalError);
    EXPECT_THROW(compileSource("u32 x; u32 main() { return x[0]; }"),
                 FatalError);
    EXPECT_THROW(compileSource(
                     "u32 f(u32 a) { return a; } u32 main() "
                     "{ return f(1, 2); }"),
                 FatalError);
    EXPECT_THROW(compileSource("void main() { break; }"), FatalError);
    EXPECT_THROW(compileSource(
                     "void main() { u32 x = 1; u32 x = 2; }"),
                 FatalError);
}

TEST(IrGen, CompoundAssignOnArrayElement)
{
    EXPECT_EQ(runMain(R"(
        u32 g[4] = { 5, 6, 7, 8 };
        u32 main() {
            g[2] += 10;
            g[2] <<= 1;
            return g[2];
        }
    )"),
              34u);
}

TEST(IrGen, CharComparisons)
{
    EXPECT_EQ(runMain(R"(
        u8 s[8] = "hello";
        u32 main() {
            u32 n = 0;
            while (s[n] != '\0') n++;
            return n;
        }
    )"),
              5u);
}

} // namespace
} // namespace bitspec
