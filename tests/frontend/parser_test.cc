#include <gtest/gtest.h>

#include "frontend/parser.h"
#include "support/error.h"

namespace bitspec
{
namespace
{

TEST(Parser, GlobalsAndFunctions)
{
    auto p = parseProgram(R"(
        u32 counter;
        u8 table[256];
        u32 lut[4] = { 1, 2, 3 };
        u8 msg[8] = "hi";
        i32 bias = -5;

        u32 add(u32 a, u32 b) { return a + b; }
        void main() { }
    )");
    ASSERT_EQ(p.globals.size(), 5u);
    EXPECT_FALSE(p.globals[0].isArray);
    EXPECT_TRUE(p.globals[1].isArray);
    EXPECT_EQ(p.globals[1].arraySize, 256u);
    EXPECT_EQ(p.globals[2].init.size(), 3u);
    EXPECT_EQ(p.globals[3].strInit, "hi");
    EXPECT_EQ(p.globals[4].init[0], static_cast<uint64_t>(-5));

    ASSERT_EQ(p.functions.size(), 2u);
    EXPECT_EQ(p.functions[0].name, "add");
    EXPECT_EQ(p.functions[0].params.size(), 2u);
    EXPECT_EQ(p.functions[0].retType.bits, 32u);
    EXPECT_FALSE(p.functions[0].retType.isSigned);
}

TEST(Parser, StatementsRoundTrip)
{
    auto p = parseProgram(R"(
        u32 g[4];
        void main() {
            u32 x = 1;
            if (x < 2) { x = 3; } else x = 4;
            while (x) { x -= 1; break; }
            do { x += 1; } while (x < 5);
            for (u32 i = 0; i < 4; i++) { g[i] = x; continue; }
            x <<= 2;
            return;
        }
    )");
    const auto &body = p.functions[0].body->body;
    ASSERT_EQ(body.size(), 7u);
    EXPECT_EQ(body[0]->kind, ast::StmtKind::Decl);
    EXPECT_EQ(body[1]->kind, ast::StmtKind::If);
    EXPECT_EQ(body[2]->kind, ast::StmtKind::While);
    EXPECT_EQ(body[3]->kind, ast::StmtKind::DoWhile);
    EXPECT_EQ(body[4]->kind, ast::StmtKind::For);
    EXPECT_EQ(body[5]->kind, ast::StmtKind::Assign);
    EXPECT_TRUE(body[5]->isCompound);
    EXPECT_EQ(body[6]->kind, ast::StmtKind::Return);
}

TEST(Parser, ExpressionPrecedence)
{
    auto p = parseProgram("u32 f() { return 1 + 2 * 3; }");
    const auto &ret = p.functions[0].body->body[0];
    const auto &e = ret->expr;
    ASSERT_EQ(e->kind, ast::ExprKind::Binary);
    EXPECT_EQ(e->binOp, ast::BinOp::Add);
    EXPECT_EQ(e->children[1]->binOp, ast::BinOp::Mul);
}

TEST(Parser, TernaryAndLogical)
{
    auto p = parseProgram("u32 f(u32 a) { return a && 1 ? a | 2 : 3; }");
    const auto &e = p.functions[0].body->body[0]->expr;
    ASSERT_EQ(e->kind, ast::ExprKind::Ternary);
    EXPECT_EQ(e->children[0]->kind, ast::ExprKind::Logical);
}

TEST(Parser, CastVsParens)
{
    auto p = parseProgram("u32 f(u32 a) { return (u8)a + (a); }");
    const auto &e = p.functions[0].body->body[0]->expr;
    ASSERT_EQ(e->kind, ast::ExprKind::Binary);
    EXPECT_EQ(e->children[0]->kind, ast::ExprKind::Cast);
    EXPECT_EQ(e->children[0]->castType.bits, 8u);
    EXPECT_EQ(e->children[1]->kind, ast::ExprKind::VarRef);
}

TEST(Parser, CallsAndIndex)
{
    auto p = parseProgram(R"(
        u8 buf[4];
        u32 g(u32 x) { return x; }
        u32 f() { return g(buf[2]) + g(1); }
    )");
    const auto &e = p.functions[1].body->body[0]->expr;
    EXPECT_EQ(e->children[0]->kind, ast::ExprKind::Call);
    EXPECT_EQ(e->children[0]->children[0]->kind, ast::ExprKind::Index);
}

TEST(Parser, PlusPlusStatement)
{
    auto p = parseProgram("void f() { u32 i = 0; i++; i--; }");
    const auto &body = p.functions[0].body->body;
    EXPECT_EQ(body[1]->kind, ast::StmtKind::Assign);
    EXPECT_TRUE(body[1]->isCompound);
    EXPECT_EQ(body[1]->compoundOp, ast::BinOp::Add);
    EXPECT_EQ(body[2]->compoundOp, ast::BinOp::Sub);
}

TEST(Parser, SyntaxErrors)
{
    EXPECT_THROW(parseProgram("u32 f( { }"), FatalError);
    EXPECT_THROW(parseProgram("u32 x = ;"), FatalError);
    EXPECT_THROW(parseProgram("void f() { if x }"), FatalError);
    EXPECT_THROW(parseProgram("void f() { return 1 + ; }"), FatalError);
}

} // namespace
} // namespace bitspec
