#include <gtest/gtest.h>

#include <vector>

#include "core/experiment.h"
#include "support/error.h"
#include "workloads/workload.h"

namespace bitspec
{
namespace
{

/** Field-by-field equality over everything the benches print. */
void
expectSameResult(const RunResult &a, const RunResult &b,
                 const std::string &what)
{
    EXPECT_EQ(a.returnValue, b.returnValue) << what;
    EXPECT_EQ(a.outputChecksum, b.outputChecksum) << what;
    EXPECT_EQ(a.counters.instructions, b.counters.instructions) << what;
    EXPECT_EQ(a.counters.cycles, b.counters.cycles) << what;
    EXPECT_EQ(a.counters.loads, b.counters.loads) << what;
    EXPECT_EQ(a.counters.stores, b.counters.stores) << what;
    EXPECT_EQ(a.counters.misspeculations, b.counters.misspeculations)
        << what;
    EXPECT_EQ(a.counters.rfRead8, b.counters.rfRead8) << what;
    EXPECT_EQ(a.counters.rfWrite8, b.counters.rfWrite8) << what;
    EXPECT_EQ(a.totalEnergy, b.totalEnergy) << what;
    EXPECT_EQ(a.epi, b.epi) << what;
    EXPECT_EQ(a.meanVoltage, b.meanVoltage) << what;
}

/** Uncached serial reference: fresh System per cell. */
RunResult
serialReference(const ExperimentCell &c)
{
    const Workload &w = *c.workload;
    uint64_t pseed = c.profileSeed;
    System sys(w.source, c.config,
               [&w, pseed](Module &m) { w.setInput(m, pseed); });
    uint64_t rseed = c.runSeed;
    return sys.run([&w, rseed](Module &m) { w.setInput(m, rseed); });
}

std::vector<ExperimentCell>
smallMatrix()
{
    std::vector<ExperimentCell> cells;
    for (const char *name : {"CRC32", "dijkstra"}) {
        const Workload &w = getWorkload(name);
        for (uint64_t run_seed : {0ull, 1ull}) {
            cells.push_back(
                {&w, SystemConfig::baseline(), 0, run_seed});
            cells.push_back(
                {&w, SystemConfig::bitspec(), 0, run_seed});
        }
    }
    return cells;
}

TEST(ExperimentRunner, BitIdenticalToSerialAcrossThreadCounts)
{
    std::vector<ExperimentCell> cells = smallMatrix();

    std::vector<RunResult> ref;
    ref.reserve(cells.size());
    for (const ExperimentCell &c : cells)
        ref.push_back(serialReference(c));

    for (unsigned threads : {1u, 4u}) {
        ExperimentRunner runner(threads);
        std::vector<RunResult> got = runner.run(cells);
        ASSERT_EQ(got.size(), cells.size());
        for (size_t i = 0; i < cells.size(); ++i)
            expectSameResult(
                ref[i], got[i],
                "cell " + std::to_string(i) + " with " +
                    std::to_string(threads) + " threads");
    }
}

TEST(ExperimentRunner, CachesSystemAcrossRunSeeds)
{
    const Workload &w = getWorkload("CRC32");
    std::vector<ExperimentCell> cells;
    for (uint64_t run_seed = 0; run_seed < 5; ++run_seed)
        cells.push_back({&w, SystemConfig::bitspec(), 0, run_seed});

    ExperimentRunner runner(2);
    runner.run(cells);
    EXPECT_EQ(runner.stats().cells, 5u);
    EXPECT_EQ(runner.stats().systemsBuilt, 1u);
    EXPECT_EQ(runner.stats().cacheHits, 4u);

    // A different profile seed is a different System.
    runner.evaluate(w, SystemConfig::bitspec(), /*profile_seed=*/1);
    EXPECT_EQ(runner.stats().systemsBuilt, 2u);

    // A different config is a different System even for the same
    // seeds.
    runner.evaluate(w, SystemConfig::baseline());
    EXPECT_EQ(runner.stats().systemsBuilt, 3u);

    runner.clearCache();
    runner.evaluate(w, SystemConfig::bitspec());
    EXPECT_EQ(runner.stats().systemsBuilt, 4u);
}

TEST(ExperimentRunner, CachedRunsAreOrderIndependent)
{
    // Run seeds out of order against one cached System; every result
    // must equal a fresh build's (the global-data snapshot restore).
    const Workload &w = getWorkload("sha");
    ExperimentRunner runner(1);
    for (uint64_t run_seed : {2ull, 0ull, 2ull, 1ull, 0ull}) {
        RunResult got =
            runner.evaluate(w, SystemConfig::bitspec(), 0, run_seed);
        RunResult ref = serialReference(
            {&w, SystemConfig::bitspec(), 0, run_seed});
        expectSameResult(ref, got,
                         "run seed " + std::to_string(run_seed));
    }
    EXPECT_EQ(runner.stats().systemsBuilt, 1u);
}

TEST(ExperimentRunner, SystemKeySeparatesConfigs)
{
    const Workload &w = getWorkload("CRC32");
    std::string base =
        ExperimentRunner::systemKey(w, SystemConfig::baseline(), 0);
    std::string spec =
        ExperimentRunner::systemKey(w, SystemConfig::bitspec(), 0);
    EXPECT_NE(base, spec);
    EXPECT_EQ(base, ExperimentRunner::systemKey(
                        w, SystemConfig::baseline(), 0));
    EXPECT_NE(base, ExperimentRunner::systemKey(
                        w, SystemConfig::baseline(), 1));

    SystemConfig tweaked = SystemConfig::baseline();
    tweaked.energy.rfRead32 += 0.125;
    EXPECT_NE(base,
              ExperimentRunner::systemKey(w, tweaked, 0));
}

TEST(ExperimentRunner, SystemKeyHashMirrorsCanonicalKey)
{
    // The 128-bit hash (cache key, artifact file name) must separate
    // and equate exactly as the canonical string key does.
    const Workload &w = getWorkload("CRC32");
    const Workload &w2 = getWorkload("dijkstra");
    Hash128 base = ExperimentRunner::systemKeyHash(
        w, SystemConfig::baseline(), 0);
    EXPECT_EQ(base, ExperimentRunner::systemKeyHash(
                        w, SystemConfig::baseline(), 0));

    std::vector<Hash128> keys = {base};
    auto expectFresh = [&keys](Hash128 k) {
        for (const Hash128 &seen : keys)
            EXPECT_FALSE(k == seen) << k.hex();
        keys.push_back(k);
    };
    expectFresh(
        ExperimentRunner::systemKeyHash(w, SystemConfig::bitspec(), 0));
    expectFresh(ExperimentRunner::systemKeyHash(
        w, SystemConfig::baseline(), 1));
    expectFresh(ExperimentRunner::systemKeyHash(
        w2, SystemConfig::baseline(), 0));
    SystemConfig tweaked = SystemConfig::baseline();
    tweaked.energy.rfRead32 += 0.125;
    expectFresh(ExperimentRunner::systemKeyHash(w, tweaked, 0));
    SystemConfig nospec = SystemConfig::noSpeculation();
    expectFresh(ExperimentRunner::systemKeyHash(w, nospec, 0));
}

TEST(ExperimentRunner, WorkerExceptionPropagatesAndRunnerSurvives)
{
    Workload bad;
    bad.name = "bad-source";
    bad.source = "u32 main( { this does not parse";
    bad.setInput = [](Module &, uint64_t) {};

    const Workload &good = getWorkload("CRC32");
    ExperimentRunner runner(2);
    std::vector<ExperimentCell> cells = {
        {&good, SystemConfig::baseline(), 0, 0},
        {&bad, SystemConfig::baseline(), 0, 0},
        {&good, SystemConfig::bitspec(), 0, 0},
    };
    EXPECT_THROW(runner.run(cells), FatalError);

    // The failed build must not poison the runner or the cache.
    RunResult after = runner.evaluate(good, SystemConfig::baseline());
    RunResult ref =
        serialReference({&good, SystemConfig::baseline(), 0, 0});
    expectSameResult(ref, after, "post-exception evaluate");
}

} // namespace
} // namespace bitspec
