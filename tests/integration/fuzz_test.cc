/**
 * @file
 * Randomised differential testing of the whole stack: a seeded
 * generator emits random-but-valid C-subset programs; each must
 * produce identical results across (1) the reference interpreter,
 * (2) squeezed IR under hardware and forced misspeculation, and
 * (3) compiled machine code on all three ISAs.
 */

#include <gtest/gtest.h>

#include <string>

#include "backend/compiler.h"
#include "frontend/irgen.h"
#include "interp/interpreter.h"
#include "profile/bitwidth_profile.h"
#include "support/rng.h"
#include "transform/expander.h"
#include "transform/squeezer.h"
#include "uarch/core.h"

namespace bitspec
{
namespace
{

/** Generates a random program over u8/u16/u32 scalars and a byte
 *  array, with nested loops, branches and mixed-width arithmetic. */
class ProgramGen
{
  public:
    explicit ProgramGen(uint64_t seed) : rng_(seed) {}

    std::string
    generate()
    {
        src_ = "u8 mem[64];\n";
        src_ += "u32 main(u32 n) {\n";
        vars_ = {"n"};
        assignable_ = {"n"};
        // Seed the byte array deterministically in-program.
        src_ += "  for (u32 z = 0; z < 64; z++) mem[z] = "
                "(u8)(z * 37 + 11);\n";
        unsigned nvars = 3 + rng_.nextBelow(4);
        for (unsigned i = 0; i < nvars; ++i)
            emitDecl();
        unsigned nstmts = 4 + rng_.nextBelow(6);
        for (unsigned i = 0; i < nstmts; ++i)
            emitStmt(2);
        src_ += "  return " + pick() + " + " + pick() + ";\n}\n";
        return src_;
    }

  private:
    std::string
    pick()
    {
        return vars_[rng_.nextBelow(vars_.size())];
    }

    /** Assignment targets exclude loop induction variables (writing
     *  one could make the loop non-terminating). */
    std::string
    pickAssignable()
    {
        return assignable_[rng_.nextBelow(assignable_.size())];
    }

    std::string
    literal()
    {
        // Bias towards byte-range constants (narrowing targets).
        if (rng_.nextBelow(3) == 0)
            return std::to_string(rng_.nextBelow(100000));
        return std::to_string(rng_.nextBelow(256));
    }

    std::string
    expr(unsigned depth)
    {
        switch (rng_.nextBelow(depth == 0 ? 3 : 6)) {
          case 0:
            return pick();
          case 1:
            return literal();
          case 2:
            return "mem[(" + pick() + ") & 63]";
          case 3:
            return "(" + expr(depth - 1) + " " + binop() + " " +
                   expr(depth - 1) + ")";
          case 4:
            return "((" + expr(depth - 1) + ") " + shiftop() + " " +
                   std::to_string(1 + rng_.nextBelow(7)) + ")";
          default:
            return "((" + expr(depth - 1) + ") % " +
                   std::to_string(2 + rng_.nextBelow(254)) + ")";
        }
    }

    std::string
    binop()
    {
        const char *ops[] = {"+", "-", "*", "&", "|", "^"};
        return ops[rng_.nextBelow(6)];
    }

    std::string
    shiftop() { return rng_.nextBelow(2) ? "<<" : ">>"; }

    std::string
    relop()
    {
        const char *ops[] = {"<", "<=", ">", ">=", "==", "!="};
        return ops[rng_.nextBelow(6)];
    }

    std::string
    type()
    {
        const char *types[] = {"u8", "u16", "u32", "u32"};
        return types[rng_.nextBelow(4)];
    }

    void
    emitDecl()
    {
        std::string name = "v" + std::to_string(vars_.size());
        src_ += "  " + type() + " " + name + " = " + expr(2) + ";\n";
        vars_.push_back(name);
        assignable_.push_back(name);
    }

    void
    emitStmt(unsigned depth)
    {
        switch (rng_.nextBelow(depth == 0 ? 3 : 6)) {
          case 0:
            src_ += "  " + pickAssignable() + " = " + expr(2) + ";\n";
            return;
          case 1:
            src_ += "  " + pickAssignable() + " += " + expr(1) +
                    ";\n";
            return;
          case 2:
            src_ += "  mem[(" + expr(1) + ") & 63] = (u8)(" +
                    expr(1) + ");\n";
            return;
          case 3: {
            src_ += "  if ((" + pick() + " & 255) " + relop() + " " +
                    literal() + ") {\n";
            emitStmt(depth - 1);
            src_ += "  } else {\n";
            emitStmt(depth - 1);
            src_ += "  }\n";
            return;
          }
          case 4: {
            std::string iv = "i" + std::to_string(loops_++);
            src_ += "  for (u32 " + iv + " = 0; " + iv + " < " +
                    std::to_string(2 + rng_.nextBelow(30)) + "; " +
                    iv + "++) {\n";
            vars_.push_back(iv);
            emitStmt(depth - 1);
            emitStmt(depth - 1);
            vars_.pop_back(); // Scoped to the loop.
            src_ += "  }\n";
            return;
          }
          default:
            src_ += "  out(" + pick() + ");\n";
            return;
        }
    }

    Rng rng_;
    std::string src_;
    std::vector<std::string> vars_;
    std::vector<std::string> assignable_;
    unsigned loops_ = 0;
};

class FuzzDifferential : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(FuzzDifferential, AllExecutionModelsAgree)
{
    ProgramGen gen(GetParam());
    std::string src = gen.generate();
    SCOPED_TRACE(src);

    auto ref_mod = compileSource(src);
    Interpreter ref(*ref_mod);
    uint64_t want = truncTo(ref.run("main", {17}), 32);
    uint64_t want_sum = ref.outputChecksum();

    for (Heuristic h : {Heuristic::Max, Heuristic::Avg}) {
        auto mod = compileSource(src);
        ExpanderOptions eo;
        eo.unrollFactor = 2;
        expandModule(*mod, eo);
        BitwidthProfile profile;
        profile.profileRun(*mod, "main", {9});
        SqueezeOptions so;
        so.heuristic = h;
        squeezeModule(*mod, profile, so);

        // IR level, hardware misspeculation.
        Interpreter hw(*mod);
        EXPECT_EQ(truncTo(hw.run("main", {17}), 32), want);
        EXPECT_EQ(hw.outputChecksum(), want_sum);

        // IR level, forced misspeculation (Theorem 3.2).
        Interpreter forced(*mod);
        forced.setMisspecPolicy(MisspecPolicy::ForceFirst);
        EXPECT_EQ(truncTo(forced.run("main", {17}), 32), want);

        // Machine level, BitSpec ISA.
        CompiledProgram cp = compileModule(*mod, TargetISA::BitSpec);
        Core core(cp.program, *mod);
        EXPECT_EQ(core.run({17}), want);
        EXPECT_EQ(core.outputChecksum(), want_sum);
    }

    // Machine level, plain ISAs on the unsqueezed module.
    for (TargetISA isa : {TargetISA::Baseline, TargetISA::Thumb}) {
        auto mod = compileSource(src);
        CompiledProgram cp = compileModule(*mod, isa);
        Core core(cp.program, *mod);
        EXPECT_EQ(core.run({17}), want);
        EXPECT_EQ(core.outputChecksum(), want_sum);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzDifferential,
                         ::testing::Range<uint64_t>(1, 41));

} // namespace
} // namespace bitspec
