#include <gtest/gtest.h>

#include "../testutil.h"
#include "analysis/loops.h"

namespace bitspec
{
namespace
{

TEST(Loops, SingleLoopDetected)
{
    Module m;
    Function *f = test::buildSumTo(m);
    DomTree dt(*f);
    auto loops = findLoops(*f, dt);
    ASSERT_EQ(loops.size(), 1u);
    EXPECT_EQ(loops[0].header->name(), "body");
    EXPECT_EQ(loops[0].blocks.size(), 1u);
    ASSERT_EQ(loops[0].latches.size(), 1u);
    EXPECT_EQ(loops[0].latches[0], loops[0].header);
    auto exits = loops[0].exitTargets();
    ASSERT_EQ(exits.size(), 1u);
    EXPECT_EQ(exits[0]->name(), "exit");
}

TEST(Loops, NoLoopsInDiamond)
{
    Module m;
    Function *f = test::buildDiamond(m);
    DomTree dt(*f);
    EXPECT_TRUE(findLoops(*f, dt).empty());
}

TEST(Loops, NestedLoopsInnerFirst)
{
    // Build: outer(header H, body contains inner loop I).
    Module m;
    Function *f = m.addFunction("nest", Type::i32(), {Type::i32()});
    IRBuilder b(&m);
    BasicBlock *entry = f->addBlock("entry");
    BasicBlock *oh = f->addBlock("outer");
    BasicBlock *ih = f->addBlock("inner");
    BasicBlock *olatch = f->addBlock("olatch");
    BasicBlock *exit = f->addBlock("exit");

    b.setInsertPoint(entry);
    b.br(oh);

    b.setInsertPoint(oh);
    Instruction *i = b.phi(Type::i32(), "i");
    b.br(ih);

    b.setInsertPoint(ih);
    Instruction *j = b.phi(Type::i32(), "j");
    Instruction *j2 = b.add(j, b.constI32(1));
    Instruction *jc = b.icmp(CmpPred::ULT, j2, b.constI32(10));
    b.condBr(jc, ih, olatch);
    IRBuilder::addIncoming(j, b.constI32(0), oh);
    IRBuilder::addIncoming(j, j2, ih);

    b.setInsertPoint(olatch);
    Instruction *i2 = b.add(i, b.constI32(1));
    Instruction *ic = b.icmp(CmpPred::ULT, i2, f->arg(0));
    b.condBr(ic, oh, exit);
    IRBuilder::addIncoming(i, b.constI32(0), entry);
    IRBuilder::addIncoming(i, i2, olatch);

    b.setInsertPoint(exit);
    b.ret(i2);

    DomTree dt(*f);
    auto loops = findLoops(*f, dt);
    ASSERT_EQ(loops.size(), 2u);
    // Inner (1 block) sorted before outer (3 blocks).
    EXPECT_EQ(loops[0].header, ih);
    EXPECT_EQ(loops[1].header, oh);
    EXPECT_TRUE(loops[1].contains(ih));
    EXPECT_FALSE(loops[0].contains(oh));
}

} // namespace
} // namespace bitspec
