#include <gtest/gtest.h>

#include "../testutil.h"
#include "analysis/verifier.h"

namespace bitspec
{
namespace
{

TEST(Verifier, AcceptsWellFormedFunctions)
{
    Module m;
    test::buildSumTo(m);
    test::buildDiamond(m);
    test::buildPaperCounter(m);
    EXPECT_TRUE(verifyModule(m).empty());
}

TEST(Verifier, RejectsMissingTerminator)
{
    Module m;
    Function *f = m.addFunction("f", Type::voidTy(), {});
    f->addBlock("entry"); // No terminator.
    EXPECT_FALSE(verifyFunction(*f).empty());
}

TEST(Verifier, RejectsTypeMismatch)
{
    Module m;
    Function *f = m.addFunction("f", Type::i32(), {Type::i32()});
    IRBuilder b(&m);
    BasicBlock *bb = f->addBlock("entry");
    b.setInsertPoint(bb);
    // Hand-build a bad add: i32 = add(i32, i8).
    auto bad = std::make_unique<Instruction>(Opcode::Add, Type::i32());
    bad->addOperand(f->arg(0));
    bad->addOperand(m.getConst(Type::i8(), 1));
    Instruction *raw = bb->append(std::move(bad));
    b.ret(raw);
    EXPECT_FALSE(verifyFunction(*f).empty());
}

TEST(Verifier, RejectsUseBeforeDef)
{
    Module m;
    Function *f = m.addFunction("f", Type::i32(), {Type::i32()});
    IRBuilder b(&m);
    BasicBlock *entry = f->addBlock("entry");
    BasicBlock *other = f->addBlock("other");

    // `late` is defined in `other`, used in `entry` which precedes it.
    b.setInsertPoint(other);
    Instruction *late = b.add(f->arg(0), b.constI32(1));
    b.ret(late);

    b.setInsertPoint(entry);
    Instruction *use = b.add(late, b.constI32(2));
    (void)use;
    b.br(other);

    EXPECT_FALSE(verifyFunction(*f).empty());
}

TEST(Verifier, RejectsBranchToHandler)
{
    Module m;
    Function *f = test::buildSumTo(m);
    BasicBlock *body = f->blocks()[1].get();
    BasicBlock *handler = f->addBlock("handler");
    IRBuilder b(&m);
    b.setInsertPoint(handler);
    b.ret(m.getConst(Type::i32(), 0));
    SpecRegion *sr = f->addSpecRegion();
    sr->blocks.push_back(body);
    sr->handler = handler;
    EXPECT_TRUE(verifyFunction(*f).empty());

    // Now branch into the handler: invalid.
    BasicBlock *entry = f->entry();
    Instruction *term = entry->terminator();
    term->setBlockOperand(0, handler);
    // (Also breaks body's phis, but the handler complaint must appear.)
    auto problems = verifyFunction(*f);
    bool found = false;
    for (const auto &p : problems)
        found |= p.find("handler is a branch target") != std::string::npos;
    EXPECT_TRUE(found);
}

TEST(Verifier, RejectsTheorem31Violation)
{
    // Handler consuming a value defined inside its region.
    Module m;
    Function *f = m.addFunction("f", Type::i32(), {Type::i32()});
    IRBuilder b(&m);
    BasicBlock *entry = f->addBlock("entry");
    BasicBlock *spec = f->addBlock("spec");
    BasicBlock *exit = f->addBlock("exit");
    BasicBlock *handler = f->addBlock("handler");

    b.setInsertPoint(entry);
    b.br(spec);
    b.setInsertPoint(spec);
    Instruction *v = b.add(f->arg(0), b.constI32(1));
    b.br(exit);
    b.setInsertPoint(exit);
    b.ret(v);
    b.setInsertPoint(handler);
    b.ret(v); // Violation: v defined in region.

    SpecRegion *sr = f->addSpecRegion();
    sr->blocks.push_back(spec);
    sr->handler = handler;

    auto problems = verifyFunction(*f);
    bool found = false;
    for (const auto &p : problems)
        found |= p.find("Theorem 3.1") != std::string::npos;
    EXPECT_TRUE(found);
}

TEST(Verifier, RejectsSharedHandler)
{
    Module m;
    Function *f = test::buildSumTo(m);
    BasicBlock *body = f->blocks()[1].get();
    BasicBlock *entry = f->entry();
    BasicBlock *handler = f->addBlock("handler");
    IRBuilder b(&m);
    b.setInsertPoint(handler);
    b.ret(m.getConst(Type::i32(), 0));

    SpecRegion *r1 = f->addSpecRegion();
    r1->blocks.push_back(body);
    r1->handler = handler;
    SpecRegion *r2 = f->addSpecRegion();
    r2->blocks.push_back(entry);
    r2->handler = handler;

    auto problems = verifyFunction(*f);
    bool found = false;
    for (const auto &p : problems)
        found |= p.find("handler of two regions") != std::string::npos;
    EXPECT_TRUE(found);
}

} // namespace
} // namespace bitspec
