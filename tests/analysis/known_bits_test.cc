#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "../testutil.h"
#include "analysis/known_bits.h"
#include "interp/interpreter.h"

namespace bitspec
{
namespace
{

/** Interval-only fact: [lo, hi] with no mask knowledge. */
KnownBits
range(uint64_t lo, uint64_t hi, unsigned bits)
{
    KnownBits k = KnownBits::top(bits);
    k.lo = lo;
    k.hi = hi;
    return k.normalized(bits);
}

// ---------------------------------------------------------------------
// Golden per-opcode transfer tests (no IR).
// ---------------------------------------------------------------------

TEST(KnownBits, ConstantAndTopFacts)
{
    KnownBits c = KnownBits::constant(0x2a, 32);
    EXPECT_TRUE(c.isConstant());
    EXPECT_EQ(c.lo, 0x2au);
    EXPECT_EQ(c.one, 0x2au);
    EXPECT_EQ(c.zero, ~0x2aULL);
    EXPECT_EQ(c.upperBoundBits(), 6u);
    EXPECT_TRUE(c.fits(8));

    KnownBits t = KnownBits::top(8);
    EXPECT_EQ(t.lo, 0u);
    EXPECT_EQ(t.hi, 255u);
    EXPECT_TRUE(t.fits(8));
    EXPECT_FALSE(t.fits(7));
}

TEST(KnownBits, JoinKeepsCommonBitsAndHull)
{
    KnownBits j = kbJoin(KnownBits::constant(4, 32),
                         KnownBits::constant(12, 32), 32);
    EXPECT_EQ(j.lo, 4u);
    EXPECT_EQ(j.hi, 12u);
    EXPECT_EQ(j.one, 4u);              // Bit 2 set in both.
    EXPECT_EQ(j.zero & 0x3u, 0x3u);    // Low bits clear in both.
}

TEST(KnownBits, AddGolden)
{
    // Disjoint masks: exact result.
    KnownBits e = kbAdd(KnownBits::constant(0xf0, 32),
                        KnownBits::constant(0x0f, 32), 32);
    EXPECT_TRUE(e.isConstant());
    EXPECT_EQ(e.lo, 0xffu);

    // Non-wrapping intervals add exactly.
    KnownBits r = kbAdd(range(0, 10, 32), range(0, 20, 32), 32);
    EXPECT_EQ(r.lo, 0u);
    EXPECT_EQ(r.hi, 30u);

    // Possible wrap at the type width surrenders the interval.
    KnownBits w = kbAdd(range(200, 250, 8), range(100, 120, 8), 8);
    EXPECT_EQ(w.hi, 255u);
    EXPECT_EQ(w.lo, 0u);
}

TEST(KnownBits, SubGolden)
{
    KnownBits e = kbSub(range(50, 60, 32), range(10, 20, 32), 32);
    EXPECT_EQ(e.lo, 30u);
    EXPECT_EQ(e.hi, 50u);

    // Possible borrow: must fall back to the type range.
    KnownBits b = kbSub(range(0, 5, 32), range(0, 10, 32), 32);
    EXPECT_EQ(b.hi, 0xffffffffu);
}

TEST(KnownBits, MulGolden)
{
    KnownBits c = kbMul(KnownBits::constant(6, 32),
                        KnownBits::constant(7, 32), 32);
    EXPECT_TRUE(c.isConstant());
    EXPECT_EQ(c.lo, 42u);

    KnownBits r = kbMul(range(0, 10, 32), range(0, 10, 32), 32);
    EXPECT_EQ(r.hi, 100u);

    // Trailing zeros multiply out even with an unknown factor.
    KnownBits z =
        kbMul(KnownBits::constant(4, 32), KnownBits::top(32), 32);
    EXPECT_EQ(z.zero & 0x3u, 0x3u);
}

TEST(KnownBits, ShiftGolden)
{
    KnownBits sl =
        kbShl(range(1, 3, 32), KnownBits::constant(4, 32), 32);
    EXPECT_EQ(sl.lo, 16u);
    EXPECT_EQ(sl.hi, 48u);
    EXPECT_EQ(sl.zero & 0xfu, 0xfu); // Shifted-in zeros.

    // Unknown shift amount: nothing known.
    EXPECT_EQ(kbShl(range(1, 3, 32), KnownBits::top(32), 32).hi,
              0xffffffffu);

    KnownBits sr = kbLShr(range(0x80, 0xff, 32),
                          KnownBits::constant(4, 32), 32);
    EXPECT_EQ(sr.lo, 8u);
    EXPECT_EQ(sr.hi, 15u);

    // LShr by an unknown amount still never grows the value.
    EXPECT_EQ(kbLShr(range(0, 100, 32), KnownBits::top(32), 32).hi,
              100u);

    // AShr with a known-clear sign bit degrades to LShr.
    KnownBits ar = kbAShr(range(0, 0xff, 32),
                          KnownBits::constant(4, 32), 32);
    EXPECT_EQ(ar.hi, 0xfu);
}

TEST(KnownBits, DivRemGolden)
{
    KnownBits d = kbUDiv(range(100, 200, 32),
                         KnownBits::constant(10, 32), 32);
    EXPECT_EQ(d.lo, 10u);
    EXPECT_EQ(d.hi, 20u);

    KnownBits r =
        kbURem(KnownBits::top(32), KnownBits::constant(10, 32), 32);
    EXPECT_EQ(r.hi, 9u);

    // Dividend below the divisor: the remainder is the dividend.
    KnownBits s =
        kbURem(range(2, 5, 32), KnownBits::constant(10, 32), 32);
    EXPECT_EQ(s.lo, 2u);
    EXPECT_EQ(s.hi, 5u);
}

TEST(KnownBits, LogicGolden)
{
    KnownBits a =
        kbAnd(KnownBits::top(32), KnownBits::constant(0xff, 32), 32);
    EXPECT_TRUE(a.fits(8));

    KnownBits o = kbOr(range(0, 0xf, 32), range(0, 0x7, 32), 32);
    EXPECT_EQ(o.hi, 0xfu);

    KnownBits x = kbXor(KnownBits::constant(0xa, 8),
                        KnownBits::constant(0x6, 8), 8);
    EXPECT_TRUE(x.isConstant());
    EXPECT_EQ(x.lo, 0xau ^ 0x6u);
}

TEST(KnownBits, WidthChangeGolden)
{
    // Trunc of an over-wide value keeps the surviving mask bits.
    KnownBits t = kbTrunc(KnownBits::constant(0x1ff, 32), 8);
    EXPECT_TRUE(t.isConstant());
    EXPECT_EQ(t.lo, 0xffu);

    KnownBits tf = kbTrunc(range(0, 100, 32), 8);
    EXPECT_EQ(tf.hi, 100u);

    KnownBits z = kbZExt(KnownBits::top(8), 8, 32);
    EXPECT_TRUE(z.fits(8));

    // SExt: non-negative passes through, known-negative is exact,
    // unknown sign surrenders.
    EXPECT_EQ(kbSExt(range(0, 0x3f, 8), 8, 32).hi, 0x3fu);
    KnownBits sn = kbSExt(KnownBits::constant(0x80, 8), 8, 32);
    EXPECT_TRUE(sn.isConstant());
    EXPECT_EQ(sn.lo, 0xffffff80u);
    EXPECT_EQ(kbSExt(KnownBits::top(8), 8, 32).hi, 0xffffffffu);
}

TEST(KnownBits, SpeculativeTransfersAreTighter)
{
    // Spec add on the non-misspeculating path has no carry out: the
    // plain transfer must surrender to [0,255], the speculative one
    // keeps the true-sum lower bound.
    KnownBits a = range(100, 200, 8), b = range(100, 150, 8);
    EXPECT_EQ(kbAdd(a, b, 8).lo, 0u);
    KnownBits sa = kbSpecAdd(a, b, 8);
    EXPECT_EQ(sa.lo, 200u);
    EXPECT_EQ(sa.hi, 255u);

    // At host width the spec transfer must not wrap internally.
    EXPECT_EQ(kbSpecAdd(KnownBits::top(64), KnownBits::top(64), 64).hi,
              ~0ULL);

    // Spec sub: no borrow, so the minuend bounds the result.
    KnownBits ss = kbSpecSub(range(0, 50, 8), range(0, 60, 8), 8);
    EXPECT_EQ(ss.hi, 50u);
    EXPECT_EQ(kbSub(range(0, 50, 8), range(0, 60, 8), 8).hi, 255u);

    // Spec trunc reproduces its operand's bounds.
    KnownBits st = kbSpecTrunc(range(10, 300, 32), 8);
    EXPECT_EQ(st.lo, 10u);
    EXPECT_EQ(st.hi, 255u);
    EXPECT_EQ(kbTrunc(range(10, 300, 32), 8).lo, 0u);
}

// ---------------------------------------------------------------------
// Function-level fixed point.
// ---------------------------------------------------------------------

TEST(KnownBitsAnalysis, MaskedArithmeticBounds)
{
    Module m;
    Function *f =
        m.addFunction("f", Type::i32(), {Type::i32(), Type::i32()});
    IRBuilder b(&m);
    b.setInsertPoint(f->addBlock("entry"));
    Instruction *x = b.band(f->arg(0), b.constI32(0xff));
    Instruction *y = b.band(f->arg(1), b.constI32(0x7f));
    Instruction *s = b.add(x, y);
    Instruction *cmp = b.icmp(CmpPred::ULT, x, b.constI32(256));
    b.ret(s);

    KnownBitsAnalysis kb(*f);
    EXPECT_TRUE(kb.fits(x, 8));
    EXPECT_TRUE(kb.fits(y, 7));
    EXPECT_EQ(kb.upperBound(s), 255u + 127u);
    EXPECT_FALSE(kb.fits(s, 8));
    // The compare is decided by the range alone.
    KnownBits c = kb.known(cmp);
    EXPECT_TRUE(c.isConstant());
    EXPECT_EQ(c.lo, 1u);
}

TEST(KnownBitsAnalysis, LoopCounterWidensToTop)
{
    // for (i = 0; i < n; ++i): branch-insensitive analysis cannot
    // bound i, so the widening must terminate at the type range.
    Module m;
    Function *f = test::buildSumTo(m);
    KnownBitsAnalysis kb(*f);
    Instruction *i = f->blocks()[1]->phis()[0];
    EXPECT_EQ(kb.known(i).lo, 0u);
    EXPECT_EQ(kb.known(i).hi, 0xffffffffu);
}

TEST(KnownBitsAnalysis, MaskSurvivesWidening)
{
    // j = phi(0, (j + 3) & 0xff): the interval grows every pass and is
    // widened away, but the and-mask pins the fact at [0, 255].
    Module m;
    Function *f = m.addFunction("f", Type::i32(), {Type::i32()});
    IRBuilder b(&m);
    BasicBlock *entry = f->addBlock("entry");
    BasicBlock *body = f->addBlock("body");
    BasicBlock *exit = f->addBlock("exit");

    b.setInsertPoint(entry);
    b.br(body);

    b.setInsertPoint(body);
    Instruction *j = b.phi(Type::i32(), "j");
    Instruction *step = b.add(j, b.constI32(3));
    Instruction *masked = b.band(step, b.constI32(0xff));
    Instruction *cmp = b.icmp(CmpPred::ULT, masked, f->arg(0));
    b.condBr(cmp, body, exit);
    IRBuilder::addIncoming(j, b.constI32(0), entry);
    IRBuilder::addIncoming(j, masked, body);

    b.setInsertPoint(exit);
    b.ret(j);

    KnownBitsAnalysis kb(*f);
    EXPECT_TRUE(kb.fits(j, 8));
    EXPECT_TRUE(kb.fits(masked, 8));
    // The unmasked step can reach 258: 9 bits, not 8.
    EXPECT_EQ(kb.known(step).upperBoundBits(), 9u);
}

// ---------------------------------------------------------------------
// Randomized property test: every interpreter-observed value must
// respect the static fact of its instruction.
// ---------------------------------------------------------------------

TEST(KnownBitsAnalysis, RandomProgramsRespectStaticBounds)
{
    for (uint64_t seed = 1; seed <= 12; ++seed) {
        std::mt19937_64 rng(seed * 0x9e3779b97f4a7c15ULL);
        auto pick = [&](uint64_t n) { return rng() % n; };

        Module m;
        Function *f =
            m.addFunction("f", Type::i32(), {Type::i32(), Type::i32()});
        IRBuilder b(&m);
        b.setInsertPoint(f->addBlock("entry"));

        std::vector<Value *> pool = {f->arg(0), f->arg(1)};
        Value *last = f->arg(0);
        for (int n = 0; n < 20; ++n) {
            Value *x = pool[pick(pool.size())];
            Value *y = pool[pick(pool.size())];
            Instruction *inst = nullptr;
            switch (pick(10)) {
              case 0: inst = b.add(x, y); break;
              case 1: inst = b.sub(x, y); break;
              case 2: inst = b.mul(x, y); break;
              case 3: inst = b.band(x, y); break;
              case 4: inst = b.bor(x, y); break;
              case 5: inst = b.bxor(x, y); break;
              case 6:
                inst = b.shl(x, b.constI32(pick(32)));
                break;
              case 7:
                inst = b.lshr(x, b.constI32(pick(32)));
                break;
              case 8:
                inst = b.urem(x, b.constI32(1 + pick(1000)));
                break;
              case 9:
                // Round-trip through the slice width.
                inst = b.zext(b.trunc(x, Type::i8()), Type::i32());
                break;
            }
            if (pick(4) == 0)
                pool.push_back(b.constI32(
                    static_cast<uint32_t>(rng())));
            pool.push_back(inst);
            last = inst;
        }
        b.ret(last);

        KnownBitsAnalysis kb(*f);
        Interpreter interp(m);
        size_t checked = 0;
        interp.onAssign = [&](const Instruction *inst, uint64_t v) {
            KnownBits k = kb.known(inst);
            v &= lowMask(inst->type().bits);
            EXPECT_GE(v, k.lo) << "seed " << seed << ": " << k.str();
            EXPECT_LE(v, k.hi) << "seed " << seed << ": " << k.str();
            EXPECT_EQ(v & k.zero, 0u)
                << "seed " << seed << ": " << k.str();
            EXPECT_EQ(v & k.one, k.one)
                << "seed " << seed << ": " << k.str();
            ++checked;
        };
        for (int run = 0; run < 4; ++run) {
            interp.reset();
            interp.run("f", {rng() & 0xffffffffULL,
                             rng() & 0xffffffffULL});
        }
        EXPECT_GT(checked, 0u) << "seed " << seed;
    }
}

} // namespace
} // namespace bitspec
