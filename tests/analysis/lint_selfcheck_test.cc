/**
 * @file
 * Lint self-check over the full MiBench-style suite: squeeze every
 * workload with the static analysis enabled and snapshot the lint
 * verdict tallies. Any change to the known-bits transfer functions,
 * the lint classification rules or the squeezer's candidate admission
 * shows up here as a diff against the baked counts.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <map>
#include <string>

#include "analysis/lint.h"
#include "frontend/irgen.h"
#include "profile/bitwidth_profile.h"
#include "transform/expander.h"
#include "transform/squeezer.h"
#include "workloads/workload.h"

namespace bitspec
{
namespace
{

struct Snapshot
{
    unsigned provenSafe;
    unsigned provenUnsafe;
    unsigned speculative;
    unsigned checksDropped;
    unsigned regionsElided;
    /** Undischarged speculative non-interference sinks. The suite is
     *  clean except rijndael's one genuine two-access gadget: the
     *  MixColumns xtime lookup `xt[a0 ^ a1]` where a0/a1 are loaded
     *  at a transiently-wrapped `st[b]` address (b = c*4; known-bits
     *  cannot bound the widened loop counter c, so neither D3 nor the
     *  D4 in-array downgrade applies). A true positive, kept as the
     *  suite's built-in demonstration that the lint finds the classic
     *  AES table-lookup gadget shape. */
    unsigned specLeaks;
    /** Sinks discharged by D1/D2/D5 (blowfish: the `blocks[blk*2+1]`
     *  store at a transient address — D5 store-queue squash). */
    unsigned leaksDischarged;
};

/** Baked verdict counts per workload (squeeze defaults, seed 0). */
const std::map<std::string, Snapshot> &
expectedSnapshots()
{
    static const std::map<std::string, Snapshot> table = {
        // name              safe unsafe spec dropped elided leak disch
        {"CRC32",            {8, 0, 2, 8, 7, 0, 0}},
        {"FFT",              {11, 0, 16, 11, 6, 0, 0}},
        {"basicmath",        {9, 0, 10, 9, 1, 0, 0}},
        {"bitcount",         {30, 0, 27, 30, 30, 0, 0}},
        {"blowfish",         {5, 0, 4, 5, 3, 0, 1}},
        {"dijkstra",         {24, 0, 22, 24, 24, 0, 0}},
        {"patricia",         {0, 0, 14, 0, 0, 0, 0}},
        {"qsort",            {6, 0, 50, 6, 6, 0, 0}},
        {"rijndael",         {78, 0, 43, 78, 68, 1, 0}},
        {"sha",              {7, 0, 19, 7, 6, 0, 0}},
        {"stringsearch",     {20, 0, 42, 20, 19, 0, 0}},
        {"susan-edges",      {5, 0, 37, 5, 4, 0, 0}},
        {"susan-corners",    {8, 0, 47, 8, 7, 0, 0}},
        {"susan-smoothing",  {5, 0, 32, 5, 3, 0, 0}},
    };
    return table;
}

class LintSelfCheck : public ::testing::TestWithParam<std::string>
{};

TEST_P(LintSelfCheck, VerdictCountsMatchSnapshot)
{
    const Workload &w = getWorkload(GetParam());
    auto mod = compileSource(w.source);
    w.setInput(*mod, 0);
    expandModule(*mod, ExpanderOptions{});

    BitwidthProfile profile;
    profile.profileRun(*mod);
    SqueezeStats st = squeezeModule(*mod, profile, SqueezeOptions{});

    // Elision is bounded by what was proven safe.
    EXPECT_LE(st.checksDropped, st.lintProvenSafe);

    // Re-linting the squeezed module must account for every remaining
    // speculative site: one check finding per site plus one finding
    // per undischarged taint sink, tallies consistent.
    LintReport post = lintModule(*mod);
    EXPECT_EQ(post.findings.size(), post.provenSafe +
                                        post.provenUnsafe +
                                        post.speculative +
                                        post.specLeaks);
    unsigned spec_sites = 0;
    for (const auto &f : mod->functions())
        for (const auto &bb : f->blocks())
            for (const auto &inst : bb->insts())
                spec_sites += inst->isSpeculative() ? 1 : 0;
    EXPECT_EQ(post.findings.size() - post.specLeaks, spec_sites);

    auto it = expectedSnapshots().find(GetParam());
    ASSERT_NE(it, expectedSnapshots().end())
        << "no snapshot for " << GetParam();
    const Snapshot &want = it->second;
    EXPECT_EQ(st.lintProvenSafe, want.provenSafe)
        << GetParam() << " actual {" << st.lintProvenSafe << ", "
        << st.lintProvenUnsafe << ", " << st.lintSpeculative << ", "
        << st.checksDropped << ", " << st.regionsElided << "}";
    EXPECT_EQ(st.lintProvenUnsafe, want.provenUnsafe);
    EXPECT_EQ(st.lintSpeculative, want.speculative);
    EXPECT_EQ(st.checksDropped, want.checksDropped);
    EXPECT_EQ(st.regionsElided, want.regionsElided);
    EXPECT_EQ(st.lintSpecLeaks, want.specLeaks)
        << GetParam() << " pre-elision leaks";
    EXPECT_EQ(st.lintLeaksDischarged, want.leaksDischarged)
        << GetParam() << " pre-elision discharges";
    EXPECT_EQ(post.specLeaks, want.specLeaks)
        << GetParam() << " post-elision leaks";
    EXPECT_EQ(post.leaksDischarged, want.leaksDischarged)
        << GetParam() << " post-elision discharges";
}

std::vector<std::string>
suiteNames()
{
    std::vector<std::string> names;
    for (const Workload &w : mibenchSuite())
        names.push_back(w.name);
    return names;
}

INSTANTIATE_TEST_SUITE_P(Suite, LintSelfCheck,
                         ::testing::ValuesIn(suiteNames()),
                         [](const auto &info) {
                             std::string s = info.param;
                             for (char &c : s)
                                 if (!isalnum(static_cast<unsigned char>(c)))
                                     c = '_';
                             return s;
                         });

} // namespace
} // namespace bitspec
