#include <gtest/gtest.h>

#include "../testutil.h"
#include "analysis/demanded_bits.h"

namespace bitspec
{
namespace
{

/** f(x) = (x & 0xFF) stored to memory: the add feeding the mask only
 *  needs its low 8 bits. */
TEST(DemandedBits, MaskCapsDemand)
{
    Module m;
    Global *g = m.addGlobal("out", 32, 1);
    Function *f = m.addFunction("f", Type::voidTy(), {Type::i32()});
    IRBuilder b(&m);
    BasicBlock *bb = f->addBlock("entry");
    b.setInsertPoint(bb);
    Instruction *sum = b.add(f->arg(0), b.constI32(12345));
    Instruction *masked = b.band(sum, b.constI32(0xff));
    b.store(b.globalAddr(g), masked);
    b.ret();

    DemandedBits db(*f);
    EXPECT_EQ(db.demandedWidth(sum), 8u);
    EXPECT_EQ(db.demandedMask(sum), 0xffu);
    // The mask result can only ever carry its low byte, so even the
    // full-width store demand is capped by the possible bits.
    EXPECT_EQ(db.demandedWidth(masked), 8u);
    EXPECT_EQ(db.demandedMask(masked), 0xffu);
}

TEST(DemandedBits, TruncNarrowsDemand)
{
    Module m;
    Function *f = m.addFunction("f", Type::i8(), {Type::i32()});
    IRBuilder b(&m);
    BasicBlock *bb = f->addBlock("entry");
    b.setInsertPoint(bb);
    Instruction *x = b.mul(f->arg(0), b.constI32(3));
    Instruction *t = b.trunc(x, Type::i8());
    b.ret(t);

    DemandedBits db(*f);
    EXPECT_EQ(db.demandedWidth(x), 8u);
}

TEST(DemandedBits, RotatePatternDemandsFullWidth)
{
    // sha-style rotate: (x << 5) | (x >> 27). All 32 bits demanded.
    Module m;
    Global *g = m.addGlobal("out", 32, 1);
    Function *f = m.addFunction("f", Type::voidTy(), {Type::i32()});
    IRBuilder b(&m);
    BasicBlock *bb = f->addBlock("entry");
    b.setInsertPoint(bb);
    Instruction *x = b.add(f->arg(0), b.constI32(1));
    Instruction *hi = b.shl(x, b.constI32(5));
    Instruction *lo = b.lshr(x, b.constI32(27));
    Instruction *rot = b.bor(hi, lo);
    b.store(b.globalAddr(g), rot);
    b.ret();

    DemandedBits db(*f);
    EXPECT_EQ(db.demandedWidth(x), 32u);
    // The rotate itself still carries all 32 bits...
    EXPECT_EQ(db.demandedWidth(rot), 32u);
    // ...but the funnel halves only ever produce their constant
    // positions: before the possible-bits cap, the or's full-width
    // demand made both intermediates 32 bits wide.
    EXPECT_EQ(db.demandedMask(hi), 0xffffffe0u);
    EXPECT_EQ(db.demandedWidth(lo), 5u);
    EXPECT_EQ(db.demandedMask(lo), 0x1fu);
}

TEST(DemandedBits, PossibleBitsCapZExtAndURem)
{
    Module m;
    Global *g = m.addGlobal("out", 32, 2);
    Function *f = m.addFunction(
        "f", Type::voidTy(), {Type::i8(), Type::i32()});
    IRBuilder b(&m);
    BasicBlock *bb = f->addBlock("entry");
    b.setInsertPoint(bb);
    // zext i8 -> i32 can only populate the low byte.
    Instruction *zx = b.zext(f->arg(0), Type::i32());
    b.store(b.globalAddr(g), zx);
    // x % 10 < 10: at most 4 result bits.
    Instruction *rem = b.urem(f->arg(1), b.constI32(10));
    b.store(b.globalAddr(g), rem);
    b.ret();

    DemandedBits db(*f);
    EXPECT_EQ(db.demandedWidth(zx), 8u);
    EXPECT_EQ(db.demandedMask(zx), 0xffu);
    EXPECT_EQ(db.demandedWidth(rem), 4u);
    EXPECT_EQ(db.demandedMask(rem), 0xfu);
}

TEST(DemandedBits, ShlShiftsDemandDown)
{
    // Only bits 8..15 of (x << 8) are stored after masking: x needs 0..7.
    Module m;
    Global *g = m.addGlobal("out", 32, 1);
    Function *f = m.addFunction("f", Type::voidTy(), {Type::i32()});
    IRBuilder b(&m);
    BasicBlock *bb = f->addBlock("entry");
    b.setInsertPoint(bb);
    Instruction *x = b.add(f->arg(0), b.constI32(1));
    Instruction *sh = b.shl(x, b.constI32(8));
    Instruction *hi = b.band(sh, b.constI32(0xff00));
    b.store(b.globalAddr(g), hi);
    b.ret();

    DemandedBits db(*f);
    EXPECT_EQ(db.demandedMask(x), 0xffu);
}

TEST(DemandedBits, DeadValueHasZeroMask)
{
    Module m;
    Function *f = m.addFunction("f", Type::voidTy(), {Type::i32()});
    IRBuilder b(&m);
    BasicBlock *bb = f->addBlock("entry");
    b.setInsertPoint(bb);
    Instruction *dead = b.add(f->arg(0), b.constI32(1));
    b.ret();

    DemandedBits db(*f);
    EXPECT_EQ(db.demandedMask(dead), 0u);
    EXPECT_EQ(db.demandedWidth(dead), 1u);
}

TEST(DemandedBits, CmpDemandsAllOperandBits)
{
    Module m;
    Global *g = m.addGlobal("out", 8, 1);
    Function *f = m.addFunction("f", Type::voidTy(), {Type::i32()});
    IRBuilder b(&m);
    BasicBlock *bb = f->addBlock("entry");
    b.setInsertPoint(bb);
    Instruction *x = b.add(f->arg(0), b.constI32(1));
    Instruction *c = b.icmp(CmpPred::ULT, x, b.constI32(3));
    Instruction *z = b.zext(c, Type::i8());
    b.store(b.globalAddr(g), z);
    b.ret();

    DemandedBits db(*f);
    EXPECT_EQ(db.demandedWidth(x), 32u);
}

TEST(DemandedBits, PhiPropagatesDemand)
{
    Module m;
    Function *f = test::buildDiamond(m);
    // Narrow the returned phi with a mask to 4 bits; both arms should
    // then demand only 4 bits... via the phi.
    BasicBlock *merge = f->blocks()[3].get();
    Instruction *phi = merge->phis()[0];
    IRBuilder b(&m);
    b.setInsertPoint(merge);
    // Rebuild the tail: mask then ret.
    Instruction *ret = merge->terminator();
    Value *retv = ret->operand(0);
    ASSERT_EQ(retv, phi);
    // Insert mask before terminator.
    auto mask = std::make_unique<Instruction>(Opcode::And, Type::i32());
    mask->addOperand(phi);
    mask->addOperand(m.getConst(Type::i32(), 0xf));
    Instruction *mask_raw =
        merge->insertBeforeTerm(std::move(mask));
    ret->setOperand(0, mask_raw);

    DemandedBits db(*f);
    EXPECT_EQ(db.demandedMask(phi), 0xfu);
    // The adds/muls in the arms inherit the narrow demand.
    Instruction *l = nullptr;
    for (auto &inst : f->blocks()[1]->insts())
        if (inst->op() == Opcode::Add)
            l = inst.get();
    EXPECT_EQ(db.demandedMask(l), 0xfu);
}

} // namespace
} // namespace bitspec
