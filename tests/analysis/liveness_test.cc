#include <gtest/gtest.h>

#include "../testutil.h"
#include "analysis/liveness.h"

namespace bitspec
{
namespace
{

TEST(Liveness, ArgLiveIntoUse)
{
    Module m;
    Function *f = test::buildDiamond(m);
    Liveness lv(*f, false);
    // arg0 is used in entry, left and right.
    EXPECT_TRUE(lv.isLiveIn(f->arg(0), f->blocks()[1].get()));
    EXPECT_TRUE(lv.isLiveIn(f->arg(0), f->blocks()[2].get()));
    // Not live into merge (only the phi is).
    EXPECT_FALSE(lv.isLiveIn(f->arg(0), f->blocks()[3].get()));
}

TEST(Liveness, LoopCarriedValuesLiveAroundLoop)
{
    Module m;
    Function *f = test::buildSumTo(m);
    Liveness lv(*f, false);
    BasicBlock *body = f->blocks()[1].get();
    // i2/s2 feed the phis along the back edge: live-out of body.
    Instruction *s2 = nullptr;
    for (auto &inst : body->insts())
        if (inst->op() == Opcode::Add && !s2)
            s2 = inst.get();
    EXPECT_TRUE(lv.liveOut(body).count(s2));
}

TEST(Liveness, HandlerEdgesExtendLiveness)
{
    // A value used only by the handler must be live throughout the
    // region when SMIR handler edges are enabled (paper Eq. 2).
    Module m;
    Function *f = m.addFunction("g", Type::i32(), {Type::i32()});
    IRBuilder b(&m);
    BasicBlock *entry = f->addBlock("entry");
    BasicBlock *spec = f->addBlock("spec");
    BasicBlock *exit = f->addBlock("exit");
    BasicBlock *handler = f->addBlock("handler");

    b.setInsertPoint(entry);
    Instruction *seed = b.add(f->arg(0), b.constI32(1));
    seed->setName("seed");
    b.br(spec);

    b.setInsertPoint(spec);
    Instruction *dummy = b.add(f->arg(0), b.constI32(2));
    b.br(exit);

    b.setInsertPoint(exit);
    b.ret(dummy);

    b.setInsertPoint(handler);
    b.ret(seed); // Handler consumes `seed`.

    SpecRegion *sr = f->addSpecRegion();
    sr->blocks.push_back(spec);
    sr->handler = handler;

    Liveness without(*f, false);
    EXPECT_FALSE(without.isLiveIn(seed, spec));
    Liveness with(*f, true);
    EXPECT_TRUE(with.isLiveIn(seed, spec));
    EXPECT_TRUE(with.liveOut(entry).count(seed));
}

TEST(Liveness, PhiInputsAttributedToEdges)
{
    Module m;
    Function *f = test::buildDiamond(m);
    Liveness lv(*f, false);
    BasicBlock *left = f->blocks()[1].get();
    BasicBlock *right = f->blocks()[2].get();
    // l is live-out of left (feeds the merge phi), but not of right.
    Instruction *l = nullptr;
    for (auto &inst : left->insts())
        if (inst->op() == Opcode::Add)
            l = inst.get();
    EXPECT_TRUE(lv.liveOut(left).count(l));
    EXPECT_FALSE(lv.liveOut(right).count(l));
}

} // namespace
} // namespace bitspec
