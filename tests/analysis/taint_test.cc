#include <gtest/gtest.h>

#include <vector>

#include "../testutil.h"
#include "analysis/known_bits.h"
#include "analysis/taint.h"
#include "analysis/verifier.h"

namespace bitspec
{
namespace
{

constexpr Taint C = Taint::Clean;
constexpr Taint T = Taint::Transient;
constexpr Taint S = Taint::Secret;

// ---------------------------------------------------------------------
// Golden per-opcode transfer tests (no IR), mirroring the kb* golden
// tests in known_bits_test.cc.
// ---------------------------------------------------------------------

TEST(Taint, JoinIsMax)
{
    EXPECT_EQ(taintJoin(C, C), C);
    EXPECT_EQ(taintJoin(C, T), T);
    EXPECT_EQ(taintJoin(T, C), T);
    EXPECT_EQ(taintJoin(T, S), S);
    EXPECT_EQ(taintJoin(S, T), S);
    EXPECT_EQ(taintJoin(S, S), S);

    EXPECT_STREQ(taintName(C), "clean");
    EXPECT_STREQ(taintName(T), "transient");
    EXPECT_STREQ(taintName(S), "secret");
}

TEST(Taint, ArithmeticJoinsOperands)
{
    // Pure dataflow ops propagate the join of their operand taints:
    // arithmetic on a wrapped value is still a pure function of
    // committed state.
    EXPECT_EQ(taintTransfer(Opcode::Add, {C, C}), C);
    EXPECT_EQ(taintTransfer(Opcode::Add, {C, T}), T);
    EXPECT_EQ(taintTransfer(Opcode::Xor, {T, S}), S);
    EXPECT_EQ(taintTransfer(Opcode::Mul, {S, C}), S);
    EXPECT_EQ(taintTransfer(Opcode::Shl, {T, T}), T);
    EXPECT_EQ(taintTransfer(Opcode::Trunc, {T}), T);
    EXPECT_EQ(taintTransfer(Opcode::ZExt, {S}), S);
    EXPECT_EQ(taintTransfer(Opcode::ICmp, {C, T}), T);
    EXPECT_EQ(taintTransfer(Opcode::Select, {C, T, S}), S);
    EXPECT_EQ(taintTransfer(Opcode::Phi, {T, C}), T);
}

TEST(Taint, LoadRaisesAnyTaintedAddressToSecret)
{
    // Load is the only taint-*raising* op: memory read at an address
    // the committed path never computes yields contents it never
    // reads. (The D4 in-array downgrade is the caller's job; the
    // pure transfer is maximally cautious.)
    EXPECT_EQ(taintTransfer(Opcode::Load, {C}), C);
    EXPECT_EQ(taintTransfer(Opcode::Load, {T}), S);
    EXPECT_EQ(taintTransfer(Opcode::Load, {S}), S);
    EXPECT_EQ(taintTransfer(Opcode::Load, {}), C);
}

TEST(Taint, EffectsAndTerminatorsProduceNoTaint)
{
    // Void-result ops define nothing; the sink reasoning for their
    // operands lives in taintFunction, not the transfer.
    EXPECT_EQ(taintTransfer(Opcode::Store, {S, S}), C);
    EXPECT_EQ(taintTransfer(Opcode::Output, {S}), C);
    EXPECT_EQ(taintTransfer(Opcode::Br, {}), C);
    EXPECT_EQ(taintTransfer(Opcode::CondBr, {T}), C);
    EXPECT_EQ(taintTransfer(Opcode::Ret, {S}), C);
    EXPECT_EQ(taintTransfer(Opcode::Unreachable, {}), C);
}

// ---------------------------------------------------------------------
// Function-level sweeps on a hand-built speculative region.
// ---------------------------------------------------------------------

/**
 * Deliberately-leaking speculative function (the two-access gadget):
 *
 *   entry: br spec
 *   spec:  t    = trunc!spec a         -> root, Transient
 *          ta   = zext t               -> Transient address
 *          sec  = load i8 [ta]         -> no global in range: Secret
 *          sa   = zext sec             -> Secret address
 *          leak = load i8 [sa]         -> SecretLoad, undischarged
 *          st0  = store [sa], 1        -> StoreAddr/Secret, undischarged
 *          out  sa                     -> TaintedOut, undischarged
 *          d1   = store [ta & 0], 1    -> constant addr, D1 discharged
 *          d5   = store [ta], 1        -> Transient addr, D5 discharged
 *          d2   = load i8 [sa & 0x3f]  -> one cache line, D2 discharged
 *          br exit
 *   hand:  br exit
 *   exit:  ret 0
 */
struct LeakFixture
{
    Module m;
    Function *f;
    Instruction *t, *sec, *leak, *st0, *outp, *d1, *d5, *d2;

    LeakFixture()
    {
        f = m.addFunction("g", Type::i32(), {Type::i32()});
        IRBuilder b(&m);
        BasicBlock *entry = f->addBlock("entry");
        BasicBlock *spec = f->addBlock("spec");
        BasicBlock *hand = f->addBlock("hand");
        BasicBlock *exit = f->addBlock("exit");

        b.setInsertPoint(entry);
        b.br(spec);

        b.setInsertPoint(spec);
        t = b.trunc(f->arg(0), Type::i8());
        t->setSpeculative(true);
        t->setSpecOrigBits(32);
        Instruction *ta = b.zext(t, Type::i32());
        sec = b.load(Type::i8(), ta);
        Instruction *sa = b.zext(sec, Type::i32());
        b.setCurLine(7);
        leak = b.load(Type::i8(), sa);
        b.setCurLine(0);
        st0 = b.store(sa, b.constInt(Type::i8(), 1));
        outp = b.output(sa);
        d1 = b.store(b.band(ta, b.constI32(0)),
                     b.constInt(Type::i8(), 1));
        d5 = b.store(ta, b.constInt(Type::i8(), 1));
        d2 = b.load(Type::i8(), b.band(sa, b.constI32(0x3f)));
        b.br(exit);

        b.setInsertPoint(hand);
        b.br(exit);

        b.setInsertPoint(exit);
        b.ret(b.constI32(0));

        SpecRegion *sr = f->addSpecRegion();
        sr->id = 0;
        sr->blocks.push_back(spec);
        sr->handler = hand;
    }
};

const TaintSink *
sinkFor(const RegionTaintResult &r, const Instruction *inst)
{
    for (const TaintSink &s : r.sinks)
        if (s.inst == inst)
            return &s;
    ADD_FAILURE() << "no sink for instruction";
    return nullptr;
}

TEST(TaintFunction, FlagsTheTwoAccessGadget)
{
    LeakFixture fx;
    ASSERT_TRUE(verifyFunction(*fx.f).empty());

    KnownBitsAnalysis kb(*fx.f);
    TaintReport rep = taintFunction(*fx.f, kb);
    ASSERT_EQ(rep.regions.size(), 1u);
    const RegionTaintResult &r = rep.regions[0];
    EXPECT_EQ(r.regionId, 0);

    // Three genuine leaks, three discharged sinks.
    EXPECT_EQ(rep.leakSites, 3u);
    EXPECT_EQ(rep.dischargedSites, 3u);
    EXPECT_EQ(r.leaks, 3u);
    EXPECT_EQ(r.discharged, 3u);
    ASSERT_EQ(r.sinks.size(), 6u);

    const TaintSink *s = sinkFor(r, fx.leak);
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->kind, TaintSinkKind::SecretLoad);
    EXPECT_EQ(s->taint, Taint::Secret);
    EXPECT_FALSE(s->discharged);
    EXPECT_EQ(s->srcLine, 7);

    s = sinkFor(r, fx.st0);
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->kind, TaintSinkKind::StoreAddr);
    EXPECT_EQ(s->taint, Taint::Secret);
    EXPECT_FALSE(s->discharged);

    s = sinkFor(r, fx.outp);
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->kind, TaintSinkKind::TaintedOut);
    EXPECT_FALSE(s->discharged);

    // D1: the masked-to-zero store address is provably constant.
    s = sinkFor(r, fx.d1);
    ASSERT_NE(s, nullptr);
    EXPECT_TRUE(s->discharged);
    EXPECT_NE(s->why.find("D1"), std::string::npos);

    // D5: the transient-address store squashes in the store queue.
    s = sinkFor(r, fx.d5);
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->taint, Taint::Transient);
    EXPECT_TRUE(s->discharged);
    EXPECT_NE(s->why.find("D5"), std::string::npos);

    // D2: the masked secret load stays inside one cache line.
    s = sinkFor(r, fx.d2);
    ASSERT_NE(s, nullptr);
    EXPECT_TRUE(s->discharged);
    EXPECT_NE(s->why.find("D2"), std::string::npos);

    // Sinks are numbered in block instruction order.
    for (size_t i = 0; i < r.sinks.size(); ++i)
        EXPECT_EQ(r.sinks[i].siteIndex, static_cast<int>(i));

    // With no global covering the wrapped range, the first-order
    // load's result is Secret, not declassified (D4 inapplicable).
    EXPECT_GE(rep.secretDefs, 2u); // sec and sa at least.
    EXPECT_GE(rep.transientDefs, 2u); // t and ta at least.

    // The tallies are written back into the region metadata that the
    // backend threads into MIR.
    EXPECT_EQ(fx.f->specRegions()[0]->leakSites, 3);
    EXPECT_EQ(fx.f->specRegions()[0]->leaksDischarged, 3);
}

TEST(TaintFunction, ProvenSafeRootSeedsNoTaint)
{
    // D3: a speculative site the lint proved can never fire has no
    // misspeculating path — with the root suppressed the whole region
    // sweeps clean.
    LeakFixture fx;
    KnownBitsAnalysis kb(*fx.f);
    TaintReport rep = taintFunction(*fx.f, kb, {fx.t});
    EXPECT_EQ(rep.leakSites, 0u);
    EXPECT_EQ(rep.dischargedSites, 0u);
    EXPECT_EQ(rep.transientDefs, 0u);
    EXPECT_EQ(rep.secretDefs, 0u);
    ASSERT_EQ(rep.regions.size(), 1u);
    EXPECT_TRUE(rep.regions[0].sinks.empty());
}

TEST(TaintFunction, InArrayTransientReadIsDeclassified)
{
    // D4: when a global provably covers the wrapped address range the
    // first-order load is the paper's own mechanism — its result is
    // downgraded to Transient and the second access at it is only a
    // transient-address load, not a SecretLoad sink.
    Module m;
    Global *tab = m.addGlobal("tab", 8, 256);
    Global *tab2 = m.addGlobal("tab2", 8, 256);
    m.layoutGlobals();

    Function *f = m.addFunction("h", Type::i32(), {Type::i32()});
    IRBuilder b(&m);
    BasicBlock *entry = f->addBlock("entry");
    BasicBlock *spec = f->addBlock("spec");
    BasicBlock *hand = f->addBlock("hand");
    BasicBlock *exit = f->addBlock("exit");

    b.setInsertPoint(entry);
    b.br(spec);

    b.setInsertPoint(spec);
    Instruction *t = b.trunc(f->arg(0), Type::i8());
    t->setSpeculative(true);
    t->setSpecOrigBits(32);
    // tab[t]: address range [base, base+255] stays inside tab.
    Instruction *ta =
        b.add(b.zext(t, Type::i32()),
              b.constI32(tab->address()));
    Instruction *ld = b.load(Type::i8(), ta);
    // tab2[tab[t]]: transient-address second access, accepted.
    Instruction *sa =
        b.add(b.zext(ld, Type::i32()),
              b.constI32(tab2->address()));
    Instruction *ld2 = b.load(Type::i8(), sa);
    b.output(b.zext(ld2, Type::i32())); // Transient out: still a sink.
    b.br(exit);

    b.setInsertPoint(hand);
    b.br(exit);

    b.setInsertPoint(exit);
    b.ret(b.constI32(0));

    SpecRegion *sr = f->addSpecRegion();
    sr->id = 0;
    sr->blocks.push_back(spec);
    sr->handler = hand;

    ASSERT_TRUE(verifyFunction(*f).empty());
    KnownBitsAnalysis kb(*f);
    TaintReport rep = taintFunction(*f, kb);

    // No SecretLoad anywhere: both loads carry Transient addresses.
    EXPECT_EQ(rep.secretDefs, 0u);
    EXPECT_GT(rep.transientDefs, 0u);
    ASSERT_EQ(rep.regions.size(), 1u);
    for (const TaintSink &s : rep.regions[0].sinks)
        EXPECT_NE(s.kind, TaintSinkKind::SecretLoad);

    // The transient output is the one (defence-in-depth) leak.
    EXPECT_EQ(rep.leakSites, 1u);
    ASSERT_EQ(rep.regions[0].sinks.size(), 1u);
    EXPECT_EQ(rep.regions[0].sinks[0].kind, TaintSinkKind::TaintedOut);
    EXPECT_EQ(rep.regions[0].sinks[0].taint, Taint::Transient);
}

TEST(TaintFunction, CleanRegionReportsNothing)
{
    // A speculative region whose transient values feed only
    // arithmetic (no memory, no output) is leak-free by construction.
    Module m;
    Function *f = m.addFunction("k", Type::i32(), {Type::i32()});
    IRBuilder b(&m);
    BasicBlock *entry = f->addBlock("entry");
    BasicBlock *spec = f->addBlock("spec");
    BasicBlock *hand = f->addBlock("hand");
    BasicBlock *exit = f->addBlock("exit");

    b.setInsertPoint(entry);
    b.br(spec);

    b.setInsertPoint(spec);
    Instruction *t = b.trunc(f->arg(0), Type::i8());
    t->setSpeculative(true);
    t->setSpecOrigBits(32);
    b.mul(b.zext(t, Type::i32()), b.constI32(5));
    b.br(exit);

    b.setInsertPoint(hand);
    b.br(exit);

    b.setInsertPoint(exit);
    b.ret(b.constI32(0));

    SpecRegion *sr = f->addSpecRegion();
    sr->id = 3;
    sr->blocks.push_back(spec);
    sr->handler = hand;

    ASSERT_TRUE(verifyFunction(*f).empty());
    KnownBitsAnalysis kb(*f);
    TaintReport rep = taintFunction(*f, kb);
    EXPECT_EQ(rep.leakSites, 0u);
    EXPECT_EQ(rep.dischargedSites, 0u);
    EXPECT_EQ(rep.transientDefs, 3u); // t, its zext, the mul.
    EXPECT_EQ(rep.secretDefs, 0u);
    ASSERT_EQ(rep.regions.size(), 1u);
    EXPECT_EQ(rep.regions[0].regionId, 3);
    EXPECT_TRUE(rep.regions[0].sinks.empty());
    EXPECT_EQ(f->specRegions()[0]->leakSites, 0);
}

} // namespace
} // namespace bitspec
