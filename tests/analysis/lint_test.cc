#include <gtest/gtest.h>

#include <algorithm>

#include "../testutil.h"
#include "analysis/lint.h"
#include "analysis/verifier.h"

namespace bitspec
{
namespace
{

/**
 * Hand-built speculative function with one region:
 *
 *   entry:  x = a & 0xff; big = a | 0x100; br spec
 *   spec:   ts = trunc!spec x    -> proven safe   (x <= 255)
 *           tu = trunc!spec big  -> proven unsafe (big >= 256)
 *           tm = trunc!spec a    -> speculative   (a unbounded)
 *           ld = load!spec i8    -> speculative   (memory unbounded)
 *           ex = trunc x         -> exact slice, no check
 *           br exit
 *   hand:   br exit              (region handler)
 *   exit:   ret 0
 */
struct SpecFixture
{
    Module m;
    Function *f;
    Instruction *ts, *tu, *tm, *ld;

    explicit SpecFixture(bool unsafe_sites = true)
    {
        f = m.addFunction("f", Type::i32(), {Type::i32()});
        IRBuilder b(&m);
        BasicBlock *entry = f->addBlock("entry");
        BasicBlock *spec = f->addBlock("spec");
        BasicBlock *hand = f->addBlock("hand");
        BasicBlock *exit = f->addBlock("exit");

        b.setInsertPoint(entry);
        Instruction *x = b.band(f->arg(0), b.constI32(0xff));
        Instruction *big = b.bor(f->arg(0), b.constI32(0x100));
        b.br(spec);

        b.setInsertPoint(spec);
        ts = b.trunc(x, Type::i8());
        ts->setSpeculative(true);
        ts->setSpecOrigBits(32);
        tu = tm = ld = nullptr;
        if (unsafe_sites) {
            b.setCurLine(42);
            tu = b.trunc(big, Type::i8());
            tu->setSpeculative(true);
            tu->setSpecOrigBits(32);
            b.setCurLine(0);
            tm = b.trunc(f->arg(0), Type::i8());
            tm->setSpeculative(true);
            tm->setSpecOrigBits(32);
            ld = b.load(Type::i8(), b.constI32(64));
            ld->setSpeculative(true);
            ld->setSpecOrigBits(8);
            b.trunc(x, Type::i8()); // Exact slice, no check.
        }
        b.br(exit);

        b.setInsertPoint(hand);
        b.br(exit);

        b.setInsertPoint(exit);
        b.ret(b.constI32(0));

        SpecRegion *sr = f->addSpecRegion();
        sr->blocks.push_back(spec);
        sr->handler = hand;
    }
};

LintVerdict
verdictOf(const LintReport &r, const Instruction *inst)
{
    for (const LintFinding &fd : r.findings)
        if (fd.inst == inst)
            return fd.verdict;
    ADD_FAILURE() << "no finding for instruction";
    return LintVerdict::Speculative;
}

TEST(Lint, ClassifiesEverySpeculativeSite)
{
    SpecFixture fx;
    ASSERT_TRUE(verifyFunction(*fx.f).empty());

    LintReport r = lintFunction(*fx.f);
    ASSERT_EQ(r.findings.size(), 4u);
    EXPECT_EQ(r.provenSafe, 1u);
    EXPECT_EQ(r.provenUnsafe, 1u);
    EXPECT_EQ(r.speculative, 2u);
    EXPECT_EQ(r.exactSlices, 1u);

    EXPECT_EQ(verdictOf(r, fx.ts), LintVerdict::ProvenSafe);
    EXPECT_EQ(verdictOf(r, fx.tu), LintVerdict::ProvenUnsafe);
    EXPECT_EQ(verdictOf(r, fx.tm), LintVerdict::Speculative);
    EXPECT_EQ(verdictOf(r, fx.ld), LintVerdict::Speculative);

    // Diagnostics carry location and reason.
    for (const LintFinding &fd : r.findings) {
        if (fd.inst == fx.tu) {
            EXPECT_EQ(fd.srcLine, 42);
            EXPECT_NE(fd.message.find("line 42"), std::string::npos);
            EXPECT_NE(fd.message.find("proven-unsafe"),
                      std::string::npos);
            EXPECT_NE(fd.message.find("f:spec"), std::string::npos);
        }
    }
}

TEST(Lint, ApplyDropsOnlyProvenSafeChecks)
{
    SpecFixture fx;
    LintReport r = lintFunction(*fx.f);
    LintElisionStats st = applyLintVerdicts(*fx.f, r);

    EXPECT_EQ(st.checksDropped, 1u);
    EXPECT_EQ(st.regionsRemoved, 0u); // Other checks keep the region.
    EXPECT_FALSE(fx.ts->isSpeculative());
    EXPECT_TRUE(fx.tu->isSpeculative());
    EXPECT_TRUE(fx.tm->isSpeculative());
    EXPECT_TRUE(fx.ld->isSpeculative());
    ASSERT_EQ(fx.f->specRegions().size(), 1u);
    EXPECT_TRUE(verifyFunction(*fx.f).empty());

    // Idempotent: re-applying the same report changes nothing.
    LintElisionStats again = applyLintVerdicts(*fx.f, r);
    EXPECT_EQ(again.checksDropped, 0u);
}

TEST(Lint, ElidingLastCheckRemovesRegionAndHandler)
{
    SpecFixture fx(/*unsafe_sites=*/false);
    ASSERT_TRUE(verifyFunction(*fx.f).empty());

    LintReport r = lintFunction(*fx.f);
    ASSERT_EQ(r.findings.size(), 1u);
    EXPECT_EQ(r.provenSafe, 1u);

    LintElisionStats st = applyLintVerdicts(*fx.f, r);
    EXPECT_EQ(st.checksDropped, 1u);
    EXPECT_EQ(st.regionsRemoved, 1u);
    EXPECT_TRUE(fx.f->specRegions().empty());

    // The orphaned handler died with the unreachable-block sweep.
    bool handler_alive = false;
    for (const auto &bb : fx.f->blocks())
        handler_alive |= bb->name() == "hand";
    EXPECT_FALSE(handler_alive);
    EXPECT_TRUE(verifyFunction(*fx.f).empty());
}

} // namespace
} // namespace bitspec
