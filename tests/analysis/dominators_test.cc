#include <gtest/gtest.h>

#include "../testutil.h"
#include "analysis/dominators.h"

namespace bitspec
{
namespace
{

TEST(Dominators, Diamond)
{
    Module m;
    Function *f = test::buildDiamond(m);
    DomTree dt(*f);
    BasicBlock *entry = f->blocks()[0].get();
    BasicBlock *left = f->blocks()[1].get();
    BasicBlock *right = f->blocks()[2].get();
    BasicBlock *merge = f->blocks()[3].get();

    EXPECT_EQ(dt.idom(merge), entry);
    EXPECT_TRUE(dt.dominates(entry, merge));
    EXPECT_FALSE(dt.dominates(left, merge));
    EXPECT_FALSE(dt.dominates(left, right));
    EXPECT_TRUE(dt.dominates(left, left));
}

TEST(Dominators, Loop)
{
    Module m;
    Function *f = test::buildSumTo(m);
    DomTree dt(*f);
    BasicBlock *entry = f->blocks()[0].get();
    BasicBlock *body = f->blocks()[1].get();
    BasicBlock *exit = f->blocks()[2].get();
    EXPECT_EQ(dt.idom(body), entry);
    EXPECT_EQ(dt.idom(exit), body);
    EXPECT_TRUE(dt.dominates(body, exit));
}

TEST(Dominators, UnreachableBlockNotInTree)
{
    Module m;
    Function *f = test::buildSumTo(m);
    BasicBlock *dead = f->addBlock("dead");
    IRBuilder b(&m);
    b.setInsertPoint(dead);
    b.ret(m.getConst(Type::i32(), 0));
    DomTree dt(*f);
    EXPECT_FALSE(dt.isReachable(dead));
    EXPECT_FALSE(dt.dominates(dead, f->entry()));
}

TEST(Dominators, DominatesUseSameBlock)
{
    Module m;
    Function *f = test::buildSumTo(m);
    DomTree dt(*f);
    BasicBlock *body = f->blocks()[1].get();
    // s2 = add s, i;  i2 = add i, 1 -- s2 is defined before i2.
    Instruction *s2 = nullptr, *i2 = nullptr;
    for (auto &inst : body->insts()) {
        if (inst->op() == Opcode::Add) {
            if (!s2)
                s2 = inst.get();
            else
                i2 = inst.get();
        }
    }
    ASSERT_NE(i2, nullptr);
    EXPECT_TRUE(dt.dominatesUse(s2, i2, 0));
    EXPECT_FALSE(dt.dominatesUse(i2, s2, 0));
}

TEST(Dominators, PhiUsesCheckedAtIncomingEdge)
{
    Module m;
    Function *f = test::buildSumTo(m);
    DomTree dt(*f);
    BasicBlock *body = f->blocks()[1].get();
    Instruction *i_phi = body->phis()[0];
    // The back-edge input (i2, defined in body) reaches the phi via the
    // body edge: dominance holds at the edge, not at the phi itself.
    Instruction *i2 = nullptr;
    for (auto &inst : body->insts())
        if (inst->op() == Opcode::Add)
            i2 = inst.get(); // Last add is i2.
    for (size_t k = 0; k < i_phi->numOperands(); ++k) {
        if (i_phi->operand(k) == i2) {
            EXPECT_TRUE(dt.dominatesUse(i2, i_phi, k));
        }
    }
}

} // namespace
} // namespace bitspec
