#include <gtest/gtest.h>

#include "../testutil.h"
#include "analysis/cfg.h"

namespace bitspec
{
namespace
{

TEST(Cfg, ReversePostOrderStartsAtEntry)
{
    Module m;
    Function *f = test::buildDiamond(m);
    auto rpo = reversePostOrder(*f);
    ASSERT_EQ(rpo.size(), 4u);
    EXPECT_EQ(rpo.front(), f->entry());
    // Merge comes after both branches.
    EXPECT_EQ(rpo.back()->name(), "merge");
}

TEST(Cfg, RpoVisitsLoop)
{
    Module m;
    Function *f = test::buildSumTo(m);
    auto rpo = reversePostOrder(*f);
    EXPECT_EQ(rpo.size(), 3u);
}

TEST(Cfg, PredecessorMapWithHandlerEdges)
{
    Module m;
    Function *f = test::buildSumTo(m);
    BasicBlock *body = f->blocks()[1].get();
    BasicBlock *handler = f->addBlock("handler");
    IRBuilder b(&m);
    b.setInsertPoint(handler);
    b.ret(m.getConst(Type::i32(), 0));
    SpecRegion *sr = f->addSpecRegion();
    sr->blocks.push_back(body);
    sr->handler = handler;

    auto plain = predecessorMap(*f, false);
    EXPECT_EQ(plain[handler].size(), 0u);
    auto smir = predecessorMap(*f, true);
    ASSERT_EQ(smir[handler].size(), 1u);
    EXPECT_EQ(smir[handler][0], body);
}

TEST(Cfg, IdempotenceQueries)
{
    Module m;
    Function *f = m.addFunction("g", Type::voidTy(), {});
    Function *callee = m.addFunction("h", Type::voidTy(), {});
    Global *g = m.addGlobal("buf", 32, 4);
    IRBuilder b(&m);

    BasicBlock *pure = f->addBlock("pure");
    b.setInsertPoint(pure);
    Instruction *v = b.load(Type::i32(), b.globalAddr(g));
    b.add(v, b.constI32(1));
    b.ret();
    EXPECT_TRUE(isIdempotent(*pure));

    // Stores-only blocks re-execute safely (Eq. 4).
    BasicBlock *stores = f->addBlock("stores");
    b.setInsertPoint(stores);
    b.store(b.globalAddr(g), b.constI32(1));
    b.ret();
    EXPECT_TRUE(isIdempotent(*stores));

    // Mixed load/store blocks do not (possible WAR dependency).
    BasicBlock *mixed = f->addBlock("mixed");
    b.setInsertPoint(mixed);
    Instruction *lv = b.load(Type::i32(), b.globalAddr(g));
    b.store(b.globalAddr(g), lv);
    b.ret();
    EXPECT_FALSE(isIdempotent(*mixed));

    BasicBlock *calls = f->addBlock("calls");
    b.setInsertPoint(calls);
    b.call(callee, {});
    b.ret();
    EXPECT_FALSE(isIdempotent(*calls));

    BasicBlock *io = f->addBlock("io");
    b.setInsertPoint(io);
    b.output(b.constI32(1));
    b.ret();
    EXPECT_FALSE(isIdempotent(*io));
}

TEST(Cfg, RemoveUnreachableKeepsHandlers)
{
    Module m;
    Function *f = test::buildSumTo(m);
    BasicBlock *body = f->blocks()[1].get();
    IRBuilder b(&m);

    BasicBlock *dead = f->addBlock("dead");
    b.setInsertPoint(dead);
    b.ret(m.getConst(Type::i32(), 0));

    BasicBlock *handler = f->addBlock("handler");
    b.setInsertPoint(handler);
    b.ret(m.getConst(Type::i32(), 1));
    SpecRegion *sr = f->addSpecRegion();
    sr->blocks.push_back(body);
    sr->handler = handler;

    removeUnreachableBlocks(*f);
    bool saw_dead = false, saw_handler = false;
    for (auto &bb : f->blocks()) {
        saw_dead |= (bb.get() == dead);
        saw_handler |= (bb.get() == handler);
    }
    EXPECT_FALSE(saw_dead);
    EXPECT_TRUE(saw_handler);
}

TEST(Cfg, SplitEdgeUpdatesPhis)
{
    Module m;
    Function *f = test::buildDiamond(m);
    BasicBlock *left = f->blocks()[1].get();
    BasicBlock *merge = f->blocks()[3].get();
    BasicBlock *mid = splitEdge(*f, left, merge);

    EXPECT_EQ(left->successors()[0], mid);
    EXPECT_EQ(mid->successors()[0], merge);
    Instruction *phi = merge->phis()[0];
    bool incoming_mid = false;
    for (BasicBlock *in : phi->blockOperands())
        incoming_mid |= (in == mid);
    EXPECT_TRUE(incoming_mid);
}

} // namespace
} // namespace bitspec
