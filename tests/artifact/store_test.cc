/**
 * @file
 * ArtifactStore tests: publish/load roundtrip, every corruption class
 * (truncation, CRC flip, stale schema, payload flip, key collision)
 * degrading to a clean recompile with the invalid counter bumped, the
 * concurrent-writer race, the LRU size budget, and the runner-level
 * disk tier (cross-"process" warm start via a second runner).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <thread>
#include <vector>

#include "artifact/store.h"
#include "core/experiment.h"
#include "core/system.h"
#include "support/hash.h"
#include "workloads/workload.h"

namespace bitspec
{
namespace
{

namespace fs = std::filesystem;
using artifact::ArtifactStore;
using artifact::SystemSnapshot;

/** Scoped store directory removed at scope exit. */
struct TempDir
{
    TempDir()
    {
        path = (fs::temp_directory_path() /
                ("bitspec_store_" +
                 std::to_string(static_cast<unsigned long long>(
                     reinterpret_cast<uintptr_t>(this)))))
                   .string();
        fs::remove_all(path);
    }
    ~TempDir() { fs::remove_all(path); }
    std::string path;
};

SystemSnapshot
compileSnapshot(const std::string &workload, const std::string &key)
{
    const Workload &w = getWorkload(workload);
    SystemConfig cfg = SystemConfig::bitspec();
    System sys(w.source, cfg, [&](Module &m) { w.setInput(m, 0); });
    return sys.makeSnapshot(key);
}

Hash128
keyOf(const std::string &s)
{
    Hash128Builder h;
    h.update(s);
    return h.digest();
}

/** Overwrite @p len bytes at @p off in @p path. */
void
patchFile(const std::string &path, size_t off, const void *bytes,
          size_t len)
{
    std::fstream f(path,
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good()) << path;
    f.seekp(static_cast<std::streamoff>(off));
    f.write(static_cast<const char *>(bytes),
            static_cast<std::streamsize>(len));
    ASSERT_TRUE(f.good()) << path;
}

void
flipByte(const std::string &path, size_t off)
{
    std::fstream f(path,
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good()) << path;
    f.seekg(static_cast<std::streamoff>(off));
    char c = 0;
    f.read(&c, 1);
    c = static_cast<char>(c ^ 0x5a);
    f.seekp(static_cast<std::streamoff>(off));
    f.write(&c, 1);
    ASSERT_TRUE(f.good()) << path;
}

TEST(ArtifactStore, PublishLoadRoundTrips)
{
    TempDir tmp;
    ArtifactStore store(tmp.path, 64ull << 20);
    const std::string canonical = "CRC32;roundtrip";
    SystemSnapshot snap = compileSnapshot("CRC32", canonical);
    const Hash128 key = keyOf(canonical);

    EXPECT_FALSE(store.load(key, canonical).has_value());
    EXPECT_EQ(store.stats().misses, 1u);

    EXPECT_TRUE(store.publish(key, snap));
    EXPECT_EQ(store.stats().writes, 1u);
    EXPECT_TRUE(fs::exists(store.pathFor(key)));
    EXPECT_GT(store.diskBytes(), 0u);

    auto back = store.load(key, canonical);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(store.stats().hits, 1u);
    EXPECT_EQ(back->key, canonical);
    EXPECT_EQ(back->program.flat.size(), snap.program.flat.size());
    EXPECT_EQ(back->globals.size(), snap.globals.size());
    EXPECT_EQ(back->profiledIrSteps, snap.profiledIrSteps);
    EXPECT_EQ(store.stats().invalid, 0u);
}

TEST(ArtifactStore, CorruptionClassesDegradeToMiss)
{
    const std::string canonical = "bitcount;corruption";
    SystemSnapshot snap = compileSnapshot("bitcount", canonical);
    const Hash128 key = keyOf(canonical);

    struct Case
    {
        const char *name;
        std::function<void(const std::string &)> corrupt;
    };
    const uint64_t bogus_schema = 0x1122334455667788ull;
    std::vector<Case> cases = {
        {"truncated-header",
         [](const std::string &p) { fs::resize_file(p, 10); }},
        {"truncated-payload",
         [](const std::string &p) {
             fs::resize_file(p, fs::file_size(p) - 7);
         }},
        {"flipped-crc",
         [](const std::string &p) {
             flipByte(p, ArtifactStore::kCrcOffset);
         }},
        {"flipped-payload-byte",
         [](const std::string &p) {
             flipByte(p, ArtifactStore::kHeaderBytes + 21);
         }},
        {"wrong-schema-hash",
         [&](const std::string &p) {
             patchFile(p, ArtifactStore::kSchemaOffset, &bogus_schema,
                       sizeof(bogus_schema));
         }},
        {"bad-magic",
         [](const std::string &p) {
             flipByte(p, ArtifactStore::kMagicOffset);
         }},
        {"empty-file",
         [](const std::string &p) { fs::resize_file(p, 0); }},
    };

    for (size_t i = 0; i < cases.size(); ++i) {
        TempDir tmp;
        ArtifactStore store(tmp.path, 64ull << 20);
        ASSERT_TRUE(store.publish(key, snap)) << cases[i].name;
        cases[i].corrupt(store.pathFor(key));

        EXPECT_FALSE(store.load(key, canonical).has_value())
            << cases[i].name;
        EXPECT_EQ(store.stats().invalid, 1u) << cases[i].name;
        // The corrupt file is discarded, so the next lookup is a
        // clean miss and a republish round-trips again.
        EXPECT_FALSE(fs::exists(store.pathFor(key))) << cases[i].name;
        EXPECT_FALSE(store.load(key, canonical).has_value())
            << cases[i].name;
        EXPECT_EQ(store.stats().misses, 1u) << cases[i].name;
        ASSERT_TRUE(store.publish(key, snap)) << cases[i].name;
        EXPECT_TRUE(store.load(key, canonical).has_value())
            << cases[i].name;
    }
}

TEST(ArtifactStore, HashCollisionDegradesToMiss)
{
    TempDir tmp;
    ArtifactStore store(tmp.path, 64ull << 20);
    const std::string canonical = "CRC32;collision";
    SystemSnapshot snap = compileSnapshot("CRC32", canonical);
    const Hash128 key = keyOf(canonical);
    ASSERT_TRUE(store.publish(key, snap));

    // Same 128-bit key, different canonical key: the embedded-key
    // comparison must refuse to serve the artifact.
    EXPECT_FALSE(store.load(key, "CRC32;other-key").has_value());
    EXPECT_EQ(store.stats().invalid, 1u);
}

TEST(ArtifactStore, ConcurrentWritersOneWins)
{
    TempDir tmp;
    ArtifactStore store(tmp.path, 64ull << 20);
    const std::string canonical = "bitcount;race";
    SystemSnapshot snap = compileSnapshot("bitcount", canonical);
    const Hash128 key = keyOf(canonical);

    constexpr unsigned kWriters = 8;
    std::vector<std::thread> threads;
    threads.reserve(kWriters);
    for (unsigned i = 0; i < kWriters; ++i)
        threads.emplace_back(
            [&store, &key, &snap] { store.publish(key, snap); });
    for (std::thread &t : threads)
        t.join();

    // Whatever the interleaving, the artifact is on disk and valid,
    // and every publish either wrote or yielded — none crashed or
    // tore the file.
    EXPECT_EQ(store.stats().writes + store.stats().writeSkips,
              static_cast<uint64_t>(kWriters));
    EXPECT_GE(store.stats().writes, 1u);
    auto back = store.load(key, canonical);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->key, canonical);
    EXPECT_EQ(store.stats().invalid, 0u);
}

TEST(ArtifactStore, LruGcEnforcesBudgetAndSparesNewest)
{
    TempDir tmp;
    // Budget fits roughly two artifacts of this workload's size.
    SystemSnapshot snap = compileSnapshot("bitcount", "size-probe");
    {
        ArtifactStore probe(tmp.path, 1ull << 30);
        probe.publish(keyOf("size-probe"), snap);
        const uint64_t one = probe.diskBytes();
        ASSERT_GT(one, 0u);
        fs::remove_all(tmp.path);

        ArtifactStore store(tmp.path, 2 * one + one / 2);
        for (int i = 0; i < 5; ++i) {
            SystemSnapshot s = snap;
            s.key = "artifact-" + std::to_string(i);
            ASSERT_TRUE(store.publish(keyOf(s.key), s));
        }
        EXPECT_LE(store.diskBytes(), store.maxBytes());
        EXPECT_GT(store.stats().evictions, 0u);
        // The most recent publish always survives its own GC sweep.
        EXPECT_TRUE(fs::exists(store.pathFor(keyOf("artifact-4"))));
        auto back = store.load(keyOf("artifact-4"), "artifact-4");
        EXPECT_TRUE(back.has_value());
    }
}

TEST(ExperimentRunnerDiskTier, WarmStartAcrossRunners)
{
    TempDir tmp;
    const Workload &w = getWorkload("CRC32");
    SystemConfig cfg = SystemConfig::bitspec();

    // "Process" 1: cold — compiles and publishes.
    ExperimentRunner cold(2);
    cold.enableArtifactStore(tmp.path, 64ull << 20);
    RunResult first = cold.evaluate(w, cfg, 0, 0);
    {
        ExperimentStats s = cold.stats();
        EXPECT_EQ(s.systemsBuilt, 1u);
        EXPECT_EQ(s.diskMisses, 1u);
        EXPECT_EQ(s.diskWrites, 1u);
        EXPECT_EQ(s.diskHits, 0u);
    }

    // "Process" 2: warm — restores from disk instead of compiling.
    ExperimentRunner warm(2);
    warm.enableArtifactStore(tmp.path, 64ull << 20);
    RunResult second = warm.evaluate(w, cfg, 0, 0);
    {
        ExperimentStats s = warm.stats();
        EXPECT_EQ(s.systemsBuilt, 1u); // In-memory miss...
        EXPECT_EQ(s.diskHits, 1u);     // ...served from disk.
        EXPECT_EQ(s.diskMisses, 0u);
        EXPECT_EQ(s.diskWrites, 0u);
    }
    EXPECT_EQ(first.returnValue, second.returnValue);
    EXPECT_EQ(first.outputChecksum, second.outputChecksum);
    EXPECT_EQ(first.counters.instructions, second.counters.instructions);
    EXPECT_EQ(first.counters.cycles, second.counters.cycles);
    EXPECT_EQ(first.counters.misspeculations,
              second.counters.misspeculations);
    EXPECT_EQ(first.totalEnergy, second.totalEnergy);
    EXPECT_EQ(first.epi, second.epi);

    // "Process" 3: the artifact got corrupted on disk — recompile
    // cleanly, count it invalid, and still produce identical results.
    const Hash128 key = ExperimentRunner::systemKeyHash(w, cfg, 0);
    {
        ArtifactStore probe(tmp.path, 64ull << 20);
        flipByte(probe.pathFor(key),
                 ArtifactStore::kHeaderBytes + 33);
    }
    ExperimentRunner rebuilt(2);
    rebuilt.enableArtifactStore(tmp.path, 64ull << 20);
    RunResult third = rebuilt.evaluate(w, cfg, 0, 0);
    {
        ExperimentStats s = rebuilt.stats();
        EXPECT_EQ(s.systemsBuilt, 1u);
        EXPECT_EQ(s.diskInvalid, 1u);
        EXPECT_EQ(s.diskHits, 0u);
        EXPECT_EQ(s.diskWrites, 1u); // Republished after recompile.
    }
    EXPECT_EQ(first.outputChecksum, third.outputChecksum);
    EXPECT_EQ(first.totalEnergy, third.totalEnergy);
}

TEST(ExperimentRunnerDiskTier, DisabledByDefault)
{
    // Without BITSPEC_ARTIFACT_DIR the runner has no disk tier (the
    // compile-count assertions elsewhere depend on this default).
    // Clear it for the check so a warm-cache ctest run (see
    // EXPERIMENTS.md) doesn't trip this test.
    const char *prev = ::getenv("BITSPEC_ARTIFACT_DIR");
    const std::string saved = prev ? prev : "";
    ::unsetenv("BITSPEC_ARTIFACT_DIR");
    {
        ExperimentRunner runner(1);
        EXPECT_EQ(runner.artifactStore(), nullptr);
        ExperimentStats s = runner.stats();
        EXPECT_EQ(s.diskHits + s.diskMisses + s.diskWrites +
                      s.diskInvalid,
                  0u);
    }
    if (prev)
        ::setenv("BITSPEC_ARTIFACT_DIR", saved.c_str(), 1);
}

TEST(ExperimentRunnerDiskTier, FromEnvPicksUpKnobs)
{
    TempDir tmp;
    ASSERT_EQ(::setenv("BITSPEC_ARTIFACT_DIR", tmp.path.c_str(), 1),
              0);
    ASSERT_EQ(::setenv("BITSPEC_ARTIFACT_MAX_MB", "32", 1), 0);
    {
        ExperimentRunner runner(1);
        ASSERT_NE(runner.artifactStore(), nullptr);
        EXPECT_EQ(runner.artifactStore()->dir(), tmp.path);
        EXPECT_EQ(runner.artifactStore()->maxBytes(), 32ull << 20);
    }
    ::unsetenv("BITSPEC_ARTIFACT_DIR");
    ::unsetenv("BITSPEC_ARTIFACT_MAX_MB");
}

} // namespace
} // namespace bitspec
