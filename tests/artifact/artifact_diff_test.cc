/**
 * @file
 * Artifact-store differential guard (the disk-tier analogue of
 * uarch/core_engine_diff_test.cc): for every registered workload
 * under the three misspeculation regimes (baseline compiler, full
 * bitwidth speculation, squeeze without speculation), a System
 * restored from an encode/decode snapshot roundtrip must be
 * observationally identical to the freshly compiled System it was
 * captured from — same return value and output checksum, same
 * ActivityCounters field by field, same cache hierarchy and DRAM
 * statistics, same energy, the same misspeculation-attribution and
 * per-block profiler rows, and the same compile-time stats RunResult
 * republishes. The restored System runs twice so the fast engine's
 * warm block-memo path is covered on the restored program too.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "artifact/snapshot.h"
#include "core/system.h"
#include "obs/attribution.h"
#include "obs/profiler.h"
#include "workloads/workload.h"

namespace bitspec
{
namespace
{

struct ObservedRun
{
    RunResult r;
    std::vector<RegionActivity> attr;
    uint64_t unattributedMisspecs = 0;
    std::vector<BlockActivity> blocks;
    uint64_t blocksUnattributed = 0;
};

ObservedRun
runOnce(System &sys, const AttributionMap &amap, const BlockMap &bmap,
        const Workload &w, uint64_t run_seed)
{
    AttributionSink attr(amap);
    BlockProfilerSink blocks(bmap);
    RunObservers obs;
    obs.attribution = &attr;
    obs.blocks = &blocks;
    ObservedRun out;
    out.r = sys.run(
        [&w, run_seed](Module &m) { w.setInput(m, run_seed); }, {},
        obs);
    out.attr = attr.activity();
    out.unattributedMisspecs = attr.unattributedMisspecs();
    out.blocks = blocks.activity();
    out.blocksUnattributed = blocks.unattributed();
    return out;
}

void
expectSameCaches(const CacheStats &a, const CacheStats &b,
                 const std::string &what)
{
    EXPECT_EQ(a.accesses, b.accesses) << what;
    EXPECT_EQ(a.misses, b.misses) << what;
    EXPECT_EQ(a.writebacks, b.writebacks) << what;
}

void
expectSameRun(const ObservedRun &fresh, const ObservedRun &warm,
              const std::string &what)
{
    EXPECT_EQ(fresh.r.returnValue, warm.r.returnValue) << what;
    EXPECT_EQ(fresh.r.outputChecksum, warm.r.outputChecksum) << what;

    const ActivityCounters &a = fresh.r.counters;
    const ActivityCounters &b = warm.r.counters;
    EXPECT_EQ(a.instructions, b.instructions) << what;
    EXPECT_EQ(a.cycles, b.cycles) << what;
    EXPECT_EQ(a.alu32, b.alu32) << what;
    EXPECT_EQ(a.alu8, b.alu8) << what;
    EXPECT_EQ(a.mulDiv, b.mulDiv) << what;
    EXPECT_EQ(a.rfRead32, b.rfRead32) << what;
    EXPECT_EQ(a.rfWrite32, b.rfWrite32) << what;
    EXPECT_EQ(a.rfRead8, b.rfRead8) << what;
    EXPECT_EQ(a.rfWrite8, b.rfWrite8) << what;
    EXPECT_EQ(a.loads, b.loads) << what;
    EXPECT_EQ(a.stores, b.stores) << what;
    EXPECT_EQ(a.branches, b.branches) << what;
    EXPECT_EQ(a.takenBranches, b.takenBranches) << what;
    EXPECT_EQ(a.calls, b.calls) << what;
    EXPECT_EQ(a.misspeculations, b.misspeculations) << what;
    EXPECT_EQ(a.dynSpillLoads, b.dynSpillLoads) << what;
    EXPECT_EQ(a.dynSpillStores, b.dynSpillStores) << what;
    EXPECT_EQ(a.dynCopies, b.dynCopies) << what;
    EXPECT_EQ(a.outputs, b.outputs) << what;

    expectSameCaches(fresh.r.l1i, warm.r.l1i, what + "/l1i");
    expectSameCaches(fresh.r.l1d, warm.r.l1d, what + "/l1d");
    expectSameCaches(fresh.r.l2, warm.r.l2, what + "/l2");
    EXPECT_EQ(fresh.r.dram.reads, warm.r.dram.reads) << what;
    EXPECT_EQ(fresh.r.dram.writes, warm.r.dram.writes) << what;

    EXPECT_EQ(fresh.r.totalEnergy, warm.r.totalEnergy) << what;
    EXPECT_EQ(fresh.r.epi, warm.r.epi) << what;
    EXPECT_EQ(fresh.r.meanVoltage, warm.r.meanVoltage) << what;

    // Compile-time stats republished per run.
    EXPECT_EQ(fresh.r.squeezeStats.narrowed,
              warm.r.squeezeStats.narrowed)
        << what;
    EXPECT_EQ(fresh.r.squeezeStats.regions, warm.r.squeezeStats.regions)
        << what;
    EXPECT_EQ(fresh.r.squeezeStats.checksDropped,
              warm.r.squeezeStats.checksDropped)
        << what;
    EXPECT_EQ(fresh.r.squeezeStats.lintProvenSafe,
              warm.r.squeezeStats.lintProvenSafe)
        << what;
    EXPECT_EQ(fresh.r.expandStats.inlinedCalls,
              warm.r.expandStats.inlinedCalls)
        << what;
    EXPECT_EQ(fresh.r.expandStats.unrolledLoops,
              warm.r.expandStats.unrolledLoops)
        << what;
    EXPECT_EQ(fresh.r.backendStats.staticInsts,
              warm.r.backendStats.staticInsts)
        << what;
    EXPECT_EQ(fresh.r.backendStats.skeletonInsts,
              warm.r.backendStats.skeletonInsts)
        << what;
    EXPECT_EQ(fresh.r.backendStats.staticSpillLoads,
              warm.r.backendStats.staticSpillLoads)
        << what;

    ASSERT_EQ(fresh.attr.size(), warm.attr.size()) << what;
    for (size_t i = 0; i < fresh.attr.size(); ++i) {
        const RegionActivity &ra = fresh.attr[i];
        const RegionActivity &rb = warm.attr[i];
        const std::string where = what + "/region" + std::to_string(i);
        EXPECT_EQ(ra.entries, rb.entries) << where;
        EXPECT_EQ(ra.misspecs, rb.misspecs) << where;
        EXPECT_EQ(ra.specInsts, rb.specInsts) << where;
        EXPECT_EQ(ra.specCycles, rb.specCycles) << where;
        EXPECT_EQ(ra.skeletonInsts, rb.skeletonInsts) << where;
        EXPECT_EQ(ra.handlerInsts, rb.handlerInsts) << where;
        EXPECT_EQ(ra.handlerCycles, rb.handlerCycles) << where;
    }
    EXPECT_EQ(fresh.unattributedMisspecs, warm.unattributedMisspecs)
        << what;

    ASSERT_EQ(fresh.blocks.size(), warm.blocks.size()) << what;
    for (size_t i = 0; i < fresh.blocks.size(); ++i) {
        const BlockActivity &ba = fresh.blocks[i];
        const BlockActivity &bb = warm.blocks[i];
        const std::string where = what + "/block" + std::to_string(i);
        EXPECT_EQ(ba.entries, bb.entries) << where;
        EXPECT_EQ(ba.insts, bb.insts) << where;
        EXPECT_EQ(ba.cycles, bb.cycles) << where;
        EXPECT_EQ(ba.misspecs, bb.misspecs) << where;
    }
    EXPECT_EQ(fresh.blocksUnattributed, warm.blocksUnattributed)
        << what;
}

void
diffUnderConfig(const Workload &w, const SystemConfig &cfg,
                const std::string &what)
{
    System fresh(w.source, cfg,
                 [&](Module &m) { w.setInput(m, 0); });

    // Capture, push through the full byte encoding (what the store
    // writes to disk), and restore — not just a struct copy.
    artifact::SystemSnapshot snap = fresh.makeSnapshot(what);
    std::vector<uint8_t> bytes = artifact::encodeSnapshot(snap);
    artifact::SystemSnapshot decoded =
        artifact::decodeSnapshot(bytes.data(), bytes.size());
    System warm(decoded, cfg);

    EXPECT_EQ(warm.profiledIrInstructions(),
              fresh.profiledIrInstructions())
        << what;

    // Attribution / profiler index maps built from the restored
    // program must partition the flat code identically.
    AttributionMap amapFresh(fresh.program());
    BlockMap bmapFresh(fresh.program());
    AttributionMap amapWarm(warm.program());
    BlockMap bmapWarm(warm.program());

    ObservedRun f = runOnce(fresh, amapFresh, bmapFresh, w, 0);
    ObservedRun cold = runOnce(warm, amapWarm, bmapWarm, w, 0);
    expectSameRun(f, cold, what + "/cold");

    // Restored fast engine with warm block memos, and a different
    // input seed to exercise the restored global images.
    ObservedRun memo = runOnce(warm, amapWarm, bmapWarm, w, 0);
    expectSameRun(f, memo, what + "/memo");

    ObservedRun f1 = runOnce(fresh, amapFresh, bmapFresh, w, 1);
    ObservedRun w1 = runOnce(warm, amapWarm, bmapWarm, w, 1);
    expectSameRun(f1, w1, what + "/seed1");
}

class ArtifactDiff : public ::testing::TestWithParam<std::string>
{};

TEST_P(ArtifactDiff, BaselineConfigMatches)
{
    const Workload &w = getWorkload(GetParam());
    diffUnderConfig(w, SystemConfig::baseline(), w.name + "/baseline");
}

TEST_P(ArtifactDiff, BitspecConfigMatches)
{
    const Workload &w = getWorkload(GetParam());
    diffUnderConfig(w, SystemConfig::bitspec(), w.name + "/bitspec");
}

TEST_P(ArtifactDiff, NoSpeculationConfigMatches)
{
    const Workload &w = getWorkload(GetParam());
    diffUnderConfig(w, SystemConfig::noSpeculation(),
                    w.name + "/nospec");
}

INSTANTIATE_TEST_SUITE_P(
    Mibench, ArtifactDiff,
    ::testing::Values("CRC32", "FFT", "basicmath", "bitcount",
                      "blowfish", "dijkstra", "patricia", "qsort",
                      "rijndael", "sha", "stringsearch", "susan-edges",
                      "susan-corners", "susan-smoothing"),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string name = info.param;
        for (char &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

} // namespace
} // namespace bitspec
