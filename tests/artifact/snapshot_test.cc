/**
 * @file
 * Snapshot (de)serialization unit tests: byte-exact roundtrip of a
 * real compiled System, schema-hash stability, and rejection of every
 * malformed-input class decodeSnapshot guards against.
 */

#include <gtest/gtest.h>

#include <vector>

#include "artifact/snapshot.h"
#include "core/system.h"
#include "workloads/workload.h"

namespace bitspec
{
namespace
{

artifact::SystemSnapshot
compileSnapshot(const std::string &workload,
                const SystemConfig &cfg = SystemConfig::bitspec())
{
    const Workload &w = getWorkload(workload);
    System sys(w.source, cfg, [&](Module &m) { w.setInput(m, 0); });
    return sys.makeSnapshot("key:" + workload);
}

void
expectSameOpnd(const MOpnd &x, const MOpnd &y, const char *what,
               size_t i)
{
    EXPECT_EQ(x.kind, y.kind) << what << " opnd of flat inst " << i;
    EXPECT_EQ(x.reg, y.reg) << what << " opnd of flat inst " << i;
    EXPECT_EQ(x.slice, y.slice) << what << " opnd of flat inst " << i;
    EXPECT_EQ(x.imm, y.imm) << what << " opnd of flat inst " << i;
    EXPECT_EQ(x.vreg, y.vreg) << what << " opnd of flat inst " << i;
    EXPECT_EQ(x.vregIsSlice, y.vregIsSlice)
        << what << " opnd of flat inst " << i;
}

void
expectSameProgram(const MachProgram &a, const MachProgram &b)
{
    ASSERT_EQ(a.flat.size(), b.flat.size());
    for (size_t i = 0; i < a.flat.size(); ++i) {
        const MachInst &x = a.flat[i];
        const MachInst &y = b.flat[i];
        EXPECT_EQ(x.op, y.op) << "flat inst " << i;
        EXPECT_EQ(x.cond, y.cond) << "flat inst " << i;
        EXPECT_EQ(x.speculative, y.speculative) << "flat inst " << i;
        EXPECT_EQ(x.origBits, y.origBits) << "flat inst " << i;
        EXPECT_EQ(x.tag, y.tag) << "flat inst " << i;
        EXPECT_EQ(x.target, y.target) << "flat inst " << i;
        expectSameOpnd(x.dst, y.dst, "dst", i);
        expectSameOpnd(x.a, y.a, "a", i);
        expectSameOpnd(x.b, y.b, "b", i);
    }
    ASSERT_EQ(a.funcs.size(), b.funcs.size());
    for (size_t f = 0; f < a.funcs.size(); ++f) {
        const MachFunction &x = a.funcs[f];
        const MachFunction &y = b.funcs[f];
        EXPECT_EQ(x.name, y.name);
        EXPECT_EQ(x.baseAddr, y.baseAddr);
        EXPECT_EQ(x.delta, y.delta);
        EXPECT_EQ(x.entryIndex, y.entryIndex);
        EXPECT_EQ(x.code.size(), y.code.size());
        EXPECT_EQ(x.blockIndex, y.blockIndex);
        ASSERT_EQ(x.blocks.size(), y.blocks.size());
        for (size_t bi = 0; bi < x.blocks.size(); ++bi) {
            EXPECT_EQ(x.blocks[bi].id, y.blocks[bi].id);
            EXPECT_EQ(x.blocks[bi].handlerBlock,
                      y.blocks[bi].handlerBlock);
            EXPECT_EQ(x.blocks[bi].isHandler, y.blocks[bi].isHandler);
            EXPECT_EQ(x.blocks[bi].regionId, y.blocks[bi].regionId);
            EXPECT_EQ(x.blocks[bi].regionSrcLine,
                      y.blocks[bi].regionSrcLine);
        }
    }
    EXPECT_EQ(a.entryFunc, b.entryFunc);
    EXPECT_EQ(a.funcOfIndex, b.funcOfIndex);
}

TEST(Snapshot, RoundTripsCompiledSystem)
{
    artifact::SystemSnapshot snap = compileSnapshot("CRC32");
    std::vector<uint8_t> bytes = artifact::encodeSnapshot(snap);
    artifact::SystemSnapshot back =
        artifact::decodeSnapshot(bytes.data(), bytes.size());

    EXPECT_EQ(back.key, snap.key);
    expectSameProgram(snap.program, back.program);
    EXPECT_EQ(back.profiledIrSteps, snap.profiledIrSteps);
    EXPECT_EQ(back.squeezeStats.narrowed, snap.squeezeStats.narrowed);
    EXPECT_EQ(back.squeezeStats.regions, snap.squeezeStats.regions);
    EXPECT_EQ(back.expandStats.unrolledLoops,
              snap.expandStats.unrolledLoops);
    EXPECT_EQ(back.backendStats.staticInsts,
              snap.backendStats.staticInsts);
    EXPECT_EQ(back.backendStats.skeletonInsts,
              snap.backendStats.skeletonInsts);
    ASSERT_EQ(back.globals.size(), snap.globals.size());
    for (size_t i = 0; i < snap.globals.size(); ++i) {
        EXPECT_EQ(back.globals[i].name, snap.globals[i].name);
        EXPECT_EQ(back.globals[i].elemBits, snap.globals[i].elemBits);
        EXPECT_EQ(back.globals[i].elemCount,
                  snap.globals[i].elemCount);
        EXPECT_EQ(back.globals[i].address, snap.globals[i].address);
        EXPECT_EQ(back.globals[i].data, snap.globals[i].data);
    }

    // Deterministic encoding: same snapshot, same bytes.
    EXPECT_EQ(bytes, artifact::encodeSnapshot(back));
}

TEST(Snapshot, SchemaHashIsStableWithinBuild)
{
    const uint64_t h = artifact::snapshotSchemaHash();
    EXPECT_NE(h, 0u);
    EXPECT_EQ(h, artifact::snapshotSchemaHash());
}

TEST(Snapshot, RejectsTruncationAtEveryPrefix)
{
    artifact::SystemSnapshot snap = compileSnapshot("bitcount");
    std::vector<uint8_t> bytes = artifact::encodeSnapshot(snap);
    // Every strict prefix must throw, never crash. Stride keeps the
    // test fast; the first and last few bytes are covered exactly.
    for (size_t n = 0; n < bytes.size();
         n += (n < 64 || n + 64 > bytes.size()) ? 1 : 97) {
        EXPECT_THROW(artifact::decodeSnapshot(bytes.data(), n),
                     artifact::SnapshotError)
            << "prefix " << n;
    }
}

TEST(Snapshot, RejectsTrailingGarbage)
{
    std::vector<uint8_t> bytes =
        artifact::encodeSnapshot(compileSnapshot("bitcount"));
    bytes.push_back(0xee);
    EXPECT_THROW(artifact::decodeSnapshot(bytes.data(), bytes.size()),
                 artifact::SnapshotError);
}

TEST(Snapshot, RejectsSchemaMismatch)
{
    std::vector<uint8_t> bytes =
        artifact::encodeSnapshot(compileSnapshot("bitcount"));
    // The embedded schema hash is the first field of the payload;
    // flipping any bit of it must be rejected up front.
    bytes[0] ^= 0x01;
    EXPECT_THROW(artifact::decodeSnapshot(bytes.data(), bytes.size()),
                 artifact::SnapshotError);
}

TEST(Snapshot, RejectsCorruptInterior)
{
    std::vector<uint8_t> bytes =
        artifact::encodeSnapshot(compileSnapshot("bitcount"));
    // Flip one byte at a spread of interior offsets. Decode must
    // either throw SnapshotError or produce *some* snapshot (a flip
    // inside e.g. global data is not detectable at this layer — the
    // store's CRC covers it); it must never crash.
    for (size_t off = 8; off < bytes.size(); off += 211) {
        std::vector<uint8_t> bad = bytes;
        bad[off] ^= 0x40;
        try {
            (void)artifact::decodeSnapshot(bad.data(), bad.size());
        } catch (const artifact::SnapshotError &) {
            // Expected for most offsets.
        }
    }
}

} // namespace
} // namespace bitspec
