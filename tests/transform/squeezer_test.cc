#include <gtest/gtest.h>

#include "analysis/verifier.h"
#include "frontend/irgen.h"
#include "interp/interpreter.h"
#include "transform/cfg_prep.h"
#include "transform/squeezer.h"

namespace bitspec
{
namespace
{

struct Squeezed
{
    std::unique_ptr<Module> module;
    SqueezeStats stats;
};

/** Compile, profile on a training run, squeeze. */
Squeezed
makeSqueezed(const std::string &src, const SqueezeOptions &opts,
             const std::vector<uint64_t> &train_args = {})
{
    Squeezed out;
    out.module = compileSource(src);
    BitwidthProfile profile;
    profile.profileRun(*out.module, "main", train_args);
    out.stats = squeezeModule(*out.module, profile, opts);
    return out;
}

/** Differential check: original vs squeezed agree on return value and
 *  output stream for every given input. */
void
checkEquivalent(const std::string &src, const SqueezeOptions &opts,
                const std::vector<std::vector<uint64_t>> &inputs,
                const std::vector<uint64_t> &train_args = {})
{
    auto ref_mod = compileSource(src);
    auto sq = makeSqueezed(src, opts, train_args);

    for (const auto &args : inputs) {
        Interpreter ref(*ref_mod);
        uint64_t want = ref.run("main", args);

        Interpreter got(*sq.module);
        EXPECT_EQ(got.run("main", args), want);
        EXPECT_EQ(got.outputChecksum(), ref.outputChecksum());

        // Also with forced misspeculation (Theorem 3.2).
        Interpreter forced(*sq.module);
        forced.setMisspecPolicy(MisspecPolicy::ForceFirst);
        EXPECT_EQ(forced.run("main", args), want);
        EXPECT_EQ(forced.outputChecksum(), ref.outputChecksum());

        // And randomised misspeculation.
        Interpreter rnd(*sq.module);
        rnd.setMisspecPolicy(MisspecPolicy::Random);
        rnd.setRandomSeed(args.empty() ? 1 : args[0] + 99);
        EXPECT_EQ(rnd.run("main", args), want);
    }
}

TEST(CfgPrep, SplitsPerEquations)
{
    auto m = compileSource(R"(
        u32 a[4];
        u32 b[4];
        u32 f(u32 x) { return x; }
        u32 main() {
            u32 v = a[0];       // load
            b[0] = v;           // store: must split from the load
            u32 w = f(v);       // call: isolated
            return v + w;
        }
    )");
    Function *f = m->getFunction("main");
    unsigned before = f->blocks().size();
    prepareCFG(*f);
    EXPECT_GT(f->blocks().size(), before);
    EXPECT_TRUE(verifyFunction(*f).empty());

    for (auto &bb : f->blocks()) {
        bool has_load = false, has_store = false, has_call = false;
        unsigned nonterm = 0;
        for (auto &inst : bb->insts()) {
            if (inst->isTerm())
                continue;
            ++nonterm;
            has_load |= inst->op() == Opcode::Load;
            has_store |= inst->op() == Opcode::Store;
            has_call |= inst->isCall();
        }
        EXPECT_FALSE(has_load && has_store) << bb->name();
        if (has_call)
            EXPECT_EQ(nonterm, 1u) << bb->name();
    }

    // Semantics unchanged.
    Interpreter in(*m);
    EXPECT_EQ(in.run("main"), 0u);
}

TEST(Squeezer, PaperWalkthroughCounter)
{
    // §3 of the paper: with the AVG selection the loop runs at 8 bits,
    // the compare against 255 is eliminated, the add misspeculates at
    // x == 255 and the handler finishes at 32 bits.
    const char *src =
        "u32 main() { u32 x = 0; do { x += 1; } while (x <= 255); "
        "return x; }";
    SqueezeOptions opts;
    opts.heuristic = Heuristic::Avg;
    auto sq = makeSqueezed(src, opts);

    EXPECT_GT(sq.stats.narrowed, 0u);
    EXPECT_GT(sq.stats.regions, 0u);
    EXPECT_GE(sq.stats.comparesEliminated, 1u);

    Interpreter in(*sq.module);
    EXPECT_EQ(in.run("main"), 256u);
    EXPECT_EQ(in.stats().misspeculations, 1u);
}

TEST(Squeezer, MaxHeuristicAvoidsMisspeculation)
{
    // Values stay in [0, 200]: MAX selects 8 bits and never
    // misspeculates at runtime on the same input.
    const char *src = R"(
        u32 main() {
            u32 s = 0;
            for (u32 i = 0; i < 200; i++) s = (s + i) % 251;
            return s;
        }
    )";
    SqueezeOptions opts; // MAX
    auto sq = makeSqueezed(src, opts);
    EXPECT_GT(sq.stats.narrowed, 0u);

    auto ref = compileSource(src);
    Interpreter r(*ref);
    Interpreter in(*sq.module);
    EXPECT_EQ(in.run("main"), r.run("main"));
    EXPECT_EQ(in.stats().misspeculations, 0u);
}

TEST(Squeezer, MinHeuristicMisspeculatesMore)
{
    // MIN selects the smallest width ever seen; larger values then
    // misspeculate (paper Table 2 trend).
    const char *src = R"(
        u8 data[64];
        u32 main() {
            u32 s = 0;
            for (u32 i = 0; i < 64; i++) s += data[i];
            return s;
        }
    )";
    auto mod = compileSource(src);
    Global *g = mod->getGlobal("data");
    for (size_t i = 0; i < 64; ++i)
        g->setElem(i, 200); // Sum reaches 12800: needs 14 bits.

    BitwidthProfile profile;
    profile.profileRun(*mod, "main", {});

    SqueezeOptions min_opts;
    min_opts.heuristic = Heuristic::Min;
    squeezeModule(*mod, profile, min_opts);

    Interpreter in(*mod);
    EXPECT_EQ(in.run("main"), 200u * 64);
    EXPECT_GE(in.stats().misspeculations, 1u);
}

TEST(Squeezer, DifferentialAllHeuristics)
{
    // A kernel with byte-ish values and occasional outliers.
    const char *src = R"(
        u8 buf[32] = "the quick brown fox jumps over";
        u32 main(u32 n) {
            u32 h = 0;
            for (u32 i = 0; i < n; i++) {
                u32 c = buf[i % 30];
                h = (h * 31 + c) % 1000;
                if (c == 'q') h += 500;
            }
            return h;
        }
    )";
    for (Heuristic h : {Heuristic::Max, Heuristic::Avg, Heuristic::Min}) {
        SqueezeOptions opts;
        opts.heuristic = h;
        checkEquivalent(src, opts, {{0}, {1}, {5}, {30}, {200}}, {30});
    }
}

TEST(Squeezer, DifferentialRunInputLargerThanTraining)
{
    // Profile on a small input, run on one that overflows the
    // speculative widths: correctness must come from the handlers.
    const char *src = R"(
        u32 main(u32 n) {
            u32 sum = 0;
            u32 i = 0;
            while (i < n) {
                sum += i;
                i += 1;
            }
            return sum;
        }
    )";
    SqueezeOptions opts;
    opts.heuristic = Heuristic::Avg;
    checkEquivalent(src, opts, {{4}, {10}, {100}, {1000}}, {10});
}

TEST(Squeezer, StoresAndOutputsStayCorrect)
{
    const char *src = R"(
        u8 in[16] = "abcdefghijklmno";
        u8 tmp[16];
        u32 main() {
            for (u32 i = 0; i < 15; i++) tmp[i] = in[14 - i];
            u32 acc = 0;
            for (u32 i = 0; i < 15; i++) { out(tmp[i]); acc += tmp[i]; }
            return acc;
        }
    )";
    SqueezeOptions opts;
    checkEquivalent(src, opts, {{}});
}

TEST(Squeezer, CallsArePreserved)
{
    const char *src = R"(
        u32 mix(u32 a, u32 b) { return (a * 7 + b) % 256; }
        u32 main(u32 n) {
            u32 x = 3;
            for (u32 i = 0; i < n; i++) x = mix(x, i);
            return x;
        }
    )";
    SqueezeOptions opts;
    checkEquivalent(src, opts, {{0}, {7}, {50}}, {10});
}

TEST(Squeezer, ExactModeNeedsNoRegions)
{
    const char *src = R"(
        u32 main(u32 n) {
            u32 s = 0;
            for (u32 i = 0; i < n; i++)
                s = (s + (i & 0xff)) & 0xff;
            return s;
        }
    )";
    SqueezeOptions opts;
    opts.speculate = false;
    auto sq = makeSqueezed(src, opts, {16});
    EXPECT_GT(sq.stats.narrowed, 0u);
    EXPECT_EQ(sq.stats.regions, 0u);
    EXPECT_EQ(sq.stats.specTruncs, 0u);

    checkEquivalent(src, opts, {{0}, {3}, {1000}}, {16});
}

TEST(Squeezer, ExactModeFindsNothingWithoutMasks)
{
    // Without masks/truncs the demanded width stays high (the sha
    // effect from paper §2.2).
    const char *src = R"(
        u32 main(u32 n) {
            u32 s = 1;
            for (u32 i = 0; i < n; i++)
                s = (s << 5) | (s >> 27);
            return s;
        }
    )";
    SqueezeOptions opts;
    opts.speculate = false;
    auto sq = makeSqueezed(src, opts, {4});
    EXPECT_EQ(sq.stats.narrowed, 0u);
}

TEST(Squeezer, BitmaskElisionAblation)
{
    // rijndael-style table indexing: `x & 0xff` feeds everything.
    const char *src = R"(
        u8 sbox[256];
        u32 main(u32 n) {
            u32 state = 0x01020304;
            u32 acc = 0;
            for (u32 i = 0; i < n; i++) {
                u32 b0 = state & 0xff;
                acc += sbox[b0];
                state = state * 1103515245 + 12345;
            }
            return acc;
        }
    )";
    auto with = makeSqueezed(src, SqueezeOptions{}, {16});
    SqueezeOptions no_elide;
    no_elide.bitmaskElision = false;
    auto without = makeSqueezed(src, no_elide, {16});
    EXPECT_GT(with.stats.bitmasksElided, 0u);
    EXPECT_EQ(without.stats.bitmasksElided, 0u);

    // Both remain correct.
    SqueezeOptions opts;
    checkEquivalent(src, opts, {{1}, {16}, {64}}, {16});
    checkEquivalent(src, no_elide, {{1}, {16}, {64}}, {16});
}

TEST(Squeezer, CompareEliminationAblation)
{
    const char *src =
        "u32 main() { u32 x = 0; do { x += 1; } while (x <= 255); "
        "return x; }";
    SqueezeOptions with;
    with.heuristic = Heuristic::Avg;
    SqueezeOptions without = with;
    without.compareElimination = false;

    auto a = makeSqueezed(src, with);
    auto b = makeSqueezed(src, without);
    EXPECT_GE(a.stats.comparesEliminated, 1u);
    EXPECT_EQ(b.stats.comparesEliminated, 0u);

    Interpreter ia(*a.module), ib(*b.module);
    EXPECT_EQ(ia.run("main"), 256u);
    EXPECT_EQ(ib.run("main"), 256u);
}

TEST(Squeezer, VerifierHoldsOnAllConfigs)
{
    const char *src = R"(
        u8 key[8] = "k3y";
        u8 data[64];
        u32 main(u32 n) {
            u32 h = 5381;
            for (u32 i = 0; i < n; i++) {
                data[i % 64] = (h ^ key[i % 3]) & 0xff;
                h = h * 33 + data[i % 64];
            }
            u32 s = 0;
            for (u32 i = 0; i < 64; i++) s += data[i];
            return s;
        }
    )";
    for (Heuristic h : {Heuristic::Max, Heuristic::Avg, Heuristic::Min}) {
        for (bool ce : {true, false}) {
            for (bool be : {true, false}) {
                SqueezeOptions opts;
                opts.heuristic = h;
                opts.compareElimination = ce;
                opts.bitmaskElision = be;
                auto sq = makeSqueezed(src, opts, {40});
                EXPECT_TRUE(verifyModule(*sq.module).empty());
                Interpreter in(*sq.module);
                auto ref_mod = compileSource(src);
                Interpreter ref(*ref_mod);
                EXPECT_EQ(in.run("main", {100}), ref.run("main", {100}));
            }
        }
    }
}

} // namespace
} // namespace bitspec
