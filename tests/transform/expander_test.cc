#include <gtest/gtest.h>

#include "analysis/verifier.h"
#include "frontend/irgen.h"
#include "interp/interpreter.h"
#include "transform/expander.h"

namespace bitspec
{
namespace
{

void
checkExpandEquivalent(const std::string &src, const ExpanderOptions &opts,
                      const std::vector<std::vector<uint64_t>> &inputs)
{
    auto ref_mod = compileSource(src);
    auto exp_mod = compileSource(src);
    expandModule(*exp_mod, opts);
    EXPECT_TRUE(verifyModule(*exp_mod).empty());

    for (const auto &args : inputs) {
        Interpreter r(*ref_mod), e(*exp_mod);
        EXPECT_EQ(e.run("main", args), r.run("main", args));
        EXPECT_EQ(e.outputChecksum(), r.outputChecksum());
    }
}

TEST(Expander, InlinesSimpleCalls)
{
    const char *src = R"(
        u32 sq(u32 x) { return x * x; }
        u32 main(u32 n) { return sq(n) + sq(n + 1); }
    )";
    auto m = compileSource(src);
    ExpanderOptions opts;
    opts.unrollFactor = 1;
    ExpandStats st = expandModule(*m, opts);
    EXPECT_EQ(st.inlinedCalls, 2u);

    Function *f = m->getFunction("main");
    for (auto &bb : f->blocks())
        for (auto &inst : bb->insts())
            EXPECT_FALSE(inst->isCall());

    Interpreter in(*m);
    EXPECT_EQ(in.run("main", {3}), 25u);
}

TEST(Expander, InlinesThroughControlFlow)
{
    const char *src = R"(
        u32 pick(u32 a, u32 b) { if (a < b) return a; return b; }
        u32 main(u32 n) { return pick(n, 10) + pick(20, n); }
    )";
    checkExpandEquivalent(src, ExpanderOptions{}, {{0}, {5}, {15}, {30}});
}

TEST(Expander, DoesNotInlineRecursion)
{
    const char *src = R"(
        u32 fact(u32 n) { if (n < 2) return 1; return n * fact(n - 1); }
        u32 main(u32 n) { return fact(n); }
    )";
    auto m = compileSource(src);
    ExpanderOptions opts;
    expandModule(*m, opts);
    // The recursive callee must still contain its self-call.
    Function *fact = m->getFunction("fact");
    bool has_call = false;
    for (auto &bb : fact->blocks())
        for (auto &inst : bb->insts())
            has_call |= inst->isCall();
    EXPECT_TRUE(has_call);
    Interpreter in(*m);
    EXPECT_EQ(in.run("main", {5}), 120u);
}

TEST(Expander, RespectsMaxFunctionSize)
{
    const char *src = R"(
        u32 big(u32 x) {
            u32 a = x + 1; u32 b = a * 2; u32 c = b ^ 3; u32 d = c - 4;
            u32 e = d | 5; u32 f = e & 6; u32 g = f + 7; u32 h = g * 8;
            return h;
        }
        u32 main(u32 n) { return big(n) + big(n + 1) + big(n + 2); }
    )";
    auto m = compileSource(src);
    ExpanderOptions opts;
    opts.maxFunctionSize = 5; // Too small to inline anything.
    ExpandStats st = expandModule(*m, opts);
    EXPECT_EQ(st.inlinedCalls, 0u);
}

TEST(Expander, UnrollsCountedLoop)
{
    const char *src = R"(
        u32 main(u32 n) {
            u32 s = 0;
            for (u32 i = 0; i < n; i++) s += i * i;
            return s;
        }
    )";
    auto m = compileSource(src);
    Function *f = m->getFunction("main");
    size_t before = f->instructionCount();
    ExpanderOptions opts;
    opts.unrollFactor = 4;
    ExpandStats st = expandModule(*m, opts);
    EXPECT_GE(st.unrolledLoops, 1u);
    EXPECT_GT(f->instructionCount(), before * 2);

    Interpreter in(*m);
    // 0+1+4+9+16 = 30 for n=5; also check n not divisible by factor.
    EXPECT_EQ(in.run("main", {5}), 30u);
    EXPECT_EQ(in.run("main", {0}), 0u);
    EXPECT_EQ(in.run("main", {1}), 0u);
    EXPECT_EQ(in.run("main", {16}), 1240u);
}

TEST(Expander, UnrollReducesDynamicInstructions)
{
    const char *src = R"(
        u32 main(u32 n) {
            u32 s = 0;
            for (u32 i = 0; i < n; i++) s += i;
            return s;
        }
    )";
    auto plain = compileSource(src);
    auto unrolled = compileSource(src);
    ExpanderOptions opts;
    opts.unrollFactor = 8;
    expandModule(*unrolled, opts);

    Interpreter a(*plain), b(*unrolled);
    EXPECT_EQ(a.run("main", {1000}), b.run("main", {1000}));
    // Paper Fig. 3: unrolling monotonically reduces dynamic IR
    // instructions (fewer compare/branch/increment executions).
    EXPECT_LT(b.stats().steps, a.stats().steps);
}

TEST(Expander, UnrollsLoopsWithBreaks)
{
    const char *src = R"(
        u8 hay[32] = "abcdefghijklmnopqrstuvwxyz";
        u32 main(u32 c) {
            u32 pos = 32;
            for (u32 i = 0; i < 26; i++) {
                if (hay[i] == c) { pos = i; break; }
            }
            return pos;
        }
    )";
    ExpanderOptions opts;
    opts.unrollFactor = 4;
    checkExpandEquivalent(src, opts, {{'a'}, {'m'}, {'z'}, {'!'}});
}

TEST(Expander, NestedLoopsStayCorrect)
{
    const char *src = R"(
        u32 main(u32 n) {
            u32 acc = 0;
            for (u32 i = 0; i < n; i++)
                for (u32 j = 0; j < i; j++)
                    acc += i * j + 1;
            return acc;
        }
    )";
    ExpanderOptions opts;
    opts.unrollFactor = 3;
    checkExpandEquivalent(src, opts, {{0}, {1}, {4}, {9}});
}

TEST(Expander, InlineThenUnrollCompose)
{
    const char *src = R"(
        u32 step(u32 h, u32 c) { return h * 31 + c; }
        u8 data[16] = "hello, bitspec!";
        u32 main() {
            u32 h = 0;
            for (u32 i = 0; i < 15; i++) h = step(h, data[i]);
            return h;
        }
    )";
    auto m = compileSource(src);
    ExpanderOptions opts;
    opts.unrollFactor = 4;
    ExpandStats st = expandModule(*m, opts);
    EXPECT_GE(st.inlinedCalls, 1u);
    EXPECT_GE(st.unrolledLoops, 1u);

    auto ref = compileSource(src);
    Interpreter a(*ref), b(*m);
    EXPECT_EQ(a.run("main"), b.run("main"));
}

TEST(Expander, DisabledIsIdentity)
{
    const char *src = R"(
        u32 f(u32 x) { return x + 1; }
        u32 main() { u32 s = 0; for (u32 i = 0; i < 4; i++) s = f(s); "
                     return s; }
    )";
    (void)src;
    const char *src2 = R"(
        u32 f(u32 x) { return x + 1; }
        u32 main() {
            u32 s = 0;
            for (u32 i = 0; i < 4; i++) s = f(s);
            return s;
        }
    )";
    auto m = compileSource(src2);
    size_t before = m->getFunction("main")->instructionCount();
    ExpanderOptions opts;
    opts.enabled = false;
    ExpandStats st = expandModule(*m, opts);
    EXPECT_EQ(st.inlinedCalls, 0u);
    EXPECT_EQ(st.unrolledLoops, 0u);
    EXPECT_EQ(m->getFunction("main")->instructionCount(), before);
}

} // namespace
} // namespace bitspec
