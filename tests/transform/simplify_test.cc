#include <gtest/gtest.h>

#include "../testutil.h"
#include "analysis/verifier.h"
#include "frontend/irgen.h"
#include "interp/interpreter.h"
#include "transform/simplify.h"

namespace bitspec
{
namespace
{

TEST(Simplify, RemovesTrivialPhi)
{
    Module m;
    Function *f = test::buildDiamond(m);
    BasicBlock *merge = f->blocks()[3].get();
    Instruction *phi = merge->phis()[0];
    // Make the phi trivial: both inputs the same constant.
    Constant *c = m.getConst(Type::i32(), 7);
    phi->setOperand(0, c);
    phi->setOperand(1, c);

    EXPECT_EQ(simplifyTrivialPhis(*f), 1u);
    EXPECT_TRUE(merge->phis().empty());
    EXPECT_EQ(merge->terminator()->operand(0), c);
}

TEST(Simplify, KeepsRealPhis)
{
    Module m;
    Function *f = test::buildDiamond(m);
    EXPECT_EQ(simplifyTrivialPhis(*f), 0u);
}

TEST(Simplify, DeadCodeRemoved)
{
    Module m;
    Function *f = m.addFunction("f", Type::i32(), {Type::i32()});
    IRBuilder b(&m);
    f->setParent(&m);
    BasicBlock *bb = f->addBlock("entry");
    b.setInsertPoint(bb);
    Instruction *dead = b.add(f->arg(0), b.constI32(1));
    Instruction *dead2 = b.mul(dead, b.constI32(2)); // Chains.
    (void)dead2;
    Instruction *live = b.add(f->arg(0), b.constI32(5));
    b.ret(live);

    EXPECT_EQ(deadCodeElim(*f), 2u);
    EXPECT_EQ(f->instructionCount(), 2u);
}

TEST(Simplify, GuardsSurviveDCE)
{
    Module m;
    Function *f = m.addFunction("f", Type::i32(), {Type::i8()});
    IRBuilder b(&m);
    BasicBlock *bb = f->addBlock("entry");
    b.setInsertPoint(bb);
    Instruction *spec = b.add(f->arg(0), m.getConst(Type::i8(), 1));
    spec->setSpeculative(true);
    spec->setGuard(true); // A folded compare relies on its misspec.
    b.ret(b.constI32(0));

    EXPECT_EQ(deadCodeElim(*f), 0u);
    EXPECT_EQ(f->instructionCount(), 2u);
    (void)spec;
}

TEST(Simplify, ConstantFoldsExpressions)
{
    auto m = compileSource(
        "u32 main() { u32 a = 3; u32 b = 4; return a * b + 2; }");
    Function *f = m->getFunction("main");
    simplifyFunction(*f);
    // Whole body folds to `ret 14`.
    EXPECT_EQ(f->instructionCount(), 1u);
    Interpreter in(*m);
    EXPECT_EQ(in.run("main"), 14u);
}

TEST(Simplify, FoldsConstantBranches)
{
    auto m = compileSource(R"(
        u32 main() {
            u32 x = 0;
            if (1 < 2) x = 10; else x = 20;
            return x;
        }
    )");
    Function *f = m->getFunction("main");
    simplifyFunction(*f);
    EXPECT_TRUE(verifyFunction(*f).empty());
    Interpreter in(*m);
    EXPECT_EQ(in.run("main"), 10u);
    // The else branch must be gone.
    EXPECT_LE(f->blocks().size(), 3u);
}

TEST(Simplify, PreservesSemanticsOnRealCode)
{
    const char *src = R"(
        u32 main(u32 n) {
            u32 acc = 0;
            for (u32 i = 0; i < n; i++)
                acc = acc * 31 + i;
            return acc;
        }
    )";
    auto m1 = compileSource(src);
    auto m2 = compileSource(src);
    for (const auto &f : m2->functions())
        simplifyFunction(*f);
    Interpreter i1(*m1), i2(*m2);
    for (uint64_t n : {0, 1, 5, 100})
        EXPECT_EQ(i1.run("main", {n}), i2.run("main", {n})) << n;
}

TEST(Simplify, SpeculativeOpsNotFolded)
{
    Module m;
    Function *f = m.addFunction("f", Type::i8(), {});
    f->setParent(&m);
    IRBuilder b(&m);
    BasicBlock *bb = f->addBlock("entry");
    b.setInsertPoint(bb);
    Instruction *spec = b.add(m.getConst(Type::i8(), 200),
                              m.getConst(Type::i8(), 100));
    spec->setSpeculative(true); // Would overflow: must not fold away.
    b.ret(spec);
    EXPECT_EQ(constantFold(*f), 0u);
}

} // namespace
} // namespace bitspec
