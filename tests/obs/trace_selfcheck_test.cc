#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "obs/trace.h"
#include "workloads/workload.h"

namespace bitspec
{
namespace
{

/**
 * Minimal structural JSON scanner: balanced {}/[] outside strings,
 * legal escapes, input is exactly one value. Not a full parser — it
 * exists to catch emitter bugs (unescaped quotes, truncation,
 * trailing commas are caught by the balance and non-empty checks).
 */
bool
jsonWellFormed(const std::string &s)
{
    std::vector<char> stack;
    bool in_string = false, escaped = false;
    for (char c : s) {
        if (in_string) {
            if (escaped)
                escaped = false;
            else if (c == '\\')
                escaped = true;
            else if (c == '"')
                in_string = false;
            continue;
        }
        switch (c) {
          case '"': in_string = true; break;
          case '{': case '[': stack.push_back(c); break;
          case '}':
            if (stack.empty() || stack.back() != '{')
                return false;
            stack.pop_back();
            break;
          case ']':
            if (stack.empty() || stack.back() != '[')
                return false;
            stack.pop_back();
            break;
          default: break;
        }
    }
    return !in_string && stack.empty();
}

/** End-to-end: trace two full pipeline+execution workloads, then
 *  validate everything the ISSUE's selfcheck demands. */
class TraceSelfcheck : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        trace::reset();
        trace::setEnabled(true);
        ExperimentRunner runner(2);
        for (const char *name : {"CRC32", "rijndael"}) {
            const Workload &w = getWorkload(name);
            runner.evaluate(w, SystemConfig::bitspec());
            runner.evaluate(w, SystemConfig::baseline());
        }
        trace::setEnabled(false);
        events_ = trace::snapshot();
    }

    void TearDown() override { trace::reset(); }

    std::vector<trace::Event> events_;
};

TEST_F(TraceSelfcheck, CapturesCompileAndExecuteSpans)
{
    std::map<std::string, int> begins;
    for (const auto &e : events_)
        if (e.phase == 'B')
            ++begins[e.name];
    // One per System build (2 workloads x 2 configs = 4)...
    EXPECT_EQ(begins["system.build"], 4);
    EXPECT_EQ(begins["frontend.parse"], 4);
    EXPECT_EQ(begins["backend.compile"], 4);
    // ...one per cell run...
    EXPECT_EQ(begins["experiment.cell"], 4);
    EXPECT_EQ(begins["core.run"], 4);
    // ...and the squeezer only on the bitspec builds.
    EXPECT_EQ(begins["transform.squeeze"], 2);
    EXPECT_EQ(begins["profile.train_run"], 2);
    EXPECT_GT(begins["interp.run"], 0);
}

TEST_F(TraceSelfcheck, BeginEndBalancedPerThread)
{
    // Spans never cross threads, so each thread's B/E stream must
    // follow stack discipline with matching names.
    std::map<uint32_t, std::vector<const trace::Event *>> stacks;
    for (const auto &e : events_) {
        if (e.phase == 'B') {
            stacks[e.tid].push_back(&e);
        } else if (e.phase == 'E') {
            auto &st = stacks[e.tid];
            ASSERT_FALSE(st.empty())
                << "E without B on tid " << e.tid;
            EXPECT_EQ(st.back()->name, e.name);
            st.pop_back();
        }
    }
    for (const auto &[tid, st] : stacks)
        EXPECT_TRUE(st.empty()) << "unclosed span on tid " << tid;
}

TEST_F(TraceSelfcheck, TimestampsMonotonicPerThread)
{
    std::map<uint32_t, uint64_t> last;
    for (const auto &e : events_) {
        if (e.phase == 'M')
            continue; // Metadata records carry no timestamp.
        auto it = last.find(e.tid);
        if (it != last.end()) {
            ASSERT_GE(e.tsNs, it->second)
                << "timestamp regression on tid " << e.tid;
        }
        last[e.tid] = e.tsNs;
    }
}

TEST_F(TraceSelfcheck, CacheInstantsRecorded)
{
    int hits = 0, misses = 0;
    for (const auto &e : events_) {
        if (e.phase != 'i')
            continue;
        if (e.name == "cache.hit")
            ++hits;
        else if (e.name == "cache.miss")
            ++misses;
    }
    EXPECT_EQ(misses, 4); // Four distinct (workload, config) keys.
    EXPECT_EQ(hits, 0);   // Each key evaluated once.
}

TEST_F(TraceSelfcheck, ExportedJsonIsWellFormed)
{
    std::string json = trace::toJson();
    EXPECT_TRUE(jsonWellFormed(json));
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);

    // writeTo produces the same payload on disk.
    std::string path = ::testing::TempDir() + "trace_selfcheck.json";
    ASSERT_TRUE(trace::writeTo(path));
    std::ifstream in(path);
    std::stringstream buf;
    buf << in.rdbuf();
    EXPECT_TRUE(jsonWellFormed(buf.str()));
    EXPECT_FALSE(buf.str().empty());
    std::remove(path.c_str());
}

} // namespace
} // namespace bitspec
