#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/system.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "workloads/workload.h"

namespace bitspec
{
namespace
{

/** Build a squeezed System for @p w profiled on seed 0. */
System
makeBitspec(const Workload &w)
{
    return System(w.source, SystemConfig::bitspec(),
                  [&w](Module &m) { w.setInput(m, 0); });
}

TEST(BlockMap, IsTotalPartition)
{
    const Workload &w = getWorkload("CRC32");
    System sys = makeBitspec(w);
    BlockMap map(sys.program());

    ASSERT_FALSE(map.sites().empty());
    ASSERT_EQ(map.numIndices(), sys.program().flat.size());

    // Every flat index belongs to exactly one site, and static sizes
    // add back up to the whole program.
    std::vector<uint64_t> per_site(map.sites().size(), 0);
    for (uint32_t i = 0; i < map.numIndices(); ++i) {
        int s = map.siteAt(i);
        ASSERT_GE(s, 0) << "unclaimed index " << i;
        ASSERT_LT(static_cast<size_t>(s), map.sites().size());
        ++per_site[static_cast<size_t>(s)];
    }
    uint64_t static_total = 0;
    for (size_t s = 0; s < map.sites().size(); ++s) {
        EXPECT_EQ(per_site[s], map.sites()[s].staticInsts)
            << map.sites()[s].function << ":" << map.sites()[s].block;
        static_total += map.sites()[s].staticInsts;
    }
    EXPECT_EQ(static_total, map.numIndices());

    // Exactly one head per non-empty site, at its start index (empty
    // blocks emit no instructions and own no index at all).
    size_t heads = 0, nonempty = 0;
    for (uint32_t i = 0; i < map.numIndices(); ++i)
        heads += map.isBlockHead(i);
    for (const BlockSite &site : map.sites()) {
        if (site.staticInsts == 0)
            continue;
        ++nonempty;
        EXPECT_TRUE(map.isBlockHead(site.startIndex))
            << site.function << ":" << site.block;
    }
    EXPECT_EQ(heads, nonempty);

    // The linker stub is covered by the synthetic _start site.
    ASSERT_GE(map.siteAt(0), 0);
    EXPECT_EQ(map.sites()[static_cast<size_t>(map.siteAt(0))].function,
              "_start");
}

/** The acceptance invariant: per-block sums equal the core's
 *  aggregate ActivityCounters exactly — instructions, cycles and
 *  misspeculations — on every workload of the suite, on a held-out
 *  seed where speculation actually misses. */
TEST(BlockProfiler, SumsReconcileWithCoreCountersAcrossSuite)
{
    uint64_t suite_misspecs = 0;
    for (const Workload &w : mibenchSuite()) {
        System sys = makeBitspec(w);
        BlockMap map(sys.program());
        BlockProfilerSink sink(map);
        RunObservers obs;
        obs.blocks = &sink;
        RunResult r = sys.run(
            [&w](Module &m) { w.setInput(m, 1); }, {}, obs);

        EXPECT_EQ(sink.totalInsts(), r.counters.instructions) << w.name;
        EXPECT_EQ(sink.totalCycles(), r.counters.cycles) << w.name;
        EXPECT_EQ(sink.totalMisspecs(), r.counters.misspeculations)
            << w.name;
        EXPECT_EQ(sink.unattributed(), 0u) << w.name;
        suite_misspecs += sink.totalMisspecs();

        // Per-block sanity: activity implies entry, and a block's
        // retired instructions imply charged cycles.
        for (const BlockActivity &a : sink.activity()) {
            if (a.insts || a.misspecs) {
                EXPECT_GT(a.entries, 0u) << w.name;
            }
            if (a.insts) {
                EXPECT_GT(a.cycles, 0u) << w.name;
            }
        }
    }
    // Held-out seeds must exercise at least one real misspeculation
    // suite-wide, or the misspec column of the invariant is vacuous.
    EXPECT_GT(suite_misspecs, 0u);
}

TEST(BlockProfiler, DoesNotPerturbTheRun)
{
    const Workload &w = getWorkload("CRC32");
    System sys = makeBitspec(w);
    BlockMap map(sys.program());
    BlockProfilerSink sink(map);
    RunObservers obs;
    obs.blocks = &sink;
    RunResult profiled =
        sys.run([&w](Module &m) { w.setInput(m, 1); }, {}, obs);
    RunResult plain = sys.run([&w](Module &m) { w.setInput(m, 1); });

    EXPECT_EQ(plain.outputChecksum, profiled.outputChecksum);
    EXPECT_EQ(plain.counters.instructions,
              profiled.counters.instructions);
    EXPECT_EQ(plain.counters.cycles, profiled.counters.cycles);
    EXPECT_EQ(plain.counters.misspeculations,
              profiled.counters.misspeculations);
}

TEST(BlockProfiler, HeatReportSplitsEnergyExactly)
{
    const Workload &w = getWorkload("sha");
    System sys = makeBitspec(w);
    BlockMap map(sys.program());
    BlockProfilerSink sink(map);
    RunObservers obs;
    obs.blocks = &sink;
    RunResult r =
        sys.run([&w](Module &m) { w.setInput(m, 1); }, {}, obs);

    HeatReportInputs inputs;
    inputs.energy = sys.config().energy;
    inputs.totalEnergyPj = r.totalEnergy;
    auto rows = buildHeatReport(map, sink, inputs);
    ASSERT_EQ(rows.size(), map.sites().size());

    // Rows are sorted by cycles descending and the energy split sums
    // back to the run total.
    double energy = 0, cycles_pct = 0;
    for (size_t i = 0; i < rows.size(); ++i) {
        if (i) {
            EXPECT_LE(rows[i].activity.cycles,
                      rows[i - 1].activity.cycles);
        }
        energy += rows[i].energyPj;
        cycles_pct += rows[i].cyclesPct;
    }
    EXPECT_NEAR(energy, r.totalEnergy, 1e-6 * r.totalEnergy);
    EXPECT_NEAR(cycles_pct, 100.0, 1e-9);

    std::string listing = formatHeatListing(rows, "sha.c", 10);
    EXPECT_NE(listing.find("cycles"), std::string::npos);
    EXPECT_NE(listing.find("energy_pJ"), std::string::npos);
    EXPECT_NE(listing.find("sha"), std::string::npos);

    // Folded stacks carry one weighted line per executed block.
    std::string folded = foldedStacks(rows, "sha.c");
    size_t lines = 0, executed = 0;
    for (char c : folded)
        lines += c == '\n';
    for (const HeatRow &row : rows)
        executed += row.activity.cycles > 0;
    EXPECT_EQ(lines, executed);
    EXPECT_NE(folded.find(";"), std::string::npos);
}

/** Interpreter-side reconciliation: decoded-engine per-block sums
 *  equal InterpStats on every workload x misspeculation policy (the
 *  policies are interpreter-level; the core's misspeculation is
 *  data-driven). */
TEST(BlockProfiler, InterpreterSumsReconcileAcrossSuiteAndPolicies)
{
    uint64_t suite_misspecs = 0;
    for (const Workload &w : mibenchSuite()) {
        // Squeeze via System so the module carries real SpecRegions.
        System sys = makeBitspec(w);
        for (MisspecPolicy policy :
             {MisspecPolicy::Hardware, MisspecPolicy::ForceFirst,
              MisspecPolicy::Random}) {
            w.setInput(sys.module(), 1);
            Interpreter in(sys.module());
            in.setMisspecPolicy(policy);
            in.setRandomSeed(7);
            in.setBlockProfile(true);
            in.run("main");

            uint64_t insts = 0, misspecs = 0, entries = 0;
            for (const auto &e : in.blockProfile()) {
                EXPECT_NE(e.function, nullptr) << w.name;
                EXPECT_FALSE(e.blockName.empty()) << w.name;
                insts += e.insts;
                misspecs += e.misspecs;
                entries += e.entries;
            }
            EXPECT_EQ(insts, in.stats().steps)
                << w.name << " policy "
                << static_cast<int>(policy);
            EXPECT_EQ(misspecs, in.stats().misspeculations)
                << w.name << " policy "
                << static_cast<int>(policy);
            EXPECT_GT(entries, 0u) << w.name;
            suite_misspecs += misspecs;
        }
    }
    // The forcing policies guarantee real misspeculations.
    EXPECT_GT(suite_misspecs, 0u);
}

TEST(BlockProfiler, InterpreterProfileOffRecordsNothing)
{
    const Workload &w = getWorkload("CRC32");
    System sys = makeBitspec(w);
    w.setInput(sys.module(), 1);
    Interpreter in(sys.module());
    in.run("main");
    EXPECT_TRUE(in.blockProfile().empty());
}

TEST(CounterTracks, EmitWindowedSamplesWhenTracing)
{
    const Workload &w = getWorkload("CRC32");
    System sys = makeBitspec(w);

    trace::setEnabled(true);
    trace::reset();
    CounterTrackEmitter tracks(4096);
    RunObservers obs;
    obs.tracks = &tracks;
    RunResult r =
        sys.run([&w](Module &m) { w.setInput(m, 1); }, {}, obs);
    trace::setEnabled(false);

    ASSERT_GT(r.counters.instructions, 4096u);
    // One sample per full window plus the finish() flush.
    EXPECT_GE(tracks.samplesEmitted(),
              r.counters.instructions / 4096);
    // Three counter tracks per sample land in the trace buffer.
    EXPECT_GE(trace::eventCount(), 3 * tracks.samplesEmitted());
    trace::reset();
}

TEST(CounterTracks, SilentWhenTracingDisabled)
{
    const Workload &w = getWorkload("CRC32");
    System sys = makeBitspec(w);

    trace::setEnabled(false);
    trace::reset();
    CounterTrackEmitter tracks(4096);
    RunObservers obs;
    obs.tracks = &tracks;
    sys.run([&w](Module &m) { w.setInput(m, 1); }, {}, obs);
    EXPECT_EQ(tracks.samplesEmitted(), 0u);
    EXPECT_EQ(trace::eventCount(), 0u);
}

} // namespace
} // namespace bitspec
