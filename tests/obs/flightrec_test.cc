#include <gtest/gtest.h>

#include <csignal>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "obs/flightrec.h"

namespace bitspec
{
namespace
{

namespace fs = std::filesystem;

struct TempDir
{
    TempDir()
    {
        path = (fs::temp_directory_path() /
                ("bitspec_flightrec_" +
                 std::to_string(static_cast<unsigned long long>(
                     reinterpret_cast<uintptr_t>(this)))))
                   .string();
        fs::create_directories(path);
    }
    ~TempDir() { fs::remove_all(path); }
    std::string path;
};

/** Deactivates capture and clears the rings on exit. */
struct RecorderGuard
{
    ~RecorderGuard()
    {
        flightrec::setActive(false);
        flightrec::clearInflight();
        flightrec::reset();
    }
};

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** True when every brace/bracket outside string literals balances —
 *  the "torn but loadable" contract a post-mortem dump guarantees. */
bool
jsonBalanced(const std::string &s)
{
    int depth = 0;
    bool in_string = false, escaped = false;
    for (char c : s) {
        if (in_string) {
            if (escaped)
                escaped = false;
            else if (c == '\\')
                escaped = true;
            else if (c == '"')
                in_string = false;
            continue;
        }
        if (c == '"')
            in_string = true;
        else if (c == '{' || c == '[')
            ++depth;
        else if (c == '}' || c == ']') {
            if (--depth < 0)
                return false;
        }
    }
    return depth == 0 && !in_string;
}

TEST(Flightrec, InactiveRecorderDropsEvents)
{
    RecorderGuard guard;
    flightrec::setActive(false);
    flightrec::reset();
    flightrec::record('i', "ignored", "test", "x");
    EXPECT_EQ(flightrec::eventCount(), 0u);
}

TEST(Flightrec, RecordsAndDumpsLoadableTrace)
{
    RecorderGuard guard;
    TempDir tmp;
    flightrec::reset();
    flightrec::setActive(true);
    flightrec::record('B', "runCell", "experiment", "CRC32");
    flightrec::record('C', "cycles", "counters", "12345");
    flightrec::record('i', "log.warn", "log", "quote \" and \\ slash");
    flightrec::record('E', "runCell", "experiment", "");
    EXPECT_GE(flightrec::eventCount(), 4u);

    const std::string path = tmp.path + "/dump.json";
    ASSERT_TRUE(flightrec::dumpTo(path, "unit-test"));
    const std::string dump = slurp(path);
    EXPECT_NE(dump.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(dump.find("\"reason\":\"unit-test\""),
              std::string::npos);
    EXPECT_NE(dump.find("runCell"), std::string::npos);
    EXPECT_TRUE(jsonBalanced(dump)) << dump;
}

TEST(Flightrec, InflightRecordEmbeddedAsEscapedString)
{
    RecorderGuard guard;
    TempDir tmp;
    flightrec::reset();
    flightrec::setActive(true);
    flightrec::record('B', "cell", "experiment", "");
    flightrec::setInflight(
        "{\"schema_version\":1,\"kind\":\"cell\",\"workload\":\"CRC32\"}");

    const std::string path = tmp.path + "/inflight.json";
    ASSERT_TRUE(flightrec::dumpTo(path, "unit-test"));
    flightrec::clearInflight();
    const std::string dump = slurp(path);
    EXPECT_NE(dump.find("\"inflight\":["), std::string::npos);
    // The payload is embedded as one escaped string, so its quotes
    // arrive backslashed and the dump stays loadable even when the
    // payload is torn.
    EXPECT_NE(dump.find("\\\"workload\\\":\\\"CRC32\\\""),
              std::string::npos)
        << dump;
    EXPECT_TRUE(jsonBalanced(dump)) << dump;

    const std::string path2 = tmp.path + "/cleared.json";
    ASSERT_TRUE(flightrec::dumpTo(path2, "unit-test"));
    EXPECT_EQ(slurp(path2).find("CRC32"), std::string::npos);
}

TEST(Flightrec, DumpNowRequiresInstall)
{
    RecorderGuard guard;
    flightrec::setActive(true);
    if (flightrec::dumpDir()[0] == '\0')
        EXPECT_EQ(flightrec::dumpNow("unit-test"), "");
}

/** The acceptance test: kill a child mid-run and assert the crash
 *  handler leaves a loadable post-mortem trace behind. */
TEST(Flightrec, CrashedChildLeavesLoadableDump)
{
    TempDir tmp;
    const pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        // Child: arm the recorder the way BITSPEC_FLIGHTREC would,
        // simulate a run in progress, then die the hard way.
        flightrec::install(tmp.path);
        flightrec::record('B', "runCell", "experiment", "sha");
        flightrec::record('C', "instructions", "counters", "99");
        flightrec::setInflight(
            "{\"kind\":\"cell\",\"workload\":\"sha\"}");
        ::raise(SIGSEGV);
        ::_exit(0); // Unreachable: the handler re-raises.
    }

    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFSIGNALED(status));
    EXPECT_EQ(WTERMSIG(status), SIGSEGV);

    const std::string dump_path = tmp.path + "/flightrec-" +
                                  std::to_string(pid) + "-crash.json";
    ASSERT_TRUE(fs::exists(dump_path)) << dump_path;
    const std::string dump = slurp(dump_path);
    EXPECT_NE(dump.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(dump.find("runCell"), std::string::npos);
    EXPECT_NE(dump.find("\"reason\":\"signal:"), std::string::npos);
    EXPECT_NE(dump.find("\\\"workload\\\":\\\"sha\\\""),
              std::string::npos);
    EXPECT_TRUE(jsonBalanced(dump)) << dump;
}

} // namespace
} // namespace bitspec
