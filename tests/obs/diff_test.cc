#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/diff.h"

namespace bitspec
{
namespace
{

/** A minimal joined-cell record; fields are added per test. */
LedgerRecord
makeCell(const std::string &key, const std::string &workload = "w")
{
    LedgerRecord rec;
    rec.kind = "cell";
    rec.flavour = "f";
    rec.bench = "b";
    rec.workload = workload;
    rec.cellKey = key;
    rec.systemKey = "sk";
    rec.artifactKey = "ak";
    rec.cacheSource = "compile";
    rec.engine = "fast";
    rec.policy = "hardware";
    rec.outputChecksum = "0000000000000001";
    rec.setField("counters.instructions", 1000);
    rec.setField("counters.cycles", 1500);
    rec.setField("energy.total_pj", 12.0);
    rec.setField("run.return", 42);
    rec.setField("run.wall_sec", 0.5);
    return rec;
}

const FieldDrift *
findDrift(const CellDiff &cell, const std::string &name)
{
    for (const FieldDrift &d : cell.drifts)
        if (d.name == name)
            return &d;
    return nullptr;
}

TEST(Diff, IdenticalLedgersAreClean)
{
    std::vector<LedgerRecord> a = {makeCell("k1"), makeCell("k2")};
    LedgerDiff diff = diffLedgers(a, a);
    EXPECT_TRUE(diff.clean());
    EXPECT_EQ(diff.regressedCells, 0u);
    EXPECT_EQ(diff.divergedCells, 0u);
    ASSERT_EQ(diff.cells.size(), 2u);
    for (const CellDiff &c : diff.cells) {
        EXPECT_FALSE(c.regressed);
        EXPECT_TRUE(c.drifts.empty());
    }
    EXPECT_TRUE(diff.onlyA.empty());
    EXPECT_TRUE(diff.onlyB.empty());
}

TEST(Diff, RegressionClassifiedWithStage)
{
    std::vector<LedgerRecord> a = {makeCell("k1")};
    std::vector<LedgerRecord> b = {makeCell("k1")};
    b[0].setField("counters.cycles", 1800); // +20% = worse.
    LedgerDiff diff = diffLedgers(a, b);
    EXPECT_FALSE(diff.clean());
    EXPECT_EQ(diff.regressedCells, 1u);
    ASSERT_EQ(diff.cells.size(), 1u);
    const CellDiff &cell = diff.cells[0];
    EXPECT_TRUE(cell.regressed);
    EXPECT_EQ(cell.stage, "execute"); // counters.* = execute stage.
    const FieldDrift *d = findDrift(cell, "counters.cycles");
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->cls, DriftClass::Regressed);
    EXPECT_NEAR(d->deltaPct, 20.0, 1e-9);
}

TEST(Diff, ImprovementIsCleanButReported)
{
    std::vector<LedgerRecord> a = {makeCell("k1")};
    std::vector<LedgerRecord> b = {makeCell("k1")};
    b[0].setField("energy.total_pj", 10.0); // Down = better.
    LedgerDiff diff = diffLedgers(a, b);
    EXPECT_TRUE(diff.clean());
    EXPECT_EQ(diff.improvedCells, 1u);
    const FieldDrift *d =
        findDrift(diff.cells[0], "energy.total_pj");
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->cls, DriftClass::Improved);
}

TEST(Diff, TolerancesSuppressNoise)
{
    std::vector<LedgerRecord> a = {makeCell("k1")};
    std::vector<LedgerRecord> b = {makeCell("k1")};
    b[0].setField("counters.cycles", 1503); // +0.2%.
    EXPECT_FALSE(diffLedgers(a, b).clean()); // Zero tolerance.

    DiffOptions rel;
    rel.relTolPct = 0.5;
    EXPECT_TRUE(diffLedgers(a, b, rel).clean());

    DiffOptions abs;
    abs.absTol = 5.0;
    EXPECT_TRUE(diffLedgers(a, b, abs).clean());

    DiffOptions per_field;
    per_field.perFieldRelTolPct["counters.cycles"] = 1.0;
    EXPECT_TRUE(diffLedgers(a, b, per_field).clean());
}

TEST(Diff, WallTimeIsInformational)
{
    std::vector<LedgerRecord> a = {makeCell("k1")};
    std::vector<LedgerRecord> b = {makeCell("k1")};
    b[0].setField("run.wall_sec", 5.0); // 10x slower wall clock.
    LedgerDiff diff = diffLedgers(a, b);
    EXPECT_TRUE(diff.clean()); // Timing drifts never fail a diff.
    const FieldDrift *d = findDrift(diff.cells[0], "run.wall_sec");
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->cls, DriftClass::Info);
}

TEST(Diff, ChecksumChangeDiverges)
{
    std::vector<LedgerRecord> a = {makeCell("k1")};
    std::vector<LedgerRecord> b = {makeCell("k1")};
    b[0].outputChecksum = "0000000000000002";
    LedgerDiff diff = diffLedgers(a, b);
    EXPECT_FALSE(diff.clean());
    EXPECT_EQ(diff.divergedCells, 1u);
    EXPECT_TRUE(diff.cells[0].diverged);
    EXPECT_EQ(diff.cells[0].stage, "output");
}

TEST(Diff, UnjoinedKeysListed)
{
    std::vector<LedgerRecord> a = {makeCell("k1"), makeCell("gone")};
    std::vector<LedgerRecord> b = {makeCell("k1"), makeCell("new")};
    LedgerDiff diff = diffLedgers(a, b);
    ASSERT_EQ(diff.onlyA.size(), 1u);
    EXPECT_EQ(diff.onlyA[0], "w gone"); // workload + cell key.
    ASSERT_EQ(diff.onlyB.size(), 1u);
    EXPECT_EQ(diff.onlyB[0], "w new");
}

TEST(Diff, MatrixRecordsIgnored)
{
    LedgerRecord matrix;
    matrix.kind = "matrix";
    matrix.flavour = "f";
    matrix.bench = "b";
    matrix.setField("matrix.cells", 4);
    std::vector<LedgerRecord> a = {makeCell("k1"), matrix};
    std::vector<LedgerRecord> b = {makeCell("k1")};
    LedgerDiff diff = diffLedgers(a, b);
    EXPECT_EQ(diff.cells.size(), 1u);
    EXPECT_TRUE(diff.onlyA.empty());
}

/** The forensic payoff: a regression localizes to the region whose
 *  misspeculations grew most and the block whose cycles grew most. */
TEST(Diff, RegressionLocalizesToRegionAndBlock)
{
    auto with_detail = [](uint64_t hot_misspecs,
                          uint64_t hot_cycles) {
        LedgerRecord rec = makeCell("k1");
        LedgerRegionRow quiet;
        quiet.function = "main";
        quiet.regionId = 1;
        quiet.srcLine = 5;
        quiet.misspecs = 2;
        quiet.handlerCycles = 10;
        rec.regions.push_back(quiet);
        LedgerRegionRow hot;
        hot.function = "crc32";
        hot.regionId = 3;
        hot.srcLine = 42;
        hot.misspecs = hot_misspecs;
        hot.handlerCycles = 10 * hot_misspecs;
        rec.regions.push_back(hot);

        LedgerHeatRow cold;
        cold.function = "main";
        cold.block = "bb1";
        cold.srcLine = 5;
        cold.cycles = 100;
        rec.heat.push_back(cold);
        LedgerHeatRow warm;
        warm.function = "crc32";
        warm.block = "bb9";
        warm.srcLine = 42;
        warm.cycles = hot_cycles;
        rec.heat.push_back(warm);
        return rec;
    };

    std::vector<LedgerRecord> a = {with_detail(2, 100)};
    std::vector<LedgerRecord> b = {with_detail(50, 900)};
    b[0].setField("counters.cycles", 2500); // Trip the gate.
    LedgerDiff diff = diffLedgers(a, b);
    ASSERT_EQ(diff.cells.size(), 1u);
    const CellDiff &cell = diff.cells[0];
    ASSERT_TRUE(cell.regressed);
    // The quiet region/block did not move; the hot ones did.
    EXPECT_NE(cell.region.find("crc32"), std::string::npos)
        << cell.region;
    EXPECT_NE(cell.region.find("42"), std::string::npos)
        << cell.region;
    EXPECT_NE(cell.block.find("bb9"), std::string::npos) << cell.block;
}

TEST(Diff, FormatAndJsonCarryTheVerdict)
{
    std::vector<LedgerRecord> a = {makeCell("k1")};
    std::vector<LedgerRecord> b = {makeCell("k1")};
    b[0].setField("counters.cycles", 1800);
    LedgerDiff diff = diffLedgers(a, b);
    const std::string table = formatLedgerDiff(diff);
    EXPECT_NE(table.find("counters.cycles"), std::string::npos);
    const std::string json = ledgerDiffToJson(diff);
    EXPECT_NE(json.find("\"regressed_cells\":1"), std::string::npos)
        << json;
}

} // namespace
} // namespace bitspec
