/**
 * @file
 * Live end-to-end selfcheck of the run ledger: a real 2x2 experiment
 * matrix (config x run seed) is executed with the global writer
 * attached in detail mode, then every emitted record is re-loaded,
 * schema-validated, and reconciled field-for-field against the
 * RunResults the runner returned. This is the fast `ledger_selfcheck`
 * CI target (ctest -L obs-ledger).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "obs/ledger.h"
#include "workloads/workload.h"

namespace bitspec
{
namespace
{

struct TempLedger
{
    TempLedger()
    {
        path = (std::filesystem::temp_directory_path() /
                ("bitspec_ledger_sc_" +
                 std::to_string(static_cast<unsigned long long>(
                     reinterpret_cast<uintptr_t>(this))) +
                 ".jsonl"))
                   .string();
        std::remove(path.c_str());
    }
    ~TempLedger() { std::remove(path.c_str()); }
    std::string path;
};

/** Detaches the global writer and detail override on exit so no other
 *  test in this binary inherits ledger emission. */
struct GlobalLedgerGuard
{
    ~GlobalLedgerGuard()
    {
        LedgerWriter::setGlobal(nullptr);
        LedgerWriter::setDetail(false);
    }
};

TEST(LedgerSelfcheck, LiveMatrixValidatesAndReconciles)
{
    TempLedger tmp;
    GlobalLedgerGuard guard;
    LedgerWriter::setGlobal(std::make_unique<LedgerWriter>(tmp.path));
    LedgerWriter::setDetail(true);

    const Workload &w = getWorkload("CRC32");
    std::vector<ExperimentCell> cells;
    for (const SystemConfig &cfg :
         {SystemConfig::baseline(), SystemConfig::bitspec()})
        for (uint64_t run_seed : {uint64_t(0), uint64_t(1)})
            cells.push_back(ExperimentCell(&w, cfg, 0, run_seed));

    ExperimentRunner runner;
    std::vector<RunResult> results = runner.run(cells);
    LedgerWriter::setGlobal(nullptr); // Flush point: fd closed.

    std::vector<LedgerRecord> recs = loadLedger(tmp.path);
    ASSERT_EQ(recs.size(), cells.size() + 1); // 4 cells + 1 matrix.

    size_t matrix_records = 0;
    for (const LedgerRecord &rec : recs) {
        EXPECT_EQ(validateLedgerRecord(rec), "")
            << toJsonLine(rec).substr(0, 200);
        if (rec.kind == "matrix") {
            ++matrix_records;
            EXPECT_EQ(*rec.field("matrix.cells"),
                      static_cast<double>(cells.size()));
            EXPECT_LE(*rec.field("wall.p50_sec"),
                      *rec.field("wall.p95_sec"));
            EXPECT_LE(*rec.field("wall.p95_sec"),
                      *rec.field("wall.p99_sec"));
        }
    }
    EXPECT_EQ(matrix_records, 1u);

    // Reconcile each cell record with the RunResult the runner handed
    // back, joining on the canonical cell key (workers may append in
    // any order).
    for (size_t i = 0; i < cells.size(); ++i) {
        const std::string key = ExperimentRunner::cellKey(cells[i]);
        const LedgerRecord *rec = nullptr;
        for (const LedgerRecord &r : recs)
            if (r.kind == "cell" && r.cellKey == key)
                rec = &r;
        ASSERT_NE(rec, nullptr) << key;

        const RunResult &r = results[i];
        EXPECT_EQ(*rec->field("counters.instructions"),
                  static_cast<double>(r.counters.instructions));
        EXPECT_EQ(*rec->field("counters.cycles"),
                  static_cast<double>(r.counters.cycles));
        EXPECT_EQ(*rec->field("counters.misspeculations"),
                  static_cast<double>(r.counters.misspeculations));
        EXPECT_EQ(*rec->field("energy.total_pj"), r.totalEnergy);
        EXPECT_EQ(*rec->field("energy.epi_pj"), r.epi);
        EXPECT_EQ(*rec->field("run.return"),
                  static_cast<double>(r.returnValue));
        char hex[17];
        std::snprintf(hex, sizeof hex, "%016llx",
                      static_cast<unsigned long long>(
                          r.outputChecksum));
        EXPECT_EQ(rec->outputChecksum, hex);

        // Provenance: the workload ran from a compile or the in-memory
        // cache (no artifact store attached here), and every seed is
        // recorded.
        EXPECT_EQ(rec->workload, w.name);
        EXPECT_TRUE(rec->cacheSource == "compile" ||
                    rec->cacheSource == "memory")
            << rec->cacheSource;
        EXPECT_EQ(rec->runSeed, cells[i].runSeed);
        EXPECT_FALSE(rec->flavour.empty());
        EXPECT_FALSE(rec->artifactKey.empty());

        // Detail mode: the validator already proved the region/heat
        // sums reconcile exactly with ActivityCounters; spot-check
        // the rows exist whenever the run executed instructions.
        if (r.counters.instructions > 0)
            EXPECT_FALSE(rec->heat.empty());
    }
}

} // namespace
} // namespace bitspec
