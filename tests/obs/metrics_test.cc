#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "support/error.h"

namespace bitspec
{
namespace
{

TEST(Metrics, CounterFindOrCreateIsStable)
{
    MetricsRegistry reg;
    Counter &a = reg.counter("test.hits");
    Counter &b = reg.counter("test.hits");
    EXPECT_EQ(&a, &b);
    a.add();
    b.add(4);
    EXPECT_EQ(a.value(), 5u);
}

TEST(Metrics, LabelsDistinguishInstruments)
{
    MetricsRegistry reg;
    Counter &crc = reg.counter("run.cells", {{"workload", "CRC32"}});
    Counter &dij = reg.counter("run.cells", {{"workload", "dijkstra"}});
    EXPECT_NE(&crc, &dij);
    crc.add(2);
    dij.add(3);
    EXPECT_EQ(crc.value(), 2u);
    EXPECT_EQ(dij.value(), 3u);
    // Label order does not matter: same sorted key, same instrument.
    Counter &two = reg.counter("x", {{"a", "1"}, {"b", "2"}});
    Counter &two_swapped = reg.counter("x", {{"b", "2"}, {"a", "1"}});
    EXPECT_EQ(&two, &two_swapped);
}

TEST(Metrics, KindMismatchPanics)
{
    MetricsRegistry reg;
    reg.counter("dual.use");
    EXPECT_THROW(reg.gauge("dual.use"), PanicError);
    EXPECT_THROW(reg.histogram("dual.use"), PanicError);
}

TEST(Metrics, GaugeLastWriteWins)
{
    MetricsRegistry reg;
    Gauge &g = reg.gauge("temp");
    g.set(1.5);
    g.set(2.5);
    EXPECT_DOUBLE_EQ(g.value(), 2.5);
}

TEST(Metrics, HistogramRecordsAndSnapshots)
{
    MetricsRegistry reg;
    HistogramMetric &h = reg.histogram("latency");
    for (double x : {1.0, 2.0, 3.0, 4.0})
        h.record(x);
    Histogram snap = h.snapshotValues();
    EXPECT_EQ(snap.count(), 4u);
    EXPECT_DOUBLE_EQ(snap.p50(), 2.5);
}

TEST(Metrics, SnapshotKeepsMetricFamiliesContiguous)
{
    // The registry keys instruments as "name{k=v}" and '{' sorts
    // above '.', so raw key order would interleave "foo.bar" between
    // "foo"'s labelled variants. The snapshot must sort by
    // (name, labels) instead: all "foo" rows first, then "foo.bar".
    MetricsRegistry reg;
    reg.counter("foo", {{"a", "2"}}).add(1);
    reg.counter("foo.bar").add(2);
    reg.counter("foo", {{"a", "1"}}).add(3);
    auto samples = reg.snapshot();
    ASSERT_EQ(samples.size(), 3u);
    EXPECT_EQ(samples[0].name, "foo");
    ASSERT_EQ(samples[0].labels.size(), 1u);
    EXPECT_EQ(samples[0].labels[0].second, "1");
    EXPECT_EQ(samples[1].name, "foo");
    EXPECT_EQ(samples[1].labels[0].second, "2");
    EXPECT_EQ(samples[2].name, "foo.bar");
}

TEST(Metrics, SnapshotIsSortedAndComplete)
{
    MetricsRegistry reg;
    reg.counter("z.last").add(1);
    reg.counter("a.first").add(2);
    reg.gauge("m.middle").set(3.0);
    auto samples = reg.snapshot();
    ASSERT_EQ(samples.size(), 3u);
    EXPECT_EQ(samples[0].name, "a.first");
    EXPECT_EQ(samples[1].name, "m.middle");
    EXPECT_EQ(samples[2].name, "z.last");
    EXPECT_DOUBLE_EQ(samples[0].value, 2.0);
    EXPECT_EQ(samples[1].kind, MetricSample::Kind::Gauge);
}

TEST(Metrics, JsonLinesOnePerMetric)
{
    MetricsRegistry reg;
    reg.counter("c.one", {{"workload", "CRC32"}}).add(7);
    reg.histogram("h.two").record(1.0);
    std::ostringstream os;
    reg.writeJsonLines(os);
    std::string out = os.str();
    // Two lines, each a JSON object.
    size_t lines = 0;
    for (char ch : out)
        lines += ch == '\n';
    EXPECT_EQ(lines, 2u);
    EXPECT_NE(out.find("\"name\":\"c.one\""), std::string::npos);
    EXPECT_NE(out.find("\"workload\":\"CRC32\""), std::string::npos);
    EXPECT_NE(out.find("\"value\":7"), std::string::npos);
    EXPECT_NE(out.find("\"p50\":"), std::string::npos);
}

TEST(Metrics, TableContainsNamesAndValues)
{
    MetricsRegistry reg;
    reg.counter("experiment.cache.hits").add(12);
    std::ostringstream os;
    reg.writeTable(os);
    EXPECT_NE(os.str().find("experiment.cache.hits"),
              std::string::npos);
    EXPECT_NE(os.str().find("12"), std::string::npos);
}

TEST(Metrics, ConcurrentCountsAreExact)
{
    MetricsRegistry reg;
    Counter &c = reg.counter("contended");
    std::vector<std::thread> threads;
    constexpr int kThreads = 8, kAdds = 10000;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&c] {
            for (int i = 0; i < kAdds; ++i)
                c.add();
        });
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(c.value(),
              static_cast<uint64_t>(kThreads) * kAdds);
}

TEST(Metrics, ResetDropsInstruments)
{
    MetricsRegistry reg;
    reg.counter("ephemeral").add(1);
    reg.reset();
    EXPECT_TRUE(reg.snapshot().empty());
    // Recreating after reset starts from zero.
    EXPECT_EQ(reg.counter("ephemeral").value(), 0u);
}

TEST(Metrics, GlobalRegistryIsASingleton)
{
    EXPECT_EQ(&MetricsRegistry::global(), &MetricsRegistry::global());
}

} // namespace
} // namespace bitspec
