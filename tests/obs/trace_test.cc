#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "obs/trace.h"

namespace bitspec
{
namespace
{

/** Every case starts from a clean, enabled tracer and leaves it
 *  disabled and empty. */
class TraceTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        trace::reset();
        trace::setEnabled(true);
    }

    void
    TearDown() override
    {
        trace::setEnabled(false);
        trace::reset();
    }
};

TEST_F(TraceTest, SpanEmitsBalancedBeginEnd)
{
    {
        trace::Span s("unit.span", "test");
    }
    auto events = trace::snapshot();
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].phase, 'B');
    EXPECT_EQ(events[0].name, "unit.span");
    EXPECT_EQ(events[1].phase, 'E');
    EXPECT_EQ(events[1].name, "unit.span");
    EXPECT_LE(events[0].tsNs, events[1].tsNs);
    EXPECT_EQ(events[0].tid, events[1].tid);
}

TEST_F(TraceTest, DisabledSpanEmitsNothing)
{
    trace::setEnabled(false);
    {
        trace::Span s("unit.hidden", "test");
        s.arg("k", "v");
        trace::instant("unit.instant", "test");
        trace::counter("unit.counter", "test", 1.0);
    }
    EXPECT_EQ(trace::eventCount(), 0u);
}

TEST_F(TraceTest, ArgsLandOnEndEvent)
{
    {
        trace::Span s("unit.args", "test");
        s.arg("answer", "42");
        s.arg("name", "squeeze");
    }
    auto events = trace::snapshot();
    ASSERT_EQ(events.size(), 2u);
    EXPECT_TRUE(events[0].args.empty());
    ASSERT_EQ(events[1].args.size(), 2u);
    EXPECT_EQ(events[1].args[0].first, "answer");
    EXPECT_EQ(events[1].args[0].second, "42");
}

TEST_F(TraceTest, NestedSpansCloseInnerFirst)
{
    {
        trace::Span outer("outer", "test");
        trace::Span inner("inner", "test");
    }
    auto events = trace::snapshot();
    ASSERT_EQ(events.size(), 4u);
    EXPECT_EQ(events[0].name, "outer");
    EXPECT_EQ(events[1].name, "inner");
    EXPECT_EQ(events[2].name, "inner"); // Inner 'E' before outer 'E'.
    EXPECT_EQ(events[3].name, "outer");
}

TEST_F(TraceTest, InstantAndCounterPhases)
{
    trace::instant("tick", "test", {{"k", "v"}});
    trace::counter("gauge", "test", 3.5);
    auto events = trace::snapshot();
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].phase, 'i');
    EXPECT_EQ(events[1].phase, 'C');
}

TEST_F(TraceTest, ThreadsGetDistinctTids)
{
    uint32_t main_tid = 0;
    {
        trace::Span s("main.span", "test");
    }
    main_tid = trace::snapshot().back().tid;

    std::thread t([] { trace::Span s("worker.span", "test"); });
    t.join();

    auto events = trace::snapshot();
    ASSERT_EQ(events.size(), 4u);
    uint32_t worker_tid = events.back().tid;
    EXPECT_NE(main_tid, worker_tid);
}

TEST_F(TraceTest, PerThreadTimestampsAreMonotonic)
{
    for (int i = 0; i < 100; ++i) {
        trace::Span s("loop.span", "test");
    }
    auto events = trace::snapshot();
    ASSERT_EQ(events.size(), 200u);
    for (size_t i = 1; i < events.size(); ++i) {
        ASSERT_EQ(events[i].tid, events[0].tid);
        EXPECT_GE(events[i].tsNs, events[i - 1].tsNs);
    }
}

TEST_F(TraceTest, JsonHasTraceEventsArray)
{
    {
        trace::Span s("json.span", "test");
        s.arg("count", "12");
        s.arg("label", "abc");
    }
    std::string json = trace::toJson();
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"json.span\""), std::string::npos);
    // Numeric-looking args are exported unquoted, text quoted.
    EXPECT_NE(json.find("\"count\":12"), std::string::npos);
    EXPECT_NE(json.find("\"label\":\"abc\""), std::string::npos);
}

TEST_F(TraceTest, ResetDropsEverything)
{
    trace::instant("gone", "test");
    EXPECT_GT(trace::eventCount(), 0u);
    trace::reset();
    EXPECT_EQ(trace::eventCount(), 0u);
}

} // namespace
} // namespace bitspec
