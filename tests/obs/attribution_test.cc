#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "core/system.h"
#include "obs/attribution.h"
#include "workloads/workload.h"

namespace bitspec
{
namespace
{

/** Build a squeezed System for @p w profiled on seed 0. */
System
makeBitspec(const Workload &w)
{
    return System(w.source, SystemConfig::bitspec(),
                  [&w](Module &m) { w.setInput(m, 0); });
}

TEST(Attribution, MapClassifiesSkeletonPerMember)
{
    const Workload &w = getWorkload("CRC32");
    System sys = makeBitspec(w);
    AttributionMap map(sys.program());

    // Per program: every Member index has a Skeleton partner and they
    // are equinumerous; handler indices exist iff regions exist.
    size_t members = 0, skeletons = 0, handlers = 0;
    const size_t n = sys.program().flat.size();
    for (uint32_t i = 0; i < n; ++i) {
        switch (map.roleAt(i)) {
          case IndexRole::Member: ++members; break;
          case IndexRole::Skeleton: ++skeletons; break;
          case IndexRole::Handler: ++handlers; break;
          case IndexRole::None: break;
        }
    }
    ASSERT_FALSE(map.sites().empty())
        << "CRC32 under bitspec should create speculative regions";
    EXPECT_EQ(members, skeletons);
    EXPECT_GT(handlers, 0u);

    // Role-carrying indices always resolve to a site.
    for (uint32_t i = 0; i < n; ++i) {
        if (map.roleAt(i) != IndexRole::None) {
            ASSERT_GE(map.siteAt(i), 0);
            ASSERT_LT(static_cast<size_t>(map.siteAt(i)),
                      map.sites().size());
        } else {
            EXPECT_LT(map.siteAt(i), 0);
        }
    }
}

TEST(Attribution, SitesCarryProvenance)
{
    const Workload &w = getWorkload("CRC32");
    System sys = makeBitspec(w);
    AttributionMap map(sys.program());
    std::set<std::pair<std::string, int>> seen;
    for (const RegionSite &site : map.sites()) {
        EXPECT_FALSE(site.function.empty());
        EXPECT_GE(site.regionId, 0);
        EXPECT_GT(site.srcLine, 0)
            << site.function << "#" << site.regionId;
        // (function, regionId) is unique program-wide.
        EXPECT_TRUE(
            seen.emplace(site.function, site.regionId).second);
        // The entry index is a member instruction of this region.
        EXPECT_EQ(map.roleAt(site.entryIndex), IndexRole::Member);
        EXPECT_EQ(map.entrySiteAt(site.entryIndex),
                  map.siteAt(site.entryIndex));
    }
}

TEST(Attribution, SinkWithoutMisspecsStaysZero)
{
    const Workload &w = getWorkload("CRC32");
    System sys = makeBitspec(w);
    AttributionMap map(sys.program());
    AttributionSink sink(map);
    EXPECT_EQ(sink.totalMisspecs(), 0u);
    EXPECT_EQ(sink.unattributedMisspecs(), 0u);
    for (const RegionActivity &a : sink.activity()) {
        EXPECT_EQ(a.entries, 0u);
        EXPECT_EQ(a.misspecs, 0u);
    }
}

/** The acceptance invariant: per-region misspeculation counts sum
 *  exactly to the core model's aggregate counter — on every workload
 *  of the suite, on the training seed (no misspecs) and on held-out
 *  seeds (where rare misspeculations actually fire). */
TEST(Attribution, RegionMisspecsSumToCoreCounterAcrossSuite)
{
    uint64_t suite_misspecs = 0;
    for (const Workload &w : mibenchSuite()) {
        System sys = makeBitspec(w);
        AttributionMap map(sys.program());
        for (uint64_t seed : {0, 1, 3}) {
            AttributionSink sink(map);
            RunResult r = sys.run(
                [&w, seed](Module &m) { w.setInput(m, seed); }, {},
                &sink);

            EXPECT_EQ(sink.totalMisspecs(),
                      r.counters.misspeculations)
                << w.name << " seed " << seed;
            EXPECT_EQ(sink.unattributedMisspecs(), 0u)
                << w.name << " seed " << seed;
            suite_misspecs += sink.totalMisspecs();

            // Attribution must not perturb the run itself.
            RunResult plain = sys.run(
                [&w, seed](Module &m) { w.setInput(m, seed); });
            EXPECT_EQ(plain.outputChecksum, r.outputChecksum)
                << w.name;
            EXPECT_EQ(plain.counters.misspeculations,
                      r.counters.misspeculations)
                << w.name;
            EXPECT_EQ(plain.counters.cycles, r.counters.cycles)
                << w.name;

            // Per-region sanity: a region that misspeculated was
            // entered, and its handler ran at least one instruction
            // per misspec.
            for (const RegionActivity &a : sink.activity()) {
                if (a.misspecs == 0)
                    continue;
                EXPECT_GT(a.entries, 0u) << w.name;
                EXPECT_GE(a.handlerInsts, a.misspecs) << w.name;
            }
        }
    }
    // Held-out seeds must exercise at least one real misspeculation
    // suite-wide, or the invariant above is vacuous.
    EXPECT_GT(suite_misspecs, 0u);
}

TEST(Attribution, ReportRowsMatchSinkAndFormat)
{
    const Workload &w = getWorkload("sha");
    System sys = makeBitspec(w);
    AttributionMap map(sys.program());
    AttributionSink sink(map);
    RunResult r =
        sys.run([&w](Module &m) { w.setInput(m, 0); }, {}, &sink);

    System base(w.source, SystemConfig::baseline(),
                [&w](Module &m) { w.setInput(m, 0); });
    RunResult br = base.run([&w](Module &m) { w.setInput(m, 0); });

    RegionReportInputs inputs;
    inputs.energy = sys.config().energy;
    inputs.totalInstructions = r.counters.instructions;
    inputs.totalEnergyPj = r.totalEnergy;
    inputs.baselineEnergyPj = br.totalEnergy;
    auto rows = buildRegionReport(map, sink, inputs);
    ASSERT_EQ(rows.size(), map.sites().size());

    uint64_t misspecs = 0;
    for (size_t i = 0; i < rows.size(); ++i) {
        misspecs += rows[i].activity.misspecs;
        EXPECT_EQ(rows[i].site.regionId, map.sites()[i].regionId);
        EXPECT_DOUBLE_EQ(rows[i].netPj,
                         rows[i].savedPj - rows[i].overheadPj);
        EXPECT_GE(rows[i].misspecRate, 0.0);
    }
    EXPECT_EQ(misspecs, r.counters.misspeculations);

    // sha is lint-clean (see lint_selfcheck_test.cc), so every site
    // must carry a zero-leak verdict and the table renders "clean".
    for (const RegionReportRow &row : rows) {
        EXPECT_EQ(row.site.leakSites, 0);
        EXPECT_EQ(row.site.leaksDischarged, 0);
    }

    std::string table = formatRegionReport(rows, "sha.c");
    EXPECT_NE(table.find("region"), std::string::npos);
    EXPECT_NE(table.find("sha.c:"), std::string::npos);
    EXPECT_NE(table.find("net_pJ"), std::string::npos);
    EXPECT_NE(table.find("sni"), std::string::npos);
    EXPECT_NE(table.find("clean"), std::string::npos);
}

} // namespace
} // namespace bitspec
