#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "obs/trajectory.h"

namespace bitspec
{
namespace
{

TrajectoryRecord
makeRecord(double decoded_rate, bool debug = false)
{
    TrajectoryRecord rec;
    rec.gitSha = "abc1234";
    rec.buildType = debug ? "debug" : "release";
    rec.timestamp = "2026-01-01T00:00:00Z";
    rec.debugBuild = debug;
    rec.series.push_back(
        {"rate.interp_decoded_ir_per_s", decoded_rate});
    rec.series.push_back({"speedup.fig08_matrix", 3.5});
    rec.series.push_back({"obs.trace_overhead_pct", 0.4});
    return rec;
}

/** Temp history file removed at scope exit. */
struct TempHistory
{
    TempHistory()
    {
        path = (std::filesystem::temp_directory_path() /
                ("bitspec_hist_" +
                 std::to_string(
                     static_cast<unsigned long long>(
                         reinterpret_cast<uintptr_t>(this))) +
                 ".jsonl"))
                   .string();
    }
    ~TempHistory() { std::remove(path.c_str()); }
    std::string path;
};

TEST(Trajectory, JsonLineRoundTrips)
{
    TrajectoryRecord rec = makeRecord(1.5e8);
    std::string line = toJsonLine(rec);
    auto back = parseJsonLine(line);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->schemaVersion, kTrajectorySchemaVersion);
    EXPECT_EQ(back->gitSha, "abc1234");
    EXPECT_EQ(back->buildType, "release");
    EXPECT_EQ(back->timestamp, "2026-01-01T00:00:00Z");
    EXPECT_FALSE(back->debugBuild);
    ASSERT_EQ(back->series.size(), rec.series.size());
    EXPECT_DOUBLE_EQ(
        back->value("rate.interp_decoded_ir_per_s").value(), 1.5e8);
    EXPECT_DOUBLE_EQ(back->value("speedup.fig08_matrix").value(), 3.5);

    TrajectoryRecord dbg = makeRecord(1e6, /*debug=*/true);
    auto dbg_back = parseJsonLine(toJsonLine(dbg));
    ASSERT_TRUE(dbg_back.has_value());
    EXPECT_TRUE(dbg_back->debugBuild);
}

TEST(Trajectory, CorruptAndNewerSchemaLinesAreSkipped)
{
    EXPECT_FALSE(parseJsonLine("").has_value());
    EXPECT_FALSE(parseJsonLine("   \t ").has_value());
    EXPECT_FALSE(parseJsonLine("not json at all").has_value());
    EXPECT_FALSE(parseJsonLine("{\"schema_version\":999,"
                               "\"series\":{\"rate.x\":1}}")
                     .has_value());
    // Truncated write: series value cut off mid-number is dropped.
    EXPECT_FALSE(
        parseJsonLine("{\"schema_version\":1,\"series\":{\"rate.x\":")
            .has_value());

    TempHistory h;
    {
        std::ofstream of(h.path);
        of << toJsonLine(makeRecord(1e8)) << "\n";
        of << "garbage line\n";
        of << toJsonLine(makeRecord(2e8)) << "\n";
    }
    auto history = loadHistory(h.path);
    ASSERT_EQ(history.size(), 2u);
    EXPECT_DOUBLE_EQ(
        history[1].value("rate.interp_decoded_ir_per_s").value(), 2e8);
}

TEST(Trajectory, AppendCreatesFileAndParentDirs)
{
    TempHistory h;
    h.path += ".nested/deeper/hist.jsonl";
    ASSERT_TRUE(appendHistory(h.path, makeRecord(1e8)));
    ASSERT_TRUE(appendHistory(h.path, makeRecord(1.1e8)));
    auto history = loadHistory(h.path);
    EXPECT_EQ(history.size(), 2u);
    std::filesystem::remove_all(
        std::filesystem::path(h.path).parent_path().parent_path());
}

TEST(Trajectory, GatePassesOnEmptyHistory)
{
    GateResult r = checkAgainstHistory(makeRecord(1e8), {});
    EXPECT_TRUE(r.pass);
    EXPECT_EQ(r.baselineRuns, 0u);
    for (const SeriesVerdict &v : r.verdicts)
        EXPECT_TRUE(v.pass) << v.name;
}

TEST(Trajectory, EmptyWindowSaysRecordingOnly)
{
    // With no comparable baseline the rendered table must say so
    // explicitly instead of printing "baseline runs considered: 0".
    GateResult r = checkAgainstHistory(makeRecord(1e8), {});
    std::string table = formatGateResult(r);
    EXPECT_NE(table.find("no baseline, recording only"),
              std::string::npos);
    EXPECT_NE(table.find("gate PASS"), std::string::npos);
    EXPECT_EQ(table.find("baseline runs considered"),
              std::string::npos);
    // Gated series with no baseline are flagged per-row too.
    EXPECT_NE(table.find("no-baseline"), std::string::npos);

    // A debug run over a release-only history is the same situation.
    std::vector<TrajectoryRecord> release_only;
    release_only.push_back(makeRecord(2e8, /*debug=*/false));
    GateResult r2 = checkAgainstHistory(
        makeRecord(1e6, /*debug=*/true), release_only);
    EXPECT_NE(formatGateResult(r2).find("no baseline, recording only"),
              std::string::npos);

    // Once a baseline exists the explicit count comes back.
    std::vector<TrajectoryRecord> history;
    history.push_back(makeRecord(1e8));
    GateResult r3 = checkAgainstHistory(makeRecord(1e8), history);
    std::string table3 = formatGateResult(r3);
    EXPECT_NE(table3.find("baseline runs considered: 1"),
              std::string::npos);
    EXPECT_EQ(table3.find("recording only"), std::string::npos);
}

TEST(Trajectory, FirstRecordPathStartsTheHistory)
{
    // The very first bench_smoke on a branch: no history file at all.
    TempHistory h;
    EXPECT_TRUE(loadHistory(h.path).empty());

    // The gate passes (recording only) and the append creates the
    // file with exactly that one record.
    TrajectoryRecord first = makeRecord(1e8);
    GateResult r = checkAgainstHistory(first, loadHistory(h.path));
    EXPECT_TRUE(r.pass);
    EXPECT_EQ(r.baselineRuns, 0u);
    ASSERT_TRUE(appendHistory(h.path, first));

    auto history = loadHistory(h.path);
    ASSERT_EQ(history.size(), 1u);
    EXPECT_DOUBLE_EQ(
        history[0].value("rate.interp_decoded_ir_per_s").value(), 1e8);

    // The second run gates against that first record.
    GateResult r2 = checkAgainstHistory(makeRecord(1.05e8), history);
    EXPECT_TRUE(r2.pass);
    EXPECT_EQ(r2.baselineRuns, 1u);
}

TEST(Trajectory, RecordFromBenchJsonCoreEngineAB)
{
    // The legacy/fast Core A/B pair produces both rates plus the
    // derived speedup series (gated: the fast engine must not decay
    // back toward the legacy rate).
    const std::string json = R"({
  "context": { "library_build_type": "release" },
  "benchmarks": [
    { "name": "BM_CoreThroughput/legacy",
      "machine_instrs_per_s": 3.5e6 },
    { "name": "BM_CoreThroughput/fast",
      "machine_instrs_per_s": 7.0e7 }
  ]
})";
    TrajectoryRecord rec = recordFromBenchJson(json);
    EXPECT_DOUBLE_EQ(rec.value("rate.core_machine_per_s").value(),
                     3.5e6);
    EXPECT_DOUBLE_EQ(rec.value("rate.core_fast_machine_per_s").value(),
                     7.0e7);
    ASSERT_TRUE(rec.value("speedup.core_fast_vs_legacy").has_value());
    EXPECT_DOUBLE_EQ(rec.value("speedup.core_fast_vs_legacy").value(),
                     20.0);
    EXPECT_TRUE(isGatedSeries("speedup.core_fast_vs_legacy"));

    // Pre-A/B files spell the legacy series as bare BM_CoreThroughput
    // and carry no fast series or speedup.
    TrajectoryRecord old = recordFromBenchJson(R"({
  "context": { "library_build_type": "release" },
  "benchmarks": [
    { "name": "BM_CoreThroughput", "machine_instrs_per_s": 6.7e7 }
  ]
})");
    EXPECT_DOUBLE_EQ(old.value("rate.core_machine_per_s").value(),
                     6.7e7);
    EXPECT_FALSE(
        old.value("rate.core_fast_machine_per_s").has_value());
    EXPECT_FALSE(
        old.value("speedup.core_fast_vs_legacy").has_value());
}

TEST(Trajectory, GateFailsOnInjectedRegression)
{
    // Synthetic history whose decoded rate is far above the current
    // run: the gate must fail on the drop.
    std::vector<TrajectoryRecord> history;
    history.push_back(makeRecord(2e8));
    history.push_back(makeRecord(2.1e8));

    TrajectoryRecord slow = makeRecord(1e8); // > 25% below 2.1e8.
    GateResult r = checkAgainstHistory(slow, history);
    EXPECT_FALSE(r.pass);
    EXPECT_EQ(r.baselineRuns, 2u);
    bool found = false;
    for (const SeriesVerdict &v : r.verdicts) {
        if (v.name != "rate.interp_decoded_ir_per_s")
            continue;
        found = true;
        EXPECT_FALSE(v.pass);
        EXPECT_TRUE(v.gated);
        EXPECT_DOUBLE_EQ(v.baseline, 2.1e8);
        EXPECT_LT(v.deltaPct, -25.0);
    }
    EXPECT_TRUE(found);
    // The rendered table names the failure.
    std::string table = formatGateResult(r);
    EXPECT_NE(table.find("FAIL"), std::string::npos);

    // A small wobble within the threshold passes.
    GateResult ok = checkAgainstHistory(makeRecord(1.9e8), history);
    EXPECT_TRUE(ok.pass);
}

TEST(Trajectory, UngatedSeriesNeverFail)
{
    std::vector<TrajectoryRecord> history;
    history.push_back(makeRecord(1e8));
    TrajectoryRecord cur = makeRecord(1e8);
    // Blow up the informational overhead series; the gate ignores it.
    for (TrajectorySeries &s : cur.series)
        if (s.name == "obs.trace_overhead_pct")
            s.value = 50.0;
    GateResult r = checkAgainstHistory(cur, history);
    EXPECT_TRUE(r.pass);
}

TEST(Trajectory, DebugAndReleaseBaselinesAreSeparate)
{
    // A fast release history must not gate a slow debug run.
    std::vector<TrajectoryRecord> history;
    history.push_back(makeRecord(2e8, /*debug=*/false));
    history.push_back(makeRecord(2e8, /*debug=*/false));

    TrajectoryRecord debug_run = makeRecord(1e7, /*debug=*/true);
    GateResult r = checkAgainstHistory(debug_run, history);
    EXPECT_TRUE(r.pass);
    EXPECT_EQ(r.baselineRuns, 0u);

    // And a debug baseline does gate the next debug run.
    history.push_back(makeRecord(1e7, /*debug=*/true));
    GateResult r2 =
        checkAgainstHistory(makeRecord(1e6, /*debug=*/true), history);
    EXPECT_FALSE(r2.pass);
    EXPECT_EQ(r2.baselineRuns, 1u);
}

TEST(Trajectory, WindowAndPerSeriesThresholds)
{
    // Six records; the window of 5 must ignore the oldest (fastest).
    std::vector<TrajectoryRecord> history;
    history.push_back(makeRecord(9e8));
    for (int i = 0; i < 5; ++i)
        history.push_back(makeRecord(1e8));

    GateOptions opts;
    opts.window = 5;
    GateResult r = checkAgainstHistory(makeRecord(0.9e8), history, opts);
    EXPECT_TRUE(r.pass) << "9e8 outside the window must not gate";

    // Per-series override tightens the default 25% threshold.
    opts.perSeriesDropPct["rate.interp_decoded_ir_per_s"] = 5.0;
    GateResult tight =
        checkAgainstHistory(makeRecord(0.9e8), history, opts);
    EXPECT_FALSE(tight.pass);
}

TEST(Trajectory, RecordFromBenchJsonExtractsSeries)
{
    const std::string json = R"({
  "context": {
    "date": "2026-08-08T00:00:00+00:00",
    "library_build_type": "release"
  },
  "benchmarks": [
    {
      "name": "BM_InterpreterThroughput/decoded",
      "ir_instrs_per_s": 1.23e8
    },
    {
      "name": "BM_InterpreterThroughput/legacy",
      "ir_instrs_per_s": 4.5e7
    },
    {
      "name": "BM_CoreThroughput",
      "machine_instrs_per_s": 6.7e7
    }
  ],
  "experiment_engine": {
    "grids": [
      { "name": "fig08_matrix", "speedup": 3.2 }
    ]
  },
  "observability": {
    "disabled_rate": 1.2e8,
    "enabled_overhead_pct": 0.5,
    "prof_off_rate": 1.19e8,
    "gate_within_1pct": true
  }
})";
    TrajectoryRecord rec = recordFromBenchJson(json);
    EXPECT_EQ(rec.buildType, "release");
    EXPECT_FALSE(rec.debugBuild);
    EXPECT_DOUBLE_EQ(
        rec.value("rate.interp_decoded_ir_per_s").value(), 1.23e8);
    EXPECT_DOUBLE_EQ(
        rec.value("rate.interp_legacy_ir_per_s").value(), 4.5e7);
    EXPECT_DOUBLE_EQ(rec.value("rate.core_machine_per_s").value(),
                     6.7e7);
    EXPECT_DOUBLE_EQ(rec.value("speedup.fig08_matrix").value(), 3.2);
    EXPECT_DOUBLE_EQ(rec.value("rate.obs_disabled_ir_per_s").value(),
                     1.2e8);
    EXPECT_DOUBLE_EQ(rec.value("rate.obs_prof_off_ir_per_s").value(),
                     1.19e8);
    EXPECT_DOUBLE_EQ(rec.value("obs.trace_overhead_pct").value(), 0.5);
    EXPECT_FALSE(rec.value("rate.no_such_series").has_value());

    TrajectoryRecord dbg = recordFromBenchJson(
        R"({"context": {"library_build_type": "debug"}})");
    EXPECT_TRUE(dbg.debugBuild);
}

} // namespace
} // namespace bitspec
