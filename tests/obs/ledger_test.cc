#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "obs/ledger.h"

namespace bitspec
{
namespace
{

/** Temp ledger file removed at scope exit. */
struct TempLedger
{
    TempLedger()
    {
        path = (std::filesystem::temp_directory_path() /
                ("bitspec_ledger_" +
                 std::to_string(static_cast<unsigned long long>(
                     reinterpret_cast<uintptr_t>(this))) +
                 ".jsonl"))
                   .string();
        std::remove(path.c_str());
    }
    ~TempLedger() { std::remove(path.c_str()); }
    std::string path;
};

/** A cell record that passes validateLedgerRecord: full provenance
 *  plus every required telemetry field, with an exactly-summing
 *  energy breakdown (addition order matches EnergyBreakdown::total:
 *  alu + regfile + dcache + icache + pipeline). */
LedgerRecord
makeValidCell()
{
    LedgerRecord rec;
    rec.kind = "cell";
    rec.flavour = "abc1234-release-0123456789abcdef";
    rec.bench = "test_ledger";
    rec.workload = "CRC32";
    rec.cellKey = "CRC32;src=1;rseed=2";
    rec.systemKey = "CRC32;src=1;flavour=abc";
    rec.artifactKey = "0123456789abcdef0123456789abcdef";
    rec.cacheSource = "compile";
    rec.engine = "fast";
    rec.policy = "hardware";
    rec.profileSeed = 0;
    rec.runSeed = 1;
    rec.policySeed = 0x5eed;
    rec.outputChecksum = "00000000deadbeef";
    rec.env = {{"BITSPEC_LOG", "warn"}};

    rec.setField("counters.instructions", 1000);
    rec.setField("counters.cycles", 1500);
    rec.setField("counters.misspeculations", 3);
    rec.setField("cache.l1i.accesses", 1000);
    rec.setField("cache.l1d.accesses", 200);
    rec.setField("cache.l2.accesses", 20);
    rec.setField("dram.reads", 2);
    rec.setField("dram.writes", 1);
    const double alu = 1.25, regfile = 2.5, dcache = 0.125,
                 icache = 3.0, pipeline = 4.75;
    rec.setField("energy.alu_pj", alu);
    rec.setField("energy.regfile_pj", regfile);
    rec.setField("energy.dcache_pj", dcache);
    rec.setField("energy.icache_pj", icache);
    rec.setField("energy.pipeline_pj", pipeline);
    rec.setField("energy.model_pj",
                 alu + regfile + dcache + icache + pipeline);
    rec.setField("energy.total_pj", 12.0);
    rec.setField("energy.epi_pj", 0.012);
    rec.setField("run.return", 42);
    rec.setField("run.wall_sec", 0.001);
    return rec;
}

TEST(Ledger, GoldenSerialization)
{
    LedgerRecord rec;
    rec.kind = "cell";
    rec.flavour = "f";
    rec.bench = "b";
    rec.workload = "w";
    rec.cellKey = "ck";
    rec.systemKey = "sk";
    rec.artifactKey = "ak";
    rec.cacheSource = "compile";
    rec.engine = "fast";
    rec.policy = "hardware";
    rec.profileSeed = 1;
    rec.runSeed = 2;
    rec.policySeed = 3;
    rec.outputChecksum = "00000000deadbeef";
    rec.env = {{"BITSPEC_LOG", "debug"}};
    rec.setField("counters.cycles", 8);
    rec.setField("a.b", 1.5);
    LedgerRegionRow region;
    region.function = "main";
    region.regionId = 2;
    region.srcLine = 10;
    region.entries = 5;
    region.misspecs = 1;
    region.specInsts = 7;
    region.handlerInsts = 3;
    region.handlerCycles = 4;
    rec.regions.push_back(region);
    LedgerHeatRow heat;
    heat.function = "main";
    heat.block = "bb3";
    heat.regionId = 2;
    heat.srcLine = 10;
    heat.entries = 5;
    heat.insts = 6;
    heat.cycles = 7;
    heat.misspecs = 1;
    rec.heat.push_back(heat);

    // Pinned schema: any change here is a schema change and must bump
    // kLedgerSchemaVersion. Fields and env serialize sorted by name.
    EXPECT_EQ(
        toJsonLine(rec),
        "{\"schema_version\":1,\"kind\":\"cell\",\"flavour\":\"f\","
        "\"bench\":\"b\",\"workload\":\"w\",\"cell_key\":\"ck\","
        "\"system_key\":\"sk\",\"artifact_key\":\"ak\","
        "\"cache_source\":\"compile\",\"engine\":\"fast\","
        "\"policy\":\"hardware\",\"profile_seed\":1,\"run_seed\":2,"
        "\"policy_seed\":3,\"output_checksum\":\"00000000deadbeef\","
        "\"env\":{\"BITSPEC_LOG\":\"debug\"},"
        "\"fields\":{\"a.b\":1.5,\"counters.cycles\":8},"
        "\"regions\":[{\"function\":\"main\",\"region\":2,"
        "\"line\":10,\"entries\":5,\"misspecs\":1,\"spec_insts\":7,"
        "\"handler_insts\":3,\"handler_cycles\":4}],"
        "\"heat\":[{\"function\":\"main\",\"block\":\"bb3\","
        "\"region\":2,\"line\":10,\"entries\":5,\"insts\":6,"
        "\"cycles\":7,\"misspecs\":1}]}");
}

TEST(Ledger, JsonLineRoundTrips)
{
    LedgerRecord rec = makeValidCell();
    // Stress the encoder: 64-bit seeds beyond double precision,
    // values needing all 17 significant digits, escapable text.
    rec.profileSeed = 0xDEADBEEFDEADBEEFULL;
    rec.runSeed = 0xFFFFFFFFFFFFFFFFULL;
    rec.policySeed = (1ULL << 53) + 1;
    rec.env.push_back({"BITSPEC_QUOTE", "say \"hi\" \\ there"});
    rec.setField("run.wall_sec", 0.1); // Not exactly representable.
    rec.setField("energy.epi_pj", 1.0 / 3.0);
    LedgerRegionRow region;
    region.function = "crc32";
    region.regionId = 7;
    region.srcLine = 123;
    region.entries = 9;
    region.misspecs = 2;
    region.specInsts = 40;
    region.handlerInsts = 8;
    region.handlerCycles = 12;
    rec.regions.push_back(region);
    LedgerHeatRow heat;
    heat.function = "crc32";
    heat.block = "bb7";
    heat.regionId = 7;
    heat.srcLine = 123;
    heat.entries = 9;
    heat.insts = 400;
    heat.cycles = 600;
    heat.misspecs = 2;
    rec.heat.push_back(heat);

    auto back = parseLedgerLine(toJsonLine(rec));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->schemaVersion, rec.schemaVersion);
    EXPECT_EQ(back->kind, rec.kind);
    EXPECT_EQ(back->flavour, rec.flavour);
    EXPECT_EQ(back->bench, rec.bench);
    EXPECT_EQ(back->workload, rec.workload);
    EXPECT_EQ(back->cellKey, rec.cellKey);
    EXPECT_EQ(back->systemKey, rec.systemKey);
    EXPECT_EQ(back->artifactKey, rec.artifactKey);
    EXPECT_EQ(back->cacheSource, rec.cacheSource);
    EXPECT_EQ(back->engine, rec.engine);
    EXPECT_EQ(back->policy, rec.policy);
    EXPECT_EQ(back->profileSeed, rec.profileSeed);
    EXPECT_EQ(back->runSeed, rec.runSeed);
    EXPECT_EQ(back->policySeed, rec.policySeed);
    EXPECT_EQ(back->outputChecksum, rec.outputChecksum);

    // env round-trips sorted (the serializer sorts; ours was).
    ASSERT_EQ(back->env.size(), rec.env.size());
    EXPECT_EQ(back->env[1].first, "BITSPEC_QUOTE");
    EXPECT_EQ(back->env[1].second, "say \"hi\" \\ there");

    ASSERT_EQ(back->fields.size(), rec.fields.size());
    for (const LedgerField &f : rec.fields) {
        auto v = back->field(f.name);
        ASSERT_TRUE(v.has_value()) << f.name;
        // Bit-exact: %.17g round-trips every double.
        EXPECT_EQ(*v, f.value) << f.name;
    }

    ASSERT_EQ(back->regions.size(), 1u);
    EXPECT_EQ(back->regions[0].function, "crc32");
    EXPECT_EQ(back->regions[0].regionId, 7);
    EXPECT_EQ(back->regions[0].srcLine, 123);
    EXPECT_EQ(back->regions[0].entries, 9u);
    EXPECT_EQ(back->regions[0].misspecs, 2u);
    EXPECT_EQ(back->regions[0].specInsts, 40u);
    EXPECT_EQ(back->regions[0].handlerInsts, 8u);
    EXPECT_EQ(back->regions[0].handlerCycles, 12u);

    ASSERT_EQ(back->heat.size(), 1u);
    EXPECT_EQ(back->heat[0].function, "crc32");
    EXPECT_EQ(back->heat[0].block, "bb7");
    EXPECT_EQ(back->heat[0].insts, 400u);
    EXPECT_EQ(back->heat[0].cycles, 600u);
}

TEST(Ledger, ValidatorAcceptsWellFormedCell)
{
    EXPECT_EQ(validateLedgerRecord(makeValidCell()), "");
}

TEST(Ledger, ValidatorCatchesViolations)
{
    {
        LedgerRecord rec = makeValidCell();
        rec.cacheSource = "network";
        EXPECT_NE(validateLedgerRecord(rec), "");
    }
    {
        LedgerRecord rec = makeValidCell();
        rec.outputChecksum = "beef"; // Not 16 hex digits.
        EXPECT_NE(validateLedgerRecord(rec), "");
    }
    {
        LedgerRecord rec = makeValidCell();
        rec.fields.erase(rec.fields.begin()); // Drop a required field.
        EXPECT_NE(validateLedgerRecord(rec), "");
    }
    {
        LedgerRecord rec = makeValidCell();
        rec.setField("energy.model_pj",
                     *rec.field("energy.model_pj") + 1e-9);
        EXPECT_NE(validateLedgerRecord(rec), "");
    }
    {
        LedgerRecord rec = makeValidCell();
        rec.schemaVersion = kLedgerSchemaVersion + 1;
        EXPECT_NE(validateLedgerRecord(rec), "");
    }
}

TEST(Ledger, ValidatorChecksMatrixKind)
{
    LedgerRecord rec;
    rec.kind = "matrix";
    rec.flavour = "f";
    rec.bench = "b";
    EXPECT_NE(validateLedgerRecord(rec), ""); // Missing percentiles.
    rec.setField("matrix.cells", 4);
    rec.setField("wall.p50_sec", 0.1);
    rec.setField("wall.p95_sec", 0.2);
    rec.setField("wall.p99_sec", 0.3);
    EXPECT_EQ(validateLedgerRecord(rec), "");
}

TEST(Ledger, LoaderSkipsTornFinalLine)
{
    TempLedger tmp;
    const std::string full = toJsonLine(makeValidCell());
    {
        std::ofstream of(tmp.path);
        of << full << "\n" << full << "\n";
        // A crash mid-append tears the last line; cut before the
        // fields object so the record is unmistakably incomplete.
        of << full.substr(0, full.find("\"fields\""));
    }
    std::vector<LedgerRecord> recs = loadLedger(tmp.path);
    ASSERT_EQ(recs.size(), 2u);
    EXPECT_EQ(validateLedgerRecord(recs[0]), "");
    EXPECT_EQ(validateLedgerRecord(recs[1]), "");
}

TEST(Ledger, WriterAppendsAndReloads)
{
    TempLedger tmp;
    {
        LedgerWriter writer(tmp.path);
        ASSERT_TRUE(writer.ok());
        EXPECT_TRUE(writer.append(makeValidCell()));
        EXPECT_TRUE(writer.append(makeValidCell()));
        EXPECT_EQ(writer.recordsWritten(), 2u);
    }
    {
        // A second writer on the same path appends, never truncates.
        LedgerWriter writer(tmp.path);
        ASSERT_TRUE(writer.ok());
        EXPECT_TRUE(writer.append(makeValidCell()));
    }
    EXPECT_EQ(loadLedger(tmp.path).size(), 3u);
}

TEST(Ledger, CaptureBitspecEnvSeesKnobs)
{
    ::setenv("BITSPEC_LEDGER_TEST_KNOB", "on", 1);
    auto env = captureBitspecEnv();
    ::unsetenv("BITSPEC_LEDGER_TEST_KNOB");
    bool found = false;
    for (size_t i = 0; i < env.size(); ++i) {
        if (env[i].first == "BITSPEC_LEDGER_TEST_KNOB") {
            found = true;
            EXPECT_EQ(env[i].second, "on");
        }
        if (i > 0) // Sorted by name.
            EXPECT_LE(env[i - 1].first, env[i].first);
    }
    EXPECT_TRUE(found);
}

} // namespace
} // namespace bitspec
