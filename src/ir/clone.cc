#include "ir/clone.h"

namespace bitspec
{

std::unique_ptr<Instruction>
cloneInstruction(const Instruction *inst)
{
    auto copy = std::make_unique<Instruction>(inst->op(), inst->type());
    copy->setName(inst->name());
    for (Value *op : inst->operands())
        copy->addOperand(op);
    for (BasicBlock *bb : inst->blockOperands())
        copy->addBlockOperand(bb);
    copy->setPred(inst->pred());
    copy->setCallee(inst->callee());
    copy->setSpeculative(inst->isSpeculative());
    copy->setGuard(inst->isGuard());
    copy->setSpecOrigBits(inst->specOrigBits());
    copy->setSrcLine(inst->srcLine());
    return copy;
}

CloneMap
cloneBlocks(const std::vector<BasicBlock *> &src_blocks, Function *dst,
            const std::string &suffix)
{
    CloneMap map;

    // Pass 1: create empty clone blocks.
    for (BasicBlock *bb : src_blocks)
        map.blocks[bb] = dst->addBlock(bb->name() + suffix);

    // Pass 2: clone instructions, recording the value mapping.
    for (BasicBlock *bb : src_blocks) {
        BasicBlock *nbb = map.blocks[bb];
        for (const auto &inst : bb->insts()) {
            Instruction *copy = nbb->append(cloneInstruction(inst.get()));
            map.values[inst.get()] = copy;
        }
    }

    // Pass 3: remap operands and block operands through the clone map.
    for (BasicBlock *bb : src_blocks) {
        BasicBlock *nbb = map.blocks[bb];
        for (auto &inst : nbb->insts()) {
            for (size_t i = 0; i < inst->numOperands(); ++i)
                inst->setOperand(i, map.get(inst->operand(i)));
            for (size_t i = 0; i < inst->blockOperands().size(); ++i)
                inst->setBlockOperand(i, map.get(inst->blockOperand(i)));
        }
    }

    return map;
}

} // namespace bitspec
