/**
 * @file
 * IRBuilder: convenience construction of instructions at an insertion
 * point, mirroring llvm::IRBuilder.
 */

#ifndef BITSPEC_IR_BUILDER_H_
#define BITSPEC_IR_BUILDER_H_

#include <memory>

#include "ir/module.h"
#include "support/error.h"

namespace bitspec
{

/** Builds instructions at the end of a chosen basic block. */
class IRBuilder
{
  public:
    explicit IRBuilder(Module *module) : module_(module) {}

    Module *module() const { return module_; }

    void setInsertPoint(BasicBlock *bb) { bb_ = bb; }
    BasicBlock *insertBlock() const { return bb_; }

    /** Source line stamped on subsequently built instructions (0 =
     *  synthesized). Set per statement by the frontend. */
    void setCurLine(int line) { curLine_ = line; }
    int curLine() const { return curLine_; }

    /** @name Constants */
    /// @{
    Constant *constInt(Type t, uint64_t v) { return module_->getConst(t, v); }
    Constant *constI32(uint64_t v) { return constInt(Type::i32(), v); }
    Constant *constBool(bool v) { return constInt(Type::i1(), v ? 1 : 0); }
    GlobalRef *globalAddr(Global *g) { return module_->getGlobalRef(g); }
    /// @}

    /** @name Arithmetic / bitwise */
    /// @{
    Instruction *
    binary(Opcode op, Value *a, Value *b, const std::string &name = "")
    {
        bsAssert(a->type() == b->type(), "binary: operand type mismatch");
        auto *inst = make(op, a->type(), name);
        inst->addOperand(a);
        inst->addOperand(b);
        return insert(inst);
    }

    Instruction *add(Value *a, Value *b) { return binary(Opcode::Add, a, b); }
    Instruction *sub(Value *a, Value *b) { return binary(Opcode::Sub, a, b); }
    Instruction *mul(Value *a, Value *b) { return binary(Opcode::Mul, a, b); }
    Instruction *udiv(Value *a, Value *b)
    {
        return binary(Opcode::UDiv, a, b);
    }
    Instruction *sdiv(Value *a, Value *b)
    {
        return binary(Opcode::SDiv, a, b);
    }
    Instruction *urem(Value *a, Value *b)
    {
        return binary(Opcode::URem, a, b);
    }
    Instruction *srem(Value *a, Value *b)
    {
        return binary(Opcode::SRem, a, b);
    }
    Instruction *band(Value *a, Value *b) { return binary(Opcode::And, a, b); }
    Instruction *bor(Value *a, Value *b) { return binary(Opcode::Or, a, b); }
    Instruction *bxor(Value *a, Value *b) { return binary(Opcode::Xor, a, b); }
    Instruction *shl(Value *a, Value *b) { return binary(Opcode::Shl, a, b); }
    Instruction *lshr(Value *a, Value *b)
    {
        return binary(Opcode::LShr, a, b);
    }
    Instruction *ashr(Value *a, Value *b)
    {
        return binary(Opcode::AShr, a, b);
    }
    /// @}

    Instruction *
    icmp(CmpPred pred, Value *a, Value *b, const std::string &name = "")
    {
        bsAssert(a->type() == b->type(), "icmp: operand type mismatch");
        auto *inst = make(Opcode::ICmp, Type::i1(), name);
        inst->setPred(pred);
        inst->addOperand(a);
        inst->addOperand(b);
        return insert(inst);
    }

    Instruction *
    select(Value *cond, Value *t, Value *f, const std::string &name = "")
    {
        bsAssert(cond->type().isBool(), "select: condition must be i1");
        bsAssert(t->type() == f->type(), "select: arm type mismatch");
        auto *inst = make(Opcode::Select, t->type(), name);
        inst->addOperand(cond);
        inst->addOperand(t);
        inst->addOperand(f);
        return insert(inst);
    }

    /** @name Width changes */
    /// @{
    Instruction *
    cast(Opcode op, Value *v, Type to, const std::string &name = "")
    {
        auto *inst = make(op, to, name);
        inst->addOperand(v);
        return insert(inst);
    }

    Instruction *zext(Value *v, Type to) { return cast(Opcode::ZExt, v, to); }
    Instruction *sext(Value *v, Type to) { return cast(Opcode::SExt, v, to); }
    Instruction *trunc(Value *v, Type to)
    {
        return cast(Opcode::Trunc, v, to);
    }

    /** Width adjustment in either direction (zext up / trunc down). */
    Value *
    zextOrTrunc(Value *v, Type to)
    {
        if (v->type() == to)
            return v;
        if (v->type().bits < to.bits)
            return zext(v, to);
        return trunc(v, to);
    }
    /// @}

    /** @name Memory. Loads and stores move @p type-sized values. */
    /// @{
    Instruction *
    load(Type type, Value *addr, const std::string &name = "")
    {
        bsAssert(addr->type() == Type::i32(), "load: address must be i32");
        auto *inst = make(Opcode::Load, type, name);
        inst->addOperand(addr);
        return insert(inst);
    }

    Instruction *
    store(Value *addr, Value *value)
    {
        bsAssert(addr->type() == Type::i32(), "store: address must be i32");
        auto *inst = make(Opcode::Store, Type::voidTy(), "");
        inst->addOperand(addr);
        inst->addOperand(value);
        return insert(inst);
    }
    /// @}

    Instruction *
    call(Function *callee, const std::vector<Value *> &args,
         const std::string &name = "")
    {
        bsAssert(args.size() == callee->numArgs(),
                 "call: arity mismatch calling " + callee->name());
        auto *inst = make(Opcode::Call, callee->retType(), name);
        inst->setCallee(callee);
        for (Value *a : args)
            inst->addOperand(a);
        return insert(inst);
    }

    /** Observable output (volatile, non-idempotent). */
    Instruction *
    output(Value *v)
    {
        auto *inst = make(Opcode::Output, Type::voidTy(), "");
        inst->addOperand(v);
        return insert(inst);
    }

    Instruction *
    phi(Type type, const std::string &name = "")
    {
        auto *inst = make(Opcode::Phi, type, name);
        // Phis go before any non-phi already present.
        inst->setParent(bb_);
        auto *raw = inst;
        bb_->insertBefore(bb_->firstNonPhi(),
                          std::unique_ptr<Instruction>(inst));
        return raw;
    }

    static void
    addIncoming(Instruction *phi, Value *v, BasicBlock *from)
    {
        bsAssert(phi->isPhi(), "addIncoming: not a phi");
        phi->addOperand(v);
        phi->addBlockOperand(from);
    }

    /** @name Terminators */
    /// @{
    Instruction *
    br(BasicBlock *dest)
    {
        auto *inst = make(Opcode::Br, Type::voidTy(), "");
        inst->addBlockOperand(dest);
        return insert(inst);
    }

    Instruction *
    condBr(Value *cond, BasicBlock *t, BasicBlock *f)
    {
        bsAssert(cond->type().isBool(), "condbr: condition must be i1");
        auto *inst = make(Opcode::CondBr, Type::voidTy(), "");
        inst->addOperand(cond);
        inst->addBlockOperand(t);
        inst->addBlockOperand(f);
        return insert(inst);
    }

    Instruction *
    ret(Value *v = nullptr)
    {
        auto *inst = make(Opcode::Ret, Type::voidTy(), "");
        if (v)
            inst->addOperand(v);
        return insert(inst);
    }

    Instruction *
    unreachable()
    {
        return insert(make(Opcode::Unreachable, Type::voidTy(), ""));
    }
    /// @}

  private:
    Instruction *
    make(Opcode op, Type type, const std::string &name)
    {
        auto *inst = new Instruction(op, type);
        if (!name.empty())
            inst->setName(name);
        inst->setSrcLine(curLine_);
        return inst;
    }

    Instruction *
    insert(Instruction *inst)
    {
        bsAssert(bb_ != nullptr, "IRBuilder: no insertion point");
        bb_->append(std::unique_ptr<Instruction>(inst));
        return inst;
    }

    Module *module_;
    BasicBlock *bb_ = nullptr;
    int curLine_ = 0;
};

} // namespace bitspec

#endif // BITSPEC_IR_BUILDER_H_
