/**
 * @file
 * Basic blocks: an instruction list ending in exactly one terminator.
 */

#ifndef BITSPEC_IR_BASIC_BLOCK_H_
#define BITSPEC_IR_BASIC_BLOCK_H_

#include <list>
#include <memory>
#include <string>
#include <vector>

#include "ir/instruction.h"
#include "support/error.h"

namespace bitspec
{

class Function;

/** A basic block owning its instructions. */
class BasicBlock
{
  public:
    using InstList = std::list<std::unique_ptr<Instruction>>;

    explicit BasicBlock(std::string name) : name_(std::move(name)) {}

    const std::string &name() const { return name_; }
    void setName(std::string n) { name_ = std::move(n); }

    Function *parent() const { return parent_; }
    void setParent(Function *f) { parent_ = f; }

    InstList &insts() { return insts_; }
    const InstList &insts() const { return insts_; }
    bool empty() const { return insts_.empty(); }

    /** Append @p inst to the end of the block. */
    Instruction *
    append(std::unique_ptr<Instruction> inst)
    {
        inst->setParent(this);
        insts_.push_back(std::move(inst));
        return insts_.back().get();
    }

    /** Insert @p inst before @p pos; returns the inserted instruction. */
    Instruction *
    insertBefore(InstList::iterator pos, std::unique_ptr<Instruction> inst)
    {
        inst->setParent(this);
        return insts_.insert(pos, std::move(inst))->get();
    }

    /** Insert @p inst just before this block's terminator. */
    Instruction *
    insertBeforeTerm(std::unique_ptr<Instruction> inst)
    {
        bsAssert(!insts_.empty() && insts_.back()->isTerm(),
                 "insertBeforeTerm: no terminator");
        return insertBefore(std::prev(insts_.end()), std::move(inst));
    }

    /** The block's terminator; panics if the block has none yet. */
    Instruction *
    terminator() const
    {
        bsAssert(!insts_.empty() && insts_.back()->isTerm(),
                 "block has no terminator: " + name_);
        return insts_.back().get();
    }

    bool
    hasTerminator() const
    {
        return !insts_.empty() && insts_.back()->isTerm();
    }

    /** First non-phi instruction iterator. */
    InstList::iterator
    firstNonPhi()
    {
        auto it = insts_.begin();
        while (it != insts_.end() && (*it)->isPhi())
            ++it;
        return it;
    }

    /** Successor blocks as given by the terminator. */
    std::vector<BasicBlock *>
    successors() const
    {
        if (!hasTerminator())
            return {};
        Instruction *term = insts_.back().get();
        switch (term->op()) {
          case Opcode::Br:
            return {term->blockOperand(0)};
          case Opcode::CondBr:
            return {term->blockOperand(0), term->blockOperand(1)};
          default:
            return {};
        }
    }

    /** Phi instructions at the head of the block. */
    std::vector<Instruction *>
    phis() const
    {
        std::vector<Instruction *> out;
        for (const auto &inst : insts_) {
            if (!inst->isPhi())
                break;
            out.push_back(inst.get());
        }
        return out;
    }

  private:
    std::string name_;
    Function *parent_ = nullptr;
    InstList insts_;
};

} // namespace bitspec

#endif // BITSPEC_IR_BASIC_BLOCK_H_
