/**
 * @file
 * Functions and speculative regions (paper §3.1.1).
 *
 * A SpecRegion is a set of basic blocks with a single handler block that
 * execution enters iff an instruction in the region misspeculates. This
 * implementation creates one region per speculative basic block (a
 * trivially single-entry/single-exit sequence), matching the paper's
 * per-block re-execution model: the handler extends the live variables
 * and re-runs the block's original-bitwidth clone.
 */

#ifndef BITSPEC_IR_FUNCTION_H_
#define BITSPEC_IR_FUNCTION_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "ir/basic_block.h"
#include "ir/value.h"

namespace bitspec
{

class Module;

/** A speculative region: member blocks plus a unique handler. */
struct SpecRegion
{
    /** Blocks whose misspeculations route to this handler. */
    std::vector<BasicBlock *> blocks;
    /** Entered iff a member instruction misspeculates. */
    BasicBlock *handler = nullptr;
    /**
     * Stable per-function id assigned at creation by the squeezer.
     * Survives lint elision of sibling regions (ids keep holes), so
     * attribution rows keep their identity across config ablations.
     */
    int id = -1;
    /** 1-based source line of the first speculative instruction in
     *  the region; 0 when every member instruction is synthesized.
     *  Threaded into MIR so misspeculation attribution can report
     *  file:line provenance per region. */
    int srcLine = 0;
    /**
     * The region's checks: every speculative instruction in `blocks`,
     * in block instruction order. Emitted by the squeezer at region
     * creation and kept in sync by applyLintVerdicts (a check whose
     * speculative flag is dropped leaves the list; a region whose
     * list empties is deleted). The taint lint's roots and the
     * observability layer's per-region check counts both read this.
     */
    std::vector<const Instruction *> checks;
    /** Undischarged speculative non-interference sinks found by the
     *  taint lint (analysis/taint.h); threaded into MIR for
     *  per-region leak attribution. */
    int leakSites = 0;
    /** Tainted sinks the lint discharged with known-bits facts. */
    int leaksDischarged = 0;
};

/** An IR function: arguments, blocks and speculative-region metadata. */
class Function
{
  public:
    Function(std::string name, Type ret_type, std::vector<Type> param_types)
        : name_(std::move(name)), retType_(ret_type)
    {
        for (unsigned i = 0; i < param_types.size(); ++i) {
            args_.push_back(
                std::make_unique<Argument>(param_types[i], i));
            args_.back()->setName("arg" + std::to_string(i));
        }
    }

    const std::string &name() const { return name_; }
    Type retType() const { return retType_; }

    Module *parent() const { return parent_; }
    void setParent(Module *m) { parent_ = m; }

    /** @name Arguments */
    /// @{
    size_t numArgs() const { return args_.size(); }
    Argument *arg(size_t i) const { return args_.at(i).get(); }
    /// @}

    /** @name Blocks. The first block is the entry. */
    /// @{
    const std::vector<std::unique_ptr<BasicBlock>> &blocks() const
    {
        return blocks_;
    }
    std::vector<std::unique_ptr<BasicBlock>> &blocks() { return blocks_; }

    BasicBlock *
    entry() const
    {
        bsAssert(!blocks_.empty(), "entry(): function has no blocks");
        return blocks_.front().get();
    }

    BasicBlock *
    addBlock(std::string name)
    {
        blocks_.push_back(std::make_unique<BasicBlock>(uniqueName(name)));
        blocks_.back()->setParent(this);
        return blocks_.back().get();
    }

    /** Remove blocks for which @p dead returns true (operands untouched). */
    template <typename Pred>
    void
    removeBlocksIf(Pred dead)
    {
        std::erase_if(blocks_, [&](const std::unique_ptr<BasicBlock> &bb) {
            return dead(bb.get());
        });
    }
    /// @}

    /** @name Speculative regions */
    /// @{
    SpecRegion *
    addSpecRegion()
    {
        specRegions_.push_back(std::make_unique<SpecRegion>());
        return specRegions_.back().get();
    }

    const std::vector<std::unique_ptr<SpecRegion>> &specRegions() const
    {
        return specRegions_;
    }

    std::vector<std::unique_ptr<SpecRegion>> &specRegionsMut()
    {
        return specRegions_;
    }

    void clearSpecRegions() { specRegions_.clear(); }

    /** Region containing @p bb, or nullptr. */
    SpecRegion *
    regionOf(const BasicBlock *bb) const
    {
        for (const auto &sr : specRegions_)
            for (BasicBlock *member : sr->blocks)
                if (member == bb)
                    return sr.get();
        return nullptr;
    }

    /** Region whose handler is @p bb, or nullptr. */
    SpecRegion *
    regionOfHandler(const BasicBlock *bb) const
    {
        for (const auto &sr : specRegions_)
            if (sr->handler == bb)
                return sr.get();
        return nullptr;
    }
    /// @}

    /** Replace all operand uses of @p from with @p to, function-wide. */
    void
    replaceAllUses(Value *from, Value *to)
    {
        for (auto &bb : blocks_)
            for (auto &inst : bb->insts())
                for (size_t i = 0; i < inst->numOperands(); ++i)
                    if (inst->operand(i) == from)
                        inst->setOperand(i, to);
    }

    /** True if any instruction uses @p v as an operand. */
    bool
    hasUses(const Value *v) const
    {
        for (const auto &bb : blocks_)
            for (const auto &inst : bb->insts())
                for (size_t i = 0; i < inst->numOperands(); ++i)
                    if (inst->operand(i) == v)
                        return true;
        return false;
    }

    /**
     * Assign dense ids to arguments and instructions; returns the total
     * number of slots. Interpreter frames and analyses index by id.
     */
    unsigned
    renumber()
    {
        unsigned id = 0;
        for (auto &a : args_)
            argIds_[a.get()] = id++;
        for (auto &bb : blocks_)
            for (auto &inst : bb->insts())
                inst->setId(id++);
        return id;
    }

    /** Dense id of @p v after renumber(); v must be an arg or instr. */
    unsigned
    valueId(const Value *v) const
    {
        if (v->kind() == ValueKind::Argument) {
            auto it = argIds_.find(static_cast<const Argument *>(v));
            bsAssert(it != argIds_.end(), "valueId: unknown argument");
            return it->second;
        }
        bsAssert(v->isInstruction(), "valueId: not an arg or instruction");
        return static_cast<const Instruction *>(v)->id();
    }

    /** Total dynamic-instruction count helpers. */
    size_t
    instructionCount() const
    {
        size_t n = 0;
        for (const auto &bb : blocks_)
            n += bb->insts().size();
        return n;
    }

    /** Predecessor map (plain CFG edges only; no handler edges). */
    std::map<const BasicBlock *, std::vector<BasicBlock *>>
    predecessors() const
    {
        std::map<const BasicBlock *, std::vector<BasicBlock *>> preds;
        for (const auto &bb : blocks_)
            for (BasicBlock *succ : bb->successors())
                preds[succ].push_back(bb.get());
        return preds;
    }

    /** Generate a block name unique within this function. */
    std::string
    uniqueName(const std::string &base)
    {
        if (usedNames_.insert(base).second)
            return base;
        for (;;) {
            std::string name =
                base + "." + std::to_string(nameCounter_++);
            if (usedNames_.insert(name).second)
                return name;
        }
    }

  private:
    std::string name_;
    Type retType_;
    Module *parent_ = nullptr;
    std::vector<std::unique_ptr<Argument>> args_;
    std::vector<std::unique_ptr<BasicBlock>> blocks_;
    std::vector<std::unique_ptr<SpecRegion>> specRegions_;
    std::map<const Argument *, unsigned> argIds_;
    std::set<std::string> usedNames_;
    unsigned nameCounter_ = 0;
};

} // namespace bitspec

#endif // BITSPEC_IR_FUNCTION_H_
