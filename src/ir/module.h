/**
 * @file
 * Modules: functions, globals, the constant pool and memory layout.
 */

#ifndef BITSPEC_IR_MODULE_H_
#define BITSPEC_IR_MODULE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ir/function.h"
#include "support/bits.h"
#include "support/error.h"

namespace bitspec
{

/**
 * A global array or scalar in the flat data segment. Globals are the
 * only addressable storage in the IR; workload inputs are written into
 * global arrays before execution (standing in for MiBench input files).
 */
class Global
{
  public:
    Global(std::string name, unsigned elem_bits, size_t elem_count)
        : name_(std::move(name)), elemBits_(elem_bits),
          elemCount_(elem_count)
    {
        bsAssert(elem_bits == 8 || elem_bits == 16 || elem_bits == 32 ||
                 elem_bits == 64, "global element width must be 8..64");
        data_.resize(sizeBytes(), 0);
    }

    const std::string &name() const { return name_; }
    unsigned elemBits() const { return elemBits_; }
    size_t elemCount() const { return elemCount_; }
    size_t sizeBytes() const { return elemCount_ * (elemBits_ / 8); }

    /** Byte image of the initial contents (little endian). */
    const std::vector<uint8_t> &data() const { return data_; }

    /** Assigned base address; valid after Module::layoutGlobals(). */
    uint32_t address() const { return address_; }
    void setAddress(uint32_t a) { address_ = a; }

    /** Replace the whole byte image (size must match). */
    void
    setData(const std::vector<uint8_t> &bytes)
    {
        bsAssert(bytes.size() == data_.size(),
                 "global image size mismatch: " + name_);
        data_ = bytes;
    }

    /** Overwrite element @p index with @p value (little endian). */
    void
    setElem(size_t index, uint64_t value)
    {
        bsAssert(index < elemCount_, "global store out of range: " + name_);
        unsigned bytes = elemBits_ / 8;
        for (unsigned b = 0; b < bytes; ++b)
            data_[index * bytes + b] =
                static_cast<uint8_t>(value >> (8 * b));
    }

    uint64_t
    elem(size_t index) const
    {
        bsAssert(index < elemCount_, "global load out of range: " + name_);
        unsigned bytes = elemBits_ / 8;
        uint64_t v = 0;
        for (unsigned b = 0; b < bytes; ++b)
            v |= static_cast<uint64_t>(data_[index * bytes + b]) << (8 * b);
        return v;
    }

    /** Zero the contents. */
    void clear() { std::fill(data_.begin(), data_.end(), 0); }

  private:
    std::string name_;
    unsigned elemBits_;
    size_t elemCount_;
    std::vector<uint8_t> data_;
    uint32_t address_ = 0;
};

/** A whole program: functions, globals, constants. */
class Module
{
  public:
    /** Globals are laid out starting here so that addresses never look
     *  narrow to the profiler (paper: addresses stay at full width). */
    static constexpr uint32_t kGlobalBase = 0x10000;

    Function *
    addFunction(std::string name, Type ret, std::vector<Type> params)
    {
        funcs_.push_back(std::make_unique<Function>(
            std::move(name), ret, std::move(params)));
        funcs_.back()->setParent(this);
        return funcs_.back().get();
    }

    Function *
    getFunction(const std::string &name) const
    {
        for (const auto &f : funcs_)
            if (f->name() == name)
                return f.get();
        return nullptr;
    }

    const std::vector<std::unique_ptr<Function>> &functions() const
    {
        return funcs_;
    }

    Global *
    addGlobal(std::string name, unsigned elem_bits, size_t elem_count)
    {
        globals_.push_back(std::make_unique<Global>(
            std::move(name), elem_bits, elem_count));
        return globals_.back().get();
    }

    Global *
    getGlobal(const std::string &name) const
    {
        for (const auto &g : globals_)
            if (g->name() == name)
                return g.get();
        return nullptr;
    }

    const std::vector<std::unique_ptr<Global>> &globals() const
    {
        return globals_;
    }

    /** Deduplicated integer constant of the given type. */
    Constant *
    getConst(Type type, uint64_t value)
    {
        uint64_t truncated = truncTo(value, type.bits);
        auto key = std::make_pair(type.bits, truncated);
        auto it = constants_.find(key);
        if (it != constants_.end())
            return it->second.get();
        auto c = std::make_unique<Constant>(type, truncated);
        Constant *raw = c.get();
        constants_.emplace(key, std::move(c));
        return raw;
    }

    /** The i32 address value of @p g (deduplicated). */
    GlobalRef *
    getGlobalRef(Global *g)
    {
        auto it = globalRefs_.find(g);
        if (it != globalRefs_.end())
            return it->second.get();
        auto r = std::make_unique<GlobalRef>(g);
        r->setName(g->name());
        GlobalRef *raw = r.get();
        globalRefs_.emplace(g, std::move(r));
        return raw;
    }

    /**
     * Assign addresses to all globals (8-byte aligned, from kGlobalBase).
     * Returns one past the last used address.
     */
    uint32_t
    layoutGlobals()
    {
        uint32_t addr = kGlobalBase;
        for (auto &g : globals_) {
            g->setAddress(addr);
            addr += static_cast<uint32_t>((g->sizeBytes() + 7) & ~size_t{7});
        }
        return addr;
    }

  private:
    std::vector<std::unique_ptr<Function>> funcs_;
    std::vector<std::unique_ptr<Global>> globals_;
    std::map<std::pair<unsigned, uint64_t>, std::unique_ptr<Constant>>
        constants_;
    std::map<Global *, std::unique_ptr<GlobalRef>> globalRefs_;
};

} // namespace bitspec

#endif // BITSPEC_IR_MODULE_H_
