#include "ir/printer.h"

#include <sstream>

#include "ir/module.h"

namespace bitspec
{

namespace
{

std::string
valueName(const Value *v)
{
    if (!v->name().empty())
        return v->name();
    if (v->isInstruction()) {
        auto *inst = static_cast<const Instruction *>(v);
        return "v" + std::to_string(inst->id());
    }
    return "anon";
}

} // namespace

std::string
printValueRef(const Value *v)
{
    switch (v->kind()) {
      case ValueKind::Constant: {
        auto *c = static_cast<const Constant *>(v);
        return c->type().str() + " " + std::to_string(c->value());
      }
      case ValueKind::GlobalRef: {
        auto *g = static_cast<const GlobalRef *>(v);
        return "@" + g->global()->name();
      }
      case ValueKind::Argument:
      case ValueKind::Instruction:
        return "%" + valueName(v);
    }
    return "?";
}

namespace
{

void
printInstruction(std::ostream &os, const Instruction &inst)
{
    os << "  ";
    if (!inst.type().isVoid())
        os << "%" << valueName(&inst) << " = ";
    os << opcodeName(inst.op());
    if (inst.op() == Opcode::ICmp)
        os << " " << cmpPredName(inst.pred());
    if (!inst.type().isVoid())
        os << " " << inst.type().str();

    if (inst.op() == Opcode::Phi) {
        for (size_t i = 0; i < inst.numOperands(); ++i) {
            os << (i ? ", " : " ");
            os << "[" << printValueRef(inst.operand(i)) << ", %"
               << inst.blockOperand(i)->name() << "]";
        }
    } else if (inst.op() == Opcode::Call) {
        os << " @" << inst.callee()->name() << "(";
        for (size_t i = 0; i < inst.numOperands(); ++i)
            os << (i ? ", " : "") << printValueRef(inst.operand(i));
        os << ")";
    } else {
        for (size_t i = 0; i < inst.numOperands(); ++i)
            os << (i ? ", " : " ") << printValueRef(inst.operand(i));
        for (BasicBlock *bb : inst.blockOperands())
            os << ", label %" << bb->name();
    }

    if (inst.isSpeculative())
        os << " !spec";
    if (inst.isGuard())
        os << " !guard";
    os << "\n";
}

} // namespace

std::string
printFunction(const Function &f)
{
    std::ostringstream os;
    os << "define " << f.retType().str() << " @" << f.name() << "(";
    for (size_t i = 0; i < f.numArgs(); ++i) {
        os << (i ? ", " : "") << f.arg(i)->type().str() << " %"
           << f.arg(i)->name();
    }
    os << ") {\n";
    for (const auto &bb : f.blocks()) {
        os << bb->name() << ":";
        if (SpecRegion *sr = f.regionOf(bb.get()))
            os << "    ; in region -> handler %" << sr->handler->name();
        if (f.regionOfHandler(bb.get()))
            os << "    ; handler";
        os << "\n";
        for (const auto &inst : bb->insts())
            printInstruction(os, *inst);
    }
    os << "}\n";
    return os.str();
}

std::string
printModule(const Module &m)
{
    std::ostringstream os;
    for (const auto &g : m.globals()) {
        os << "@" << g->name() << " = global [" << g->elemCount() << " x i"
           << g->elemBits() << "]\n";
    }
    if (!m.globals().empty())
        os << "\n";
    for (const auto &f : m.functions())
        os << printFunction(*f) << "\n";
    return os.str();
}

} // namespace bitspec
