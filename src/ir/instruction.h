/**
 * @file
 * Instruction set of the BitSpec IR.
 *
 * Besides the usual SSA instruction zoo, instructions carry the flags
 * that Speculative IR (paper §3.1) needs: `speculative` marks operations
 * whose bitwidth was reduced below the source type and must be monitored
 * by hardware, and `guard` keeps an instruction alive through DCE when a
 * downstream compare was folded away based on its speculation result
 * (paper §3.2.4).
 */

#ifndef BITSPEC_IR_INSTRUCTION_H_
#define BITSPEC_IR_INSTRUCTION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ir/value.h"

namespace bitspec
{

class BasicBlock;
class Function;

/** IR opcodes. */
enum class Opcode
{
    // Arithmetic.
    Add, Sub, Mul, UDiv, SDiv, URem, SRem,
    // Bitwise.
    And, Or, Xor, Shl, LShr, AShr,
    // Comparison and selection.
    ICmp, Select,
    // Width changes.
    ZExt, SExt, Trunc,
    // Memory. Operand 0 of Load is the address; Store is (addr, value).
    Load, Store,
    // Calls and observable output. Output is the only volatile op.
    Call, Output,
    // SSA and control flow.
    Phi, Br, CondBr, Ret, Unreachable,
};

/** Comparison predicates for ICmp. */
enum class CmpPred
{
    EQ, NE, ULT, ULE, UGT, UGE, SLT, SLE, SGT, SGE,
};

/** Printable opcode mnemonic. */
const char *opcodeName(Opcode op);

/** Printable predicate mnemonic. */
const char *cmpPredName(CmpPred pred);

/** True for Br/CondBr/Ret/Unreachable. */
bool isTerminator(Opcode op);

/**
 * True if the ISA offers a speculative 8-bit variant of @p op: the
 * paper's Speculative? relation over Table 1 (add, sub, logic, compare,
 * load, store, truncate, extend). Shifts, multiplies and divides have no
 * speculative form and keep their original width.
 */
bool hasSpeculativeForm(Opcode op);

/** A single IR instruction; doubles as its own result Value. */
class Instruction : public Value
{
  public:
    Instruction(Opcode op, Type type)
        : Value(ValueKind::Instruction, type), op_(op)
    {}

    Opcode op() const { return op_; }
    void setOp(Opcode op) { op_ = op; }

    /** @name Operands */
    /// @{
    const std::vector<Value *> &operands() const { return operands_; }
    Value *operand(size_t i) const { return operands_.at(i); }
    size_t numOperands() const { return operands_.size(); }
    void addOperand(Value *v) { operands_.push_back(v); }
    void setOperand(size_t i, Value *v) { operands_.at(i) = v; }
    void clearOperands() { operands_.clear(); }
    void
    removeOperand(size_t i)
    {
        operands_.erase(operands_.begin() + static_cast<long>(i));
    }
    /// @}

    /**
     * @name Block operands
     * Phi: incoming block per operand. Br: [target]. CondBr:
     * [true target, false target].
     */
    /// @{
    const std::vector<BasicBlock *> &blockOperands() const
    {
        return blockOperands_;
    }
    BasicBlock *blockOperand(size_t i) const { return blockOperands_.at(i); }
    void addBlockOperand(BasicBlock *bb) { blockOperands_.push_back(bb); }
    void setBlockOperand(size_t i, BasicBlock *bb)
    {
        blockOperands_.at(i) = bb;
    }
    void
    removeBlockOperand(size_t i)
    {
        blockOperands_.erase(blockOperands_.begin() + static_cast<long>(i));
    }

    /** Remove a phi's (value, block) pair at position @p i. */
    void
    removePhiIncoming(size_t i)
    {
        removeOperand(i);
        removeBlockOperand(i);
    }
    /// @}

    CmpPred pred() const { return pred_; }
    void setPred(CmpPred p) { pred_ = p; }

    Function *callee() const { return callee_; }
    void setCallee(Function *f) { callee_ = f; }

    BasicBlock *parent() const { return parent_; }
    void setParent(BasicBlock *bb) { parent_ = bb; }

    /** Hardware-monitored reduced-bitwidth operation (may misspeculate). */
    bool isSpeculative() const { return speculative_; }
    void setSpeculative(bool s) { speculative_ = s; }

    /**
     * For speculative instructions: the original bitwidth O(v) before
     * narrowing. A speculative load reads this many bits from memory and
     * misspeculates if the value exceeds its narrow type; a speculative
     * truncate misspeculates if its operand exceeds the narrow type.
     */
    unsigned specOrigBits() const { return specOrigBits_; }
    void setSpecOrigBits(unsigned b) { specOrigBits_ = b; }

    /**
     * Keep through DCE: a folded compare depends on this instruction's
     * misspeculation side effect even though its value is unused.
     */
    bool isGuard() const { return guard_; }
    void setGuard(bool g) { guard_ = g; }

    bool isTerm() const { return isTerminator(op_); }
    bool isPhi() const { return op_ == Opcode::Phi; }
    /** Volatile/observable: may not be re-executed (paper Eq. 5). */
    bool isVolatileOp() const { return op_ == Opcode::Output; }
    bool isCall() const { return op_ == Opcode::Call; }

    /** Dense per-function id assigned by Function::renumber(). */
    unsigned id() const { return id_; }
    void setId(unsigned id) { id_ = id; }

    /** 1-based source line of the statement this instruction was
     *  generated from; 0 for synthesized instructions. Carried through
     *  cloning so lint diagnostics on CFG_spec point at source. */
    int srcLine() const { return srcLine_; }
    void setSrcLine(int line) { srcLine_ = line; }

  private:
    Opcode op_;
    std::vector<Value *> operands_;
    std::vector<BasicBlock *> blockOperands_;
    CmpPred pred_ = CmpPred::EQ;
    Function *callee_ = nullptr;
    BasicBlock *parent_ = nullptr;
    bool speculative_ = false;
    bool guard_ = false;
    unsigned specOrigBits_ = 0;
    unsigned id_ = 0;
    int srcLine_ = 0;
};

} // namespace bitspec

#endif // BITSPEC_IR_INSTRUCTION_H_
