#include "ir/instruction.h"

#include "support/error.h"

namespace bitspec
{

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::Add: return "add";
      case Opcode::Sub: return "sub";
      case Opcode::Mul: return "mul";
      case Opcode::UDiv: return "udiv";
      case Opcode::SDiv: return "sdiv";
      case Opcode::URem: return "urem";
      case Opcode::SRem: return "srem";
      case Opcode::And: return "and";
      case Opcode::Or: return "or";
      case Opcode::Xor: return "xor";
      case Opcode::Shl: return "shl";
      case Opcode::LShr: return "lshr";
      case Opcode::AShr: return "ashr";
      case Opcode::ICmp: return "icmp";
      case Opcode::Select: return "select";
      case Opcode::ZExt: return "zext";
      case Opcode::SExt: return "sext";
      case Opcode::Trunc: return "trunc";
      case Opcode::Load: return "load";
      case Opcode::Store: return "store";
      case Opcode::Call: return "call";
      case Opcode::Output: return "output";
      case Opcode::Phi: return "phi";
      case Opcode::Br: return "br";
      case Opcode::CondBr: return "condbr";
      case Opcode::Ret: return "ret";
      case Opcode::Unreachable: return "unreachable";
    }
    panic("opcodeName: bad opcode");
}

const char *
cmpPredName(CmpPred pred)
{
    switch (pred) {
      case CmpPred::EQ: return "eq";
      case CmpPred::NE: return "ne";
      case CmpPred::ULT: return "ult";
      case CmpPred::ULE: return "ule";
      case CmpPred::UGT: return "ugt";
      case CmpPred::UGE: return "uge";
      case CmpPred::SLT: return "slt";
      case CmpPred::SLE: return "sle";
      case CmpPred::SGT: return "sgt";
      case CmpPred::SGE: return "sge";
    }
    panic("cmpPredName: bad predicate");
}

bool
isTerminator(Opcode op)
{
    return op == Opcode::Br || op == Opcode::CondBr || op == Opcode::Ret ||
           op == Opcode::Unreachable;
}

bool
hasSpeculativeForm(Opcode op)
{
    switch (op) {
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::ICmp:
      case Opcode::Load:
      case Opcode::Store:
      case Opcode::Trunc:
      case Opcode::ZExt:
      case Opcode::Phi:
      case Opcode::Select:
        return true;
      default:
        return false;
    }
}

} // namespace bitspec
