/**
 * @file
 * Cloning utilities shared by the inliner, loop unroller and squeezer.
 */

#ifndef BITSPEC_IR_CLONE_H_
#define BITSPEC_IR_CLONE_H_

#include <map>
#include <vector>

#include "ir/function.h"

namespace bitspec
{

/** Mapping from original values/blocks to their clones. */
struct CloneMap
{
    std::map<Value *, Value *> values;
    std::map<BasicBlock *, BasicBlock *> blocks;

    /** Mapped value, or the value itself when unmapped (e.g. constants,
     *  values defined outside the cloned region). */
    Value *
    get(Value *v) const
    {
        auto it = values.find(v);
        return it == values.end() ? v : it->second;
    }

    BasicBlock *
    get(BasicBlock *bb) const
    {
        auto it = blocks.find(bb);
        return it == blocks.end() ? bb : it->second;
    }
};

/**
 * Clone @p src_blocks into @p dst (which may equal the source function),
 * remapping operands and phi incoming blocks through the returned map.
 * Block names get @p suffix appended. References to values or blocks
 * outside @p src_blocks are left pointing at the originals.
 */
CloneMap cloneBlocks(const std::vector<BasicBlock *> &src_blocks,
                     Function *dst, const std::string &suffix);

/** Clone a single instruction without inserting it anywhere. */
std::unique_ptr<Instruction> cloneInstruction(const Instruction *inst);

} // namespace bitspec

#endif // BITSPEC_IR_CLONE_H_
