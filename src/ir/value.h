/**
 * @file
 * Value hierarchy for the BitSpec IR: constants, arguments, globals and
 * instruction results. Instructions subclass Value so an instruction's
 * result is the instruction itself, as in LLVM.
 */

#ifndef BITSPEC_IR_VALUE_H_
#define BITSPEC_IR_VALUE_H_

#include <cstdint>
#include <string>

#include "ir/type.h"

namespace bitspec
{

class Global;

/** Discriminator for the Value hierarchy. */
enum class ValueKind
{
    Constant,
    Argument,
    GlobalRef,
    Instruction,
};

/** Base class of everything an instruction can take as an operand. */
class Value
{
  public:
    Value(ValueKind kind, Type type) : kind_(kind), type_(type) {}
    virtual ~Value() = default;

    Value(const Value &) = delete;
    Value &operator=(const Value &) = delete;

    ValueKind kind() const { return kind_; }
    Type type() const { return type_; }
    void setType(Type t) { type_ = t; }

    const std::string &name() const { return name_; }
    void setName(std::string n) { name_ = std::move(n); }

    bool isConstant() const { return kind_ == ValueKind::Constant; }
    bool isInstruction() const { return kind_ == ValueKind::Instruction; }

  private:
    ValueKind kind_;
    Type type_;
    std::string name_;
};

/** An integer constant. Owned and deduplicated by the Module. */
class Constant : public Value
{
  public:
    Constant(Type type, uint64_t value)
        : Value(ValueKind::Constant, type), value_(value)
    {}

    /** Raw value, already truncated to the type's width. */
    uint64_t value() const { return value_; }

  private:
    uint64_t value_;
};

/** A formal parameter of a Function. */
class Argument : public Value
{
  public:
    Argument(Type type, unsigned index)
        : Value(ValueKind::Argument, type), index_(index)
    {}

    unsigned index() const { return index_; }

  private:
    unsigned index_;
};

/**
 * The address of a Global, materialised as an i32 value. The concrete
 * address is assigned when the module's memory image is laid out.
 */
class GlobalRef : public Value
{
  public:
    explicit GlobalRef(Global *global)
        : Value(ValueKind::GlobalRef, Type::i32()), global_(global)
    {}

    Global *global() const { return global_; }

  private:
    Global *global_;
};

} // namespace bitspec

#endif // BITSPEC_IR_VALUE_H_
