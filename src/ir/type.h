/**
 * @file
 * Integer types for the BitSpec IR.
 *
 * Mirroring LLVM, the IR is signedness-free: a type is just a bit count.
 * Signedness lives in the operations (SDiv/UDiv, SLT/ULT, SExt/ZExt).
 * bits == 0 encodes the void type (Store/Br/Ret results); bits == 1 is
 * the boolean produced by comparisons.
 */

#ifndef BITSPEC_IR_TYPE_H_
#define BITSPEC_IR_TYPE_H_

#include <string>

namespace bitspec
{

/** An integer type: a bit count in {0 (void), 1, 8, 16, 32, 64}. */
struct Type
{
    unsigned bits = 0;

    constexpr Type() = default;
    constexpr explicit Type(unsigned b) : bits(b) {}

    constexpr bool isVoid() const { return bits == 0; }
    constexpr bool isBool() const { return bits == 1; }
    constexpr bool isInt() const { return bits > 0; }

    constexpr bool operator==(const Type &o) const { return bits == o.bits; }
    constexpr bool operator!=(const Type &o) const { return bits != o.bits; }

    std::string
    str() const
    {
        if (isVoid())
            return "void";
        return "i" + std::to_string(bits);
    }

    static constexpr Type voidTy() { return Type(0); }
    static constexpr Type i1() { return Type(1); }
    static constexpr Type i8() { return Type(8); }
    static constexpr Type i16() { return Type(16); }
    static constexpr Type i32() { return Type(32); }
    static constexpr Type i64() { return Type(64); }
};

} // namespace bitspec

#endif // BITSPEC_IR_TYPE_H_
