/**
 * @file
 * Textual IR printer (LLVM-flavoured), used by tests and debugging.
 */

#ifndef BITSPEC_IR_PRINTER_H_
#define BITSPEC_IR_PRINTER_H_

#include <string>

#include "ir/module.h"

namespace bitspec
{

/** Print @p f as text. Speculative instructions carry "!spec". */
std::string printFunction(const Function &f);

/** Print the whole module. */
std::string printModule(const Module &m);

/** Render a single value reference (e.g. "%add.3", "i32 7", "@table"). */
std::string printValueRef(const Value *v);

} // namespace bitspec

#endif // BITSPEC_IR_PRINTER_H_
