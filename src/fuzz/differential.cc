#include "fuzz/differential.h"

#include "frontend/irgen.h"
#include "fuzz/gen.h"
#include "interp/interpreter.h"
#include "support/error.h"
#include "support/str.h"
#include "transform/expander.h"
#include "transform/squeezer.h"

namespace bitspec
{

namespace
{

constexpr MisspecPolicy kPolicies[] = {
    MisspecPolicy::Hardware,
    MisspecPolicy::ForceFirst,
    MisspecPolicy::Random,
};

void
setFuzzInputs(Module &m, uint64_t seed)
{
    for (unsigned n = 0; n < 2; ++n) {
        Global *g = m.getGlobal("in" + std::to_string(n));
        bsAssert(g != nullptr, "fuzz program lost its input global");
        g->setElem(0, fuzzInputValue(seed, n));
    }
}

/** First differing ActivityCounters field, or "" when equal. The
 *  two machine engines model identical hardware, so their counters
 *  must match bit-for-bit under every policy. */
std::string
countersDiff(const ActivityCounters &a, const ActivityCounters &b)
{
#define BITSPEC_FUZZ_CMP(field)                                       \
    if (a.field != b.field)                                           \
        return strFormat(#field " %llu != %llu",                      \
                         static_cast<unsigned long long>(a.field),    \
                         static_cast<unsigned long long>(b.field));
    BITSPEC_FUZZ_CMP(instructions)
    BITSPEC_FUZZ_CMP(cycles)
    BITSPEC_FUZZ_CMP(misspeculations)
    BITSPEC_FUZZ_CMP(alu32)
    BITSPEC_FUZZ_CMP(alu8)
    BITSPEC_FUZZ_CMP(mulDiv)
    BITSPEC_FUZZ_CMP(loads)
    BITSPEC_FUZZ_CMP(stores)
    BITSPEC_FUZZ_CMP(branches)
    BITSPEC_FUZZ_CMP(takenBranches)
    BITSPEC_FUZZ_CMP(calls)
    BITSPEC_FUZZ_CMP(outputs)
#undef BITSPEC_FUZZ_CMP
    return "";
}

} // namespace

Workload
makeFuzzWorkload(const FuzzProgram &p)
{
    Workload w;
    w.name = "fuzz-" + std::to_string(p.seed);
    w.source = p.render();
    w.setInput = [](Module &m, uint64_t seed) {
        setFuzzInputs(m, seed);
    };
    return w;
}

FuzzDiffResult
runFuzzDifferential(const FuzzProgram &p, ExperimentRunner &runner,
                    const FuzzDiffOptions &opts)
{
    FuzzDiffResult out;
    const Workload w = makeFuzzWorkload(p);
    SystemConfig cfg = SystemConfig::bitspec(opts.heuristic);
    cfg.expander.unrollFactor = opts.unrollFactor;

    auto diverge = [&](std::string detail) {
        out.status = FuzzDiffStatus::Diverged;
        if (out.detail.empty())
            out.detail = std::move(detail);
    };

    // ---- Reference: the unsqueezed decoded interpreter. ----
    uint64_t want = 0;
    uint64_t want_sum = 0;
    try {
        auto ref_mod = compileSource(w.source);
        setFuzzInputs(*ref_mod, opts.runSeed);
        Interpreter ref(*ref_mod);
        ref.setFuel(opts.fuel);
        want = truncTo(ref.run("main"), 32);
        want_sum = ref.outputChecksum();
    } catch (const FatalError &e) {
        out.status = FuzzDiffStatus::Skipped;
        out.detail = std::string("reference: ") + e.what();
        return out;
    }
    out.refReturn = want;
    out.refChecksum = want_sum;

    // ---- Decoded interpreter on the squeezed IR, all policies. ----
    // Runs on the System's own module (built once by the runner and
    // shared with the machine cells below), so the squeeze pipeline
    // executes once per program. A System restored from the disk
    // artifact tier has no IR; fall back to rebuilding the squeezed
    // module locally (identical passes, same train/run protocol).
    auto interpSweep = [&](Module &mod) {
        setFuzzInputs(mod, opts.runSeed);
        Interpreter it(mod);
        it.setFuel(opts.fuel);
        for (MisspecPolicy policy : kPolicies) {
            it.reset(); // Re-copy globals, clear outputs/stats.
            it.setMisspecPolicy(policy);
            it.setRandomSeed(opts.policySeed);
            uint64_t got = truncTo(it.run("main"), 32);
            ++out.runsExecuted;
            if (got != want)
                diverge(strFormat(
                    "interp/%s: return %llu != ref %llu",
                    misspecPolicyName(policy),
                    static_cast<unsigned long long>(got),
                    static_cast<unsigned long long>(want)));
            if (it.outputChecksum() != want_sum)
                diverge(strFormat(
                    "interp/%s: checksum %016llx != ref %016llx",
                    misspecPolicyName(policy),
                    static_cast<unsigned long long>(
                        it.outputChecksum()),
                    static_cast<unsigned long long>(want_sum)));
        }
    };
    try {
        bool swept = false;
        runner.withSystem(w, cfg, opts.profileSeed, [&](System &sys) {
            if (sys.module().getFunction("main") != nullptr) {
                interpSweep(sys.module());
                swept = true;
            }
        });
        if (!swept) {
            auto mod = compileSource(w.source);
            setFuzzInputs(*mod, opts.profileSeed);
            expandModule(*mod, cfg.expander);
            BitwidthProfile profile;
            profile.profileRun(*mod);
            squeezeModule(*mod, profile, cfg.squeezeOpts);
            interpSweep(*mod);
        }
    } catch (const FatalError &e) {
        out.status = FuzzDiffStatus::Skipped;
        out.detail = std::string("interp pipeline: ") + e.what();
        return out;
    }

    // ---- Machine engines via the experiment engine: one compiled
    // System serves all six engine x policy cells. ----
    std::vector<ExperimentCell> cells;
    for (CoreEngine engine : {CoreEngine::Legacy, CoreEngine::Fast}) {
        for (MisspecPolicy policy : kPolicies) {
            ExperimentCell cell;
            cell.workload = &w;
            cell.config = cfg;
            cell.profileSeed = opts.profileSeed;
            cell.runSeed = opts.runSeed;
            cell.engine = engine;
            cell.policy = policy;
            cell.policySeed = opts.policySeed;
            cells.push_back(std::move(cell));
        }
    }
    std::vector<RunResult> results;
    try {
        results = runner.run(cells);
    } catch (const FatalError &e) {
        out.status = FuzzDiffStatus::Skipped;
        out.detail = std::string("machine pipeline: ") + e.what();
        return out;
    }
    out.runsExecuted += static_cast<unsigned>(results.size());

    auto engine_name = [](size_t i) {
        return i < 3 ? "core" : "fast-core";
    };
    for (size_t i = 0; i < results.size(); ++i) {
        const char *policy =
            misspecPolicyName(kPolicies[i % 3]);
        if (results[i].returnValue != want)
            diverge(strFormat(
                "%s/%s: return %llu != ref %llu", engine_name(i),
                policy,
                static_cast<unsigned long long>(
                    results[i].returnValue),
                static_cast<unsigned long long>(want)));
        if (results[i].outputChecksum != want_sum)
            diverge(strFormat(
                "%s/%s: checksum %016llx != ref %016llx",
                engine_name(i), policy,
                static_cast<unsigned long long>(
                    results[i].outputChecksum),
                static_cast<unsigned long long>(want_sum)));
    }
    // Legacy cell i and fast cell i+3 ran the same policy and must
    // agree counter-for-counter.
    for (size_t i = 0; i < 3 && i + 3 < results.size(); ++i) {
        std::string diff = countersDiff(results[i].counters,
                                        results[i + 3].counters);
        if (!diff.empty())
            diverge(strFormat("core-vs-fast/%s: %s",
                              misspecPolicyName(kPolicies[i]),
                              diff.c_str()));
    }
    return out;
}

} // namespace bitspec
