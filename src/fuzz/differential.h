/**
 * @file
 * Differential misspeculation oracle: one generated program, executed
 * across every engine x misspeculation-policy combination, checked
 * for observational agreement.
 *
 * Engines: the decoded reference interpreter on the squeezed IR, the
 * legacy cycle-accurate Core and the memoized FastCore on the
 * compiled EMB32 program. Policies: Hardware, ForceFirst and seeded
 * Random (support/misspec.h). Theorems 3.1/3.2 make misspeculation
 * semantics-preserving, so every one of the nine runs must reproduce
 * the unsqueezed reference interpreter's return value and output
 * checksum; additionally the two machine engines must agree on their
 * ActivityCounters field-by-field under each policy (they model the
 * same hardware).
 *
 * The machine runs go through a caller-owned ExperimentRunner: one
 * compiled System per program serves all six engine x policy cells
 * (run-level knobs are not part of the System cache key), and a
 * shrink session re-probing the same candidate source hits the
 * memoized System outright.
 */

#ifndef BITSPEC_FUZZ_DIFFERENTIAL_H_
#define BITSPEC_FUZZ_DIFFERENTIAL_H_

#include <string>

#include "core/experiment.h"
#include "fuzz/program.h"
#include "profile/bitwidth_profile.h"

namespace bitspec
{

struct FuzzDiffOptions
{
    Heuristic heuristic = Heuristic::Max;
    /** Loop-unroll factor for the expander (the integration fuzz
     *  test's setting; half the build cost of the default 4, which
     *  is what keeps 500 programs inside the ctest smoke budget). */
    unsigned unrollFactor = 2;
    /** Training input seed; the run seed is held out so speculation
     *  can actually miss (mirrors the RQ6 sensitivity protocol). */
    uint64_t profileSeed = 0;
    uint64_t runSeed = 1;
    /** Seed for the Random policy's RNG (same across engines, so
     *  legacy/fast draw identical force decisions). */
    uint64_t policySeed = 0xfeed;
    /** Interpreter fuel; a program exceeding it is Skipped, not a
     *  divergence (generated loops are bounded, so this only guards
     *  pathological blowup). */
    uint64_t fuel = 50'000'000;
};

enum class FuzzDiffStatus
{
    Agree,    ///< All engine x policy runs matched the reference.
    Diverged, ///< At least one observation differed.
    Skipped,  ///< Program rejected (fuel/compile); not a divergence.
};

struct FuzzDiffResult
{
    FuzzDiffStatus status = FuzzDiffStatus::Agree;
    /** First divergence (engine/policy and observation) or the skip
     *  reason. */
    std::string detail;
    uint64_t refReturn = 0;
    uint64_t refChecksum = 0;
    unsigned runsExecuted = 0; ///< Engine x policy runs performed.
};

/** Wrap @p p as a Workload for the experiment engine: name
 *  "fuzz-<seed>", setInput writes fuzzInputValue(seed, n) into the
 *  inN globals. The workload's source is rendered once at call time;
 *  the returned object is self-contained. */
Workload makeFuzzWorkload(const FuzzProgram &p);

/** Run the full differential for @p p. @p runner serves the machine
 *  cells (and memoizes compiled Systems across calls). */
FuzzDiffResult runFuzzDifferential(const FuzzProgram &p,
                                   ExperimentRunner &runner,
                                   const FuzzDiffOptions &opts = {});

} // namespace bitspec

#endif // BITSPEC_FUZZ_DIFFERENTIAL_H_
