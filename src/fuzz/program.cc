#include "fuzz/program.h"

namespace bitspec
{

namespace
{

void
renderStmts(const std::vector<FuzzStmt> &stmts, unsigned indent,
            std::string &out)
{
    const std::string pad(indent * 2, ' ');
    for (const FuzzStmt &s : stmts) {
        switch (s.kind) {
          case FuzzStmt::Kind::Assign:
            out += pad + s.target + " = " + s.expr + ";\n";
            break;
          case FuzzStmt::Kind::MemStore:
            out += pad + "mem[(" + s.index + ") & 63] = (u8)(" +
                   s.expr + ");\n";
            break;
          case FuzzStmt::Kind::If:
            out += pad + "if (" + s.expr + ") {\n";
            renderStmts(s.body, indent + 1, out);
            if (!s.elseBody.empty()) {
                out += pad + "} else {\n";
                renderStmts(s.elseBody, indent + 1, out);
            }
            out += pad + "}\n";
            break;
          case FuzzStmt::Kind::Loop:
            out += pad + "for (u32 " + s.inductionVar + " = 0; " +
                   s.inductionVar + " < " + std::to_string(s.trip) +
                   "; " + s.inductionVar + "++) {\n";
            renderStmts(s.body, indent + 1, out);
            out += pad + "}\n";
            break;
          case FuzzStmt::Kind::Output:
            out += pad + "out(" + s.expr + ");\n";
            break;
        }
    }
}

unsigned
countStmts(const std::vector<FuzzStmt> &stmts)
{
    unsigned n = 0;
    for (const FuzzStmt &s : stmts)
        n += 1 + countStmts(s.body) + countStmts(s.elseBody);
    return n;
}

} // namespace

std::string
FuzzProgram::render() const
{
    std::string out = "u8 mem[64];\nu32 in0;\nu32 in1;\n";
    out += "u32 main() {\n";
    // Deterministic in-program array image, so the only run-to-run
    // inputs are the in0/in1 globals the Workload writes.
    out += "  for (u32 z = 0; z < 64; z++) mem[z] = "
           "(u8)(z * 37 + 11);\n";
    for (const FuzzDecl &d : decls)
        out += "  " + d.type + " " + d.name + " = " + d.init + ";\n";
    renderStmts(stmts, 1, out);
    out += "  return " + ret + ";\n}\n";
    return out;
}

unsigned
FuzzProgram::stmtCount() const
{
    return countStmts(stmts);
}

} // namespace bitspec
