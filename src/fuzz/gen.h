/**
 * @file
 * Seeded random-program generator, biased toward boundary bitwidths.
 *
 * The squeezer's interesting failure surface is where a value sits
 * right at a slice boundary — fits in 8 bits on the training input,
 * overflows on the measurement input. The generator therefore draws
 * constants from a pool clustered around 2^8 and 2^16 (255/256/257,
 * 65535/65536, ...), gives variables the u8/u16/u32 widths the
 * squeezer targets, and keeps loop trip counts small enough that
 * generated programs stay in the smoke budget.
 */

#ifndef BITSPEC_FUZZ_GEN_H_
#define BITSPEC_FUZZ_GEN_H_

#include "fuzz/program.h"

namespace bitspec
{

/** Generator knobs (defaults match the fuzz_spec smoke run). */
struct FuzzGenOptions
{
    unsigned minDecls = 3;
    unsigned maxDecls = 6;
    unsigned minStmts = 4;
    unsigned maxStmts = 9;
    unsigned maxDepth = 2;  ///< Nesting budget for if/loop bodies.
    unsigned maxTrip = 40;  ///< Loop bound ceiling.
};

/** Generate the program for @p seed (pure function of its inputs). */
FuzzProgram generateProgram(uint64_t seed,
                            const FuzzGenOptions &opts = {});

/** The boundary-biased input value the fuzz Workload writes into
 *  global `inN` for run seed @p seed (exposed so the differential
 *  harness and tests agree on inputs). */
uint64_t fuzzInputValue(uint64_t seed, unsigned n);

} // namespace bitspec

#endif // BITSPEC_FUZZ_GEN_H_
