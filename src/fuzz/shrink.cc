#include "fuzz/shrink.h"

namespace bitspec
{

namespace
{

using StmtEdit = std::function<bool(std::vector<FuzzStmt> &, size_t)>;

// Assigned as std::string objects (not literals) to sidestep a GCC 12
// -Wrestrict false positive on literal assignment after vector::erase.
const std::string kOne = "1";
const std::string kZero = "0";

/** Apply @p edit to the statement at DFS-preorder position @p target
 *  (counting across nested bodies). Returns whether an edit was
 *  applied; @p counter threads the position through the recursion. */
bool
editAt(std::vector<FuzzStmt> &stmts, unsigned &counter, unsigned target,
       const StmtEdit &edit)
{
    for (size_t i = 0; i < stmts.size(); ++i) {
        if (counter++ == target)
            return edit(stmts, i);
        if (editAt(stmts[i].body, counter, target, edit))
            return true;
        if (editAt(stmts[i].elseBody, counter, target, edit))
            return true;
    }
    return false;
}

/** Every single-edit simplification of @p p, most aggressive first:
 *  whole-statement deletions shrink fastest, so they lead; expression
 *  and declaration simplifications clean up what remains. */
std::vector<FuzzProgram>
candidates(const FuzzProgram &p)
{
    std::vector<FuzzProgram> out;
    const unsigned nstmts = p.stmtCount();

    auto stmtEdit = [&](unsigned pos, const StmtEdit &edit) {
        FuzzProgram c = p;
        unsigned counter = 0;
        if (editAt(c.stmts, counter, pos, edit))
            out.push_back(std::move(c));
    };

    // Delete each statement outright.
    for (unsigned pos = 0; pos < nstmts; ++pos)
        stmtEdit(pos, [](std::vector<FuzzStmt> &v, size_t i) {
            v.erase(v.begin() + i);
            return true;
        });

    // Flatten control flow: an if becomes one of its arms, a loop
    // its body (loop bodies referencing the induction variable fail
    // to compile and are rejected by the predicate — no analysis
    // needed here).
    for (unsigned pos = 0; pos < nstmts; ++pos) {
        for (bool else_arm : {false, true})
            stmtEdit(pos, [else_arm](std::vector<FuzzStmt> &v,
                                     size_t i) {
                FuzzStmt &s = v[i];
                if (s.kind != FuzzStmt::Kind::If &&
                    s.kind != FuzzStmt::Kind::Loop)
                    return false;
                if (else_arm && s.elseBody.empty())
                    return false;
                std::vector<FuzzStmt> arm =
                    else_arm ? std::move(s.elseBody)
                             : std::move(s.body);
                v.erase(v.begin() + i);
                v.insert(v.begin() + i,
                         std::make_move_iterator(arm.begin()),
                         std::make_move_iterator(arm.end()));
                return true;
            });
    }

    // Reduce loop trip counts (binary, then to the 2-iteration floor).
    for (unsigned pos = 0; pos < nstmts; ++pos) {
        stmtEdit(pos, [](std::vector<FuzzStmt> &v, size_t i) {
            if (v[i].kind != FuzzStmt::Kind::Loop || v[i].trip <= 3)
                return false;
            v[i].trip /= 2;
            return true;
        });
        stmtEdit(pos, [](std::vector<FuzzStmt> &v, size_t i) {
            if (v[i].kind != FuzzStmt::Kind::Loop || v[i].trip <= 2)
                return false;
            v[i].trip = 2;
            return true;
        });
    }

    // Collapse expressions to a constant.
    for (unsigned pos = 0; pos < nstmts; ++pos) {
        stmtEdit(pos, [](std::vector<FuzzStmt> &v, size_t i) {
            if (v[i].expr.empty() || v[i].expr == kOne)
                return false;
            v[i].expr = kOne;
            return true;
        });
        stmtEdit(pos, [](std::vector<FuzzStmt> &v, size_t i) {
            if (v[i].kind != FuzzStmt::Kind::MemStore ||
                v[i].index == kOne)
                return false;
            v[i].index = kOne;
            return true;
        });
    }

    // Drop or simplify declarations (a deleted decl with live uses
    // fails to compile and is rejected by the predicate).
    for (size_t d = 0; d < p.decls.size(); ++d) {
        FuzzProgram c = p;
        c.decls.erase(c.decls.begin() + d);
        out.push_back(std::move(c));
        if (p.decls[d].init != "1") {
            c = p;
            c.decls[d].init = kOne;
            out.push_back(std::move(c));
        }
    }

    // Simplify the return expression.
    if (p.ret != "0") {
        FuzzProgram c = p;
        c.ret = kZero;
        out.push_back(std::move(c));
    }
    return out;
}

} // namespace

FuzzShrinkResult
shrinkProgram(const FuzzProgram &p,
              const std::function<bool(const FuzzProgram &)> &stillDiverges,
              const FuzzShrinkOptions &opts)
{
    FuzzShrinkResult r;
    r.program = p;
    bool changed = true;
    while (changed && r.probes < opts.maxProbes) {
        changed = false;
        for (FuzzProgram &c : candidates(r.program)) {
            if (r.probes >= opts.maxProbes)
                break;
            ++r.probes;
            if (stillDiverges(c)) {
                r.program = std::move(c);
                ++r.accepted;
                changed = true;
                break; // Re-enumerate against the smaller program.
            }
        }
    }
    return r;
}

} // namespace bitspec
