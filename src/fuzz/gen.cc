#include "fuzz/gen.h"

#include "support/rng.h"

namespace bitspec
{

namespace
{

/** Bitwidth-boundary constants: the values whose off-by-one
 *  neighbours flip a RequiredBits decision at the 8/16-bit slices. */
constexpr uint64_t kBoundaryPool[] = {
    0,   1,   2,     127,   128,   129,   254,   255,
    256, 257, 65534, 65535, 65536, 65537, 0xfffe, 0xffff,
};

class Generator
{
  public:
    Generator(uint64_t seed, const FuzzGenOptions &opts)
        : rng_(seed), opts_(opts)
    {
    }

    FuzzProgram
    run(uint64_t seed)
    {
        FuzzProgram p;
        p.seed = seed;
        vars_ = {"in0", "in1"};
        assignable_.clear();

        unsigned ndecls =
            opts_.minDecls +
            rng_.nextBelow(opts_.maxDecls - opts_.minDecls + 1);
        for (unsigned i = 0; i < ndecls; ++i) {
            FuzzDecl d;
            d.type = type();
            d.name = "v" + std::to_string(i);
            d.init = expr(2);
            vars_.push_back(d.name);
            assignable_.push_back(d.name);
            p.decls.push_back(std::move(d));
        }

        unsigned nstmts =
            opts_.minStmts +
            rng_.nextBelow(opts_.maxStmts - opts_.minStmts + 1);
        for (unsigned i = 0; i < nstmts; ++i)
            p.stmts.push_back(stmt(opts_.maxDepth));

        p.ret = pick() + " + " + pick();
        return p;
    }

  private:
    std::string
    pick()
    {
        return vars_[rng_.nextBelow(vars_.size())];
    }

    /** Assignment targets exclude inputs and induction variables
     *  (writing an induction variable could diverge the loop). */
    std::string
    pickAssignable()
    {
        if (assignable_.empty())
            return "in0"; // Unreachable with minDecls >= 1.
        return assignable_[rng_.nextBelow(assignable_.size())];
    }

    std::string
    literal()
    {
        // Half the draws sit exactly on a slice boundary; a quarter
        // land within +-2 of one (the misspeculation knife edge);
        // the rest are uniform byte-ish values.
        uint64_t r = rng_.nextBelow(4);
        if (r < 2) {
            uint64_t base = kBoundaryPool[rng_.nextBelow(
                sizeof(kBoundaryPool) / sizeof(kBoundaryPool[0]))];
            if (r == 1)
                base += rng_.nextBelow(5) - 2;
            return std::to_string(base & 0xffffffffULL);
        }
        if (r == 2)
            return std::to_string(rng_.nextBelow(100000));
        return std::to_string(rng_.nextBelow(256));
    }

    std::string
    binop()
    {
        const char *ops[] = {"+", "-", "*", "&", "|", "^"};
        return ops[rng_.nextBelow(6)];
    }

    std::string
    relop()
    {
        const char *ops[] = {"<", "<=", ">", ">=", "==", "!="};
        return ops[rng_.nextBelow(6)];
    }

    std::string
    type()
    {
        const char *types[] = {"u8", "u16", "u32", "u32"};
        return types[rng_.nextBelow(4)];
    }

    std::string
    expr(unsigned depth)
    {
        switch (rng_.nextBelow(depth == 0 ? 3 : 6)) {
          case 0:
            return pick();
          case 1:
            return literal();
          case 2:
            return "mem[(" + pick() + ") & 63]";
          case 3:
            return "(" + expr(depth - 1) + " " + binop() + " " +
                   expr(depth - 1) + ")";
          case 4:
            return "((" + expr(depth - 1) + ") " +
                   (rng_.nextBelow(2) ? "<<" : ">>") + " " +
                   std::to_string(1 + rng_.nextBelow(7)) + ")";
          default:
            return "((" + expr(depth - 1) + ") % " +
                   std::to_string(2 + rng_.nextBelow(254)) + ")";
        }
    }

    FuzzStmt
    stmt(unsigned depth)
    {
        FuzzStmt s;
        switch (rng_.nextBelow(depth == 0 ? 3 : 6)) {
          case 0:
            s.kind = FuzzStmt::Kind::Assign;
            s.target = pickAssignable();
            s.expr = expr(2);
            return s;
          case 1:
            s.kind = FuzzStmt::Kind::Assign;
            s.target = pickAssignable();
            s.expr = "(" + s.target + " + " + expr(1) + ")";
            return s;
          case 2:
            s.kind = FuzzStmt::Kind::MemStore;
            s.index = expr(1);
            s.expr = expr(1);
            return s;
          case 3:
            s.kind = FuzzStmt::Kind::If;
            s.expr = "(" + pick() + " & 255) " + relop() + " " +
                     literal();
            s.body.push_back(stmt(depth - 1));
            s.elseBody.push_back(stmt(depth - 1));
            return s;
          case 4: {
            s.kind = FuzzStmt::Kind::Loop;
            s.inductionVar = "i" + std::to_string(loops_++);
            s.trip = 2 + static_cast<unsigned>(
                             rng_.nextBelow(opts_.maxTrip - 1));
            vars_.push_back(s.inductionVar);
            s.body.push_back(stmt(depth - 1));
            s.body.push_back(stmt(depth - 1));
            vars_.pop_back(); // Scoped to the loop.
            return s;
          }
          default:
            s.kind = FuzzStmt::Kind::Output;
            s.expr = pick();
            return s;
        }
    }

    Rng rng_;
    FuzzGenOptions opts_;
    std::vector<std::string> vars_;
    std::vector<std::string> assignable_;
    unsigned loops_ = 0;
};

} // namespace

FuzzProgram
generateProgram(uint64_t seed, const FuzzGenOptions &opts)
{
    return Generator(seed, opts).run(seed);
}

uint64_t
fuzzInputValue(uint64_t seed, unsigned n)
{
    // Splitmix-style draw per (seed, n), snapped to a boundary value
    // half the time so held-out run inputs cross training slices.
    Rng rng(seed * 0x9e3779b97f4a7c15ULL + n);
    if (rng.nextBelow(2) == 0)
        return kBoundaryPool[rng.nextBelow(
            sizeof(kBoundaryPool) / sizeof(kBoundaryPool[0]))];
    return rng.nextBelow(1 << 20);
}

} // namespace bitspec
