/**
 * @file
 * Structured random-program model for the misspeculation fuzzer.
 *
 * Programs are held as a statement tree, not as source text, so the
 * shrinker (shrink.h) can delete statements, unwrap control flow and
 * simplify expressions structurally and re-render after every probe.
 * render() emits the BitSpec C subset accepted by frontend/irgen.h.
 *
 * Every program reads its input from the `in0`/`in1` globals (written
 * by the fuzz Workload's setInput, like the MiBench kernels) and
 * self-initialises its `mem` byte array in-program, so one source
 * string is a complete, reproducible repro.
 */

#ifndef BITSPEC_FUZZ_PROGRAM_H_
#define BITSPEC_FUZZ_PROGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace bitspec
{

/** One statement of a generated program. */
struct FuzzStmt
{
    enum class Kind
    {
        Assign,   ///< target = expr;
        MemStore, ///< mem[(index) & 63] = (u8)(expr);
        If,       ///< if (expr) { body } else { elseBody }
        Loop,     ///< for (inductionVar = 0; < trip; ++) { body }
        Output,   ///< out(expr);
    };

    Kind kind = Kind::Assign;
    std::string target;       ///< Assign destination variable.
    std::string expr;         ///< RHS / store value / condition / out.
    std::string index;        ///< MemStore index expression.
    std::string inductionVar; ///< Loop counter name.
    unsigned trip = 0;        ///< Loop bound.
    std::vector<FuzzStmt> body;     ///< If-then / loop body.
    std::vector<FuzzStmt> elseBody; ///< If-else arm.
};

/** A local variable declaration (program prologue). */
struct FuzzDecl
{
    std::string type; ///< u8 / u16 / u32.
    std::string name;
    std::string init;
};

/** A complete generated program. */
struct FuzzProgram
{
    uint64_t seed = 0; ///< Generator seed (reproduction handle).
    std::vector<FuzzDecl> decls;
    std::vector<FuzzStmt> stmts;
    std::string ret = "0"; ///< Return expression.

    /** Emit the C-subset source. */
    std::string render() const;

    /** Total statements, counted recursively (shrink metric). */
    unsigned stmtCount() const;
};

} // namespace bitspec

#endif // BITSPEC_FUZZ_PROGRAM_H_
