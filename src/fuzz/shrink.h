/**
 * @file
 * Greedy structural shrinker for divergent fuzz programs.
 *
 * Given a program and a caller-supplied predicate ("does this still
 * diverge?"), repeatedly tries simplifying edits — delete a
 * statement, flatten an if/loop to its body, reduce a trip count,
 * collapse an expression to a constant, drop a declaration — keeping
 * an edit only when the predicate still holds, until no single edit
 * survives (1-minimality over the move set) or the probe budget runs
 * out.
 *
 * The predicate sees a complete FuzzProgram and typically wraps
 * runFuzzDifferential; edits that break compilation simply make the
 * predicate return false (the differential reports Skipped), so the
 * shrinker needs no well-formedness analysis of its own. Probing the
 * same memoized ExperimentRunner keeps re-probes of previously seen
 * sources cheap.
 */

#ifndef BITSPEC_FUZZ_SHRINK_H_
#define BITSPEC_FUZZ_SHRINK_H_

#include <functional>

#include "fuzz/program.h"

namespace bitspec
{

struct FuzzShrinkOptions
{
    /** Predicate-evaluation budget; the result is still valid (the
     *  predicate holds for it) when exhausted, just not minimal. */
    unsigned maxProbes = 400;
};

struct FuzzShrinkResult
{
    FuzzProgram program; ///< Smallest program still satisfying pred.
    unsigned probes = 0;   ///< Predicate evaluations performed.
    unsigned accepted = 0; ///< Edits that survived the predicate.
};

/** Shrink @p p under @p stillDiverges, which must hold for @p p
 *  itself (the caller has already observed the divergence). */
FuzzShrinkResult
shrinkProgram(const FuzzProgram &p,
              const std::function<bool(const FuzzProgram &)> &stillDiverges,
              const FuzzShrinkOptions &opts = {});

} // namespace bitspec

#endif // BITSPEC_FUZZ_SHRINK_H_
