#include "uarch/core.h"

#include <algorithm>

#include "obs/attribution.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "support/bits.h"
#include "support/error.h"
#include "support/str.h"

namespace bitspec
{

namespace
{

constexpr uint32_t kBranchPenalty = 2;  ///< Taken-branch flush.
constexpr uint32_t kMisspecPenalty = 4; ///< Redirect + refill.
constexpr uint32_t kLoadLatency = 2;
constexpr uint32_t kMulLatency = 3;
constexpr uint32_t kDivLatency = 12;

} // namespace

Core::Core(const MachProgram &program, const Module &m)
    : prog_(program), module_(m)
{
    dataMem_.resize(kMemBytes, 0);
    reset();
}

void
Core::reset()
{
    std::fill(dataMem_.begin(), dataMem_.end(), 0);
    for (const auto &g : module_.globals()) {
        bsAssert(g->address() + g->sizeBytes() <= dataMem_.size(),
                 "global outside data memory");
        std::copy(g->data().begin(), g->data().end(),
                  dataMem_.begin() + g->address());
    }
    std::fill(std::begin(regs_), std::end(regs_), 0);
    std::fill(std::begin(readyAt_), std::end(readyAt_), 0);
    flags_ = Flags{};
    delta_ = 0;
    classicMode_ = false;
    counters_ = ActivityCounters{};
    output_.clear();
    outputHash_ = kFnvOffset;
    mem_ = MemoryHierarchy{};
}

uint64_t
Core::outputChecksum() const
{
    // Maintained incrementally as OUT executes; experiment harnesses
    // query it once per run without re-walking the output stream.
    return outputHash_;
}

bool
Core::condHolds(Cond c) const
{
    switch (c) {
      case Cond::AL: return true;
      case Cond::EQ: return flags_.z;
      case Cond::NE: return !flags_.z;
      case Cond::LO: return !flags_.c;
      case Cond::LS: return !flags_.c || flags_.z;
      case Cond::HI: return flags_.c && !flags_.z;
      case Cond::HS: return flags_.c;
      case Cond::LT: return flags_.n != flags_.v;
      case Cond::LE: return flags_.z || flags_.n != flags_.v;
      case Cond::GT: return !flags_.z && flags_.n == flags_.v;
      case Cond::GE: return flags_.n == flags_.v;
    }
    panic("condHolds: bad cond");
}

uint32_t
Core::readOpnd(const MOpnd &o)
{
    switch (o.kind) {
      case MOpndKind::Reg:
        ++counters_.rfRead32;
        return regs_[o.reg];
      case MOpndKind::Slice:
        ++counters_.rfRead8;
        return (regs_[o.reg] >> (8 * o.slice)) & 0xff;
      case MOpndKind::Imm:
        return static_cast<uint32_t>(o.imm);
      default:
        panic("readOpnd: unallocated operand");
    }
}

void
Core::writeOpnd(const MOpnd &o, uint32_t value)
{
    switch (o.kind) {
      case MOpndKind::Reg:
        ++counters_.rfWrite32;
        regs_[o.reg] = value;
        return;
      case MOpndKind::Slice: {
        ++counters_.rfWrite8;
        uint32_t shift = 8 * o.slice;
        regs_[o.reg] =
            (regs_[o.reg] & ~(0xffu << shift)) |
            ((value & 0xff) << shift);
        return;
      }
      default:
        panic("writeOpnd: bad destination");
    }
}

uint32_t
Core::loadData(uint32_t addr, unsigned bytes)
{
    // 64-bit sum: addr + bytes wraps in 32 bits near UINT32_MAX and
    // would slip past the check (same bug class as the interpreter's
    // old loadMem/storeMem).
    if (static_cast<uint64_t>(addr) + bytes > dataMem_.size())
        fatal(strFormat("machine load out of bounds at 0x%x", addr));
    uint32_t v = 0;
    for (unsigned b = 0; b < bytes; ++b)
        v |= static_cast<uint32_t>(dataMem_[addr + b]) << (8 * b);
    return v;
}

void
Core::storeData(uint32_t addr, uint32_t value, unsigned bytes)
{
    if (static_cast<uint64_t>(addr) + bytes > dataMem_.size())
        fatal(strFormat("machine store out of bounds at 0x%x", addr));
    for (unsigned b = 0; b < bytes; ++b)
        dataMem_[addr + b] = static_cast<uint8_t>(value >> (8 * b));
}

uint32_t
Core::run(const std::vector<uint32_t> &args)
{
    trace::Span span("core.run", "execute");
    bsAssert(args.size() <= 4, "run: more than 4 arguments");
    for (size_t i = 0; i < args.size(); ++i)
        regs_[i] = args[i];
    regs_[kRegLR] = MachProgram::kHaltAddr;

    uint64_t cycle = 0;
    uint32_t idx = 0; // Flat instruction index (PC / 4 - base).
    uint64_t executed = 0;

    // Fetch-path state hoisted out of the per-instruction loop: the
    // instruction array (size/base pointer are loop-invariant) and a
    // dense per-tag counter array replacing the provenance switch.
    // Tag counts fold into counters_ at the clean-exit points only,
    // like cycles; an out-of-fuel/out-of-range throw leaves the
    // provenance counters unfinalized.
    const MachInst *flat = prog_.flat.data();
    const uint32_t flat_size =
        static_cast<uint32_t>(prog_.flat.size());
    // Observer pointers hoisted out of the loop: three loop-invariant
    // member loads per retire become register-resident locals.
    AttributionSink *const attr = attr_;
    BlockProfilerSink *const prof = prof_;
    CounterTrackEmitter *const tracks = tracks_;
    uint64_t tag_counts[kNumInstTags] = {};
    auto finish = [&](uint64_t final_cycle) {
        counters_.cycles = final_cycle;
        counters_.dynSpillLoads +=
            tag_counts[static_cast<size_t>(InstTag::SpillLoad)];
        counters_.dynSpillStores +=
            tag_counts[static_cast<size_t>(InstTag::SpillStore)];
        counters_.dynCopies +=
            tag_counts[static_cast<size_t>(InstTag::Copy)];
    };

    auto reg_ready = [&](const MOpnd &o) -> uint64_t {
        if (o.isReg() || o.isSlice())
            return readyAt_[o.reg];
        return 0;
    };

    for (;;) {
        if (idx >= flat_size)
            fatal(strFormat("PC out of code range: index %u", idx));
        if (++executed > fuel_)
            fatal("machine execution out of fuel (infinite loop?)");

        const MachInst &inst = flat[idx];
        uint32_t pc_addr =
            MachProgram::kCodeBase + idx * kInstBytes;
        const uint64_t cycle_at_fetch = cycle;

        // Fetch.
        cycle += 1 + mem_.fetch(pc_addr);
        ++counters_.instructions;
        ++tag_counts[static_cast<size_t>(inst.tag)];

        // Operand readiness (in-order issue stall).
        uint64_t ready = std::max(
            {reg_ready(inst.dst), reg_ready(inst.a),
             reg_ready(inst.b)});
        if (ready > cycle)
            cycle = ready;

        uint32_t next = idx + 1;
        bool wrote = false;
        uint64_t dst_ready = cycle + 1;

        auto misspeculate = [&]() {
            ++counters_.misspeculations;
            if (attr)
                attr->onMisspec(idx);
            if (prof)
                prof->onMisspec(idx);
            next = idx + delta_ / kInstBytes;
            cycle += kMisspecPenalty;
        };

        auto set_flags_sub = [&](uint64_t a, uint64_t b,
                                 unsigned bits) {
            uint64_t mask = lowMask(bits);
            uint64_t r = (a - b) & mask;
            flags_.z = r == 0;
            flags_.n = (r >> (bits - 1)) & 1;
            flags_.c = a >= b;
            bool sa = (a >> (bits - 1)) & 1;
            bool sb = (b >> (bits - 1)) & 1;
            bool sr = (r >> (bits - 1)) & 1;
            flags_.v = (sa != sb) && (sr != sa);
        };

        switch (inst.op) {
          case MOp::ADD: case MOp::SUB: case MOp::AND:
          case MOp::ORR: case MOp::EOR: case MOp::LSL:
          case MOp::LSR: case MOp::ASR: {
            ++counters_.alu32;
            uint32_t a = readOpnd(inst.a);
            uint32_t b = readOpnd(inst.b);
            uint32_t r = 0;
            switch (inst.op) {
              case MOp::ADD: r = a + b; break;
              case MOp::SUB: r = a - b; break;
              case MOp::AND: r = a & b; break;
              case MOp::ORR: r = a | b; break;
              case MOp::EOR: r = a ^ b; break;
              case MOp::LSL: r = b >= 32 ? 0 : a << b; break;
              case MOp::LSR: r = b >= 32 ? 0 : a >> b; break;
              case MOp::ASR:
                r = b >= 32
                        ? (static_cast<int32_t>(a) < 0 ? ~0u : 0)
                        : static_cast<uint32_t>(
                              static_cast<int32_t>(a) >>
                              b);
                break;
              default: break;
            }
            writeOpnd(inst.dst, r);
            wrote = true;
            break;
          }
          case MOp::MUL: {
            ++counters_.mulDiv;
            writeOpnd(inst.dst, readOpnd(inst.a) * readOpnd(inst.b));
            wrote = true;
            dst_ready = cycle + kMulLatency;
            break;
          }
          case MOp::UDIV: case MOp::SDIV: {
            ++counters_.mulDiv;
            uint32_t a = readOpnd(inst.a);
            uint32_t b = readOpnd(inst.b);
            if (b == 0)
                fatal("machine division by zero");
            uint32_t r =
                inst.op == MOp::UDIV
                    ? a / b
                    : static_cast<uint32_t>(
                          static_cast<int32_t>(a) /
                          static_cast<int32_t>(b));
            writeOpnd(inst.dst, r);
            wrote = true;
            dst_ready = cycle + kDivLatency;
            break;
          }
          case MOp::MOV: case MOp::MOV8: {
            ++(inst.op == MOp::MOV ? counters_.alu32 : counters_.alu8);
            if (condHolds(inst.cond)) {
                writeOpnd(inst.dst, readOpnd(inst.a));
                wrote = true;
            }
            break;
          }
          case MOp::MVN: {
            ++counters_.alu32;
            writeOpnd(inst.dst, ~readOpnd(inst.a));
            wrote = true;
            break;
          }
          case MOp::MOVW: {
            ++counters_.alu32;
            writeOpnd(inst.dst,
                      static_cast<uint32_t>(inst.a.imm) & 0xffff);
            wrote = true;
            break;
          }
          case MOp::MOVT: {
            ++counters_.alu32;
            uint32_t lo = regs_[inst.dst.reg] & 0xffff;
            ++counters_.rfRead32;
            writeOpnd(inst.dst,
                      (static_cast<uint32_t>(inst.a.imm) << 16) | lo);
            wrote = true;
            break;
          }
          case MOp::CMP: {
            ++counters_.alu32;
            set_flags_sub(readOpnd(inst.a), readOpnd(inst.b), 32);
            break;
          }
          case MOp::CMP8: {
            ++counters_.alu8;
            set_flags_sub(readOpnd(inst.a) & 0xff,
                          readOpnd(inst.b) & 0xff, 8);
            break;
          }
          case MOp::SETCC: {
            ++counters_.alu32;
            writeOpnd(inst.dst, condHolds(inst.cond) ? 1 : 0);
            wrote = true;
            break;
          }
          case MOp::SXTH: {
            ++counters_.alu32;
            writeOpnd(inst.dst, static_cast<uint32_t>(
                sextFrom(readOpnd(inst.a), 16)));
            wrote = true;
            break;
          }
          case MOp::UXTH: {
            ++counters_.alu32;
            writeOpnd(inst.dst, readOpnd(inst.a) & 0xffff);
            wrote = true;
            break;
          }
          case MOp::LDR: case MOp::LDRH: case MOp::LDRB: {
            ++counters_.loads;
            uint32_t addr = readOpnd(inst.a) +
                            static_cast<uint32_t>(inst.b.isImm()
                                                      ? inst.b.imm
                                                      : readOpnd(inst.b));
            unsigned bytes = inst.op == MOp::LDR ? 4
                             : inst.op == MOp::LDRH ? 2 : 1;
            uint32_t stall = mem_.data(addr, false);
            writeOpnd(inst.dst, loadData(addr, bytes));
            wrote = true;
            dst_ready = cycle + kLoadLatency + stall;
            break;
          }
          case MOp::LDRB8: {
            ++counters_.loads;
            uint32_t addr = readOpnd(inst.a) +
                            static_cast<uint32_t>(inst.b.isImm()
                                                      ? inst.b.imm
                                                      : readOpnd(inst.b));
            uint32_t stall = mem_.data(addr, false);
            writeOpnd(inst.dst, loadData(addr, 1));
            wrote = true;
            dst_ready = cycle + kLoadLatency + stall;
            break;
          }
          case MOp::LDRS8: {
            // Speculative load: reads the full-width location and
            // misspeculates when the value exceeds the slice.
            ++counters_.loads;
            uint32_t addr = readOpnd(inst.a) +
                            static_cast<uint32_t>(inst.b.isImm()
                                                      ? inst.b.imm
                                                      : readOpnd(inst.b));
            uint32_t stall = mem_.data(addr, false);
            unsigned bytes = inst.origBits == 16 ? 2 : 4;
            uint32_t v = loadData(addr, bytes);
            if (v > 0xff || shouldForce()) {
                cycle += stall;
                misspeculate();
                break;
            }
            writeOpnd(inst.dst, v);
            wrote = true;
            dst_ready = cycle + kLoadLatency + stall;
            break;
          }
          case MOp::STR: case MOp::STRH: case MOp::STRB:
          case MOp::STRB8: {
            ++counters_.stores;
            uint32_t addr = readOpnd(inst.a) +
                            static_cast<uint32_t>(inst.b.isImm()
                                                      ? inst.b.imm
                                                      : readOpnd(inst.b));
            unsigned bytes = inst.op == MOp::STR ? 4
                             : inst.op == MOp::STRH ? 2 : 1;
            cycle += mem_.data(addr, true);
            storeData(addr, readOpnd(inst.dst), bytes);
            break;
          }
          case MOp::ADD8: case MOp::SUB8: {
            ++counters_.alu8;
            uint32_t a = readOpnd(inst.a) & 0xff;
            uint32_t b = readOpnd(inst.b) & 0xff;
            if (inst.op == MOp::ADD8) {
                uint32_t full = a + b;
                if (inst.speculative && (full > 0xff || shouldForce())) {
                    misspeculate();
                    break;
                }
                writeOpnd(inst.dst, full & 0xff);
            } else {
                if (inst.speculative && (a < b || shouldForce())) {
                    misspeculate();
                    break;
                }
                writeOpnd(inst.dst, (a - b) & 0xff);
            }
            wrote = true;
            break;
          }
          case MOp::AND8: case MOp::ORR8: case MOp::EOR8: {
            ++counters_.alu8;
            uint32_t a = readOpnd(inst.a) & 0xff;
            uint32_t b = readOpnd(inst.b) & 0xff;
            uint32_t r = inst.op == MOp::AND8 ? (a & b)
                         : inst.op == MOp::ORR8 ? (a | b) : (a ^ b);
            writeOpnd(inst.dst, r);
            wrote = true;
            break;
          }
          case MOp::UXT8: {
            ++counters_.alu8;
            writeOpnd(inst.dst, readOpnd(inst.a) & 0xff);
            wrote = true;
            break;
          }
          case MOp::SXT8: {
            ++counters_.alu8;
            writeOpnd(inst.dst, static_cast<uint32_t>(
                sextFrom(readOpnd(inst.a) & 0xff, 8)));
            wrote = true;
            break;
          }
          case MOp::TRN8: {
            ++counters_.alu8;
            uint32_t v = readOpnd(inst.a);
            if (inst.speculative && (v > 0xff || shouldForce())) {
                misspeculate();
                break;
            }
            writeOpnd(inst.dst, v & 0xff);
            wrote = true;
            break;
          }
          case MOp::B: {
            ++counters_.branches;
            if (condHolds(inst.cond)) {
                ++counters_.takenBranches;
                next = static_cast<uint32_t>(inst.target);
                cycle += kBranchPenalty;
            }
            break;
          }
          case MOp::BL: {
            ++counters_.calls;
            regs_[kRegLR] = prog_.addrOf(idx + 1);
            next = static_cast<uint32_t>(inst.target);
            cycle += kBranchPenalty;
            break;
          }
          case MOp::BXLR: {
            ++counters_.branches;
            ++counters_.takenBranches;
            uint32_t lr = regs_[kRegLR];
            cycle += kBranchPenalty;
            if (lr == MachProgram::kHaltAddr) {
                if (attr)
                    attr->onInst(idx, cycle - cycle_at_fetch);
                if (prof)
                    prof->onInst(idx, cycle - cycle_at_fetch);
                finish(cycle);
                if (tracks)
                    tracks->finish(counters_, mem_, cycle);
                return regs_[0];
            }
            next = prog_.indexOf(lr);
            break;
          }
          case MOp::OUT: {
            uint64_t v = readOpnd(inst.a);
            output_.push_back(v);
            for (unsigned b = 0; b < 8; ++b) {
                outputHash_ ^= (v >> (8 * b)) & 0xff;
                outputHash_ *= kFnvPrime;
            }
            ++counters_.outputs;
            break;
          }
          case MOp::SETDELTA:
            delta_ = static_cast<uint32_t>(inst.a.imm);
            break;
          case MOp::MODE:
            classicMode_ = inst.a.imm == 0;
            break;
          case MOp::NOP:
            break;
          case MOp::HALT:
            if (attr)
                attr->onInst(idx, cycle - cycle_at_fetch);
            if (prof)
                prof->onInst(idx, cycle - cycle_at_fetch);
            finish(cycle);
            if (tracks)
                tracks->finish(counters_, mem_, cycle);
            return regs_[0];
        }

        if (wrote && (inst.dst.isReg() || inst.dst.isSlice()))
            readyAt_[inst.dst.reg] = dst_ready;

        if (attr)
            attr->onInst(idx, cycle - cycle_at_fetch);
        if (prof)
            prof->onInst(idx, cycle - cycle_at_fetch);
        if (tracks)
            tracks->onRetire(counters_, mem_, cycle);
        idx = next;
    }
}

} // namespace bitspec
