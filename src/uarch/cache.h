/**
 * @file
 * Set-associative cache hierarchy: 8 KiB 4-way L1 I/D caches backed
 * by a 256 KiB L2 and a flat-latency DRAM model (the paper's memory
 * system, §4.1: gem5-style caches + DRAMSim substitute).
 *
 * The model is performance/energy-only: data lives in the simulator's
 * flat memory; caches track tags for hit/miss behaviour, write-back
 * dirty state and access counts.
 */

#ifndef BITSPEC_UARCH_CACHE_H_
#define BITSPEC_UARCH_CACHE_H_

#include <cstdint>
#include <vector>

namespace bitspec
{

/** Access statistics of one cache level. */
struct CacheStats
{
    uint64_t accesses = 0;
    uint64_t misses = 0;
    uint64_t writebacks = 0;
};

/** One set-associative write-back cache with LRU replacement. */
class Cache
{
  public:
    Cache(uint32_t size_bytes, uint32_t assoc, uint32_t line_bytes);

    /**
     * Access @p addr; returns true on hit. Misses fill the line
     * (write-allocate); evicted dirty lines count as writebacks.
     * @p is_write marks the line dirty.
     */
    bool access(uint32_t addr, bool is_write);

    /** True when the line holding @p addr is resident. Pure probe: no
     *  stats, no LRU update (the fast engine's replay guard). */
    bool peek(uint32_t addr) const;

    /**
     * Record @p count back-to-back read hits on the resident line
     * holding @p addr: bumps accesses and the LRU clock exactly as
     * @p count access() hits would, without the per-access way
     * search. Panics when the line is not resident — callers must
     * peek() first.
     */
    void commitHits(uint32_t addr, uint64_t count);

    /** Monotonic count of line fills. An unchanged generation proves
     *  no line moved or was evicted, so any previously recorded
     *  (address, slot) pair is still resident at the same slot. */
    uint64_t fillGen() const { return fillGen_; }

    /** Slot of the resident line holding @p addr, or -1. Pure probe;
     *  the slot stays valid while fillGen() is unchanged. */
    int32_t residentSlotOf(uint32_t addr) const;

    /** commitHits without the way search: record @p count hits
     *  directly on slot @p slot. Callers prove residency via an
     *  unchanged fillGen() since residentSlotOf returned the slot. */
    void commitHitsAt(uint32_t slot, uint64_t count);

    const CacheStats &stats() const { return stats_; }
    void resetStats() { stats_ = CacheStats{}; }
    uint32_t lineBytes() const { return lineBytes_; }

  private:
    struct Line
    {
        bool valid = false;
        bool dirty = false;
        uint32_t tag = 0;
        uint64_t lastUse = 0;
    };

    uint32_t sets_;
    uint32_t assoc_;
    uint32_t lineBytes_;
    std::vector<Line> lines_; ///< sets_ * assoc_, row-major by set.
    uint64_t tick_ = 0;
    uint64_t fillGen_ = 0;
    CacheStats stats_;
    /** Most-recently-touched line memo: back-to-back accesses to the
     *  same line (sequential fetch, streaming data) skip the way
     *  search. lines_[lastIdx_] holds lastLineAddr_ whenever the memo
     *  is set; every fill re-points it, so it can never go stale. */
    uint32_t lastLineAddr_ = 0xffffffffu;
    uint32_t lastIdx_ = 0;
};

/** DRAM access counters (latency/energy applied by the core model). */
struct DramStats
{
    uint64_t reads = 0;
    uint64_t writes = 0;
};

/** The full hierarchy: L1I + L1D -> unified L2 -> DRAM. */
class MemoryHierarchy
{
  public:
    MemoryHierarchy();

    /** Instruction fetch at @p addr; returns the added stall cycles. */
    uint32_t fetch(uint32_t addr);

    /** Data access; returns the added stall cycles beyond the L1 hit
     *  pipeline latency. */
    uint32_t data(uint32_t addr, bool is_write);

    /** True when every I-line covering [@p first_addr, @p last_addr]
     *  is L1I-resident (no state change; fast-engine replay guard). */
    bool fetchRangeResident(uint32_t first_addr,
                            uint32_t last_addr) const;

    /**
     * Commit the fetch sequence of the kInstBytes-strided PCs in
     * [@p first_addr, @p last_addr]: per covered line, one bulk L1I
     * hit record for its instructions, in line order — statistically
     * identical to the per-instruction fetch() calls it replaces.
     * Every covered line must be resident (fetchRangeResident).
     */
    void fetchRangeCommit(uint32_t first_addr, uint32_t last_addr);

    /** fetchRangeCommit, @p repeat times at once: the fast engine's
     *  internally iterated loop replays touch no other I-line between
     *  iterations, so one scaled bulk hit record per line is
     *  indistinguishable from the per-iteration commits. */
    void fetchRangeCommit(uint32_t first_addr, uint32_t last_addr,
                          uint64_t repeat);

    /**
     * Pinned I-fetch footprint of one straight-line run: per covered
     * L1I line, its slot and per-traversal fetch count. Valid while
     * the L1I fill generation is unchanged — with it, the replay
     * residency guard is one compare and the fetch commit a direct
     * per-slot stat bump, no way searches.
     */
    struct FetchPin
    {
        static constexpr uint32_t kMaxLines = 4;
        uint64_t gen = ~0ull; ///< l1iFillGen() when recorded.
        uint32_t cnt = 0;     ///< Pinned lines; 0 = not pinned.
        uint32_t slot[kMaxLines];
        uint16_t insts[kMaxLines];
    };

    uint64_t l1iFillGen() const { return l1i_.fillGen(); }

    /** Record the footprint of [@p first_addr, @p last_addr] into
     *  @p pin. Every line must be resident (fetchRangeResident). Runs
     *  covering more than kMaxLines lines leave cnt == 0: unpinnable,
     *  callers keep using fetchRangeCommit. */
    void fetchRangePin(uint32_t first_addr, uint32_t last_addr,
                       FetchPin &pin) const;

    /** Commit @p repeat traversals of a pinned footprint; the pin
     *  must be valid (pin.gen == l1iFillGen()). */
    void fetchCommitPinned(const FetchPin &pin, uint64_t repeat);

    const CacheStats &l1i() const { return l1i_.stats(); }
    const CacheStats &l1d() const { return l1d_.stats(); }
    const CacheStats &l2() const { return l2_.stats(); }
    const DramStats &dram() const { return dram_; }

    /** @name Latency parameters (cycles). */
    /// @{
    static constexpr uint32_t kL2HitCycles = 8;
    static constexpr uint32_t kDramCycles = 60;
    /// @}

  private:
    uint32_t missPath(uint32_t addr, bool is_write);

    Cache l1i_;
    Cache l1d_;
    Cache l2_;
    DramStats dram_;
};

} // namespace bitspec

#endif // BITSPEC_UARCH_CACHE_H_
