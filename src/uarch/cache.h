/**
 * @file
 * Set-associative cache hierarchy: 8 KiB 4-way L1 I/D caches backed
 * by a 256 KiB L2 and a flat-latency DRAM model (the paper's memory
 * system, §4.1: gem5-style caches + DRAMSim substitute).
 *
 * The model is performance/energy-only: data lives in the simulator's
 * flat memory; caches track tags for hit/miss behaviour, write-back
 * dirty state and access counts.
 */

#ifndef BITSPEC_UARCH_CACHE_H_
#define BITSPEC_UARCH_CACHE_H_

#include <cstdint>
#include <vector>

namespace bitspec
{

/** Access statistics of one cache level. */
struct CacheStats
{
    uint64_t accesses = 0;
    uint64_t misses = 0;
    uint64_t writebacks = 0;
};

/** One set-associative write-back cache with LRU replacement. */
class Cache
{
  public:
    Cache(uint32_t size_bytes, uint32_t assoc, uint32_t line_bytes);

    /**
     * Access @p addr; returns true on hit. Misses fill the line
     * (write-allocate); evicted dirty lines count as writebacks.
     * @p is_write marks the line dirty.
     */
    bool access(uint32_t addr, bool is_write);

    const CacheStats &stats() const { return stats_; }
    void resetStats() { stats_ = CacheStats{}; }
    uint32_t lineBytes() const { return lineBytes_; }

  private:
    struct Line
    {
        bool valid = false;
        bool dirty = false;
        uint32_t tag = 0;
        uint64_t lastUse = 0;
    };

    uint32_t sets_;
    uint32_t assoc_;
    uint32_t lineBytes_;
    std::vector<Line> lines_; ///< sets_ * assoc_, row-major by set.
    uint64_t tick_ = 0;
    CacheStats stats_;
};

/** DRAM access counters (latency/energy applied by the core model). */
struct DramStats
{
    uint64_t reads = 0;
    uint64_t writes = 0;
};

/** The full hierarchy: L1I + L1D -> unified L2 -> DRAM. */
class MemoryHierarchy
{
  public:
    MemoryHierarchy();

    /** Instruction fetch at @p addr; returns the added stall cycles. */
    uint32_t fetch(uint32_t addr);

    /** Data access; returns the added stall cycles beyond the L1 hit
     *  pipeline latency. */
    uint32_t data(uint32_t addr, bool is_write);

    const CacheStats &l1i() const { return l1i_.stats(); }
    const CacheStats &l1d() const { return l1d_.stats(); }
    const CacheStats &l2() const { return l2_.stats(); }
    const DramStats &dram() const { return dram_; }

    /** @name Latency parameters (cycles). */
    /// @{
    static constexpr uint32_t kL2HitCycles = 8;
    static constexpr uint32_t kDramCycles = 60;
    /// @}

  private:
    uint32_t missPath(uint32_t addr, bool is_write);

    Cache l1i_;
    Cache l1d_;
    Cache l2_;
    DramStats dram_;
};

} // namespace bitspec

#endif // BITSPEC_UARCH_CACHE_H_
