/**
 * @file
 * The core model: a 32-bit, single-issue, in-order, 6-stage pipeline
 * with the BitSpec µarchitectural extensions (paper §3.5/§4.1):
 * byte-enable register-slice access, a segmented ALU that reports
 * misspeculation from slice-boundary carries, and the PC += Δ
 * redirect into skeleton blocks.
 *
 * Timing is modelled with an in-order scoreboard: one instruction per
 * cycle, plus operand-readiness stalls (load-use, multiply/divide
 * latency), taken-branch flushes, cache misses and misspeculation
 * redirects. Functional state is exact, so machine runs are checked
 * bit-for-bit against the IR interpreter.
 */

#ifndef BITSPEC_UARCH_CORE_H_
#define BITSPEC_UARCH_CORE_H_

#include <cstdint>
#include <vector>

#include "backend/mir.h"
#include "ir/module.h"
#include "support/misspec.h"
#include "support/rng.h"
#include "uarch/cache.h"
#include "uarch/counters.h"

namespace bitspec
{

class AttributionSink;
class BlockProfilerSink;
class CounterTrackEmitter;

/** Executes linked EMB32 programs. */
class Core
{
  public:
    static constexpr size_t kMemBytes = 1 << 22;
    static constexpr uint64_t kDefaultFuel = 600'000'000;
    static constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
    static constexpr uint64_t kFnvPrime = 0x100000001b3ULL;
    /** One past the largest InstTag value (dense counter array). */
    static constexpr size_t kNumInstTags =
        static_cast<size_t>(InstTag::FrameSetup) + 1;

    /** @param program Linked program. @param m Module providing the
     *  global-data image (copied at reset). */
    Core(const MachProgram &program, const Module &m);

    /** Reload globals, clear state and counters. */
    void reset();

    /** Run from _start with up to four @p args in r0..r3; returns r0
     *  at HALT. */
    uint32_t run(const std::vector<uint32_t> &args = {});

    const ActivityCounters &counters() const { return counters_; }
    const MemoryHierarchy &memory() const { return mem_; }
    const std::vector<uint64_t> &output() const { return output_; }

    /** FNV-1a over the output stream; matches Interpreter's. */
    uint64_t outputChecksum() const;

    void setFuel(uint64_t fuel) { fuel_ = fuel; }

    /** Attach (or detach with nullptr) a misspeculation-attribution
     *  recorder for subsequent runs. The run loop pays one null test
     *  per retired instruction when no sink is attached; @p sink must
     *  outlive the runs it observes. */
    void setAttribution(AttributionSink *sink) { attr_ = sink; }

    /** Attach (or detach with nullptr) a per-block heat profiler for
     *  subsequent runs; same hot-path contract as setAttribution. */
    void setBlockProfiler(BlockProfilerSink *sink) { prof_ = sink; }

    /** Attach (or detach with nullptr) a windowed counter-track
     *  emitter (IPC / misspec rate / cache hit rate samples into the
     *  trace stream); same hot-path contract as setAttribution. */
    void setCounterTracks(CounterTrackEmitter *tracks)
    {
        tracks_ = tracks;
    }

    /** Select how the four speculative check sites (LDRS8/ADD8/SUB8/
     *  TRN8) behave on subsequent runs. ForceFirst redirects at every
     *  check; Random redirects with probability 1/8 (seeded, so runs
     *  are reproducible). Either way a check that Hardware semantics
     *  require to fire still fires — Theorems 3.1/3.2 make the
     *  committed outputs policy-independent, which the differential
     *  fuzzer exercises. */
    void
    setMisspecPolicy(MisspecPolicy p, uint64_t seed = 0x5eed)
    {
        policy_ = p;
        rng_ = Rng(seed);
    }
    MisspecPolicy misspecPolicy() const { return policy_; }

  private:
    /** Policy overlay for one check site: true forces a redirect even
     *  though the value fits. Keep call sites short-circuited after
     *  the architectural condition so Random consumes one RNG draw
     *  per non-firing check — FastCore::slowStep mirrors the same
     *  order, keeping the two streams aligned for counter equality. */
    bool
    shouldForce()
    {
        if (policy_ == MisspecPolicy::ForceFirst)
            return true;
        if (policy_ == MisspecPolicy::Random)
            return rng_.next() % 8 == 0;
        return false;
    }
    struct Flags
    {
        bool n = false, z = false, c = false, v = false;
    };

    bool condHolds(Cond c) const;
    uint32_t readOpnd(const MOpnd &o);
    void writeOpnd(const MOpnd &o, uint32_t value);
    uint32_t loadData(uint32_t addr, unsigned bytes);
    void storeData(uint32_t addr, uint32_t value, unsigned bytes);

    const MachProgram &prog_;
    const Module &module_;
    std::vector<uint8_t> dataMem_;
    uint32_t regs_[16] = {};
    Flags flags_;
    uint32_t delta_ = 0;
    bool classicMode_ = false;

    MemoryHierarchy mem_;
    ActivityCounters counters_;
    std::vector<uint64_t> output_;
    /** FNV-1a over output_, maintained incrementally by OUT. */
    uint64_t outputHash_ = kFnvOffset;
    uint64_t fuel_ = kDefaultFuel;
    AttributionSink *attr_ = nullptr;
    BlockProfilerSink *prof_ = nullptr;
    CounterTrackEmitter *tracks_ = nullptr;
    MisspecPolicy policy_ = MisspecPolicy::Hardware;
    Rng rng_{0x5eed};

    /** Scoreboard: cycle when each register's value is ready. */
    uint64_t readyAt_[16] = {};
};

} // namespace bitspec

#endif // BITSPEC_UARCH_CORE_H_
