#include "uarch/cache.h"

#include "support/error.h"

namespace bitspec
{

Cache::Cache(uint32_t size_bytes, uint32_t assoc, uint32_t line_bytes)
    : assoc_(assoc), lineBytes_(line_bytes)
{
    bsAssert(size_bytes % (assoc * line_bytes) == 0,
             "cache geometry must divide evenly");
    sets_ = size_bytes / (assoc * line_bytes);
    lines_.resize(sets_ * assoc_);
}

bool
Cache::access(uint32_t addr, bool is_write)
{
    ++stats_.accesses;
    ++tick_;
    uint32_t line_addr = addr / lineBytes_;
    uint32_t set = line_addr % sets_;
    uint32_t tag = line_addr / sets_;
    Line *ways = &lines_[set * assoc_];

    for (uint32_t w = 0; w < assoc_; ++w) {
        if (ways[w].valid && ways[w].tag == tag) {
            ways[w].lastUse = tick_;
            ways[w].dirty |= is_write;
            return true;
        }
    }

    ++stats_.misses;
    // LRU victim.
    uint32_t victim = 0;
    for (uint32_t w = 1; w < assoc_; ++w) {
        if (!ways[w].valid) {
            victim = w;
            break;
        }
        if (ways[w].lastUse < ways[victim].lastUse)
            victim = w;
    }
    if (ways[victim].valid && ways[victim].dirty)
        ++stats_.writebacks;
    ways[victim] = Line{true, is_write, tag, tick_};
    return false;
}

MemoryHierarchy::MemoryHierarchy()
    : l1i_(8 * 1024, 4, 32), l1d_(8 * 1024, 4, 32),
      l2_(256 * 1024, 8, 32)
{}

uint32_t
MemoryHierarchy::missPath(uint32_t addr, bool is_write)
{
    if (l2_.access(addr, is_write))
        return kL2HitCycles;
    if (is_write)
        ++dram_.writes;
    else
        ++dram_.reads;
    return kL2HitCycles + kDramCycles;
}

uint32_t
MemoryHierarchy::fetch(uint32_t addr)
{
    if (l1i_.access(addr, false))
        return 0;
    return missPath(addr, false);
}

uint32_t
MemoryHierarchy::data(uint32_t addr, bool is_write)
{
    if (l1d_.access(addr, is_write))
        return 0;
    return missPath(addr, is_write);
}

} // namespace bitspec
