#include "uarch/cache.h"

#include "support/error.h"

namespace bitspec
{

Cache::Cache(uint32_t size_bytes, uint32_t assoc, uint32_t line_bytes)
    : assoc_(assoc), lineBytes_(line_bytes)
{
    bsAssert(size_bytes % (assoc * line_bytes) == 0,
             "cache geometry must divide evenly");
    sets_ = size_bytes / (assoc * line_bytes);
    lines_.resize(sets_ * assoc_);
}

bool
Cache::access(uint32_t addr, bool is_write)
{
    ++stats_.accesses;
    ++tick_;
    uint32_t line_addr = addr / lineBytes_;
    // Same-line fast path: sequential fetch and streaming data hit
    // the line they just touched; skip the way search.
    if (line_addr == lastLineAddr_) {
        Line &l = lines_[lastIdx_];
        l.lastUse = tick_;
        l.dirty |= is_write;
        return true;
    }
    uint32_t set = line_addr % sets_;
    uint32_t tag = line_addr / sets_;
    Line *ways = &lines_[set * assoc_];

    for (uint32_t w = 0; w < assoc_; ++w) {
        if (ways[w].valid && ways[w].tag == tag) {
            ways[w].lastUse = tick_;
            ways[w].dirty |= is_write;
            lastLineAddr_ = line_addr;
            lastIdx_ = set * assoc_ + w;
            return true;
        }
    }

    ++stats_.misses;
    // LRU victim.
    uint32_t victim = 0;
    for (uint32_t w = 1; w < assoc_; ++w) {
        if (!ways[w].valid) {
            victim = w;
            break;
        }
        if (ways[w].lastUse < ways[victim].lastUse)
            victim = w;
    }
    if (ways[victim].valid && ways[victim].dirty)
        ++stats_.writebacks;
    ways[victim] = Line{true, is_write, tag, tick_};
    ++fillGen_; // Invalidates every recorded (address, slot) pin.
    // The fill may have evicted the memoized line; re-point the memo
    // at the line just installed so it can never reference a stale
    // (line_addr, index) pair.
    lastLineAddr_ = line_addr;
    lastIdx_ = set * assoc_ + victim;
    return false;
}

bool
Cache::peek(uint32_t addr) const
{
    uint32_t line_addr = addr / lineBytes_;
    // The memoized line is resident by invariant; no state to update.
    if (line_addr == lastLineAddr_)
        return true;
    uint32_t set = line_addr % sets_;
    uint32_t tag = line_addr / sets_;
    const Line *ways = &lines_[set * assoc_];
    for (uint32_t w = 0; w < assoc_; ++w)
        if (ways[w].valid && ways[w].tag == tag)
            return true;
    return false;
}

int32_t
Cache::residentSlotOf(uint32_t addr) const
{
    uint32_t line_addr = addr / lineBytes_;
    uint32_t set = line_addr % sets_;
    uint32_t tag = line_addr / sets_;
    const Line *ways = &lines_[set * assoc_];
    for (uint32_t w = 0; w < assoc_; ++w)
        if (ways[w].valid && ways[w].tag == tag)
            return static_cast<int32_t>(set * assoc_ + w);
    return -1;
}

void
Cache::commitHitsAt(uint32_t slot, uint64_t count)
{
    stats_.accesses += count;
    tick_ += count;
    lines_[slot].lastUse = tick_;
}

void
Cache::commitHits(uint32_t addr, uint64_t count)
{
    uint32_t line_addr = addr / lineBytes_;
    if (line_addr == lastLineAddr_) {
        // Replayed blocks commit the same line(s) back to back; skip
        // the way search like access() does.
        stats_.accesses += count;
        tick_ += count;
        lines_[lastIdx_].lastUse = tick_;
        return;
    }
    uint32_t set = line_addr % sets_;
    uint32_t tag = line_addr / sets_;
    Line *ways = &lines_[set * assoc_];
    for (uint32_t w = 0; w < assoc_; ++w) {
        if (ways[w].valid && ways[w].tag == tag) {
            stats_.accesses += count;
            tick_ += count;
            // count back-to-back hits leave lastUse at the final
            // tick, exactly as the per-access loop would.
            ways[w].lastUse = tick_;
            lastLineAddr_ = line_addr;
            lastIdx_ = set * assoc_ + w;
            return;
        }
    }
    panic("commitHits: line not resident");
}

MemoryHierarchy::MemoryHierarchy()
    : l1i_(8 * 1024, 4, 32), l1d_(8 * 1024, 4, 32),
      l2_(256 * 1024, 8, 32)
{}

uint32_t
MemoryHierarchy::missPath(uint32_t addr, bool is_write)
{
    if (l2_.access(addr, is_write))
        return kL2HitCycles;
    if (is_write)
        ++dram_.writes;
    else
        ++dram_.reads;
    return kL2HitCycles + kDramCycles;
}

uint32_t
MemoryHierarchy::fetch(uint32_t addr)
{
    if (l1i_.access(addr, false))
        return 0;
    return missPath(addr, false);
}

uint32_t
MemoryHierarchy::data(uint32_t addr, bool is_write)
{
    if (l1d_.access(addr, is_write))
        return 0;
    return missPath(addr, is_write);
}

bool
MemoryHierarchy::fetchRangeResident(uint32_t first_addr,
                                    uint32_t last_addr) const
{
    const uint32_t line = l1i_.lineBytes();
    for (uint32_t la = first_addr - first_addr % line;
         la <= last_addr; la += line)
        if (!l1i_.peek(la))
            return false;
    return true;
}

void
MemoryHierarchy::fetchRangeCommit(uint32_t first_addr,
                                  uint32_t last_addr)
{
    fetchRangeCommit(first_addr, last_addr, 1);
}

void
MemoryHierarchy::fetchRangeCommit(uint32_t first_addr,
                                  uint32_t last_addr, uint64_t repeat)
{
    const uint32_t line = l1i_.lineBytes();
    for (uint32_t la = first_addr - first_addr % line;
         la <= last_addr; la += line) {
        uint32_t lo = la < first_addr ? first_addr : la;
        uint32_t hi_line = la + line - 1;
        uint32_t hi = hi_line > last_addr ? last_addr : hi_line;
        l1i_.commitHits(la, ((hi - lo) / 4 + 1) * repeat);
    }
}

void
MemoryHierarchy::fetchRangePin(uint32_t first_addr,
                               uint32_t last_addr,
                               FetchPin &pin) const
{
    const uint32_t line = l1i_.lineBytes();
    pin.gen = l1i_.fillGen();
    pin.cnt = 0;
    uint32_t n = 0;
    for (uint32_t la = first_addr - first_addr % line;
         la <= last_addr; la += line) {
        if (n == FetchPin::kMaxLines)
            return; // cnt stays 0: footprint too wide to pin.
        int32_t slot = l1i_.residentSlotOf(la);
        bsAssert(slot >= 0, "fetchRangePin: line not resident");
        uint32_t lo = la < first_addr ? first_addr : la;
        uint32_t hi_line = la + line - 1;
        uint32_t hi = hi_line > last_addr ? last_addr : hi_line;
        pin.slot[n] = static_cast<uint32_t>(slot);
        pin.insts[n] = static_cast<uint16_t>((hi - lo) / 4 + 1);
        ++n;
    }
    pin.cnt = n;
}

void
MemoryHierarchy::fetchCommitPinned(const FetchPin &pin,
                                   uint64_t repeat)
{
    // Per-slot bulk hits in line order: same final tick, stats and
    // relative LRU order as the per-traversal commits (nothing else
    // touches L1I in between — the fetchRangeCommit argument).
    for (uint32_t j = 0; j < pin.cnt; ++j)
        l1i_.commitHitsAt(pin.slot[j], pin.insts[j] * repeat);
}

} // namespace bitspec
