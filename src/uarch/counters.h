/**
 * @file
 * Activity counters driving the energy model (paper §4, RQ0/RQ1):
 * per-component event counts gathered by the core model, including
 * the 8-bit vs 32-bit register-file split of Fig. 11 and the dynamic
 * spill/copy accounting of Fig. 10.
 */

#ifndef BITSPEC_UARCH_COUNTERS_H_
#define BITSPEC_UARCH_COUNTERS_H_

#include <cstdint>

namespace bitspec
{

struct ActivityCounters
{
    uint64_t instructions = 0;
    uint64_t cycles = 0;

    // ALU events by operand width.
    uint64_t alu32 = 0;
    uint64_t alu8 = 0;
    uint64_t mulDiv = 0;

    // Register-file events (Fig. 11). An 8-bit slice access uses 1/4
    // the energy of a 32-bit access (paper RQ1).
    uint64_t rfRead32 = 0;
    uint64_t rfWrite32 = 0;
    uint64_t rfRead8 = 0;
    uint64_t rfWrite8 = 0;

    // Memory operations.
    uint64_t loads = 0;
    uint64_t stores = 0;

    // Control flow.
    uint64_t branches = 0;
    uint64_t takenBranches = 0;
    uint64_t calls = 0;

    // Speculation.
    uint64_t misspeculations = 0;

    // Provenance-tagged dynamic instructions (Fig. 10).
    uint64_t dynSpillLoads = 0;
    uint64_t dynSpillStores = 0;
    uint64_t dynCopies = 0;

    uint64_t outputs = 0;
};

} // namespace bitspec

#endif // BITSPEC_UARCH_COUNTERS_H_
