/**
 * @file
 * The fast core engine: executes a PredecodedProgram with the exact
 * observable behaviour of the legacy Core (ActivityCounters, cache
 * stats, output checksum, attribution and per-block profiler feeds —
 * bit-identical, ctest-enforced), an order of magnitude faster on the
 * no-miss hot path.
 *
 * Two execution paths:
 *
 *  - Slow path: one pre-decoded instruction at a time, cycle-accurate,
 *    a direct port of the legacy Core loop over PInst handlers.
 *
 *  - Block replay: straight-line runs (block bodies up to their
 *    terminator) get a RunMemo — a statically computed schedule of the
 *    run under the no-miss/no-misspec assumptions: total cycles,
 *    summed counter deltas, per-instruction cycle costs and
 *    scoreboard effects. When the entry guards hold (operands the
 *    schedule assumed ready are ready, fuel suffices, every I-line is
 *    resident), the run replays in one sweep: handlers execute only
 *    the functional work, and timing/accounting commit from the memo.
 *    D-cache accesses are still performed for real, so hierarchy
 *    state stays exact; the first dynamic divergence (D-miss, store
 *    stall, misspeculation) commits the prefix from the memo,
 *    finishes the diverging instruction cycle-accurately, and drops
 *    back to the slow path.
 *
 * Memos depend only on code geometry, so they live per FastCore and
 * survive across runs; invalidateMemos() drops them (the analogue of
 * Interpreter::invalidate() for re-squeezed programs).
 */

#ifndef BITSPEC_UARCH_FAST_CORE_H_
#define BITSPEC_UARCH_FAST_CORE_H_

#include <cstdint>
#include <vector>

#include "ir/module.h"
#include "uarch/cache.h"
#include "uarch/core.h"
#include "uarch/counters.h"
#include "uarch/predecode.h"

namespace bitspec
{

class AttributionSink;
class BlockProfilerSink;
class CounterTrackEmitter;

/** Executes pre-decoded EMB32 programs; same observable contract as
 *  Core (the differential oracle — see tests/uarch/
 *  core_engine_diff_test.cc). */
class FastCore
{
  public:
    /** Longest straight-line run one memo covers; longer runs fall
     *  back to the slow path (never seen in practice). */
    static constexpr uint32_t kMaxRunLen = 4096;

    /** Dump slot past the architectural registers: replay scoreboard
     *  stores index it for instructions with no scoreboard write, so
     *  the store is unconditional. Never read. */
    static constexpr uint32_t kScratchReg = 16;

    /** @p pre (and the MachProgram it wraps) and @p m must outlive
     *  the core. */
    FastCore(const PredecodedProgram &pre, const Module &m);

    /** Reload globals, clear state and counters. */
    void reset();

    /** Run from _start with up to four @p args in r0..r3; returns r0
     *  at HALT. */
    uint32_t run(const std::vector<uint32_t> &args = {});

    const ActivityCounters &counters() const { return counters_; }
    const MemoryHierarchy &memory() const { return mem_; }
    const std::vector<uint64_t> &output() const { return output_; }

    /** FNV-1a over the output stream; matches Core's. */
    uint64_t outputChecksum() const { return outputHash_; }

    void setFuel(uint64_t fuel) { fuel_ = fuel; }

    /** Same observer contract as Core::setAttribution /
     *  setBlockProfiler / setCounterTracks: replayed blocks feed the
     *  sinks their exact per-instruction counts from the memo. */
    void setAttribution(AttributionSink *sink) { attr_ = sink; }
    void setBlockProfiler(BlockProfilerSink *sink) { prof_ = sink; }
    void setCounterTracks(CounterTrackEmitter *tracks)
    {
        tracks_ = tracks;
    }

    /** Same semantics as Core::setMisspecPolicy. A non-Hardware
     *  policy disables memo replay (memos bake in check-didn't-fire
     *  straight-line execution); the slow path evaluates shouldForce
     *  in the same operand order as Core, so legacy-vs-fast counter
     *  equality holds under every policy. */
    void
    setMisspecPolicy(MisspecPolicy p, uint64_t seed = 0x5eed)
    {
        policy_ = p;
        rng_ = Rng(seed);
    }
    MisspecPolicy misspecPolicy() const { return policy_; }

    /** Drop every block memo (they are rebuilt lazily). Correctness
     *  never requires this — memos depend only on the immutable
     *  pre-decoded code — but a System that re-squeezes and relinks
     *  must not carry memos across program versions. */
    void invalidateMemos();

    /** Memos built so far (observability/tests). */
    size_t memoCount() const { return memos_.size(); }
    /** Replayed runs / slow-path instructions (observability/tests). */
    uint64_t replayedRuns() const { return replayedRuns_; }
    uint64_t slowInsts() const { return slowInsts_; }

  private:
    struct Flags
    {
        bool n = false, z = false, c = false, v = false;
    };

    /** Statically scheduled straight-line run starting at one flat
     *  index: the block-site body up to (excluding) its terminator. */
    struct RunMemo
    {
        bool eligible = false;
        uint32_t start = 0;
        uint32_t len = 0;          ///< Body instructions.
        uint64_t bodyCycles = 0;   ///< Cycle offset at terminator fetch.
        uint32_t maxReadyOff = 0;  ///< Max scoreboard offset written.
        uint16_t entryReadyMask = 0; ///< Regs assumed ready at entry.
        uint64_t fuelCost = 0;     ///< Retirements incl. terminator.
        uint32_t fetchFirst = 0;   ///< PC of start.
        uint32_t fetchLast = 0;    ///< PC of the terminator.
        /** Body counter sums plus the terminator's static contrib
         *  (cycles unused; a conditional terminator's takenBranches
         *  is counted live). */
        ActivityCounters delta;
        /** Clean replays not yet folded into counters_: delta is
         *  committed as delta * pendingReplays at finish() instead of
         *  per replay (the hot path's biggest accounting cost). */
        uint64_t pendingReplays = 0;
        /** Branch terminators complete inline in replay() (no
         *  execTerminator dispatch); a branch back to start — the hot
         *  inner-loop shape — additionally iterates inside replay(),
         *  skipping the per-iteration run-loop, residency guard and
         *  fetch commit (L1I is untouched between iterations, so the
         *  bulk commit at exit is exact). */
        bool termIsBranch = false;
        bool selfBackedge = false;
        Cond backCond = Cond::AL;
        uint32_t termTarget = 0;
        /** Pinned L1I footprint (slots + per-line fetch counts).
         *  While the L1I fill generation matches, the residency guard
         *  is one compare and the fetch commit a direct stat bump. */
        MemoryHierarchy::FetchPin pin;
        /** Compact replay micro-op, one per body instruction:
         *  full-width register/flag operations are pre-resolved to
         *  direct register-file ops; anything that can diverge, touch
         *  memory or write a sub-register slice stays Generic and
         *  executes the original PInst handler. */
        struct ROp
        {
            enum K : uint8_t
            {
                kGeneric = 0,
                kAddRR, kAddRI, kSubRR, kSubRI, kSubIR,
                kAndRR, kAndRI, kOrrRR, kOrrRI, kEorRR, kEorRI,
                kLslRR, kLslRI, kLsrRR, kLsrRI, kAsrRR, kAsrRI,
                kMulRR, kMulRI, kMovR, kMovI, kMvnR, kMovtI,
                kCmpRR, kCmpRI, kCmpIR,
                kSetcc, kSxth, kUxth, kUxt8, kSxt8,
                kLoadWRR, kLoadWRI,
            };
            uint8_t op = kGeneric;
            uint8_t dst = 0, a = 0, b = 0;
            uint32_t imm = 0;       ///< Immediate (or Cond for Setcc).
            uint16_t readyOff = 0;  ///< PerInst::readyOff, compact.
            uint8_t writeReg = kScratchReg; ///< PerInst::writeReg.
        };

        struct PerInst
        {
            uint32_t cycBefore = 0; ///< Cycle offset at fetch.
            uint32_t issueOff = 0;  ///< Cycle offset after issue stall.
            uint32_t readyOff = 0;  ///< Scoreboard offset on write.
            uint8_t cost = 0;       ///< Cycles charged to the sinks.
            /** Scoreboard slot written on retire: a register index,
             *  or the scratch slot (16) for no-write/conditional
             *  instructions — the replay store is branchless. */
            uint8_t writeReg = kScratchReg;
        };
        std::vector<PerInst> per;
        std::vector<ROp> ops; ///< One per body instruction.
    };

    bool condHolds(Cond c) const;
    uint32_t loadData(uint32_t addr, unsigned bytes);
    void storeData(uint32_t addr, uint32_t value, unsigned bytes);
    void setFlagsSub(uint64_t a, uint64_t b, unsigned bits);
    void emitOut(uint64_t v);

    RunMemo &memoAt(uint32_t idx);
    RunMemo buildMemo(uint32_t start) const;
    /** Pre-resolve one body instruction into its replay micro-op. */
    static RunMemo::ROp translateOp(const PInst &p,
                                    const RunMemo::PerInst &pi);
    bool entryReady(const RunMemo &m) const;

    /** Replay the memoized run at cycle_; returns the next flat
     *  index (or sets halted_). */
    uint32_t replay(RunMemo &m);
    /** Bulk-commit @p iters completed in-replay loop iterations
     *  (fetches, pendingReplays, replayedRuns_). */
    void flushIters(RunMemo &m, uint64_t iters);
    /** Replay residency guard: valid pin (one compare) or probe and
     *  re-pin. False when some I-line is not resident. */
    bool fetchGuard(RunMemo &m);
    /** Commit @p repeat fetch traversals of the memo's range, via the
     *  pin when valid. */
    void commitFetches(RunMemo &m, uint64_t repeat);
    /** Commit the first @p k body instructions of a diverged replay
     *  from the memo (fetches, counters, sinks, fuel). */
    void commitPrefix(const RunMemo &m, uint32_t k);
    /** Execute the terminator after a fully replayed body. */
    uint32_t execTerminator(const RunMemo &m);
    /** One cycle-accurate slow-path instruction; returns next idx. */
    uint32_t slowStep(uint32_t idx);

    void applyContrib(const CounterContrib &c);
    void applyDstWrite(uint8_t dst_write);
    void finish(uint64_t final_cycle);

    const PredecodedProgram &pre_;
    const MachProgram &prog_;
    const Module &module_;
    std::vector<uint8_t> dataMem_;
    uint32_t regs_[16] = {};
    Flags flags_;
    uint32_t delta_ = 0;
    bool classicMode_ = false;

    MemoryHierarchy mem_;
    ActivityCounters counters_;
    std::vector<uint64_t> output_;
    uint64_t outputHash_ = Core::kFnvOffset;
    uint64_t fuel_ = Core::kDefaultFuel;
    AttributionSink *attr_ = nullptr;
    BlockProfilerSink *prof_ = nullptr;
    CounterTrackEmitter *tracks_ = nullptr;
    MisspecPolicy policy_ = MisspecPolicy::Hardware;
    Rng rng_{0x5eed};

    /** Policy overlay for one check site; mirrors Core::shouldForce
     *  (same draw order keeps the Random streams aligned). */
    bool
    shouldForce()
    {
        if (policy_ == MisspecPolicy::ForceFirst)
            return true;
        if (policy_ == MisspecPolicy::Random)
            return rng_.next() % 8 == 0;
        return false;
    }

    /** Scoreboard: cycle when each register's value is ready; slot
     *  kScratchReg is the write-only dump for branchless replay
     *  stores. */
    uint64_t readyAt_[17] = {};
    /** Upper bound on max(readyAt_): when <= cycle_, the whole
     *  scoreboard is quiescent and replay entry needs no per-register
     *  check. */
    uint64_t maxReady_ = 0;

    /** Per-run state (members so the replay/slow helpers share it). */
    uint64_t cycle_ = 0;
    uint64_t executed_ = 0;
    bool halted_ = false;
    uint32_t retVal_ = 0;

    /** Lazy memo table: memoIdx_[i] indexes memos_, -1 unbuilt. */
    std::vector<int32_t> memoIdx_;
    std::vector<RunMemo> memos_;

    uint64_t replayedRuns_ = 0;
    uint64_t slowInsts_ = 0;
};

} // namespace bitspec

#endif // BITSPEC_UARCH_FAST_CORE_H_
