#include "uarch/fast_core.h"

#include <algorithm>
#include <cstring>

#include "obs/attribution.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "support/bits.h"
#include "support/error.h"
#include "support/str.h"

namespace bitspec
{

namespace
{

// Identical timing parameters to the legacy Core (core.cc).
constexpr uint32_t kBranchPenalty = 2;  ///< Taken-branch flush.
constexpr uint32_t kMisspecPenalty = 4; ///< Redirect + refill.

/** Branch-free pre-resolved operand read (no rf accounting — counter
 *  events are pre-computed in CounterContrib). */
inline uint32_t
readSrc(const POpnd &o, const uint32_t *regs)
{
    return o.isImm ? o.imm : (regs[o.reg] >> o.shift) & o.mask;
}

/** Branch-free pre-resolved operand write (merge for slices; the
 *  full-register mask makes the merge an overwrite). */
inline void
writeDst(const POpnd &o, uint32_t *regs, uint32_t value)
{
    regs[o.reg] = (regs[o.reg] & ~(o.mask << o.shift)) |
                  ((value & o.mask) << o.shift);
}

void
addContrib(ActivityCounters &c, const CounterContrib &k)
{
    c.alu32 += k.alu32;
    c.alu8 += k.alu8;
    c.mulDiv += k.mulDiv;
    c.rfRead32 += k.rfRead32;
    c.rfRead8 += k.rfRead8;
    c.loads += k.loads;
    c.stores += k.stores;
    c.branches += k.branches;
    c.takenBranches += k.takenBranches;
    c.calls += k.calls;
    c.outputs += k.outputs;
    c.dynSpillLoads += k.dynSpillLoads;
    c.dynSpillStores += k.dynSpillStores;
    c.dynCopies += k.dynCopies;
}

/** Add every field of a memo delta except cycles (assigned at halt,
 *  like the legacy finish()), n replays at once: clean replays only
 *  bump RunMemo::pendingReplays and the multiply happens here, at
 *  finish(). */
void
addScaledDelta(ActivityCounters &c, const ActivityCounters &d,
               uint64_t n)
{
    c.instructions += d.instructions * n;
    c.alu32 += d.alu32 * n;
    c.alu8 += d.alu8 * n;
    c.mulDiv += d.mulDiv * n;
    c.rfRead32 += d.rfRead32 * n;
    c.rfWrite32 += d.rfWrite32 * n;
    c.rfRead8 += d.rfRead8 * n;
    c.rfWrite8 += d.rfWrite8 * n;
    c.loads += d.loads * n;
    c.stores += d.stores * n;
    c.branches += d.branches * n;
    c.takenBranches += d.takenBranches * n;
    c.calls += d.calls * n;
    c.misspeculations += d.misspeculations * n;
    c.dynSpillLoads += d.dynSpillLoads * n;
    c.dynSpillStores += d.dynSpillStores * n;
    c.dynCopies += d.dynCopies * n;
    c.outputs += d.outputs * n;
}

inline bool
isTerminator(PKind k)
{
    return k == PKind::Branch || k == PKind::Call ||
           k == PKind::Ret || k == PKind::Halt;
}

} // namespace

FastCore::FastCore(const PredecodedProgram &pre, const Module &m)
    : pre_(pre), prog_(pre.prog()), module_(m)
{
    dataMem_.resize(Core::kMemBytes, 0);
    memoIdx_.assign(pre_.size(), -1);
    reset();
}

void
FastCore::reset()
{
    std::fill(dataMem_.begin(), dataMem_.end(), 0);
    for (const auto &g : module_.globals()) {
        bsAssert(g->address() + g->sizeBytes() <= dataMem_.size(),
                 "global outside data memory");
        std::copy(g->data().begin(), g->data().end(),
                  dataMem_.begin() + g->address());
    }
    std::fill(std::begin(regs_), std::end(regs_), 0);
    std::fill(std::begin(readyAt_), std::end(readyAt_), 0);
    maxReady_ = 0;
    flags_ = Flags{};
    delta_ = 0;
    classicMode_ = false;
    counters_ = ActivityCounters{};
    output_.clear();
    outputHash_ = Core::kFnvOffset;
    mem_ = MemoryHierarchy{};
    // Memos survive: they depend only on the immutable pre-decoded
    // code, not on run state. Pending replay counts belong to the run
    // being discarded (nonzero only after a fatal), so drop them.
    for (RunMemo &m : memos_) {
        m.pendingReplays = 0;
        // The hierarchy was rebuilt: line slots and the fill
        // generation restart, so recorded pins no longer prove
        // anything.
        m.pin = MemoryHierarchy::FetchPin{};
    }
}

void
FastCore::invalidateMemos()
{
    memoIdx_.assign(pre_.size(), -1);
    memos_.clear();
}

bool
FastCore::condHolds(Cond c) const
{
    switch (c) {
      case Cond::AL: return true;
      case Cond::EQ: return flags_.z;
      case Cond::NE: return !flags_.z;
      case Cond::LO: return !flags_.c;
      case Cond::LS: return !flags_.c || flags_.z;
      case Cond::HI: return flags_.c && !flags_.z;
      case Cond::HS: return flags_.c;
      case Cond::LT: return flags_.n != flags_.v;
      case Cond::LE: return flags_.z || flags_.n != flags_.v;
      case Cond::GT: return !flags_.z && flags_.n == flags_.v;
      case Cond::GE: return flags_.n == flags_.v;
    }
    panic("condHolds: bad cond");
}

uint32_t
FastCore::loadData(uint32_t addr, unsigned bytes)
{
    if (static_cast<uint64_t>(addr) + bytes > dataMem_.size())
        fatal(strFormat("machine load out of bounds at 0x%x", addr));
    uint32_t v = 0;
    for (unsigned b = 0; b < bytes; ++b)
        v |= static_cast<uint32_t>(dataMem_[addr + b]) << (8 * b);
    return v;
}

void
FastCore::storeData(uint32_t addr, uint32_t value, unsigned bytes)
{
    if (static_cast<uint64_t>(addr) + bytes > dataMem_.size())
        fatal(strFormat("machine store out of bounds at 0x%x", addr));
    for (unsigned b = 0; b < bytes; ++b)
        dataMem_[addr + b] = static_cast<uint8_t>(value >> (8 * b));
}

void
FastCore::setFlagsSub(uint64_t a, uint64_t b, unsigned bits)
{
    uint64_t mask = lowMask(bits);
    uint64_t r = (a - b) & mask;
    flags_.z = r == 0;
    flags_.n = (r >> (bits - 1)) & 1;
    flags_.c = a >= b;
    bool sa = (a >> (bits - 1)) & 1;
    bool sb = (b >> (bits - 1)) & 1;
    bool sr = (r >> (bits - 1)) & 1;
    flags_.v = (sa != sb) && (sr != sa);
}

void
FastCore::emitOut(uint64_t v)
{
    output_.push_back(v);
    for (unsigned b = 0; b < 8; ++b) {
        outputHash_ ^= (v >> (8 * b)) & 0xff;
        outputHash_ *= Core::kFnvPrime;
    }
}

void
FastCore::applyContrib(const CounterContrib &c)
{
    addContrib(counters_, c);
}

void
FastCore::applyDstWrite(uint8_t dst_write)
{
    if (dst_write == 1)
        ++counters_.rfWrite32;
    else if (dst_write == 2)
        ++counters_.rfWrite8;
}

void
FastCore::finish(uint64_t final_cycle)
{
    // Fold the deferred clean-replay deltas: each memo's counter sums
    // enter once, multiplied by how often it replayed this run.
    for (RunMemo &m : memos_)
        if (m.pendingReplays) {
            addScaledDelta(counters_, m.delta, m.pendingReplays);
            m.pendingReplays = 0;
        }
    // Provenance-tag counts are folded live (CounterContrib), so only
    // the cycle assignment of the legacy finish() remains.
    counters_.cycles = final_cycle;
}

FastCore::RunMemo
FastCore::buildMemo(uint32_t start) const
{
    RunMemo m;
    m.start = start;
    const std::vector<PInst> &insts = pre_.insts();
    const uint32_t size = static_cast<uint32_t>(insts.size());

    uint64_t rel = 0;           // Cycle offset from run entry.
    uint64_t relReady[16] = {}; // Scoreboard offsets.
    uint16_t writtenMask = 0;
    uint32_t maxReadyOff = 0;

    uint32_t i = start;
    for (;; ++i) {
        if (i >= size)
            return m; // Ran off the code: slow path raises the fatal.
        const PInst &p = insts[i];
        if (isTerminator(p.kind))
            break;
        if (p.kind == PKind::Bad || i - start >= kMaxRunLen)
            return m;

        RunMemo::PerInst pi;
        pi.cycBefore = static_cast<uint32_t>(rel);
        rel += 1; // Fetch, assumed L1I hit (entry guard).

        // In-order issue stall under the schedule's entry assumption:
        // registers not yet written in-run are ready at entry.
        m.entryReadyMask |=
            static_cast<uint16_t>(p.readyMask & ~writtenMask);
        uint64_t ready = 0;
        for (uint32_t bits = p.readyMask; bits; bits &= bits - 1) {
            uint64_t r =
                relReady[__builtin_ctz(bits)];
            ready = std::max(ready, r);
        }
        if (ready > rel)
            rel = ready;
        pi.issueOff = static_cast<uint32_t>(rel);

        if (p.dstWrite) {
            pi.writeReg = static_cast<uint8_t>(p.dst.reg);
            pi.readyOff = pi.issueOff + p.latency;
            relReady[p.dst.reg] = pi.readyOff;
            writtenMask |= static_cast<uint16_t>(1u << p.dst.reg);
            maxReadyOff = std::max(maxReadyOff, pi.readyOff);
        } else if (p.kind == PKind::MovCond) {
            // The write commits only when the condition holds, so dst
            // stays out of writtenMask (a false condition leaves the
            // entry-time value live) — but issue+1 is schedule-exact
            // either way: dst readiness was consulted at issue, so
            // both candidate values are <= any later consult.
            relReady[p.dst.reg] = rel + 1;
            maxReadyOff = std::max(maxReadyOff,
                                   static_cast<uint32_t>(rel + 1));
        }

        if (pi.readyOff > 0xffff)
            return m; // ROp::readyOff overflow: slow path (unseen).

        addContrib(m.delta, p.contrib);
        if (p.dstWrite == 1)
            ++m.delta.rfWrite32;
        else if (p.dstWrite == 2)
            ++m.delta.rfWrite8;
        ++m.delta.instructions;
        m.per.push_back(pi);
        m.ops.push_back(translateOp(p, pi));
    }

    // The terminator always retires after a clean body replay, so its
    // static contribution (branches/calls/instruction) rides in the
    // deferred delta too; only a conditional branch's takenBranches is
    // dynamic and counted live in execTerminator.
    addContrib(m.delta, insts[i].contrib);
    ++m.delta.instructions;

    m.termIsBranch = insts[i].kind == PKind::Branch;
    m.selfBackedge = m.termIsBranch && insts[i].target == start;
    m.backCond = insts[i].cond;
    m.termTarget = insts[i].target;

    m.len = i - start;
    m.bodyCycles = rel;
    m.maxReadyOff = maxReadyOff;
    m.fuelCost = m.len + 1;
    m.fetchFirst = prog_.addrOf(start);
    m.fetchLast = prog_.addrOf(i);
    for (uint32_t j = 0; j < m.len; ++j) {
        uint64_t next_fetch =
            j + 1 < m.len ? m.per[j + 1].cycBefore : m.bodyCycles;
        m.per[j].cost =
            static_cast<uint8_t>(next_fetch - m.per[j].cycBefore);
    }
    m.eligible = true;
    return m;
}

FastCore::RunMemo::ROp
FastCore::translateOp(const PInst &p, const RunMemo::PerInst &pi)
{
    using ROp = RunMemo::ROp;
    ROp r;
    r.writeReg = pi.writeReg;
    r.readyOff = static_cast<uint16_t>(pi.readyOff);
    r.dst = p.dst.reg;
    r.a = p.a.reg;
    r.b = p.b.reg;

    auto fullReg = [](const POpnd &o) {
        return !o.isImm && o.shift == 0 && o.mask == 0xffffffffu;
    };
    // Specialization requires a full-register (or absent) destination
    // and full-register/immediate sources: the micro-op then reads
    // and writes the register file directly, no slice merges.
    const bool dstFull = p.dstWrite == 1 && p.dst.shift == 0 &&
                         p.dst.mask == 0xffffffffu;
    const bool aR = fullReg(p.a), bR = fullReg(p.b);
    const bool aI = p.a.isImm, bI = p.b.isImm;

    switch (p.kind) {
      case PKind::AluAdd:
      case PKind::AluAnd:
      case PKind::AluOrr:
      case PKind::AluEor:
      case PKind::Mul: {
        if (!dstFull)
            break;
        ROp::K rr, ri;
        switch (p.kind) {
          case PKind::AluAdd: rr = ROp::kAddRR; ri = ROp::kAddRI; break;
          case PKind::AluAnd: rr = ROp::kAndRR; ri = ROp::kAndRI; break;
          case PKind::AluOrr: rr = ROp::kOrrRR; ri = ROp::kOrrRI; break;
          case PKind::AluEor: rr = ROp::kEorRR; ri = ROp::kEorRI; break;
          default:            rr = ROp::kMulRR; ri = ROp::kMulRI; break;
        }
        if (aR && bR) {
            r.op = rr;
        } else if (aR && bI) {
            r.op = ri;
            r.imm = p.b.imm;
        } else if (aI && bR) { // Commutative: fold as reg-op-imm.
            r.op = ri;
            r.a = p.b.reg;
            r.imm = p.a.imm;
        }
        break;
      }
      case PKind::AluSub:
        if (!dstFull)
            break;
        if (aR && bR) {
            r.op = ROp::kSubRR;
        } else if (aR && bI) {
            r.op = ROp::kSubRI;
            r.imm = p.b.imm;
        } else if (aI && bR) {
            r.op = ROp::kSubIR;
            r.a = p.b.reg;
            r.imm = p.a.imm;
        }
        break;
      case PKind::AluLsl:
      case PKind::AluLsr:
      case PKind::AluAsr: {
        if (!dstFull)
            break;
        ROp::K rr = p.kind == PKind::AluLsl   ? ROp::kLslRR
                    : p.kind == PKind::AluLsr ? ROp::kLsrRR
                                              : ROp::kAsrRR;
        ROp::K ri = p.kind == PKind::AluLsl   ? ROp::kLslRI
                    : p.kind == PKind::AluLsr ? ROp::kLsrRI
                                              : ROp::kAsrRI;
        if (aR && bR) {
            r.op = rr;
        } else if (aR && bI) {
            r.op = ri;
            r.imm = p.b.imm;
        }
        break;
      }
      case PKind::Mov:
        if (!dstFull)
            break;
        if (aR) {
            r.op = ROp::kMovR;
        } else if (aI) {
            r.op = ROp::kMovI;
            r.imm = p.a.imm;
        }
        break;
      case PKind::Mvn:
        if (dstFull && aR)
            r.op = ROp::kMvnR;
        break;
      case PKind::Movw:
        if (dstFull) {
            r.op = ROp::kMovI;
            r.imm = p.a.imm;
        }
        break;
      case PKind::Movt:
        if (dstFull) {
            r.op = ROp::kMovtI;
            r.imm = p.a.imm;
        }
        break;
      case PKind::Cmp:
        if (aR && bR) {
            r.op = ROp::kCmpRR;
        } else if (aR && bI) {
            r.op = ROp::kCmpRI;
            r.imm = p.b.imm;
        } else if (aI && bR) {
            r.op = ROp::kCmpIR;
            r.imm = p.a.imm;
        }
        break;
      case PKind::Setcc:
        if (dstFull) {
            r.op = ROp::kSetcc;
            r.imm = static_cast<uint32_t>(p.cond);
        }
        break;
      case PKind::Sxth:
        if (dstFull && aR)
            r.op = ROp::kSxth;
        break;
      case PKind::Uxth:
        if (dstFull && aR)
            r.op = ROp::kUxth;
        break;
      case PKind::Uxt8:
        if (dstFull && aR)
            r.op = ROp::kUxt8;
        break;
      case PKind::Sxt8:
        if (dstFull && aR)
            r.op = ROp::kSxt8;
        break;
      case PKind::Load:
        // Word loads with full-register addressing: the dominant
        // generic op left on hot paths. Sub-word and slice loads stay
        // Generic.
        if (!dstFull || p.aux != 4)
            break;
        if (aR && bR) {
            r.op = ROp::kLoadWRR;
        } else if (aR && bI) {
            r.op = ROp::kLoadWRI;
            r.imm = p.b.imm;
        } else if (aI && bR) {
            r.op = ROp::kLoadWRI;
            r.a = p.b.reg;
            r.imm = p.a.imm;
        }
        break;
      default: // Memory, 8-bit slice, conditional, rare: Generic.
        break;
    }
    return r;
}

FastCore::RunMemo &
FastCore::memoAt(uint32_t idx)
{
    int32_t mi = memoIdx_[idx];
    if (mi < 0) {
        memos_.push_back(buildMemo(idx));
        mi = static_cast<int32_t>(memos_.size()) - 1;
        memoIdx_[idx] = mi;
    }
    return memos_[static_cast<size_t>(mi)];
}

bool
FastCore::entryReady(const RunMemo &m) const
{
    if (maxReady_ <= cycle_)
        return true;
    for (uint32_t bits = m.entryReadyMask; bits; bits &= bits - 1)
        if (readyAt_[__builtin_ctz(bits)] > cycle_)
            return false;
    return true;
}

void
FastCore::commitPrefix(const RunMemo &m, uint32_t k)
{
    // The k body instructions retired plus the diverging one were all
    // fetched; their lines are resident (entry guard), so the fetch
    // sequence commits in bulk. L1I traffic never reaches L2 here, so
    // committing after the already-performed D-accesses preserves the
    // legacy hierarchy state exactly.
    mem_.fetchRangeCommit(m.fetchFirst, prog_.addrOf(m.start + k));
    const PInst *insts = pre_.insts().data() + m.start;
    for (uint32_t j = 0; j < k; ++j) {
        applyContrib(insts[j].contrib);
        if (insts[j].kind != PKind::MovCond)
            applyDstWrite(insts[j].dstWrite);
    }
    counters_.instructions += k;
    executed_ += k;
    if (attr_)
        for (uint32_t j = 0; j < k; ++j)
            attr_->onInst(m.start + j, m.per[j].cost);
    if (prof_)
        for (uint32_t j = 0; j < k; ++j)
            prof_->onInst(m.start + j, m.per[j].cost);
    // Upper bound over the prefix's scoreboard writes (readyAt_ is
    // exact — the replay loop updated it per write).
    maxReady_ = std::max(maxReady_, cycle_ + m.maxReadyOff);
}

bool
FastCore::fetchGuard(RunMemo &m)
{
    if (m.pin.cnt && m.pin.gen == mem_.l1iFillGen())
        return true;
    if (!mem_.fetchRangeResident(m.fetchFirst, m.fetchLast))
        return false;
    mem_.fetchRangePin(m.fetchFirst, m.fetchLast, m.pin);
    return true;
}

void
FastCore::commitFetches(RunMemo &m, uint64_t repeat)
{
    // No I-fill can intervene between the guard and this commit (the
    // body performs only D-side accesses), but re-checking is one
    // compare and keeps the pin self-validating.
    if (m.pin.cnt && m.pin.gen == mem_.l1iFillGen())
        mem_.fetchCommitPinned(m.pin, repeat);
    else
        mem_.fetchRangeCommit(m.fetchFirst, m.fetchLast, repeat);
}

void
FastCore::flushIters(RunMemo &m, uint64_t iters)
{
    if (!iters)
        return;
    // The iterated loop touched no other I-line in between, so one
    // scaled bulk fetch commit is exact; counter deltas defer with
    // the usual pendingReplays multiplier (takenBranches, executed_
    // and the scoreboard were kept live per iteration).
    m.pendingReplays += iters;
    commitFetches(m, iters);
    replayedRuns_ += iters;
}

uint32_t
FastCore::replay(RunMemo &m0)
{
    RunMemo *mp = &m0; // Re-pointed when block chaining continues.
    uint64_t entry = cycle_;
    const PInst *insts = pre_.insts().data() + mp->start;
    uint32_t *regs = regs_;
    // Completed in-replay iterations of a self-backedge loop, bulk
    // committed by flushIters on every exit path.
    uint64_t iters = 0;
    uint32_t next = 0; // Successor index for the chaining exit.

  iterate:
    for (uint32_t i = 0; i < mp->len; ++i) {
        const RunMemo::ROp &r = mp->ops[i];
        switch (r.op) {
          case RunMemo::ROp::kAddRR:
            regs[r.dst] = regs[r.a] + regs[r.b];
            break;
          case RunMemo::ROp::kAddRI:
            regs[r.dst] = regs[r.a] + r.imm;
            break;
          case RunMemo::ROp::kSubRR:
            regs[r.dst] = regs[r.a] - regs[r.b];
            break;
          case RunMemo::ROp::kSubRI:
            regs[r.dst] = regs[r.a] - r.imm;
            break;
          case RunMemo::ROp::kSubIR:
            regs[r.dst] = r.imm - regs[r.a];
            break;
          case RunMemo::ROp::kAndRR:
            regs[r.dst] = regs[r.a] & regs[r.b];
            break;
          case RunMemo::ROp::kAndRI:
            regs[r.dst] = regs[r.a] & r.imm;
            break;
          case RunMemo::ROp::kOrrRR:
            regs[r.dst] = regs[r.a] | regs[r.b];
            break;
          case RunMemo::ROp::kOrrRI:
            regs[r.dst] = regs[r.a] | r.imm;
            break;
          case RunMemo::ROp::kEorRR:
            regs[r.dst] = regs[r.a] ^ regs[r.b];
            break;
          case RunMemo::ROp::kEorRI:
            regs[r.dst] = regs[r.a] ^ r.imm;
            break;
          case RunMemo::ROp::kLslRR: {
            uint32_t s = regs[r.b];
            regs[r.dst] = s >= 32 ? 0 : regs[r.a] << s;
            break;
          }
          case RunMemo::ROp::kLslRI:
            regs[r.dst] = r.imm >= 32 ? 0 : regs[r.a] << r.imm;
            break;
          case RunMemo::ROp::kLsrRR: {
            uint32_t s = regs[r.b];
            regs[r.dst] = s >= 32 ? 0 : regs[r.a] >> s;
            break;
          }
          case RunMemo::ROp::kLsrRI:
            regs[r.dst] = r.imm >= 32 ? 0 : regs[r.a] >> r.imm;
            break;
          case RunMemo::ROp::kAsrRR: {
            uint32_t s = regs[r.b];
            int32_t a = static_cast<int32_t>(regs[r.a]);
            regs[r.dst] = s >= 32
                              ? (a < 0 ? ~0u : 0)
                              : static_cast<uint32_t>(a >> s);
            break;
          }
          case RunMemo::ROp::kAsrRI: {
            int32_t a = static_cast<int32_t>(regs[r.a]);
            regs[r.dst] = r.imm >= 32
                              ? (a < 0 ? ~0u : 0)
                              : static_cast<uint32_t>(a >> r.imm);
            break;
          }
          case RunMemo::ROp::kMulRR:
            regs[r.dst] = regs[r.a] * regs[r.b];
            break;
          case RunMemo::ROp::kMulRI:
            regs[r.dst] = regs[r.a] * r.imm;
            break;
          case RunMemo::ROp::kMovR:
            regs[r.dst] = regs[r.a];
            break;
          case RunMemo::ROp::kMovI:
            regs[r.dst] = r.imm;
            break;
          case RunMemo::ROp::kMvnR:
            regs[r.dst] = ~regs[r.a];
            break;
          case RunMemo::ROp::kMovtI:
            regs[r.dst] = (r.imm << 16) | (regs[r.dst] & 0xffff);
            break;
          case RunMemo::ROp::kCmpRR:
            setFlagsSub(regs[r.a], regs[r.b], 32);
            break;
          case RunMemo::ROp::kCmpRI:
            setFlagsSub(regs[r.a], r.imm, 32);
            break;
          case RunMemo::ROp::kCmpIR:
            setFlagsSub(r.imm, regs[r.b], 32);
            break;
          case RunMemo::ROp::kSetcc:
            regs[r.dst] =
                condHolds(static_cast<Cond>(r.imm)) ? 1 : 0;
            break;
          case RunMemo::ROp::kSxth:
            regs[r.dst] = static_cast<uint32_t>(
                sextFrom(regs[r.a], 16));
            break;
          case RunMemo::ROp::kUxth:
            regs[r.dst] = regs[r.a] & 0xffff;
            break;
          case RunMemo::ROp::kUxt8:
            regs[r.dst] = regs[r.a] & 0xff;
            break;
          case RunMemo::ROp::kSxt8:
            regs[r.dst] = static_cast<uint32_t>(
                sextFrom(regs[r.a] & 0xff, 8));
            break;
          case RunMemo::ROp::kLoadWRR:
          case RunMemo::ROp::kLoadWRI: {
            uint32_t addr =
                regs[r.a] + (r.op == RunMemo::ROp::kLoadWRR
                                 ? regs[r.b]
                                 : r.imm);
            uint32_t stall = mem_.data(addr, false);
            if (static_cast<uint64_t>(addr) + 4 > dataMem_.size())
                loadData(addr, 4); // Same out-of-bounds fatal.
            uint32_t v;
            std::memcpy(&v, dataMem_.data() + addr, 4);
            regs[r.dst] = v;
            if (stall) {
                // D-miss divergence, same protocol as the generic
                // Load below.
                const PInst &p = insts[i];
                flushIters(*mp, iters);
                commitPrefix(*mp, i);
                applyContrib(p.contrib);
                applyDstWrite(p.dstWrite);
                ++counters_.instructions;
                ++executed_;
                cycle_ = entry + mp->per[i].issueOff;
                uint64_t rdy = cycle_ + p.latency + stall;
                readyAt_[p.dst.reg] = rdy;
                maxReady_ = std::max(maxReady_, rdy);
                if (attr_)
                    attr_->onInst(mp->start + i, mp->per[i].cost);
                if (prof_)
                    prof_->onInst(mp->start + i, mp->per[i].cost);
                if (tracks_)
                    tracks_->onRetire(counters_, mem_, cycle_);
                return mp->start + i + 1;
            }
            break;
          }
          default: { // kGeneric: the original PInst handler.
        const PInst &p = insts[i];
        switch (p.kind) {
          case PKind::AluAdd:
            writeDst(p.dst, regs,
                     readSrc(p.a, regs) + readSrc(p.b, regs));
            break;
          case PKind::AluSub:
            writeDst(p.dst, regs,
                     readSrc(p.a, regs) - readSrc(p.b, regs));
            break;
          case PKind::AluAnd:
            writeDst(p.dst, regs,
                     readSrc(p.a, regs) & readSrc(p.b, regs));
            break;
          case PKind::AluOrr:
            writeDst(p.dst, regs,
                     readSrc(p.a, regs) | readSrc(p.b, regs));
            break;
          case PKind::AluEor:
            writeDst(p.dst, regs,
                     readSrc(p.a, regs) ^ readSrc(p.b, regs));
            break;
          case PKind::AluLsl: {
            uint32_t a = readSrc(p.a, regs), b = readSrc(p.b, regs);
            writeDst(p.dst, regs, b >= 32 ? 0 : a << b);
            break;
          }
          case PKind::AluLsr: {
            uint32_t a = readSrc(p.a, regs), b = readSrc(p.b, regs);
            writeDst(p.dst, regs, b >= 32 ? 0 : a >> b);
            break;
          }
          case PKind::AluAsr: {
            uint32_t a = readSrc(p.a, regs), b = readSrc(p.b, regs);
            writeDst(p.dst, regs,
                     b >= 32
                         ? (static_cast<int32_t>(a) < 0 ? ~0u : 0)
                         : static_cast<uint32_t>(
                               static_cast<int32_t>(a) >> b));
            break;
          }
          case PKind::Mul:
            writeDst(p.dst, regs,
                     readSrc(p.a, regs) * readSrc(p.b, regs));
            break;
          case PKind::Div: {
            uint32_t a = readSrc(p.a, regs), b = readSrc(p.b, regs);
            if (b == 0) {
                flushIters(*mp, iters);
                commitPrefix(*mp, i);
                applyContrib(p.contrib);
                ++counters_.instructions;
                ++executed_;
                fatal("machine division by zero");
            }
            writeDst(p.dst, regs,
                     p.aux ? static_cast<uint32_t>(
                                 static_cast<int32_t>(a) /
                                 static_cast<int32_t>(b))
                           : a / b);
            break;
          }
          case PKind::Mov:
            writeDst(p.dst, regs, readSrc(p.a, regs));
            break;
          case PKind::MovCond:
            if (condHolds(p.cond)) {
                if (!p.a.isImm) {
                    if (p.a.mask == 0xff)
                        ++counters_.rfRead8;
                    else
                        ++counters_.rfRead32;
                }
                writeDst(p.dst, regs, readSrc(p.a, regs));
                if (p.dst.mask == 0xff)
                    ++counters_.rfWrite8;
                else
                    ++counters_.rfWrite32;
                readyAt_[p.dst.reg] = entry + mp->per[i].issueOff + 1;
            }
            break;
          case PKind::Mvn:
            writeDst(p.dst, regs, ~readSrc(p.a, regs));
            break;
          case PKind::Movw:
            writeDst(p.dst, regs, p.a.imm);
            break;
          case PKind::Movt: {
            uint32_t lo = regs[p.dst.reg] & 0xffff;
            writeDst(p.dst, regs, (p.a.imm << 16) | lo);
            break;
          }
          case PKind::Cmp:
            setFlagsSub(readSrc(p.a, regs), readSrc(p.b, regs), 32);
            break;
          case PKind::Cmp8:
            setFlagsSub(readSrc(p.a, regs) & 0xff,
                        readSrc(p.b, regs) & 0xff, 8);
            break;
          case PKind::Setcc:
            writeDst(p.dst, regs, condHolds(p.cond) ? 1 : 0);
            break;
          case PKind::Sxth:
            writeDst(p.dst, regs,
                     static_cast<uint32_t>(
                         sextFrom(readSrc(p.a, regs), 16)));
            break;
          case PKind::Uxth:
            writeDst(p.dst, regs, readSrc(p.a, regs) & 0xffff);
            break;
          case PKind::Uxt8:
            writeDst(p.dst, regs, readSrc(p.a, regs) & 0xff);
            break;
          case PKind::Sxt8:
            writeDst(p.dst, regs,
                     static_cast<uint32_t>(
                         sextFrom(readSrc(p.a, regs) & 0xff, 8)));
            break;
          case PKind::Load: {
            uint32_t addr =
                readSrc(p.a, regs) + readSrc(p.b, regs);
            uint32_t stall = mem_.data(addr, false);
            writeDst(p.dst, regs, loadData(addr, p.aux));
            if (stall) {
                // D-miss: the schedule's no-stall dst readiness is
                // wrong from here on — commit the prefix and resume
                // cycle-accurately after this instruction.
                flushIters(*mp, iters);
                commitPrefix(*mp, i);
                applyContrib(p.contrib);
                applyDstWrite(p.dstWrite);
                ++counters_.instructions;
                ++executed_;
                cycle_ = entry + mp->per[i].issueOff;
                uint64_t rdy = cycle_ + p.latency + stall;
                readyAt_[p.dst.reg] = rdy;
                maxReady_ = std::max(maxReady_, rdy);
                if (attr_)
                    attr_->onInst(mp->start + i, mp->per[i].cost);
                if (prof_)
                    prof_->onInst(mp->start + i, mp->per[i].cost);
                if (tracks_)
                    tracks_->onRetire(counters_, mem_, cycle_);
                return mp->start + i + 1;
            }
            break;
          }
          case PKind::LoadSpec: {
            uint32_t addr =
                readSrc(p.a, regs) + readSrc(p.b, regs);
            uint32_t stall = mem_.data(addr, false);
            uint32_t v = loadData(addr, p.aux);
            if (v > 0xff) {
                flushIters(*mp, iters);
                commitPrefix(*mp, i);
                applyContrib(p.contrib);
                ++counters_.instructions;
                ++executed_;
                ++counters_.misspeculations;
                if (attr_)
                    attr_->onMisspec(mp->start + i);
                if (prof_)
                    prof_->onMisspec(mp->start + i);
                cycle_ = entry + mp->per[i].issueOff + stall +
                         kMisspecPenalty;
                uint64_t cost =
                    cycle_ - (entry + mp->per[i].cycBefore);
                if (attr_)
                    attr_->onInst(mp->start + i, cost);
                if (prof_)
                    prof_->onInst(mp->start + i, cost);
                if (tracks_)
                    tracks_->onRetire(counters_, mem_, cycle_);
                return mp->start + i + delta_ / kInstBytes;
            }
            writeDst(p.dst, regs, v);
            if (stall) {
                flushIters(*mp, iters);
                commitPrefix(*mp, i);
                applyContrib(p.contrib);
                applyDstWrite(p.dstWrite);
                ++counters_.instructions;
                ++executed_;
                cycle_ = entry + mp->per[i].issueOff;
                uint64_t rdy = cycle_ + p.latency + stall;
                readyAt_[p.dst.reg] = rdy;
                maxReady_ = std::max(maxReady_, rdy);
                if (attr_)
                    attr_->onInst(mp->start + i, mp->per[i].cost);
                if (prof_)
                    prof_->onInst(mp->start + i, mp->per[i].cost);
                if (tracks_)
                    tracks_->onRetire(counters_, mem_, cycle_);
                return mp->start + i + 1;
            }
            break;
          }
          case PKind::Store: {
            uint32_t addr =
                readSrc(p.a, regs) + readSrc(p.b, regs);
            uint32_t stall = mem_.data(addr, true);
            storeData(addr, readSrc(p.dst, regs), p.aux);
            if (stall) {
                // Store misses advance the cycle itself; diverge.
                flushIters(*mp, iters);
                commitPrefix(*mp, i);
                applyContrib(p.contrib);
                ++counters_.instructions;
                ++executed_;
                cycle_ = entry + mp->per[i].issueOff + stall;
                uint64_t cost =
                    cycle_ - (entry + mp->per[i].cycBefore);
                if (attr_)
                    attr_->onInst(mp->start + i, cost);
                if (prof_)
                    prof_->onInst(mp->start + i, cost);
                if (tracks_)
                    tracks_->onRetire(counters_, mem_, cycle_);
                return mp->start + i + 1;
            }
            break;
          }
          case PKind::Add8: case PKind::Sub8: {
            uint32_t a = readSrc(p.a, regs) & 0xff;
            uint32_t b = readSrc(p.b, regs) & 0xff;
            uint32_t r;
            bool misspec;
            if (p.kind == PKind::Add8) {
                uint32_t full = a + b;
                misspec = p.aux && full > 0xff;
                r = full & 0xff;
            } else {
                misspec = p.aux && a < b;
                r = (a - b) & 0xff;
            }
            if (misspec) {
                flushIters(*mp, iters);
                commitPrefix(*mp, i);
                applyContrib(p.contrib);
                ++counters_.instructions;
                ++executed_;
                ++counters_.misspeculations;
                if (attr_)
                    attr_->onMisspec(mp->start + i);
                if (prof_)
                    prof_->onMisspec(mp->start + i);
                cycle_ =
                    entry + mp->per[i].issueOff + kMisspecPenalty;
                uint64_t cost =
                    cycle_ - (entry + mp->per[i].cycBefore);
                if (attr_)
                    attr_->onInst(mp->start + i, cost);
                if (prof_)
                    prof_->onInst(mp->start + i, cost);
                if (tracks_)
                    tracks_->onRetire(counters_, mem_, cycle_);
                return mp->start + i + delta_ / kInstBytes;
            }
            writeDst(p.dst, regs, r);
            break;
          }
          case PKind::Logic8And:
            writeDst(p.dst, regs,
                     (readSrc(p.a, regs) & readSrc(p.b, regs)) &
                         0xff);
            break;
          case PKind::Logic8Orr:
            writeDst(p.dst, regs,
                     (readSrc(p.a, regs) | readSrc(p.b, regs)) &
                         0xff);
            break;
          case PKind::Logic8Eor:
            writeDst(p.dst, regs,
                     (readSrc(p.a, regs) ^ readSrc(p.b, regs)) &
                         0xff);
            break;
          case PKind::Trn8: {
            uint32_t v = readSrc(p.a, regs);
            if (p.aux && v > 0xff) {
                flushIters(*mp, iters);
                commitPrefix(*mp, i);
                applyContrib(p.contrib);
                ++counters_.instructions;
                ++executed_;
                ++counters_.misspeculations;
                if (attr_)
                    attr_->onMisspec(mp->start + i);
                if (prof_)
                    prof_->onMisspec(mp->start + i);
                cycle_ =
                    entry + mp->per[i].issueOff + kMisspecPenalty;
                uint64_t cost =
                    cycle_ - (entry + mp->per[i].cycBefore);
                if (attr_)
                    attr_->onInst(mp->start + i, cost);
                if (prof_)
                    prof_->onInst(mp->start + i, cost);
                if (tracks_)
                    tracks_->onRetire(counters_, mem_, cycle_);
                return mp->start + i + delta_ / kInstBytes;
            }
            writeDst(p.dst, regs, v & 0xff);
            break;
          }
          case PKind::Out:
            emitOut(readSrc(p.a, regs));
            break;
          case PKind::SetDelta:
            delta_ = p.a.imm;
            break;
          case PKind::Mode:
            classicMode_ = p.aux;
            break;
          case PKind::Nop:
            break;
          default:
            panic("replay: unexpected kind in memo body");
        }
        break;
          }
        }
        // Branchless: no-write instructions target the scratch slot.
        readyAt_[r.writeReg] = entry + r.readyOff;
    }

    // Clean body completion.
    cycle_ = entry + mp->bodyCycles;
    maxReady_ = std::max(maxReady_, entry + mp->maxReadyOff);

    if (mp->termIsBranch && !attr_ && !prof_) {
        // Branch terminators complete inline: no execTerminator
        // dispatch (its static accounting already rides in the memo
        // delta). A taken backedge to our own start — the hot inner
        // loop — drops straight into the next iteration with no
        // run-loop dispatch, residency probe or per-iteration fetch
        // commit: residency cannot change between iterations (no
        // other I-line is touched), so only fuel and readiness
        // re-check. With a sink attached we take the standard path
        // below so the per-instruction feed keeps its exact order.
        cycle_ += 1; // Terminator fetch (committed in the flush).
        executed_ += mp->len + 1;
        ++iters;
        if (condHolds(mp->backCond)) {
            ++counters_.takenBranches;
            cycle_ += kBranchPenalty;
            if (mp->selfBackedge) {
                entry = cycle_;
                if (executed_ + mp->fuelCost <= fuel_ && entryReady(*mp))
                    goto iterate;
                flushIters(*mp, iters);
                return mp->start; // Fuel/readiness: re-guard in run().
            }
            flushIters(*mp, iters);
            next = mp->termTarget;
            goto chain;
        }
        flushIters(*mp, iters);
        next = mp->start + mp->len + 1; // Branch not taken.

      chain:
        // Block chaining: when the successor already has an eligible
        // memo and its entry guards hold, continue replaying it right
        // here — no dispatcher round trip. (tracks_ is null whenever
        // replay runs, so only the run()-loop guards apply.)
        {
            int32_t mi = memoIdx_[next];
            if (mi >= 0) {
                RunMemo &n = memos_[static_cast<size_t>(mi)];
                if (n.eligible && executed_ + n.fuelCost <= fuel_ &&
                    entryReady(n) && fetchGuard(n)) {
                    mp = &n;
                    insts = pre_.insts().data() + mp->start;
                    entry = cycle_;
                    iters = 0;
                    goto iterate;
                }
            }
        }
        return next;
    }

    // Commit the whole body from the memo, then run the terminator.
    // Counter deltas (body + static terminator parts) are deferred —
    // one pendingReplays increment here, multiplied out at finish().
    commitFetches(*mp, 1);
    ++mp->pendingReplays;
    executed_ += mp->len;
    if (attr_)
        for (uint32_t i = 0; i < mp->len; ++i)
            attr_->onInst(mp->start + i, mp->per[i].cost);
    if (prof_)
        for (uint32_t i = 0; i < mp->len; ++i)
            prof_->onInst(mp->start + i, mp->per[i].cost);
    ++replayedRuns_;
    return execTerminator(*mp);
}

uint32_t
FastCore::execTerminator(const RunMemo &m)
{
    const uint32_t idx = m.start + m.len;
    const PInst &p = pre_.insts()[idx];
    const uint64_t cycle_at_fetch = cycle_;
    cycle_ += 1; // Fetch: L1I hit, committed in bulk above.
    ++executed_;
    // Instruction and static contrib counts ride in the memo's
    // deferred delta; only the dynamic takenBranches below is live.

    uint32_t next = idx + 1;
    switch (p.kind) {
      case PKind::Branch:
        if (condHolds(p.cond)) {
            ++counters_.takenBranches;
            next = p.target;
            cycle_ += kBranchPenalty;
        }
        break;
      case PKind::Call:
        // Like the legacy BL: a raw lr write, no rf event, no
        // scoreboard update.
        regs_[kRegLR] = prog_.addrOf(idx + 1);
        next = p.target;
        cycle_ += kBranchPenalty;
        break;
      case PKind::Ret: {
        uint32_t lr = regs_[kRegLR];
        cycle_ += kBranchPenalty;
        if (lr == MachProgram::kHaltAddr) {
            if (attr_)
                attr_->onInst(idx, cycle_ - cycle_at_fetch);
            if (prof_)
                prof_->onInst(idx, cycle_ - cycle_at_fetch);
            finish(cycle_);
            if (tracks_)
                tracks_->finish(counters_, mem_, cycle_);
            halted_ = true;
            retVal_ = regs_[0];
            return idx;
        }
        next = prog_.indexOf(lr);
        break;
      }
      case PKind::Halt:
        if (attr_)
            attr_->onInst(idx, cycle_ - cycle_at_fetch);
        if (prof_)
            prof_->onInst(idx, cycle_ - cycle_at_fetch);
        finish(cycle_);
        if (tracks_)
            tracks_->finish(counters_, mem_, cycle_);
        halted_ = true;
        retVal_ = regs_[0];
        return idx;
      default:
        panic("execTerminator: not a terminator");
    }
    if (attr_)
        attr_->onInst(idx, cycle_ - cycle_at_fetch);
    if (prof_)
        prof_->onInst(idx, cycle_ - cycle_at_fetch);
    if (tracks_)
        tracks_->onRetire(counters_, mem_, cycle_);
    return next;
}

uint32_t
FastCore::slowStep(uint32_t idx)
{
    ++slowInsts_;
    if (++executed_ > fuel_)
        fatal("machine execution out of fuel (infinite loop?)");

    const PInst &p = pre_.insts()[idx];
    uint32_t *regs = regs_;
    const uint64_t cycle_at_fetch = cycle_;
    cycle_ += 1 + mem_.fetch(prog_.addrOf(idx));
    ++counters_.instructions;
    applyContrib(p.contrib);

    uint64_t ready = 0;
    for (uint32_t bits = p.readyMask; bits; bits &= bits - 1)
        ready = std::max(ready, readyAt_[__builtin_ctz(bits)]);
    if (ready > cycle_)
        cycle_ = ready;

    uint32_t next = idx + 1;
    bool wrote = false;
    uint64_t dst_ready = cycle_ + 1;

    auto misspeculate = [&]() {
        ++counters_.misspeculations;
        if (attr_)
            attr_->onMisspec(idx);
        if (prof_)
            prof_->onMisspec(idx);
        next = idx + delta_ / kInstBytes;
        cycle_ += kMisspecPenalty;
    };

    switch (p.kind) {
      case PKind::AluAdd:
        writeDst(p.dst, regs,
                 readSrc(p.a, regs) + readSrc(p.b, regs));
        wrote = true;
        break;
      case PKind::AluSub:
        writeDst(p.dst, regs,
                 readSrc(p.a, regs) - readSrc(p.b, regs));
        wrote = true;
        break;
      case PKind::AluAnd:
        writeDst(p.dst, regs,
                 readSrc(p.a, regs) & readSrc(p.b, regs));
        wrote = true;
        break;
      case PKind::AluOrr:
        writeDst(p.dst, regs,
                 readSrc(p.a, regs) | readSrc(p.b, regs));
        wrote = true;
        break;
      case PKind::AluEor:
        writeDst(p.dst, regs,
                 readSrc(p.a, regs) ^ readSrc(p.b, regs));
        wrote = true;
        break;
      case PKind::AluLsl: {
        uint32_t a = readSrc(p.a, regs), b = readSrc(p.b, regs);
        writeDst(p.dst, regs, b >= 32 ? 0 : a << b);
        wrote = true;
        break;
      }
      case PKind::AluLsr: {
        uint32_t a = readSrc(p.a, regs), b = readSrc(p.b, regs);
        writeDst(p.dst, regs, b >= 32 ? 0 : a >> b);
        wrote = true;
        break;
      }
      case PKind::AluAsr: {
        uint32_t a = readSrc(p.a, regs), b = readSrc(p.b, regs);
        writeDst(p.dst, regs,
                 b >= 32 ? (static_cast<int32_t>(a) < 0 ? ~0u : 0)
                         : static_cast<uint32_t>(
                               static_cast<int32_t>(a) >> b));
        wrote = true;
        break;
      }
      case PKind::Mul:
        writeDst(p.dst, regs,
                 readSrc(p.a, regs) * readSrc(p.b, regs));
        wrote = true;
        dst_ready = cycle_ + p.latency;
        break;
      case PKind::Div: {
        uint32_t a = readSrc(p.a, regs), b = readSrc(p.b, regs);
        if (b == 0)
            fatal("machine division by zero");
        writeDst(p.dst, regs,
                 p.aux ? static_cast<uint32_t>(
                             static_cast<int32_t>(a) /
                             static_cast<int32_t>(b))
                       : a / b);
        wrote = true;
        dst_ready = cycle_ + p.latency;
        break;
      }
      case PKind::Mov:
        writeDst(p.dst, regs, readSrc(p.a, regs));
        wrote = true;
        break;
      case PKind::MovCond:
        if (condHolds(p.cond)) {
            if (!p.a.isImm) {
                if (p.a.mask == 0xff)
                    ++counters_.rfRead8;
                else
                    ++counters_.rfRead32;
            }
            writeDst(p.dst, regs, readSrc(p.a, regs));
            if (p.dst.mask == 0xff)
                ++counters_.rfWrite8;
            else
                ++counters_.rfWrite32;
            wrote = true;
        }
        break;
      case PKind::Mvn:
        writeDst(p.dst, regs, ~readSrc(p.a, regs));
        wrote = true;
        break;
      case PKind::Movw:
        writeDst(p.dst, regs, p.a.imm);
        wrote = true;
        break;
      case PKind::Movt: {
        uint32_t lo = regs[p.dst.reg] & 0xffff;
        writeDst(p.dst, regs, (p.a.imm << 16) | lo);
        wrote = true;
        break;
      }
      case PKind::Cmp:
        setFlagsSub(readSrc(p.a, regs), readSrc(p.b, regs), 32);
        break;
      case PKind::Cmp8:
        setFlagsSub(readSrc(p.a, regs) & 0xff,
                    readSrc(p.b, regs) & 0xff, 8);
        break;
      case PKind::Setcc:
        writeDst(p.dst, regs, condHolds(p.cond) ? 1 : 0);
        wrote = true;
        break;
      case PKind::Sxth:
        writeDst(p.dst, regs,
                 static_cast<uint32_t>(
                     sextFrom(readSrc(p.a, regs), 16)));
        wrote = true;
        break;
      case PKind::Uxth:
        writeDst(p.dst, regs, readSrc(p.a, regs) & 0xffff);
        wrote = true;
        break;
      case PKind::Uxt8:
        writeDst(p.dst, regs, readSrc(p.a, regs) & 0xff);
        wrote = true;
        break;
      case PKind::Sxt8:
        writeDst(p.dst, regs,
                 static_cast<uint32_t>(
                     sextFrom(readSrc(p.a, regs) & 0xff, 8)));
        wrote = true;
        break;
      case PKind::Load: {
        uint32_t addr = readSrc(p.a, regs) + readSrc(p.b, regs);
        uint32_t stall = mem_.data(addr, false);
        writeDst(p.dst, regs, loadData(addr, p.aux));
        wrote = true;
        dst_ready = cycle_ + p.latency + stall;
        break;
      }
      case PKind::LoadSpec: {
        uint32_t addr = readSrc(p.a, regs) + readSrc(p.b, regs);
        uint32_t stall = mem_.data(addr, false);
        uint32_t v = loadData(addr, p.aux);
        if (v > 0xff || shouldForce()) {
            cycle_ += stall;
            misspeculate();
            break;
        }
        writeDst(p.dst, regs, v);
        wrote = true;
        dst_ready = cycle_ + p.latency + stall;
        break;
      }
      case PKind::Store: {
        uint32_t addr = readSrc(p.a, regs) + readSrc(p.b, regs);
        cycle_ += mem_.data(addr, true);
        storeData(addr, readSrc(p.dst, regs), p.aux);
        break;
      }
      case PKind::Add8: {
        uint32_t a = readSrc(p.a, regs) & 0xff;
        uint32_t b = readSrc(p.b, regs) & 0xff;
        uint32_t full = a + b;
        if (p.aux && (full > 0xff || shouldForce())) {
            misspeculate();
            break;
        }
        writeDst(p.dst, regs, full & 0xff);
        wrote = true;
        break;
      }
      case PKind::Sub8: {
        uint32_t a = readSrc(p.a, regs) & 0xff;
        uint32_t b = readSrc(p.b, regs) & 0xff;
        if (p.aux && (a < b || shouldForce())) {
            misspeculate();
            break;
        }
        writeDst(p.dst, regs, (a - b) & 0xff);
        wrote = true;
        break;
      }
      case PKind::Logic8And:
        writeDst(p.dst, regs,
                 (readSrc(p.a, regs) & readSrc(p.b, regs)) & 0xff);
        wrote = true;
        break;
      case PKind::Logic8Orr:
        writeDst(p.dst, regs,
                 (readSrc(p.a, regs) | readSrc(p.b, regs)) & 0xff);
        wrote = true;
        break;
      case PKind::Logic8Eor:
        writeDst(p.dst, regs,
                 (readSrc(p.a, regs) ^ readSrc(p.b, regs)) & 0xff);
        wrote = true;
        break;
      case PKind::Trn8: {
        uint32_t v = readSrc(p.a, regs);
        if (p.aux && (v > 0xff || shouldForce())) {
            misspeculate();
            break;
        }
        writeDst(p.dst, regs, v & 0xff);
        wrote = true;
        break;
      }
      case PKind::Branch:
        if (condHolds(p.cond)) {
            ++counters_.takenBranches;
            next = p.target;
            cycle_ += kBranchPenalty;
        }
        break;
      case PKind::Call:
        regs_[kRegLR] = prog_.addrOf(idx + 1);
        next = p.target;
        cycle_ += kBranchPenalty;
        break;
      case PKind::Ret: {
        uint32_t lr = regs_[kRegLR];
        cycle_ += kBranchPenalty;
        if (lr == MachProgram::kHaltAddr) {
            if (attr_)
                attr_->onInst(idx, cycle_ - cycle_at_fetch);
            if (prof_)
                prof_->onInst(idx, cycle_ - cycle_at_fetch);
            finish(cycle_);
            if (tracks_)
                tracks_->finish(counters_, mem_, cycle_);
            halted_ = true;
            retVal_ = regs_[0];
            return idx;
        }
        next = prog_.indexOf(lr);
        break;
      }
      case PKind::Out:
        emitOut(readSrc(p.a, regs));
        break;
      case PKind::SetDelta:
        delta_ = p.a.imm;
        break;
      case PKind::Mode:
        classicMode_ = p.aux;
        break;
      case PKind::Nop:
        break;
      case PKind::Halt:
        if (attr_)
            attr_->onInst(idx, cycle_ - cycle_at_fetch);
        if (prof_)
            prof_->onInst(idx, cycle_ - cycle_at_fetch);
        finish(cycle_);
        if (tracks_)
            tracks_->finish(counters_, mem_, cycle_);
        halted_ = true;
        retVal_ = regs_[0];
        return idx;
      case PKind::Bad:
        panic("readOpnd: unallocated operand");
    }

    if (wrote) {
        readyAt_[p.dst.reg] = dst_ready;
        maxReady_ = std::max(maxReady_, dst_ready);
        applyDstWrite(p.dstWrite); // MovCond accounted its own.
    }
    if (attr_)
        attr_->onInst(idx, cycle_ - cycle_at_fetch);
    if (prof_)
        prof_->onInst(idx, cycle_ - cycle_at_fetch);
    if (tracks_)
        tracks_->onRetire(counters_, mem_, cycle_);
    return next;
}

uint32_t
FastCore::run(const std::vector<uint32_t> &args)
{
    trace::Span span("core.run", "execute");
    span.arg("engine", "fast");
    bsAssert(args.size() <= 4, "run: more than 4 arguments");
    for (size_t i = 0; i < args.size(); ++i)
        regs_[i] = args[i];
    regs_[kRegLR] = MachProgram::kHaltAddr;

    cycle_ = 0;
    executed_ = 0;
    halted_ = false;
    retVal_ = 0;
    const uint32_t size = static_cast<uint32_t>(pre_.size());

    uint32_t idx = 0;
    for (;;) {
        if (idx >= size)
            fatal(strFormat("PC out of code range: index %u", idx));
        RunMemo &m = memoAt(idx);
        // A counter-track emitter samples at per-retire granularity;
        // bulk replay would shift its window boundaries, so tracing
        // runs stay on the cycle-accurate path (tracks_ test below).
        // Non-Hardware misspec policies likewise bypass replay: a
        // memo bakes in that no check in the body fired.
        if (m.eligible && !tracks_ &&
            policy_ == MisspecPolicy::Hardware &&
            executed_ + m.fuelCost <= fuel_ && entryReady(m) &&
            fetchGuard(m)) {
            idx = replay(m);
        } else {
            idx = slowStep(idx);
        }
        if (halted_)
            return retVal_;
    }
}

} // namespace bitspec
