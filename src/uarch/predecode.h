/**
 * @file
 * Pre-decoded EMB32 program: the linked MachProgram flattened into a
 * dispatch-friendly form the fast core engine executes directly
 * (paper §4.1 infrastructure; same decode-once playbook as
 * interp/decode.h, one layer down).
 *
 * Each MachInst becomes one PInst: a dense handler kind replacing the
 * nested opcode/operand switches, operands pre-resolved to
 * (reg, shift, mask) triples so reads and writes are branch-free, a
 * pre-computed scoreboard-readiness register mask, the destination
 * latency, and a CounterContrib holding every ActivityCounters bump
 * the instruction makes unconditionally — the per-instruction
 * energy/latency contribution, ready to be summed per block.
 *
 * The table is immutable once built and independent of run state, so
 * one PredecodedProgram is shared by every FastCore run of a System
 * (block memos, which do depend on guard state, live in FastCore).
 */

#ifndef BITSPEC_UARCH_PREDECODE_H_
#define BITSPEC_UARCH_PREDECODE_H_

#include <cstdint>
#include <vector>

#include "backend/mir.h"

namespace bitspec
{

/** Handler index of one pre-decoded instruction. One kind per
 *  distinct execute behaviour; operand-width variants collapse into
 *  the operand descriptors (Load covers LDR/LDRH/LDRB/LDRB8). */
enum class PKind : uint8_t
{
    AluAdd, AluSub, AluAnd, AluOrr, AluEor, AluLsl, AluLsr, AluAsr,
    Mul,
    Div,      ///< aux = 1 for SDIV.
    Mov,      ///< Unconditional MOV/MOV8 (cond == AL).
    MovCond,  ///< Conditional MOV/MOV8: rf events depend on flags.
    Mvn,
    Movw, Movt,
    Cmp, Cmp8,
    Setcc,
    Sxth, Uxth, Uxt8, Sxt8,
    Load,     ///< LDR/LDRH/LDRB/LDRB8; aux = bytes.
    LoadSpec, ///< LDRS8; aux = checked memory width in bytes.
    Store,    ///< STR/STRH/STRB/STRB8; aux = bytes.
    Add8,     ///< aux = 1 speculative (misspec on carry out).
    Sub8,     ///< aux = 1 speculative (misspec on borrow).
    Logic8And, Logic8Orr, Logic8Eor,
    Trn8,     ///< aux = 1 speculative (misspec when rn > 255).
    Branch, Call, Ret,
    Out, SetDelta, Mode, Nop, Halt,
    Bad,      ///< Unallocated operand; executes as the legacy panic.
};

/** Pre-resolved operand: read = isImm ? imm : (regs[reg]>>shift)&mask,
 *  write = merge of (value & mask) << shift into regs[reg]. Reg
 *  operands get mask 0xffffffff/shift 0, slices mask 0xff/shift 8*i,
 *  so both paths are branch-free. */
struct POpnd
{
    uint32_t mask = 0xffffffffu;
    uint32_t imm = 0;
    uint8_t reg = 0;
    uint8_t shift = 0;
    bool isImm = false;
};

/** Unconditional ActivityCounters bumps of one instruction: ALU
 *  class, rf *reads*, memory/branch/output events and provenance-tag
 *  counts. Destination rf writes are NOT here (PInst::dstWrite) —
 *  speculative forms skip the write on misspeculation, and
 *  conditional moves skip it on a false condition, so write events
 *  commit separately. */
struct CounterContrib
{
    uint8_t alu32 = 0, alu8 = 0, mulDiv = 0;
    uint8_t rfRead32 = 0, rfRead8 = 0;
    uint8_t loads = 0, stores = 0;
    uint8_t branches = 0, takenBranches = 0, calls = 0;
    uint8_t outputs = 0;
    uint8_t dynSpillLoads = 0, dynSpillStores = 0, dynCopies = 0;
};

/** One pre-decoded instruction. */
struct PInst
{
    PKind kind = PKind::Nop;
    uint8_t aux = 0;          ///< Kind-specific (bytes / signed / spec).
    Cond cond = Cond::AL;
    /** Destination rf event on a committed write: 0 none,
     *  1 rfWrite32, 2 rfWrite8. MovCond keeps 0 and accounts its own
     *  conditional events. */
    uint8_t dstWrite = 0;
    /** Cycles until the destination value is ready (scoreboard);
     *  loads add their dynamic miss stall on top. */
    uint8_t latency = 1;
    /** Registers whose readiness the in-order issue consults (dst, a,
     *  b when Reg/Slice) — bit r for register r. */
    uint16_t readyMask = 0;
    POpnd dst, a, b;
    uint32_t target = 0;      ///< Branch/Call flat target index.
    CounterContrib contrib;
};

/** The whole linked program, decoded once. */
class PredecodedProgram
{
  public:
    /** @p prog must outlive the table (operands alias nothing, but
     *  FastCore still links/halts through the MachProgram). */
    explicit PredecodedProgram(const MachProgram &prog);

    const std::vector<PInst> &insts() const { return insts_; }
    const MachProgram &prog() const { return prog_; }
    size_t size() const { return insts_.size(); }

  private:
    const MachProgram &prog_;
    std::vector<PInst> insts_;
};

} // namespace bitspec

#endif // BITSPEC_UARCH_PREDECODE_H_
