#include "uarch/predecode.h"

#include "support/error.h"

namespace bitspec
{

namespace
{

/** True when the operand is backed by an architectural register
 *  (legacy Core consults the scoreboard for both classes). */
bool
isRegLike(const MOpnd &o)
{
    return o.isReg() || o.isSlice();
}

POpnd
makeOpnd(const MOpnd &o)
{
    POpnd p;
    switch (o.kind) {
      case MOpndKind::Reg:
        p.reg = o.reg;
        break;
      case MOpndKind::Slice:
        p.reg = o.reg;
        p.shift = static_cast<uint8_t>(8 * o.slice);
        p.mask = 0xff;
        break;
      case MOpndKind::Imm:
        p.isImm = true;
        p.imm = static_cast<uint32_t>(o.imm);
        break;
      case MOpndKind::None:
      case MOpndKind::VReg:
        // Never read by a well-formed handler; Bad-kind fallback
        // reproduces the legacy runtime panic if one is executed.
        break;
    }
    return p;
}

/** rf-read events of reading @p o, added to @p c. */
void
addReadRf(CounterContrib &c, const MOpnd &o)
{
    if (o.isReg())
        ++c.rfRead32;
    else if (o.isSlice())
        ++c.rfRead8;
}

/** True when @p o can be read/written without the legacy panic. */
bool
operandOk(const MOpnd &o)
{
    return o.isReg() || o.isSlice() || o.isImm();
}

PInst
decodeInst(const MachInst &inst)
{
    PInst p;
    p.cond = inst.cond;
    p.dst = makeOpnd(inst.dst);
    p.a = makeOpnd(inst.a);
    p.b = makeOpnd(inst.b);
    if (inst.target >= 0)
        p.target = static_cast<uint32_t>(inst.target);

    switch (inst.tag) {
      case InstTag::SpillLoad:  p.contrib.dynSpillLoads = 1; break;
      case InstTag::SpillStore: p.contrib.dynSpillStores = 1; break;
      case InstTag::Copy:       p.contrib.dynCopies = 1; break;
      default: break;
    }

    // Marks that this handler reads the operand: fills readyMask and
    // the rf-read contrib. A None/VReg operand panics in the legacy
    // readOpnd, so it decodes to the Bad handler (the offset operand
    // of loads/stores goes through readOpnd too unless immediate).
    auto readsValue = [&](const MOpnd &o) {
        if (!operandOk(o)) {
            p.kind = PKind::Bad;
            return;
        }
        if (isRegLike(o))
            p.readyMask |= 1u << o.reg;
        addReadRf(p.contrib, o);
    };
    auto writes = [&](const MOpnd &o) {
        if (o.isReg())
            p.dstWrite = 1;
        else if (o.isSlice())
            p.dstWrite = 2;
        else
            p.kind = PKind::Bad;
        if (isRegLike(o))
            p.readyMask |= 1u << o.reg;
    };
    // Scoreboard-only consultation (operand present but the handler
    // does not read its value through readOpnd).
    auto consults = [&](const MOpnd &o) {
        if (isRegLike(o))
            p.readyMask |= 1u << o.reg;
    };

    switch (inst.op) {
      case MOp::ADD: case MOp::SUB: case MOp::AND: case MOp::ORR:
      case MOp::EOR: case MOp::LSL: case MOp::LSR: case MOp::ASR: {
        switch (inst.op) {
          case MOp::ADD: p.kind = PKind::AluAdd; break;
          case MOp::SUB: p.kind = PKind::AluSub; break;
          case MOp::AND: p.kind = PKind::AluAnd; break;
          case MOp::ORR: p.kind = PKind::AluOrr; break;
          case MOp::EOR: p.kind = PKind::AluEor; break;
          case MOp::LSL: p.kind = PKind::AluLsl; break;
          case MOp::LSR: p.kind = PKind::AluLsr; break;
          default:       p.kind = PKind::AluAsr; break;
        }
        p.contrib.alu32 = 1;
        readsValue(inst.a);
        readsValue(inst.b);
        writes(inst.dst);
        break;
      }
      case MOp::MUL:
        p.kind = PKind::Mul;
        p.contrib.mulDiv = 1;
        p.latency = 3;
        readsValue(inst.a);
        readsValue(inst.b);
        writes(inst.dst);
        break;
      case MOp::UDIV: case MOp::SDIV:
        p.kind = PKind::Div;
        p.aux = inst.op == MOp::SDIV;
        p.contrib.mulDiv = 1;
        p.latency = 12;
        readsValue(inst.a);
        readsValue(inst.b);
        writes(inst.dst);
        break;
      case MOp::MOV: case MOp::MOV8:
        if (inst.cond == Cond::AL) {
            p.kind = PKind::Mov;
            (inst.op == MOp::MOV ? p.contrib.alu32
                                 : p.contrib.alu8) = 1;
            readsValue(inst.a);
            writes(inst.dst);
        } else {
            // rf events and the write depend on the flags at runtime;
            // the handler accounts them itself (dstWrite stays 0).
            p.kind = PKind::MovCond;
            (inst.op == MOp::MOV ? p.contrib.alu32
                                 : p.contrib.alu8) = 1;
            consults(inst.a);
            consults(inst.dst);
            if (!operandOk(inst.a) ||
                !(inst.dst.isReg() || inst.dst.isSlice()))
                p.kind = PKind::Bad;
        }
        break;
      case MOp::MVN:
        p.kind = PKind::Mvn;
        p.contrib.alu32 = 1;
        readsValue(inst.a);
        writes(inst.dst);
        break;
      case MOp::MOVW:
        p.kind = PKind::Movw;
        p.contrib.alu32 = 1;
        p.a.isImm = true;
        p.a.imm = static_cast<uint32_t>(inst.a.imm) & 0xffff;
        writes(inst.dst);
        break;
      case MOp::MOVT:
        p.kind = PKind::Movt;
        p.contrib.alu32 = 1;
        ++p.contrib.rfRead32; // Explicit low-half read of dst.
        p.a.isImm = true;
        p.a.imm = static_cast<uint32_t>(inst.a.imm);
        writes(inst.dst);
        break;
      case MOp::CMP:
        p.kind = PKind::Cmp;
        p.contrib.alu32 = 1;
        readsValue(inst.a);
        readsValue(inst.b);
        break;
      case MOp::CMP8:
        p.kind = PKind::Cmp8;
        p.contrib.alu8 = 1;
        readsValue(inst.a);
        readsValue(inst.b);
        break;
      case MOp::SETCC:
        p.kind = PKind::Setcc;
        p.contrib.alu32 = 1;
        writes(inst.dst);
        break;
      case MOp::SXTH:
        p.kind = PKind::Sxth;
        p.contrib.alu32 = 1;
        readsValue(inst.a);
        writes(inst.dst);
        break;
      case MOp::UXTH:
        p.kind = PKind::Uxth;
        p.contrib.alu32 = 1;
        readsValue(inst.a);
        writes(inst.dst);
        break;
      case MOp::UXT8:
        p.kind = PKind::Uxt8;
        p.contrib.alu8 = 1;
        readsValue(inst.a);
        writes(inst.dst);
        break;
      case MOp::SXT8:
        p.kind = PKind::Sxt8;
        p.contrib.alu8 = 1;
        readsValue(inst.a);
        writes(inst.dst);
        break;
      case MOp::LDR: case MOp::LDRH: case MOp::LDRB: case MOp::LDRB8:
        p.kind = PKind::Load;
        p.aux = inst.op == MOp::LDR ? 4 : inst.op == MOp::LDRH ? 2 : 1;
        p.contrib.loads = 1;
        p.latency = 2;
        readsValue(inst.a);
        readsValue(inst.b);
        writes(inst.dst);
        break;
      case MOp::LDRS8:
        p.kind = PKind::LoadSpec;
        p.aux = inst.origBits == 16 ? 2 : 4;
        p.contrib.loads = 1;
        p.latency = 2;
        readsValue(inst.a);
        readsValue(inst.b);
        writes(inst.dst);
        break;
      case MOp::STR: case MOp::STRH: case MOp::STRB: case MOp::STRB8:
        p.kind = PKind::Store;
        p.aux = inst.op == MOp::STR ? 4 : inst.op == MOp::STRH ? 2 : 1;
        p.contrib.stores = 1;
        readsValue(inst.a);
        readsValue(inst.b);
        readsValue(inst.dst); // Store data is a read of dst.
        break;
      case MOp::ADD8: case MOp::SUB8:
        p.kind = inst.op == MOp::ADD8 ? PKind::Add8 : PKind::Sub8;
        p.aux = inst.speculative;
        p.contrib.alu8 = 1;
        readsValue(inst.a);
        readsValue(inst.b);
        writes(inst.dst);
        break;
      case MOp::AND8: case MOp::ORR8: case MOp::EOR8:
        p.kind = inst.op == MOp::AND8   ? PKind::Logic8And
                 : inst.op == MOp::ORR8 ? PKind::Logic8Orr
                                        : PKind::Logic8Eor;
        p.contrib.alu8 = 1;
        readsValue(inst.a);
        readsValue(inst.b);
        writes(inst.dst);
        break;
      case MOp::TRN8:
        p.kind = PKind::Trn8;
        p.aux = inst.speculative;
        p.contrib.alu8 = 1;
        readsValue(inst.a);
        writes(inst.dst);
        break;
      case MOp::B:
        p.kind = PKind::Branch;
        p.contrib.branches = 1;
        break;
      case MOp::BL:
        p.kind = PKind::Call;
        p.contrib.calls = 1;
        break;
      case MOp::BXLR:
        // Legacy quirk preserved: lr readiness is never consulted
        // (BXLR carries no operands) and the taken-branch count is
        // unconditional.
        p.kind = PKind::Ret;
        p.contrib.branches = 1;
        p.contrib.takenBranches = 1;
        break;
      case MOp::OUT:
        p.kind = PKind::Out;
        p.contrib.outputs = 1;
        readsValue(inst.a);
        break;
      case MOp::SETDELTA:
        p.kind = PKind::SetDelta;
        p.a.isImm = true;
        p.a.imm = static_cast<uint32_t>(inst.a.imm);
        break;
      case MOp::MODE:
        p.kind = PKind::Mode;
        p.aux = inst.a.imm == 0;
        break;
      case MOp::NOP:
        p.kind = PKind::Nop;
        break;
      case MOp::HALT:
        p.kind = PKind::Halt;
        break;
    }
    return p;
}

} // namespace

PredecodedProgram::PredecodedProgram(const MachProgram &prog)
    : prog_(prog)
{
    insts_.reserve(prog.flat.size());
    for (const MachInst &inst : prog.flat)
        insts_.push_back(decodeInst(inst));
}

} // namespace bitspec
