#include "transform/squeezer.h"

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <unordered_map>

#include "analysis/cfg.h"
#include "analysis/demanded_bits.h"
#include "analysis/known_bits.h"
#include "analysis/lint.h"
#include "analysis/liveness.h"
#include "analysis/pipeline.h"
#include "analysis/verifier.h"
#include "ir/builder.h"
#include "ir/clone.h"
#include "obs/trace.h"
#include "support/bits.h"
#include "support/error.h"
#include "transform/cfg_prep.h"
#include "transform/simplify.h"
#include "transform/ssa_repair.h"

namespace bitspec
{

namespace
{

constexpr unsigned kSlice = 8; ///< Hardware slice width (Table 1).

/** Ops that can trigger misspeculation once narrowed. */
bool
canMisspeculate(Opcode op)
{
    return op == Opcode::Add || op == Opcode::Sub ||
           op == Opcode::Load || op == Opcode::Trunc;
}

/** Narrowable op set: Table 1 plus copies (phi/select/casts). */
bool
isNarrowableOp(Opcode op)
{
    switch (op) {
      case Opcode::Add: case Opcode::Sub:
      case Opcode::And: case Opcode::Or: case Opcode::Xor:
      case Opcode::Load: case Opcode::Trunc: case Opcode::ZExt:
      case Opcode::Phi: case Opcode::Select:
        return true;
      default:
        return false;
    }
}

CmpPred
toUnsignedPred(CmpPred p)
{
    switch (p) {
      case CmpPred::SLT: return CmpPred::ULT;
      case CmpPred::SLE: return CmpPred::ULE;
      case CmpPred::SGT: return CmpPred::UGT;
      case CmpPred::SGE: return CmpPred::UGE;
      default: return p;
    }
}

class SqueezerImpl
{
  public:
    SqueezerImpl(Function &f, const BitwidthProfile &profile,
                 const SqueezeOptions &opts)
        : f_(f), m_(*f.parent()), profile_(profile), opts_(opts)
    {}

    SqueezeStats
    run()
    {
        if (opts_.speculate)
            runSpeculative();
        else
            runExact();
        return stats_;
    }

  private:
    // ================= Common helpers =================

    Constant *
    constI8(uint64_t v)
    {
        return m_.getConst(Type(kSlice), v);
    }

    bool
    isNarrowConst(Value *v) const
    {
        return v->isConstant() &&
               static_cast<Constant *>(v)->value() <= lowMask(kSlice);
    }

    /** True when known-bits proves @p u always fits the slice. The
     *  analysis is computed before any rewriting; values the squeezer
     *  has already mutated are resolved through narrowOf_ by every
     *  caller before this is consulted, so stale facts are never
     *  load-bearing. */
    bool
    staticFits(Value *u) const
    {
        if (!opts_.staticAnalysis || kb_ == nullptr)
            return false;
        if (!u->type().isInt())
            return false;
        return kb_->known(u).fits(kSlice);
    }

    /** Static candidate: the result and every data operand provably
     *  fit the slice, so the 8-bit form computes the identical value
     *  (mod-2^w arithmetic restricted to [0,255] on both ends) and
     *  needs no check, no profile data and no idempotent block. */
    bool
    isStaticCandidate(Instruction *w) const
    {
        if (!opts_.staticAnalysis || kb_ == nullptr)
            return false;
        if (w->op() == Opcode::Load)
            return false; // Memory contents are unbounded.
        if (!staticFits(w))
            return false;
        for (size_t i = 0; i < w->numOperands(); ++i) {
            if (w->op() == Opcode::Select && i == 0)
                continue; // i1 condition.
            Value *u = w->operand(i);
            if (!isNarrowConst(u) && !staticFits(u))
                return false;
        }
        return true;
    }

    /** The narrow (i8) version of @p u for use at @p before in @p bb,
     *  inserting a truncate when needed. @p allow_spec permits
     *  speculative truncates of values whose producer stays wide. */
    Value *
    narrowOperand(Value *u, BasicBlock *bb,
                  BasicBlock::InstList::iterator before, bool allow_spec)
    {
        if (isNarrowConst(u))
            return constI8(static_cast<Constant *>(u)->value());
        if (u->type().bits == kSlice)
            return u;
        auto it = narrowOf_.find(u);
        if (it != narrowOf_.end())
            return it->second;

        // Sub-slice values (booleans) widen to the slice: exact, never
        // misspeculates.
        if (u->type().bits < kSlice) {
            auto zx = std::make_unique<Instruction>(Opcode::ZExt,
                                                    Type(kSlice));
            zx->addOperand(u);
            zx->setName("sq.zx");
            return bb->insertBefore(before, std::move(zx));
        }

        auto tr = std::make_unique<Instruction>(Opcode::Trunc,
                                                Type(kSlice));
        tr->addOperand(u);
        tr->setName("sq.tr");
        if (candidates_.count(u) || !opts_.speculate || staticFits(u)) {
            // Producer will be narrowed (the trunc collapses to the
            // narrow def during cleanup), exact mode (dropping the
            // high bits cannot affect the demanded result bits), or
            // known-bits proved the value fits: all exact truncates.
        } else {
            bsAssert(allow_spec, "spec trunc where not allowed");
            tr->setSpeculative(true);
            tr->setSpecOrigBits(u->type().bits);
            ++stats_.specTruncs;
        }
        return bb->insertBefore(before, std::move(tr));
    }

    /** Mutate @p w in place into `zext w8` and register the mapping.
     *  Narrowed phis are relocated after the remaining phis. */
    void
    mutateToZext(Instruction *w, Value *w8)
    {
        bool was_phi = w->isPhi();
        w->setOp(Opcode::ZExt);
        w->clearOperands();
        while (!w->blockOperands().empty())
            w->removeBlockOperand(0);
        w->addOperand(w8);
        w->setSpeculative(false);
        w->setSpecOrigBits(0);
        narrowOf_[w] = w8;
        ++stats_.narrowed;

        if (was_phi) {
            // Keep the "phis first" invariant.
            BasicBlock *bb = w->parent();
            auto &insts = bb->insts();
            for (auto it = insts.begin(); it != insts.end(); ++it) {
                if (it->get() == w) {
                    auto node = std::move(*it);
                    insts.erase(it);
                    bb->insertBefore(bb->firstNonPhi(), std::move(node));
                    break;
                }
            }
        }
    }

    // ================= Exact mode (RQ2) =================

    void
    runExact()
    {
        DemandedBits db(f_);
        if (opts_.staticAnalysis)
            kb_ = std::make_unique<KnownBitsAnalysis>(f_);

        // Candidates: provably narrow results — backward (demanded
        // bits: the wide bits are never observed) or forward
        // (known bits: the wide bits are always zero).
        for (auto &bb : f_.blocks()) {
            for (auto &inst : bb->insts()) {
                if (inst->type().bits <= kSlice || !inst->type().isInt())
                    continue;
                if (!isNarrowableOp(inst->op()))
                    continue;
                if (db.demandedWidth(inst.get()) <= kSlice) {
                    candidates_.insert(inst.get());
                } else if (isStaticCandidate(inst.get())) {
                    candidates_.insert(inst.get());
                    staticSafe_.insert(inst.get());
                }
            }
        }

        // Rewrite. All truncs are exact: only the low byte of every
        // operand can influence the demanded result bits.
        for (auto &bb : f_.blocks()) {
            std::vector<Instruction *> snapshot;
            for (auto &inst : bb->insts())
                snapshot.push_back(inst.get());
            for (Instruction *w : snapshot) {
                if (!candidates_.count(w))
                    continue;
                rewriteCandidate(w, /*allow_spec=*/false);
            }
        }

        cleanupTruncs();
        simplifyTrivialPhis(f_);
        deadCodeElim(f_);
    }

    // ================= Speculative mode =================

    /** Resolve cloned instructions to the originals the profile saw. */
    const Instruction *
    profileKey(const Instruction *inst) const
    {
        auto it = cloneTarget_.find(inst);
        return it == cloneTarget_.end() ? inst : it->second;
    }

    bool
    hasProfileData(const Instruction *inst) const
    {
        return profile_.hasData(profileKey(inst));
    }

    unsigned
    targetOf(Value *u) const
    {
        if (u->isConstant())
            return requiredBits(static_cast<Constant *>(u)->value());
        if (u->kind() == ValueKind::GlobalRef)
            return 32;
        if (u->type().bits == 1)
            return 1;
        if (!u->isInstruction())
            return u->type().bits; // Arguments: no profile data.
        auto *inst = static_cast<const Instruction *>(u);
        return profile_.target(profileKey(inst), opts_.heuristic);
    }

    /** The paper's BW(v) = max(T(v), max over operands T(u)). */
    unsigned
    selectionOf(Instruction *w) const
    {
        unsigned bw = targetOf(w);
        for (Value *u : w->operands()) {
            if (w->op() == Opcode::Select && u == w->operand(0))
                continue; // Select condition is i1.
            bw = std::max(bw, targetOf(u));
        }
        return bw;
    }

    bool
    isElidableBitmask(Instruction *w) const
    {
        if (!opts_.bitmaskElision || w->op() != Opcode::And)
            return false;
        for (Value *u : w->operands()) {
            if (u->isConstant() &&
                static_cast<Constant *>(u)->value() == lowMask(kSlice)) {
                return true;
            }
        }
        return false;
    }

    void
    computeCandidates(const std::vector<BasicBlock *> &spec_blocks)
    {
        std::set<BasicBlock *> spec_set(spec_blocks.begin(),
                                        spec_blocks.end());
        for (BasicBlock *bb : spec_blocks) {
            bool idem = isIdempotent(*bb);
            for (auto &inst : bb->insts()) {
                Instruction *w = inst.get();
                if (w->type().bits <= kSlice || !w->type().isInt())
                    continue;
                if (!isNarrowableOp(w->op()))
                    continue;
                if (isElidableBitmask(w)) {
                    candidates_.insert(w);
                    elided_.insert(w);
                    continue;
                }
                // Known-bits proof: exact narrowing, exempt from the
                // profile/idempotence requirements below (the 8-bit
                // form never misspeculates, so nothing re-executes).
                if (isStaticCandidate(w)) {
                    candidates_.insert(w);
                    staticSafe_.insert(w);
                    continue;
                }
                // Misspeculating ops need an idempotent block to
                // re-execute; pure copies/logic do not.
                if (canMisspeculate(w->op()) && !idem)
                    continue;
                if (!hasProfileData(w))
                    continue;
                if (selectionOf(w) > kSlice)
                    continue;
                candidates_.insert(w);
            }
        }

        // Fixed point: phis/selects and ops in non-idempotent blocks
        // must find every operand already narrow (no speculative
        // truncates possible at their position).
        bool changed = true;
        while (changed) {
            changed = false;
            for (BasicBlock *bb : spec_blocks) {
                bool idem = isIdempotent(*bb);
                for (auto &inst : bb->insts()) {
                    Instruction *w = inst.get();
                    if (!candidates_.count(w) || elided_.count(w))
                        continue;
                    bool needs_avail =
                        w->isPhi() || w->op() == Opcode::Select || !idem;
                    if (!needs_avail)
                        continue;
                    for (size_t i = 0; i < w->numOperands(); ++i) {
                        Value *u = w->operand(i);
                        if (w->op() == Opcode::Select && i == 0)
                            continue;
                        bool avail = isNarrowConst(u) ||
                                     u->type().bits == kSlice ||
                                     candidates_.count(u) ||
                                     staticFits(u);
                        if (!avail) {
                            candidates_.erase(w);
                            changed = true;
                            break;
                        }
                    }
                }
            }
        }
    }

    /** Rewrite one candidate to the slice width. */
    void
    rewriteCandidate(Instruction *w, bool allow_spec)
    {
        BasicBlock *bb = w->parent();
        auto at = std::find_if(bb->insts().begin(), bb->insts().end(),
                               [&](const auto &p) {
                                   return p.get() == w;
                               });
        bsAssert(at != bb->insts().end(), "candidate not in its block");

        if (staticSafe_.count(w)) {
            allow_spec = false; // Known-bits proof: exact rewrite.
            ++stats_.staticNarrowed;
        }

        if (elided_.count(w)) {
            // `and x, 0xff` -> exact truncate of x (a slice move in
            // the backend); never misspeculates. x is the non-mask
            // operand: selecting on constant-ness alone picks the
            // mask itself when x is a constant too (`and 1, 0xff`
            // must truncate 1, not 0xff — found by fuzz_spec).
            Value *x = w->operand(0);
            if (x->isConstant() &&
                static_cast<Constant *>(x)->value() == lowMask(kSlice))
                x = w->operand(1);
            Value *w8;
            if (x->type().bits == kSlice) {
                w8 = x;
            } else {
                auto tr = std::make_unique<Instruction>(Opcode::Trunc,
                                                        Type(kSlice));
                tr->addOperand(x);
                tr->setName("mask8");
                w8 = bb->insertBefore(at, std::move(tr));
            }
            ++stats_.bitmasksElided;
            mutateToZext(w, w8);
            return;
        }

        switch (w->op()) {
          case Opcode::ZExt:
          case Opcode::Trunc: {
            // Pure width change: the narrow def is the (possibly
            // speculatively truncated) operand.
            Value *w8 = narrowOperand(w->operand(0), bb, at, allow_spec);
            mutateToZext(w, w8);
            return;
          }
          case Opcode::Load: {
            auto ld = std::make_unique<Instruction>(Opcode::Load,
                                                    Type(kSlice));
            ld->addOperand(w->operand(0));
            ld->setName(w->name().empty() ? "sq.ld" : w->name() + ".8");
            if (allow_spec) {
                ld->setSpeculative(true);
                ld->setSpecOrigBits(w->type().bits);
            }
            Value *w8 = bb->insertBefore(at, std::move(ld));
            mutateToZext(w, w8);
            return;
          }
          case Opcode::Phi: {
            auto phi = std::make_unique<Instruction>(Opcode::Phi,
                                                     Type(kSlice));
            phi->setName(w->name().empty() ? "sq.phi"
                                           : w->name() + ".8");
            Instruction *raw = phi.get();
            raw->setParent(bb);
            bb->insertBefore(bb->insts().begin(), std::move(phi));
            for (size_t i = 0; i < w->numOperands(); ++i) {
                BasicBlock *pred = w->blockOperand(i);
                Value *nu = narrowOperand(
                    w->operand(i), pred,
                    std::prev(pred->insts().end()),
                    /*allow_spec=*/false);
                raw->addOperand(nu);
                raw->addBlockOperand(pred);
            }
            mutateToZext(w, raw);
            return;
          }
          default: {
            auto op8 = std::make_unique<Instruction>(w->op(),
                                                     Type(kSlice));
            op8->setName(w->name().empty() ? "sq.op" : w->name() + ".8");
            for (size_t i = 0; i < w->numOperands(); ++i) {
                Value *u = w->operand(i);
                if (w->op() == Opcode::Select && i == 0) {
                    op8->addOperand(u); // i1 condition unchanged.
                    continue;
                }
                op8->addOperand(narrowOperand(u, bb, at, allow_spec));
            }
            if (allow_spec && canMisspeculate(w->op())) {
                op8->setSpeculative(true);
                op8->setSpecOrigBits(w->type().bits);
            }
            Value *w8 = bb->insertBefore(at, std::move(op8));
            mutateToZext(w, w8);
            return;
          }
        }
    }

    /** Fold an 8-bit compare whose constant side sits on the slice
     *  boundary: `ule x, 255` / `uge x, 0` are tautologies, `ugt x,
     *  255` / `ult x, 0` contradictions. */
    void
    foldBoundaryCompare(Instruction *c)
    {
        for (int side = 0; side < 2; ++side) {
            Value *k = c->operand(side);
            Value *v = c->operand(1 - side);
            if (!k->isConstant() || v->isConstant())
                continue;
            uint64_t kv = static_cast<Constant *>(k)->value();
            CmpPred p = c->pred();
            // Normalise to "v PRED k".
            if (side == 0) {
                switch (p) {
                  case CmpPred::ULT: p = CmpPred::UGT; break;
                  case CmpPred::ULE: p = CmpPred::UGE; break;
                  case CmpPred::UGT: p = CmpPred::ULT; break;
                  case CmpPred::UGE: p = CmpPred::ULE; break;
                  default: break;
                }
            }
            int result = -1; // -1: not decided.
            if (kv == lowMask(kSlice)) {
                if (p == CmpPred::ULE)
                    result = 1;
                else if (p == CmpPred::UGT)
                    result = 0;
            } else if (kv == 0) {
                if (p == CmpPred::UGE)
                    result = 1;
                else if (p == CmpPred::ULT)
                    result = 0;
            }
            if (result < 0)
                continue;
            if (v->isInstruction())
                static_cast<Instruction *>(v)->setGuard(true);
            f_.replaceAllUses(c, m_.getConst(Type::i1(), result));
            ++stats_.comparesEliminated;
            return;
        }
    }

    /** Narrow compares whose operands fit; fold compares against
     *  out-of-range constants (§3.2.4 compare elimination). */
    void
    rewriteCompares(const std::vector<BasicBlock *> &spec_blocks)
    {
        for (BasicBlock *bb : spec_blocks) {
            std::vector<Instruction *> snapshot;
            for (auto &inst : bb->insts())
                snapshot.push_back(inst.get());
            for (Instruction *c : snapshot) {
                if (c->op() != Opcode::ICmp)
                    continue;
                Value *a = c->operand(0);
                Value *b = c->operand(1);
                auto narrow_ready = [&](Value *v) {
                    return isNarrowConst(v) ||
                           v->type().bits == kSlice ||
                           narrowOf_.count(v);
                };

                if (narrow_ready(a) && narrow_ready(b)) {
                    auto at = std::find_if(
                        bb->insts().begin(), bb->insts().end(),
                        [&](const auto &p) { return p.get() == c; });
                    c->setOperand(0, narrowOperand(a, bb, at, false));
                    c->setOperand(1, narrowOperand(b, bb, at, false));
                    c->setPred(toUnsignedPred(c->pred()));
                    // A compare against the slice boundary is decided
                    // by the type alone (paper walkthrough: `ule x,
                    // 255` holds for every byte; the loop then exits
                    // via misspeculation).
                    if (opts_.compareElimination)
                        foldBoundaryCompare(c);
                    continue;
                }

                if (!opts_.compareElimination)
                    continue;

                // One side narrow, other a positive constant above the
                // slice range: the result is decided by speculation.
                Value *nv = nullptr;
                Constant *cv = nullptr;
                bool narrow_is_lhs = true;
                if (narrow_ready(a) && b->isConstant()) {
                    nv = a;
                    cv = static_cast<Constant *>(b);
                } else if (narrow_ready(b) && a->isConstant()) {
                    nv = b;
                    cv = static_cast<Constant *>(a);
                    narrow_is_lhs = false;
                }
                if (!nv || !cv)
                    continue;
                uint64_t k = cv->value();
                unsigned obits = cv->type().bits;
                // Positive, above the slice range, below the sign bit.
                bool positive = obits < 64
                                    ? k < (1ULL << (obits - 1))
                                    : k < (1ULL << 63);
                if (k <= lowMask(kSlice) || !positive)
                    continue;

                // v in [0, 255] (else we'd have misspeculated):
                // v < k, v <= k, v != k all hold; flip if the narrow
                // value is the RHS.
                bool result;
                switch (c->pred()) {
                  case CmpPred::ULT: case CmpPred::ULE:
                  case CmpPred::SLT: case CmpPred::SLE:
                    result = narrow_is_lhs;
                    break;
                  case CmpPred::UGT: case CmpPred::UGE:
                  case CmpPred::SGT: case CmpPred::SGE:
                    result = !narrow_is_lhs;
                    break;
                  case CmpPred::EQ:
                    result = false;
                    break;
                  case CmpPred::NE:
                    result = true;
                    break;
                  default:
                    continue;
                }
                // Keep the speculation that justifies the fold alive.
                if (Value *n8 = narrowOf_.count(nv) ? narrowOf_[nv]
                                                    : nullptr) {
                    if (n8->isInstruction())
                        static_cast<Instruction *>(n8)->setGuard(true);
                } else if (nv->isInstruction()) {
                    static_cast<Instruction *>(nv)->setGuard(true);
                }
                f_.replaceAllUses(c, m_.getConst(Type::i1(),
                                                 result ? 1 : 0));
                ++stats_.comparesEliminated;
            }
        }
    }

    /** Collapse `trunc(zext(x8))` placeholders to x8. Erased
     *  instructions may still be referenced from narrowOf_ or the
     *  clone map (their addresses could be reused by later
     *  allocations), so both maps are redirected first. */
    void
    cleanupTruncs()
    {
        for (auto &bb : f_.blocks()) {
            for (auto it = bb->insts().begin(); it != bb->insts().end();) {
                Instruction *t = it->get();
                if (t->op() == Opcode::Trunc && !t->isSpeculative() &&
                    t->type().bits == kSlice &&
                    t->operand(0)->isInstruction()) {
                    auto *z = static_cast<Instruction *>(t->operand(0));
                    if (z->op() == Opcode::ZExt &&
                        z->operand(0)->type().bits == kSlice) {
                        Value *repl = z->operand(0);
                        f_.replaceAllUses(t, repl);
                        for (auto &[k, v] : narrowOf_)
                            if (v == t)
                                v = repl;
                        if (cloneMap_) {
                            for (auto &[k, v] : cloneMap_->values)
                                if (v == t)
                                    v = repl;
                        }
                        it = bb->insts().erase(it);
                        continue;
                    }
                }
                ++it;
            }
        }
    }

    void
    runSpeculative()
    {
        prepareCFG(f_);
        pipelineCheckpoint(f_, "squeezer:cfg_prep");

        // Snapshot + clone: the clones become CFG_spec and take over
        // as the executable entry.
        std::vector<BasicBlock *> orig_blocks;
        for (auto &bb : f_.blocks())
            orig_blocks.push_back(bb.get());
        CloneMap cm = cloneBlocks(orig_blocks, &f_, ".spec");

        // Make the cloned entry the function entry.
        BasicBlock *spec_entry = cm.get(f_.entry());
        auto &blocks = f_.blocks();
        for (auto it = blocks.begin(); it != blocks.end(); ++it) {
            if (it->get() == spec_entry) {
                auto node = std::move(*it);
                blocks.erase(it);
                blocks.insert(blocks.begin(), std::move(node));
                break;
            }
        }

        std::vector<BasicBlock *> spec_blocks;
        std::map<BasicBlock *, BasicBlock *> orig_of;
        for (BasicBlock *ob : orig_blocks) {
            spec_blocks.push_back(cm.get(ob));
            orig_of[cm.get(ob)] = ob;
        }

        // The profile was gathered on the original instructions; remap
        // it onto the clones by resolving through the clone map when
        // targets are queried. Simplest: extend the profile keys.
        remapProfileThroughClones(cm);
        cloneMap_ = &cm;

        // Known-bits facts are computed once, on the pre-narrowing
        // function (clones included). Rewriting mutates candidates
        // into zexts, but every query for a mutated value resolves
        // through narrowOf_ first, so the stale facts are never read.
        if (opts_.staticAnalysis)
            kb_ = std::make_unique<KnownBitsAnalysis>(f_);

        computeCandidates(spec_blocks);

        for (BasicBlock *bb : spec_blocks) {
            std::vector<Instruction *> snapshot;
            for (auto &inst : bb->insts())
                snapshot.push_back(inst.get());
            for (Instruction *w : snapshot) {
                if (candidates_.count(w))
                    rewriteCandidate(w, /*allow_spec=*/true);
            }
        }

        rewriteCompares(spec_blocks);
        cleanupTruncs();

        // ---- Pass ③: regions and handlers. ----
        Liveness lv(f_, /*handler_edges=*/false);
        IRBuilder b(&m_);

        struct PendingRegion
        {
            BasicBlock *spec;
            BasicBlock *orig;
            BasicBlock *handler;
        };
        std::vector<PendingRegion> pending;

        for (BasicBlock *bb : spec_blocks) {
            bool has_spec = false;
            for (auto &inst : bb->insts())
                has_spec |= inst->isSpeculative();
            if (!has_spec)
                continue;

            BasicBlock *ob = orig_of.at(bb);
            BasicBlock *h = f_.addBlock(bb->name() + ".handler");
            SpecRegion *sr = f_.addSpecRegion();
            sr->blocks.push_back(bb);
            sr->handler = h;
            // Attribution identity: dense id at creation (stable even
            // when lint later elides siblings) plus the source line of
            // the first speculative instruction in the block.
            sr->id = static_cast<int>(f_.specRegions().size()) - 1;
            // Taint-relevant metadata: the region's checks, in block
            // order (analysis/taint.h roots; attribution counts).
            for (const auto &inst : bb->insts())
                if (inst->isSpeculative())
                    sr->checks.push_back(inst.get());
            for (const auto &inst : bb->insts()) {
                if (inst->isSpeculative() && inst->srcLine() > 0) {
                    sr->srcLine = inst->srcLine();
                    break;
                }
            }
            if (sr->srcLine == 0) {
                for (const auto &inst : bb->insts()) {
                    if (inst->srcLine() > 0) {
                        sr->srcLine = inst->srcLine();
                        break;
                    }
                }
            }
            ++stats_.regions;
            pending.push_back({bb, ob, h});
        }

        // Handlers: extend live values and branch to Orig(B). Group
        // the re-entry phis by original value for one SSA repair each.
        //
        // Liveness sets are pointer-ordered, so they are iterated via
        // a positional rank (argument index, then block/instruction
        // order): emission order — and with it the final code — must
        // not depend on heap addresses, or parallel experiment cells
        // would compile differently from serial ones.
        std::unordered_map<const Value *, unsigned> rank;
        {
            unsigned next = 0;
            for (size_t i = 0; i < f_.numArgs(); ++i)
                rank[f_.arg(i)] = next++;
            for (auto &bb : f_.blocks())
                for (auto &inst : bb->insts())
                    rank[inst.get()] = next++;
        }

        std::vector<std::pair<Value *, std::vector<AltDef>>> repairs;
        std::unordered_map<Value *, size_t> repairIndex;
        for (const PendingRegion &pr : pending) {
            b.setInsertPoint(pr.handler);
            std::vector<const Value *> live(lv.liveIn(pr.orig).begin(),
                                            lv.liveIn(pr.orig).end());
            std::sort(live.begin(), live.end(),
                      [&](const Value *x, const Value *y) {
                          return rank.at(x) < rank.at(y);
                      });
            std::vector<std::pair<Value *, Value *>> extensions;
            for (const Value *cv : live) {
                auto *v_orig = const_cast<Value *>(cv);
                if (!v_orig->type().isInt())
                    continue;
                Value *v_spec = cm.get(v_orig);
                Value *v_ext;
                auto nit = narrowOf_.find(v_spec);
                if (nit != narrowOf_.end()) {
                    v_ext = b.zext(nit->second, v_orig->type());
                } else if (v_spec->type().bits == kSlice &&
                           v_orig->type().bits > kSlice) {
                    v_ext = b.zext(v_spec, v_orig->type());
                } else {
                    v_ext = v_spec; // Already wide in CFG_spec.
                }
                extensions.emplace_back(v_orig, v_ext);
            }
            b.br(pr.orig);
            for (auto &[v_orig, v_ext] : extensions) {
                auto [it, inserted] = repairIndex.try_emplace(
                    v_orig, repairs.size());
                if (inserted)
                    repairs.push_back({v_orig, {}});
                repairs[it->second].second.push_back(
                    {pr.orig, pr.handler, v_ext});
            }
        }

        // Insertion order (region order x ranked liveness order), not
        // pointer order: repairSSA inserts phis as it goes.
        for (auto &[v_orig, alts] : repairs)
            repairSSA(f_, v_orig, alts);

        // Cleanup: dead original prologues, trivial repair phis,
        // unused zexts.
        simplifyTrivialPhis(f_);
        removeUnreachableBlocks(f_);
        simplifyTrivialPhis(f_);
        deadCodeElim(f_);
        pipelineCheckpoint(f_, "squeezer:ssa_repair");

        // ---- Lint: classify every speculative site, then drop the
        // checks the analysis proved can never fire. ----
        if (opts_.staticAnalysis) {
            LintReport report = lintFunction(f_);
            stats_.lintProvenSafe += report.provenSafe;
            stats_.lintProvenUnsafe += report.provenUnsafe;
            stats_.lintSpeculative += report.speculative;
            stats_.lintSpecLeaks += report.specLeaks;
            stats_.lintLeaksDischarged += report.leaksDischarged;
            LintElisionStats elided = applyLintVerdicts(f_, report);
            stats_.checksDropped += elided.checksDropped;
            stats_.regionsElided += elided.regionsRemoved;
            if (elided.checksDropped > 0) {
                simplifyTrivialPhis(f_);
                deadCodeElim(f_);
            }
            pipelineCheckpoint(f_, "squeezer:lint_elision");
        }
    }

    /** Make profile lookups work for cloned instructions. The profile
     *  object is shared/const, so record targets locally instead. */
    void
    remapProfileThroughClones(const CloneMap &cm)
    {
        for (auto &[ov, nv] : cm.values) {
            if (!ov->isInstruction() || !nv->isInstruction())
                continue;
            auto *oi = static_cast<Instruction *>(ov);
            auto *ni = static_cast<Instruction *>(nv);
            cloneTarget_[ni] = oi;
        }
    }

    Function &f_;
    Module &m_;
    const BitwidthProfile &profile_;
    SqueezeOptions opts_;
    SqueezeStats stats_;

    std::set<Value *> candidates_;
    std::set<Instruction *> elided_;
    std::set<const Value *> staticSafe_;
    std::unique_ptr<KnownBitsAnalysis> kb_;
    std::map<Value *, Value *> narrowOf_;
    std::vector<Instruction *> pendingTruncs_;
    std::map<const Instruction *, const Instruction *> cloneTarget_;
    CloneMap *cloneMap_ = nullptr;
};

} // namespace

SqueezeStats
squeezeFunction(Function &f, const BitwidthProfile &profile,
                const SqueezeOptions &opts)
{
    return SqueezerImpl(f, profile, opts).run();
}

SqueezeStats
squeezeModule(Module &m, const BitwidthProfile &profile,
              const SqueezeOptions &opts)
{
    trace::Span span("transform.squeeze", "compile");
    SqueezeStats total;
    for (const auto &f : m.functions())
        total += squeezeFunction(*f, profile, opts);
    {
        trace::Span s("transform.squeeze_verify", "compile");
        verifyOrDie(m, "after squeezing");
    }
    span.arg("narrowed", std::to_string(total.narrowed));
    span.arg("regions", std::to_string(total.regions));
    return total;
}

} // namespace bitspec
