#include "transform/simplify.h"

#include <map>
#include <set>

#include "analysis/cfg.h"
#include "support/bits.h"
#include "support/error.h"

namespace bitspec
{

namespace
{

/** Fold a binary/compare/cast op over constants. Returns false when the
 *  op is not safely foldable (division, unknown). */
bool
foldOp(const Instruction &inst, uint64_t &out)
{
    unsigned bits = inst.type().bits;
    auto cval = [&](size_t i) {
        return static_cast<Constant *>(inst.operand(i))->value();
    };

    switch (inst.op()) {
      case Opcode::Add:
        out = truncTo(cval(0) + cval(1), bits);
        return true;
      case Opcode::Sub:
        out = truncTo(cval(0) - cval(1), bits);
        return true;
      case Opcode::Mul:
        out = truncTo(cval(0) * cval(1), bits);
        return true;
      case Opcode::And:
        out = cval(0) & cval(1);
        return true;
      case Opcode::Or:
        out = cval(0) | cval(1);
        return true;
      case Opcode::Xor:
        out = cval(0) ^ cval(1);
        return true;
      case Opcode::Shl: {
        uint64_t amt = cval(1);
        out = amt >= bits ? 0 : truncTo(cval(0) << amt, bits);
        return true;
      }
      case Opcode::LShr: {
        uint64_t amt = cval(1);
        out = amt >= bits ? 0 : (cval(0) >> amt);
        return true;
      }
      case Opcode::AShr: {
        uint64_t amt = cval(1);
        int64_t sa = static_cast<int64_t>(sextFrom(cval(0), bits));
        out = amt >= bits ? truncTo(sa < 0 ? ~0ULL : 0, bits)
                          : truncTo(static_cast<uint64_t>(sa >> amt), bits);
        return true;
      }
      case Opcode::ICmp: {
        unsigned obits = inst.operand(0)->type().bits;
        uint64_t ua = truncTo(cval(0), obits), ub = truncTo(cval(1), obits);
        int64_t sa = static_cast<int64_t>(sextFrom(ua, obits));
        int64_t sb = static_cast<int64_t>(sextFrom(ub, obits));
        bool r = false;
        switch (inst.pred()) {
          case CmpPred::EQ: r = ua == ub; break;
          case CmpPred::NE: r = ua != ub; break;
          case CmpPred::ULT: r = ua < ub; break;
          case CmpPred::ULE: r = ua <= ub; break;
          case CmpPred::UGT: r = ua > ub; break;
          case CmpPred::UGE: r = ua >= ub; break;
          case CmpPred::SLT: r = sa < sb; break;
          case CmpPred::SLE: r = sa <= sb; break;
          case CmpPred::SGT: r = sa > sb; break;
          case CmpPred::SGE: r = sa >= sb; break;
        }
        out = r ? 1 : 0;
        return true;
      }
      case Opcode::ZExt:
        out = zextFrom(cval(0), inst.operand(0)->type().bits);
        return true;
      case Opcode::SExt:
        out = truncTo(sextFrom(cval(0), inst.operand(0)->type().bits),
                      bits);
        return true;
      case Opcode::Trunc:
        out = truncTo(cval(0), bits);
        return true;
      case Opcode::Select:
        out = cval(0) != 0 ? truncTo(cval(1), bits)
                           : truncTo(cval(2), bits);
        return true;
      default:
        return false;
    }
}

} // namespace

unsigned
simplifyTrivialPhis(Function &f)
{
    unsigned removed = 0;
    bool changed = true;
    while (changed) {
        changed = false;
        for (auto &bb : f.blocks()) {
            for (auto it = bb->insts().begin(); it != bb->insts().end();) {
                Instruction *inst = it->get();
                if (!inst->isPhi()) {
                    ++it;
                    continue;
                }
                // Find the unique operand that isn't the phi itself.
                Value *unique = nullptr;
                bool trivial = true;
                for (Value *op : inst->operands()) {
                    if (op == inst)
                        continue;
                    if (unique && unique != op) {
                        trivial = false;
                        break;
                    }
                    unique = op;
                }
                if (!trivial) {
                    ++it;
                    continue;
                }
                // Empty/self-only phis come from unreachable merges:
                // any value is acceptable; use zero.
                Value *repl = unique
                                  ? unique
                                  : f.parent()->getConst(inst->type(), 0);
                f.replaceAllUses(inst, repl);
                it = bb->insts().erase(it);
                ++removed;
                changed = true;
            }
        }
    }
    return removed;
}

unsigned
deadCodeElim(Function &f)
{
    unsigned removed = 0;
    bool changed = true;
    while (changed) {
        changed = false;
        std::set<const Value *> used;
        for (const auto &bb : f.blocks())
            for (const auto &inst : bb->insts())
                for (Value *op : inst->operands())
                    used.insert(op);

        for (auto &bb : f.blocks()) {
            for (auto it = bb->insts().begin(); it != bb->insts().end();) {
                Instruction *inst = it->get();
                bool side_effects =
                    inst->isTerm() || inst->op() == Opcode::Store ||
                    inst->isCall() || inst->isVolatileOp();
                if (!side_effects && !inst->isGuard() &&
                    !inst->type().isVoid() && !used.count(inst)) {
                    it = bb->insts().erase(it);
                    ++removed;
                    changed = true;
                } else {
                    ++it;
                }
            }
        }
    }
    return removed;
}

unsigned
constantFold(Function &f)
{
    unsigned folds = 0;
    Module *m = f.parent();
    bsAssert(m != nullptr, "constantFold: function without module");

    bool changed = true;
    while (changed) {
        changed = false;
        for (auto &bb : f.blocks()) {
            for (auto it = bb->insts().begin(); it != bb->insts().end();) {
                Instruction *inst = it->get();

                // Fold a constant conditional branch into a plain one.
                if (inst->op() == Opcode::CondBr &&
                    inst->operand(0)->isConstant()) {
                    bool taken =
                        static_cast<Constant *>(inst->operand(0))->value()
                        != 0;
                    BasicBlock *kept = inst->blockOperand(taken ? 0 : 1);
                    BasicBlock *dropped = inst->blockOperand(taken ? 1 : 0);
                    inst->setOp(Opcode::Br);
                    inst->clearOperands();
                    while (!inst->blockOperands().empty())
                        inst->removeBlockOperand(0);
                    inst->addBlockOperand(kept);
                    // The dropped edge no longer feeds phis.
                    if (dropped != kept) {
                        for (Instruction *phi : dropped->phis()) {
                            for (size_t i = phi->numOperands(); i-- > 0;) {
                                if (phi->blockOperand(i) == bb.get())
                                    phi->removePhiIncoming(i);
                            }
                        }
                    }
                    ++folds;
                    changed = true;
                    ++it;
                    continue;
                }

                // Speculative instructions carry a misspeculation side
                // effect; folding them would drop it.
                if (inst->isSpeculative() || inst->type().isVoid()) {
                    ++it;
                    continue;
                }

                bool all_const = inst->numOperands() > 0;
                for (Value *op : inst->operands())
                    all_const &= op->isConstant();
                uint64_t val = 0;
                if (all_const && !inst->isPhi() &&
                    foldOp(*inst, val)) {
                    f.replaceAllUses(inst,
                                     m->getConst(inst->type(), val));
                    it = bb->insts().erase(it);
                    ++folds;
                    changed = true;
                } else {
                    ++it;
                }
            }
        }
    }
    return folds;
}

void
simplifyFunction(Function &f)
{
    for (;;) {
        unsigned n = 0;
        n += constantFold(f);
        n += simplifyTrivialPhis(f);
        n += deadCodeElim(f);
        removeUnreachableBlocks(f);
        if (n == 0)
            return;
    }
}

void
simplifyModule(Module &m)
{
    for (const auto &f : m.functions())
        simplifyFunction(*f);
}

} // namespace bitspec
