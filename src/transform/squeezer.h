/**
 * @file
 * The squeezer (paper §3.2.3): speculatively reassigns the bitwidth of
 * variables and injects misspeculation handling.
 *
 * Speculative mode (the BitSpec system):
 *  ① prepareCFG (Eq. 4–6), then the CFG is cloned into CFG_spec
 *    (the new entry) and CFG_orig (reachable only via handlers).
 *  ② Variables whose profile-guided selection BW(v) fits a slice are
 *    rewritten to 8 bits in CFG_spec; operands are truncated
 *    (speculatively when the producer stays wide); the original
 *    instruction is mutated into a zext of the narrow clone so all
 *    wide uses keep working. One speculative region per block that
 *    may misspeculate.
 *  ③ Each region gets a handler that extends live variables to their
 *    original width and branches to Orig(B); re-entry phis (Eq. 8)
 *    and full SSA repair make the remainder of the function run at
 *    the original bitwidth, establishing Theorems 3.1/3.2 by
 *    construction.
 *
 * Exact mode (speculate = false; the paper's RQ2 "register packing
 * without speculation"): narrows only what demanded-bits analysis
 * proves, with no cloning, regions, or handlers.
 */

#ifndef BITSPEC_TRANSFORM_SQUEEZER_H_
#define BITSPEC_TRANSFORM_SQUEEZER_H_

#include "ir/module.h"
#include "profile/bitwidth_profile.h"

namespace bitspec
{

/** Squeezer configuration (ablation switches map to paper RQ2/RQ3). */
struct SqueezeOptions
{
    Heuristic heuristic = Heuristic::Max;
    /** false: exact demanded-bits narrowing only (RQ2). */
    bool speculate = true;
    /** Compare elimination (§3.2.4). */
    bool compareElimination = true;
    /** Bitmask elision: `and x, 0xff` as an exact slice move (RQ3). */
    bool bitmaskElision = true;
    /**
     * Known-bits static analysis: admits provably-narrow values as
     * exact (check-free) candidates even without profile data, and
     * runs the speculative-safety lint afterwards to drop checks the
     * analysis proves can never fire (eliding whole regions when
     * their last check disappears).
     */
    bool staticAnalysis = true;
};

/** Transformation statistics for the paper's ablation tables. */
struct SqueezeStats
{
    unsigned narrowed = 0;       ///< Instructions moved to 8 bits.
    unsigned regions = 0;        ///< Speculative regions created.
    unsigned specTruncs = 0;     ///< Speculative truncates inserted.
    unsigned comparesEliminated = 0;
    unsigned bitmasksElided = 0;
    /** Candidates admitted by known-bits proof (no profile needed). */
    unsigned staticNarrowed = 0;
    /** Speculative checks dropped by the lint (proven safe). */
    unsigned checksDropped = 0;
    /** Regions deleted after their last check was dropped. */
    unsigned regionsElided = 0;
    /** Lint verdict tallies (pre-elision classification). */
    unsigned lintProvenSafe = 0;
    unsigned lintProvenUnsafe = 0;
    unsigned lintSpeculative = 0;
    /** Undischarged speculative non-interference sinks (SpecLeak
     *  findings — see analysis/taint.h); zero on every shipped
     *  workload. */
    unsigned lintSpecLeaks = 0;
    /** Tainted sinks discharged with known-bits facts (D1/D2). */
    unsigned lintLeaksDischarged = 0;

    SqueezeStats &
    operator+=(const SqueezeStats &o)
    {
        narrowed += o.narrowed;
        regions += o.regions;
        specTruncs += o.specTruncs;
        comparesEliminated += o.comparesEliminated;
        bitmasksElided += o.bitmasksElided;
        staticNarrowed += o.staticNarrowed;
        checksDropped += o.checksDropped;
        regionsElided += o.regionsElided;
        lintProvenSafe += o.lintProvenSafe;
        lintProvenUnsafe += o.lintProvenUnsafe;
        lintSpeculative += o.lintSpeculative;
        lintSpecLeaks += o.lintSpecLeaks;
        lintLeaksDischarged += o.lintLeaksDischarged;
        return *this;
    }
};

/** Squeeze one function. The profile must have been gathered on the
 *  same module instance (instruction pointers key the statistics). */
SqueezeStats squeezeFunction(Function &f, const BitwidthProfile &profile,
                             const SqueezeOptions &opts);

/** Squeeze every function of @p m and verify the result. */
SqueezeStats squeezeModule(Module &m, const BitwidthProfile &profile,
                           const SqueezeOptions &opts);

} // namespace bitspec

#endif // BITSPEC_TRANSFORM_SQUEEZER_H_
