#include "transform/expander.h"

#include <algorithm>
#include <map>
#include <set>

#include "analysis/cfg.h"
#include "analysis/dominators.h"
#include "analysis/loops.h"
#include "analysis/verifier.h"
#include "ir/builder.h"
#include "ir/clone.h"
#include "obs/trace.h"
#include "support/error.h"
#include "transform/simplify.h"

namespace bitspec
{

namespace
{

// ====================== Inlining ======================

/** Does @p from (transitively) call @p to? */
bool
reaches(Function *from, Function *to, std::set<Function *> &visited)
{
    if (from == to)
        return true;
    if (!visited.insert(from).second)
        return false;
    for (const auto &bb : from->blocks())
        for (const auto &inst : bb->insts())
            if (inst->isCall() &&
                reaches(inst->callee(), to, visited))
                return true;
    return false;
}

bool
isRecursiveWith(Function *caller, Function *callee)
{
    std::set<Function *> visited;
    return reaches(callee, caller, visited);
}

/** Inline one call site. Returns false if it cannot be inlined. */
bool
inlineCall(Function &caller, Instruction *call)
{
    Function *callee = call->callee();
    BasicBlock *site = call->parent();
    Module *m = caller.parent();

    // Split the call block: head [.., call), tail [call+1, ..).
    BasicBlock *tail = caller.addBlock(site->name() + ".ret");
    auto &src = site->insts();
    auto pos = std::find_if(src.begin(), src.end(), [&](const auto &p) {
        return p.get() == call;
    });
    bsAssert(pos != src.end(), "call not in its block");
    auto after = std::next(pos);
    tail->insts().splice(tail->insts().begin(), src, after, src.end());
    for (auto &inst : tail->insts())
        inst->setParent(tail);

    // Successor phis now hail from the tail.
    for (BasicBlock *succ : tail->successors())
        for (Instruction *phi : succ->phis())
            for (size_t i = 0; i < phi->blockOperands().size(); ++i)
                if (phi->blockOperand(i) == site)
                    phi->setBlockOperand(i, tail);

    // Clone the callee body into the caller.
    std::vector<BasicBlock *> body;
    for (auto &bb : callee->blocks())
        body.push_back(bb.get());
    CloneMap cm = cloneBlocks(body, &caller, ".in." + callee->name());

    // Bind arguments.
    for (BasicBlock *ob : body) {
        BasicBlock *nb = cm.get(ob);
        for (auto &inst : nb->insts()) {
            for (size_t i = 0; i < inst->numOperands(); ++i) {
                Value *op = inst->operand(i);
                if (op->kind() == ValueKind::Argument) {
                    // Only callee arguments appear here: caller args
                    // cannot occur inside cloned callee code.
                    auto *arg = static_cast<Argument *>(op);
                    if (arg->index() < callee->numArgs() &&
                        callee->arg(arg->index()) == arg) {
                        inst->setOperand(i,
                                         call->operand(arg->index()));
                    }
                }
            }
        }
    }

    // Rewire returns to the tail, collecting return values.
    std::vector<std::pair<Value *, BasicBlock *>> rets;
    for (BasicBlock *ob : body) {
        BasicBlock *nb = cm.get(ob);
        Instruction *term = nb->terminator();
        if (term->op() != Opcode::Ret)
            continue;
        Value *rv = term->numOperands() ? term->operand(0) : nullptr;
        term->setOp(Opcode::Br);
        term->clearOperands();
        term->addBlockOperand(tail);
        rets.emplace_back(rv, nb);
    }
    bsAssert(!rets.empty(), "callee has no return");

    // Replace the call: head branches into the cloned entry; the call
    // itself becomes the return-value merge.
    BasicBlock *centry = cm.get(callee->entry());
    {
        // Remove the call from the head; re-purpose it as a phi (or
        // drop it for void) placed in the tail.
        std::unique_ptr<Instruction> owned = std::move(*pos);
        src.erase(pos);
        IRBuilder b(m);
        b.setInsertPoint(site);
        b.br(centry);

        if (!call->type().isVoid()) {
            call->setOp(Opcode::Phi);
            call->clearOperands();
            call->setCallee(nullptr);
            for (auto &[rv, bb] : rets) {
                call->addOperand(rv);
                call->addBlockOperand(bb);
            }
            call->setParent(tail);
            tail->insertBefore(tail->insts().begin(), std::move(owned));
        }
        // For void calls `owned` simply dies here.
    }
    return true;
}

unsigned
inlineFunction(Function &f, const ExpanderOptions &opts)
{
    unsigned inlined = 0;
    bool changed = true;
    while (changed) {
        changed = false;
        if (f.instructionCount() > opts.maxFunctionSize)
            break;
        for (auto &bb : f.blocks()) {
            for (auto &inst : bb->insts()) {
                if (!inst->isCall())
                    continue;
                Function *callee = inst->callee();
                if (isRecursiveWith(&f, callee))
                    continue;
                if (f.instructionCount() + callee->instructionCount() >
                    opts.maxFunctionSize) {
                    continue;
                }
                inlineCall(f, inst.get());
                ++inlined;
                changed = true;
                break; // Iterator invalidated: restart.
            }
            if (changed)
                break;
        }
    }
    return inlined;
}

// ====================== Unrolling ======================

/** Loop-closed SSA for a single-exit-target loop: values defined in
 *  the loop and used outside flow through phis at the exit target. */
void
makeLCSSA(Function &f, const Loop &loop, BasicBlock *exit_target)
{
    std::set<BasicBlock *> in_loop(loop.blocks.begin(),
                                   loop.blocks.end());
    // Exit edges into the target.
    std::vector<BasicBlock *> exit_preds;
    for (BasicBlock *bb : loop.blocks)
        for (BasicBlock *succ : bb->successors())
            if (succ == exit_target)
                exit_preds.push_back(bb);

    for (BasicBlock *bb : loop.blocks) {
        for (auto &inst : bb->insts()) {
            if (inst->type().isVoid())
                continue;
            // Gather outside uses.
            std::vector<std::pair<Instruction *, size_t>> outside;
            for (auto &ubb : f.blocks()) {
                bool ubb_inside = in_loop.count(ubb.get()) > 0;
                for (auto &user : ubb->insts()) {
                    for (size_t i = 0; i < user->numOperands(); ++i) {
                        if (user->operand(i) != inst.get())
                            continue;
                        bool use_inside = ubb_inside;
                        if (user->isPhi()) {
                            use_inside =
                                in_loop.count(user->blockOperand(i)) > 0;
                            // Existing exit-target phis are already
                            // loop-closed.
                            if (ubb.get() == exit_target && !use_inside)
                                use_inside = true;
                            if (ubb.get() == exit_target)
                                continue;
                        }
                        if (!use_inside)
                            outside.emplace_back(user.get(), i);
                    }
                }
            }
            if (outside.empty())
                continue;
            auto phi = std::make_unique<Instruction>(Opcode::Phi,
                                                     inst->type());
            phi->setName(inst->name() + ".lcssa");
            Instruction *raw = phi.get();
            raw->setParent(exit_target);
            for (BasicBlock *p : exit_preds) {
                raw->addOperand(inst.get());
                raw->addBlockOperand(p);
            }
            exit_target->insertBefore(exit_target->insts().begin(),
                                      std::move(phi));
            for (auto &[user, idx] : outside)
                user->setOperand(idx, raw);
        }
    }
}

/** Partially unroll @p loop by @p factor (clones body factor-1 times,
 *  keeping every exit check). Requirements checked by the caller. */
void
unrollLoop(Function &f, const Loop &loop, unsigned factor,
           BasicBlock *exit_target)
{
    makeLCSSA(f, loop, exit_target);

    BasicBlock *header = loop.header;
    BasicBlock *latch = loop.latches[0];
    std::set<BasicBlock *> in_loop(loop.blocks.begin(),
                                   loop.blocks.end());

    // Clone the body factor-1 times.
    std::vector<CloneMap> copies;
    for (unsigned k = 1; k < factor; ++k)
        copies.push_back(
            cloneBlocks(loop.blocks, &f, ".u" + std::to_string(k)));

    // Exit-target phis gain one incoming per cloned exit edge.
    for (Instruction *phi : exit_target->phis()) {
        size_t n = phi->numOperands();
        for (size_t i = 0; i < n; ++i) {
            BasicBlock *in = phi->blockOperand(i);
            if (!in_loop.count(in))
                continue;
            for (auto &cm : copies) {
                phi->addOperand(cm.get(phi->operand(i)));
                phi->addBlockOperand(cm.get(in));
            }
        }
    }

    // Rewire back edges: latch -> H1, latch_k -> H(k+1), last -> H.
    auto redirect = [&](BasicBlock *from, BasicBlock *to_header) {
        Instruction *term = from->terminator();
        for (size_t i = 0; i < term->blockOperands().size(); ++i)
            if (term->blockOperand(i) == header ||
                std::any_of(copies.begin(), copies.end(),
                            [&](CloneMap &cm) {
                                return term->blockOperand(i) ==
                                       cm.get(header);
                            })) {
                term->setBlockOperand(i, to_header);
            }
    };

    BasicBlock *h1 = copies[0].get(header);
    redirect(latch, h1);
    for (unsigned k = 0; k + 1 < copies.size(); ++k)
        redirect(copies[k].get(latch), copies[k + 1].get(header));
    redirect(copies.back().get(latch), header);

    // Original header phis: the back-edge value now comes from the
    // last copy's latch.
    CloneMap &last = copies.back();
    for (Instruction *phi : header->phis()) {
        for (size_t i = 0; i < phi->numOperands(); ++i) {
            if (phi->blockOperand(i) == latch) {
                phi->setOperand(i, last.get(phi->operand(i)));
                phi->setBlockOperand(i, last.get(latch));
            }
        }
    }

    // Cloned header phis: single predecessor (previous copy's latch);
    // keep only that incoming, with the previous copy's value.
    for (unsigned k = 0; k < copies.size(); ++k) {
        CloneMap &cm = copies[k];
        BasicBlock *hk = cm.get(header);
        BasicBlock *prev_latch =
            k == 0 ? latch : copies[k - 1].get(latch);
        for (Instruction *phi : hk->phis()) {
            // Find the original phi this was cloned from.
            // The clone's back-edge entry references cm.get(latch)'s
            // value; the previous copy's value is what actually flows.
            Value *incoming = nullptr;
            for (size_t i = 0; i < phi->numOperands(); ++i) {
                if (phi->blockOperand(i) == cm.get(latch)) {
                    // Value as computed by copy k; remap to previous
                    // copy: copy k's value v_k corresponds to v in the
                    // original; previous copy's v is (k==0 ? v :
                    // copies[k-1].get(v)). Find original by reverse
                    // lookup.
                    Value *vk = phi->operand(i);
                    Value *orig = vk;
                    for (auto &[o, n] : cm.values)
                        if (n == vk) {
                            orig = o;
                            break;
                        }
                    incoming = k == 0 ? orig : copies[k - 1].get(orig);
                }
            }
            bsAssert(incoming != nullptr,
                     "unroll: cloned header phi lost its back edge");
            while (phi->numOperands() > 0)
                phi->removePhiIncoming(0);
            phi->addOperand(incoming);
            phi->addBlockOperand(prev_latch);
        }
    }

    simplifyTrivialPhis(f);
    removeUnreachableBlocks(f);
}

unsigned
unrollFunction(Function &f, const ExpanderOptions &opts)
{
    if (opts.unrollFactor < 2)
        return 0;
    unsigned unrolled = 0;
    // One round: unroll each currently-detected loop once. (Unrolling
    // creates no new unrollable loops; nested loops are handled inner
    // first by findLoops ordering, but maps invalidate after each
    // transform, so recompute.)
    bool changed = true;
    std::set<BasicBlock *> done_headers;
    while (changed) {
        changed = false;
        DomTree dt(f);
        auto loops = findLoops(f, dt);
        for (const Loop &loop : loops) {
            if (done_headers.count(loop.header))
                continue;
            if (loop.latches.size() != 1)
                continue;
            if (loop.blocks.size() > 24)
                continue;
            size_t body_size = 0;
            for (BasicBlock *bb : loop.blocks)
                body_size += bb->insts().size();
            if (body_size > opts.maxLoopSize)
                continue;
            if (f.instructionCount() +
                    body_size * (opts.unrollFactor - 1) >
                opts.maxFunctionSize) {
                continue;
            }
            auto exits = loop.exitTargets();
            if (exits.size() != 1)
                continue;
            BasicBlock *t = exits[0];
            // All preds of the exit target must come from the loop.
            bool clean = true;
            auto preds = f.predecessors();
            for (BasicBlock *p : preds[t])
                clean &= loop.contains(p);
            if (!clean)
                continue;

            unrollLoop(f, loop, opts.unrollFactor, t);
            done_headers.insert(loop.header);
            ++unrolled;
            changed = true;
            break; // Loop structures invalidated: recompute.
        }
    }
    return unrolled;
}

} // namespace

ExpandStats
expandModule(Module &m, const ExpanderOptions &opts)
{
    ExpandStats stats;
    if (!opts.enabled)
        return stats;
    trace::Span span("transform.expand", "compile");
    for (const auto &f : m.functions()) {
        stats.inlinedCalls += inlineFunction(*f, opts);
        simplifyTrivialPhis(*f);
        stats.unrolledLoops += unrollFunction(*f, opts);
        simplifyTrivialPhis(*f);
        deadCodeElim(*f);
    }
    verifyOrDie(m, "after expansion");
    return stats;
}

} // namespace bitspec
