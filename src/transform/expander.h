/**
 * @file
 * The expander (paper §3.2.1): aggressive function inlining and loop
 * unrolling, "instantiating dynamic code paths as static control
 * flow". Expansion unlocks narrowing opportunities and trades static
 * code size for fewer dynamic instructions; BitSpec then absorbs the
 * register pressure it creates (paper §2.5, Fig. 3, RQ4).
 *
 * The search space mirrors the paper's autotuner: unroll factor, max
 * function size and max loop size.
 */

#ifndef BITSPEC_TRANSFORM_EXPANDER_H_
#define BITSPEC_TRANSFORM_EXPANDER_H_

#include "ir/module.h"

namespace bitspec
{

/** Expander knobs (the paper's autotuner search space). */
struct ExpanderOptions
{
    /** Max times any loop is unrolled (1 = no unrolling). */
    unsigned unrollFactor = 4;
    /** Max static instructions allowed in a function when inlining. */
    unsigned maxFunctionSize = 2000;
    /** Max static instructions in a loop body for it to be unrolled. */
    unsigned maxLoopSize = 60;
    /** Master switch (RQ4 disables the whole expander). */
    bool enabled = true;
};

/** Expansion statistics. */
struct ExpandStats
{
    unsigned inlinedCalls = 0;
    unsigned unrolledLoops = 0;
};

/** Inline + unroll every function of @p m per @p opts. */
ExpandStats expandModule(Module &m, const ExpanderOptions &opts);

} // namespace bitspec

#endif // BITSPEC_TRANSFORM_EXPANDER_H_
