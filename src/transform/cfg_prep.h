/**
 * @file
 * CFG preparation: pass ① of the squeezer (paper §3.2.3).
 *
 * Splits basic blocks so that:
 *  - Eq. 4: no block contains both loads and stores (no WAR
 *    dependencies; loads-only and stores-only blocks are idempotent).
 *  - Eq. 5: every call/volatile operation sits alone between
 *    terminator-free split points (non-idempotent ops isolated).
 *  - Eq. 6: no block mixes phi and non-phi instructions.
 */

#ifndef BITSPEC_TRANSFORM_CFG_PREP_H_
#define BITSPEC_TRANSFORM_CFG_PREP_H_

#include "ir/module.h"

namespace bitspec
{

/** Apply Eq. 4–6 splitting to @p f. Returns the number of splits. */
unsigned prepareCFG(Function &f);

} // namespace bitspec

#endif // BITSPEC_TRANSFORM_CFG_PREP_H_
