/**
 * @file
 * SSA repair after introducing alternate definitions of a value.
 *
 * When a misspeculation handler re-enters CFG_orig at BB_orig, every
 * value live into BB_orig gains a second definition (the phi of
 * Eq. 8 merging the handler's extension with the original). Uses
 * reachable from any BB_orig must then be rewritten, inserting join
 * phis on demand — the classic SSAUpdater problem, generalised here
 * to many handlers feeding many re-entry blocks for one value.
 */

#ifndef BITSPEC_TRANSFORM_SSA_REPAIR_H_
#define BITSPEC_TRANSFORM_SSA_REPAIR_H_

#include <vector>

#include "ir/module.h"

namespace bitspec
{

/** One re-entry point for a repaired value. */
struct AltDef
{
    /** Block entered from the handler (BB_orig). A phi is created at
     *  its top. */
    BasicBlock *block = nullptr;
    /** The handler predecessor of @p block. */
    BasicBlock *handlerPred = nullptr;
    /** Value flowing in from the handler (the Eq. 8 extension). */
    Value *handlerValue = nullptr;
};

/**
 * Rewrite uses of @p orig_def so that paths flowing through any
 * AltDef block observe the merged value, inserting phis at joins on
 * demand. Each AltDef gets a phi at the top of its block whose
 * incoming from @p handlerPred is @p handlerValue and whose other
 * incomings are the reaching definitions. Types must all match.
 */
void repairSSA(Function &f, Value *orig_def,
               const std::vector<AltDef> &alts);

} // namespace bitspec

#endif // BITSPEC_TRANSFORM_SSA_REPAIR_H_
