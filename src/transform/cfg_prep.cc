#include "transform/cfg_prep.h"

#include "ir/builder.h"
#include "support/error.h"

namespace bitspec
{

namespace
{

/**
 * Split @p bb before @p pos: instructions from @p pos onwards move to a
 * fresh block; @p bb then unconditionally branches to it. Successor
 * phis keep working because the new block inherits the terminator; no
 * phi can reference @p bb as an incoming edge anymore, so retarget
 * incoming edges of successors from bb to the tail.
 */
BasicBlock *
splitBlockBefore(Function &f, BasicBlock *bb,
                 BasicBlock::InstList::iterator pos)
{
    BasicBlock *tail = f.addBlock(bb->name() + ".split");

    // Move [pos, end) into the tail.
    auto &src = bb->insts();
    auto &dst = tail->insts();
    dst.splice(dst.begin(), src, pos, src.end());
    for (auto &inst : dst)
        inst->setParent(tail);

    // bb now falls through to tail.
    IRBuilder b(f.parent());
    b.setInsertPoint(bb);
    b.br(tail);

    // Successor phis referenced bb as the incoming block; the edge now
    // originates from the tail.
    for (BasicBlock *succ : tail->successors()) {
        for (Instruction *phi : succ->phis()) {
            for (size_t i = 0; i < phi->blockOperands().size(); ++i)
                if (phi->blockOperand(i) == bb)
                    phi->setBlockOperand(i, tail);
        }
    }
    return tail;
}

} // namespace

unsigned
prepareCFG(Function &f)
{
    unsigned splits = 0;
    // Iterate until no block needs splitting. Newly created blocks are
    // appended to f.blocks() and re-examined by the outer loop.
    bool changed = true;
    while (changed) {
        changed = false;
        for (auto &bbp : f.blocks()) {
            BasicBlock *bb = bbp.get();
            bool seen_nonphi = false;
            bool seen_load = false, seen_store = false;
            bool prev_isolated = false;

            for (auto it = bb->insts().begin(); it != bb->insts().end();
                 ++it) {
                Instruction *inst = it->get();
                if (inst->isTerm())
                    break;

                bool is_phi = inst->isPhi();
                bool isolated = inst->isCall() || inst->isVolatileOp();

                bool need_split = false;
                // Eq. 6: first non-phi after phis starts a new block.
                if (!is_phi && !seen_nonphi &&
                    it != bb->insts().begin()) {
                    need_split = true;
                }
                // Eq. 5: calls/volatiles isolated; also split right
                // after one.
                if (!need_split && seen_nonphi &&
                    (isolated || prev_isolated)) {
                    need_split = true;
                }
                // Eq. 4: loads and stores segregated.
                if (!need_split &&
                    ((inst->op() == Opcode::Load && seen_store) ||
                     (inst->op() == Opcode::Store && seen_load))) {
                    need_split = true;
                }

                if (need_split) {
                    splitBlockBefore(f, bb, it);
                    ++splits;
                    changed = true;
                    break; // Restart: the blocks vector changed.
                }

                seen_nonphi |= !is_phi;
                seen_load |= inst->op() == Opcode::Load;
                seen_store |= inst->op() == Opcode::Store;
                prev_isolated = isolated;
            }
            if (changed)
                break;
        }
    }
    return splits;
}

} // namespace bitspec
