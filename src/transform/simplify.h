/**
 * @file
 * Scalar cleanup transforms: trivial-phi simplification, dead code
 * elimination and constant folding. Used by the front-end (SSA
 * construction leaves redundant phis) and by the squeezer (paper
 * §3.2.3 pass ② ends with "a simple dead code elimination").
 */

#ifndef BITSPEC_TRANSFORM_SIMPLIFY_H_
#define BITSPEC_TRANSFORM_SIMPLIFY_H_

#include "ir/module.h"

namespace bitspec
{

/**
 * Remove phis that reference a single distinct value (besides
 * themselves), iterating to a fixed point. Phis with no operands
 * (unreachable merge points) are replaced by zero. Returns the number
 * of phis removed.
 */
unsigned simplifyTrivialPhis(Function &f);

/**
 * Remove instructions whose results are unused and which have no side
 * effects. Instructions marked as guards (compare elimination keeps the
 * speculation effect alive, §3.2.4) and speculative instructions inside
 * regions are preserved. Returns the number removed.
 */
unsigned deadCodeElim(Function &f);

/**
 * Fold instructions with all-constant operands and resolve constant
 * conditional branches. Returns the number of folds performed.
 */
unsigned constantFold(Function &f);

/** Run the full cleanup pipeline to a fixed point. */
void simplifyFunction(Function &f);

/** simplifyFunction over every function in @p m. */
void simplifyModule(Module &m);

} // namespace bitspec

#endif // BITSPEC_TRANSFORM_SIMPLIFY_H_
