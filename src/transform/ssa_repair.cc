#include "transform/ssa_repair.h"

#include <map>

#include "analysis/cfg.h"
#include "support/error.h"

namespace bitspec
{

namespace
{

class Repairer
{
  public:
    Repairer(Function &f, Value *orig, const std::vector<AltDef> &alts)
        : f_(f), orig_(orig),
          preds_(predecessorMap(f, /*handler_edges=*/false))
    {
        if (orig->isInstruction())
            origBlock_ = static_cast<Instruction *>(orig)->parent();

        // Create the re-entry phis up front so reaching-def queries
        // terminate at them.
        for (const AltDef &alt : alts) {
            auto phi = std::make_unique<Instruction>(Opcode::Phi,
                                                     orig->type());
            phi->setName("merge");
            Instruction *raw = phi.get();
            raw->setParent(alt.block);
            alt.block->insertBefore(alt.block->insts().begin(),
                                    std::move(phi));
            blockDefs_[alt.block] = raw;
            newPhis_.insert(raw);
        }

        // Collect pre-existing uses before filling phis.
        for (auto &bb : f_.blocks()) {
            for (auto &inst : bb->insts()) {
                if (newPhis_.count(inst.get()))
                    continue;
                for (size_t i = 0; i < inst->numOperands(); ++i)
                    if (inst->operand(i) == orig_)
                        uses_.push_back({inst.get(), i});
            }
        }

        // Fill the re-entry phi operands.
        for (const AltDef &alt : alts) {
            Instruction *phi = blockDefs_.at(alt.block);
            for (BasicBlock *p : preds_[alt.block]) {
                if (p == alt.handlerPred) {
                    phi->addOperand(alt.handlerValue);
                } else {
                    phi->addOperand(reachEnd(p));
                }
                phi->addBlockOperand(p);
            }
        }

        // Rewrite the collected uses.
        for (const auto &[user, index] : uses_) {
            Value *repl;
            if (user->isPhi()) {
                repl = reachEnd(user->blockOperand(index));
            } else {
                BasicBlock *bb = user->parent();
                if (blockDefs_.count(bb)) {
                    repl = blockDefs_[bb];
                } else if (bb == origBlock_ &&
                           definesBefore(orig_, user, bb)) {
                    continue; // Straight-line use after the def.
                } else {
                    repl = reachEntry(bb);
                }
            }
            user->setOperand(index, repl);
        }
    }

  private:
    static bool
    definesBefore(Value *def, Instruction *user, BasicBlock *bb)
    {
        if (!def->isInstruction())
            return true; // Arguments are defined at entry.
        for (const auto &inst : bb->insts()) {
            if (inst.get() == def)
                return true;
            if (inst.get() == user)
                return false;
        }
        return false;
    }

    Value *
    reachEnd(BasicBlock *bb)
    {
        auto it = blockDefs_.find(bb);
        if (it != blockDefs_.end())
            return it->second;
        if (bb == origBlock_)
            return orig_;
        return reachEntry(bb);
    }

    Value *
    reachEntry(BasicBlock *bb)
    {
        auto it = memo_.find(bb);
        if (it != memo_.end())
            return it->second;

        const auto &preds = preds_[bb];
        if (preds.empty()) {
            // Entry or unreachable block: only an argument can
            // legitimately reach here; otherwise any placeholder is
            // fine (valid SSA guarantees such a path never uses it).
            Value *v = orig_->isInstruction()
                           ? static_cast<Value *>(
                                 f_.parent()->getConst(orig_->type(), 0))
                           : orig_;
            memo_[bb] = v;
            return v;
        }
        if (preds.size() == 1) {
            // No placeholder memoisation: an in-progress marker would
            // leak into sibling resolutions revisiting this block
            // (shared ancestors in unrolled loops). Recursing again is
            // safe: every reachable cycle contains a join, and joins
            // memoise their phi before resolving inputs, so a second
            // traversal terminates there. Only degenerate join-less
            // cycles (unreachable garbage) need the bail-out.
            unsigned &depth = visiting_[bb];
            if (depth >= 2) {
                Value *v = orig_->isInstruction()
                               ? static_cast<Value *>(f_.parent()->getConst(
                                     orig_->type(), 0))
                               : orig_;
                memo_[bb] = v;
                return v;
            }
            ++depth;
            Value *v = reachEnd(preds[0]);
            --depth;
            memo_[bb] = v;
            return v;
        }

        // Join: speculative phi, memoised before recursion to close
        // loops. Trivial ones are cleaned by simplifyTrivialPhis.
        auto phi = std::make_unique<Instruction>(Opcode::Phi,
                                                 orig_->type());
        phi->setName("ssarep");
        Instruction *raw = phi.get();
        raw->setParent(bb);
        bb->insertBefore(bb->insts().begin(), std::move(phi));
        memo_[bb] = raw;
        for (BasicBlock *p : preds) {
            raw->addOperand(reachEnd(p));
            raw->addBlockOperand(p);
        }
        return raw;
    }

    Function &f_;
    Value *orig_;
    BasicBlock *origBlock_ = nullptr;
    std::map<const BasicBlock *, std::vector<BasicBlock *>> preds_;
    std::map<BasicBlock *, Instruction *> blockDefs_;
    std::set<Instruction *> newPhis_;
    std::map<BasicBlock *, unsigned> visiting_;
    std::map<BasicBlock *, Value *> memo_;
    std::vector<std::pair<Instruction *, size_t>> uses_;
};

} // namespace

void
repairSSA(Function &f, Value *orig_def, const std::vector<AltDef> &alts)
{
    for (const AltDef &a : alts) {
        bsAssert(a.handlerValue->type() == orig_def->type(),
                 "repairSSA: type mismatch: orig %" +
                     orig_def->name() + " " + orig_def->type().str() +
                     " vs handler value %" + a.handlerValue->name() +
                     " " + a.handlerValue->type().str() + " at " +
                     a.block->name());
        bsAssert(a.block && a.handlerPred, "repairSSA: bad alt def");
    }
    if (alts.empty())
        return;
    Repairer(f, orig_def, alts);
}

} // namespace bitspec
