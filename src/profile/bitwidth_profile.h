/**
 * @file
 * The bitwidth profiler (paper §3.2.2).
 *
 * Runs the program on representative inputs via the interpreter and
 * records, per SSA variable, the MIN / AVG / MAX of
 * RequiredBits(value) over every dynamic assignment. The target
 * selection T(v) is then one of those statistics, chosen by the
 * heuristic — more aggressive heuristics (AVG, MIN) select lower
 * widths and misspeculate more (paper Table 2).
 *
 * Values are interpreted as unsigned at their type width: a 32-bit -1
 * requires 32 bits. This makes "fits in its selection" mean "zero
 * extension reproduces the original", which is the correctness
 * condition the squeezer relies on (Squeezable?, Eq. 3).
 *
 * With the decoded engine the profiler uses the interpreter's built-in
 * value profile (dense arrays indexed by decoded instruction id) and
 * maps ids back to Instruction pointers only once per run; the
 * per-assignment std::function hook remains as the legacy-engine path.
 */

#ifndef BITSPEC_PROFILE_BITWIDTH_PROFILE_H_
#define BITSPEC_PROFILE_BITWIDTH_PROFILE_H_

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "interp/interpreter.h"
#include "ir/module.h"

namespace bitspec
{

/** Profile-guided bitwidth selection heuristic (paper Fig. 5). */
enum class Heuristic
{
    Max, ///< Least aggressive: worst case seen during profiling.
    Avg, ///< Mean required bits (rounded up).
    Min, ///< Most aggressive: best case seen.
};

const char *heuristicName(Heuristic h);

/** Per-variable dynamic bitwidth statistics. */
struct VarBitStats
{
    unsigned minBits = 64;
    unsigned maxBits = 1;
    uint64_t sumBits = 0;
    uint64_t count = 0;

    unsigned
    avgBits() const
    {
        if (count == 0)
            return 64;
        return static_cast<unsigned>((sumBits + count - 1) / count);
    }
};

/** Bitwidth profile for one module, gathered from training runs. */
class BitwidthProfile
{
  public:
    /**
     * Profile @p m by running @p fn with @p args through a fresh
     * interpreter (training input must already be loaded into the
     * module's globals). Can be called repeatedly to accumulate
     * multiple training runs.
     */
    void profileRun(Module &m, const std::string &fn = "main",
                    const std::vector<uint64_t> &args = {});

    /**
     * Profile through a caller-owned interpreter, so one training run
     * can also feed the caller's step counts / checksum. Resets @p
     * interp, runs, and accumulates. Uses the built-in value profile
     * on the decoded engine and the onAssign hook on the legacy one.
     */
    void profileRun(Interpreter &interp, const std::string &fn = "main",
                    const std::vector<uint64_t> &args = {});

    /** T(v): target bits for @p inst under @p h; the declared width
     *  when the instruction was never executed. */
    unsigned target(const Instruction *inst, Heuristic h) const;

    bool
    hasData(const Instruction *inst) const
    {
        return stats_.count(inst) > 0;
    }

    const VarBitStats *
    statsFor(const Instruction *inst) const
    {
        auto it = stats_.find(inst);
        return it == stats_.end() ? nullptr : &it->second;
    }

    /** Histogram of dynamic assignments by bitwidth class under @p h:
     *  index 0 -> 8 bits, 1 -> 16, 2 -> 32, 3 -> 64 (paper Fig. 5). */
    std::array<uint64_t, 4> classHistogram(Heuristic h) const;

    /** Total profiled dynamic assignments. */
    uint64_t totalAssignments() const;

  private:
    std::unordered_map<const Instruction *, VarBitStats> stats_;
};

} // namespace bitspec

#endif // BITSPEC_PROFILE_BITWIDTH_PROFILE_H_
