#include "profile/bitwidth_profile.h"

#include "obs/trace.h"
#include "support/bits.h"
#include "support/error.h"

namespace bitspec
{

const char *
heuristicName(Heuristic h)
{
    switch (h) {
      case Heuristic::Max: return "MAX";
      case Heuristic::Avg: return "AVG";
      case Heuristic::Min: return "MIN";
    }
    panic("heuristicName: bad heuristic");
}

void
BitwidthProfile::profileRun(Module &m, const std::string &fn,
                            const std::vector<uint64_t> &args)
{
    Interpreter interp(m);
    profileRun(interp, fn, args);
}

void
BitwidthProfile::profileRun(Interpreter &interp, const std::string &fn,
                            const std::vector<uint64_t> &args)
{
    trace::Span span("profile.train_run", "compile");
    interp.reset();
    if (interp.engine() == ExecEngine::Decoded) {
        interp.enableValueProfile();
        interp.run(fn, args);
        for (const auto &e : interp.takeValueProfile()) {
            VarBitStats &s = stats_[e.inst];
            s.minBits = std::min(s.minBits, e.minBits);
            s.maxBits = std::max(s.maxBits, e.maxBits);
            s.sumBits += e.sumBits;
            s.count += e.count;
        }
        return;
    }
    // Legacy engine: per-assignment hook.
    auto saved = interp.onAssign;
    interp.onAssign = [this](const Instruction *inst, uint64_t value) {
        unsigned bits = requiredBits(value);
        VarBitStats &s = stats_[inst];
        s.minBits = std::min(s.minBits, bits);
        s.maxBits = std::max(s.maxBits, bits);
        s.sumBits += bits;
        ++s.count;
    };
    interp.run(fn, args);
    interp.onAssign = saved;
}

unsigned
BitwidthProfile::target(const Instruction *inst, Heuristic h) const
{
    auto it = stats_.find(inst);
    if (it == stats_.end() || it->second.count == 0)
        return inst->type().bits; // Never executed: no speculation.
    const VarBitStats &s = it->second;
    switch (h) {
      case Heuristic::Max: return s.maxBits;
      case Heuristic::Avg: return s.avgBits();
      case Heuristic::Min: return s.minBits;
    }
    panic("target: bad heuristic");
}

std::array<uint64_t, 4>
BitwidthProfile::classHistogram(Heuristic h) const
{
    std::array<uint64_t, 4> hist{};
    for (const auto &[inst, s] : stats_) {
        unsigned cls = bitwidthClass(target(inst, h));
        unsigned idx = cls == 8 ? 0 : cls == 16 ? 1 : cls == 32 ? 2 : 3;
        hist[idx] += s.count;
    }
    return hist;
}

uint64_t
BitwidthProfile::totalAssignments() const
{
    uint64_t n = 0;
    for (const auto &[inst, s] : stats_)
        n += s.count;
    return n;
}

} // namespace bitspec
