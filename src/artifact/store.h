/**
 * @file
 * Persistent content-addressed artifact store: compile-once /
 * serve-many across processes (DESIGN.md "Artifact store").
 *
 * Layout: <dir>/<flavour>/<key-hex>.bsart, where <flavour> names the
 * producing build (git describe + build type + snapshot schema hash)
 * so binaries from different commits or build types never exchange
 * artifacts, and <key-hex> is the 128-bit content hash of the
 * canonical system key (workload, source hash, full config, profile
 * seed, flavour).
 *
 * Concurrency and crash safety:
 *  - Readers are lock-free: open + mmap of an immutable file that was
 *    published with a temp-file + rename() pair, so a reader sees
 *    either the complete artifact or none at all — never a torn
 *    write. Unlinking during a read is safe (POSIX keeps the mapping
 *    alive).
 *  - Writers serialize per key through a non-blocking flock on a
 *    sidecar .lock file; a losing writer simply skips the publish
 *    (the winner is writing identical content — artifacts are pure
 *    functions of their key).
 *  - Every payload is CRC-32 checked and schema-hash checked on load.
 *    Truncation, bit flips, stale schemas or any other mismatch count
 *    as `invalid`, the file is discarded, and the caller recompiles;
 *    corruption can cost time, never correctness and never a crash.
 *
 * Size bounding: after each publish the store enforces a byte budget
 * over the whole directory tree with an LRU sweep (loads touch the
 * file mtime; eviction drops oldest-read first, always sparing the
 * just-published artifact).
 */

#ifndef BITSPEC_ARTIFACT_STORE_H_
#define BITSPEC_ARTIFACT_STORE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "artifact/snapshot.h"
#include "support/hash.h"

namespace bitspec::artifact
{

/** Disk-tier counters (ExperimentStats republishes these). */
struct StoreStats
{
    uint64_t hits = 0;     ///< Artifacts served.
    uint64_t misses = 0;   ///< Key not present (clean miss).
    uint64_t writes = 0;   ///< Artifacts published.
    uint64_t invalid = 0;  ///< Corrupt/stale artifacts discarded.
    uint64_t writeSkips = 0; ///< Publishes yielded to a racing writer.
    uint64_t evictions = 0;  ///< Files removed by the size budget.
};

/**
 * One artifact directory. Thread-safe; any number of stores (in any
 * number of processes) may share a directory.
 */
class ArtifactStore
{
  public:
    /** @param dir Root directory (created on demand).
     *  @param max_bytes Size budget enforced after each publish. */
    ArtifactStore(std::string dir, uint64_t max_bytes);

    /** Build from the BITSPEC_ARTIFACT_DIR / BITSPEC_ARTIFACT_MAX_MB
     *  knobs; nullptr when the dir knob is unset or empty (store
     *  disabled — the compile-counting tests rely on that default). */
    static std::unique_ptr<ArtifactStore> fromEnv();

    /**
     * Load the artifact for @p key. @p canonical_key must be the full
     * systemKey string; it is compared against the one embedded in
     * the payload so a hash collision degrades to a miss. Returns
     * nullopt on clean miss or on any validation failure.
     */
    std::optional<SystemSnapshot> load(const Hash128 &key,
                                       const std::string &canonical_key);

    /** Publish @p snap under @p key (atomic; yields to a concurrent
     *  writer). Returns true when the artifact is on disk afterwards
     *  because this call wrote it. */
    bool publish(const Hash128 &key, const SystemSnapshot &snap);

    /** Enforce the byte budget now (also runs after each publish).
     *  @param spare Path never evicted ("" = none). */
    void gc(const std::string &spare = "");

    /** Total payload bytes currently under the store root. */
    uint64_t diskBytes() const;

    /** Absolute path an artifact for @p key would live at. */
    std::string pathFor(const Hash128 &key) const;

    const std::string &dir() const { return dir_; }
    uint64_t maxBytes() const { return maxBytes_; }
    StoreStats stats() const;

    /** On-disk header geometry (tests patch headers by offset). */
    static constexpr uint64_t kMagic = 0x3154524153420a7fULL; // "\x7f\nBSART1"
    static constexpr size_t kMagicOffset = 0;
    static constexpr size_t kSchemaOffset = 8;
    static constexpr size_t kPayloadSizeOffset = 16;
    static constexpr size_t kCrcOffset = 24;
    static constexpr size_t kHeaderBytes = 32;

  private:
    std::string dir_;      ///< Root.
    std::string flavourDir_; ///< Root + build-flavour subdirectory.
    uint64_t maxBytes_;
    mutable std::mutex mu_;
    StoreStats stats_;
};

/**
 * Identity of the producing build: git describe (baked at configure
 * time; "nogit" outside a checkout), build type, and the snapshot
 * schema hash. Folded into every system key, and used as the store
 * subdirectory, so artifacts never cross builds.
 */
const std::string &buildFlavour();

} // namespace bitspec::artifact

#endif // BITSPEC_ARTIFACT_STORE_H_
