#include "artifact/store.h"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/env.h"
#include "support/error.h"
#include "support/log.h"
#include "support/str.h"

namespace bitspec::artifact
{

namespace fs = std::filesystem;

namespace
{

/** A scoped, non-blocking exclusive flock; owns the descriptor. */
class FileLock
{
  public:
    explicit FileLock(const std::string &path)
    {
        fd_ = ::open(path.c_str(), O_CREAT | O_RDWR | O_CLOEXEC,
                     0644);
        if (fd_ >= 0 && ::flock(fd_, LOCK_EX | LOCK_NB) != 0) {
            ::close(fd_);
            fd_ = -1;
        }
    }

    ~FileLock()
    {
        if (fd_ >= 0)
            ::close(fd_); // Dropping the fd releases the flock.
    }

    FileLock(const FileLock &) = delete;
    FileLock &operator=(const FileLock &) = delete;

    bool held() const { return fd_ >= 0; }

  private:
    int fd_ = -1;
};

/** A scoped read-only mapping of a whole file. */
class MappedFile
{
  public:
    explicit MappedFile(const std::string &path)
    {
        int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
        if (fd < 0)
            return;
        struct stat st{};
        if (::fstat(fd, &st) == 0 && st.st_size > 0) {
            void *p = ::mmap(nullptr,
                             static_cast<size_t>(st.st_size),
                             PROT_READ, MAP_PRIVATE, fd, 0);
            if (p != MAP_FAILED) {
                data_ = static_cast<const uint8_t *>(p);
                size_ = static_cast<size_t>(st.st_size);
            }
        } else if (::fstat(fd, &st) == 0) {
            // Zero-byte file: exists but is unmappable; report it as
            // present-and-empty so the caller counts it invalid.
            empty_ = true;
        }
        ::close(fd); // The mapping outlives the descriptor.
    }

    ~MappedFile()
    {
        if (data_)
            ::munmap(const_cast<uint8_t *>(data_), size_);
    }

    MappedFile(const MappedFile &) = delete;
    MappedFile &operator=(const MappedFile &) = delete;

    bool present() const { return data_ != nullptr || empty_; }
    const uint8_t *data() const { return data_; }
    size_t size() const { return size_; }

  private:
    const uint8_t *data_ = nullptr;
    size_t size_ = 0;
    bool empty_ = false;
};

void
putU64(uint8_t *at, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        at[i] = static_cast<uint8_t>(v >> (8 * i));
}

uint64_t
getU64(const uint8_t *at)
{
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<uint64_t>(at[i]) << (8 * i);
    return v;
}

/** Best-effort mtime touch: publishes recency for the LRU sweep. */
void
touch(const std::string &path)
{
    ::utimensat(AT_FDCWD, path.c_str(), nullptr, 0);
}

std::string
sanitized(std::string s)
{
    for (char &c : s)
        if (!std::isalnum(static_cast<unsigned char>(c)) &&
            c != '.' && c != '-' && c != '_')
            c = '_';
    return s.empty() ? std::string("unknown") : s;
}

} // namespace

const std::string &
buildFlavour()
{
#ifdef BITSPEC_BUILD_TAG
    constexpr const char *kTag = BITSPEC_BUILD_TAG;
#else
    constexpr const char *kTag = "nogit-unknown";
#endif
    static const std::string flavour =
        sanitized(strFormat("%s-%016llx", kTag,
                            static_cast<unsigned long long>(
                                snapshotSchemaHash())));
    return flavour;
}

ArtifactStore::ArtifactStore(std::string dir, uint64_t max_bytes)
    : dir_(std::move(dir)), maxBytes_(max_bytes)
{
    bsAssert(!dir_.empty(), "artifact store needs a directory");
    flavourDir_ = (fs::path(dir_) / buildFlavour()).string();
    std::error_code ec;
    fs::create_directories(flavourDir_, ec);
    if (ec)
        fatal(strFormat("cannot create artifact dir %s: %s",
                        flavourDir_.c_str(),
                        ec.message().c_str()));
}

std::unique_ptr<ArtifactStore>
ArtifactStore::fromEnv()
{
    const std::string dir = env::getString("BITSPEC_ARTIFACT_DIR");
    if (dir.empty())
        return nullptr;
    const uint64_t max_mb = env::getUnsigned(
        "BITSPEC_ARTIFACT_MAX_MB", 512, 1, 1u << 20);
    return std::make_unique<ArtifactStore>(dir, max_mb << 20);
}

std::string
ArtifactStore::pathFor(const Hash128 &key) const
{
    return (fs::path(flavourDir_) / (key.hex() + ".bsart")).string();
}

std::optional<SystemSnapshot>
ArtifactStore::load(const Hash128 &key,
                    const std::string &canonical_key)
{
    trace::Span span("artifact.load", "compile");
    const std::string path = pathFor(key);
    MappedFile file(path);
    if (!file.present()) {
        MetricsRegistry::global().counter("artifact.disk.misses").add();
        trace::instant("artifact.miss", "compile",
                       {{"key", key.hex()}});
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.misses;
        return std::nullopt;
    }

    auto invalid = [&](const char *why) -> std::optional<SystemSnapshot> {
        // Fail to recompile, never to a crash; drop the bad file so
        // the recompile's publish can replace it.
        span.arg("invalid", why);
        log::warn("artifact: dropping invalid %s (%s)", path.c_str(),
                  why);
        MetricsRegistry::global()
            .counter("artifact.disk.invalid", {{"why", why}})
            .add();
        trace::instant("artifact.invalid", "compile",
                       {{"key", key.hex()}, {"why", why}});
        std::error_code ec;
        fs::remove(path, ec);
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.invalid;
        return std::nullopt;
    };

    if (file.size() < kHeaderBytes)
        return invalid("truncated header");
    const uint8_t *h = file.data();
    if (getU64(h + kMagicOffset) != kMagic)
        return invalid("bad magic");
    if (getU64(h + kSchemaOffset) != snapshotSchemaHash())
        return invalid("schema mismatch");
    const uint64_t payload = getU64(h + kPayloadSizeOffset);
    if (payload != file.size() - kHeaderBytes)
        return invalid("truncated payload");
    const uint32_t want_crc =
        static_cast<uint32_t>(getU64(h + kCrcOffset));
    if (crc32(h + kHeaderBytes, payload) != want_crc)
        return invalid("crc mismatch");

    SystemSnapshot snap;
    try {
        snap = decodeSnapshot(h + kHeaderBytes, payload);
    } catch (const SnapshotError &e) {
        return invalid(e.what());
    }
    if (snap.key != canonical_key)
        return invalid("key collision");

    touch(path); // LRU recency.
    MetricsRegistry::global().counter("artifact.disk.hits").add();
    trace::instant("artifact.hit", "compile", {{"key", key.hex()}});
    {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.hits;
    }
    return snap;
}

bool
ArtifactStore::publish(const Hash128 &key, const SystemSnapshot &snap)
{
    trace::Span span("artifact.publish", "compile");
    const std::string path = pathFor(key);

    // Single writer per key: a losing racer skips — the winner is
    // publishing identical content for the same key.
    FileLock lock(path + ".lock");
    if (!lock.held()) {
        std::lock_guard<std::mutex> g(mu_);
        ++stats_.writeSkips;
        return false;
    }

    const std::vector<uint8_t> payload = encodeSnapshot(snap);
    std::vector<uint8_t> header(kHeaderBytes, 0);
    putU64(header.data() + kMagicOffset, kMagic);
    putU64(header.data() + kSchemaOffset, snapshotSchemaHash());
    putU64(header.data() + kPayloadSizeOffset, payload.size());
    putU64(header.data() + kCrcOffset,
           crc32(payload.data(), payload.size()));

    // Atomic publish: readers only ever see the rename()d whole file.
    const std::string tmp =
        strFormat("%s.tmp.%ld", path.c_str(),
                  static_cast<long>(::getpid()));
    int fd = ::open(tmp.c_str(),
                    O_CREAT | O_TRUNC | O_WRONLY | O_CLOEXEC, 0644);
    if (fd < 0)
        return false;
    bool ok = true;
    auto write_all = [&](const uint8_t *p, size_t n) {
        while (n > 0) {
            ssize_t w = ::write(fd, p, n);
            if (w <= 0) {
                ok = false;
                return;
            }
            p += w;
            n -= static_cast<size_t>(w);
        }
    };
    write_all(header.data(), header.size());
    if (ok)
        write_all(payload.data(), payload.size());
    if (ok)
        ok = ::fsync(fd) == 0;
    ::close(fd);
    if (ok)
        ok = ::rename(tmp.c_str(), path.c_str()) == 0;
    if (!ok) {
        ::unlink(tmp.c_str());
        return false;
    }

    MetricsRegistry::global().counter("artifact.disk.writes").add();
    trace::instant("artifact.write", "compile",
                   {{"key", key.hex()},
                    {"bytes", std::to_string(kHeaderBytes +
                                             payload.size())}});
    {
        std::lock_guard<std::mutex> g(mu_);
        ++stats_.writes;
    }
    gc(path);
    return true;
}

uint64_t
ArtifactStore::diskBytes() const
{
    uint64_t total = 0;
    std::error_code ec;
    for (auto it = fs::recursive_directory_iterator(dir_, ec);
         !ec && it != fs::recursive_directory_iterator(); ++it) {
        if (it->is_regular_file(ec) &&
            it->path().extension() == ".bsart")
            total += it->file_size(ec);
    }
    return total;
}

void
ArtifactStore::gc(const std::string &spare)
{
    struct Entry
    {
        fs::path path;
        fs::file_time_type mtime;
        uint64_t size = 0;
    };
    std::vector<Entry> entries;
    uint64_t total = 0;
    std::error_code ec;
    for (auto it = fs::recursive_directory_iterator(dir_, ec);
         !ec && it != fs::recursive_directory_iterator(); ++it) {
        if (!it->is_regular_file(ec) ||
            it->path().extension() != ".bsart")
            continue;
        Entry e;
        e.path = it->path();
        e.mtime = fs::last_write_time(e.path, ec);
        e.size = it->file_size(ec);
        total += e.size;
        entries.push_back(std::move(e));
    }
    if (total <= maxBytes_)
        return;

    // Oldest-read first (loads touch mtime); the caller's
    // just-published artifact is spared even when it alone busts the
    // budget — evicting your own write would livelock a small store.
    std::sort(entries.begin(), entries.end(),
              [](const Entry &a, const Entry &b) {
                  return a.mtime < b.mtime;
              });
    for (const Entry &e : entries) {
        if (total <= maxBytes_)
            break;
        if (!spare.empty() && e.path == fs::path(spare))
            continue;
        std::error_code rm_ec;
        if (fs::remove(e.path, rm_ec) && !rm_ec) {
            total -= e.size;
            fs::remove(fs::path(e.path.string() + ".lock"), rm_ec);
            MetricsRegistry::global()
                .counter("artifact.disk.evictions")
                .add();
            trace::instant(
                "artifact.evict", "compile",
                {{"path", e.path.filename().string()},
                 {"bytes", std::to_string(e.size)}});
            std::lock_guard<std::mutex> g(mu_);
            ++stats_.evictions;
        }
    }
}

StoreStats
ArtifactStore::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

} // namespace bitspec::artifact
