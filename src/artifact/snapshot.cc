#include "artifact/snapshot.h"

#include <cstring>

#include "support/hash.h"
#include "support/str.h"

namespace bitspec::artifact
{

namespace
{

/** Guard against absurd element counts from corrupt length fields:
 *  nothing in this codebase compiles to programs or globals anywhere
 *  near this size, and every variable-length read is additionally
 *  bounds-checked against the remaining payload. */
constexpr uint64_t kMaxElems = 1u << 26;

class Writer
{
  public:
    void
    u8(uint8_t v)
    {
        buf_.push_back(v);
    }

    void
    u32(uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }

    void
    u64(uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }

    void
    i32(int32_t v)
    {
        u32(static_cast<uint32_t>(v));
    }

    void
    str(const std::string &s)
    {
        u32(static_cast<uint32_t>(s.size()));
        buf_.insert(buf_.end(), s.begin(), s.end());
    }

    void
    bytes(const std::vector<uint8_t> &b)
    {
        u64(b.size());
        buf_.insert(buf_.end(), b.begin(), b.end());
    }

    std::vector<uint8_t> take() { return std::move(buf_); }

  private:
    std::vector<uint8_t> buf_;
};

class Reader
{
  public:
    Reader(const uint8_t *data, size_t size)
        : p_(data), end_(data + size)
    {}

    uint8_t
    u8()
    {
        need(1);
        return *p_++;
    }

    uint32_t
    u32()
    {
        need(4);
        uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<uint32_t>(p_[i]) << (8 * i);
        p_ += 4;
        return v;
    }

    uint64_t
    u64()
    {
        need(8);
        uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<uint64_t>(p_[i]) << (8 * i);
        p_ += 8;
        return v;
    }

    int32_t
    i32()
    {
        return static_cast<int32_t>(u32());
    }

    std::string
    str()
    {
        uint32_t n = u32();
        need(n);
        std::string s(reinterpret_cast<const char *>(p_), n);
        p_ += n;
        return s;
    }

    std::vector<uint8_t>
    bytes()
    {
        uint64_t n = u64();
        need(n);
        std::vector<uint8_t> b(p_, p_ + n);
        p_ += n;
        return b;
    }

    /** Element count for a sequence whose elements occupy at least
     *  @p min_elem_bytes each; rejects counts the remaining payload
     *  cannot possibly hold, before any allocation happens. */
    uint32_t
    count(size_t min_elem_bytes)
    {
        uint32_t n = u32();
        if (n > kMaxElems ||
            static_cast<uint64_t>(n) * min_elem_bytes >
                static_cast<uint64_t>(end_ - p_))
            throw SnapshotError(
                strFormat("implausible element count %u", n));
        return n;
    }

    bool atEnd() const { return p_ == end_; }

  private:
    void
    need(uint64_t n)
    {
        if (static_cast<uint64_t>(end_ - p_) < n)
            throw SnapshotError("truncated payload");
    }

    const uint8_t *p_;
    const uint8_t *end_;
};

void
putOpnd(Writer &w, const MOpnd &o)
{
    w.u8(static_cast<uint8_t>(o.kind));
    w.u8(o.reg);
    w.u8(o.slice);
    w.u8(o.vregIsSlice ? 1 : 0);
    w.u64(static_cast<uint64_t>(o.imm));
    w.u32(o.vreg);
}

MOpnd
getOpnd(Reader &r)
{
    MOpnd o;
    uint8_t kind = r.u8();
    if (kind > static_cast<uint8_t>(MOpndKind::VReg))
        throw SnapshotError("bad operand kind");
    o.kind = static_cast<MOpndKind>(kind);
    o.reg = r.u8();
    o.slice = r.u8();
    o.vregIsSlice = r.u8() != 0;
    o.imm = static_cast<int64_t>(r.u64());
    o.vreg = r.u32();
    return o;
}

void
putInst(Writer &w, const MachInst &inst)
{
    w.u8(static_cast<uint8_t>(inst.op));
    w.u8(static_cast<uint8_t>(inst.cond));
    w.u8(inst.speculative ? 1 : 0);
    w.u8(inst.origBits);
    w.u8(static_cast<uint8_t>(inst.tag));
    w.i32(inst.target);
    putOpnd(w, inst.dst);
    putOpnd(w, inst.a);
    putOpnd(w, inst.b);
}

MachInst
getInst(Reader &r)
{
    MachInst inst;
    uint8_t op = r.u8();
    if (op > static_cast<uint8_t>(MOp::MODE))
        throw SnapshotError("bad opcode");
    inst.op = static_cast<MOp>(op);
    uint8_t cond = r.u8();
    if (cond > static_cast<uint8_t>(Cond::GE))
        throw SnapshotError("bad condition code");
    inst.cond = static_cast<Cond>(cond);
    inst.speculative = r.u8() != 0;
    inst.origBits = r.u8();
    uint8_t tag = r.u8();
    if (tag > static_cast<uint8_t>(InstTag::FrameSetup))
        throw SnapshotError("bad instruction tag");
    inst.tag = static_cast<InstTag>(tag);
    inst.target = r.i32();
    inst.dst = getOpnd(r);
    inst.a = getOpnd(r);
    inst.b = getOpnd(r);
    return inst;
}

/** Serialized MachInst size (count() plausibility floor). */
constexpr size_t kInstBytesOnDisk = 5 + 4 + 3 * (4 + 8 + 4);

void
putFunction(Writer &w, const MachFunction &mf)
{
    w.str(mf.name);
    w.i32(mf.id);
    w.u32(mf.numVRegs);
    w.u32(static_cast<uint32_t>(mf.vregIsSlice.size()));
    for (bool b : mf.vregIsSlice)
        w.u8(b ? 1 : 0);
    w.u32(mf.spillSlots);
    w.u32(static_cast<uint32_t>(mf.usedCalleeSaved.size()));
    for (unsigned reg : mf.usedCalleeSaved)
        w.u32(reg);
    w.u8(mf.hasCalls ? 1 : 0);
    w.u32(mf.lastAllocReg);
    w.u8(mf.twoAddress ? 1 : 0);
    w.u32(mf.delta);
    w.u32(mf.baseAddr);
    w.u32(mf.entryIndex);

    // Block metadata only; insts are a pre-layout artefact (see
    // header comment).
    w.u32(static_cast<uint32_t>(mf.blocks.size()));
    for (const MachBlock &mb : mf.blocks) {
        w.str(mb.name);
        w.i32(mb.id);
        w.i32(mb.handlerBlock);
        w.u8(mb.isHandler ? 1 : 0);
        w.i32(mb.regionId);
        w.i32(mb.regionSrcLine);
        w.i32(mb.regionLeakSites);
        w.i32(mb.regionLeaksDischarged);
    }

    w.u32(static_cast<uint32_t>(mf.blockIndex.size()));
    for (const auto &[block_id, code_index] : mf.blockIndex) {
        w.i32(block_id);
        w.u32(code_index);
    }

    w.u32(static_cast<uint32_t>(mf.code.size()));
    for (const MachInst &inst : mf.code)
        putInst(w, inst);
}

MachFunction
getFunction(Reader &r)
{
    MachFunction mf;
    mf.name = r.str();
    mf.id = r.i32();
    mf.numVRegs = r.u32();
    uint32_t n_slices = r.count(1);
    mf.vregIsSlice.reserve(n_slices);
    for (uint32_t i = 0; i < n_slices; ++i)
        mf.vregIsSlice.push_back(r.u8() != 0);
    mf.spillSlots = r.u32();
    uint32_t n_saved = r.count(4);
    mf.usedCalleeSaved.reserve(n_saved);
    for (uint32_t i = 0; i < n_saved; ++i)
        mf.usedCalleeSaved.push_back(r.u32());
    mf.hasCalls = r.u8() != 0;
    mf.lastAllocReg = r.u32();
    mf.twoAddress = r.u8() != 0;
    mf.delta = r.u32();
    mf.baseAddr = r.u32();
    mf.entryIndex = r.u32();

    uint32_t n_blocks = r.count(4 * 6 + 1 + 4);
    mf.blocks.reserve(n_blocks);
    for (uint32_t i = 0; i < n_blocks; ++i) {
        MachBlock mb;
        mb.name = r.str();
        mb.id = r.i32();
        mb.handlerBlock = r.i32();
        mb.isHandler = r.u8() != 0;
        mb.regionId = r.i32();
        mb.regionSrcLine = r.i32();
        mb.regionLeakSites = r.i32();
        mb.regionLeaksDischarged = r.i32();
        mf.blocks.push_back(std::move(mb));
    }

    uint32_t n_index = r.count(8);
    for (uint32_t i = 0; i < n_index; ++i) {
        int32_t block_id = r.i32();
        mf.blockIndex[block_id] = r.u32();
    }

    uint32_t n_code = r.count(kInstBytesOnDisk);
    mf.code.reserve(n_code);
    for (uint32_t i = 0; i < n_code; ++i)
        mf.code.push_back(getInst(r));
    return mf;
}

void
putSqueezeStats(Writer &w, const SqueezeStats &s)
{
    w.u32(s.narrowed);
    w.u32(s.regions);
    w.u32(s.specTruncs);
    w.u32(s.comparesEliminated);
    w.u32(s.bitmasksElided);
    w.u32(s.staticNarrowed);
    w.u32(s.checksDropped);
    w.u32(s.regionsElided);
    w.u32(s.lintProvenSafe);
    w.u32(s.lintProvenUnsafe);
    w.u32(s.lintSpeculative);
    w.u32(s.lintSpecLeaks);
    w.u32(s.lintLeaksDischarged);
}

SqueezeStats
getSqueezeStats(Reader &r)
{
    SqueezeStats s;
    s.narrowed = r.u32();
    s.regions = r.u32();
    s.specTruncs = r.u32();
    s.comparesEliminated = r.u32();
    s.bitmasksElided = r.u32();
    s.staticNarrowed = r.u32();
    s.checksDropped = r.u32();
    s.regionsElided = r.u32();
    s.lintProvenSafe = r.u32();
    s.lintProvenUnsafe = r.u32();
    s.lintSpeculative = r.u32();
    s.lintSpecLeaks = r.u32();
    s.lintLeaksDischarged = r.u32();
    return s;
}

} // namespace

uint64_t
snapshotSchemaHash()
{
    Hash128Builder h;
    h.updateU64(kSnapshotFormatVersion);
    // Struct layouts: a new/removed field changes the sizeof even
    // when the explicit encoder has not caught up yet, so the store
    // fails closed (recompile) rather than serving misdecoded data.
    h.updateU64(sizeof(MOpnd));
    h.updateU64(sizeof(MachInst));
    h.updateU64(sizeof(MachBlock));
    h.updateU64(sizeof(MachFunction));
    h.updateU64(sizeof(MachProgram));
    h.updateU64(sizeof(BackendStats));
    h.updateU64(sizeof(SqueezeStats));
    h.updateU64(sizeof(ExpandStats));
    // Enum surfaces: appending an opcode/tag keeps sizeof stable but
    // must still invalidate (old files could now decode to wrong
    // semantics on a renumber).
    h.updateU64(static_cast<uint64_t>(MOp::MODE));
    h.updateU64(static_cast<uint64_t>(Cond::GE));
    h.updateU64(static_cast<uint64_t>(MOpndKind::VReg));
    h.updateU64(static_cast<uint64_t>(InstTag::FrameSetup));
    return h.digest().hi ^ h.digest().lo;
}

std::vector<uint8_t>
encodeSnapshot(const SystemSnapshot &snap)
{
    Writer w;
    w.u32(kSnapshotFormatVersion);
    w.u64(snapshotSchemaHash());
    w.str(snap.key);

    const MachProgram &prog = snap.program;
    w.u32(static_cast<uint32_t>(prog.funcs.size()));
    for (const MachFunction &mf : prog.funcs)
        putFunction(w, mf);
    w.i32(prog.entryFunc);
    w.u32(static_cast<uint32_t>(prog.flat.size()));
    for (const MachInst &inst : prog.flat)
        putInst(w, inst);
    w.u32(static_cast<uint32_t>(prog.funcOfIndex.size()));
    for (uint32_t f : prog.funcOfIndex)
        w.u32(f);

    w.u32(snap.backendStats.staticSpillLoads);
    w.u32(snap.backendStats.staticSpillStores);
    w.u32(snap.backendStats.staticCopies);
    w.u32(snap.backendStats.spilledVRegs);
    w.u32(snap.backendStats.staticInsts);
    w.u32(snap.backendStats.skeletonInsts);
    putSqueezeStats(w, snap.squeezeStats);
    w.u32(snap.expandStats.inlinedCalls);
    w.u32(snap.expandStats.unrolledLoops);
    w.u64(snap.profiledIrSteps);

    w.u32(static_cast<uint32_t>(snap.globals.size()));
    for (const SystemSnapshot::GlobalImage &g : snap.globals) {
        w.str(g.name);
        w.u32(g.elemBits);
        w.u64(g.elemCount);
        w.u32(g.address);
        w.bytes(g.data);
    }
    return w.take();
}

SystemSnapshot
decodeSnapshot(const uint8_t *data, size_t size)
{
    Reader r(data, size);
    uint32_t version = r.u32();
    if (version != kSnapshotFormatVersion)
        throw SnapshotError(
            strFormat("format version %u, expected %u", version,
                      kSnapshotFormatVersion));
    uint64_t schema = r.u64();
    if (schema != snapshotSchemaHash())
        throw SnapshotError("schema hash mismatch (stale artifact)");

    SystemSnapshot snap;
    snap.key = r.str();

    uint32_t n_funcs = r.count(16);
    snap.program.funcs.reserve(n_funcs);
    for (uint32_t i = 0; i < n_funcs; ++i)
        snap.program.funcs.push_back(getFunction(r));
    snap.program.entryFunc = r.i32();
    uint32_t n_flat = r.count(kInstBytesOnDisk);
    snap.program.flat.reserve(n_flat);
    for (uint32_t i = 0; i < n_flat; ++i)
        snap.program.flat.push_back(getInst(r));
    uint32_t n_foi = r.count(4);
    snap.program.funcOfIndex.reserve(n_foi);
    for (uint32_t i = 0; i < n_foi; ++i)
        snap.program.funcOfIndex.push_back(r.u32());

    snap.backendStats.staticSpillLoads = r.u32();
    snap.backendStats.staticSpillStores = r.u32();
    snap.backendStats.staticCopies = r.u32();
    snap.backendStats.spilledVRegs = r.u32();
    snap.backendStats.staticInsts = r.u32();
    snap.backendStats.skeletonInsts = r.u32();
    snap.squeezeStats = getSqueezeStats(r);
    snap.expandStats.inlinedCalls = r.u32();
    snap.expandStats.unrolledLoops = r.u32();
    snap.profiledIrSteps = r.u64();

    uint32_t n_globals = r.count(4 + 4 + 8 + 4 + 8);
    snap.globals.reserve(n_globals);
    for (uint32_t i = 0; i < n_globals; ++i) {
        SystemSnapshot::GlobalImage g;
        g.name = r.str();
        g.elemBits = r.u32();
        if (g.elemBits != 8 && g.elemBits != 16 && g.elemBits != 32 &&
            g.elemBits != 64)
            throw SnapshotError("bad global element width");
        g.elemCount = r.u64();
        g.address = r.u32();
        g.data = r.bytes();
        if (g.elemCount > kMaxElems ||
            g.data.size() != g.elemCount * (g.elemBits / 8))
            throw SnapshotError("global image size mismatch");
        snap.globals.push_back(std::move(g));
    }
    if (!r.atEnd())
        throw SnapshotError("trailing bytes after snapshot");
    return snap;
}

} // namespace bitspec::artifact
