/**
 * @file
 * Versioned binary (de)serialization of a compiled System snapshot —
 * the value side of the on-disk artifact store (DESIGN.md "Artifact
 * store").
 *
 * A SystemSnapshot carries everything a warm-started System needs to
 * serve runs bit-identically to a fresh compile: the linked
 * MachProgram (including the per-function block metadata and
 * blockIndex that AttributionMap / BlockMap reconstruct their
 * flat-index partitions from), the post-profiling global-data images
 * the run loop restores before every input, and the compile-time
 * stats (squeeze/lint, expander, backend, profiled IR steps) that
 * RunResult republishes. Per-block instruction lists are deliberately
 * omitted: they are consumed only by pre-layout passes, and every
 * post-layout consumer reads `code`/`flat` (tests/artifact's
 * differential guard enforces that this stays true).
 *
 * The encoding is explicit little-endian with no struct memcpy, so a
 * snapshot written by any build decodes on any other — *if* the
 * schema still matches. snapshotSchemaHash() folds the format version
 * with the sizeof of every serialized struct and the last enumerator
 * of every serialized enum; adding a field or an opcode changes the
 * hash, and the store treats the mismatch as a miss, so stale
 * artifact files self-invalidate instead of deserializing garbage.
 *
 * decodeSnapshot is fully bounds-checked and throws SnapshotError on
 * any malformed input; it never crashes or reads out of bounds. The
 * store maps that to "recompile and overwrite".
 */

#ifndef BITSPEC_ARTIFACT_SNAPSHOT_H_
#define BITSPEC_ARTIFACT_SNAPSHOT_H_

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "backend/mir.h"
#include "transform/expander.h"
#include "transform/squeezer.h"

namespace bitspec::artifact
{

/** Bump on any incompatible encoding change. Participates in
 *  snapshotSchemaHash(), so a bump alone invalidates old files. */
constexpr uint32_t kSnapshotFormatVersion = 1;

/** Malformed snapshot bytes (truncation, bad enum, bad sizes). */
class SnapshotError : public std::runtime_error
{
  public:
    explicit SnapshotError(const std::string &msg)
        : std::runtime_error("snapshot: " + msg)
    {}
};

/** Serializable image of one compiled System. */
struct SystemSnapshot
{
    /** One global's identity + post-profiling byte image. */
    struct GlobalImage
    {
        std::string name;
        uint32_t elemBits = 32;
        uint64_t elemCount = 0;
        uint32_t address = 0;
        std::vector<uint8_t> data;
    };

    /** Canonical ExperimentRunner::systemKey string of the compile
     *  this snapshot captures. The store compares it on load, so even
     *  a 128-bit key collision cannot serve the wrong System. */
    std::string key;

    MachProgram program;
    BackendStats backendStats;
    SqueezeStats squeezeStats;
    ExpandStats expandStats;
    uint64_t profiledIrSteps = 0;
    std::vector<GlobalImage> globals;
};

/**
 * Schema fingerprint baked from struct layouts (sizeof of every
 * serialized struct, last enumerator of every serialized enum) plus
 * kSnapshotFormatVersion. Identical across processes of the same
 * build; changes whenever the serialized surface changes shape.
 */
uint64_t snapshotSchemaHash();

/** Serialize @p snap (schema-hash prefixed, self-contained). */
std::vector<uint8_t> encodeSnapshot(const SystemSnapshot &snap);

/** Parse @p size bytes at @p data; throws SnapshotError on any
 *  malformed input, including a schema-hash mismatch. */
SystemSnapshot decodeSnapshot(const uint8_t *data, size_t size);

} // namespace bitspec::artifact

#endif // BITSPEC_ARTIFACT_SNAPSHOT_H_
