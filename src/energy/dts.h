/**
 * @file
 * Dynamic timing slack (DTS) model: the paper's RQ8 composition with
 * Time Squeezing [Fan et al., ISCA'19].
 *
 * The compiler-side estimator assigns each instruction class a
 * critical-path fraction (how much of the clock period its slowest
 * path uses). A per-instruction programmable clock (multi-phase
 * ADPLL) squeezes the period to that fraction; equivalently, supply
 * voltage is lowered until the path fills the period, scaling dynamic
 * energy by (V/Vnom)^2 via the alpha-power-law delay model
 * [Sakurai-Newton], with RazorII-style error recovery charged per
 * instruction.
 *
 * Following the paper's finding, the shipped estimator is
 * width-agnostic: 8-bit ALU ops get the same fraction as 32-bit ones,
 * so DTS+BitSpec multiplies rather than super-composes. A width-aware
 * oracle variant (the paper's proposed future work) is provided for
 * the ablation bench.
 */

#ifndef BITSPEC_ENERGY_DTS_H_
#define BITSPEC_ENERGY_DTS_H_

#include "energy/model.h"
#include "uarch/counters.h"

namespace bitspec
{

/** DTS configuration. */
struct DtsParams
{
    double vNominal = 1.2;  ///< Volts.
    double vThreshold = 0.35;
    double alpha = 1.3;     ///< Alpha-power-law exponent.
    double vMin = 0.7;      ///< Safe lower rail.

    /** @name Critical-path fractions per instruction class. */
    /// @{
    double fracLogic = 0.62;   ///< Moves, logic, extensions.
    double fracAddSub = 0.78;  ///< Carry chain.
    double fracMulDiv = 1.0;
    double fracMem = 0.95;     ///< Cache access path.
    double fracBranch = 0.7;
    /// @}

    /** Width-aware estimation (paper future work): 8-bit ALU carry
     *  chains are shorter, exposing more slack. */
    bool widthAware = false;
    double fracAddSub8 = 0.55;
    double fracLogic8 = 0.5;

    /** RazorII error recovery: error probability per squeezed
     *  instruction and flush penalty energy (pJ). */
    double errorRate = 1e-4;
    double recoveryEnergy = 60.0;
};

/** Result of applying DTS scaling to a run. */
struct DtsResult
{
    double scaledEnergy = 0;   ///< pJ after voltage scaling.
    double meanVoltage = 0;    ///< Activity-weighted supply voltage.
    double recoveryOverhead = 0;
};

/**
 * Voltage at which a path using @p frac of the nominal period exactly
 * fills it, per the alpha-power delay model (bisection solve).
 */
double voltageForSlack(double frac, const DtsParams &p);

/**
 * Apply DTS to a finished run: dynamic energy components scale with
 * (V/Vnom)^2 weighted by each class's share of events; the pipeline
 * component scales with the mean voltage.
 */
DtsResult applyDts(const EnergyBreakdown &e, const ActivityCounters &c,
                   const DtsParams &p = {});

} // namespace bitspec

#endif // BITSPEC_ENERGY_DTS_H_
