#include "energy/model.h"

namespace bitspec
{

EnergyBreakdown
computeEnergy(const Core &core, const EnergyParams &p)
{
    return computeEnergy(core.counters(), core.memory(), p);
}

EnergyBreakdown
computeEnergy(const ActivityCounters &c, const MemoryHierarchy &m,
              const EnergyParams &p)
{
    EnergyBreakdown e;
    e.alu = p.alu32 * static_cast<double>(c.alu32) +
            p.alu8 * static_cast<double>(c.alu8) +
            p.mulDiv * static_cast<double>(c.mulDiv);
    e.regfile = p.rfRead32 * static_cast<double>(c.rfRead32) +
                p.rfWrite32 * static_cast<double>(c.rfWrite32) +
                p.rfRead8 * static_cast<double>(c.rfRead8) +
                p.rfWrite8 * static_cast<double>(c.rfWrite8);

    // Fetch side: every instruction accesses the I$; misses go to L2
    // (and DRAM). L2/DRAM energy is charged to the requesting side.
    double i_l2 = static_cast<double>(m.l1i().misses);
    e.icache = p.icacheAccess * static_cast<double>(m.l1i().accesses) +
               p.l2Access * i_l2;

    double d_l2 = static_cast<double>(m.l1d().misses) +
                  static_cast<double>(m.l1d().writebacks);
    e.dcache = p.dcacheAccess * static_cast<double>(m.l1d().accesses) +
               p.l2Access * d_l2 +
               p.dramAccess * static_cast<double>(m.dram().reads +
                                                  m.dram().writes);

    e.pipeline = p.pipelinePerCycle * static_cast<double>(c.cycles) +
                 p.misspecRecovery *
                     static_cast<double>(c.misspeculations);
    return e;
}

double
energyPerInstruction(const EnergyBreakdown &e, const ActivityCounters &c)
{
    if (c.instructions == 0)
        return 0.0;
    return e.total() / static_cast<double>(c.instructions);
}

} // namespace bitspec
