#include "energy/dts.h"

#include <cmath>

#include "support/error.h"

namespace bitspec
{

namespace
{

/** Alpha-power-law gate delay, normalised so delay(vNominal) == 1. */
double
normalizedDelay(double v, const DtsParams &p)
{
    double num = v / std::pow(v - p.vThreshold, p.alpha);
    double den =
        p.vNominal / std::pow(p.vNominal - p.vThreshold, p.alpha);
    return num / den;
}

} // namespace

double
voltageForSlack(double frac, const DtsParams &p)
{
    bsAssert(frac > 0.0 && frac <= 1.0, "voltageForSlack: bad fraction");
    // Find v with delay(v) == 1 / frac (path may be 1/frac times
    // slower and still fit the period).
    double target = 1.0 / frac;
    double lo = p.vMin, hi = p.vNominal;
    if (normalizedDelay(lo, p) < target)
        return lo; // Even the minimum rail meets timing.
    for (int i = 0; i < 60; ++i) {
        double mid = 0.5 * (lo + hi);
        if (normalizedDelay(mid, p) > target)
            lo = mid;
        else
            hi = mid;
    }
    return hi;
}

DtsResult
applyDts(const EnergyBreakdown &e, const ActivityCounters &c,
         const DtsParams &p)
{
    // Event counts per class.
    double add_sub32 = static_cast<double>(c.alu32);
    double add_sub8 = static_cast<double>(c.alu8);
    double muldiv = static_cast<double>(c.mulDiv);
    double mem = static_cast<double>(c.loads + c.stores);
    double branch = static_cast<double>(c.branches + c.calls);
    double total = add_sub32 + add_sub8 + muldiv + mem + branch;
    if (total <= 0)
        return {e.total(), p.vNominal, 0.0};

    auto scale = [&](double frac) {
        double v = voltageForSlack(frac, p);
        return (v / p.vNominal) * (v / p.vNominal);
    };

    double s32 = scale(p.fracAddSub);
    double s8 = scale(p.widthAware ? p.fracAddSub8 : p.fracAddSub);
    double slogic8 = scale(p.widthAware ? p.fracLogic8 : p.fracLogic);
    double smul = scale(p.fracMulDiv);
    double smem = scale(p.fracMem);
    double sbr = scale(p.fracBranch);
    double slogic = scale(p.fracLogic);

    // Voltage-squared factor weighted by each class's event share.
    // ALU-class energy splits between carry-chain paths and logic
    // paths; a 60/40 split is typical of the MiBench mixes.
    double alu_scale32 = 0.6 * s32 + 0.4 * slogic;
    double alu_scale8 = 0.6 * s8 + 0.4 * slogic8;
    double alu_scale =
        (add_sub32 * alu_scale32 + add_sub8 * alu_scale8 +
         muldiv * smul) /
        std::max(1.0, add_sub32 + add_sub8 + muldiv);

    DtsResult out;
    double mean_scale =
        (add_sub32 * alu_scale32 + add_sub8 * alu_scale8 +
         muldiv * smul + mem * smem + branch * sbr) /
        total;

    out.scaledEnergy = e.alu * alu_scale +
                       e.regfile * mean_scale +
                       e.dcache * smem +
                       e.icache * mean_scale +
                       e.pipeline * mean_scale;

    out.recoveryOverhead = p.errorRate * total * p.recoveryEnergy;
    out.scaledEnergy += out.recoveryOverhead;

    out.meanVoltage = p.vNominal * std::sqrt(mean_scale);
    return out;
}

} // namespace bitspec
