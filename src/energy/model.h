/**
 * @file
 * Per-event energy model standing in for the paper's 45 nm gate-level
 * implementation (paper §4.1).
 *
 * Each architectural event carries a fixed energy cost; total energy
 * is the dot product with the activity counters plus a per-cycle
 * pipeline cost (clock tree, control, leakage) that also charges
 * stall cycles — reproducing the paper's observation that removing
 * loads reduces both D$ and pipeline energy. The 8-bit register-file
 * and ALU events cost a quarter of their 32-bit counterparts (paper
 * RQ1: "8-bit register slice accesses incur 1/4 the energy").
 *
 * Absolute joules differ from the authors' Synopsys flow; relative
 * trends (component breakdown, BASELINE vs BITSPEC deltas) are what
 * the substitution preserves.
 */

#ifndef BITSPEC_ENERGY_MODEL_H_
#define BITSPEC_ENERGY_MODEL_H_

#include "uarch/cache.h"
#include "uarch/core.h"
#include "uarch/counters.h"

namespace bitspec
{

/** Per-event energies in picojoules (45 nm-class, 1.2 V). */
struct EnergyParams
{
    double alu32 = 3.0;
    double alu8 = 0.75;        ///< Quarter-width ALU slice.
    double mulDiv = 9.0;
    double rfRead32 = 1.2;
    double rfWrite32 = 1.8;
    double rfRead8 = 0.3;      ///< 1/4 of the 32-bit access (RQ1).
    double rfWrite8 = 0.45;
    double icacheAccess = 6.0;
    double dcacheAccess = 8.0;
    double l2Access = 30.0;
    double dramAccess = 1500.0;
    double pipelinePerCycle = 5.0;
    double misspecRecovery = 20.0;
};

/** Component breakdown matching paper Fig. 9. */
struct EnergyBreakdown
{
    double alu = 0;
    double regfile = 0;
    double dcache = 0;   ///< Includes the data-side L2/DRAM energy.
    double icache = 0;   ///< Includes the fetch-side L2/DRAM energy.
    double pipeline = 0; ///< Cycle-proportional + recovery.

    double
    total() const
    {
        return alu + regfile + dcache + icache + pipeline;
    }
};

/** Evaluate the model on one finished run's raw observables (any
 *  core engine). */
EnergyBreakdown computeEnergy(const ActivityCounters &counters,
                              const MemoryHierarchy &mem,
                              const EnergyParams &params = {});

/** Evaluate the model on one finished core run. */
EnergyBreakdown computeEnergy(const Core &core,
                              const EnergyParams &params = {});

/** Energy per instruction (pJ/instr). */
double energyPerInstruction(const EnergyBreakdown &e,
                            const ActivityCounters &c);

} // namespace bitspec

#endif // BITSPEC_ENERGY_MODEL_H_
