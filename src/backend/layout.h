/**
 * @file
 * Code layout (paper §3.3.4): prologue/epilogue insertion, immediate
 * legalisation, region-contiguous block placement, skeleton-block
 * generation and Δ computation, branch resolution and program
 * linking.
 *
 * Every instruction of the contiguous speculative-region area gets a
 * skeleton slot at +Δ holding a branch to its region's handler, so
 * the hardware's PC += Δ redirect lands on the right landing pad for
 * any misspeculating instruction.
 */

#ifndef BITSPEC_BACKEND_LAYOUT_H_
#define BITSPEC_BACKEND_LAYOUT_H_

#include "backend/mir.h"

namespace bitspec
{

/** Lay out one function: frame code, legal immediates, block order,
 *  skeletons, local branch resolution. Returns skeleton count. */
unsigned layoutFunction(MachFunction &mf);

/**
 * Link laid-out functions into one program: assign addresses, resolve
 * BL targets and produce the flat instruction stream, prefixed with a
 * _start stub (stack setup, call main, HALT).
 */
MachProgram linkProgram(std::vector<MachFunction> funcs, int entry_func);

} // namespace bitspec

#endif // BITSPEC_BACKEND_LAYOUT_H_
