/**
 * @file
 * Machine IR: the backend's representation between instruction
 * selection and final layout (paper §3.3, SMIR).
 *
 * Virtual registers come in two classes: W (32-bit register) and B
 * (8-bit register slice). On the baseline ISA the selector never
 * creates B vregs, so the allocator is ISA-agnostic: slice packing
 * falls out of the operand classes alone.
 */

#ifndef BITSPEC_BACKEND_MIR_H_
#define BITSPEC_BACKEND_MIR_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "isa/isa.h"

namespace bitspec
{

/** A machine basic block. */
struct MachBlock
{
    std::string name;
    int id = -1;
    std::vector<MachInst> insts;
    /** Handler block id when this block is in a speculative region;
     *  -1 otherwise (SMIR region membership). */
    int handlerBlock = -1;
    /** True when this block is a misspeculation handler. */
    bool isHandler = false;
    /** IR SpecRegion id this block belongs to (member blocks) or
     *  serves (handler blocks); -1 outside any region. Carried from
     *  the squeezer for misspeculation attribution. */
    int regionId = -1;
    /** Source line of the region (SpecRegion::srcLine); 0 unknown. */
    int regionSrcLine = 0;
    /** Speculative non-interference verdict of the region, carried
     *  from the final lint (SpecRegion::leakSites/leaksDischarged) so
     *  misspeculation attribution can report leak sites next to heat:
     *  undischarged taint sinks and sinks discharged by D1/D2/D5. */
    int regionLeakSites = 0;
    int regionLeaksDischarged = 0;

    /** Successor block ids from the trailing branch instructions. */
    std::vector<int>
    successors() const
    {
        std::vector<int> out;
        for (auto it = insts.rbegin(); it != insts.rend(); ++it) {
            if (it->op == MOp::B) {
                out.push_back(it->target);
            } else {
                break;
            }
        }
        return out;
    }
};

/** A machine function. */
struct MachFunction
{
    std::string name;
    int id = -1;
    std::vector<MachBlock> blocks; ///< blocks[i].id == i; [0] = entry.
    uint32_t numVRegs = 0;
    std::vector<bool> vregIsSlice; ///< Indexed by vreg id.

    /** Post-allocation frame info. */
    unsigned spillSlots = 0;
    std::vector<unsigned> usedCalleeSaved;
    bool hasCalls = false;

    /** Highest allocatable register (r11; r7 for Thumb-like). */
    unsigned lastAllocReg = 11;
    /** Two-address ALU constraint (Thumb-like). */
    bool twoAddress = false;

    /** Post-layout artefacts. */
    std::vector<MachInst> code;       ///< Flat, branch targets local.
    std::map<int, uint32_t> blockIndex; ///< Block id -> code index.
    uint32_t delta = 0;               ///< Misspec redirect distance.
    uint32_t baseAddr = 0;            ///< Assigned at link.
    uint32_t entryIndex = 0;          ///< Code index of the entry block.

    uint32_t
    newVReg(bool is_slice)
    {
        vregIsSlice.push_back(is_slice);
        return numVRegs++;
    }
};

/** A linked machine program. */
struct MachProgram
{
    static constexpr uint32_t kCodeBase = 0x400000;
    static constexpr uint32_t kStackTop = 0x3ffff0;
    static constexpr uint32_t kHaltAddr = 0xdead0000;

    std::vector<MachFunction> funcs;
    int entryFunc = -1;

    /** Fully linked instruction stream; index i lives at
     *  kCodeBase + i * kInstBytes. B/BL targets are flat indices. */
    std::vector<MachInst> flat;
    /** Per-function delta (flat-index granularity misspec redirect
     *  uses byte distance; delta is in bytes). */
    std::vector<uint32_t> funcOfIndex;

    uint32_t
    addrOf(uint32_t flat_index) const
    {
        return kCodeBase + flat_index * kInstBytes;
    }

    uint32_t
    indexOf(uint32_t addr) const
    {
        return (addr - kCodeBase) / kInstBytes;
    }
};

/** Backend statistics for the Fig. 10 accounting. */
struct BackendStats
{
    unsigned staticSpillLoads = 0;
    unsigned staticSpillStores = 0;
    unsigned staticCopies = 0;
    unsigned spilledVRegs = 0;
    unsigned staticInsts = 0;
    unsigned skeletonInsts = 0;
};

} // namespace bitspec

#endif // BITSPEC_BACKEND_MIR_H_
