/**
 * @file
 * Backend facade: IR module -> linked machine program.
 */

#ifndef BITSPEC_BACKEND_COMPILER_H_
#define BITSPEC_BACKEND_COMPILER_H_

#include "backend/isel.h"
#include "backend/mir.h"
#include "ir/module.h"

namespace bitspec
{

/** A linked program plus compile-time statistics. */
struct CompiledProgram
{
    MachProgram program;
    BackendStats stats;
};

/**
 * Compile @p m for @p isa: instruction selection, register
 * allocation (with slice packing on the BitSpec ISA), layout with
 * skeleton blocks, and linking. The module must define "main".
 * Globals receive their addresses (layoutGlobals) as a side effect.
 */
CompiledProgram compileModule(Module &m, TargetISA isa);

} // namespace bitspec

#endif // BITSPEC_BACKEND_COMPILER_H_
