#include "backend/compiler.h"

#include "analysis/pipeline.h"
#include "backend/layout.h"
#include "backend/mir_verifier.h"
#include "backend/regalloc.h"
#include "obs/trace.h"
#include "support/error.h"

namespace bitspec
{

CompiledProgram
compileModule(Module &m, TargetISA isa)
{
    trace::Span span("backend.compile", "compile");
    m.layoutGlobals();

    std::map<const Function *, int> ids;
    int next = 0;
    for (const auto &f : m.functions())
        ids[f.get()] = next++;

    Function *main_fn = m.getFunction("main");
    if (!main_fn)
        fatal("compileModule: no main function");

    pipelineCheckpoint(m, "backend:pre_isel");

    CompiledProgram out;
    std::vector<MachFunction> funcs;
    for (const auto &f : m.functions()) {
        MachFunction mf = [&] {
            trace::Span s("backend.isel", "compile");
            s.arg("function", f->name());
            return selectFunction(*f, ids[f.get()], isa, ids);
        }();
        {
            trace::Span s("backend.regalloc", "compile");
            s.arg("function", f->name());
            BackendStats fs = allocateRegisters(mf);
            out.stats.staticSpillLoads += fs.staticSpillLoads;
            out.stats.staticSpillStores += fs.staticSpillStores;
            out.stats.staticCopies += fs.staticCopies;
            out.stats.spilledVRegs += fs.spilledVRegs;
        }
        {
            trace::Span s("backend.layout", "compile");
            s.arg("function", f->name());
            out.stats.skeletonInsts += layoutFunction(mf);
        }
        {
            trace::Span s("backend.mir_verify", "compile");
            s.arg("function", f->name());
            mirVerifyOrDie(mf, "after layout of " + mf.name);
        }
        funcs.push_back(std::move(mf));
    }

    {
        trace::Span s("backend.link", "compile");
        out.program = linkProgram(std::move(funcs), ids[main_fn]);
    }
    out.stats.staticInsts =
        static_cast<unsigned>(out.program.flat.size());
    return out;
}

} // namespace bitspec
