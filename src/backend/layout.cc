#include "backend/layout.h"

#include <algorithm>
#include <map>
#include <set>

#include "support/error.h"

namespace bitspec
{

namespace
{

constexpr int64_t kImmMax = 511; ///< Encodable ALU/memory immediate.

/** Insert frame setup into the entry block and teardown before every
 *  BXLR. Registers are callee-saved; LR saved when the function
 *  calls. */
void
insertFrameCode(MachFunction &mf)
{
    unsigned save_regs = static_cast<unsigned>(
        mf.usedCalleeSaved.size());
    unsigned save_lr = mf.hasCalls ? 1 : 0;
    unsigned frame_bytes =
        (mf.spillSlots + save_regs + save_lr) * 4;
    if (frame_bytes == 0 && mf.blocks.empty())
        return;

    auto mk = [&](MOp op, MOpnd d, MOpnd a, MOpnd b) {
        MachInst i;
        i.op = op;
        i.dst = d;
        i.a = a;
        i.b = b;
        i.tag = InstTag::FrameSetup;
        return i;
    };

    std::vector<MachInst> pro;
    if (frame_bytes > 0) {
        pro.push_back(mk(MOp::SUB, MOpnd::makeReg(kRegSP),
                         MOpnd::makeReg(kRegSP),
                         MOpnd::makeImm(frame_bytes)));
        unsigned off = mf.spillSlots * 4;
        for (unsigned r : mf.usedCalleeSaved) {
            pro.push_back(mk(MOp::STR, MOpnd::makeReg(r),
                             MOpnd::makeReg(kRegSP),
                             MOpnd::makeImm(off)));
            off += 4;
        }
        if (save_lr) {
            pro.push_back(mk(MOp::STR, MOpnd::makeReg(kRegLR),
                             MOpnd::makeReg(kRegSP),
                             MOpnd::makeImm(off)));
        }
    }

    // Epilogue before each BXLR.
    for (auto &mb : mf.blocks) {
        std::vector<MachInst> out;
        for (MachInst &inst : mb.insts) {
            if (inst.op == MOp::BXLR && frame_bytes > 0) {
                unsigned off = mf.spillSlots * 4;
                for (unsigned r : mf.usedCalleeSaved) {
                    out.push_back(mk(MOp::LDR, MOpnd::makeReg(r),
                                     MOpnd::makeReg(kRegSP),
                                     MOpnd::makeImm(off)));
                    off += 4;
                }
                if (save_lr) {
                    out.push_back(mk(MOp::LDR, MOpnd::makeReg(kRegLR),
                                     MOpnd::makeReg(kRegSP),
                                     MOpnd::makeImm(off)));
                }
                out.push_back(mk(MOp::ADD, MOpnd::makeReg(kRegSP),
                                 MOpnd::makeReg(kRegSP),
                                 MOpnd::makeImm(frame_bytes)));
            }
            out.push_back(inst);
        }
        mb.insts = std::move(out);
    }

    // Prologue at the top of the entry block.
    auto &entry = mf.blocks.front().insts;
    entry.insert(entry.begin(), pro.begin(), pro.end());
}

/** Rewrite out-of-range immediates through the r12 scratch. */
void
legalizeImmediates(MachFunction &mf)
{
    auto needs_fix = [](const MachInst &inst) {
        if (!inst.b.isImm())
            return false;
        switch (inst.op) {
          case MOp::MOVW: case MOp::MOVT: case MOp::SETDELTA:
          case MOp::MODE: case MOp::B: case MOp::BL:
            return false;
          default:
            return inst.b.imm < 0 || inst.b.imm > kImmMax;
        }
    };
    auto needs_fix_a = [](const MachInst &inst) {
        // MOV/MOV8/OUT-style single-source immediates.
        if (!inst.a.isImm())
            return false;
        if (inst.op == MOp::MOVW || inst.op == MOp::MOVT ||
            inst.op == MOp::SETDELTA || inst.op == MOp::MODE) {
            return false;
        }
        if (inst.op == MOp::MOV8)
            return inst.a.imm < 0 || inst.a.imm > 255;
        return inst.a.imm < 0 || inst.a.imm > kImmMax;
    };

    for (auto &mb : mf.blocks) {
        std::vector<MachInst> out;
        for (MachInst inst : mb.insts) {
            auto materialize = [&](MOpnd &o) {
                auto v = static_cast<uint32_t>(o.imm);
                MachInst w;
                w.op = MOp::MOVW;
                w.dst = MOpnd::makeReg(kScratchAddr);
                w.a = MOpnd::makeImm(v & 0xffff);
                out.push_back(w);
                if (v >> 16) {
                    MachInst t;
                    t.op = MOp::MOVT;
                    t.dst = MOpnd::makeReg(kScratchAddr);
                    t.a = MOpnd::makeImm(v >> 16);
                    out.push_back(t);
                }
                o = MOpnd::makeReg(kScratchAddr);
            };
            if (needs_fix(inst))
                materialize(inst.b);
            if (needs_fix_a(inst))
                materialize(inst.a);
            out.push_back(inst);
        }
        mb.insts = std::move(out);
    }
}

} // namespace

namespace
{

/** Thumb-like two-address form: ALU ops write their first source
 *  register; a move is inserted when the destination differs. */
void
enforceTwoAddress(MachFunction &mf)
{
    auto is_alu3 = [](MOp op) {
        switch (op) {
          case MOp::ADD: case MOp::SUB: case MOp::MUL:
          case MOp::AND: case MOp::ORR: case MOp::EOR:
          case MOp::LSL: case MOp::LSR: case MOp::ASR:
          case MOp::UDIV: case MOp::SDIV:
            return true;
          default:
            return false;
        }
    };
    for (auto &mb : mf.blocks) {
        std::vector<MachInst> out;
        for (MachInst inst : mb.insts) {
            if (is_alu3(inst.op) && inst.dst.isReg() &&
                inst.a.isReg() && inst.dst.reg != inst.a.reg) {
                // Second source aliasing the destination must be
                // saved first.
                if (inst.b.isReg() && inst.b.reg == inst.dst.reg) {
                    MachInst sv;
                    sv.op = MOp::MOV;
                    sv.dst = MOpnd::makeReg(kScratchAddr);
                    sv.a = inst.b;
                    sv.tag = InstTag::Copy;
                    out.push_back(sv);
                    inst.b = MOpnd::makeReg(kScratchAddr);
                }
                MachInst mv;
                mv.op = MOp::MOV;
                mv.dst = inst.dst;
                mv.a = inst.a;
                mv.tag = InstTag::Copy;
                out.push_back(mv);
                inst.a = inst.dst;
            }
            out.push_back(inst);
        }
        mb.insts = std::move(out);
    }
}

} // namespace

unsigned
layoutFunction(MachFunction &mf)
{
    if (mf.twoAddress)
        enforceTwoAddress(mf);
    insertFrameCode(mf);
    legalizeImmediates(mf);

    // Functions with speculative regions load Δ at entry (placeholder
    // patched below, once the speculative area size is known).
    bool any_region = false;
    for (auto &mb : mf.blocks)
        any_region |= mb.handlerBlock >= 0;
    if (any_region) {
        MachInst sd;
        sd.op = MOp::SETDELTA;
        sd.a = MOpnd::makeImm(0);
        sd.tag = InstTag::FrameSetup;
        sd.target = -2;
        auto &entry = mf.blocks.front().insts;
        entry.insert(entry.begin(), sd);
    }

    // Block order: speculative-region blocks first (contiguously),
    // then everything else; skeletons sit between the two areas.
    std::vector<int> region_blocks, other_blocks;
    for (auto &mb : mf.blocks) {
        if (mb.handlerBlock >= 0)
            region_blocks.push_back(mb.id);
        else
            other_blocks.push_back(mb.id);
    }

    mf.code.clear();
    mf.blockIndex.clear();

    // Fall-through elision: an unconditional branch to the next block
    // in layout order is dead weight (CFG preparation splits blocks
    // aggressively, so this matters a lot for the speculative area).
    auto emit_area = [&](const std::vector<int> &ids) {
        for (size_t k = 0; k < ids.size(); ++k) {
            int id = ids[k];
            mf.blockIndex[id] = static_cast<uint32_t>(mf.code.size());
            auto &insts = mf.blocks[id].insts;
            for (size_t j = 0; j < insts.size(); ++j) {
                const MachInst &inst = insts[j];
                bool last = j + 1 == insts.size();
                if (last && inst.op == MOp::B &&
                    inst.cond == Cond::AL && k + 1 < ids.size() &&
                    inst.target == ids[k + 1]) {
                    continue; // Falls through.
                }
                mf.code.push_back(inst);
            }
        }
    };

    emit_area(region_blocks);
    uint32_t spec_insts = static_cast<uint32_t>(mf.code.size());
    mf.delta = spec_insts * kInstBytes;

    // Skeleton area: slot i serves the speculative-area instruction i
    // (Eq. 1/2: a misspeculation at code index i redirects to index
    // i + Δ/4). Slot counts must follow the EMITTED per-block ranges
    // — fall-through elision above can drop a terminator, and using
    // the original instruction counts would skew every later slot's
    // handler mapping. The emitted range of each region block is
    // recovered from blockIndex.
    unsigned skeletons = 0;
    for (size_t k = 0; k < region_blocks.size(); ++k) {
        int id = region_blocks[k];
        uint32_t start = mf.blockIndex.at(id);
        uint32_t end = k + 1 < region_blocks.size()
                           ? mf.blockIndex.at(region_blocks[k + 1])
                           : spec_insts;
        for (uint32_t j = start; j < end; ++j) {
            MachInst sk;
            sk.op = MOp::B;
            sk.tag = InstTag::Skeleton;
            sk.target = mf.blocks[id].handlerBlock;
            mf.code.push_back(sk);
            ++skeletons;
        }
    }

    // Chain the non-speculative area greedily along unconditional
    // branches so elision fires as often as possible.
    {
        std::set<int> in_other(other_blocks.begin(),
                               other_blocks.end());
        std::set<int> placed;
        std::vector<int> chained;
        for (int seed : other_blocks) {
            int cur = seed;
            while (cur >= 0 && !placed.count(cur)) {
                placed.insert(cur);
                chained.push_back(cur);
                const auto &insts = mf.blocks[cur].insts;
                int next = -1;
                if (!insts.empty() && insts.back().op == MOp::B &&
                    insts.back().cond == Cond::AL &&
                    in_other.count(insts.back().target) &&
                    !placed.count(insts.back().target)) {
                    next = insts.back().target;
                }
                cur = next;
            }
        }
        other_blocks = std::move(chained);
    }

    emit_area(other_blocks);

    mf.entryIndex = mf.blockIndex.at(0);

    // Patch SETDELTA placeholders (entry + post-call restores).
    for (auto &inst : mf.code) {
        if (inst.op == MOp::SETDELTA && inst.target == -2) {
            inst.a = MOpnd::makeImm(mf.delta);
            inst.target = -1;
        }
    }

    // Resolve local branch targets (block id -> code index).
    for (auto &inst : mf.code) {
        if (inst.op == MOp::B) {
            bsAssert(inst.target >= 0, "unresolved branch");
            inst.target =
                static_cast<int>(mf.blockIndex.at(inst.target));
        }
    }
    return skeletons;
}

MachProgram
linkProgram(std::vector<MachFunction> funcs, int entry_func)
{
    MachProgram prog;
    prog.entryFunc = entry_func;

    // _start stub: sp = kStackTop; lr = HALT sentinel; call main; HALT.
    std::vector<MachInst> stub;
    {
        MachInst w;
        w.op = MOp::MOVW;
        w.dst = MOpnd::makeReg(kRegSP);
        w.a = MOpnd::makeImm(MachProgram::kStackTop & 0xffff);
        stub.push_back(w);
        MachInst t;
        t.op = MOp::MOVT;
        t.dst = MOpnd::makeReg(kRegSP);
        t.a = MOpnd::makeImm(MachProgram::kStackTop >> 16);
        stub.push_back(t);
        MachInst bl;
        bl.op = MOp::BL;
        bl.target = entry_func;
        stub.push_back(bl);
        MachInst h;
        h.op = MOp::HALT;
        stub.push_back(h);
    }

    // Assign flat offsets.
    uint32_t offset = static_cast<uint32_t>(stub.size());
    std::map<int, uint32_t> func_entry; // func id -> flat entry index.
    std::map<int, uint32_t> func_base;
    for (auto &mf : funcs) {
        func_base[mf.id] = offset;
        func_entry[mf.id] = offset + mf.entryIndex;
        mf.baseAddr = MachProgram::kCodeBase + offset * kInstBytes;
        offset += static_cast<uint32_t>(mf.code.size());
    }

    // Emit, rebasing local targets and resolving calls.
    for (auto &inst : stub) {
        if (inst.op == MOp::BL)
            inst.target = static_cast<int>(func_entry.at(inst.target));
        prog.flat.push_back(inst);
        prog.funcOfIndex.push_back(0);
    }
    for (auto &mf : funcs) {
        uint32_t base = func_base[mf.id];
        for (MachInst inst : mf.code) {
            if (inst.op == MOp::B)
                inst.target += static_cast<int>(base);
            else if (inst.op == MOp::BL)
                inst.target =
                    static_cast<int>(func_entry.at(inst.target));
            prog.flat.push_back(inst);
            prog.funcOfIndex.push_back(static_cast<uint32_t>(mf.id));
        }
    }
    prog.funcs = std::move(funcs);
    return prog;
}

} // namespace bitspec
