/**
 * @file
 * Instruction selection: IR -> MIR (paper §3.3.1/§3.3.2).
 *
 * With the BitSpec ISA, i8 values select 8-bit slice operations
 * (Table 1) and speculative IR instructions select the speculative
 * variants. With the baseline ISA, i8 values live in full 32-bit
 * registers and narrow arithmetic is emulated with masking — exactly
 * the conventional ARM lowering the paper compares against.
 */

#ifndef BITSPEC_BACKEND_ISEL_H_
#define BITSPEC_BACKEND_ISEL_H_

#include "backend/mir.h"
#include "ir/module.h"

namespace bitspec
{

/** Target ISA flavour. */
enum class TargetISA
{
    Baseline, ///< Conventional ARM-class: 32-bit register access only.
    BitSpec,  ///< With Table-1 slice/speculative extensions.
    /** Thumb-like compact ISA (paper RQ9): two-address ALU ops and
     *  only r4..r7 allocatable, costing extra moves and spills. */
    Thumb,
};

/** Select instructions for @p f into a fresh MachFunction.
 *  Critical edges of @p f are split in the process. */
MachFunction selectFunction(Function &f, int func_id, TargetISA isa,
                            const std::map<const Function *, int> &ids);

} // namespace bitspec

#endif // BITSPEC_BACKEND_ISEL_H_
