/**
 * @file
 * Linear-scan register allocation over 32-bit registers and 8-bit
 * slices (paper §3.3.3).
 *
 * All slices are exposed as subregisters: a W vreg occupies all four
 * slices of r4..r11; a B vreg occupies a single slice, preferring
 * registers that already hold other slices (register packing — the
 * mechanism behind Fig. 10/11). Liveness uses the SMIR predecessor
 * rule: blocks of a speculative region are predecessors of their
 * handler, so values the handler consumes stay allocated across the
 * whole region. Values defined inside a region are dead at the
 * handler (Theorem 3.1), which makes spill placement safe without
 * further constraints.
 */

#ifndef BITSPEC_BACKEND_REGALLOC_H_
#define BITSPEC_BACKEND_REGALLOC_H_

#include "backend/mir.h"

namespace bitspec
{

/** Allocate @p mf in place; returns spill statistics. */
BackendStats allocateRegisters(MachFunction &mf);

} // namespace bitspec

#endif // BITSPEC_BACKEND_REGALLOC_H_
