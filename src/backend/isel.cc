#include "backend/isel.h"

#include <algorithm>
#include <map>
#include <set>

#include "analysis/cfg.h"
#include "support/bits.h"
#include "support/error.h"

namespace bitspec
{

namespace
{

Cond
predToCond(CmpPred p)
{
    switch (p) {
      case CmpPred::EQ: return Cond::EQ;
      case CmpPred::NE: return Cond::NE;
      case CmpPred::ULT: return Cond::LO;
      case CmpPred::ULE: return Cond::LS;
      case CmpPred::UGT: return Cond::HI;
      case CmpPred::UGE: return Cond::HS;
      case CmpPred::SLT: return Cond::LT;
      case CmpPred::SLE: return Cond::LE;
      case CmpPred::SGT: return Cond::GT;
      case CmpPred::SGE: return Cond::GE;
    }
    panic("predToCond");
}

class ISel
{
  public:
    ISel(Function &f, int func_id, TargetISA isa,
         const std::map<const Function *, int> &ids)
        : f_(f), isa_(isa), funcIds_(ids)
    {
        mf_.name = f.name();
        mf_.id = func_id;
        if (isa == TargetISA::Thumb) {
            mf_.lastAllocReg = 7;
            mf_.twoAddress = true;
        }
    }

    MachFunction
    run()
    {
        splitCriticalEdges();
        countUses();

        // Create one MachBlock per IR block (ids follow order).
        for (auto &bb : f_.blocks()) {
            MachBlock mb;
            mb.id = static_cast<int>(mf_.blocks.size());
            mb.name = bb->name();
            blockId_[bb.get()] = mb.id;
            mf_.blocks.push_back(std::move(mb));
        }
        // Region membership (SMIR propagation, §3.3.1). Region id and
        // source line ride along for misspeculation attribution.
        for (const auto &sr : f_.specRegions()) {
            int hid = blockId_.at(sr->handler);
            mf_.blocks[hid].isHandler = true;
            mf_.blocks[hid].regionId = sr->id;
            mf_.blocks[hid].regionSrcLine = sr->srcLine;
            mf_.blocks[hid].regionLeakSites = sr->leakSites;
            mf_.blocks[hid].regionLeaksDischarged = sr->leaksDischarged;
            for (BasicBlock *member : sr->blocks) {
                MachBlock &mb = mf_.blocks[blockId_.at(member)];
                mb.handlerBlock = hid;
                mb.regionId = sr->id;
                mb.regionSrcLine = sr->srcLine;
                mb.regionLeakSites = sr->leakSites;
                mb.regionLeaksDischarged = sr->leaksDischarged;
            }
        }

        for (auto &bb : f_.blocks())
            emitBlock(*bb);
        return std::move(mf_);
    }

  private:
    // Split edges from multi-successor blocks into blocks with phis
    // so phi copies have a unique home.
    void
    splitCriticalEdges()
    {
        bool changed = true;
        while (changed) {
            changed = false;
            for (auto &bb : f_.blocks()) {
                if (bb->successors().size() < 2)
                    continue;
                for (BasicBlock *succ : bb->successors()) {
                    if (succ->phis().empty())
                        continue;
                    splitEdge(f_, bb.get(), succ);
                    changed = true;
                    break;
                }
                if (changed)
                    break;
            }
        }
    }

    void
    countUses()
    {
        for (auto &bb : f_.blocks())
            for (auto &inst : bb->insts())
                for (Value *op : inst->operands())
                    useCount_[op]++;
    }

    /** Is this icmp's only consumer the terminator of its own block?
     *  Then the compare fuses into the branch. */
    bool
    fusesIntoBranch(const Instruction *icmp) const
    {
        auto it = useCount_.find(icmp);
        if (it == useCount_.end() || it->second != 1)
            return false;
        const Instruction *term = icmp->parent()->terminator();
        return term->op() == Opcode::CondBr && term->operand(0) == icmp;
    }

    bool useSlices() const { return isa_ == TargetISA::BitSpec; }

    bool
    isSliceValue(const Value *v) const
    {
        return useSlices() && v->type().bits == 8;
    }

    void
    emit(MachInst inst)
    {
        cur_->insts.push_back(inst);
    }

    MachInst
    make(MOp op, MOpnd dst = MOpnd{}, MOpnd a = MOpnd{},
         MOpnd b = MOpnd{})
    {
        MachInst i;
        i.op = op;
        i.dst = dst;
        i.a = a;
        i.b = b;
        return i;
    }

    uint32_t
    vregOf(const Value *v)
    {
        auto it = vregOf_.find(v);
        if (it != vregOf_.end())
            return it->second;
        uint32_t vr = mf_.newVReg(isSliceValue(v));
        vregOf_[v] = vr;
        return vr;
    }

    MOpnd
    vregOpnd(const Value *v)
    {
        return MOpnd::makeVReg(vregOf(v), isSliceValue(v));
    }

    /** Materialise @p v into a register-class operand. */
    MOpnd
    regOperand(Value *v)
    {
        switch (v->kind()) {
          case ValueKind::Constant: {
            uint64_t c = static_cast<Constant *>(v)->value();
            if (isSliceValue(v)) {
                uint32_t t = mf_.newVReg(true);
                emit(make(MOp::MOV8, MOpnd::makeVReg(t, true),
                          MOpnd::makeImm(static_cast<int64_t>(c))));
                return MOpnd::makeVReg(t, true);
            }
            return materializeConst32(static_cast<uint32_t>(c));
          }
          case ValueKind::GlobalRef: {
            uint32_t addr =
                static_cast<GlobalRef *>(v)->global()->address();
            return materializeConst32(addr);
          }
          default:
            return vregOpnd(v);
        }
    }

    MOpnd
    materializeConst32(uint32_t c)
    {
        uint32_t t = mf_.newVReg(false);
        MOpnd d = MOpnd::makeVReg(t, false);
        emit(make(MOp::MOVW, d, MOpnd::makeImm(c & 0xffff)));
        if (c >> 16)
            emit(make(MOp::MOVT, d, MOpnd::makeImm(c >> 16)));
        return d;
    }

    /** Source operand for an ALU op: immediate when it fits. */
    MOpnd
    aluOperand(Value *v, bool slice_ctx)
    {
        if (v->isConstant()) {
            int64_t c = static_cast<int64_t>(
                static_cast<Constant *>(v)->value());
            // Table 1: 8-bit ops take imm4; 32-bit ALU takes the
            // encodable 10-bit immediate.
            if (slice_ctx && c >= 0 && c <= 15)
                return MOpnd::makeImm(c);
            if (!slice_ctx && c >= 0 && c <= 511)
                return MOpnd::makeImm(c);
        }
        return regOperand(v);
    }

    /** Zero-extend @p v (any class) into a fresh W vreg operand. */
    MOpnd
    wideOperand(Value *v)
    {
        MOpnd o = regOperand(v);
        if (o.isVReg() && o.vregIsSlice) {
            uint32_t t = mf_.newVReg(false);
            MOpnd d = MOpnd::makeVReg(t, false);
            emit(make(MOp::UXT8, d, o));
            return d;
        }
        return o;
    }

    // ---------------- Per-instruction selection ----------------

    void
    emitBinary(Instruction &inst)
    {
        unsigned bits = inst.type().bits;
        bsAssert(bits <= 32, "64-bit values unsupported by EMB32: " +
                 f_.name());
        bool slice = useSlices() && bits == 8;

        struct OpInfo
        {
            MOp wide, narrow;
            bool mask16;
        };
        auto info = [&]() -> OpInfo {
            switch (inst.op()) {
              case Opcode::Add: return {MOp::ADD, MOp::ADD8, true};
              case Opcode::Sub: return {MOp::SUB, MOp::SUB8, true};
              case Opcode::Mul: return {MOp::MUL, MOp::MUL, true};
              case Opcode::And: return {MOp::AND, MOp::AND8, false};
              case Opcode::Or: return {MOp::ORR, MOp::ORR8, false};
              case Opcode::Xor: return {MOp::EOR, MOp::EOR8, false};
              case Opcode::Shl: return {MOp::LSL, MOp::LSL, true};
              case Opcode::LShr: return {MOp::LSR, MOp::LSR, false};
              case Opcode::AShr: return {MOp::ASR, MOp::ASR, false};
              case Opcode::UDiv: return {MOp::UDIV, MOp::UDIV, false};
              case Opcode::SDiv: return {MOp::SDIV, MOp::SDIV, true};
              case Opcode::URem:
              case Opcode::SRem: return {MOp::NOP, MOp::NOP, false};
              default: panic("emitBinary: bad op");
            }
        }();

        if (inst.op() == Opcode::URem || inst.op() == Opcode::SRem) {
            emitRem(inst);
            return;
        }

        if (slice) {
            bsAssert(inst.op() == Opcode::Add ||
                     inst.op() == Opcode::Sub ||
                     inst.op() == Opcode::And ||
                     inst.op() == Opcode::Or ||
                     inst.op() == Opcode::Xor,
                     "no slice form for op in " + f_.name());
            MachInst mi = make(info.narrow, vregOpnd(&inst),
                               regOperand(inst.operand(0)),
                               aluOperand(inst.operand(1), true));
            mi.speculative = inst.isSpeculative();
            emit(mi);
            return;
        }

        // i8 on the baseline ISA: compute in 32 bits, re-mask where
        // the operation can carry into the high bits.
        MOpnd a = wideOperand(inst.operand(0));
        MOpnd b = aluOperand(inst.operand(1), false);
        if (b.isVReg() && b.vregIsSlice)
            b = wideOperand(inst.operand(1));

        // Signed ops on sub-word values need sign extension first.
        if ((inst.op() == Opcode::SDiv || inst.op() == Opcode::AShr) &&
            bits < 32) {
            a = signExtendSub32(a, bits);
            if (!b.isImm())
                b = signExtendSub32(b, bits);
        }

        MOpnd d = vregOpnd(&inst);
        emit(make(info.wide, d, a, b));
        if (bits < 32 && (info.mask16 || inst.op() == Opcode::SDiv ||
                          inst.op() == Opcode::AShr)) {
            maskTo(d, bits == 8 ? 8 : 16);
        }
    }

    /** Mask register operand @p d down to @p bits in place. */
    void
    maskTo(MOpnd d, unsigned bits)
    {
        if (bits == 16) {
            emit(make(MOp::UXTH, d, d));
        } else {
            emit(make(MOp::AND, d, d, MOpnd::makeImm(0xff)));
        }
    }

    MOpnd
    signExtendSub32(MOpnd v, unsigned bits)
    {
        uint32_t t = mf_.newVReg(false);
        MOpnd d = MOpnd::makeVReg(t, false);
        emit(make(bits == 8 ? MOp::SXT8 : MOp::SXTH, d, v));
        return d;
    }

    void
    emitRem(Instruction &inst)
    {
        unsigned bits = inst.type().bits;
        bool is_signed = inst.op() == Opcode::SRem;
        MOpnd a = wideOperand(inst.operand(0));
        MOpnd b = wideOperand(inst.operand(1));
        if (is_signed && bits < 32) {
            a = signExtendSub32(a, bits);
            b = signExtendSub32(b, bits);
        }
        MOpnd q = MOpnd::makeVReg(mf_.newVReg(false), false);
        MOpnd p = MOpnd::makeVReg(mf_.newVReg(false), false);
        MOpnd d = vregOpnd(&inst);
        emit(make(is_signed ? MOp::SDIV : MOp::UDIV, q, a, b));
        emit(make(MOp::MUL, p, q, b));
        if (isSliceValue(&inst)) {
            MOpnd w = MOpnd::makeVReg(mf_.newVReg(false), false);
            emit(make(MOp::SUB, w, a, p));
            MachInst tr = make(MOp::TRN8, d, w);
            emit(tr);
        } else {
            emit(make(MOp::SUB, d, a, p));
            if (bits < 32)
                maskTo(d, bits);
        }
    }

    void
    emitCompare(const Instruction &icmp)
    {
        Value *a = icmp.operand(0);
        Value *b = icmp.operand(1);
        unsigned bits = a->type().bits;
        bool slice = useSlices() && bits == 8;
        bool sext_needed =
            bits < 32 &&
            (icmp.pred() == CmpPred::SLT || icmp.pred() == CmpPred::SLE ||
             icmp.pred() == CmpPred::SGT || icmp.pred() == CmpPred::SGE);

        if (slice) {
            bsAssert(!sext_needed, "signed slice compare");
            emit(make(MOp::CMP8, MOpnd{}, regOperand(a),
                      aluOperand(b, true)));
            return;
        }
        MOpnd ma = wideOperand(a);
        MOpnd mb = aluOperand(b, false);
        if (mb.isVReg() && mb.vregIsSlice)
            mb = wideOperand(b);
        if (sext_needed) {
            ma = signExtendSub32(ma, bits == 8 ? 8 : 16);
            if (!mb.isImm())
                mb = signExtendSub32(mb, bits == 8 ? 8 : 16);
        }
        emit(make(MOp::CMP, MOpnd{}, ma, mb));
    }

    void
    emitPhiCopies(BasicBlock &pred, BasicBlock &succ)
    {
        auto phis = succ.phis();
        if (phis.empty())
            return;

        struct Pair
        {
            MOpnd dst;
            MOpnd src;
        };
        std::vector<Pair> pending;
        for (Instruction *phi : phis) {
            for (size_t i = 0; i < phi->numOperands(); ++i) {
                if (phi->blockOperand(i) != &pred)
                    continue;
                MOpnd dst = vregOpnd(phi);
                MOpnd src = regOperandOrImm(phi->operand(i),
                                            isSliceValue(phi));
                pending.push_back({dst, src});
            }
        }

        // Sequentialise the parallel copy (cycles via a temp).
        auto is_pending_src = [&](const MOpnd &d) {
            for (const Pair &p : pending)
                if (p.src.isVReg() && d.isVReg() &&
                    p.src.vreg == d.vreg) {
                    return true;
                }
            return false;
        };
        while (!pending.empty()) {
            bool progress = false;
            for (size_t i = 0; i < pending.size(); ++i) {
                if (!is_pending_src(pending[i].dst)) {
                    emitCopy(pending[i].dst, pending[i].src);
                    pending.erase(pending.begin() +
                                  static_cast<long>(i));
                    progress = true;
                    break;
                }
            }
            if (progress)
                continue;
            // Cycle: save one destination's old value in a temp.
            Pair &p = pending.front();
            bool slice = p.dst.vregIsSlice;
            MOpnd t = MOpnd::makeVReg(mf_.newVReg(slice), slice);
            emitCopy(t, p.dst);
            for (Pair &q : pending) {
                if (q.src.isVReg() && q.src.vreg == p.dst.vreg)
                    q.src = t;
            }
        }
    }

    /** Phi sources: immediates stay immediates where a MOV accepts
     *  them; others become register operands. */
    MOpnd
    regOperandOrImm(Value *v, bool slice_dst)
    {
        if (v->isConstant()) {
            int64_t c = static_cast<int64_t>(
                static_cast<Constant *>(v)->value());
            if (slice_dst && c <= 255)
                return MOpnd::makeImm(c);
            if (!slice_dst && c >= 0 && c <= 511)
                return MOpnd::makeImm(c);
        }
        return regOperand(v);
    }

    void
    emitCopy(MOpnd dst, MOpnd src)
    {
        MachInst mi = make(dst.vregIsSlice || dst.isSlice()
                               ? MOp::MOV8
                               : MOp::MOV,
                           dst, src);
        mi.tag = InstTag::Copy;
        emit(mi);
    }

    void
    emitTerminator(BasicBlock &bb, Instruction &term)
    {
        switch (term.op()) {
          case Opcode::Br: {
            BasicBlock *dest = term.blockOperand(0);
            emitPhiCopies(bb, *dest);
            MachInst br = make(MOp::B);
            br.target = blockId_.at(dest);
            emit(br);
            return;
          }
          case Opcode::CondBr: {
            // Critical edges are split: CondBr targets carry no phis.
            Value *cond = term.operand(0);
            Cond cc;
            if (cond->isInstruction() &&
                static_cast<Instruction *>(cond)->op() == Opcode::ICmp) {
                auto *icmp = static_cast<Instruction *>(cond);
                emitCompare(*icmp);
                cc = predToCond(icmp->pred());
            } else {
                emit(make(MOp::CMP, MOpnd{}, wideOperand(cond),
                          MOpnd::makeImm(0)));
                cc = Cond::NE;
            }
            MachInst bt = make(MOp::B);
            bt.cond = cc;
            bt.target = blockId_.at(term.blockOperand(0));
            emit(bt);
            MachInst bf = make(MOp::B);
            bf.target = blockId_.at(term.blockOperand(1));
            emit(bf);
            return;
          }
          case Opcode::Ret: {
            if (term.numOperands()) {
                MOpnd v = wideOperand(term.operand(0));
                emit(make(MOp::MOV, MOpnd::makeReg(0), v));
            }
            emit(make(MOp::BXLR));
            return;
          }
          case Opcode::Unreachable:
            emit(make(MOp::HALT));
            return;
          default:
            panic("emitTerminator: bad opcode");
        }
    }

    void
    emitBlock(BasicBlock &bb)
    {
        cur_ = &mf_.blocks[blockId_.at(&bb)];

        // Entry: receive arguments from r0..r3.
        if (&bb == f_.entry()) {
            bsAssert(f_.numArgs() <= 4,
                     "more than 4 arguments unsupported: " + f_.name());
            for (size_t i = 0; i < f_.numArgs(); ++i) {
                Argument *arg = f_.arg(i);
                if (isSliceValue(arg)) {
                    emit(make(MOp::TRN8, vregOpnd(arg),
                              MOpnd::makeReg(static_cast<unsigned>(i))));
                } else {
                    MachInst mi = make(MOp::MOV, vregOpnd(arg),
                                       MOpnd::makeReg(
                                           static_cast<unsigned>(i)));
                    mi.tag = InstTag::Copy;
                    emit(mi);
                }
            }
        }

        for (auto &instp : bb.insts()) {
            Instruction &inst = *instp;
            switch (inst.op()) {
              case Opcode::Phi:
                // Defined by predecessor copies.
                (void)vregOf(&inst);
                break;
              case Opcode::Add: case Opcode::Sub: case Opcode::Mul:
              case Opcode::UDiv: case Opcode::SDiv: case Opcode::URem:
              case Opcode::SRem: case Opcode::And: case Opcode::Or:
              case Opcode::Xor: case Opcode::Shl: case Opcode::LShr:
              case Opcode::AShr:
                emitBinary(inst);
                break;
              case Opcode::ICmp:
                if (!fusesIntoBranch(&inst)) {
                    emitCompare(inst);
                    MachInst mi = make(MOp::SETCC, vregOpnd(&inst));
                    mi.cond = predToCond(inst.pred());
                    emit(mi);
                }
                break;
              case Opcode::Select:
                emitSelect(inst);
                break;
              case Opcode::ZExt:
                emitZExt(inst);
                break;
              case Opcode::SExt:
                emitSExt(inst);
                break;
              case Opcode::Trunc:
                emitTrunc(inst);
                break;
              case Opcode::Load:
                emitLoad(inst);
                break;
              case Opcode::Store:
                emitStore(inst);
                break;
              case Opcode::Call:
                emitCall(inst);
                break;
              case Opcode::Output: {
                MOpnd v = wideOperand(inst.operand(0));
                emit(make(MOp::OUT, MOpnd{}, v));
                break;
              }
              case Opcode::Br:
              case Opcode::CondBr:
              case Opcode::Ret:
              case Opcode::Unreachable:
                emitTerminator(bb, inst);
                break;
            }
        }
    }

    void
    emitSelect(Instruction &inst)
    {
        MOpnd c = wideOperand(inst.operand(0));
        bool slice = isSliceValue(&inst);
        MOpnd d = vregOpnd(&inst);
        MOpnd fv = regOperandOrImm(inst.operand(2), slice);
        MOpnd tv = regOperandOrImm(inst.operand(1), slice);
        emit(make(MOp::CMP, MOpnd{}, c, MOpnd::makeImm(0)));
        MachInst mf = make(slice ? MOp::MOV8 : MOp::MOV, d, fv);
        emit(mf);
        MachInst mt = make(slice ? MOp::MOV8 : MOp::MOV, d, tv);
        mt.cond = Cond::NE;
        emit(mt);
    }

    void
    emitZExt(Instruction &inst)
    {
        Value *src = inst.operand(0);
        unsigned from = src->type().bits;
        MOpnd d = vregOpnd(&inst);
        if (useSlices() && from == 8) {
            emit(make(MOp::UXT8, d, regOperand(src)));
        } else {
            // Sub-word values are kept zero-extended in W registers.
            MachInst mi = make(MOp::MOV, d, wideOperand(src));
            mi.tag = InstTag::Copy;
            emit(mi);
        }
    }

    void
    emitSExt(Instruction &inst)
    {
        Value *src = inst.operand(0);
        unsigned from = src->type().bits;
        MOpnd d = vregOpnd(&inst);
        if (from == 8) {
            emit(make(MOp::SXT8, d, regOperand(src)));
        } else if (from == 16) {
            emit(make(MOp::SXTH, d, wideOperand(src)));
        } else {
            bsAssert(from == 1, "bad sext width");
            // i1: 0/-0 stays 0; 1 -> 0xffffffff via 0 - v.
            MOpnd z = materializeConst32(0);
            emit(make(MOp::SUB, d, z, wideOperand(src)));
        }
        if (inst.type().bits < 32)
            maskTo(d, inst.type().bits);
    }

    void
    emitTrunc(Instruction &inst)
    {
        Value *src = inst.operand(0);
        unsigned to = inst.type().bits;
        MOpnd d = vregOpnd(&inst);
        if (to == 8 && useSlices()) {
            MachInst tr = make(MOp::TRN8, d, wideOperand(src));
            tr.speculative = inst.isSpeculative();
            emit(tr);
            return;
        }
        MOpnd s = wideOperand(src);
        if (to == 8) {
            emit(make(MOp::AND, d, s, MOpnd::makeImm(0xff)));
        } else if (to == 16) {
            emit(make(MOp::UXTH, d, s));
        } else {
            MachInst mi = make(MOp::MOV, d, s);
            mi.tag = InstTag::Copy;
            emit(mi);
        }
    }

    void
    emitLoad(Instruction &inst)
    {
        MOpnd addr = regOperand(inst.operand(0));
        MOpnd d = vregOpnd(&inst);
        unsigned bits = inst.type().bits;
        MOpnd off = MOpnd::makeImm(0);
        if (bits == 8 && useSlices()) {
            if (inst.isSpeculative()) {
                MachInst ld = make(MOp::LDRS8, d, addr, off);
                ld.speculative = true;
                ld.origBits = static_cast<uint8_t>(inst.specOrigBits());
                emit(ld);
            } else {
                emit(make(MOp::LDRB8, d, addr, off));
            }
            return;
        }
        bsAssert(!inst.isSpeculative(),
                 "speculative load outside slice ISA");
        switch (bits) {
          case 8: emit(make(MOp::LDRB, d, addr, off)); break;
          case 16: emit(make(MOp::LDRH, d, addr, off)); break;
          case 32: emit(make(MOp::LDR, d, addr, off)); break;
          default: fatal("unsupported load width in " + f_.name());
        }
    }

    void
    emitStore(Instruction &inst)
    {
        MOpnd addr = regOperand(inst.operand(0));
        Value *v = inst.operand(1);
        unsigned bits = v->type().bits;
        MOpnd off = MOpnd::makeImm(0);
        if (bits == 8 && useSlices()) {
            emit(make(MOp::STRB8, regOperand(v), addr, off));
            return;
        }
        MOpnd data = wideOperand(v);
        switch (bits) {
          case 8: emit(make(MOp::STRB, data, addr, off)); break;
          case 16: emit(make(MOp::STRH, data, addr, off)); break;
          case 32: emit(make(MOp::STR, data, addr, off)); break;
          default: fatal("unsupported store width in " + f_.name());
        }
    }

    void
    emitCall(Instruction &inst)
    {
        bsAssert(inst.numOperands() <= 4,
                 "more than 4 call arguments: " + f_.name());
        mf_.hasCalls = true;
        for (size_t i = 0; i < inst.numOperands(); ++i) {
            MOpnd v = wideOperand(inst.operand(i));
            emit(make(MOp::MOV,
                      MOpnd::makeReg(static_cast<unsigned>(i)), v));
        }
        MachInst bl = make(MOp::BL);
        bl.target = funcIds_.at(inst.callee());
        emit(bl);
        // Restore this function's misspec redirect distance (the
        // callee overwrote it). Patched during layout.
        MachInst sd = make(MOp::SETDELTA, MOpnd{},
                           MOpnd::makeImm(0));
        sd.tag = InstTag::FrameSetup;
        sd.target = -2; // "patch with this function's delta".
        emit(sd);
        if (!inst.type().isVoid()) {
            if (isSliceValue(&inst)) {
                emit(make(MOp::TRN8, vregOpnd(&inst),
                          MOpnd::makeReg(0)));
            } else {
                MachInst mi = make(MOp::MOV, vregOpnd(&inst),
                                   MOpnd::makeReg(0));
                mi.tag = InstTag::Copy;
                emit(mi);
            }
        }
    }

    Function &f_;
    TargetISA isa_;
    const std::map<const Function *, int> &funcIds_;
    MachFunction mf_;
    MachBlock *cur_ = nullptr;
    std::map<const Value *, uint32_t> vregOf_;
    std::map<const BasicBlock *, int> blockId_;
    std::map<const Value *, unsigned> useCount_;
};

} // namespace

MachFunction
selectFunction(Function &f, int func_id, TargetISA isa,
               const std::map<const Function *, int> &ids)
{
    return ISel(f, func_id, isa, ids).run();
}

} // namespace bitspec
