#include "backend/mir_verifier.h"

#include <algorithm>
#include <set>

#include "support/error.h"
#include "support/str.h"

namespace bitspec
{

namespace
{

/** Allowed operand-kind bitmask. */
enum : unsigned
{
    kNone = 1u << 0,
    kReg = 1u << 1,
    kSlice = 1u << 2,
    kImm = 1u << 3,
};

unsigned
kindBit(const MOpnd &o)
{
    switch (o.kind) {
      case MOpndKind::None: return kNone;
      case MOpndKind::Reg: return kReg;
      case MOpndKind::Slice: return kSlice;
      case MOpndKind::Imm: return kImm;
      case MOpndKind::VReg: return 0;
    }
    return 0;
}

const char *
kindName(const MOpnd &o)
{
    switch (o.kind) {
      case MOpndKind::None: return "none";
      case MOpndKind::Reg: return "reg";
      case MOpndKind::Slice: return "slice";
      case MOpndKind::Imm: return "imm";
      case MOpndKind::VReg: return "vreg";
    }
    return "?";
}

/** Operand-class contract of one opcode (see uarch/core.cc). */
struct OpndClasses
{
    unsigned dst;
    unsigned a;
    unsigned b;
};

OpndClasses
classesOf(MOp op)
{
    const unsigned src = kReg | kImm;
    const unsigned src8 = kSlice | kImm;
    switch (op) {
      case MOp::ADD: case MOp::SUB: case MOp::MUL:
      case MOp::UDIV: case MOp::SDIV: case MOp::AND:
      case MOp::ORR: case MOp::EOR: case MOp::LSL:
      case MOp::LSR: case MOp::ASR:
        return {kReg, src, src};
      case MOp::MOV:
        // Register-allocator copies move between classes freely (the
        // core's read/write helpers accept either side).
        return {kReg | kSlice, kReg | kSlice | kImm, kNone};
      case MOp::MVN:
        return {kReg, src, kNone};
      case MOp::MOVW: case MOp::MOVT:
        return {kReg, kImm, kNone};
      case MOp::CMP:
        return {kNone, src, src};
      case MOp::CMP8:
        return {kNone, src8, src8};
      case MOp::SETCC:
        return {kReg, kNone, kNone};
      case MOp::SXTH: case MOp::UXTH:
        return {kReg, kReg, kNone};
      case MOp::LDR: case MOp::LDRH: case MOp::LDRB:
        return {kReg, kReg, src};
      case MOp::LDRB8: case MOp::LDRS8:
        return {kSlice, kReg, src};
      case MOp::STR: case MOp::STRH: case MOp::STRB:
        return {kReg, kReg, src}; // dst = store data.
      case MOp::STRB8:
        return {kSlice, kReg, src};
      case MOp::ADD8: case MOp::SUB8: case MOp::AND8:
      case MOp::ORR8: case MOp::EOR8:
        return {kSlice, src8, src8};
      case MOp::MOV8:
        return {kSlice, src8, kNone};
      case MOp::UXT8: case MOp::SXT8:
        return {kReg, kSlice, kNone};
      case MOp::TRN8:
        return {kSlice, src, kNone};
      case MOp::B: case MOp::BL: case MOp::BXLR:
      case MOp::NOP: case MOp::HALT:
        return {kNone, kNone, kNone};
      case MOp::OUT:
        return {kNone, kReg | kSlice | kImm, kNone};
      case MOp::SETDELTA: case MOp::MODE:
        return {kNone, kImm, kNone};
    }
    return {kNone, kNone, kNone};
}

bool
specFlagAllowed(MOp op)
{
    return op == MOp::ADD8 || op == MOp::SUB8 || op == MOp::TRN8 ||
           op == MOp::LDRS8;
}

/** True when control cannot fall through past @p inst. */
bool
endsFallthrough(const MachInst &inst)
{
    return (inst.op == MOp::B && inst.cond == Cond::AL) ||
           inst.op == MOp::BXLR || inst.op == MOp::HALT;
}

class MirVerifier
{
  public:
    explicit MirVerifier(const MachFunction &mf) : mf_(mf) {}

    std::vector<std::string>
    run()
    {
        checkBlocks();
        checkCode();
        checkSpecGeometry();
        checkHandlerEntry();
        return std::move(problems_);
    }

  private:
    void
    problem(const std::string &msg)
    {
        problems_.push_back(mf_.name + ": " + msg);
    }

    void
    checkOperand(size_t idx, const MachInst &inst, const char *which,
                 const MOpnd &o, unsigned allowed)
    {
        if (o.isVReg()) {
            problem(strFormat(
                "code[%zu] %s: virtual register survived allocation "
                "(%s operand)", idx, mopName(inst.op), which));
            return;
        }
        if ((o.isReg() || o.isSlice()) && o.reg > kRegPC)
            problem(strFormat("code[%zu] %s: register %u out of range",
                              idx, mopName(inst.op), o.reg));
        if (o.isSlice() && o.slice > 3)
            problem(strFormat("code[%zu] %s: slice %u out of range",
                              idx, mopName(inst.op), o.slice));
        if ((kindBit(o) & allowed) == 0)
            problem(strFormat("code[%zu] %s: %s operand has kind %s",
                              idx, mopName(inst.op), which,
                              kindName(o)));
    }

    void
    checkBlocks()
    {
        for (size_t i = 0; i < mf_.blocks.size(); ++i) {
            if (mf_.blocks[i].id != static_cast<int>(i))
                problem(strFormat("blocks[%zu] has id %d", i,
                                  mf_.blocks[i].id));
            int h = mf_.blocks[i].handlerBlock;
            if (h >= 0) {
                if (static_cast<size_t>(h) >= mf_.blocks.size())
                    problem(strFormat(
                        "blocks[%zu]: handler id %d out of range", i,
                        h));
                else if (!mf_.blocks[h].isHandler)
                    problem(strFormat(
                        "blocks[%zu]: handler %d not marked isHandler",
                        i, h));
            }
        }
        if (!mf_.blocks.empty()) {
            auto it = mf_.blockIndex.find(0);
            if (it == mf_.blockIndex.end())
                problem("entry block missing from blockIndex");
            else if (mf_.entryIndex != it->second)
                problem(strFormat(
                    "entryIndex %u != blockIndex[entry] %u",
                    mf_.entryIndex, it->second));
        }
    }

    void
    checkCode()
    {
        std::set<uint32_t> starts;
        for (const auto &[id, at] : mf_.blockIndex) {
            (void)id;
            starts.insert(at);
        }
        for (size_t i = 0; i < mf_.code.size(); ++i) {
            const MachInst &inst = mf_.code[i];
            OpndClasses cls = classesOf(inst.op);
            checkOperand(i, inst, "dst", inst.dst, cls.dst);
            checkOperand(i, inst, "a", inst.a, cls.a);
            checkOperand(i, inst, "b", inst.b, cls.b);

            if (inst.speculative && !specFlagAllowed(inst.op))
                problem(strFormat(
                    "code[%zu] %s: speculative flag on an op without "
                    "a speculative variant", i, mopName(inst.op)));

            if (inst.op == MOp::B) {
                if (inst.target < 0 ||
                    static_cast<size_t>(inst.target) >=
                        mf_.code.size())
                    problem(strFormat(
                        "code[%zu] B: target %d outside code", i,
                        inst.target));
                else if (!starts.count(
                             static_cast<uint32_t>(inst.target)))
                    problem(strFormat(
                        "code[%zu] B: target %d is not a block start",
                        i, inst.target));
            } else if (inst.op == MOp::BL) {
                if (inst.target < 0)
                    problem(strFormat("code[%zu] BL: unresolved target",
                                      i));
            } else if (inst.op == MOp::SETDELTA) {
                if (inst.target == -2)
                    problem(strFormat(
                        "code[%zu] SETDELTA: unpatched placeholder",
                        i));
                else if (!inst.a.isImm() ||
                         inst.a.imm !=
                             static_cast<int64_t>(mf_.delta))
                    problem(strFormat(
                        "code[%zu] SETDELTA: imm %lld != delta %u", i,
                        static_cast<long long>(inst.a.imm),
                        mf_.delta));
            }
        }
    }

    /** Eq. 1/2 geometry: speculative area [0, Δ/4), skeleton area
     *  [Δ/4, 2·Δ/4), slot i targeting the handler of the region block
     *  owning emitted instruction i. */
    void
    checkSpecGeometry()
    {
        uint32_t spec_insts = mf_.delta / kInstBytes;
        if (mf_.delta % kInstBytes != 0)
            problem(strFormat("delta %u not a multiple of %u",
                              mf_.delta, kInstBytes));
        if (2ull * spec_insts > mf_.code.size()) {
            problem(strFormat(
                "delta %u implies %u skeleton slots but code has "
                "only %zu instructions", mf_.delta, spec_insts,
                mf_.code.size()));
            return;
        }

        // Region blocks in emitted order with their emitted ranges.
        std::vector<int> region_blocks;
        for (const auto &mb : mf_.blocks)
            if (mb.handlerBlock >= 0)
                region_blocks.push_back(mb.id);
        std::sort(region_blocks.begin(), region_blocks.end(),
                  [&](int x, int y) {
                      return mf_.blockIndex.at(x) <
                             mf_.blockIndex.at(y);
                  });

        for (size_t i = 0; i < mf_.code.size(); ++i) {
            const MachInst &inst = mf_.code[i];
            bool in_skeleton_area =
                i >= spec_insts && i < 2ull * spec_insts;
            if ((inst.tag == InstTag::Skeleton) != in_skeleton_area)
                problem(strFormat(
                    "code[%zu]: %s the skeleton area [%u, %u)", i,
                    inst.tag == InstTag::Skeleton
                        ? "skeleton instruction outside"
                        : "non-skeleton instruction inside",
                    spec_insts, 2 * spec_insts));
            if (mayMisspeculate(inst) && i >= spec_insts)
                problem(strFormat(
                    "code[%zu] %s: may misspeculate but sits outside "
                    "the speculative area [0, %u)", i,
                    mopName(inst.op), spec_insts));
        }

        for (size_t k = 0; k < region_blocks.size(); ++k) {
            int id = region_blocks[k];
            uint32_t start = mf_.blockIndex.at(id);
            uint32_t end = k + 1 < region_blocks.size()
                               ? mf_.blockIndex.at(region_blocks[k + 1])
                               : spec_insts;
            if (start > spec_insts || end > spec_insts) {
                problem(strFormat(
                    "region block %d emitted at [%u, %u), outside the "
                    "speculative area [0, %u)", id, start, end,
                    spec_insts));
                continue;
            }
            auto hit = mf_.blockIndex.find(
                mf_.blocks[id].handlerBlock);
            if (hit == mf_.blockIndex.end()) {
                problem(strFormat(
                    "region block %d: handler %d was never emitted",
                    id, mf_.blocks[id].handlerBlock));
                continue;
            }
            for (uint32_t j = start; j < end; ++j) {
                const MachInst &sk = mf_.code[spec_insts + j];
                if (sk.op != MOp::B ||
                    sk.tag != InstTag::Skeleton ||
                    sk.target != static_cast<int>(hit->second)) {
                    problem(strFormat(
                        "skeleton slot %u (code[%u]) does not branch "
                        "to handler %d of region block %d (Eq. 1/2 "
                        "slot mapping)", j, spec_insts + j,
                        mf_.blocks[id].handlerBlock, id));
                }
            }
        }

        // Blocks outside all regions must sit past the skeleton area.
        for (const auto &mb : mf_.blocks) {
            if (mb.handlerBlock >= 0)
                continue;
            auto it = mf_.blockIndex.find(mb.id);
            if (it != mf_.blockIndex.end() &&
                it->second < 2 * spec_insts &&
                it->second != mf_.code.size())
                problem(strFormat(
                    "non-region block %d emitted at %u, inside the "
                    "speculative/skeleton area [0, %u)", mb.id,
                    it->second, 2 * spec_insts));
        }
    }

    /** Handlers are entered by misspeculation only: never a branch
     *  target of normal code, never reachable by fall-through. */
    void
    checkHandlerEntry()
    {
        std::set<uint32_t> handler_starts;
        for (const auto &mb : mf_.blocks) {
            if (!mb.isHandler)
                continue;
            auto it = mf_.blockIndex.find(mb.id);
            if (it == mf_.blockIndex.end())
                continue;
            uint32_t at = it->second;
            handler_starts.insert(at);
            if (at > 0 && at <= mf_.code.size() &&
                !endsFallthrough(mf_.code[at - 1]))
                problem(strFormat(
                    "handler block %d at code[%u] is reachable by "
                    "fall-through from code[%u] (%s)", mb.id, at,
                    at - 1, mopName(mf_.code[at - 1].op)));
        }
        for (size_t i = 0; i < mf_.code.size(); ++i) {
            const MachInst &inst = mf_.code[i];
            if (inst.op == MOp::B &&
                inst.tag != InstTag::Skeleton && inst.target >= 0 &&
                handler_starts.count(
                    static_cast<uint32_t>(inst.target)))
                problem(strFormat(
                    "code[%zu]: non-skeleton branch targets a handler "
                    "block start (%d)", i, inst.target));
        }
    }

    const MachFunction &mf_;
    std::vector<std::string> problems_;
};

} // namespace

std::vector<std::string>
verifyMachFunction(const MachFunction &mf)
{
    return MirVerifier(mf).run();
}

void
mirVerifyOrDie(const MachFunction &mf, const std::string &when)
{
    std::vector<std::string> problems = verifyMachFunction(mf);
    if (problems.empty())
        return;
    std::string msg =
        "MIR verification failed (" + when + "):";
    for (const std::string &p : problems)
        msg += "\n  " + p;
    panic(msg);
}

} // namespace bitspec
