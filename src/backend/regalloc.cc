#include "backend/regalloc.h"

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "support/error.h"

namespace bitspec
{

namespace
{

/** A live interval as a set of disjoint [start, end] segments.
 *
 * Segments (rather than one [min, max] range) matter enormously for
 * BitSpec: values live into a misspeculation handler are used again
 * in the cold CFG_orig clone, and a single-range allocator would
 * stretch them across every hot loop in between, spilling the world.
 */
struct Interval
{
    uint32_t vreg = 0;
    bool isSlice = false;
    int start = 0; ///< First segment start (sort key).
    std::vector<std::pair<int, int>> segs; ///< Sorted, disjoint.
    int assignedReg = -1;
    int assignedSlice = -1;
    bool spilled = false;
    unsigned slot = 0;

    bool
    overlaps(const std::vector<std::pair<int, int>> &other) const
    {
        size_t i = 0, j = 0;
        while (i < segs.size() && j < other.size()) {
            if (segs[i].second < other[j].first)
                ++i;
            else if (other[j].second < segs[i].first)
                ++j;
            else
                return true;
        }
        return false;
    }

    int
    end() const
    {
        return segs.empty() ? start : segs.back().second;
    }
};

/** Busy segments assigned to one physical slot. */
struct SlotBusy
{
    std::vector<std::pair<int, int>> segs; ///< Sorted by start.

    bool
    conflicts(const Interval &iv) const
    {
        return iv.overlaps(segs);
    }

    void
    add(const Interval &iv)
    {
        segs.insert(segs.end(), iv.segs.begin(), iv.segs.end());
        std::sort(segs.begin(), segs.end());
    }
};

class Allocator
{
  public:
    explicit Allocator(MachFunction &mf)
        : mf_(mf), lastAlloc_(mf.lastAllocReg)
    {
        unsigned nregs = lastAlloc_ - kFirstAlloc + 1;
        wholeBusy_.resize(nregs);
        sliceBusy_.resize(nregs * 4);
    }

    BackendStats
    run()
    {
        numberInstructions();
        computeLiveness();
        buildIntervals();
        scan();
        rewrite();
        collectStats();
        return stats_;
    }

  private:
    template <typename Fn>
    static void
    forEachVReg(MachInst &inst, Fn fn)
    {
        bool dst_is_use = inst.op == MOp::STR || inst.op == MOp::STRH ||
                          inst.op == MOp::STRB || inst.op == MOp::STRB8;
        bool dst_also_use =
            ((inst.op == MOp::MOV || inst.op == MOp::MOV8) &&
             inst.cond != Cond::AL) ||
            inst.op == MOp::MOVT;
        if (inst.dst.isVReg())
            fn(inst.dst, !dst_is_use, dst_is_use || dst_also_use);
        if (inst.a.isVReg())
            fn(inst.a, false, true);
        if (inst.b.isVReg())
            fn(inst.b, false, true);
    }

    void
    numberInstructions()
    {
        int pos = 0;
        for (auto &mb : mf_.blocks) {
            blockStart_[mb.id] = pos;
            pos += static_cast<int>(mb.insts.size());
            blockEnd_[mb.id] = pos; // One past the last.
        }
    }

    void
    computeLiveness()
    {
        std::map<int, std::set<uint32_t>> use, def;
        for (auto &mb : mf_.blocks) {
            auto &u = use[mb.id];
            auto &d = def[mb.id];
            for (auto &inst : mb.insts) {
                forEachVReg(inst,
                            [&](MOpnd &o, bool is_def, bool is_use) {
                                if (is_use && !d.count(o.vreg))
                                    u.insert(o.vreg);
                                if (is_def)
                                    d.insert(o.vreg);
                            });
            }
        }

        // Successors including SMIR handler edges (Eq. 2).
        std::map<int, std::vector<int>> succs;
        for (auto &mb : mf_.blocks) {
            succs[mb.id] = mb.successors();
            if (mb.handlerBlock >= 0)
                succs[mb.id].push_back(mb.handlerBlock);
        }

        bool changed = true;
        while (changed) {
            changed = false;
            for (auto it = mf_.blocks.rbegin();
                 it != mf_.blocks.rend(); ++it) {
                std::set<uint32_t> out;
                for (int s : succs[it->id])
                    for (uint32_t v : liveIn_[s])
                        out.insert(v);
                std::set<uint32_t> in = use[it->id];
                for (uint32_t v : out)
                    if (!def[it->id].count(v))
                        in.insert(v);
                if (out != liveOut_[it->id] ||
                    in != liveIn_[it->id]) {
                    liveOut_[it->id] = std::move(out);
                    liveIn_[it->id] = std::move(in);
                    changed = true;
                }
            }
        }
    }

    void
    buildIntervals()
    {
        // Per-vreg raw segments (one per block where live/occurring),
        // merged afterwards.
        std::map<uint32_t, std::vector<std::pair<int, int>>> raw;

        for (auto &mb : mf_.blocks) {
            // First/last occurrence positions within the block.
            std::map<uint32_t, std::pair<int, int>> occur;
            int pos = blockStart_[mb.id];
            for (auto &inst : mb.insts) {
                forEachVReg(inst, [&](MOpnd &o, bool, bool) {
                    auto [it, fresh] =
                        occur.try_emplace(o.vreg,
                                          std::make_pair(pos, pos));
                    if (!fresh)
                        it->second.second = pos;
                });
                ++pos;
            }
            int bs = blockStart_[mb.id];
            int be = blockEnd_[mb.id] - 1;
            std::set<uint32_t> touched;
            for (auto &[vreg, fl] : occur) {
                int s = liveIn_[mb.id].count(vreg) ? bs : fl.first;
                int e = liveOut_[mb.id].count(vreg) ? be : fl.second;
                raw[vreg].emplace_back(s, e);
                touched.insert(vreg);
            }
            // Live-through without occurrence.
            for (uint32_t v : liveIn_[mb.id]) {
                if (!touched.count(v) && liveOut_[mb.id].count(v))
                    raw[v].emplace_back(bs, be);
            }
        }

        for (auto &[vreg, segs] : raw) {
            std::sort(segs.begin(), segs.end());
            Interval iv;
            iv.vreg = vreg;
            iv.isSlice = mf_.vregIsSlice[vreg];
            for (auto &[s, e] : segs) {
                if (!iv.segs.empty() && s <= iv.segs.back().second + 1)
                    iv.segs.back().second =
                        std::max(iv.segs.back().second, e);
                else
                    iv.segs.emplace_back(s, e);
            }
            iv.start = iv.segs.front().first;
            intervals_.push_back(std::move(iv));
        }
        std::sort(intervals_.begin(), intervals_.end(),
                  [](const Interval &a, const Interval &b) {
                      return a.start < b.start;
                  });
    }

    unsigned numRegs() const { return lastAlloc_ - kFirstAlloc + 1; }

    void
    scan()
    {
        for (Interval &iv : intervals_) {
            if (iv.isSlice)
                allocSlice(iv);
            else
                allocWhole(iv);
        }
    }

    /** A whole register is usable when neither its whole-reg busy set
     *  nor any of its slice busy sets conflict. */
    void
    allocWhole(Interval &iv)
    {
        for (unsigned r = 0; r < numRegs(); ++r) {
            if (wholeBusy_[r].conflicts(iv))
                continue;
            bool slice_conflict = false;
            for (unsigned s = 0; s < 4; ++s)
                slice_conflict |= sliceBusy_[r * 4 + s].conflicts(iv);
            if (slice_conflict)
                continue;
            wholeBusy_[r].add(iv);
            iv.assignedReg = static_cast<int>(kFirstAlloc + r);
            return;
        }
        spill(iv);
    }

    /** A slice is usable when its own busy set and the enclosing
     *  register's whole-reg busy set are both clear. Prefer packing
     *  into registers that already hold slices. */
    void
    allocSlice(Interval &iv)
    {
        int best_r = -1, best_s = -1;
        size_t best_used = 0;
        for (unsigned r = 0; r < numRegs(); ++r) {
            if (wholeBusy_[r].conflicts(iv))
                continue;
            for (unsigned s = 0; s < 4; ++s) {
                if (sliceBusy_[r * 4 + s].conflicts(iv))
                    continue;
                size_t used = sliceBusy_[r * 4].segs.size() +
                              sliceBusy_[r * 4 + 1].segs.size() +
                              sliceBusy_[r * 4 + 2].segs.size() +
                              sliceBusy_[r * 4 + 3].segs.size();
                if (best_r < 0 || used > best_used) {
                    best_r = static_cast<int>(r);
                    best_s = static_cast<int>(s);
                    best_used = used;
                }
                break;
            }
        }
        if (best_r >= 0) {
            sliceBusy_[best_r * 4 + best_s].add(iv);
            iv.assignedReg = static_cast<int>(kFirstAlloc + best_r);
            iv.assignedSlice = best_s;
            return;
        }
        spill(iv);
    }

    void
    spill(Interval &iv)
    {
        iv.spilled = true;
        iv.assignedReg = -1;
        iv.slot = mf_.spillSlots++;
        ++stats_.spilledVRegs;
    }

    // ---------------- Rewrite ----------------

    MOpnd
    physOpnd(const Interval &iv) const
    {
        if (iv.isSlice)
            return MOpnd::makeSlice(
                static_cast<unsigned>(iv.assignedReg),
                static_cast<unsigned>(iv.assignedSlice));
        return MOpnd::makeReg(static_cast<unsigned>(iv.assignedReg));
    }

    static MOpnd
    slotOffset(unsigned slot)
    {
        return MOpnd::makeImm(static_cast<int64_t>(slot) * 4);
    }

    void
    rewrite()
    {
        std::map<uint32_t, Interval *> iv_of;
        for (Interval &iv : intervals_)
            iv_of[iv.vreg] = &iv;

        for (auto &mb : mf_.blocks) {
            std::vector<MachInst> out;
            out.reserve(mb.insts.size());
            for (MachInst inst : mb.insts) {
                // Fold spills straight into physical-register moves
                // (argument setup / return values): using a scratch
                // there would clobber previously placed arguments.
                if (inst.op == MOp::MOV && inst.cond == Cond::AL &&
                    inst.dst.isReg() && inst.a.isVReg()) {
                    Interval *iv = iv_of.at(inst.a.vreg);
                    if (iv->spilled && !iv->isSlice) {
                        MachInst ld;
                        ld.op = MOp::LDR;
                        ld.dst = inst.dst;
                        ld.a = MOpnd::makeReg(kRegSP);
                        ld.b = slotOffset(iv->slot);
                        ld.tag = InstTag::SpillLoad;
                        out.push_back(ld);
                        continue;
                    }
                }
                if (inst.op == MOp::MOV && inst.cond == Cond::AL &&
                    inst.dst.isVReg() && inst.a.isReg()) {
                    Interval *iv = iv_of.at(inst.dst.vreg);
                    if (iv->spilled && !iv->isSlice) {
                        MachInst st;
                        st.op = MOp::STR;
                        st.dst = inst.a;
                        st.a = MOpnd::makeReg(kRegSP);
                        st.b = slotOffset(iv->slot);
                        st.tag = InstTag::SpillStore;
                        out.push_back(st);
                        continue;
                    }
                }

                std::vector<MachInst> loads, stores;
                auto fix = [&](MOpnd &o, bool is_def, bool is_use,
                               unsigned scratch) {
                    Interval *iv = iv_of.at(o.vreg);
                    if (!iv->spilled) {
                        o = physOpnd(*iv);
                        return;
                    }
                    MOpnd loc = iv->isSlice
                                    ? MOpnd::makeSlice(scratch, 0)
                                    : MOpnd::makeReg(scratch);
                    if (is_use) {
                        MachInst ld;
                        ld.op = iv->isSlice ? MOp::LDRB8 : MOp::LDR;
                        ld.dst = loc;
                        ld.a = MOpnd::makeReg(kRegSP);
                        ld.b = slotOffset(iv->slot);
                        ld.tag = InstTag::SpillLoad;
                        loads.push_back(ld);
                    }
                    if (is_def) {
                        MachInst st;
                        st.op = iv->isSlice ? MOp::STRB8 : MOp::STR;
                        st.dst = loc;
                        st.a = MOpnd::makeReg(kRegSP);
                        st.b = slotOffset(iv->slot);
                        st.tag = InstTag::SpillStore;
                        stores.push_back(st);
                    }
                    o = loc;
                };

                unsigned scratch = kScratch0;
                if (inst.a.isVReg())
                    fix(inst.a, false, true, scratch++);
                if (inst.b.isVReg())
                    fix(inst.b, false, true, scratch++);
                if (inst.dst.isVReg()) {
                    bool dst_is_use =
                        inst.op == MOp::STR || inst.op == MOp::STRH ||
                        inst.op == MOp::STRB || inst.op == MOp::STRB8;
                    bool dst_also_use =
                        ((inst.op == MOp::MOV ||
                          inst.op == MOp::MOV8) &&
                         inst.cond != Cond::AL) ||
                        inst.op == MOp::MOVT;
                    fix(inst.dst, !dst_is_use,
                        dst_is_use || dst_also_use, kScratch3);
                }

                for (auto &ld : loads)
                    out.push_back(ld);
                out.push_back(inst);
                for (auto &st : stores)
                    out.push_back(st);
            }
            mb.insts = std::move(out);
        }

        std::set<unsigned> used;
        for (Interval &iv : intervals_)
            if (!iv.spilled)
                used.insert(static_cast<unsigned>(iv.assignedReg));
        mf_.usedCalleeSaved.assign(used.begin(), used.end());
    }

    void
    collectStats()
    {
        for (auto &mb : mf_.blocks) {
            for (auto &inst : mb.insts) {
                ++stats_.staticInsts;
                if (inst.tag == InstTag::SpillLoad)
                    ++stats_.staticSpillLoads;
                else if (inst.tag == InstTag::SpillStore)
                    ++stats_.staticSpillStores;
                else if (inst.tag == InstTag::Copy)
                    ++stats_.staticCopies;
            }
        }
    }

    MachFunction &mf_;
    unsigned lastAlloc_;
    BackendStats stats_;
    std::map<int, int> blockStart_, blockEnd_;
    std::map<int, std::set<uint32_t>> liveIn_, liveOut_;
    std::vector<Interval> intervals_;
    std::vector<SlotBusy> wholeBusy_;  ///< Per register.
    std::vector<SlotBusy> sliceBusy_;  ///< Per register x 4 slices.
};

} // namespace

BackendStats
allocateRegisters(MachFunction &mf)
{
    return Allocator(mf).run();
}

} // namespace bitspec
