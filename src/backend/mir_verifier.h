/**
 * @file
 * Machine-IR verifier: structural sanity of a laid-out MachFunction.
 *
 * Runs after layoutFunction(), before linking, and checks what the
 * layout contract (paper §3.3.4, Eq. 1/2) promises the core:
 *
 *  - operands are allocated (no virtual registers survive), register
 *    and slice numbers are in range, and every operand kind is legal
 *    for its opcode's read/write position;
 *  - speculative flags appear only on the Table 1 ops that have a
 *    speculative variant, and every instruction that may
 *    misspeculate sits inside the speculative area (index < Δ/4);
 *  - the skeleton area occupies exactly [Δ/4, 2·Δ/4) and slot i
 *    branches to the handler of the region block that owns emitted
 *    speculative instruction i, so PC += Δ always lands on the right
 *    redirect;
 *  - SETDELTA immediates were patched to Δ;
 *  - branches land on block starts, handlers are entered only via
 *    skeleton branches, and no handler can be reached by falling
 *    through from the previous instruction in layout order.
 */

#ifndef BITSPEC_BACKEND_MIR_VERIFIER_H_
#define BITSPEC_BACKEND_MIR_VERIFIER_H_

#include <string>
#include <vector>

#include "backend/mir.h"

namespace bitspec
{

/** Verify @p mf; returns human-readable problems (empty = valid). */
std::vector<std::string> verifyMachFunction(const MachFunction &mf);

/** Panic with a diagnostic if @p mf fails verification. */
void mirVerifyOrDie(const MachFunction &mf, const std::string &when);

} // namespace bitspec

#endif // BITSPEC_BACKEND_MIR_VERIFIER_H_
