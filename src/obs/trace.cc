#include "obs/trace.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>

#include "obs/flightrec.h"
#include "support/env.h"
#include "support/log.h"

namespace bitspec::trace
{

std::atomic<bool> g_enabled{false};

namespace
{

using Clock = std::chrono::steady_clock;

/** Events of one thread. Appends lock the buffer's own (uncontended)
 *  mutex; the global registry mutex is taken only on thread
 *  registration and at flush. */
struct ThreadBuffer
{
    std::mutex mu;
    std::vector<Event> events;
    uint32_t tid = 0;
};

struct Registry
{
    std::mutex mu;
    /** shared_ptrs keep buffers alive after their thread exits, so a
     *  flush at process exit still sees worker events. */
    std::vector<std::shared_ptr<ThreadBuffer>> buffers;
    std::atomic<uint32_t> nextTid{1};
    Clock::time_point epoch = Clock::now();
};

Registry &
registry()
{
    static Registry r;
    return r;
}

ThreadBuffer &
localBuffer()
{
    thread_local std::shared_ptr<ThreadBuffer> buf = [] {
        auto b = std::make_shared<ThreadBuffer>();
        Registry &r = registry();
        b->tid = r.nextTid.fetch_add(1, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(r.mu);
        r.buffers.push_back(b);
        return b;
    }();
    return *buf;
}

uint64_t
nowNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            Clock::now() - registry().epoch)
            .count());
}

void
append(Event e)
{
    ThreadBuffer &b = localBuffer();
    e.tid = b.tid;
    std::lock_guard<std::mutex> lock(b.mu);
    b.events.push_back(std::move(e));
}

void
jsonEscape(std::ostream &os, const std::string &s)
{
    for (char c : s) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\t': os << "\\t"; break;
          case '\r': os << "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                os << buf;
            } else {
                os << c;
            }
        }
    }
}

/** Arg values that parse fully as numbers are emitted unquoted so
 *  counter tracks and numeric annotations stay numeric in Perfetto. */
bool
looksNumeric(const std::string &s)
{
    if (s.empty())
        return false;
    char *end = nullptr;
    std::strtod(s.c_str(), &end);
    return end && *end == '\0';
}

void
writeEvent(std::ostream &os, const Event &e)
{
    os << "{\"name\":\"";
    jsonEscape(os, e.name);
    os << "\",\"cat\":\"" << (e.cat && *e.cat ? e.cat : "bitspec")
       << "\",\"ph\":\"" << e.phase << "\",\"pid\":1,\"tid\":" << e.tid;
    if (e.phase != 'M') {
        char ts[48];
        std::snprintf(ts, sizeof ts, "%.3f",
                      static_cast<double>(e.tsNs) / 1000.0);
        os << ",\"ts\":" << ts;
    }
    if (e.phase == 'i')
        os << ",\"s\":\"t\"";
    if (!e.args.empty()) {
        os << ",\"args\":{";
        for (size_t i = 0; i < e.args.size(); ++i) {
            if (i)
                os << ",";
            os << "\"";
            jsonEscape(os, e.args[i].first);
            os << "\":";
            if (looksNumeric(e.args[i].second)) {
                os << e.args[i].second;
            } else {
                os << "\"";
                jsonEscape(os, e.args[i].second);
                os << "\"";
            }
        }
        os << "}";
    }
    os << "}";
}

/** Reads BITSPEC_TRACE once at static-init time: enables tracing,
 *  names the main thread, and registers the at-exit export. */
struct EnvInit
{
    EnvInit()
    {
        std::string path = env::getString("BITSPEC_TRACE");
        if (path.empty())
            return;
        static std::string s_path;
        s_path = path;
        g_enabled.store(true, std::memory_order_relaxed);
        nameThisThread("main");
        std::atexit([] {
            if (!writeTo(s_path))
                log::error("BITSPEC_TRACE: cannot write %s",
                           s_path.c_str());
            else
                log::info("BITSPEC_TRACE: wrote %s", s_path.c_str());
        });
    }
};

EnvInit g_envInit;

} // namespace

Span::Span(std::string name, const char *category)
    : live_(enabled()), name_(std::move(name)), cat_(category)
{
    // The flight recorder rides along even when tracing is off: its
    // rings are bounded, so always-on capture cannot grow memory the
    // way the trace buffers would.
    if (flightrec::active())
        flightrec::record('B', name_.c_str(), cat_, "");
    if (!live_)
        return;
    Event e;
    e.name = name_;
    e.cat = cat_;
    e.phase = 'B';
    e.tsNs = nowNs();
    append(std::move(e));
}

Span::~Span()
{
    if (flightrec::active())
        flightrec::record('E', name_.c_str(), cat_, "");
    if (!live_)
        return;
    Event e;
    e.name = std::move(name_);
    e.cat = cat_;
    e.phase = 'E';
    e.tsNs = nowNs();
    e.args = std::move(args_);
    append(std::move(e));
}

void
Span::arg(std::string key, std::string value)
{
    if (!live_)
        return;
    args_.emplace_back(std::move(key), std::move(value));
}

void
instant(std::string name, const char *category,
        std::vector<std::pair<std::string, std::string>> args)
{
    if (flightrec::active()) {
        char detail[96];
        size_t len = 0;
        detail[0] = 0;
        for (const auto &[key, value] : args) {
            int n = std::snprintf(detail + len, sizeof detail - len,
                                  "%s%s=%s", len ? " " : "",
                                  key.c_str(), value.c_str());
            if (n < 0 ||
                static_cast<size_t>(n) >= sizeof detail - len)
                break;
            len += static_cast<size_t>(n);
        }
        flightrec::record('i', name.c_str(), category, detail);
    }
    if (!enabled())
        return;
    Event e;
    e.name = std::move(name);
    e.cat = category;
    e.phase = 'i';
    e.tsNs = nowNs();
    e.args = std::move(args);
    append(std::move(e));
}

void
counter(std::string name, const char *category, double value)
{
    char buf[48];
    std::snprintf(buf, sizeof buf, "%.17g", value);
    if (flightrec::active())
        flightrec::record('C', name.c_str(), category, buf);
    if (!enabled())
        return;
    Event e;
    e.name = std::move(name);
    e.cat = category;
    e.phase = 'C';
    e.tsNs = nowNs();
    e.args.emplace_back("value", buf);
    append(std::move(e));
}

void
nameThisThread(const std::string &name)
{
    if (!enabled())
        return;
    thread_local bool named = false;
    if (named)
        return;
    named = true;
    ThreadBuffer &b = localBuffer();
    Event e;
    e.name = "thread_name";
    e.phase = 'M';
    e.args.emplace_back("name",
                        name + "-" + std::to_string(b.tid));
    append(std::move(e));
}

void
setEnabled(bool on)
{
    g_enabled.store(on, std::memory_order_relaxed);
}

std::vector<Event>
snapshot()
{
    Registry &r = registry();
    std::vector<std::shared_ptr<ThreadBuffer>> bufs;
    {
        std::lock_guard<std::mutex> lock(r.mu);
        bufs = r.buffers;
    }
    std::vector<Event> out;
    for (const auto &b : bufs) {
        std::lock_guard<std::mutex> lock(b->mu);
        out.insert(out.end(), b->events.begin(), b->events.end());
    }
    return out;
}

size_t
eventCount()
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    size_t n = 0;
    for (const auto &b : r.buffers) {
        std::lock_guard<std::mutex> bl(b->mu);
        n += b->events.size();
    }
    return n;
}

void
reset()
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    for (const auto &b : r.buffers) {
        std::lock_guard<std::mutex> bl(b->mu);
        b->events.clear();
    }
}

std::string
toJson()
{
    std::ostringstream os;
    os << "{\"traceEvents\":[\n";
    std::vector<Event> events = snapshot();
    for (size_t i = 0; i < events.size(); ++i) {
        writeEvent(os, events[i]);
        os << (i + 1 < events.size() ? ",\n" : "\n");
    }
    os << "],\"displayTimeUnit\":\"ms\"}\n";
    return os.str();
}

bool
writeTo(const std::string &path)
{
    std::ofstream of(path, std::ios::trunc);
    if (!of)
        return false;
    of << toJson();
    return static_cast<bool>(of);
}

} // namespace bitspec::trace
