/**
 * @file
 * Unified metrics registry: named counters, gauges and histograms
 * with labels, behind one queryable interface.
 *
 * Before this existed, every subsystem grew its own stats struct
 * (ActivityCounters, SqueezeStats, lint verdict tallies, experiment
 * cache hits) and every bench re-plumbed them by hand. The registry
 * absorbs those at the recording edges (System build, experiment
 * cells) so any harness can ask "what happened" once, then render it
 * as a human table or JSON lines.
 *
 * Naming convention (DESIGN.md "Observability"):
 *   <subsystem>.<noun>[.<qualifier>]  e.g. experiment.cache.hits,
 *   run.misspeculations, squeeze.regions. Labels carry dimensions
 *   (workload=CRC32), never facts that belong in the name.
 *
 * Thread safety: instrument handles are stable pointers; Counter adds
 * are a single relaxed atomic RMW, Gauge sets a relaxed store, and
 * Histogram records take a per-instrument mutex. Registration takes
 * the registry mutex. Snapshots are sorted by (name, labels), so
 * output is deterministic regardless of recording interleavings and
 * metric families stay contiguous — only ordering is deterministic;
 * values of timing histograms naturally vary.
 *
 * Set BITSPEC_METRICS=<path> to export the global registry as JSON
 * lines at process exit (the machine sink's BITSPEC_TRACE twin).
 */

#ifndef BITSPEC_OBS_METRICS_H_
#define BITSPEC_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "support/stats.h"

namespace bitspec
{

/** Monotonic event count. */
class Counter
{
  public:
    void
    add(uint64_t n = 1)
    {
        v_.fetch_add(n, std::memory_order_relaxed);
    }

    uint64_t value() const { return v_.load(std::memory_order_relaxed); }

  private:
    std::atomic<uint64_t> v_{0};
};

/** Last-write-wins instantaneous value. */
class Gauge
{
  public:
    void set(double v) { v_.store(v, std::memory_order_relaxed); }
    double value() const { return v_.load(std::memory_order_relaxed); }

  private:
    std::atomic<double> v_{0.0};
};

/** Distribution of samples with p50/p95/p99 queries. */
class HistogramMetric
{
  public:
    void
    record(double x)
    {
        std::lock_guard<std::mutex> lock(mu_);
        h_.add(x);
    }

    /** Copy-out under the lock; queries run on the copy. */
    Histogram
    snapshotValues() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return h_;
    }

  private:
    mutable std::mutex mu_;
    Histogram h_;
};

/** One metric's identity + current value in a registry snapshot. */
struct MetricSample
{
    enum class Kind { Counter, Gauge, Histogram };

    std::string name;
    std::vector<std::pair<std::string, std::string>> labels;
    Kind kind = Kind::Counter;
    double value = 0;     ///< Counter/Gauge value; Histogram sum.
    Histogram histogram;  ///< Populated for histograms only.
};

/**
 * The registry. Use MetricsRegistry::global() for the process-wide
 * instance; tests may construct private registries.
 */
class MetricsRegistry
{
  public:
    using Labels = std::vector<std::pair<std::string, std::string>>;

    static MetricsRegistry &global();

    /** Find-or-create; the returned reference is stable forever. */
    Counter &counter(const std::string &name, const Labels &labels = {});
    Gauge &gauge(const std::string &name, const Labels &labels = {});
    HistogramMetric &histogram(const std::string &name,
                               const Labels &labels = {});

    /** All instruments, sorted by (name, labels) for stable output. */
    std::vector<MetricSample> snapshot() const;

    /** One JSON object per line per metric (machine sink). */
    void writeJsonLines(std::ostream &os) const;

    /** Aligned human-readable table (histograms show count/mean/
     *  p50/p95/p99). */
    void writeTable(std::ostream &os) const;

    /** Drop every instrument (test isolation between cases). */
    void reset();

  private:
    struct Instrument
    {
        std::string name;
        Labels labels;
        MetricSample::Kind kind;
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<HistogramMetric> histogram;
    };

    Instrument &get(const std::string &name, const Labels &labels,
                    MetricSample::Kind kind);

    mutable std::mutex mu_;
    std::map<std::string, Instrument> instruments_;
};

} // namespace bitspec

#endif // BITSPEC_OBS_METRICS_H_
