/**
 * @file
 * Misspeculation attribution: which speculative site misspeculated,
 * how often, and what it cost (paper Fig. 9 / §5 reasoning, made
 * queryable per region instead of as one aggregate counter).
 *
 * The pipeline threads a region identity end to end: the frontend
 * stamps source lines on IR instructions, the squeezer stamps
 * (id, srcLine) on each SpecRegion it creates, isel copies both onto
 * the region's MachBlocks, and layout/link place those blocks at flat
 * code indices. AttributionMap inverts that placement: flat index ->
 * (site, role), where role distinguishes the speculative member
 * blocks, their Eq. 1/2 skeleton slots, and the handler blocks.
 *
 * AttributionSink is the hot-path recorder the Core drives when (and
 * only when) a sink is attached — one table load per retired
 * instruction, zero cost for runs without a sink (a null-pointer test
 * in Core::run).
 *
 * The report layer folds a finished run into per-region rows:
 * misspeculation count and rate, handler/skeleton instructions and
 * cycles, and an energy split (recovery + handler overhead vs. the
 * squeeze savings attributed proportionally to each region's
 * speculative instructions). The misspec-count column is exact —
 * tests assert the per-region sum equals
 * ActivityCounters::misspeculations; the energy columns are a model
 * estimate documented in DESIGN.md.
 */

#ifndef BITSPEC_OBS_ATTRIBUTION_H_
#define BITSPEC_OBS_ATTRIBUTION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "backend/mir.h"
#include "energy/model.h"

namespace bitspec
{

/** Static identity of one speculative region in a linked program. */
struct RegionSite
{
    std::string function;
    int regionId = -1;
    int srcLine = 0;         ///< 1-based; 0 when unknown.
    uint32_t entryIndex = 0; ///< Flat index of the region's first inst.
    /** Speculative non-interference verdict of the region's final
     *  lint (analysis/taint.h): undischarged leak sinks and sinks
     *  discharged by D1/D2/D5. Static facts, not run tallies. */
    int leakSites = 0;
    int leaksDischarged = 0;
};

/** Flat-index role classification. */
enum class IndexRole : uint8_t
{
    None = 0, ///< Outside any region artefact.
    Member,   ///< Speculative-area instruction of a region.
    Skeleton, ///< The member's Eq. 1/2 skeleton slot.
    Handler,  ///< Handler-block instruction.
};

/** Immutable flat-index -> region-site mapping for one program. */
class AttributionMap
{
  public:
    explicit AttributionMap(const MachProgram &prog);

    const std::vector<RegionSite> &sites() const { return sites_; }

    IndexRole
    roleAt(uint32_t idx) const
    {
        return idx < info_.size() ? info_[idx].role : IndexRole::None;
    }

    /** Site index at @p idx (any role), or -1. */
    int
    siteAt(uint32_t idx) const
    {
        return idx < info_.size() ? info_[idx].site : -1;
    }

    /** Site whose region entry sits at @p idx, or -1. */
    int
    entrySiteAt(uint32_t idx) const
    {
        return idx < info_.size() ? info_[idx].entrySite : -1;
    }

  private:
    struct IndexInfo
    {
        int32_t site = -1;
        int32_t entrySite = -1;
        IndexRole role = IndexRole::None;
    };

    std::vector<IndexInfo> info_;
    std::vector<RegionSite> sites_;
};

/** Dynamic per-region tallies of one run. */
struct RegionActivity
{
    uint64_t entries = 0;       ///< Executions of the region entry.
    uint64_t misspecs = 0;
    uint64_t specInsts = 0;     ///< Member-block instructions retired.
    uint64_t specCycles = 0;
    uint64_t skeletonInsts = 0; ///< Redirect-path skeleton branches.
    uint64_t handlerInsts = 0;
    uint64_t handlerCycles = 0; ///< Includes skeleton-branch cycles.
};

/**
 * Recorder attached to a Core run (Core::setAttribution). The Core
 * calls onInst for every retired instruction with that instruction's
 * cycle cost, and onMisspec for every misspeculation redirect.
 */
class AttributionSink
{
  public:
    /** @p map must outlive the sink. */
    explicit AttributionSink(const AttributionMap &map) : map_(&map)
    {
        activity_.resize(map.sites().size());
    }

    void
    onInst(uint32_t idx, uint64_t cycles)
    {
        int entry = map_->entrySiteAt(idx);
        if (entry >= 0)
            ++activity_[static_cast<size_t>(entry)].entries;
        int site = map_->siteAt(idx);
        if (site < 0)
            return;
        RegionActivity &a = activity_[static_cast<size_t>(site)];
        switch (map_->roleAt(idx)) {
          case IndexRole::Member:
            ++a.specInsts;
            a.specCycles += cycles;
            break;
          case IndexRole::Skeleton:
            ++a.skeletonInsts;
            ++a.handlerInsts;
            a.handlerCycles += cycles;
            break;
          case IndexRole::Handler:
            ++a.handlerInsts;
            a.handlerCycles += cycles;
            break;
          case IndexRole::None:
            break;
        }
    }

    void
    onMisspec(uint32_t idx)
    {
        int site = map_->siteAt(idx);
        if (site >= 0)
            ++activity_[static_cast<size_t>(site)].misspecs;
        else
            ++unattributedMisspecs_;
    }

    const std::vector<RegionActivity> &activity() const
    {
        return activity_;
    }

    /** Sum of per-region misspeculation counts; tests assert this
     *  equals ActivityCounters::misspeculations. */
    uint64_t totalMisspecs() const;

    /** Misspeculations at indices outside every region (always 0 when
     *  the MIR verifier holds; kept as a tripwire). */
    uint64_t unattributedMisspecs() const { return unattributedMisspecs_; }

  private:
    const AttributionMap *map_;
    std::vector<RegionActivity> activity_;
    uint64_t unattributedMisspecs_ = 0;
};

/** One row of the per-site report. */
struct RegionReportRow
{
    RegionSite site;
    RegionActivity activity;
    double misspecRate = 0;   ///< misspecs / entries.
    double overheadPj = 0;    ///< Recovery + handler/skeleton energy.
    double savedPj = 0;       ///< Share of the gross squeeze savings.
    double netPj = 0;         ///< savedPj - overheadPj.
};

/** Inputs the energy columns need; zeros disable those columns. */
struct RegionReportInputs
{
    EnergyParams energy;
    /** Squeezed run totals (for the average-EPI handler estimate). */
    uint64_t totalInstructions = 0;
    double totalEnergyPj = 0;
    /** Unsqueezed-baseline total energy of the same workload/input;
     *  0 when no baseline run is available. */
    double baselineEnergyPj = 0;
};

/**
 * Fold one finished run into report rows (site order). Energy model:
 * overhead = misspecs * misspecRecovery + handlerInsts * avg-EPI;
 * gross savings = (baseline - squeezed) + total overhead, split
 * across regions proportionally to their speculative instruction
 * counts; net = saved - overhead.
 */
std::vector<RegionReportRow>
buildRegionReport(const AttributionMap &map, const AttributionSink &sink,
                  const RegionReportInputs &inputs);

/**
 * Render @p rows as an aligned table. @p source_file labels the
 * file:line provenance column (workloads are single-file programs).
 */
std::string formatRegionReport(const std::vector<RegionReportRow> &rows,
                               const std::string &source_file);

} // namespace bitspec

#endif // BITSPEC_OBS_ATTRIBUTION_H_
