/**
 * @file
 * The run ledger: schema-versioned JSONL provenance + telemetry
 * records, one per experiment cell (DESIGN.md "Run ledger &
 * forensics").
 *
 * The bench_gate trajectory (obs/trajectory.h) answers "did a rate
 * regress"; the ledger answers "what exactly produced the numbers" so
 * the diff engine (obs/diff.h) can answer "where". Every record
 * carries two halves:
 *
 *  - Provenance: the producing build flavour (git describe + build
 *    type + snapshot schema hash), bench binary, canonicalized
 *    SystemConfig key, artifact-store key and cache tier that served
 *    the System (compile / memory / disk), all BITSPEC_* env knobs in
 *    effect, and every seed. A record is a recipe: any cell can be
 *    re-run from its ledger line alone.
 *  - Telemetry: the complete observable surface of the run — every
 *    ActivityCounters field, cache/DRAM stats, the energy ledger,
 *    wall time, log-event counts, squeeze/expand/backend stats, and
 *    (in detail mode) per-region misspeculation attribution plus the
 *    top-K per-block heat rows with exact whole-run sums for
 *    reconciliation against the aggregate counters.
 *
 * Writing is crash-safe by the same reasoning as the artifact store's
 * atomic publish: each record is formatted completely, then appended
 * with one O_APPEND write(2), so concurrent writers (worker threads,
 * even multiple processes sharing BITSPEC_LEDGER) never interleave
 * mid-record and a crash can only tear the final line — which the
 * loader, like obs/trajectory's, skips instead of failing on.
 *
 * Knobs: BITSPEC_LEDGER=<path> enables the global writer;
 * BITSPEC_LEDGER_DETAIL=1 additionally attaches attribution + block
 * profiler sinks to every cell (documented cost: region/heat rows
 * disable the FastCore replay fast path for those runs).
 */

#ifndef BITSPEC_OBS_LEDGER_H_
#define BITSPEC_OBS_LEDGER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "energy/model.h"
#include "uarch/cache.h"
#include "uarch/counters.h"

namespace bitspec
{

/** Current record schema. Bump on incompatible change; the loader
 *  skips records with a newer schema than it understands. */
constexpr int kLedgerSchemaVersion = 1;

/** One named scalar in a record's flat telemetry map. */
struct LedgerField
{
    std::string name;
    double value = 0;
};

/** Per-region attribution row (detail mode; obs/attribution). */
struct LedgerRegionRow
{
    std::string function;
    int regionId = -1;
    int srcLine = 0;
    uint64_t entries = 0;
    uint64_t misspecs = 0;
    uint64_t specInsts = 0;
    uint64_t handlerInsts = 0;
    uint64_t handlerCycles = 0;
};

/** Per-block heat row (detail mode; obs/profiler, top-K by cycles). */
struct LedgerHeatRow
{
    std::string function;
    std::string block;
    int regionId = -1;
    int srcLine = 0;
    uint64_t entries = 0;
    uint64_t insts = 0;
    uint64_t cycles = 0;
    uint64_t misspecs = 0;
};

/** One ledger line: a cell record or a matrix summary record. */
struct LedgerRecord
{
    int schemaVersion = kLedgerSchemaVersion;
    /** "cell" = one experiment cell; "matrix" = per-matrix summary
     *  (cell count + wall-time percentiles). */
    std::string kind = "cell";

    /** @name Provenance */
    /// @{
    std::string flavour;     ///< artifact::buildFlavour().
    std::string bench;       ///< Producing binary (argv[0] basename).
    std::string workload;    ///< Workload name ("" for matrix kind).
    /** Flavour-free canonical join key — stable across builds, so two
     *  ledgers from different commits still join cell-for-cell. */
    std::string cellKey;
    std::string systemKey;   ///< Full canonical key (with flavour).
    std::string artifactKey; ///< 128-bit system key hash, hex.
    std::string cacheSource; ///< "compile" | "memory" | "disk".
    std::string engine;      ///< Core engine that ran the cell.
    std::string policy;      ///< Misspeculation policy name.
    uint64_t profileSeed = 0;
    uint64_t runSeed = 0;
    uint64_t policySeed = 0;
    /** 64-bit output checksum, hex (kept out of `fields` — a double
     *  cannot hold 64 bits exactly). */
    std::string outputChecksum;
    /** Every BITSPEC_* env var set in the producing process, sorted
     *  by name. */
    std::vector<std::pair<std::string, std::string>> env;
    /// @}

    /** Flat telemetry map, sorted by name on serialization. */
    std::vector<LedgerField> fields;
    std::vector<LedgerRegionRow> regions;
    std::vector<LedgerHeatRow> heat;

    /** Value of @p name, or nullopt when absent. */
    std::optional<double> field(const std::string &name) const;

    /** Insert-or-overwrite @p name. */
    void setField(const std::string &name, double value);
};

/** Fill the run-observable telemetry fields (counters.*, cache.*,
 *  dram.*, energy.*, run.*) from one finished run. */
void fillRunTelemetry(LedgerRecord &rec, const ActivityCounters &c,
                      const CacheStats &l1i, const CacheStats &l1d,
                      const CacheStats &l2, const DramStats &dram,
                      const EnergyBreakdown &energy, double total_pj,
                      double epi_pj, double mean_v,
                      uint32_t return_value, uint64_t output_checksum,
                      double wall_sec);

/** Every BITSPEC_* variable of this process, sorted by name. */
std::vector<std::pair<std::string, std::string>> captureBitspecEnv();

/** Serialize as one JSON line (no trailing newline). */
std::string toJsonLine(const LedgerRecord &rec);

/** Parse one ledger line; nullopt for blank / torn / newer-schema
 *  lines (the loader skips them). */
std::optional<LedgerRecord> parseLedgerLine(const std::string &line);

/** All parseable records of @p path in file order; empty when the
 *  file is missing. */
std::vector<LedgerRecord> loadLedger(const std::string &path);

/**
 * Schema validation: "" when @p rec is well-formed, else the first
 * violation. Checks provenance completeness, required telemetry
 * fields, that the energy breakdown sums exactly to the model total,
 * and — when detail rows are present — that region misspecs and the
 * recorded heat totals reconcile exactly with ActivityCounters
 * (ledger_selfcheck runs this over a live matrix).
 */
std::string validateLedgerRecord(const LedgerRecord &rec);

/**
 * Crash-safe JSONL appender. Thread-safe without locking: append()
 * issues a single O_APPEND write(2) per record, so records from any
 * number of threads or processes land whole and in arrival order.
 */
class LedgerWriter
{
  public:
    /** Opens (creating parent directories) for append. */
    explicit LedgerWriter(const std::string &path);
    ~LedgerWriter();

    LedgerWriter(const LedgerWriter &) = delete;
    LedgerWriter &operator=(const LedgerWriter &) = delete;

    bool ok() const { return fd_ >= 0; }
    const std::string &path() const { return path_; }
    uint64_t recordsWritten() const;

    /** Append @p rec as one line; false on I/O error. */
    bool append(const LedgerRecord &rec);

    /**
     * The process-wide writer configured by BITSPEC_LEDGER, or
     * nullptr when the knob is unset/empty and no override is
     * installed. First call reads the env.
     */
    static LedgerWriter *global();

    /** Replace the global writer (tests, benches); nullptr disables
     *  ledger emission regardless of the env. */
    static void setGlobal(std::unique_ptr<LedgerWriter> writer);

    /** BITSPEC_LEDGER_DETAIL (or the setDetail override): attach
     *  attribution + heat sinks to every ledgered cell. */
    static bool detailEnabled();
    static void setDetail(bool on);

  private:
    std::string path_;
    int fd_ = -1;
    std::atomic<uint64_t> written_{0};
};

} // namespace bitspec

#endif // BITSPEC_OBS_LEDGER_H_
