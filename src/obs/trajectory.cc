#include "obs/trajectory.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "support/str.h"

namespace bitspec
{

namespace
{

void
jsonEscape(std::string &out, const std::string &s)
{
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
}

std::string
fmtNum(double v)
{
    char buf[48];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

/** Value of `"key":<number>` at/after @p from; nullopt when absent.
 *  Tolerates whitespace after the colon (google-benchmark style). */
std::optional<double>
numberAfter(const std::string &text, const std::string &key,
            size_t from = 0)
{
    size_t at = text.find("\"" + key + "\":", from);
    if (at == std::string::npos)
        return std::nullopt;
    const char *p = text.c_str() + at + key.size() + 3;
    char *end = nullptr;
    double v = std::strtod(p, &end);
    if (end == p)
        return std::nullopt;
    return v;
}

/** Value of `"key":"<string>"` at/after @p from. */
std::optional<std::string>
stringAfter(const std::string &text, const std::string &key,
            size_t from = 0)
{
    size_t at = text.find("\"" + key + "\":", from);
    if (at == std::string::npos)
        return std::nullopt;
    size_t open = text.find('"', at + key.size() + 3);
    if (open == std::string::npos)
        return std::nullopt;
    std::string out;
    for (size_t i = open + 1; i < text.size(); ++i) {
        char c = text[i];
        if (c == '\\' && i + 1 < text.size()) {
            out += text[++i];
            continue;
        }
        if (c == '"')
            return out;
        out += c;
    }
    return std::nullopt;
}

} // namespace

std::optional<double>
TrajectoryRecord::value(const std::string &name) const
{
    for (const TrajectorySeries &s : series)
        if (s.name == name)
            return s.value;
    return std::nullopt;
}

bool
isGatedSeries(const std::string &name)
{
    return name.rfind("rate.", 0) == 0 ||
           name.rfind("speedup.", 0) == 0;
}

std::string
toJsonLine(const TrajectoryRecord &rec)
{
    std::vector<TrajectorySeries> sorted = rec.series;
    std::sort(sorted.begin(), sorted.end(),
              [](const TrajectorySeries &a, const TrajectorySeries &b) {
                  return a.name < b.name;
              });
    std::string out = "{\"schema_version\":" +
                      std::to_string(rec.schemaVersion) +
                      ",\"git_sha\":\"";
    jsonEscape(out, rec.gitSha);
    out += "\",\"build_type\":\"";
    jsonEscape(out, rec.buildType);
    out += "\",\"timestamp\":\"";
    jsonEscape(out, rec.timestamp);
    out += "\",\"debug_build\":";
    out += rec.debugBuild ? "true" : "false";
    out += ",\"series\":{";
    for (size_t i = 0; i < sorted.size(); ++i) {
        if (i)
            out += ",";
        out += "\"";
        jsonEscape(out, sorted[i].name);
        out += "\":" + fmtNum(sorted[i].value);
    }
    out += "}}";
    return out;
}

std::optional<TrajectoryRecord>
parseJsonLine(const std::string &line)
{
    if (line.find_first_not_of(" \t\r\n") == std::string::npos)
        return std::nullopt;
    auto schema = numberAfter(line, "schema_version");
    if (!schema || static_cast<int>(*schema) < 1 ||
        static_cast<int>(*schema) > kTrajectorySchemaVersion)
        return std::nullopt;

    TrajectoryRecord rec;
    rec.schemaVersion = static_cast<int>(*schema);
    rec.gitSha = stringAfter(line, "git_sha").value_or("unknown");
    rec.buildType = stringAfter(line, "build_type").value_or("");
    rec.timestamp = stringAfter(line, "timestamp").value_or("");
    size_t dbg = line.find("\"debug_build\":");
    rec.debugBuild =
        dbg != std::string::npos &&
        line.compare(dbg + std::strlen("\"debug_build\":"), 4,
                     "true") == 0;

    size_t at = line.find("\"series\":{");
    if (at == std::string::npos)
        return std::nullopt;
    size_t i = at + std::strlen("\"series\":{");
    while (i < line.size() && line[i] != '}') {
        size_t open = line.find('"', i);
        if (open == std::string::npos)
            break;
        size_t close = line.find('"', open + 1);
        if (close == std::string::npos)
            break;
        size_t colon = line.find(':', close);
        if (colon == std::string::npos)
            break;
        const char *p = line.c_str() + colon + 1;
        char *end = nullptr;
        double v = std::strtod(p, &end);
        if (end == p)
            return std::nullopt; // Corrupt value: drop the record.
        rec.series.push_back(
            {line.substr(open + 1, close - open - 1), v});
        i = static_cast<size_t>(end - line.c_str());
        while (i < line.size() && (line[i] == ',' || line[i] == ' '))
            ++i;
    }
    return rec;
}

std::vector<TrajectoryRecord>
loadHistory(const std::string &path)
{
    std::vector<TrajectoryRecord> out;
    std::ifstream in(path);
    if (!in)
        return out;
    std::string line;
    while (std::getline(in, line))
        if (auto rec = parseJsonLine(line))
            out.push_back(std::move(*rec));
    return out;
}

bool
appendHistory(const std::string &path, const TrajectoryRecord &rec)
{
    std::error_code ec;
    std::filesystem::path p(path);
    if (p.has_parent_path())
        std::filesystem::create_directories(p.parent_path(), ec);
    std::ofstream of(path, std::ios::app);
    if (!of)
        return false;
    of << toJsonLine(rec) << "\n";
    return static_cast<bool>(of);
}

TrajectoryRecord
recordFromBenchJson(const std::string &json_text)
{
    TrajectoryRecord rec;
    rec.buildType =
        stringAfter(json_text, "library_build_type").value_or("");
    rec.debugBuild = rec.buildType == "debug";

    auto add = [&rec](const std::string &name,
                      std::optional<double> v) {
        if (v && *v > 0)
            rec.series.push_back({name, *v});
    };

    // google-benchmark counters: value follows the benchmark's
    // "name" entry.
    auto bench_counter = [&json_text](const std::string &bench,
                                      const std::string &counter)
        -> std::optional<double> {
        size_t at = json_text.find("\"name\": \"" + bench + "\"");
        if (at == std::string::npos)
            at = json_text.find("\"name\":\"" + bench + "\"");
        if (at == std::string::npos)
            return std::nullopt;
        return numberAfter(json_text, counter, at);
    };

    add("rate.interp_decoded_ir_per_s",
        bench_counter("BM_InterpreterThroughput/decoded",
                      "ir_instrs_per_s"));
    add("rate.interp_legacy_ir_per_s",
        bench_counter("BM_InterpreterThroughput/legacy",
                      "ir_instrs_per_s"));
    add("rate.interp_profiled_ir_per_s",
        bench_counter("BM_InterpreterProfiledThroughput/decoded",
                      "ir_instrs_per_s"));
    // Core engine A/B. The bare BM_CoreThroughput name is the pre-A/B
    // spelling of the legacy series; accept both so older BENCH_micro
    // files keep producing the gated legacy rate.
    auto core_legacy = bench_counter("BM_CoreThroughput/legacy",
                                     "machine_instrs_per_s");
    if (!core_legacy)
        core_legacy =
            bench_counter("BM_CoreThroughput", "machine_instrs_per_s");
    auto core_fast = bench_counter("BM_CoreThroughput/fast",
                                   "machine_instrs_per_s");
    add("rate.core_machine_per_s", core_legacy);
    add("rate.core_fast_machine_per_s", core_fast);
    if (core_legacy && core_fast && *core_legacy > 0 && *core_fast > 0)
        rec.series.push_back({"speedup.core_fast_vs_legacy",
                              *core_fast / *core_legacy});

    // experiment_smoke's observability section.
    size_t obs = json_text.find("\"observability\":");
    if (obs != std::string::npos) {
        add("rate.obs_disabled_ir_per_s",
            numberAfter(json_text, "disabled_rate", obs));
        add("rate.obs_prof_off_ir_per_s",
            numberAfter(json_text, "prof_off_rate", obs));
        auto overhead =
            numberAfter(json_text, "enabled_overhead_pct", obs);
        if (overhead)
            rec.series.push_back(
                {"obs.trace_overhead_pct", *overhead});
    }

    // experiment_smoke's artifact-store cold/warm A/B. The speedup is
    // gated (speedup. prefix): serving a compiled System from the
    // artifact store must stay far cheaper than recompiling.
    size_t art = json_text.find("\"artifact_store\":");
    if (art != std::string::npos) {
        add("time.compile_cold",
            numberAfter(json_text, "compile_cold_sec", art));
        add("time.compile_warm",
            numberAfter(json_text, "compile_warm_sec", art));
        add("speedup.artifact_warm_vs_cold",
            numberAfter(json_text, "speedup_warm_vs_cold", art));
    }

    // experiment_engine grid speedups.
    size_t eng = json_text.find("\"experiment_engine\":");
    if (eng != std::string::npos) {
        size_t at = eng;
        while ((at = json_text.find("\"name\": \"", at)) !=
               std::string::npos) {
            size_t open = at + std::strlen("\"name\": \"");
            size_t close = json_text.find('"', open);
            if (close == std::string::npos)
                break;
            std::string grid = json_text.substr(open, close - open);
            add("speedup." + grid,
                numberAfter(json_text, "speedup", close));
            at = close;
        }
    }
    return rec;
}

GateResult
checkAgainstHistory(const TrajectoryRecord &current,
                    const std::vector<TrajectoryRecord> &history,
                    const GateOptions &opts)
{
    // Rolling baseline: the last `window` records with the same debug
    // flag. Mismatched builds never form each other's baseline.
    std::vector<const TrajectoryRecord *> comparable;
    for (auto it = history.rbegin();
         it != history.rend() && comparable.size() < opts.window; ++it)
        if (it->debugBuild == current.debugBuild)
            comparable.push_back(&*it);

    GateResult result;
    result.baselineRuns = comparable.size();
    for (const TrajectorySeries &s : current.series) {
        SeriesVerdict v;
        v.name = s.name;
        v.current = s.value;
        v.gated = isGatedSeries(s.name);
        for (const TrajectoryRecord *rec : comparable)
            if (auto past = rec->value(s.name))
                v.baseline = std::max(v.baseline, *past);
        if (v.baseline > 0)
            v.deltaPct =
                100.0 * (v.current - v.baseline) / v.baseline;
        if (v.gated && v.baseline > 0) {
            auto it = opts.perSeriesDropPct.find(s.name);
            const double threshold = it != opts.perSeriesDropPct.end()
                                         ? it->second
                                         : opts.defaultDropPct;
            v.pass = v.deltaPct >= -threshold;
        }
        result.pass = result.pass && v.pass;
        result.verdicts.push_back(std::move(v));
    }
    return result;
}

std::string
formatGateResult(const GateResult &result)
{
    std::string out = strFormat("%-34s %14s %14s %9s  %s\n", "series",
                                "current", "baseline", "delta%",
                                "verdict");
    for (const SeriesVerdict &v : result.verdicts) {
        const char *verdict =
            !v.gated            ? "info"
            : v.baseline <= 0   ? "no-baseline"
            : v.pass            ? "pass"
                                : "FAIL";
        out += strFormat("%-34s %14.6g %14.6g %+8.2f%%  %s\n",
                         v.name.c_str(), v.current, v.baseline,
                         v.deltaPct, verdict);
    }
    if (result.baselineRuns == 0)
        out += strFormat(
            "no baseline, recording only; gate %s\n",
            result.pass ? "PASS" : "FAIL");
    else
        out += strFormat("baseline runs considered: %zu; gate %s\n",
                         result.baselineRuns,
                         result.pass ? "PASS" : "FAIL");
    return out;
}

} // namespace bitspec
