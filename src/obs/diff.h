/**
 * @file
 * bitspec-diff: regression forensics between two run ledgers
 * (obs/ledger.h).
 *
 * The trajectory gate says "a rate dropped"; this answers "which cell,
 * which stage, which region, which block". Two ledgers are joined on
 * the canonical flavour-free cell key — so a ledger written by last
 * week's build joins cell-for-cell with today's — and every telemetry
 * field is classified per cell:
 *
 *   Same      within tolerance (absolute or relative, per-field
 *             overridable),
 *   Improved  cost went down (every ledger field is a cost:
 *             instructions, cycles, misses, picojoules, seconds),
 *   Regressed cost went up beyond tolerance,
 *   Info      informational families (wall./log. by default) that
 *             drift with machine load and never fail a diff,
 *   Diverged  output checksum or return value changed — not a perf
 *             delta but a correctness alarm, reported first.
 *
 * For each regressed cell the drift is then localized down the
 * pipeline: the worst-drifting field family names the *stage*
 * (compile / execute / memory / energy), and when both records carry
 * detail rows the region with the largest misspeculation/handler
 * delta and the block with the largest cycle delta are named — the
 * same region/block identities the attribution and heat reports
 * print, so the forensic trail ends at source coordinates.
 *
 * Emitted as both a human table (formatLedgerDiff) and a machine
 * verdict (ledgerDiffToJson); `experiment_smoke bitspec-diff A B`
 * drives it from the command line and bench_gate auto-runs it against
 * the rolling-baseline ledger when the trajectory gate trips.
 */

#ifndef BITSPEC_OBS_DIFF_H_
#define BITSPEC_OBS_DIFF_H_

#include <map>
#include <string>
#include <vector>

#include "obs/ledger.h"

namespace bitspec
{

/** Tolerances and field-family policy for a ledger diff. */
struct DiffOptions
{
    /** |b - a| at or below this is Same regardless of magnitude. */
    double absTol = 0.0;
    /** |b - a| within this percentage of max(|a|, |b|) is Same. */
    double relTolPct = 0.0;
    /** Per-field relative-tolerance overrides (exact field name). */
    std::map<std::string, double> perFieldRelTolPct;
    /** Field-name prefixes reported but never regressed (timing and
     *  log noise by default). */
    std::vector<std::string> infoPrefixes = {"run.wall", "wall.",
                                             "log."};
};

enum class DriftClass
{
    Same,
    Improved,
    Regressed,
    Info,
    Diverged,
};

const char *driftClassName(DriftClass cls);

/** One field's movement between ledger A and ledger B. */
struct FieldDrift
{
    std::string name;
    double a = 0;
    double b = 0;
    double deltaPct = 0; ///< 100 * (b - a) / |a| (0 when a == 0).
    DriftClass cls = DriftClass::Same;
};

/** One joined cell's verdict. */
struct CellDiff
{
    std::string cellKey;
    std::string workload;
    std::string engine;
    std::string policy;
    /** Every non-Same drift, Diverged first, then by |deltaPct|. */
    std::vector<FieldDrift> drifts;
    bool regressed = false;
    bool diverged = false;

    /** @name Localization (filled for regressed/diverged cells) */
    /// @{
    std::string stage;  ///< compile|execute|memory|energy|output.
    std::string region; ///< Worst region delta, source coordinates.
    std::string block;  ///< Worst block delta, source coordinates.
    /// @}
};

/** Whole-diff result. */
struct LedgerDiff
{
    std::vector<CellDiff> cells; ///< Joined cells, worst first.
    std::vector<std::string> onlyA; ///< Cell keys with no B record.
    std::vector<std::string> onlyB; ///< Cell keys with no A record.
    size_t regressedCells = 0;
    size_t divergedCells = 0;
    size_t improvedCells = 0;

    bool
    clean() const
    {
        return regressedCells == 0 && divergedCells == 0;
    }
};

/** Join and classify. Matrix-summary records are ignored; duplicate
 *  cell keys keep the first occurrence. */
LedgerDiff diffLedgers(const std::vector<LedgerRecord> &a,
                       const std::vector<LedgerRecord> &b,
                       const DiffOptions &opts = {});

/** Human-readable drift table. @p verbose additionally lists Info
 *  drifts and clean cells. */
std::string formatLedgerDiff(const LedgerDiff &diff,
                             bool verbose = false);

/** Machine verdict as a single JSON object. */
std::string ledgerDiffToJson(const LedgerDiff &diff);

} // namespace bitspec

#endif // BITSPEC_OBS_DIFF_H_
