/**
 * @file
 * Guest-level per-block heat profiler: which MachBlocks burn the
 * cycles, where they came from in the source, and how execution
 * evolves over time.
 *
 * Three layers, mirroring obs/attribution:
 *
 *  - BlockMap statically partitions every flat code index of a linked
 *    MachProgram into block sites — a *total* partition, unlike
 *    AttributionMap's region-only view: the _start stub, handlers,
 *    skeleton slots (folded into their member block) and plain blocks
 *    are all covered, so dynamic per-block sums can reconcile exactly
 *    against the Core's aggregate ActivityCounters.
 *
 *  - BlockProfilerSink is the hot-path recorder the Core drives when
 *    attached (Core::setBlockProfiler): one array bump per retired
 *    instruction, one null-pointer test per retire when detached —
 *    the same contract as AttributionSink. Invariants (ctest-
 *    enforced): sum of per-block insts == counters.instructions, sum
 *    of cycles == counters.cycles, sum of misspecs ==
 *    counters.misspeculations.
 *
 *  - The report layer renders a finished run three ways: a heat-ranked
 *    annotated listing (top-N blocks by cycles with file:line
 *    provenance), folded stacks (source line -> SpecRegion ->
 *    MachBlock weighted by cycles) for flamegraph.pl / speedscope,
 *    and — via CounterTrackEmitter — windowed IPC / misspec-rate /
 *    cache-hit-rate samples emitted as Chrome trace-event 'C' counter
 *    phases into the BITSPEC_TRACE stream, next to the execution
 *    spans.
 *
 * Per-block energy is a model split, not a counter: pipeline energy
 * follows cycles, recovery follows misspecs, and the remaining event
 * energy is apportioned by retired instructions; the split sums back
 * to the run's total energy by construction.
 */

#ifndef BITSPEC_OBS_PROFILER_H_
#define BITSPEC_OBS_PROFILER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "backend/mir.h"
#include "energy/model.h"
#include "uarch/cache.h"
#include "uarch/counters.h"

namespace bitspec
{

/** Static identity of one profiled block site. */
struct BlockSite
{
    std::string function;
    std::string block;       ///< MachBlock name ("_start" for the stub).
    int blockId = -1;        ///< MachBlock id; -1 for the stub site.
    int regionId = -1;       ///< SpecRegion id, or -1 outside regions.
    int srcLine = 0;         ///< Region source line; 0 when unknown.
    bool isHandler = false;
    uint32_t startIndex = 0; ///< First flat index of the block.
    uint32_t staticInsts = 0; ///< Emitted instructions (incl. skeleton).
};

/**
 * Immutable flat-index -> block-site partition for one program.
 * Every index of prog.flat maps to exactly one site; Eq. 1/2 skeleton
 * slots map to the member block that owns them (slot j serves member
 * instruction j, paper §3.4).
 */
class BlockMap
{
  public:
    explicit BlockMap(const MachProgram &prog);

    const std::vector<BlockSite> &sites() const { return sites_; }

    /** Site index at @p idx, or -1 out of range. */
    int
    siteAt(uint32_t idx) const
    {
        return idx < info_.size() ? info_[idx].site : -1;
    }

    /** True when @p idx is the first instruction of its block (used
     *  to count block entries on the fall-through-free stub too). */
    bool
    isBlockHead(uint32_t idx) const
    {
        return idx < info_.size() && info_[idx].head;
    }

    size_t numIndices() const { return info_.size(); }

  private:
    friend class BlockProfilerSink;

    struct IndexInfo
    {
        int32_t site = -1;
        bool head = false;
    };

    std::vector<IndexInfo> info_;
    std::vector<BlockSite> sites_;
};

/** Dynamic per-block tallies of one run. */
struct BlockActivity
{
    uint64_t entries = 0;  ///< Retirements of the block head.
    uint64_t insts = 0;    ///< Instructions retired in the block.
    uint64_t cycles = 0;   ///< Cycles charged to those retirements.
    uint64_t misspecs = 0; ///< Misspeculations raised in the block.
};

/**
 * Recorder attached to a Core run (Core::setBlockProfiler). The Core
 * calls onInst for every retired instruction with its cycle cost and
 * onMisspec for every misspeculation redirect — the same
 * one-null-test-per-retire pattern as AttributionSink.
 */
class BlockProfilerSink
{
  public:
    /** @p map must outlive the sink. */
    explicit BlockProfilerSink(const BlockMap &map) : map_(&map)
    {
        activity_.resize(map.sites().size());
    }

    void
    onInst(uint32_t idx, uint64_t cycles)
    {
        if (idx >= map_->info_.size()) {
            ++unattributed_;
            return;
        }
        const BlockMap::IndexInfo &ii = map_->info_[idx];
        BlockActivity &a = activity_[static_cast<size_t>(ii.site)];
        a.entries += ii.head;
        ++a.insts;
        a.cycles += cycles;
    }

    void
    onMisspec(uint32_t idx)
    {
        if (idx >= map_->info_.size()) {
            ++unattributed_;
            return;
        }
        ++activity_[static_cast<size_t>(map_->info_[idx].site)]
              .misspecs;
    }

    const std::vector<BlockActivity> &activity() const
    {
        return activity_;
    }

    /** @name Aggregates; tests assert these equal the corresponding
     *  ActivityCounters fields exactly. */
    /// @{
    uint64_t totalInsts() const;
    uint64_t totalCycles() const;
    uint64_t totalMisspecs() const;
    /// @}

    /** Events at indices outside the map (always 0 — the map is a
     *  total partition; kept as a tripwire like AttributionSink's). */
    uint64_t unattributed() const { return unattributed_; }

  private:
    const BlockMap *map_;
    std::vector<BlockActivity> activity_;
    uint64_t unattributed_ = 0;
};

/** One row of the heat report, ranked by cycles. */
struct HeatRow
{
    BlockSite site;
    BlockActivity activity;
    double cyclesPct = 0; ///< Share of the run's total cycles.
    double ipc = 0;       ///< insts / cycles within the block.
    double energyPj = 0;  ///< Model split (see file comment).
};

/** Inputs for the heat report's derived columns. */
struct HeatReportInputs
{
    EnergyParams energy;
    /** Run total energy in pJ; 0 disables the energy column. */
    double totalEnergyPj = 0;
};

/**
 * Fold one finished run into heat rows sorted by cycles descending
 * (never-executed blocks sort last). The energy column splits
 * @p inputs.totalEnergyPj exactly: pipelinePerCycle * cycles +
 * misspecRecovery * misspecs per block, remainder proportional to
 * retired instructions — so the rows sum back to the total.
 */
std::vector<HeatRow> buildHeatReport(const BlockMap &map,
                                     const BlockProfilerSink &sink,
                                     const HeatReportInputs &inputs);

/**
 * Render the top @p top_n executed rows as an annotated listing.
 * @p source_file labels the file:line provenance column.
 */
std::string formatHeatListing(const std::vector<HeatRow> &rows,
                              const std::string &source_file,
                              size_t top_n);

/**
 * Folded-stack output for flamegraph.pl / speedscope: one line per
 * executed block, "file:line;function#regionN;block weight" with the
 * cycle count as the weight (frames without a region collapse to
 * "file;function;block").
 */
std::string foldedStacks(const std::vector<HeatRow> &rows,
                         const std::string &source_file);

/**
 * Windowed counter tracks (Core::setCounterTracks): every
 * @p window_insts retired instructions — and once more at run end —
 * emits the window's IPC, misspeculations per kilo-instruction and
 * L1D hit rate as Chrome trace-event 'C' counter phases
 * ("core.ipc", "core.misspec_per_kinst", "core.l1d_hit_pct") through
 * obs/trace, so Perfetto shows the time series merged into the
 * BITSPEC_TRACE stream. All samples are window deltas, not running
 * averages. No-op while tracing is disabled.
 */
class CounterTrackEmitter
{
  public:
    static constexpr uint64_t kDefaultWindowInsts = 8192;

    explicit CounterTrackEmitter(
        uint64_t window_insts = kDefaultWindowInsts)
        : window_(window_insts ? window_insts : 1)
    {
    }

    /** Hot path: cheap count-down test per retire; samples at window
     *  boundaries only. */
    void
    onRetire(const ActivityCounters &c, const MemoryHierarchy &mem,
             uint64_t cycle)
    {
        if (c.instructions - lastInsts_ >= window_)
            sample(c, mem, cycle);
    }

    /** Flush the final partial window (called by Core at halt). */
    void finish(const ActivityCounters &c, const MemoryHierarchy &mem,
                uint64_t cycle);

    uint64_t samplesEmitted() const { return samples_; }

  private:
    void sample(const ActivityCounters &c, const MemoryHierarchy &mem,
                uint64_t cycle);

    uint64_t window_;
    uint64_t samples_ = 0;
    uint64_t lastInsts_ = 0;
    uint64_t lastCycle_ = 0;
    uint64_t lastMisspecs_ = 0;
    uint64_t lastL1dAccesses_ = 0;
    uint64_t lastL1dMisses_ = 0;
};

} // namespace bitspec

#endif // BITSPEC_OBS_PROFILER_H_
