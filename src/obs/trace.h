/**
 * @file
 * Structured tracing with Chrome trace-event JSON export.
 *
 * Every pipeline stage (lex/parse, irgen, expander, profiling,
 * squeezing, isel/regalloc/layout, MIR verify) and every execution
 * (interpreter decode/run, core run, experiment cells) opens an RAII
 * Span; spans land in lock-free per-thread buffers and are flushed on
 * demand — or automatically at process exit when BITSPEC_TRACE=<path>
 * is set — as a trace viewable in Perfetto (ui.perfetto.dev) or
 * chrome://tracing.
 *
 * Overhead contract (see DESIGN.md "Observability"):
 *  - disabled: one relaxed atomic load per span site; no allocation,
 *    no clock read, no branch in any per-instruction loop;
 *  - enabled: two clock reads + two buffer appends per span, taken
 *    under no lock (the global registry mutex is touched only when a
 *    new thread emits its first event, and at flush).
 *
 * Span events are emitted as paired B/E ("duration begin/end")
 * records, so per-thread buffer order is timestamp order — the
 * trace_selfcheck test relies on that monotonicity.
 */

#ifndef BITSPEC_OBS_TRACE_H_
#define BITSPEC_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace bitspec::trace
{

/** Process-wide enable flag; set from BITSPEC_TRACE at first use or
 *  explicitly via setEnabled() (tests, harnesses). */
extern std::atomic<bool> g_enabled;

/** Fast path: is tracing on? One relaxed load; safe pre-main. */
inline bool
enabled()
{
    return g_enabled.load(std::memory_order_relaxed);
}

/** One exported trace record (also the selfcheck test's view). */
struct Event
{
    std::string name;
    const char *cat = "";
    char phase = 'X';   ///< 'B'egin, 'E'nd, 'i'nstant, 'C'ounter, 'M'eta.
    uint64_t tsNs = 0;  ///< Nanoseconds since process trace epoch.
    uint32_t tid = 0;
    std::vector<std::pair<std::string, std::string>> args;
};

/**
 * RAII duration span. Cheap to construct when tracing is disabled;
 * when enabled it appends a 'B' event immediately and an 'E' event
 * (carrying any arg() annotations) at destruction.
 */
class Span
{
  public:
    Span(std::string name, const char *category);
    ~Span();

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

    /** Annotate the span; shows under "args" in the viewer. */
    void arg(std::string key, std::string value);

  private:
    bool live_;
    std::string name_;
    const char *cat_;
    std::vector<std::pair<std::string, std::string>> args_;
};

/** Zero-duration instant event (rendered as a tick mark). */
void instant(std::string name, const char *category,
             std::vector<std::pair<std::string, std::string>> args = {});

/** Counter track sample (rendered as a stacked area chart). */
void counter(std::string name, const char *category, double value);

/**
 * Name the calling thread's lane in the viewer. The first call wins;
 * later calls are ignored, so hot paths may call nameThisThread on
 * every entry ("worker") without churn. The main thread is named
 * automatically.
 */
void nameThisThread(const std::string &name);

/** Force tracing on/off (tests and harnesses; overrides the env). */
void setEnabled(bool on);

/**
 * Snapshot every thread's buffered events, ordered by (tid, buffer
 * position). Does not clear the buffers.
 */
std::vector<Event> snapshot();

/** Total buffered events across all threads. */
size_t eventCount();

/** Drop all buffered events (test isolation). */
void reset();

/**
 * Write all buffered events to @p path as Chrome trace-event JSON
 * ({"traceEvents": [...]}); returns false when the file cannot be
 * opened. Buffers are left intact so repeated flushes are cumulative
 * snapshots.
 */
bool writeTo(const std::string &path);

/** Serialize the current buffers to JSON (writeTo's payload). */
std::string toJson();

} // namespace bitspec::trace

#endif // BITSPEC_OBS_TRACE_H_
