/**
 * @file
 * Crash flight recorder: always-on bounded rings of recent
 * observability events, dumped post-mortem.
 *
 * BITSPEC_TRACE captures everything but only helps when the process
 * lives to flush; the flight recorder is the inverse trade. When
 * BITSPEC_FLIGHTREC=<dir> is set, every span begin/end, counter
 * sample, and log message is *also* recorded into a fixed-size
 * per-thread ring (newest events overwrite oldest), and fatal
 * signals (SIGSEGV/SIGABRT/SIGBUS/SIGFPE/SIGILL) or std::terminate
 * dump the rings to <dir>/flightrec-<pid>-*.json as valid
 * Chrome-trace JSON — loadable in Perfetto like any BITSPEC_TRACE
 * export — plus each thread's in-flight ledger record (obs/ledger.h)
 * so the post-mortem names the exact cell that was executing.
 *
 * Design constraints, in order:
 *  - The record path must be cheap enough to leave on under the
 *    bench harness: one relaxed atomic check when inactive; when
 *    active, a clock read and bounded memcpy into a preallocated
 *    slot — no locks, no allocation, ever.
 *  - The dump path runs inside a signal handler, so it touches only
 *    memory that is never freed (rings are intentionally leaked),
 *    formats into stack buffers, and writes with write(2). Slots
 *    being concurrently overwritten can yield stale text in the
 *    dump; JSON validity is preserved by escaping at dump time
 *    ("torn but loadable" — the same contract as a torn ledger
 *    line).
 *  - trace.cc feeds the rings from its existing Span/instant/counter
 *    sites and support/log feeds them through its sink hook, so the
 *    recorder sees the whole diagnostic surface without new
 *    instrumentation.
 *
 * fuzz_spec also dumps on *logical* failure (divergence found), so a
 * fuzzer repro ships with the event history that led to it.
 */

#ifndef BITSPEC_OBS_FLIGHTREC_H_
#define BITSPEC_OBS_FLIGHTREC_H_

#include <atomic>
#include <cstddef>
#include <string>

namespace bitspec::flightrec
{

extern std::atomic<bool> g_active;

/** Fast path: is the recorder capturing? One relaxed load. */
inline bool
active()
{
    return g_active.load(std::memory_order_relaxed);
}

/**
 * Activate capture, remember @p dir for crash dumps, install the
 * fatal-signal and terminate handlers, and attach the log sink.
 * Called automatically at static-init when BITSPEC_FLIGHTREC is set.
 */
void install(const std::string &dir);

/** Capture on/off without touching signal handlers (tests). */
void setActive(bool on);

/** The configured dump directory ("" when not installed). */
const char *dumpDir();

/**
 * Record one event into the calling thread's ring. @p phase follows
 * Chrome trace phases ('B', 'E', 'i', 'C'); @p name/@p cat/@p detail
 * are copied (truncated) into fixed slot arrays. No-op when
 * inactive.
 */
void record(char phase, const char *name, const char *cat,
            const char *detail);

/** Stash this thread's in-flight ledger record (a toJsonLine()
 *  payload, truncated to the slot size) for inclusion in any dump. */
void setInflight(const char *json);
void clearInflight();

/** Write a dump to @p path (normal context). */
bool dumpTo(const std::string &path, const char *reason);

/**
 * Write a dump into the configured directory (normal context — used
 * by fuzz_spec on divergence). Returns the path, or "" when the
 * recorder is not installed or the write failed.
 */
std::string dumpNow(const char *reason);

/** Events currently resident across all rings (tests). */
size_t eventCount();

/** Clear all rings and in-flight records (test isolation). */
void reset();

} // namespace bitspec::flightrec

#endif // BITSPEC_OBS_FLIGHTREC_H_
