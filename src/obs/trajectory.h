/**
 * @file
 * Persistent performance trajectory: a schema-versioned JSON-lines
 * history of bench_smoke runs plus a regression gate over it.
 *
 * Every bench_smoke run distils BENCH_micro.json into one
 * TrajectoryRecord (git sha, build type, debug flag, the key
 * throughput/speedup series) and appends it to
 * bench/history/BENCH_history.jsonl. The gate then compares the
 * current record against a rolling baseline — the best value of each
 * series over the last `window` comparable records — and fails when a
 * gated series drops beyond its threshold. "Comparable" means the
 * same debug flag: debug numbers are tagged at record time and can
 * never become the baseline for release runs (or vice versa).
 *
 * Gated series are the higher-is-better ones, recognised by name
 * prefix: "rate." (instructions/second) and "speedup.". Everything
 * else rides along informationally. Thresholds are generous by
 * default (shared machines swing); per-series overrides tighten the
 * ones that matter.
 *
 * The file format is deliberately line-oriented and append-only so
 * the history survives concurrent writers and partial writes: a
 * corrupt or unknown-schema line is skipped on load, never fatal.
 */

#ifndef BITSPEC_OBS_TRAJECTORY_H_
#define BITSPEC_OBS_TRAJECTORY_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace bitspec
{

/** Current on-disk record schema. Bump on incompatible change; the
 *  loader skips records with a newer schema than it understands. */
constexpr int kTrajectorySchemaVersion = 1;

/** One (name, value) measurement in a record. */
struct TrajectorySeries
{
    std::string name;
    double value = 0;
};

/** One bench run distilled for the history file. */
struct TrajectoryRecord
{
    int schemaVersion = kTrajectorySchemaVersion;
    std::string gitSha = "unknown";
    std::string buildType; ///< From the bench JSON context.
    std::string timestamp; ///< ISO-8601 UTC; informational only.
    bool debugBuild = false;
    /** Sorted by name (toJsonLine sorts; parse preserves). */
    std::vector<TrajectorySeries> series;

    /** Value of @p name, or nullopt when absent. */
    std::optional<double> value(const std::string &name) const;
};

/** True when @p name is a higher-is-better gated series. */
bool isGatedSeries(const std::string &name);

/** Serialize as one JSON line (no trailing newline). */
std::string toJsonLine(const TrajectoryRecord &rec);

/** Parse one history line; nullopt for corrupt/blank/newer-schema
 *  lines (the loader skips them). */
std::optional<TrajectoryRecord> parseJsonLine(const std::string &line);

/** All parseable records of @p path in file order; empty when the
 *  file is missing. */
std::vector<TrajectoryRecord> loadHistory(const std::string &path);

/** Append @p rec to @p path (created if missing); false on I/O
 *  error. */
bool appendHistory(const std::string &path,
                   const TrajectoryRecord &rec);

/**
 * Distil a BENCH_micro.json (google-benchmark output with the
 * experiment_smoke sections spliced in) into a record: build type and
 * debug flag from the context, rate.* series from the benchmark
 * counters and the observability section, speedup.* from the
 * experiment_engine grids. Sha/timestamp are left for the caller.
 */
TrajectoryRecord recordFromBenchJson(const std::string &json_text);

/** Gate thresholds. A gated series fails when it drops more than its
 *  threshold percent below the rolling baseline. */
struct GateOptions
{
    size_t window = 5;          ///< Baseline = best of the last N.
    double defaultDropPct = 25; ///< Shared machines swing; generous.
    std::map<std::string, double> perSeriesDropPct;
};

/** Per-series gate verdict. */
struct SeriesVerdict
{
    std::string name;
    double current = 0;
    double baseline = 0; ///< 0 when no comparable history exists.
    double deltaPct = 0; ///< (current - baseline) / baseline * 100.
    bool gated = false;  ///< Informational series never fail.
    bool pass = true;
};

/** Whole-run gate result. */
struct GateResult
{
    bool pass = true;
    size_t baselineRuns = 0; ///< Comparable records considered.
    std::vector<SeriesVerdict> verdicts;
};

/**
 * Compare @p current against @p history. Baseline per series: the
 * maximum value over the last opts.window records whose debugBuild
 * flag matches @p current (older records and mismatched builds are
 * ignored). A gated series with no baseline passes — fresh histories
 * must not fail their first run.
 */
GateResult checkAgainstHistory(const TrajectoryRecord &current,
                               const std::vector<TrajectoryRecord> &history,
                               const GateOptions &opts = {});

/** Render the verdicts as an aligned table. */
std::string formatGateResult(const GateResult &result);

} // namespace bitspec

#endif // BITSPEC_OBS_TRAJECTORY_H_
