#include "obs/diff.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>

#include "support/str.h"

namespace bitspec
{

namespace
{

bool
hasPrefix(const std::string &s, const std::string &prefix)
{
    return s.rfind(prefix, 0) == 0;
}

std::string
fmtNum(double v)
{
    char buf[48];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

void
jsonEscape(std::string &out, const std::string &s)
{
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
}

/** Pipeline stage a field family is produced by. */
const char *
stageOfField(const std::string &name)
{
    if (hasPrefix(name, "squeeze.") || hasPrefix(name, "expand.") ||
        hasPrefix(name, "backend."))
        return "compile";
    if (hasPrefix(name, "counters."))
        return "execute";
    if (hasPrefix(name, "cache.") || hasPrefix(name, "dram."))
        return "memory";
    if (hasPrefix(name, "energy."))
        return "energy";
    if (hasPrefix(name, "output.") || name == "run.return")
        return "output";
    return "";
}

std::string
truncKey(const std::string &key)
{
    if (key.size() <= 48)
        return key;
    return key.substr(0, 45) + "...";
}

/** Region/block localization from the detail rows of both records. */
void
localizeDetail(const LedgerRecord &a, const LedgerRecord &b,
               CellDiff &cell)
{
    // Regions: worst misspeculation growth, handler cycles as the
    // tie-break. Keys are (function, regionId) — stable across builds
    // as long as the region structure is.
    {
        std::map<std::pair<std::string, int>, const LedgerRegionRow *>
            in_a;
        for (const LedgerRegionRow &r : a.regions)
            in_a.emplace(std::make_pair(r.function, r.regionId), &r);
        long long best_misspecs = 0, best_cycles = 0;
        const LedgerRegionRow *best = nullptr;
        for (const LedgerRegionRow &r : b.regions) {
            auto it = in_a.find({r.function, r.regionId});
            long long dm = static_cast<long long>(r.misspecs);
            long long dc = static_cast<long long>(r.handlerCycles);
            if (it != in_a.end()) {
                dm -= static_cast<long long>(it->second->misspecs);
                dc -= static_cast<long long>(
                    it->second->handlerCycles);
            }
            if (dm > best_misspecs ||
                (dm == best_misspecs && dc > best_cycles)) {
                best_misspecs = dm;
                best_cycles = dc;
                best = &r;
            }
        }
        if (best && (best_misspecs > 0 || best_cycles > 0))
            cell.region = strFormat(
                "%s region#%d line %d (misspecs %+lld, "
                "handler_cycles %+lld)",
                best->function.c_str(), best->regionId, best->srcLine,
                best_misspecs, best_cycles);
    }

    // Blocks: worst cycle growth.
    {
        std::map<std::pair<std::string, std::string>,
                 const LedgerHeatRow *>
            in_a;
        for (const LedgerHeatRow &h : a.heat)
            in_a.emplace(std::make_pair(h.function, h.block), &h);
        long long best_cycles = 0;
        const LedgerHeatRow *best = nullptr;
        for (const LedgerHeatRow &h : b.heat) {
            auto it = in_a.find({h.function, h.block});
            long long dc = static_cast<long long>(h.cycles);
            if (it != in_a.end())
                dc -= static_cast<long long>(it->second->cycles);
            if (dc > best_cycles) {
                best_cycles = dc;
                best = &h;
            }
        }
        if (best && best_cycles > 0)
            cell.block = strFormat(
                "%s/%s line %d (cycles %+lld)", best->function.c_str(),
                best->block.c_str(), best->srcLine, best_cycles);
    }
}

CellDiff
diffCell(const LedgerRecord &a, const LedgerRecord &b,
         const DiffOptions &opts)
{
    CellDiff cell;
    cell.cellKey = a.cellKey;
    cell.workload = a.workload;
    cell.engine = a.engine;
    cell.policy = a.policy;

    if (!a.outputChecksum.empty() && !b.outputChecksum.empty() &&
        a.outputChecksum != b.outputChecksum) {
        FieldDrift d;
        d.name = "output.checksum";
        d.cls = DriftClass::Diverged;
        cell.drifts.push_back(std::move(d));
        cell.diverged = true;
    }

    // Union of field names, A's order first.
    std::vector<std::string> names;
    for (const LedgerField &f : a.fields)
        names.push_back(f.name);
    for (const LedgerField &f : b.fields)
        if (!a.field(f.name))
            names.push_back(f.name);

    for (const std::string &name : names) {
        auto va = a.field(name);
        auto vb = b.field(name);
        FieldDrift d;
        d.name = name;
        d.a = va.value_or(0);
        d.b = vb.value_or(0);
        if (!va || !vb) {
            // A field family appearing or vanishing is provenance
            // drift worth seeing, but has no magnitude to gate on.
            d.name += va ? " (only-A)" : " (only-B)";
            d.cls = DriftClass::Info;
            cell.drifts.push_back(std::move(d));
            continue;
        }
        const double delta = d.b - d.a;
        if (d.a != 0)
            d.deltaPct = 100.0 * delta / std::fabs(d.a);
        if (name == "run.return" && delta != 0) {
            // A changed exit value is a correctness alarm, not a perf
            // delta.
            d.cls = DriftClass::Diverged;
            cell.diverged = true;
            cell.drifts.push_back(std::move(d));
            continue;
        }

        bool info = false;
        for (const std::string &prefix : opts.infoPrefixes)
            if (hasPrefix(name, prefix)) {
                info = true;
                break;
            }

        double rel_tol = opts.relTolPct;
        auto it = opts.perFieldRelTolPct.find(name);
        if (it != opts.perFieldRelTolPct.end())
            rel_tol = it->second;
        const double mag = std::max(std::fabs(d.a), std::fabs(d.b));
        const bool same = std::fabs(delta) <= opts.absTol ||
                          (rel_tol > 0 &&
                           std::fabs(delta) <= rel_tol / 100.0 * mag);
        if (same)
            continue; // Same drifts are never listed.
        if (info) {
            d.cls = DriftClass::Info;
        } else if (delta > 0) {
            // Every ledger field is a cost; up is worse.
            d.cls = DriftClass::Regressed;
            cell.regressed = true;
        } else {
            d.cls = DriftClass::Improved;
        }
        cell.drifts.push_back(std::move(d));
    }

    std::stable_sort(cell.drifts.begin(), cell.drifts.end(),
                     [](const FieldDrift &x, const FieldDrift &y) {
                         auto rank = [](const FieldDrift &f) {
                             return f.cls == DriftClass::Diverged ? 0
                                    : f.cls == DriftClass::Regressed
                                        ? 1
                                    : f.cls == DriftClass::Improved
                                        ? 2
                                        : 3;
                         };
                         if (rank(x) != rank(y))
                             return rank(x) < rank(y);
                         return std::fabs(x.deltaPct) >
                                std::fabs(y.deltaPct);
                     });

    if (cell.diverged) {
        cell.stage = "output";
    } else if (cell.regressed) {
        // Stage = family of the worst regressed field (the sort above
        // put it first among Regressed entries).
        for (const FieldDrift &d : cell.drifts)
            if (d.cls == DriftClass::Regressed) {
                cell.stage = stageOfField(d.name);
                break;
            }
    }
    if (cell.regressed || cell.diverged)
        localizeDetail(a, b, cell);
    return cell;
}

} // namespace

const char *
driftClassName(DriftClass cls)
{
    switch (cls) {
      case DriftClass::Same: return "same";
      case DriftClass::Improved: return "improved";
      case DriftClass::Regressed: return "REGRESSED";
      case DriftClass::Info: return "info";
      case DriftClass::Diverged: return "DIVERGED";
    }
    return "?";
}

LedgerDiff
diffLedgers(const std::vector<LedgerRecord> &a,
            const std::vector<LedgerRecord> &b,
            const DiffOptions &opts)
{
    std::map<std::string, const LedgerRecord *> b_cells;
    for (const LedgerRecord &rec : b)
        if (rec.kind == "cell" && !rec.cellKey.empty())
            b_cells.emplace(rec.cellKey, &rec); // First wins.

    LedgerDiff diff;
    std::map<std::string, bool> a_seen;
    for (const LedgerRecord &rec : a) {
        if (rec.kind != "cell" || rec.cellKey.empty())
            continue;
        if (!a_seen.emplace(rec.cellKey, true).second)
            continue;
        auto it = b_cells.find(rec.cellKey);
        if (it == b_cells.end()) {
            diff.onlyA.push_back(rec.workload + " " +
                                 truncKey(rec.cellKey));
            continue;
        }
        diff.cells.push_back(diffCell(rec, *it->second, opts));
        b_cells.erase(it);
    }
    for (const auto &[key, rec] : b_cells)
        diff.onlyB.push_back(rec->workload + " " + truncKey(key));

    for (const CellDiff &cell : diff.cells) {
        if (cell.diverged)
            ++diff.divergedCells;
        if (cell.regressed)
            ++diff.regressedCells;
        if (!cell.diverged && !cell.regressed && !cell.drifts.empty())
            ++diff.improvedCells;
    }

    // Worst first: diverged, then regressed by worst field drift.
    std::stable_sort(
        diff.cells.begin(), diff.cells.end(),
        [](const CellDiff &x, const CellDiff &y) {
            auto rank = [](const CellDiff &c) {
                return c.diverged ? 0 : c.regressed ? 1
                       : !c.drifts.empty()         ? 2
                                                   : 3;
            };
            if (rank(x) != rank(y))
                return rank(x) < rank(y);
            auto worst = [](const CellDiff &c) {
                double w = 0;
                for (const FieldDrift &d : c.drifts)
                    if (d.cls == DriftClass::Regressed)
                        w = std::max(w, std::fabs(d.deltaPct));
                return w;
            };
            return worst(x) > worst(y);
        });
    return diff;
}

std::string
formatLedgerDiff(const LedgerDiff &diff, bool verbose)
{
    std::string out = strFormat(
        "ledger diff: %zu cells joined, %zu only-A, %zu only-B\n",
        diff.cells.size(), diff.onlyA.size(), diff.onlyB.size());
    for (const std::string &key : diff.onlyA)
        out += strFormat("  only-A: %s\n", key.c_str());
    for (const std::string &key : diff.onlyB)
        out += strFormat("  only-B: %s\n", key.c_str());

    for (const CellDiff &cell : diff.cells) {
        bool interesting = cell.regressed || cell.diverged;
        for (const FieldDrift &d : cell.drifts)
            interesting |= d.cls != DriftClass::Info || verbose;
        if (!interesting && !verbose)
            continue;
        if (cell.drifts.empty() && !verbose)
            continue;
        out += strFormat("\n%s [%s %s] %s\n", cell.workload.c_str(),
                         cell.engine.c_str(), cell.policy.c_str(),
                         truncKey(cell.cellKey).c_str());
        if (cell.drifts.empty()) {
            out += "  no drift\n";
            continue;
        }
        out += strFormat("  %-34s %14s %14s %9s  %s\n", "field", "A",
                         "B", "delta%", "class");
        for (const FieldDrift &d : cell.drifts) {
            if (d.cls == DriftClass::Info && !verbose)
                continue;
            out += strFormat("  %-34s %14.6g %14.6g %+8.2f%%  %s\n",
                             d.name.c_str(), d.a, d.b, d.deltaPct,
                             driftClassName(d.cls));
        }
        if (!cell.stage.empty())
            out += strFormat("  localized: stage=%s\n",
                             cell.stage.c_str());
        if (!cell.region.empty())
            out += strFormat("  localized: region %s\n",
                             cell.region.c_str());
        if (!cell.block.empty())
            out += strFormat("  localized: block %s\n",
                             cell.block.c_str());
    }

    out += strFormat(
        "\nsummary: %zu regressed, %zu diverged, %zu improved; "
        "verdict %s\n",
        diff.regressedCells, diff.divergedCells, diff.improvedCells,
        diff.clean() ? "CLEAN" : "REGRESSED");
    return out;
}

std::string
ledgerDiffToJson(const LedgerDiff &diff)
{
    std::string out = strFormat(
        "{\"joined\":%zu,\"only_a\":%zu,\"only_b\":%zu,"
        "\"regressed_cells\":%zu,\"diverged_cells\":%zu,"
        "\"improved_cells\":%zu,\"clean\":%s,\"cells\":[",
        diff.cells.size(), diff.onlyA.size(), diff.onlyB.size(),
        diff.regressedCells, diff.divergedCells, diff.improvedCells,
        diff.clean() ? "true" : "false");
    bool first = true;
    for (const CellDiff &cell : diff.cells) {
        if (cell.drifts.empty())
            continue; // Clean cells stay out of the verdict payload.
        if (!first)
            out += ",";
        first = false;
        out += "{\"cell_key\":\"";
        jsonEscape(out, cell.cellKey);
        out += "\",\"workload\":\"";
        jsonEscape(out, cell.workload);
        out += "\",\"engine\":\"";
        jsonEscape(out, cell.engine);
        out += "\",\"policy\":\"";
        jsonEscape(out, cell.policy);
        out += strFormat("\",\"regressed\":%s,\"diverged\":%s",
                         cell.regressed ? "true" : "false",
                         cell.diverged ? "true" : "false");
        out += ",\"stage\":\"";
        jsonEscape(out, cell.stage);
        out += "\",\"region\":\"";
        jsonEscape(out, cell.region);
        out += "\",\"block\":\"";
        jsonEscape(out, cell.block);
        out += "\",\"drifts\":[";
        for (size_t i = 0; i < cell.drifts.size(); ++i) {
            const FieldDrift &d = cell.drifts[i];
            if (i)
                out += ",";
            out += "{\"name\":\"";
            jsonEscape(out, d.name);
            out += "\",\"a\":" + fmtNum(d.a) +
                   ",\"b\":" + fmtNum(d.b) +
                   ",\"delta_pct\":" + fmtNum(d.deltaPct) +
                   ",\"class\":\"";
            out += driftClassName(d.cls);
            out += "\"}";
        }
        out += "]}";
    }
    out += "]}";
    return out;
}

} // namespace bitspec
