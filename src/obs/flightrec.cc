#include "obs/flightrec.h"

#include <fcntl.h>
#include <signal.h>
#include <time.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <filesystem>

#include "support/env.h"
#include "support/log.h"

namespace bitspec::flightrec
{

std::atomic<bool> g_active{false};

namespace
{

constexpr size_t kSlots = 512;       ///< Events kept per thread.
constexpr size_t kNameChars = 64;
constexpr size_t kCatChars = 16;
constexpr size_t kDetailChars = 96;
constexpr size_t kInflightChars = 4096;
constexpr size_t kDirChars = 512;

struct Slot
{
    uint64_t tsNs = 0;
    char phase = 0;
    char name[kNameChars] = {};
    char cat[kCatChars] = {};
    char detail[kDetailChars] = {};
};

/**
 * One thread's ring. Rings are heap-allocated once per thread and
 * intentionally never freed: the crash dumper must be able to walk
 * them from a signal handler long after threads have exited, and a
 * leak of a few hundred KB at process death is the cheap side of
 * that trade.
 */
struct Ring
{
    std::atomic<uint64_t> head{0}; ///< Total events ever recorded.
    uint32_t tid = 0;
    Ring *next = nullptr;          ///< Intrusive registry list.
    std::atomic<bool> inflightSet{false};
    char inflight[kInflightChars] = {};
    Slot slots[kSlots];
};

std::atomic<Ring *> g_rings{nullptr};
std::atomic<uint32_t> g_nextTid{1};
char g_dir[kDirChars] = {};
std::atomic<uint64_t> g_epochNs{0};
std::atomic<uint32_t> g_dumpSeq{0};
/** First crash dump wins; abort() after terminate must not re-dump. */
std::atomic_flag g_crashDumped = ATOMIC_FLAG_INIT;
std::terminate_handler g_prevTerminate = nullptr;

uint64_t
monotonicNs()
{
    struct timespec ts;
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return static_cast<uint64_t>(ts.tv_sec) * 1000000000ull +
           static_cast<uint64_t>(ts.tv_nsec);
}

Ring *
localRing()
{
    thread_local Ring *ring = [] {
        Ring *r = new Ring;
        r->tid = g_nextTid.fetch_add(1, std::memory_order_relaxed);
        r->next = g_rings.load(std::memory_order_acquire);
        while (!g_rings.compare_exchange_weak(
            r->next, r, std::memory_order_release,
            std::memory_order_acquire)) {
        }
        return r;
    }();
    return ring;
}

void
copyTruncated(char *dst, size_t cap, const char *src)
{
    if (!src) {
        dst[0] = 0;
        return;
    }
    size_t i = 0;
    for (; i + 1 < cap && src[i]; ++i)
        dst[i] = src[i];
    dst[i] = 0;
}

/**
 * Append @p src to @p dst JSON-escaped. Everything below here runs in
 * the dump path, possibly inside a signal handler: fixed buffers,
 * no allocation, and snprintf only for integers (glibc's integer
 * formatting does not allocate — the pragmatic crash-handler
 * standard).
 */
void
appendEscaped(char *dst, size_t cap, size_t &len, const char *src)
{
    for (size_t i = 0; src[i] && len + 8 < cap; ++i) {
        unsigned char c = static_cast<unsigned char>(src[i]);
        if (c == '"' || c == '\\') {
            dst[len++] = '\\';
            dst[len++] = static_cast<char>(c);
        } else if (c < 0x20) {
            len += static_cast<size_t>(std::snprintf(
                dst + len, cap - len, "\\u%04x", c));
        } else {
            dst[len++] = static_cast<char>(c);
        }
    }
    dst[len] = 0;
}

void
appendRaw(char *dst, size_t cap, size_t &len, const char *src)
{
    for (size_t i = 0; src[i] && len + 1 < cap; ++i)
        dst[len++] = src[i];
    dst[len] = 0;
}

bool
writeAll(int fd, const char *buf, size_t n)
{
    size_t off = 0;
    while (off < n) {
        ssize_t w = ::write(fd, buf + off, n - off);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<size_t>(w);
    }
    return true;
}

/** True when @p s parses fully as a number (counter values). */
bool
looksNumeric(const char *s)
{
    if (!*s)
        return false;
    char *end = nullptr;
    std::strtod(s, &end);
    return end && *end == '\0';
}

/** Emit one slot as a Chrome trace event. */
bool
writeSlot(int fd, const Slot &slot, uint32_t tid, bool first)
{
    char buf[640];
    size_t len = 0;
    if (!first)
        appendRaw(buf, sizeof buf, len, ",\n");
    appendRaw(buf, sizeof buf, len, "{\"name\":\"");
    appendEscaped(buf, sizeof buf, len, slot.name);
    appendRaw(buf, sizeof buf, len, "\",\"cat\":\"");
    appendEscaped(buf, sizeof buf, len,
                  slot.cat[0] ? slot.cat : "bitspec");
    char ph = slot.phase;
    if (ph != 'B' && ph != 'E' && ph != 'i' && ph != 'C')
        ph = 'i'; // Torn slot: keep the dump loadable.
    len += static_cast<size_t>(std::snprintf(
        buf + len, sizeof buf - len,
        "\",\"ph\":\"%c\",\"pid\":1,\"tid\":%u,\"ts\":%llu", ph, tid,
        static_cast<unsigned long long>(slot.tsNs / 1000)));
    if (ph == 'i')
        appendRaw(buf, sizeof buf, len, ",\"s\":\"t\"");
    if (slot.detail[0]) {
        if (ph == 'C' && looksNumeric(slot.detail)) {
            appendRaw(buf, sizeof buf, len, ",\"args\":{\"value\":");
            appendRaw(buf, sizeof buf, len, slot.detail);
            appendRaw(buf, sizeof buf, len, "}");
        } else {
            appendRaw(buf, sizeof buf, len,
                      ",\"args\":{\"detail\":\"");
            appendEscaped(buf, sizeof buf, len, slot.detail);
            appendRaw(buf, sizeof buf, len, "\"}");
        }
    }
    appendRaw(buf, sizeof buf, len, "}");
    return writeAll(fd, buf, len);
}

/** The whole dump payload; signal-handler safe. */
bool
dumpToFd(int fd, const char *reason)
{
    if (!writeAll(fd, "{\"traceEvents\":[\n", 17))
        return false;
    bool first = true;
    for (Ring *r = g_rings.load(std::memory_order_acquire); r;
         r = r->next) {
        uint64_t head = r->head.load(std::memory_order_acquire);
        uint64_t count = head < kSlots ? head : kSlots;
        // Oldest first; racing writers may overwrite a slot as it is
        // read, which yields a stale-but-escaped event.
        for (uint64_t i = head - count; i < head; ++i) {
            if (!writeSlot(fd, r->slots[i % kSlots], r->tid, first))
                return false;
            first = false;
        }
    }
    char buf[kInflightChars + 256];
    size_t len = 0;
    appendRaw(buf, sizeof buf, len,
              "\n],\"displayTimeUnit\":\"ms\",\"reason\":\"");
    appendEscaped(buf, sizeof buf, len, reason);
    appendRaw(buf, sizeof buf, len, "\",\"inflight\":[");
    if (!writeAll(fd, buf, len))
        return false;
    bool firstInflight = true;
    for (Ring *r = g_rings.load(std::memory_order_acquire); r;
         r = r->next) {
        if (!r->inflightSet.load(std::memory_order_acquire))
            continue;
        len = 0;
        if (!firstInflight)
            appendRaw(buf, sizeof buf, len, ",");
        firstInflight = false;
        // Embedded as an escaped *string*, not raw JSON: a crash
        // mid-setInflight can leave torn bytes, and escaping keeps
        // the dump loadable regardless.
        appendRaw(buf, sizeof buf, len, "\"");
        appendEscaped(buf, sizeof buf, len, r->inflight);
        appendRaw(buf, sizeof buf, len, "\"");
        if (!writeAll(fd, buf, len))
            return false;
    }
    return writeAll(fd, "]}\n", 3);
}

/** Crash-context dump into the configured directory. */
void
crashDump(const char *reason)
{
    if (!g_dir[0])
        return;
    if (g_crashDumped.test_and_set())
        return;
    char path[kDirChars + 96];
    std::snprintf(path, sizeof path, "%s/flightrec-%d-crash.json",
                  g_dir, static_cast<int>(::getpid()));
    int fd = ::open(path, O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                    0644);
    if (fd < 0)
        return;
    dumpToFd(fd, reason);
    ::close(fd);
    char msg[kDirChars + 160];
    int n = std::snprintf(msg, sizeof msg,
                          "bitspec[flightrec]: wrote %s (%s)\n", path,
                          reason);
    if (n > 0)
        writeAll(2, msg, static_cast<size_t>(n));
}

extern "C" void
onFatalSignal(int sig)
{
    char reason[32];
    std::snprintf(reason, sizeof reason, "signal:%d", sig);
    crashDump(reason);
    // SA_RESETHAND restored the default disposition; re-raise so the
    // process still dies with the original signal (wait status,
    // core dumps, and the crash-dump test's expectations all hold).
    ::raise(sig);
}

void
onTerminate()
{
    crashDump("terminate");
    if (g_prevTerminate)
        g_prevTerminate();
    std::abort();
}

void
logSink(log::Level level, const char *msg)
{
    static const char *const names[] = {"log.error", "log.warn",
                                        "log.info", "log.debug"};
    record('i', names[static_cast<int>(level)], "log", msg);
}

/** Reads BITSPEC_FLIGHTREC once at static-init time. */
struct EnvInit
{
    EnvInit()
    {
        std::string dir = env::getString("BITSPEC_FLIGHTREC");
        if (!dir.empty())
            install(dir);
    }
};

EnvInit g_envInit;

} // namespace

void
install(const std::string &dir)
{
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    copyTruncated(g_dir, sizeof g_dir, dir.c_str());
    g_epochNs.store(monotonicNs(), std::memory_order_relaxed);

    struct sigaction sa;
    std::memset(&sa, 0, sizeof sa);
    sa.sa_handler = onFatalSignal;
    sa.sa_flags = SA_RESETHAND;
    sigemptyset(&sa.sa_mask);
    for (int sig : {SIGSEGV, SIGABRT, SIGBUS, SIGFPE, SIGILL})
        ::sigaction(sig, &sa, nullptr);
    g_prevTerminate = std::set_terminate(onTerminate);
    log::setSink(logSink);
    g_active.store(true, std::memory_order_release);
}

void
setActive(bool on)
{
    if (on && g_epochNs.load(std::memory_order_relaxed) == 0)
        g_epochNs.store(monotonicNs(), std::memory_order_relaxed);
    g_active.store(on, std::memory_order_release);
}

const char *
dumpDir()
{
    return g_dir;
}

void
record(char phase, const char *name, const char *cat,
       const char *detail)
{
    if (!active())
        return;
    Ring *r = localRing();
    uint64_t head = r->head.load(std::memory_order_relaxed);
    Slot &slot = r->slots[head % kSlots];
    slot.tsNs = monotonicNs() -
                g_epochNs.load(std::memory_order_relaxed);
    slot.phase = phase;
    copyTruncated(slot.name, sizeof slot.name, name);
    copyTruncated(slot.cat, sizeof slot.cat, cat);
    copyTruncated(slot.detail, sizeof slot.detail, detail);
    r->head.store(head + 1, std::memory_order_release);
}

void
setInflight(const char *json)
{
    if (!active())
        return;
    Ring *r = localRing();
    copyTruncated(r->inflight, sizeof r->inflight, json);
    r->inflightSet.store(true, std::memory_order_release);
}

void
clearInflight()
{
    if (!active())
        return;
    Ring *r = localRing();
    r->inflightSet.store(false, std::memory_order_release);
    r->inflight[0] = 0;
}

bool
dumpTo(const std::string &path, const char *reason)
{
    int fd = ::open(path.c_str(),
                    O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (fd < 0)
        return false;
    bool ok = dumpToFd(fd, reason);
    ::close(fd);
    return ok;
}

std::string
dumpNow(const char *reason)
{
    if (!g_dir[0])
        return "";
    uint32_t seq = g_dumpSeq.fetch_add(1, std::memory_order_relaxed);
    char path[kDirChars + 96];
    std::snprintf(path, sizeof path, "%s/flightrec-%d-%s-%u.json",
                  g_dir, static_cast<int>(::getpid()), reason, seq);
    if (!dumpTo(path, reason))
        return "";
    return path;
}

size_t
eventCount()
{
    size_t n = 0;
    for (Ring *r = g_rings.load(std::memory_order_acquire); r;
         r = r->next) {
        uint64_t head = r->head.load(std::memory_order_acquire);
        n += head < kSlots ? head : kSlots;
    }
    return n;
}

void
reset()
{
    for (Ring *r = g_rings.load(std::memory_order_acquire); r;
         r = r->next) {
        r->head.store(0, std::memory_order_release);
        r->inflightSet.store(false, std::memory_order_release);
        r->inflight[0] = 0;
    }
}

} // namespace bitspec::flightrec
