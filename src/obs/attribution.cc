#include "obs/attribution.h"

#include <algorithm>
#include <map>

#include "support/error.h"
#include "support/str.h"

namespace bitspec
{

AttributionMap::AttributionMap(const MachProgram &prog)
{
    info_.resize(prog.flat.size());

    for (const MachFunction &mf : prog.funcs) {
        // Flat placement of this function (assigned at link).
        const uint32_t base = prog.indexOf(mf.baseAddr);
        const uint32_t spec_insts = mf.delta / kInstBytes;

        // Recover each block's emitted [start, end) range from
        // blockIndex. Ranges are delimited by the next-larger start;
        // speculative-area blocks are additionally clamped to the
        // speculative area, because the skeleton slots sit between
        // them and the next laid-out block.
        std::vector<std::pair<uint32_t, int>> starts; // (index, block)
        starts.reserve(mf.blockIndex.size());
        for (const auto &[block_id, start] : mf.blockIndex)
            starts.emplace_back(start, block_id);
        std::sort(starts.begin(), starts.end());

        // Site registration is deterministic: regions sorted by id.
        std::map<int, size_t> site_of_region;
        auto site_for = [&](const MachBlock &mb) -> size_t {
            auto it = site_of_region.find(mb.regionId);
            if (it != site_of_region.end())
                return it->second;
            RegionSite site;
            site.function = mf.name;
            site.regionId = mb.regionId;
            site.srcLine = mb.regionSrcLine;
            site.leakSites = mb.regionLeakSites;
            site.leaksDischarged = mb.regionLeaksDischarged;
            site.entryIndex = prog.indexOf(mf.baseAddr); // Fixed below.
            sites_.push_back(std::move(site));
            size_t idx = sites_.size() - 1;
            site_of_region.emplace(mb.regionId, idx);
            return idx;
        };

        // First pass over region ids in block-id order would depend on
        // isel block numbering; iterate blocks by layout order instead
        // so site order follows code order within the function.
        std::vector<int64_t> entry_of_site(sites_.size(), -1);
        auto note_entry = [&](size_t site, uint32_t flat_idx) {
            if (entry_of_site.size() < sites_.size())
                entry_of_site.resize(sites_.size(), -1);
            int64_t &cur = entry_of_site[site];
            if (cur < 0 || flat_idx < static_cast<uint64_t>(cur))
                cur = flat_idx;
        };

        for (size_t k = 0; k < starts.size(); ++k) {
            const auto [start, block_id] = starts[k];
            const MachBlock &mb =
                mf.blocks[static_cast<size_t>(block_id)];
            if (mb.regionId < 0)
                continue;
            uint32_t end = k + 1 < starts.size()
                               ? starts[k + 1].first
                               : static_cast<uint32_t>(mf.code.size());
            const bool member = !mb.isHandler && mb.handlerBlock >= 0;
            if (member)
                end = std::min(end, spec_insts);
            size_t site = site_for(mb);
            for (uint32_t j = start; j < end; ++j) {
                IndexInfo &ii = info_[base + j];
                ii.site = static_cast<int32_t>(site);
                ii.role = member ? IndexRole::Member
                                 : IndexRole::Handler;
                if (member) {
                    // Eq. 1/2: the skeleton slot of speculative-area
                    // instruction j sits at j + Delta/4.
                    IndexInfo &sk = info_[base + spec_insts + j];
                    sk.site = static_cast<int32_t>(site);
                    sk.role = IndexRole::Skeleton;
                }
            }
            if (member && start < end)
                note_entry(site, base + start);
        }

        for (size_t s = 0; s < entry_of_site.size(); ++s) {
            if (entry_of_site[s] < 0)
                continue;
            auto flat_idx = static_cast<uint32_t>(entry_of_site[s]);
            sites_[s].entryIndex = flat_idx;
            info_[flat_idx].entrySite = static_cast<int32_t>(s);
        }
    }
}

uint64_t
AttributionSink::totalMisspecs() const
{
    uint64_t n = unattributedMisspecs_;
    for (const RegionActivity &a : activity_)
        n += a.misspecs;
    return n;
}

std::vector<RegionReportRow>
buildRegionReport(const AttributionMap &map, const AttributionSink &sink,
                  const RegionReportInputs &inputs)
{
    const auto &sites = map.sites();
    const auto &activity = sink.activity();
    bsAssert(sites.size() == activity.size(),
             "attribution report: sink built from a different map");

    const double avg_epi =
        inputs.totalInstructions
            ? inputs.totalEnergyPj /
                  static_cast<double>(inputs.totalInstructions)
            : 0.0;

    std::vector<RegionReportRow> rows;
    rows.reserve(sites.size());
    double overhead_total = 0;
    uint64_t spec_insts_total = 0;
    for (size_t i = 0; i < sites.size(); ++i) {
        RegionReportRow row;
        row.site = sites[i];
        row.activity = activity[i];
        row.misspecRate =
            row.activity.entries
                ? static_cast<double>(row.activity.misspecs) /
                      static_cast<double>(row.activity.entries)
                : 0.0;
        row.overheadPj =
            static_cast<double>(row.activity.misspecs) *
                inputs.energy.misspecRecovery +
            static_cast<double>(row.activity.handlerInsts) * avg_epi;
        overhead_total += row.overheadPj;
        spec_insts_total += row.activity.specInsts;
        rows.push_back(std::move(row));
    }

    // Gross savings: what squeezing bought before paying for its
    // misspeculations, attributed proportionally to each region's
    // dynamic speculative instructions.
    if (inputs.baselineEnergyPj > 0 && spec_insts_total > 0) {
        const double gross = (inputs.baselineEnergyPj -
                              inputs.totalEnergyPj) +
                             overhead_total;
        for (RegionReportRow &row : rows) {
            row.savedPj =
                gross *
                (static_cast<double>(row.activity.specInsts) /
                 static_cast<double>(spec_insts_total));
            row.netPj = row.savedPj - row.overheadPj;
        }
    } else {
        for (RegionReportRow &row : rows)
            row.netPj = -row.overheadPj;
    }
    return rows;
}

std::string
formatRegionReport(const std::vector<RegionReportRow> &rows,
                   const std::string &source_file)
{
    std::string out = strFormat(
        "%-26s %-18s %10s %9s %8s %9s %9s %11s %11s %11s %9s\n",
        "region", "site", "entries", "misspecs", "rate", "hnd_inst",
        "hnd_cyc", "overhead_pJ", "saved_pJ", "net_pJ", "sni");
    for (const RegionReportRow &r : rows) {
        std::string region = strFormat("%s#%d", r.site.function.c_str(),
                                       r.site.regionId);
        std::string site = strFormat("%s:%d", source_file.c_str(),
                                     r.site.srcLine);
        // Speculative non-interference verdict: clean, all sinks
        // discharged, or the number of undischarged leak sites.
        std::string sni =
            r.site.leakSites > 0
                ? strFormat("%d leak%s", r.site.leakSites,
                            r.site.leakSites == 1 ? "" : "s")
                : (r.site.leaksDischarged > 0 ? "disch" : "clean");
        out += strFormat("%-26s %-18s %10llu %9llu %8.4f %9llu %9llu "
                         "%11.1f %11.1f %11.1f %9s\n",
                         region.c_str(), site.c_str(),
                         static_cast<unsigned long long>(
                             r.activity.entries),
                         static_cast<unsigned long long>(
                             r.activity.misspecs),
                         r.misspecRate,
                         static_cast<unsigned long long>(
                             r.activity.handlerInsts),
                         static_cast<unsigned long long>(
                             r.activity.handlerCycles),
                         r.overheadPj, r.savedPj, r.netPj,
                         sni.c_str());
    }
    return out;
}

} // namespace bitspec
